package skipwebs_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedDocComments enforces the documentation contract of the
// public package: every exported type, function, method, constant, and
// variable carries a doc comment — the API docs state each operation's
// message-complexity bound from the paper, and this check keeps new
// surface from landing undocumented. CI runs the test suite, so a
// missing comment fails CI.
func TestExportedDocComments(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["skipwebs"]
	if !ok {
		t.Fatalf("package skipwebs not found in .")
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil {
					t.Errorf("%s: exported func %s has no doc comment",
						fset.Position(d.Pos()), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							t.Errorf("%s: exported type %s has no doc comment",
								fset.Position(s.Pos()), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil {
								t.Errorf("%s: exported %s has no doc comment",
									fset.Position(s.Pos()), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether recv is nil (a plain function) or
// names an exported receiver type — methods on unexported types are not
// part of the API surface.
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil {
		return true
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}
