package skipwebs

import (
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestConcurrentQueries exercises read-only routing from many goroutines
// at once; run with -race. Query descent touches only immutable structure
// state plus atomic network counters.
func TestConcurrentQueries(t *testing.T) {
	c := NewCluster(128)
	keys := distinctKeys(xrand.New(31), 2048)
	web, err := NewBlocked(c, keys, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g) * 7919)
			for i := 0; i < 500; i++ {
				q := rng.Uint64n(1 << 41)
				res, err := web.Floor(q, HostID(rng.Intn(128)))
				if err != nil {
					errs <- err
					return
				}
				want, wok := bruteFloor(keys, q)
				if res.Found != wok || (res.Found && res.Key != want) {
					t.Errorf("goroutine %d: Floor(%d) = %+v want %d,%v", g, q, res, want, wok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Stats().TotalOps; got != 8*500 {
		t.Fatalf("ops = %d, want 4000", got)
	}
}

// TestConcurrentMixedViaActor serializes updates through the actor-per-
// host discipline while queries run concurrently against a second web.
func TestConcurrentMixedViaActor(t *testing.T) {
	c := NewCluster(64)
	keys := distinctKeys(xrand.New(33), 512)
	web, err := NewOneDim(c, keys, Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex // stands in for the owning actor of the index
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g)*104729 + 7)
			for i := 0; i < 200; i++ {
				if rng.Intn(4) == 0 {
					k := rng.Uint64n(1 << 41)
					mu.Lock()
					_, _ = web.Insert(k, HostID(rng.Intn(64)))
					mu.Unlock()
					continue
				}
				mu.Lock()
				_, err := web.Floor(rng.Uint64n(1<<41), HostID(rng.Intn(64)))
				mu.Unlock()
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if web.Len() < 512 {
		t.Fatalf("len %d shrank", web.Len())
	}
}
