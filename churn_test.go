package skipwebs

import (
	"errors"
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestJoinLeaveMigratesAndStaysConsistent drives the public churn API
// over every structure kind at once and verifies the acceptance
// contract: CheckConsistent after every event, zero lost keys, and all
// migration traffic visible in the cluster's message totals.
func TestJoinLeaveMigratesAndStaysConsistent(t *testing.T) {
	c := NewCluster(12)
	rng := xrand.New(3)
	keys := distinctKeys(rng, 400)
	oned, err := NewOneDim(c, keys, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := NewBlocked(c, keys, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := NewBucketed(c, keys, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("fresh cluster: %v", err)
	}
	c.ResetTraffic()

	checkKeys := func(stage string) {
		t.Helper()
		for i, k := range keys {
			if ok, _, err := oned.Contains(k, c.HostAt(i)); err != nil || !ok {
				t.Fatalf("%s: onedim lost key %d: %v", stage, k, err)
			}
			if r, err := blocked.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
				t.Fatalf("%s: blocked lost key %d: %v", stage, k, err)
			}
			if r, err := bucketed.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
				t.Fatalf("%s: bucketed lost key %d: %v", stage, k, err)
			}
		}
	}

	// A leave must drain the host, charge visible migration traffic, and
	// leave every structure consistent.
	before := c.Stats().TotalMessages
	victim := c.HostAt(7)
	if err := c.Leave(victim); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := c.Stats().TotalMessages; got <= before {
		t.Fatalf("leave charged no migration messages (total %d -> %d)", before, got)
	}
	if c.Hosts() != 11 {
		t.Fatalf("hosts = %d after leave, want 11", c.Hosts())
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
	checkKeys("after leave")

	// A join hands the newcomer load and stays consistent.
	before = c.Stats().TotalMessages
	h := c.Join()
	if !c.net.Alive(h) || c.Hosts() != 12 {
		t.Fatalf("join: host %d alive=%v hosts=%d", h, c.net.Alive(h), c.Hosts())
	}
	if got := c.Stats().TotalMessages; got <= before {
		t.Fatalf("join charged no migration messages (total %d -> %d)", before, got)
	}
	if c.net.Storage(h) == 0 {
		t.Fatalf("joiner %d received no storage", h)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	checkKeys("after join")

	// Leaving a departed host or a bogus id fails cleanly.
	if err := c.Leave(victim); err == nil {
		t.Fatal("second leave of same host succeeded")
	}
	if err := c.Leave(HostID(10_000)); err == nil {
		t.Fatal("leave of unknown host succeeded")
	}
}

// TestLeaveAfterUpdates pins the exactness of the blocked/bucket webs'
// storage accounting: inserts and deletes move boundary-straddle copies
// and split blocks, and Leave requires the departing host to drain to
// exactly zero — any drift in the update paths fails here.
func TestLeaveAfterUpdates(t *testing.T) {
	c := NewCluster(16)
	rng := xrand.New(5)
	keys := distinctKeys(rng, 600)
	b, err := NewBlocked(c, keys[:400], Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bu, err := NewBucketed(c, keys[:400], Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 600; i++ {
		if _, err := b.Insert(keys[i], c.HostAt(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := bu.Insert(keys[i], c.HostAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := b.Delete(keys[i*2], c.HostAt(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := bu.Delete(keys[i*2], c.HostAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	for c.Hosts() > 4 {
		if err := c.Leave(c.HostAt(1)); err != nil {
			t.Fatalf("leave after updates: %v", err)
		}
		if err := c.CheckConsistent(); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave more updates with the shrunken cluster and leave again.
	if _, err := b.Insert(1<<41, c.HostAt(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(c.HostAt(0)); err != nil {
		t.Fatalf("leave after post-churn insert: %v", err)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaveDownToOneHost shrinks a cluster until a single host holds
// everything: queries must keep working the whole way down, and the
// last live host must refuse to leave.
func TestLeaveDownToOneHost(t *testing.T) {
	c := NewCluster(6)
	rng := xrand.New(17)
	keys := distinctKeys(rng, 200)
	w, err := NewOneDim(c, keys, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{{1, 2}, {5, 9}, {100, 7}, {42, 42}, {7, 300}}
	pweb, err := NewPoints(c, 2, pts, Options{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	for c.Hosts() > 1 {
		if err := c.Leave(c.HostAt(0)); err != nil {
			t.Fatalf("leave at %d hosts: %v", c.Hosts(), err)
		}
		if err := c.CheckConsistent(); err != nil {
			t.Fatalf("consistency at %d hosts: %v", c.Hosts(), err)
		}
		for i, k := range keys[:32] {
			if ok, _, err := w.Contains(k, c.HostAt(i)); err != nil || !ok {
				t.Fatalf("key %d lost at %d hosts: %v", k, c.Hosts(), err)
			}
		}
	}
	last := c.HostAt(0)
	if err := c.Leave(last); err == nil {
		t.Fatal("last live host allowed to leave")
	}
	// Everything must now live on the one survivor, and queries cost no
	// messages (all state is local).
	if st := c.net.Storage(last); st == 0 {
		t.Fatal("survivor holds no storage")
	}
	for _, p := range pts {
		ok, hops, err := pweb.Contains(p, last)
		if err != nil || !ok {
			t.Fatalf("point %v lost on single host: %v", p, err)
		}
		if hops != 0 {
			t.Fatalf("single-host query cost %d messages, want 0", hops)
		}
	}
	// The cluster can grow again from one host.
	c.Join()
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after regrow: %v", err)
	}
}

// TestJoinDuringInFlightBatch races churn against a running read batch:
// Join/Leave take the cluster's write lock, so they serialize behind
// the batch and the combination must stay consistent (run with -race).
func TestJoinDuringInFlightBatch(t *testing.T) {
	c := NewCluster(16)
	defer c.Close()
	rng := xrand.New(23)
	keys := distinctKeys(rng, 512)
	w, err := NewBlocked(c, keys, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]uint64, 4096)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 34)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One goroutine pins explicit origins so the origin-liveness
			// validation path (not just the nil round-robin default) races
			// the churn below; origin 0 never leaves in this test.
			var origins []HostID
			if g == 0 {
				origins = []HostID{0}
			}
			for round := 0; round < 4; round++ {
				res, err := w.FloorBatch(qs, origins)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i, r := range res {
					want, wok := bruteFloor(keys, qs[i])
					if r.Found != wok || (r.Found && r.Key != want) {
						t.Errorf("floor(%d) = %+v, want %d,%v", qs[i], r, want, wok)
						return
					}
				}
			}
		}(g)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 4; i++ {
			h := c.Join()
			if err := c.Leave(h); err != nil {
				t.Errorf("leave joined host %d: %v", h, err)
				return
			}
		}
	}()
	wg.Wait()
	churn.Wait()
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after concurrent churn+batch: %v", err)
	}
}

// TestChurnAfterClose pins Close's contract: batch calls panic after
// Close, but synchronous calls — including Join and Leave — remain
// valid.
func TestChurnAfterClose(t *testing.T) {
	c := NewCluster(4)
	rng := xrand.New(61)
	keys := distinctKeys(rng, 64)
	w, err := NewOneDim(c, keys, Options{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.FloorBatch(keys[:8], nil); err != nil { // start the worker pool
		t.Fatal(err)
	}
	c.Close()
	h := c.Join()
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after post-Close join: %v", err)
	}
	if err := c.Leave(h); err != nil {
		t.Fatalf("post-Close leave: %v", err)
	}
	if ok, _, err := w.Contains(keys[0], c.HostAt(0)); err != nil || !ok {
		t.Fatalf("key lost across post-Close churn: %v", err)
	}
}

// TestCloseRacesJoin pins that Close serializes with concurrent churn:
// a Join landing around Close must neither deadlock Close nor leak a
// worker (run with -race).
func TestCloseRacesJoin(t *testing.T) {
	for round := 0; round < 8; round++ {
		c := NewCluster(4)
		rng := xrand.New(uint64(71 + round))
		keys := distinctKeys(rng, 32)
		w, err := NewOneDim(c, keys, Options{Seed: 71})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.FloorBatch(keys[:4], nil); err != nil { // start the pool
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 3; i++ {
				c.Join()
			}
		}()
		c.Close() // must return even with joins in flight
		<-done
		if err := c.CheckConsistent(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChurnStormProperty is the storm property test: a seeded random
// interleaving of joins, leaves, inserts, deletes, and queries, after
// which (a) every structure passes CheckConsistent, (b) the surviving
// key set answers exactly like a freshly built churn-free web — the
// golden-parity property that churn only moves data, never changes
// answers — and (c) query hop counts stay within the routed-descent
// regime rather than degrading toward a broadcast.
func TestChurnStormProperty(t *testing.T) {
	c := NewCluster(10)
	rng := xrand.New(41)
	keys := distinctKeys(rng, 600)
	live := make(map[uint64]bool, 400)
	w, err := NewOneDim(c, keys[:400], Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:400] {
		live[k] = true
	}
	next := 400
	for step := 0; step < 120; step++ {
		switch rng.Intn(6) {
		case 0:
			c.Join()
		case 1:
			if c.Hosts() > 3 {
				if err := c.Leave(c.HostAt(rng.Intn(c.Hosts()))); err != nil {
					t.Fatalf("storm leave: %v", err)
				}
			}
		case 2, 3:
			if next < len(keys) {
				if _, err := w.Insert(keys[next], c.HostAt(rng.Intn(c.Hosts()))); err != nil {
					t.Fatalf("storm insert: %v", err)
				}
				live[keys[next]] = true
				next++
			}
		case 4:
			for _, k := range keys[:next] {
				if live[k] {
					if _, err := w.Delete(k, c.HostAt(rng.Intn(c.Hosts()))); err != nil {
						t.Fatalf("storm delete: %v", err)
					}
					delete(live, k)
					break
				}
			}
		case 5:
			if _, err := w.Floor(rng.Uint64n(1<<36), c.HostAt(rng.Intn(c.Hosts()))); err != nil {
				t.Fatalf("storm query: %v", err)
			}
		}
		if err := c.CheckConsistent(); err != nil {
			t.Fatalf("storm step %d: %v", step, err)
		}
	}

	// Golden parity against a churn-free control built over the same
	// surviving key set: identical answers on identical queries, and
	// stormed hop counts within the same O(log n) regime.
	var survivors []uint64
	for k := range live {
		survivors = append(survivors, k)
	}
	control := NewCluster(c.Hosts())
	cw, err := NewOneDim(control, survivors, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	qrng := xrand.New(99)
	var stormHops, controlHops int
	for i := 0; i < 500; i++ {
		q := qrng.Uint64n(1 << 36)
		got, err := w.Floor(q, c.HostAt(i))
		if err != nil {
			t.Fatalf("storm floor: %v", err)
		}
		want, err := cw.Floor(q, control.HostAt(i))
		if err != nil {
			t.Fatalf("control floor: %v", err)
		}
		if got.Found != want.Found || (got.Found && got.Key != want.Key) {
			t.Fatalf("Floor(%d) = %+v after storm, control says %+v", q, got, want)
		}
		stormHops += got.Hops
		controlHops += want.Hops
	}
	if stormHops > 4*controlHops {
		t.Fatalf("storm hops %d vs control %d: routing degraded past the descent regime", stormHops, controlHops)
	}
}

// TestChurnEdgeCases pins the clean-error contract on the churn API's
// boundary inputs: leaving a departed host twice, leaving ids that were
// never issued (including negative ones), and a join immediately
// followed by the joiner's leave — before the newcomer has absorbed any
// meaningful share — must all either succeed cleanly or fail cleanly,
// and must leave every structure consistent with zero lost keys.
func TestChurnEdgeCases(t *testing.T) {
	c := NewCluster(6)
	rng := xrand.New(83)
	keys := distinctKeys(rng, 200)
	w, err := NewOneDim(c, keys, Options{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}

	// Leave of a never-issued id, in both directions.
	for _, bogus := range []HostID{-1, -100, 6, 10_000} {
		if err := c.Leave(bogus); err == nil {
			t.Fatalf("leave of never-issued host %d succeeded", bogus)
		}
	}
	if c.Hosts() != 6 {
		t.Fatalf("failed leaves changed the live count to %d", c.Hosts())
	}

	// Leave of an already-departed host fails cleanly, repeatedly.
	victim := c.HostAt(3)
	if err := c.Leave(victim); err != nil {
		t.Fatalf("leave: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Leave(victim); err == nil {
			t.Fatal("leave of departed host succeeded")
		}
	}

	// Join immediately followed by the joiner's leave: the newcomer may
	// hold an arbitrarily small share (possibly nothing); the drain must
	// still be exact and the cluster consistent.
	h := c.Join()
	if err := c.Leave(h); err != nil {
		t.Fatalf("leave of fresh joiner: %v", err)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after join+immediate leave: %v", err)
	}

	// The same dance on a replicated cluster (fresh joiner may have been
	// handed replica slots by the rebalance + top-up).
	cr := NewCluster(5)
	wr, err := NewOneDim(cr, keys, Options{Seed: 84, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	h = cr.Join()
	if err := cr.Leave(h); err != nil {
		t.Fatalf("replicated join+immediate leave: %v", err)
	}
	if err := cr.CheckConsistent(); err != nil {
		t.Fatalf("replicated cluster after join+immediate leave: %v", err)
	}
	for i, k := range keys[:64] {
		if ok, _, err := w.Contains(k, c.HostAt(i)); err != nil || !ok {
			t.Fatalf("key %d lost across edge-case churn: %v", k, err)
		}
		if ok, _, err := wr.Contains(k, cr.HostAt(i)); err != nil || !ok {
			t.Fatalf("replicated key %d lost across edge-case churn: %v", k, err)
		}
	}
}

// TestCloseRacesFloorBatch is the Close-vs-batch audit regression: a
// Close landing around in-flight FloorBatches must drain them, never
// deadlock, and never double-close a mailbox; batches that start after
// Close observe the documented panic instead of hanging (run with
// -race).
func TestCloseRacesFloorBatch(t *testing.T) {
	for round := 0; round < 6; round++ {
		c := NewCluster(8)
		rng := xrand.New(uint64(91 + round))
		keys := distinctKeys(rng, 128)
		w, err := NewOneDim(c, keys, Options{Seed: uint64(91 + round)})
		if err != nil {
			t.Fatal(err)
		}
		qs := keys[:64]
		if _, err := w.FloorBatch(qs[:4], nil); err != nil { // start the pool
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Batches racing Close either complete normally (they
				// held the read lock first) or panic with the documented
				// after-Close message — never a deadlock or a second
				// mailbox close.
				defer func() { _ = recover() }()
				for i := 0; i < 4; i++ {
					if _, err := w.FloorBatch(qs, nil); err != nil {
						t.Errorf("racing batch: %v", err)
						return
					}
				}
			}()
		}
		c.Close()
		wg.Wait()
		c.Close() // idempotent, also when racing batches just drained
		if err := c.CheckConsistent(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriterRacesChurnReplicated races a striped writer (concurrent
// insert batches, WriteStripes 4) against the full churn API — Join,
// Leave, and Crash at Replicas 2 — and requires the structure to come
// out exactly consistent: churn takes the cluster write lock and drains
// the writer's in-flight batches, the k=2 replication absorbs each
// crash with zero data loss, and every batch that reported success must
// have all its keys present afterwards.
func TestWriterRacesChurnReplicated(t *testing.T) {
	const hosts, stripes, build, chunk = 12, 4, 512, 32
	keys := distinctKeys(xrand.New(61), build+1024)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewBlocked(c, keys[:build], Options{Seed: 19, Replicas: 2, WriteStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	pool := keys[build:]
	var mu sync.Mutex
	var okChunks [][]uint64 // batches that returned nil error
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for i := 0; i+chunk <= len(pool); i += chunk {
			ck := pool[i : i+chunk]
			if _, err := w.InsertBatch(ck, nil); err == nil {
				mu.Lock()
				okChunks = append(okChunks, ck)
				mu.Unlock()
			} else if !errors.Is(err, ErrHostDown) {
				t.Errorf("insert batch: %v", err)
				return
			}
		}
	}()
	// Churn storm, racing the writer's whole pool: every event blocks
	// until in-flight batches drain.
	for round := 0; round < 3; round++ {
		c.Join()
		if err := c.Leave(c.HostAt(2)); err != nil {
			t.Errorf("leave: %v", err)
		}
		if err := c.Crash(c.HostAt(5)); err != nil {
			t.Errorf("crash at replicas=2: %v", err)
		}
	}
	writerDone.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after churn storm: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(okChunks) == 0 {
		t.Fatal("no insert batch completed — the race never happened")
	}
	for _, ck := range okChunks {
		rs, err := w.FloorBatch(ck, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if !r.Found || r.Key != ck[i] {
				t.Fatalf("committed key %d lost across churn: %+v", ck[i], r)
			}
		}
	}
}
