package skipwebs_test

import (
	"fmt"
	"log"

	skipwebs "github.com/skipwebs/skipwebs"
)

func ExampleNewBlocked() {
	cluster := skipwebs.NewCluster(16)
	keys := []uint64{10, 20, 30, 40, 50}
	web, err := skipwebs.NewBlocked(cluster, keys, skipwebs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := web.Floor(34, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Key, res.Found)
	// Output: 30 true
}

func ExampleNewStrings() {
	cluster := skipwebs.NewCluster(8)
	web, err := skipwebs.NewStrings(cluster, []string{"ant", "antelope", "bee"}, skipwebs.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	keys, _, err := web.PrefixSearch("ant", 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(keys)
	// Output: [ant antelope]
}

func ExampleNewPoints() {
	cluster := skipwebs.NewCluster(8)
	pts := []skipwebs.Point{{10, 10}, {1000, 1000}, {500, 900}}
	web, err := skipwebs.NewPoints(cluster, 2, pts, skipwebs.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	nearest, _, err := web.Nearest(skipwebs.Point{480, 880}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(nearest)
	// Output: [500 900]
}
