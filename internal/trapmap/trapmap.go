// Package trapmap implements trapezoidal maps of non-crossing line
// segments in the plane, the range-determined link structure of Section
// 3.3 of the skip-webs paper (Figure 4).
//
// A trapezoidal map D(S) subdivides the plane by the input segments plus
// vertical walls extended up and down from each segment endpoint until
// they hit another segment or the bounding box. The range of each node is
// its trapezoid; Lemma 5 shows the conflict count of a trapezoid t of
// D(T) against D(S) is exactly 1 + a + 2b + 3c, where a segments cut all
// the way across t, b have one endpoint inside, and c have both.
//
// All geometry is exact: coordinates are integers with |x|,|y| <= MaxCoord,
// internally scaled by 4 so that every slab midpoint is an exact interior
// integer, and query points are offset by +1 in scaled space — a symbolic
// perturbation that keeps queries off every wall. Every predicate is a
// sign computation on int64 products that cannot overflow.
//
// General-position requirements (validated by Build): segments are
// pairwise disjoint (no crossings, no shared endpoints — the paper's
// "disjoint line segments"), no vertical segments, and all endpoint
// x-coordinates are distinct.
package trapmap

import (
	"fmt"
	"sort"
	"strings"
)

// MaxCoord bounds |X| and |Y| of every coordinate so that the three-factor
// products in exact predicates fit comfortably in int64 after the internal
// scaling by 4.
const MaxCoord = 1 << 16

// Scale is the internal coordinate multiplier. Endpoints and walls live
// at multiples of Scale; slab midpoints at multiples of 2; perturbed
// query points at odd coordinates. The three layers never collide.
// Trapezoid values returned by Trap are in this scaled space; divide by
// Scale to recover user coordinates (exact for endpoints and walls).
const Scale = 4

// scale is the internal alias.
const scale = Scale

// Point is an exact integer point.
type Point struct {
	X, Y int64
}

// Segment is a non-vertical segment with A.X < B.X.
type Segment struct {
	A, B Point
}

// Rect is an axis-aligned bounding box.
type Rect struct {
	MinX, MinY, MaxX, MaxY int64
}

// TrapID identifies a trapezoid within one Map. NoTrap means "none".
type TrapID int32

// NoTrap is the sentinel TrapID.
const NoTrap TrapID = -1

// Trapezoid describes one face of the map in doubled internal coordinates.
// Top/Bottom are the bounding segments; HasTop/HasBottom are false when
// the face is bounded by the box edge instead. L and R are the x
// coordinates of the left and right walls. A trapezoid owns the points
// with L <= x < R that are strictly above Bottom-or-on-Bottom and strictly
// below Top ("on a segment" counts as above it).
type Trapezoid struct {
	Top, Bottom       Segment
	HasTop, HasBottom bool
	L, R              int64
}

// Map is a trapezoidal map over a fixed segment set. The zero value is not
// usable; construct with Build.
type Map struct {
	segs   []Segment // doubled coordinates
	bounds Rect      // doubled
	traps  []Trapezoid
	index  map[trapKey]TrapID
}

type trapKey struct {
	top, bottom       Segment
	hasTop, hasBottom bool
	l                 int64
}

func keyOf(t Trapezoid) trapKey {
	k := trapKey{hasTop: t.HasTop, hasBottom: t.HasBottom, l: t.L}
	if t.HasTop {
		k.top = t.Top
	}
	if t.HasBottom {
		k.bottom = t.Bottom
	}
	return k
}

// cross returns the sign of the cross product (B-A) x (P-A): positive when
// P is strictly above the directed line A->B (with A.X < B.X).
func cross(s Segment, p Point) int {
	v := (s.B.X-s.A.X)*(p.Y-s.A.Y) - (s.B.Y-s.A.Y)*(p.X-s.A.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// cmpAtX compares s1(x) and s2(x), the y values of the two segments at
// abscissa x; both segments must span x. The result is the sign of
// s1(x) - s2(x).
func cmpAtX(s1, s2 Segment, x int64) int {
	dx1 := s1.B.X - s1.A.X
	dx2 := s2.B.X - s2.A.X
	// y_i(x) = A.Y + (B.Y-A.Y)(x-A.X)/dx_i; compare via cross-multiplying
	// by the (positive) denominators.
	n1 := (s1.A.Y*dx1 + (s1.B.Y-s1.A.Y)*(x-s1.A.X)) * dx2
	n2 := (s2.A.Y*dx2 + (s2.B.Y-s2.A.Y)*(x-s2.A.X)) * dx1
	switch {
	case n1 > n2:
		return 1
	case n1 < n2:
		return -1
	default:
		return 0
	}
}

func segSpansOpen(s Segment, x int64) bool { return s.A.X < x && x < s.B.X }

// segmentsIntersect reports whether two segments share any point,
// including endpoints (exact).
func segmentsIntersect(a, b Segment) bool {
	o1 := cross(a, b.A)
	o2 := cross(a, b.B)
	o3 := cross(b, a.A)
	o4 := cross(b, a.B)
	if o1*o2 < 0 && o3*o4 < 0 {
		return true
	}
	onSeg := func(s Segment, p Point) bool {
		if cross(s, p) != 0 {
			return false
		}
		return s.A.X <= p.X && p.X <= s.B.X &&
			min64(s.A.Y, s.B.Y) <= p.Y && p.Y <= max64(s.A.Y, s.B.Y)
	}
	return onSeg(a, b.A) || onSeg(a, b.B) || onSeg(b, a.A) || onSeg(b, a.B)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ValidateDisjoint checks the general-position requirements on a segment
// set in user coordinates. It is exported for workload generators.
func ValidateDisjoint(segs []Segment, bounds Rect) error {
	xs := map[int64]bool{}
	for i, s := range segs {
		if s.A.X >= s.B.X {
			return fmt.Errorf("trapmap: segment %d not left-to-right (vertical segments unsupported)", i)
		}
		for _, p := range []Point{s.A, s.B} {
			if p.X < -MaxCoord || p.X > MaxCoord || p.Y < -MaxCoord || p.Y > MaxCoord {
				return fmt.Errorf("trapmap: segment %d coordinate out of range ±%d", i, MaxCoord)
			}
			if p.X <= bounds.MinX || p.X >= bounds.MaxX || p.Y <= bounds.MinY || p.Y >= bounds.MaxY {
				return fmt.Errorf("trapmap: segment %d endpoint %+v not strictly inside bounds %+v", i, p, bounds)
			}
			if xs[p.X] {
				return fmt.Errorf("trapmap: duplicate endpoint x-coordinate %d (general position required)", p.X)
			}
			xs[p.X] = true
		}
	}
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segmentsIntersect(segs[i], segs[j]) {
				return fmt.Errorf("trapmap: segments %d and %d intersect", i, j)
			}
		}
	}
	return nil
}

// Build constructs the trapezoidal map of segs within bounds. Inputs are
// in user coordinates and validated; the error reports the violation.
func Build(segs []Segment, bounds Rect) (*Map, error) {
	if bounds.MinX >= bounds.MaxX || bounds.MinY >= bounds.MaxY {
		return nil, fmt.Errorf("trapmap: empty bounds %+v", bounds)
	}
	if bounds.MinX < -MaxCoord || bounds.MaxX > MaxCoord || bounds.MinY < -MaxCoord || bounds.MaxY > MaxCoord {
		return nil, fmt.Errorf("trapmap: bounds out of range ±%d", MaxCoord)
	}
	if err := ValidateDisjoint(segs, bounds); err != nil {
		return nil, err
	}
	m := &Map{
		segs:   make([]Segment, len(segs)),
		bounds: Rect{bounds.MinX * scale, bounds.MinY * scale, bounds.MaxX * scale, bounds.MaxY * scale},
		index:  make(map[trapKey]TrapID),
	}
	for i, s := range segs {
		m.segs[i] = Segment{
			Point{s.A.X * scale, s.A.Y * scale},
			Point{s.B.X * scale, s.B.Y * scale},
		}
	}
	m.enumerate()
	return m, nil
}

// enumerate lists all trapezoids by scanning each slab between consecutive
// wall x-coordinates and deduplicating faces that span multiple slabs.
func (m *Map) enumerate() {
	xs := []int64{m.bounds.MinX, m.bounds.MaxX}
	for _, s := range m.segs {
		xs = append(xs, s.A.X, s.B.X)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for i := 0; i+1 < len(xs); i++ {
		if xs[i] == xs[i+1] {
			continue
		}
		// Walls are multiples of scale and distinct, so the midpoint is an
		// exact integer strictly inside the slab.
		xm := (xs[i] + xs[i+1]) / 2
		crossing := m.segmentsAt(xm)
		// Strips bottom-to-top: (box bottom, s1), (s1, s2), ..., (sk, box top).
		for j := 0; j <= len(crossing); j++ {
			var t Trapezoid
			if j > 0 {
				t.Bottom = crossing[j-1]
				t.HasBottom = true
			}
			if j < len(crossing) {
				t.Top = crossing[j]
				t.HasTop = true
			}
			t.L = m.wallLeft(t, xm)
			t.R = m.wallRight(t, xm)
			k := keyOf(t)
			if _, ok := m.index[k]; !ok {
				m.index[k] = TrapID(len(m.traps))
				m.traps = append(m.traps, t)
			}
		}
	}
}

// segmentsAt returns the segments spanning abscissa x, sorted bottom to top.
func (m *Map) segmentsAt(x int64) []Segment {
	var out []Segment
	for _, s := range m.segs {
		if segSpansOpen(s, x) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return cmpAtX(out[i], out[j], x) < 0 })
	return out
}

// wallLeft computes the left wall of the face whose top/bottom are t's and
// which contains abscissa x: the rightmost wall candidate at or left of x.
func (m *Map) wallLeft(t Trapezoid, x int64) int64 {
	l := m.bounds.MinX
	if t.HasTop && t.Top.A.X > l {
		l = t.Top.A.X
	}
	if t.HasBottom && t.Bottom.A.X > l {
		l = t.Bottom.A.X
	}
	for _, s := range m.segs {
		for _, p := range []Point{s.A, s.B} {
			if p.X <= l || p.X > x {
				continue
			}
			if m.strictlyInStrip(t, p) {
				l = p.X
			}
		}
	}
	return l
}

// wallRight is symmetric: the leftmost wall candidate strictly right of x.
func (m *Map) wallRight(t Trapezoid, x int64) int64 {
	r := m.bounds.MaxX
	if t.HasTop && t.Top.B.X < r {
		r = t.Top.B.X
	}
	if t.HasBottom && t.Bottom.B.X < r {
		r = t.Bottom.B.X
	}
	for _, s := range m.segs {
		for _, p := range []Point{s.A, s.B} {
			if p.X <= x || p.X >= r {
				continue
			}
			if m.strictlyInStrip(t, p) {
				r = p.X
			}
		}
	}
	return r
}

// strictlyInStrip reports whether point p lies strictly between t's bottom
// and top boundaries at abscissa p.X. Both boundaries must span p.X for
// the test to be meaningful; a boundary that does not span p.X cannot
// bound the face there, and the caller's wall-candidate x filters ensure
// spanning, except for box sentinels which always "span".
func (m *Map) strictlyInStrip(t Trapezoid, p Point) bool {
	if t.HasBottom {
		if !segSpansOpen(t.Bottom, p.X) {
			return false
		}
		if cross(t.Bottom, p) <= 0 {
			return false
		}
	} else if p.Y <= m.bounds.MinY {
		return false
	}
	if t.HasTop {
		if !segSpansOpen(t.Top, p.X) {
			return false
		}
		if cross(t.Top, p) >= 0 {
			return false
		}
	} else if p.Y >= m.bounds.MaxY {
		return false
	}
	return true
}

// NumTraps returns the number of trapezoids. For n disjoint segments the
// count is exactly 3n+1 in general position.
func (m *Map) NumTraps() int { return len(m.traps) }

// Trap returns trapezoid id (doubled coordinates).
func (m *Map) Trap(id TrapID) Trapezoid { return m.traps[id] }

// Segments returns the map's segments in doubled internal coordinates.
func (m *Map) Segments() []Segment { return append([]Segment(nil), m.segs...) }

// Bounds returns the doubled bounding box.
func (m *Map) Bounds() Rect { return m.bounds }

// Locate returns the trapezoid containing the user-coordinate point q,
// under a symbolic up-right perturbation: q is mapped to (4q.X+1, 4q.Y+1)
// in internal coordinates, so queries exactly on a wall or segment resolve
// deterministically to the face up and to the right. An error is returned
// if q is outside the bounding box.
func (m *Map) Locate(q Point) (TrapID, error) {
	return m.locateInternal(perturb(q))
}

// perturb maps a user-coordinate query point into scaled space, offset so
// it can never coincide with a wall abscissa.
func perturb(q Point) Point {
	return Point{q.X*scale + 1, q.Y*scale + 1}
}

func (m *Map) locateInternal(p Point) (TrapID, error) {
	if p.X < m.bounds.MinX || p.X >= m.bounds.MaxX || p.Y < m.bounds.MinY || p.Y >= m.bounds.MaxY {
		return NoTrap, fmt.Errorf("trapmap: point %+v outside bounds", p)
	}
	var t Trapezoid
	// Find the tightest boundaries around p among segments spanning p.X.
	for _, s := range m.segs {
		if !segSpansOpen(s, p.X) {
			continue
		}
		if cross(s, p) >= 0 {
			// s is at or below p: candidate bottom (keep the highest).
			if !t.HasBottom || cmpAtX(s, t.Bottom, p.X) > 0 {
				t.Bottom = s
				t.HasBottom = true
			}
		} else {
			if !t.HasTop || cmpAtX(s, t.Top, p.X) < 0 {
				t.Top = s
				t.HasTop = true
			}
		}
	}
	t.L = m.wallLeft(t, p.X)
	t.R = m.wallRight(t, p.X)
	// p.X may itself be a wall (when p.X equals an endpoint x); the point
	// belongs to the face on the right, which wallLeft already honors
	// because candidates use p.X inclusively on the left side.
	id, ok := m.index[keyOf(t)]
	if !ok {
		return NoTrap, fmt.Errorf("trapmap: internal error: face %+v not enumerated", t)
	}
	return id, nil
}

// Contains reports whether trapezoid id contains the user-coordinate point
// q, under the same symbolic perturbation as Locate (so Contains agrees
// with Locate on every query, including degenerate ones).
func (m *Map) Contains(id TrapID, q Point) bool {
	p := perturb(q)
	t := m.traps[id]
	if p.X < t.L || p.X >= t.R {
		return false
	}
	if t.HasBottom {
		if !segSpansOpen(t.Bottom, p.X) || cross(t.Bottom, p) < 0 {
			return false
		}
	} else if p.Y < m.bounds.MinY {
		return false
	}
	if t.HasTop {
		if !segSpansOpen(t.Top, p.X) || cross(t.Top, p) >= 0 {
			return false
		}
	} else if p.Y >= m.bounds.MaxY {
		return false
	}
	return true
}

// ConflictStats is the decomposition of Lemma 5: a segments cut across the
// trapezoid, b have one endpoint strictly inside, c have both. The lemma
// proves the conflict count against D(S) equals 1 + a + 2b + 3c.
type ConflictStats struct {
	A, B, C int
}

// Count returns 1 + a + 2b + 3c.
func (c ConflictStats) Count() int { return 1 + c.A + 2*c.B + 3*c.C }

// ConflictStats computes Lemma 5's decomposition for trapezoid t (in
// doubled coordinates, e.g. from Trap of another map built over a subset)
// against this map's segments.
func (m *Map) ConflictStats(t Trapezoid) ConflictStats {
	var cs ConflictStats
	for _, s := range m.segs {
		if t.HasTop && s == t.Top || t.HasBottom && s == t.Bottom {
			continue
		}
		inside := 0
		for _, p := range []Point{s.A, s.B} {
			if p.X > t.L && p.X < t.R && m.strictlyInStrip(t, p) {
				inside++
			}
		}
		switch inside {
		case 2:
			cs.C++
		case 1:
			cs.B++
		default:
			// No endpoint inside: s conflicts iff it cuts across the open
			// interior, i.e. its span overlaps (L, R) and it runs strictly
			// between bottom and top there.
			xlo := max64(t.L, s.A.X)
			xhi := min64(t.R, s.B.X)
			if xlo >= xhi {
				continue
			}
			xm := (xlo + xhi) / 2
			// Evaluate "strictly between" by comparing s against the
			// boundaries at xm with exact segment-vs-segment comparison.
			// A box-edge boundary never excludes s (segments live strictly
			// inside the box).
			between := true
			if t.HasBottom {
				if !segSpansOpen(t.Bottom, xm) || cmpAtX(s, t.Bottom, xm) <= 0 {
					between = false
				}
			}
			if between && t.HasTop {
				if !segSpansOpen(t.Top, xm) || cmpAtX(s, t.Top, xm) >= 0 {
					between = false
				}
			}
			if between {
				cs.A++
			}
		}
	}
	return cs
}

// Intersects reports whether the open interiors of two trapezoids
// intersect. The trapezoids may come from maps over different subsets of
// the same non-crossing arrangement (both in scaled coordinates); because
// no two segments cross, vertical order is constant over any common
// x-range, so a single exact comparison at the overlap midpoint decides.
// Open-interior overlap matches Lemma 5's counting: a trapezoid conflicts
// with itself and with anything crossing or containing part of its
// interior, but not with faces it merely touches along a wall.
func Intersects(a, b Trapezoid) bool {
	xlo := max64(a.L, b.L)
	xhi := min64(a.R, b.R)
	if xlo >= xhi {
		return false
	}
	xm := (xlo + xhi) / 2
	// Vertical overlap at xm: max(bottoms) < min(tops). A box-edge
	// boundary never excludes overlap against a segment boundary, since
	// segments live strictly inside the box.
	if a.HasBottom && b.HasTop && cmpAtX(a.Bottom, b.Top, xm) >= 0 {
		return false
	}
	if b.HasBottom && a.HasTop && cmpAtX(b.Bottom, a.Top, xm) >= 0 {
		return false
	}
	return true
}

// Conflicts returns the trapezoids of this map whose interiors intersect
// trapezoid t (doubled coordinates, typically from a map over a subset).
func (m *Map) Conflicts(t Trapezoid) []TrapID {
	var out []TrapID
	for id := range m.traps {
		if Intersects(m.traps[id], t) {
			out = append(out, TrapID(id))
		}
	}
	return out
}

// InteriorPoint returns a point strictly inside trapezoid id, in doubled
// coordinates. Every trapezoid of a valid map has one.
func (m *Map) InteriorPoint(id TrapID) Point {
	t := m.traps[id]
	xm := (t.L + t.R) / 2
	var lo, hi int64
	if t.HasBottom {
		lo = segYFloorAt(t.Bottom, xm) // may be slightly below the true value
	} else {
		lo = m.bounds.MinY
	}
	if t.HasTop {
		hi = segYFloorAt(t.Top, xm)
	} else {
		hi = m.bounds.MaxY
	}
	return Point{X: xm, Y: (lo + hi) / 2}
}

// segYFloorAt returns floor of the y value of s at x.
func segYFloorAt(s Segment, x int64) int64 {
	dx := s.B.X - s.A.X
	num := s.A.Y*dx + (s.B.Y-s.A.Y)*(x-s.A.X)
	// Floor division for possibly negative numerator.
	q := num / dx
	if num%dx != 0 && (num < 0) != (dx < 0) {
		q--
	}
	return q
}

// CheckInvariants verifies that the map is a subdivision: trapezoid count
// is 3n+1, faces pairwise interior-disjoint, and a grid of probe points is
// covered by exactly one face each.
func (m *Map) CheckInvariants() error {
	want := 3*len(m.segs) + 1
	if len(m.traps) != want {
		return fmt.Errorf("trapmap: %d trapezoids for %d segments, want %d", len(m.traps), len(m.segs), want)
	}
	for i := range m.traps {
		for j := i + 1; j < len(m.traps); j++ {
			if Intersects(m.traps[i], m.traps[j]) {
				return fmt.Errorf("trapmap: faces %d and %d overlap", i, j)
			}
		}
	}
	for i := range m.traps {
		t := m.traps[i]
		if t.L >= t.R {
			return fmt.Errorf("trapmap: face %d empty x-range [%d,%d)", i, t.L, t.R)
		}
	}
	return nil
}

// Render draws a coarse ASCII raster of the map (Figure 4 style): each
// cell shows the index (mod 62) of the trapezoid containing its center.
func (m *Map) Render(cols, rows int) string {
	alphabet := "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	w := m.bounds.MaxX - m.bounds.MinX
	h := m.bounds.MaxY - m.bounds.MinY
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := m.bounds.MinX + w*int64(2*c+1)/int64(2*cols)
			y := m.bounds.MaxY - h*int64(2*r+1)/int64(2*rows)
			id, err := m.locateInternal(Point{x, y})
			if err != nil {
				b.WriteByte('?')
				continue
			}
			b.WriteByte(alphabet[int(id)%len(alphabet)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
