package trapmap

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

var testBounds = Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}

// genSegments produces n pairwise-disjoint segments with distinct endpoint
// x-coordinates via rejection sampling, in user coordinates.
func genSegments(rng *xrand.Rand, n int, bounds Rect) []Segment {
	usedX := map[int64]bool{}
	var out []Segment
	width := bounds.MaxX - bounds.MinX
	height := bounds.MaxY - bounds.MinY
	for len(out) < n {
		x1 := bounds.MinX + 1 + int64(rng.Uint64n(uint64(width-2)))
		dx := 1 + int64(rng.Uint64n(uint64(width)/8+1))
		x2 := x1 + dx
		if x2 >= bounds.MaxX {
			continue
		}
		y1 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(height-2)))
		y2 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(height-2)))
		if usedX[x1] || usedX[x2] || x1 == x2 {
			continue
		}
		s := Segment{Point{x1, y1}, Point{x2, y2}}
		ok := true
		for _, t := range out {
			if segmentsIntersect(s, t) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		usedX[x1] = true
		usedX[x2] = true
		out = append(out, s)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		segs []Segment
	}{
		{"vertical", []Segment{{Point{5, 0}, Point{5, 10}}}},
		{"right-to-left", []Segment{{Point{10, 0}, Point{5, 0}}}},
		{"crossing", []Segment{
			{Point{0, 0}, Point{10, 10}},
			{Point{1, 9}, Point{9, 1}},
		}},
		{"shared endpoint", []Segment{
			{Point{0, 0}, Point{10, 10}},
			{Point{10, 10}, Point{20, 0}},
		}},
		{"duplicate x", []Segment{
			{Point{0, 0}, Point{10, 10}},
			{Point{0, 50}, Point{11, 60}},
		}},
		{"outside bounds", []Segment{{Point{-5000, 0}, Point{5000, 0}}}},
	}
	for _, c := range cases {
		if _, err := Build(c.segs, testBounds); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEmptyMap(t *testing.T) {
	m, err := Build(nil, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTraps() != 1 {
		t.Fatalf("empty map has %d traps", m.NumTraps())
	}
	id, err := m.Locate(Point{0, 0})
	if err != nil || id != 0 {
		t.Fatalf("locate in empty map: %v %v", id, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSegment(t *testing.T) {
	m, err := Build([]Segment{{Point{-100, 0}, Point{100, 50}}}, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	// 3n+1 = 4 trapezoids: left, above, below, right.
	if m.NumTraps() != 4 {
		t.Fatalf("traps = %d, want 4", m.NumTraps())
	}
	above, _ := m.Locate(Point{0, 500})
	below, _ := m.Locate(Point{0, -500})
	left, _ := m.Locate(Point{-500, 0})
	right, _ := m.Locate(Point{500, 0})
	ids := map[TrapID]bool{above: true, below: true, left: true, right: true}
	if len(ids) != 4 {
		t.Fatalf("four regions map to %d distinct traps", len(ids))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrapCount3nPlus1(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 5, 10, 40, 100} {
		segs := genSegments(rng.Split(), n, testBounds)
		m, err := Build(segs, testBounds)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m.NumTraps() != 3*n+1 {
			t.Fatalf("n=%d: traps = %d, want %d", n, m.NumTraps(), 3*n+1)
		}
	}
}

func TestLocateContainsAgree(t *testing.T) {
	rng := xrand.New(2)
	segs := genSegments(rng, 60, testBounds)
	m, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		q := Point{
			X: testBounds.MinX + int64(rng.Uint64n(uint64(testBounds.MaxX-testBounds.MinX))),
			Y: testBounds.MinY + int64(rng.Uint64n(uint64(testBounds.MaxY-testBounds.MinY))),
		}
		id, err := m.Locate(q)
		if err != nil {
			t.Fatalf("locate %+v: %v", q, err)
		}
		if !m.Contains(id, q) {
			t.Fatalf("Locate(%+v) = %d but Contains is false", q, id)
		}
		// No other trapezoid may contain it.
		for other := 0; other < m.NumTraps(); other++ {
			if TrapID(other) != id && m.Contains(TrapID(other), q) {
				t.Fatalf("point %+v in both %d and %d", q, id, other)
			}
		}
	}
}

func TestLocateOnDegeneratePoints(t *testing.T) {
	// Queries exactly on segment endpoints and directly on segments must
	// resolve deterministically and consistently.
	segs := []Segment{
		{Point{-100, 0}, Point{100, 0}},   // horizontal through origin
		{Point{-90, 200}, Point{90, 300}}, // above it
	}
	m, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Point{
		{-100, 0}, {100, 0}, {0, 0}, {-90, 200}, {50, 0},
	} {
		id, err := m.Locate(q)
		if err != nil {
			t.Fatalf("locate %+v: %v", q, err)
		}
		if !m.Contains(id, q) {
			t.Fatalf("degenerate %+v: Locate/Contains disagree", q)
		}
	}
}

func TestInteriorPointRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	segs := genSegments(rng, 40, testBounds)
	m, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < m.NumTraps(); id++ {
		p := m.InteriorPoint(TrapID(id))
		got, err := m.locateInternal(p)
		if err != nil {
			t.Fatalf("trap %d interior point %+v: %v", id, p, err)
		}
		if got != TrapID(id) {
			t.Fatalf("trap %d interior point locates to %d", id, got)
		}
	}
}

func TestConflictsSelf(t *testing.T) {
	rng := xrand.New(4)
	segs := genSegments(rng, 30, testBounds)
	m, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	// Every trapezoid conflicts with itself and nothing else in its own map
	// (faces of one map are interior-disjoint).
	for id := 0; id < m.NumTraps(); id++ {
		conf := m.Conflicts(m.Trap(TrapID(id)))
		if len(conf) != 1 || conf[0] != TrapID(id) {
			t.Fatalf("trap %d self-conflicts = %v", id, conf)
		}
	}
}

func TestLemma5Identity(t *testing.T) {
	// The number of trapezoids of D(S) intersecting a trapezoid t of D(T)
	// must equal 1 + a + 2b + 3c (proved by induction in Lemma 5).
	rng := xrand.New(5)
	segs := genSegments(rng, 64, testBounds)
	full, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	var half []Segment
	for _, s := range segs {
		if rng.Bool() {
			half = append(half, s)
		}
	}
	sub, err := Build(half, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < sub.NumTraps(); id++ {
		tr := sub.Trap(TrapID(id))
		conflicts := len(full.Conflicts(tr))
		cs := full.ConflictStats(tr)
		if conflicts != cs.Count() {
			t.Fatalf("trap %d: %d conflicts, 1+a+2b+3c = %d (a=%d b=%d c=%d)",
				id, conflicts, cs.Count(), cs.A, cs.B, cs.C)
		}
	}
}

func TestHalvingConflictConstant(t *testing.T) {
	// Lemma 5 smoke test: E[conflicts of the trapezoid containing a random
	// query] stays small when T is a random half of S.
	rng := xrand.New(6)
	segs := genSegments(rng, 200, testBounds)
	full, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	var half []Segment
	for _, s := range segs {
		if rng.Bool() {
			half = append(half, s)
		}
	}
	sub, err := Build(half, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		q := Point{
			X: testBounds.MinX + int64(rng.Uint64n(uint64(testBounds.MaxX-testBounds.MinX))),
			Y: testBounds.MinY + int64(rng.Uint64n(uint64(testBounds.MaxY-testBounds.MinY))),
		}
		id, err := sub.Locate(q)
		if err != nil {
			t.Fatal(err)
		}
		total += len(full.Conflicts(sub.Trap(id)))
	}
	if mean := float64(total) / trials; mean > 12 {
		t.Fatalf("mean conflicts %.2f too large", mean)
	}
}

func TestConflictsContainQueryTrap(t *testing.T) {
	// The trapezoid of D(S) containing q must always appear in the
	// conflict list of the trapezoid of D(T) containing q — the property
	// the skip-web descent relies on.
	rng := xrand.New(7)
	segs := genSegments(rng, 100, testBounds)
	full, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	var half []Segment
	for _, s := range segs {
		if rng.Bool() {
			half = append(half, s)
		}
	}
	sub, err := Build(half, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		q := Point{
			X: testBounds.MinX + int64(rng.Uint64n(uint64(testBounds.MaxX-testBounds.MinX))),
			Y: testBounds.MinY + int64(rng.Uint64n(uint64(testBounds.MaxY-testBounds.MinY))),
		}
		subID, err := sub.Locate(q)
		if err != nil {
			t.Fatal(err)
		}
		fullID, err := full.Locate(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range full.Conflicts(sub.Trap(subID)) {
			if c == fullID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: answer trap %d not in conflicts of sub trap %d", trial, fullID, subID)
		}
	}
}

func TestRenderSmoke(t *testing.T) {
	rng := xrand.New(8)
	segs := genSegments(rng, 10, testBounds)
	m, err := Build(segs, testBounds)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Render(40, 12)
	if len(out) < 40*12 {
		t.Fatalf("render too short:\n%s", out)
	}
}

func BenchmarkBuild64(b *testing.B) {
	rng := xrand.New(1)
	segs := genSegments(rng, 64, testBounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(segs, testBounds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	rng := xrand.New(1)
	segs := genSegments(rng, 256, testBounds)
	m, err := Build(segs, testBounds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{
			X: testBounds.MinX + int64(rng.Uint64n(2000)),
			Y: testBounds.MinY + int64(rng.Uint64n(2000)),
		}
		if _, err := m.Locate(q); err != nil {
			b.Fatal(err)
		}
	}
}
