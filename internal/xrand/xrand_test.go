package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream should not replay the parent stream.
	p0 := parent.Uint64()
	c0 := child.Uint64()
	if p0 == c0 {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const buckets, trials = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < trials; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(trials) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestGeometricDistribution(t *testing.T) {
	r := New(9)
	const trials = 200000
	sum := 0
	maxSeen := 0
	for i := 0; i < trials; i++ {
		g := r.Geometric(40)
		if g < 0 || g > 40 {
			t.Fatalf("Geometric out of range: %d", g)
		}
		sum += g
		if g > maxSeen {
			maxSeen = g
		}
	}
	mean := float64(sum) / trials
	// Geometric(1/2) starting at 0 has mean 1.
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("geometric mean %.4f, want ~1.0", mean)
	}
	if maxSeen < 10 {
		t.Errorf("max geometric %d suspiciously small over %d trials", maxSeen, trials)
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(13)
	for i := 0; i < 100000; i++ {
		if g := r.Geometric(3); g > 3 {
			t.Fatalf("cap violated: %d", g)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBits(t *testing.T) {
	r := New(23)
	bits := r.Bits(1000)
	if len(bits) != 1000 {
		t.Fatalf("Bits length %d", len(bits))
	}
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("ones = %d of 1000, want near 500", ones)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(29)
	trues := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/trials-0.5) > 0.01 {
		t.Errorf("Bool true fraction %.4f", float64(trues)/trials)
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
