package xrand

import (
	"math"
	"sort"
)

// Zipf generates ranks distributed as Zipf(s) over [0, n): rank k is
// drawn with probability proportional to (k+1)^-s. It models the skewed
// access patterns production traffic exhibits (a few hot keys absorb
// most queries) and drives the skew benchmark mode. The generator is
// exactly reproducible from its Rand and is NOT safe for concurrent use;
// derive one per goroutine from seed substreams (Substream).
type Zipf struct {
	r *Rand
	// cdf[k] is the unnormalized cumulative weight of ranks [0, k]; the
	// last entry is the total mass. Sampling is one uniform draw plus a
	// binary search, so Next is O(log n) with no per-call allocation.
	cdf []float64
}

// NewZipf builds a Zipf(s) generator over n ranks drawing from r. It
// panics if n <= 0 or s < 0 (s = 0 is the uniform distribution).
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 || math.IsNaN(s) {
		panic("xrand: NewZipf with negative s")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	return &Zipf{r: r, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next rank in [0, N()): rank 0 is the hottest.
func (z *Zipf) Next() int {
	u := z.r.Float64() * z.cdf[len(z.cdf)-1]
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1 // u == total mass (Float64 < 1 makes this unreachable; guard anyway)
	}
	return i
}

// AbsentKeys returns n distinct uint64 keys in [0, bound) that do not
// appear in present, placed adversarially: each is adjacent (within a
// few units) to a stored key, so a membership query for it descends the
// full routing depth before discovering the miss — the worst case a
// negative-lookup filter defends against. The output depends only on
// (seed, present, n, bound) via a SplitMix64 substream of seed, never on
// any shared generator state, so workloads are reproducible across
// processes. It panics if bound == 0 or the space cannot hold n absent
// keys.
func AbsentKeys(seed uint64, present []uint64, n int, bound uint64) []uint64 {
	if bound == 0 {
		panic("xrand: AbsentKeys with zero bound")
	}
	if uint64(n)+uint64(len(present)) > bound {
		panic("xrand: AbsentKeys: not enough absent keys in [0, bound)")
	}
	stored := make(map[uint64]bool, len(present))
	for _, k := range present {
		stored[k] = true
	}
	rng := New(Substream(seed, 0x5eed))
	out := make([]uint64, 0, n)
	taken := make(map[uint64]bool, n)
	try := func(k uint64) bool {
		if k >= bound || stored[k] || taken[k] {
			return false
		}
		taken[k] = true
		out = append(out, k)
		return true
	}
	for len(out) < n {
		if len(present) > 0 {
			base := present[rng.Intn(len(present))]
			hit := false
			for delta := uint64(1); delta <= 4 && !hit; delta++ {
				if try(base + delta) {
					hit = true
				} else if base >= delta && try(base-delta) {
					hit = true
				}
			}
			if hit {
				continue
			}
		}
		try(rng.Uint64n(bound)) // dense neighborhood exhausted: fall back to uniform
	}
	return out
}

// AbsentStrings returns n distinct strings absent from present, each a
// stored key extended by a short suffix outside typical key alphabets —
// so an exact-match query walks the trie to the stored key's locus
// before failing, the deepest miss a trie admits. Deterministic in
// (seed, present, n) via a SplitMix64 substream, like AbsentKeys. It
// panics if present is empty.
func AbsentStrings(seed uint64, present []string, n int) []string {
	if len(present) == 0 {
		panic("xrand: AbsentStrings with no present keys")
	}
	stored := make(map[string]bool, len(present))
	for _, k := range present {
		stored[k] = true
	}
	const suffixes = "#%&*+-/=@_~"
	rng := New(Substream(seed, 0xab5e))
	out := make([]string, 0, n)
	taken := make(map[string]bool, n)
	for len(out) < n {
		base := present[rng.Intn(len(present))]
		cand := base + string(suffixes[rng.Intn(len(suffixes))])
		for stored[cand] || taken[cand] {
			cand += string(suffixes[rng.Intn(len(suffixes))])
		}
		taken[cand] = true
		out = append(out, cand)
	}
	return out
}
