package xrand

import (
	"math"
	"sort"
	"testing"
)

// TestZipfShape checks the defining property of the distribution: the
// empirical frequency of rank k tracks (k+1)^-s, so adjacent low ranks
// differ by the factor 2^s and frequencies decrease with rank overall.
func TestZipfShape(t *testing.T) {
	const n, draws = 1024, 400_000
	for _, s := range []float64{0.8, 1.0, 1.2} {
		z := NewZipf(New(Substream(77, 1)), s, n)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				t.Fatalf("s=%v: rank %d out of [0, %d)", s, r, n)
			}
			counts[r]++
		}
		// Ratio of rank 0 to rank 1 should be 2^s within sampling noise.
		got := float64(counts[0]) / float64(counts[1])
		want := math.Pow(2, s)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("s=%v: f(0)/f(1) = %.3f, want %.3f +-10%%", s, got, want)
		}
		// Head mass dominates tail mass of the same width.
		head, tail := 0, 0
		for k := 0; k < 64; k++ {
			head += counts[k]
			tail += counts[n-64+k]
		}
		if head <= 4*tail {
			t.Errorf("s=%v: head mass %d not >> tail mass %d", s, head, tail)
		}
		// Monotone in aggregate: cumulative counts over rank blocks decrease.
		prev := math.Inf(1)
		for b := 0; b < 8; b++ {
			blk := 0
			for k := b * 128; k < (b+1)*128; k++ {
				blk += counts[k]
			}
			if float64(blk) > prev {
				t.Errorf("s=%v: block %d count %d exceeds previous block", s, b, blk)
			}
			prev = float64(blk)
		}
	}
}

// TestZipfUniformAtZero checks s = 0 degenerates to uniform ranks.
func TestZipfUniformAtZero(t *testing.T) {
	const n, draws = 64, 128_000
	z := NewZipf(New(Substream(9, 3)), 0, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if float64(c) < want*0.8 || float64(c) > want*1.2 {
			t.Fatalf("s=0: rank %d count %d, want ~%.0f", k, c, want)
		}
	}
}

// TestZipfDeterministic checks that the sequence is a pure function of
// the seed substream, and that distinct substreams diverge.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(New(Substream(42, 0)), 1.1, 512)
	b := NewZipf(New(Substream(42, 0)), 1.1, 512)
	c := NewZipf(New(Substream(42, 1)), 1.1, 512)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		x, y, z := a.Next(), b.Next(), c.Next()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same substream produced different Zipf sequences")
	}
	if !diff {
		t.Error("distinct substreams produced identical Zipf sequences")
	}
}

// TestAbsentKeys checks the adversarial generator's contract: distinct
// keys, none present, all in range, deterministic in the seed, and the
// bulk adjacent to stored keys (within 4 units of some present key).
func TestAbsentKeys(t *testing.T) {
	rng := New(5)
	present := make([]uint64, 0, 2000)
	seen := map[uint64]bool{}
	for len(present) < 2000 {
		k := rng.Uint64n(1 << 30)
		if !seen[k] {
			seen[k] = true
			present = append(present, k)
		}
	}
	sorted := append([]uint64(nil), present...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	got := AbsentKeys(123, present, 256, 1<<30)
	if len(got) != 256 {
		t.Fatalf("got %d keys, want 256", len(got))
	}
	dup := map[uint64]bool{}
	adjacent := 0
	for _, k := range got {
		if k >= 1<<30 {
			t.Fatalf("key %d out of bound", k)
		}
		if seen[k] {
			t.Fatalf("key %d is present", k)
		}
		if dup[k] {
			t.Fatalf("key %d duplicated", k)
		}
		dup[k] = true
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= k })
		near := false
		if i < len(sorted) && sorted[i]-k <= 4 {
			near = true
		}
		if i > 0 && k-sorted[i-1] <= 4 {
			near = true
		}
		if near {
			adjacent++
		}
	}
	if adjacent < 200 {
		t.Errorf("only %d/256 absent keys adjacent to stored keys; generator is not adversarial", adjacent)
	}
	again := AbsentKeys(123, present, 256, 1<<30)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("AbsentKeys not deterministic at %d: %d vs %d", i, got[i], again[i])
		}
	}
}

// TestAbsentStrings checks distinctness, absence, determinism, and that
// every absent string extends a stored key (the deepest trie miss).
func TestAbsentStrings(t *testing.T) {
	present := []string{"acgt", "acg", "tttt", "gattaca", "ac"}
	stored := map[string]bool{}
	for _, s := range present {
		stored[s] = true
	}
	got := AbsentStrings(7, present, 64)
	if len(got) != 64 {
		t.Fatalf("got %d strings, want 64", len(got))
	}
	dup := map[string]bool{}
	for _, s := range got {
		if stored[s] {
			t.Fatalf("%q is present", s)
		}
		if dup[s] {
			t.Fatalf("%q duplicated", s)
		}
		dup[s] = true
		ok := false
		for _, p := range present {
			if len(s) > len(p) && s[:len(p)] == p {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%q does not extend a stored key", s)
		}
	}
	again := AbsentStrings(7, present, 64)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("AbsentStrings not deterministic at %d", i)
		}
	}
}
