// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every randomized structure in this repository.
//
// All level coin-flips, membership vectors, and workload generators draw
// from xrand so that experiments and tests are exactly reproducible from a
// seed. The generator is xoshiro256**, seeded via SplitMix64, following the
// reference construction of Blackman and Vigna. It is NOT safe for
// concurrent use; each goroutine should own its own generator (use Split).
package xrand

import "math/bits"

// Rand is a deterministic xoshiro256** generator.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64 so that nearby
// seeds yield statistically unrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's future
// output. It advances r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Substream derives the i-th child seed of a parent seed via the
// SplitMix64 finalizer, so a family of generators can be split off one
// cluster seed deterministically and statelessly: Substream(s, i) depends
// only on (s, i), never on how many siblings were derived before it.
// Concurrent writers (one per write stripe) each seed their own Rand from
// their own substream, keeping placement reproducible without sharing a
// generator across goroutines. Substream(s, 0) != s in general; callers
// that want stream 0 to be the parent seed itself handle that case
// explicitly.
func Substream(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Geometric returns the number of consecutive heads flipped before the
// first tails, i.e. a sample from Geometric(1/2) starting at 0. It is used
// for skip-list/skip-web level assignment. The result is capped at max to
// bound structure height.
func (r *Rand) Geometric(max int) int {
	h := 0
	for h < max && r.Bool() {
		h++
	}
	return h
}

// Bits returns a slice of n fair random bits, each 0 or 1. It is used to
// build membership vectors for skip graphs and skip-web level indices.
func (r *Rand) Bits(n int) []byte {
	b := make([]byte, n)
	var word uint64
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			word = r.Uint64()
		}
		b[i] = byte(word & 1)
		word >>= 1
	}
	return b
}
