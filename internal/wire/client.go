package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// Client is the thin dialer side of the wire protocol: one connection to
// one node, used for named calls (KCall/KReply) and for delivering
// charged model messages (KMsg/KAck). Each Client serializes its
// exchanges under a mutex — request, then matching reply — which keeps
// the protocol trivially in order; callers that want concurrency open
// more clients.
type Client struct {
	host sim.HostID

	mu     sync.Mutex
	c      net.Conn
	r      *bufio.Reader
	nextID atomic.Uint64

	// timeout bounds each dial and each reply wait; 0 means forever.
	timeout time.Duration
}

// Dial connects to a node at addr, retrying for up to wait (so a client
// can start before its daemon finishes binding). A zero wait tries once.
func Dial(host sim.HostID, addr string, wait time.Duration) (*Client, error) {
	deadline := time.Now().Add(wait)
	var (
		c   net.Conn
		err error
	)
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return &Client{host: host, c: c, r: bufio.NewReader(c)}, nil
}

// SetTimeout bounds every subsequent exchange (write + reply wait) to d;
// zero or negative restores waiting forever. A deadline expiry surfaces
// as a sim.TimeoutError, the same typed error the in-process transport
// returns for a wedged host.
func (cl *Client) SetTimeout(d time.Duration) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if d < 0 {
		d = 0
	}
	cl.timeout = d
}

// Host returns the host id this client is connected to.
func (cl *Client) Host() sim.HostID { return cl.host }

// Close closes the connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.c.Close()
}

// exchange writes one frame and reads the matching reply of kind want.
// Caller holds cl.mu.
func (cl *Client) exchange(kind byte, body []byte, want byte) (uint64, []byte, error) {
	id := cl.nextID.Add(1)
	if cl.timeout > 0 {
		cl.c.SetDeadline(time.Now().Add(cl.timeout))
	} else {
		cl.c.SetDeadline(time.Time{})
	}
	if err := writeFrame(cl.c, kind, id, body); err != nil {
		return id, nil, cl.wrapErr(err)
	}
	for {
		k, rid, rbody, err := readFrame(cl.r)
		if err != nil {
			return id, nil, cl.wrapErr(err)
		}
		if k != want || rid != id {
			// A stale reply from an abandoned exchange; skip it.
			continue
		}
		return id, rbody, nil
	}
}

// wrapErr maps a connection error to the transport's typed errors:
// deadline expiry becomes a sim.TimeoutError, anything else (the daemon
// died, the socket reset) a sim.HostDownError.
func (cl *Client) wrapErr(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return &sim.TimeoutError{Host: cl.host, After: cl.timeout}
	}
	return &sim.HostDownError{Host: cl.host}
}

// Hop delivers one charged model message: a KMsg frame, acknowledged by
// the receiving node with KAck after it bumps its per-host counter. This
// is the wire realization of one inter-host hop in the paper's cost
// model.
func (cl *Client) Hop() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	_, _, err := cl.exchange(kMsg, nil, kAck)
	return err
}

// Call invokes the named handler on the node with args marshalled to
// JSON, unmarshalling the reply into reply (which may be nil to discard
// it). A handler error comes back as an error with the handler's text; a
// closed mailbox comes back as a sim.HostDownError.
func (cl *Client) Call(method string, args any, reply any) error {
	ab, err := json.Marshal(args)
	if err != nil {
		return fmt.Errorf("wire: marshal %s args: %w", method, err)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	_, body, err := cl.exchange(kCall, callBody(method, ab), kReply)
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return fmt.Errorf("wire: %s: empty reply", method)
	}
	switch body[0] {
	case statusOK:
		if reply == nil {
			return nil
		}
		return json.Unmarshal(body[1:], reply)
	case statusHostDown:
		return &sim.HostDownError{Host: cl.host}
	default:
		return fmt.Errorf("wire: %s: %s", method, body[1:])
	}
}
