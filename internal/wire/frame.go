// Package wire is the TCP transport layer: the second implementation of
// the host-execution contract (sim.Transport) and the substrate of the
// skipweb-serve daemon.
//
// Everything rides one frame format — length-prefixed, fixed header,
// kind-tagged:
//
//	uint32 big-endian payload length
//	payload: 1 byte kind | 8 byte big-endian id | body
//
// Frame kinds split into two planes:
//
//   - The accounting plane: KMsg is one charged model message. The paper's
//     cost model charges every inter-host hop as a message; a KMsg frame
//     delivered to a host's listener is exactly one such charge, counted
//     by the receiving Node and acknowledged with KAck. Per-host KMsg
//     counts are the wire-side numbers the sim-vs-wire parity check diffs
//     bit-for-bit against sim.Network's per-host message counters.
//   - The dispatch plane: KTask/KDone carry closure dispatch for the
//     loopback Transport, KCall/KReply carry named RPCs for the serve
//     daemon, and KClose requests a graceful drain. Dispatch frames are
//     transport envelope and are never counted — mirroring the simulator,
//     where Do/Go dispatch is free and only Op.Visit/Op.Send charge.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds. The zero value is invalid so a torn read fails loudly.
const (
	kMsg   = byte(1) // charged model message; body empty; receiver counts and KAcks
	kAck   = byte(2) // acknowledgement of a KMsg (id echoed)
	kTask  = byte(3) // closure-dispatch task; body: 1 sync flag byte
	kDone  = byte(4) // sync task completion; body: 1 status byte + error text
	kCall  = byte(5) // named call; body: u16 method length + method + JSON args
	kReply = byte(6) // call reply; body: 1 status byte + JSON result or error text
	kClose = byte(7) // graceful drain request; no body, no reply
)

// KDone/KReply status codes.
const (
	statusOK       = byte(0)
	statusHostDown = byte(1)
	statusError    = byte(2)
)

// maxFrame bounds a frame's payload; anything larger is a protocol error
// (range results over loopback stay far below this).
const maxFrame = 16 << 20

// headerLen is the payload header: kind byte + 8-byte id.
const headerLen = 1 + 8

// appendFrame serializes one frame into buf (reused by callers to avoid
// per-frame allocation on the hop path).
func appendFrame(buf []byte, kind byte, id uint64, body []byte) []byte {
	n := headerLen + len(body)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint64(buf, id)
	return append(buf, body...)
}

// writeFrame writes one frame as a single Write call; the caller holds
// the connection's write lock so concurrent frames never interleave.
func writeFrame(w io.Writer, kind byte, id uint64, body []byte) error {
	if len(body) > maxFrame-headerLen {
		return fmt.Errorf("wire: frame body %d bytes exceeds limit", len(body))
	}
	buf := appendFrame(make([]byte, 0, 4+headerLen+len(body)), kind, id, body)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame. body aliases a fresh slice owned by the
// caller.
func readFrame(r *bufio.Reader) (kind byte, id uint64, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < headerLen || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: torn frame: %w", err)
	}
	return payload[0], binary.BigEndian.Uint64(payload[1:9]), payload[9:], nil
}

// callBody encodes a KCall body: u16 method length + method + args.
func callBody(method string, args []byte) []byte {
	b := make([]byte, 0, 2+len(method)+len(args))
	b = binary.BigEndian.AppendUint16(b, uint16(len(method)))
	b = append(b, method...)
	return append(b, args...)
}

// splitCallBody decodes a KCall body.
func splitCallBody(body []byte) (method string, args []byte, err error) {
	if len(body) < 2 {
		return "", nil, fmt.Errorf("wire: short call body")
	}
	n := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+n {
		return "", nil, fmt.Errorf("wire: call body shorter than method length %d", n)
	}
	return string(body[2 : 2+n]), body[2+n:], nil
}

// statusBody encodes a KDone/KReply body.
func statusBody(status byte, rest []byte) []byte {
	b := make([]byte, 0, 1+len(rest))
	b = append(b, status)
	return append(b, rest...)
}
