package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// Loopback is the TCP implementation of the host-execution contract
// (sim.Transport): one Node per host listening on a loopback socket, and
// every Do/Go dispatch crossing the wire as a KTask frame to the target
// host's listener. Closures never serialize — a frame carries only the
// task id, resolved against the in-process registry by the receiving
// node — so scheduling, FIFO ordering, crash semantics, and drain all
// ride real sockets while the work itself stays a function call, exactly
// the contract the simulator provides in-process.
//
// Semantics match sim.Cluster case for case (the conformance suite in
// conformance_test.go pins both): same-host re-entry runs inline, Do on
// a crashed host fails fast with a HostDownError, Do with SetDoTimeout
// set returns a TimeoutError when the host wedges, RemoveHost drains,
// Crash discards, Stop drains everything. Dispatch frames are never
// counted as model messages — as in the simulator, only Op.Visit/Op.Send
// charge — so message accounting is transport-invariant by construction.
type Loopback struct {
	mu    sync.RWMutex // guards nodes/conns/state across host churn
	nodes []*Node
	conns []*tconn
	state []hostState

	tasks   sync.Map // task id -> func(): the closure registry
	pending sync.Map // task id -> *doWait: sync rendezvous in flight
	nextID  atomic.Uint64
	running sync.Map // goroutine id -> HostID, for same-host re-entry
	stopped atomic.Bool

	doTimeout atomic.Int64 // ns; 0 = wait forever
}

type hostState int32

const (
	hostLive hostState = iota
	hostRemoved
	hostCrashed
)

// doWait is one blocked Do rendezvous.
type doWait struct {
	host sim.HostID
	ch   chan error // buffered(1); delivered at most once via LoadAndDelete
}

// tconn is the transport's connection to one node: frames are written
// under wmu (FIFO per host), and a reader goroutine dispatches KDone
// frames back to the pending rendezvous.
type tconn struct {
	host sim.HostID
	c    net.Conn
	wmu  sync.Mutex
}

// Loopback is the wire implementation of the host-execution contract.
var _ sim.Transport = (*Loopback)(nil)

// NewLoopback starts h hosts, each a Node on a 127.0.0.1:0 listener,
// and dials one connection per host. Call Stop to release the sockets.
func NewLoopback(h int) (*Loopback, error) {
	if h <= 0 {
		return nil, fmt.Errorf("wire: NewLoopback with non-positive host count %d", h)
	}
	t := &Loopback{}
	for i := 0; i < h; i++ {
		if err := t.spawn(sim.HostID(i)); err != nil {
			t.Stop()
			return nil, err
		}
	}
	return t, nil
}

// spawn starts host h's node and dials it. Caller holds mu (or is the
// only goroutine with access).
func (t *Loopback) spawn(h sim.HostID) error {
	n, err := NewNode(NodeConfig{
		Host:     h,
		Listen:   "127.0.0.1:0",
		Resolver: t.resolve,
		Running:  &t.running,
	})
	if err != nil {
		return err
	}
	c, err := net.DialTimeout("tcp", n.Addr(), 5*time.Second)
	if err != nil {
		n.Close()
		return err
	}
	tc := &tconn{host: h, c: c}
	t.nodes = append(t.nodes, n)
	t.conns = append(t.conns, tc)
	t.state = append(t.state, hostLive)
	go t.readConn(tc)
	return nil
}

// resolve pops a task from the registry (tasks run at most once).
func (t *Loopback) resolve(id uint64) (func(), bool) {
	v, ok := t.tasks.LoadAndDelete(id)
	if !ok {
		return nil, false
	}
	return v.(func()), true
}

// readConn dispatches completion frames for host tc.host. When the
// connection dies — the host crashed — every rendezvous still pending
// against that host fails fast with the typed host-down error.
func (t *Loopback) readConn(tc *tconn) {
	r := bufio.NewReader(tc.c)
	for {
		kind, id, body, err := readFrame(r)
		if err != nil {
			t.failPending(tc.host, &sim.HostDownError{Host: tc.host})
			return
		}
		if kind != kDone {
			continue // acks of other planes are not expected on this conn
		}
		v, ok := t.pending.LoadAndDelete(id)
		if !ok {
			continue // rendezvous abandoned (timeout); drop the late reply
		}
		w := v.(*doWait)
		switch {
		case len(body) == 0 || body[0] == statusOK:
			w.ch <- nil
		case body[0] == statusHostDown:
			w.ch <- &sim.HostDownError{Host: tc.host}
		default:
			w.ch <- fmt.Errorf("wire: task failed: %s", body[1:])
		}
	}
}

// failPending fails every pending rendezvous against host h with err.
func (t *Loopback) failPending(h sim.HostID, err error) {
	t.pending.Range(func(k, v any) bool {
		w := v.(*doWait)
		if w.host != h {
			return true
		}
		if _, ok := t.pending.LoadAndDelete(k); ok {
			w.ch <- err
		}
		return true
	})
}

// conn returns host h's connection and state under the churn lock.
func (t *Loopback) conn(h sim.HostID) (*tconn, hostState) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.conns[h], t.state[h]
}

// onHost reports whether the calling goroutine is host h's worker.
func (t *Loopback) onHost(h sim.HostID) bool {
	g, ok := t.running.Load(sim.Goid())
	return ok && g.(sim.HostID) == h
}

// Do runs fn on host h's worker and blocks until it completes. See the
// sim.Transport contract: same-host re-entry runs inline, a crashed
// host yields a HostDownError, a wedged host yields a TimeoutError when
// SetDoTimeout is configured, and departed or stopped hosts panic.
func (t *Loopback) Do(h sim.HostID, fn func()) error {
	if t.stopped.Load() {
		panic("wire: Loopback.Do after Stop")
	}
	if t.onHost(h) {
		fn()
		return nil
	}
	tc, st := t.conn(h)
	switch st {
	case hostCrashed:
		return &sim.HostDownError{Host: h}
	case hostRemoved:
		panic(fmt.Sprintf("wire: Loopback.Do to departed host %d", h))
	}
	id := t.nextID.Add(1)
	w := &doWait{host: h, ch: make(chan error, 1)}
	t.tasks.Store(id, fn)
	t.pending.Store(id, w)
	tc.wmu.Lock()
	err := writeFrame(tc.c, kTask, id, []byte{1})
	tc.wmu.Unlock()
	if err != nil {
		// The connection died under us: the host crashed between the
		// state check and the write.
		t.tasks.Delete(id)
		t.pending.Delete(id)
		return &sim.HostDownError{Host: h}
	}
	d := time.Duration(t.doTimeout.Load())
	if d <= 0 {
		return <-w.ch
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-timer.C:
		// Abandon the rendezvous; a late completion finds no pending
		// entry and is dropped. The task itself may still run.
		t.pending.LoadAndDelete(id)
		return &sim.TimeoutError{Host: h, After: d}
	}
}

// Go enqueues fn on host h's worker and returns immediately —
// send-and-continue dispatch over the wire. Panics on crashed,
// departed, or stopped hosts, like the in-process transport.
func (t *Loopback) Go(h sim.HostID, fn func()) {
	if t.stopped.Load() {
		panic("wire: Loopback.Go after Stop")
	}
	tc, st := t.conn(h)
	switch st {
	case hostCrashed:
		panic(fmt.Sprintf("wire: Loopback.Go to crashed host %d", h))
	case hostRemoved:
		panic(fmt.Sprintf("wire: Loopback.Go to departed host %d", h))
	}
	id := t.nextID.Add(1)
	t.tasks.Store(id, fn)
	tc.wmu.Lock()
	err := writeFrame(tc.c, kTask, id, []byte{0})
	tc.wmu.Unlock()
	if err != nil {
		t.tasks.Delete(id)
		panic(fmt.Sprintf("wire: Loopback.Go to crashed host %d", h))
	}
}

// RunBatch executes n operations across the cluster, operation i on host
// origin(i)'s worker, grouped into one dispatch per distinct origin —
// the same fan-out discipline (and therefore the same FIFO-per-origin
// ordering) as the in-process transport.
func (t *Loopback) RunBatch(n int, origin func(i int) sim.HostID, run func(i int)) {
	t.mu.RLock()
	hosts := len(t.nodes)
	t.mu.RUnlock()
	groups := make([][]int, hosts)
	for i := 0; i < n; i++ {
		h := origin(i)
		groups[h] = append(groups[h], i)
	}
	var wg sync.WaitGroup
	for h, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		idxs := idxs
		wg.Add(1)
		t.Go(sim.HostID(h), func() {
			defer wg.Done()
			for _, i := range idxs {
				run(i)
			}
		})
	}
	wg.Wait()
}

// SetDoTimeout bounds every subsequent Do rendezvous to d; zero or
// negative restores waiting forever. See sim.Cluster.SetDoTimeout.
func (t *Loopback) SetDoTimeout(d time.Duration) { t.doTimeout.Store(int64(d)) }

// AddHost starts nodes for every host slot up to and including h — the
// wire counterpart of mailbox spin-up on join. It panics if a listener
// cannot be opened (resource exhaustion, not a tolerated failure).
func (t *Loopback) AddHost(h sim.HostID) {
	if t.stopped.Load() {
		panic("wire: Loopback.AddHost after Stop")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for sim.HostID(len(t.nodes)) <= h {
		if err := t.spawn(sim.HostID(len(t.nodes))); err != nil {
			panic(fmt.Sprintf("wire: AddHost(%d): %v", h, err))
		}
	}
}

// RemoveHost drains host h cooperatively: a KClose frame rides the same
// connection as any already-dispatched tasks (FIFO), so everything sent
// before the departure still runs; then the worker exits. Further sends
// to h panic.
func (t *Loopback) RemoveHost(h sim.HostID) {
	t.mu.Lock()
	tc := t.conns[h]
	if t.state[h] == hostLive {
		t.state[h] = hostRemoved
	}
	t.mu.Unlock()
	tc.wmu.Lock()
	writeFrame(tc.c, kClose, 0, nil)
	tc.wmu.Unlock()
}

// Crash tears host h down the unclean way: its node drops (queued tasks
// discarded, listener and connections closed), and every pending Do
// rendezvous against h fails fast with a HostDownError. Further Do
// calls return the same typed error.
func (t *Loopback) Crash(h sim.HostID) {
	t.mu.Lock()
	n := t.nodes[h]
	t.state[h] = hostCrashed
	t.mu.Unlock()
	n.Drop()
	// The dropped connection's reader also fails pending rendezvous on
	// EOF; doing it here as well closes the race where the drop happens
	// between a Do's state check and its frame write.
	t.failPending(h, &sim.HostDownError{Host: h})
}

// Restart revives crashed host h: a brand-new node (fresh listener,
// fresh worker — the wire analogue of restarting the process) takes over
// slot h and the transport dials it, after which Do/Go to h succeed
// again. Tasks discarded by the crash stay discarded. Restart panics
// after Stop, when h was not crashed, or when the new listener cannot be
// opened (resource exhaustion, not a tolerated failure).
func (t *Loopback) Restart(h sim.HostID) {
	if t.stopped.Load() {
		panic("wire: Loopback.Restart after Stop")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state[h] != hostCrashed {
		panic(fmt.Sprintf("wire: Loopback.Restart(%d): host has not crashed", h))
	}
	n, err := NewNode(NodeConfig{
		Host:     h,
		Listen:   "127.0.0.1:0",
		Resolver: t.resolve,
		Running:  &t.running,
	})
	if err != nil {
		panic(fmt.Sprintf("wire: Restart(%d): %v", h, err))
	}
	c, err := net.DialTimeout("tcp", n.Addr(), 5*time.Second)
	if err != nil {
		n.Close()
		panic(fmt.Sprintf("wire: Restart(%d): dial: %v", h, err))
	}
	t.conns[h].c.Close() // the dead node's dialer socket, if not already gone
	tc := &tconn{host: h, c: c}
	t.nodes[h] = n
	t.conns[h] = tc
	t.state[h] = hostLive
	go t.readConn(tc)
}

// Stopped reports whether Stop has been called.
func (t *Loopback) Stopped() bool { return t.stopped.Load() }

// WorkersStarted reports the number of live nodes. The wire transport
// spawns eagerly — every host gets a listener and a worker at AddHost
// time — so unlike the in-process cluster's lazy count this equals the
// number of hosts that have joined and not been removed or crashed.
func (t *Loopback) WorkersStarted() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, s := range t.state {
		if s == hostLive {
			n++
		}
	}
	return n
}

// Stop shuts every host down, draining already-dispatched tasks first
// (the KClose frame is FIFO with them), waits for the workers to exit,
// and releases every socket.
func (t *Loopback) Stop() {
	if t.stopped.Swap(true) {
		return
	}
	t.mu.Lock()
	nodes := append([]*Node(nil), t.nodes...)
	conns := append([]*tconn(nil), t.conns...)
	state := append([]hostState(nil), t.state...)
	t.mu.Unlock()
	for i, tc := range conns {
		if state[i] == hostLive {
			tc.wmu.Lock()
			writeFrame(tc.c, kClose, 0, nil)
			tc.wmu.Unlock()
		}
	}
	for i, n := range nodes {
		if state[i] == hostCrashed {
			continue // Drop already tore this node down
		}
		<-n.Done()
		n.Close()
	}
	for _, tc := range conns {
		tc.c.Close()
	}
}
