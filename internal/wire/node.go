package wire

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// Handler is one registered RPC of a Node: the unit a host exports to
// the network. The skipweb-serve daemon registers its shard's operations
// (floor, insert, delete, ...) as handlers; args and the result are JSON.
type Handler func(args json.RawMessage) (any, error)

// Node is one host's endpoint on the wire: a TCP listener whose inbound
// frames feed a single worker goroutine draining an unbounded mailbox —
// the same actor discipline as a sim.Cluster host, with the mailbox fed
// by sockets instead of method calls. Charged model messages (KMsg
// frames) are counted per node and acknowledged by the connection reader
// without involving the worker, so accounting never deadlocks behind a
// busy actor.
type Node struct {
	host sim.HostID
	ln   net.Listener

	// resolver maps a KTask id to its closure — the in-process task
	// registry of the loopback Transport. Nil for a serve daemon, which
	// dispatches named handlers only.
	resolver func(id uint64) (func(), bool)
	// handlers are the named RPCs this host serves (KCall frames).
	handlers map[string]Handler
	// running, when non-nil, registers the worker goroutine's id so a
	// transport can detect same-host re-entry (sim.Goid).
	running *sync.Map

	msgs atomic.Int64 // charged messages received (KMsg frames)

	mu      sync.Mutex
	queue   []ntask
	wake    chan struct{}
	closed  bool
	dropped bool
	conns   map[net.Conn]struct{}

	done     chan struct{} // closed when the worker exits
	acceptWg sync.WaitGroup
}

// ntask is one mailbox entry: the work plus its completion reply.
type ntask struct {
	run   func()
	reply func() // nil for send-and-continue tasks
}

// NodeConfig configures a Node.
type NodeConfig struct {
	Host     sim.HostID
	Listen   string // e.g. "127.0.0.1:0"
	Resolver func(id uint64) (func(), bool)
	Handlers map[string]Handler
	Running  *sync.Map
}

// NewNode opens the listener and starts the accept loop and the worker
// goroutine. Call Close (graceful drain) or Drop (crash) when done.
func NewNode(cfg NodeConfig) (*Node, error) {
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	n := &Node{
		host:     cfg.Host,
		ln:       ln,
		resolver: cfg.Resolver,
		handlers: cfg.Handlers,
		running:  cfg.Running,
		wake:     make(chan struct{}, 1),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	go n.worker()
	n.acceptWg.Add(1)
	go n.accept()
	return n, nil
}

// Host returns the node's host id.
func (n *Node) Host() sim.HostID { return n.host }

// Addr returns the listener's address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Messages returns the number of charged model messages (KMsg frames)
// delivered to this node — the wire-side counterpart of
// sim.Network.Messages(host).
func (n *Node) Messages() int64 { return n.msgs.Load() }

// ResetMessages zeroes the charged-message counter, mirroring
// sim.Network.ResetTraffic for the replay harness.
func (n *Node) ResetMessages() { n.msgs.Store(0) }

// Done is closed when the worker goroutine has exited (mailbox drained
// after Close, or discarded after Drop).
func (n *Node) Done() <-chan struct{} { return n.done }

// put enqueues t, reporting false when the mailbox is closed.
func (n *Node) put(t ntask) bool {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return false
	}
	n.queue = append(n.queue, t)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return true
}

// worker drains the mailbox serially — all host state is touched from
// exactly this goroutine, the actor discipline of a message-passing node.
func (n *Node) worker() {
	defer close(n.done)
	if n.running != nil {
		g := sim.Goid()
		n.running.Store(g, n.host)
		defer n.running.Delete(g)
	}
	for {
		n.mu.Lock()
		if len(n.queue) > 0 {
			t := n.queue[0]
			n.queue[0] = ntask{}
			n.queue = n.queue[1:]
			n.mu.Unlock()
			t.run()
			if t.reply != nil {
				t.reply()
			}
			continue
		}
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		<-n.wake
	}
}

// accept hands each inbound connection to a reader goroutine.
func (n *Node) accept() {
	defer n.acceptWg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed by Close/Drop
		}
		n.mu.Lock()
		if n.dropped {
			n.mu.Unlock()
			c.Close()
			continue
		}
		n.conns[c] = struct{}{}
		n.mu.Unlock()
		n.acceptWg.Add(1)
		go n.serveConn(c)
	}
}

// serveConn reads frames off one connection. KMsg is counted and acked
// inline (the accounting plane never waits on the worker); dispatch
// frames enqueue on the mailbox and reply from the worker when done.
func (n *Node) serveConn(c net.Conn) {
	defer n.acceptWg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
		c.Close()
	}()
	var wmu sync.Mutex // serializes reader acks with worker replies
	r := bufio.NewReader(c)
	for {
		kind, id, body, err := readFrame(r)
		if err != nil {
			return
		}
		switch kind {
		case kMsg:
			n.msgs.Add(1)
			wmu.Lock()
			err := writeFrame(c, kAck, id, nil)
			wmu.Unlock()
			if err != nil {
				return
			}
		case kTask:
			isSync := len(body) > 0 && body[0] != 0
			fn, ok := func() (func(), bool) {
				if n.resolver == nil {
					return nil, false
				}
				return n.resolver(id)
			}()
			if !ok {
				// Unknown task (or no resolver): a sync sender is waiting —
				// fail it rather than leave it hanging.
				if isSync {
					wmu.Lock()
					writeFrame(c, kDone, id, statusBody(statusError, []byte("wire: unknown task")))
					wmu.Unlock()
				}
				continue
			}
			t := ntask{run: fn}
			if isSync {
				t.reply = func() {
					wmu.Lock()
					defer wmu.Unlock()
					writeFrame(c, kDone, id, statusBody(statusOK, nil))
				}
			}
			if !n.put(t) {
				if isSync {
					wmu.Lock()
					writeFrame(c, kDone, id, statusBody(statusHostDown, nil))
					wmu.Unlock()
				}
			}
		case kCall:
			method, args, err := splitCallBody(body)
			reply := func(status byte, rest []byte) {
				wmu.Lock()
				defer wmu.Unlock()
				writeFrame(c, kReply, id, statusBody(status, rest))
			}
			if err != nil {
				reply(statusError, []byte(err.Error()))
				continue
			}
			h, ok := n.handlers[method]
			if !ok {
				reply(statusError, []byte("wire: unknown method "+method))
				continue
			}
			argsCopy := json.RawMessage(append([]byte(nil), args...))
			var res any
			var herr error
			t := ntask{
				run:   func() { res, herr = h(argsCopy) },
				reply: func() { replyResult(reply, res, herr) },
			}
			if !n.put(t) {
				reply(statusHostDown, nil)
			}
		case kClose:
			n.closeMailbox()
		default:
			return // protocol error: drop the connection
		}
	}
}

// replyResult encodes a handler outcome as a KReply body.
func replyResult(reply func(status byte, rest []byte), res any, herr error) {
	if herr != nil {
		reply(statusError, []byte(herr.Error()))
		return
	}
	b, err := json.Marshal(res)
	if err != nil {
		reply(statusError, []byte("wire: marshal reply: "+err.Error()))
		return
	}
	reply(statusOK, b)
}

// closeMailbox marks the mailbox closed and wakes the worker; queued
// tasks still drain before the worker exits.
func (n *Node) closeMailbox() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// Close shuts the node down gracefully: the mailbox stops accepting new
// tasks, already-enqueued tasks drain, the worker exits, and the
// listener and connections close. Note tasks still in flight on a
// socket when Close is called are not drained — senders that need the
// drain guarantee send a KClose frame (FIFO with their tasks) before
// calling Close, as the loopback Transport does.
func (n *Node) Close() {
	n.closeMailbox()
	<-n.done
	n.teardown()
}

// Drop tears the node down the unclean way — a crash: queued tasks are
// discarded, connections close immediately (failing senders' pending
// rendezvous), and the counter state is left as it was at death.
func (n *Node) Drop() {
	n.mu.Lock()
	n.dropped = true
	n.closed = true
	n.queue = nil
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
	n.teardown()
}

// teardown closes the listener and all connections and waits for the
// accept and reader goroutines.
func (n *Node) teardown() {
	n.ln.Close()
	n.mu.Lock()
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	n.acceptWg.Wait()
}
