package wire

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// The transport-conformance suite: one table of behavioral cases run
// against BOTH implementations of sim.Transport — the in-process
// simulator cluster and the loopback TCP transport. Any divergence in
// the host-execution contract (ordering, re-entry, crash semantics,
// drain, timeout) fails here before it can skew an experiment.

const confHosts = 4

func implementations(t *testing.T) map[string]func() sim.Transport {
	return map[string]func() sim.Transport{
		"sim": func() sim.Transport {
			return sim.NewCluster(sim.NewNetwork(confHosts))
		},
		"wire": func() sim.Transport {
			tr, err := NewLoopback(confHosts)
			if err != nil {
				t.Fatalf("NewLoopback: %v", err)
			}
			return tr
		},
	}
}

func forEachTransport(t *testing.T, run func(t *testing.T, tr sim.Transport)) {
	for name, mk := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			defer tr.Stop()
			run(t, tr)
		})
	}
}

func TestConformanceDoRuns(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		var ran atomic.Bool
		if err := tr.Do(1, func() { ran.Store(true) }); err != nil {
			t.Fatalf("Do: %v", err)
		}
		if !ran.Load() {
			t.Fatal("Do returned before fn ran")
		}
	})
}

func TestConformanceFIFOPerSender(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		var mu sync.Mutex
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			tr.Go(2, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		// A sync Do from the same sender lands behind the Gos.
		if err := tr.Do(2, func() {}); err != nil {
			t.Fatalf("Do: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 10 {
			t.Fatalf("got %d tasks, want 10", len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("order[%d] = %d; tasks reordered: %v", i, v, order)
			}
		}
	})
}

func TestConformanceSameHostInlineReentry(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		var inner atomic.Bool
		err := tr.Do(3, func() {
			// From host 3's worker, Do(3, ...) must run inline — a
			// dispatch would deadlock the single worker against itself.
			if err := tr.Do(3, func() { inner.Store(true) }); err != nil {
				t.Errorf("inner Do: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("outer Do: %v", err)
		}
		if !inner.Load() {
			t.Fatal("inline re-entry did not run")
		}
	})
}

func TestConformanceCrashFailsFast(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		// Wedge host 1's worker so the victim Do queues behind it.
		block := make(chan struct{})
		entered := make(chan struct{})
		tr.Go(1, func() {
			close(entered)
			<-block
		})
		<-entered

		victim := make(chan error, 1)
		go func() {
			victim <- tr.Do(1, func() {})
		}()
		// Give the victim time to enqueue behind the blocker.
		time.Sleep(50 * time.Millisecond)
		tr.Crash(1)

		select {
		case err := <-victim:
			if !errors.Is(err, sim.ErrHostDown) {
				t.Fatalf("queued Do after crash: got %v, want ErrHostDown", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued Do did not fail fast after crash")
		}
		// A fresh Do against the crashed host fails immediately too.
		if err := tr.Do(1, func() {}); !errors.Is(err, sim.ErrHostDown) {
			t.Fatalf("post-crash Do: got %v, want ErrHostDown", err)
		}
		close(block)
	})
}

func TestConformanceDoTimeout(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		// A deliberately stalled handler wedges host 2's worker.
		block := make(chan struct{})
		entered := make(chan struct{})
		tr.Go(2, func() {
			close(entered)
			<-block
		})
		<-entered

		tr.SetDoTimeout(100 * time.Millisecond)
		start := time.Now()
		err := tr.Do(2, func() {})
		if !errors.Is(err, sim.ErrTimeout) {
			t.Fatalf("Do on wedged host: got %v, want ErrTimeout", err)
		}
		var te *sim.TimeoutError
		if !errors.As(err, &te) || te.Host != 2 {
			t.Fatalf("timeout error carries wrong host: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("timeout took %v, want ~100ms", elapsed)
		}
		// Clearing the timeout restores wait-forever for healthy hosts.
		tr.SetDoTimeout(0)
		if err := tr.Do(3, func() {}); err != nil {
			t.Fatalf("Do after clearing timeout: %v", err)
		}
		close(block)
	})
}

func TestConformanceDrainOnStop(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		var ran atomic.Int64
		for h := 0; h < confHosts; h++ {
			for i := 0; i < 25; i++ {
				tr.Go(sim.HostID(h), func() { ran.Add(1) })
			}
		}
		tr.Stop()
		if got := ran.Load(); got != 100 {
			t.Fatalf("Stop drained %d of 100 queued tasks", got)
		}
		if !tr.Stopped() {
			t.Fatal("Stopped() false after Stop")
		}
	})
}

func TestConformanceRunBatch(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		const n = 40
		ran := make([]atomic.Bool, n)
		var mu sync.Mutex
		perOrigin := make(map[sim.HostID][]int)
		tr.RunBatch(n,
			func(i int) sim.HostID { return sim.HostID(i % confHosts) },
			func(i int) {
				ran[i].Store(true)
				h := sim.HostID(i % confHosts)
				mu.Lock()
				perOrigin[h] = append(perOrigin[h], i)
				mu.Unlock()
			})
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("RunBatch skipped operation %d", i)
			}
		}
		// Within one origin, operations run in submission order.
		for h, idxs := range perOrigin {
			for j := 1; j < len(idxs); j++ {
				if idxs[j] < idxs[j-1] {
					t.Fatalf("origin %d reordered: %v", h, idxs)
				}
			}
		}
	})
}

func TestConformanceRemoveHostDrains(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		var ran atomic.Int64
		for i := 0; i < 50; i++ {
			tr.Go(3, func() { ran.Add(1) })
		}
		tr.RemoveHost(3)
		tr.Stop()
		if got := ran.Load(); got != 50 {
			t.Fatalf("RemoveHost drained %d of 50 queued tasks", got)
		}
	})
}

// TestConformanceRestartRevives pins the crash/restart cycle on both
// transports: a crashed host fails fast, a restarted one executes work
// again (the wire side re-spawns a real node + connection), and the
// cycle can repeat.
func TestConformanceRestartRevives(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		for round := 0; round < 2; round++ {
			tr.Crash(2)
			if err := tr.Do(2, func() {}); !errors.Is(err, sim.ErrHostDown) {
				t.Fatalf("round %d: Do on crashed host: got %v, want ErrHostDown", round, err)
			}
			tr.Restart(2)
			var ran atomic.Bool
			if err := tr.Do(2, func() { ran.Store(true) }); err != nil {
				t.Fatalf("round %d: Do after restart: %v", round, err)
			}
			if !ran.Load() {
				t.Fatalf("round %d: restarted host did not execute", round)
			}
		}
		// The revived host still serializes: two async tasks run in order.
		var order []int
		var mu sync.Mutex
		done := make(chan struct{})
		tr.Go(2, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
		tr.Go(2, func() { mu.Lock(); order = append(order, 2); mu.Unlock(); close(done) })
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("restarted host stalled")
		}
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("restarted host ran out of order: %v", order)
		}
	})
}

// TestConformanceRestartPanicsOnLiveHost pins Restart's precondition on
// both transports.
func TestConformanceRestartPanicsOnLiveHost(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr sim.Transport) {
		defer func() {
			if recover() == nil {
				t.Fatal("Restart of a live host did not panic")
			}
		}()
		tr.Restart(1)
	})
}
