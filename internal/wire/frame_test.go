package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		kind byte
		id   uint64
		body []byte
	}{
		{kMsg, 1, nil},
		{kAck, 1 << 40, nil},
		{kTask, 7, []byte{1}},
		{kDone, 7, statusBody(statusOK, nil)},
		{kCall, 9, callBody("floor", []byte(`{"q":42}`))},
		{kReply, 9, statusBody(statusError, []byte("boom"))},
		{kClose, 0, nil},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := writeFrame(&buf, c.kind, c.id, c.body); err != nil {
			t.Fatalf("writeFrame(%d): %v", c.kind, err)
		}
	}
	r := bufio.NewReader(&buf)
	for _, c := range cases {
		kind, id, body, err := readFrame(r)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if kind != c.kind || id != c.id || !bytes.Equal(body, c.body) {
			t.Fatalf("round trip: got (%d,%d,%q), want (%d,%d,%q)",
				kind, id, body, c.kind, c.id, c.body)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, kMsg, 0, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversize frame accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversize length accepted on read")
	}
}

func TestCallBodyRoundTrip(t *testing.T) {
	method, args, err := splitCallBody(callBody("insert", []byte(`{"k":1}`)))
	if err != nil {
		t.Fatalf("splitCallBody: %v", err)
	}
	if method != "insert" || string(args) != `{"k":1}` {
		t.Fatalf("got (%q, %q)", method, args)
	}
	if _, _, err := splitCallBody([]byte{0}); err == nil {
		t.Fatal("short body accepted")
	}
	if _, _, err := splitCallBody([]byte{0, 9, 'x'}); err == nil {
		t.Fatal("truncated method accepted")
	}
}

// TestClientNodeRPC exercises the named-call plane end to end: a node
// with handlers, a dialed client, JSON args and replies, handler errors,
// unknown methods, and the KMsg accounting plane.
func TestClientNodeRPC(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Host:   2,
		Listen: "127.0.0.1:0",
		Handlers: map[string]Handler{
			"add": func(args json.RawMessage) (any, error) {
				var in struct{ A, B int }
				if err := json.Unmarshal(args, &in); err != nil {
					return nil, err
				}
				return in.A + in.B, nil
			},
			"fail": func(args json.RawMessage) (any, error) {
				return nil, errors.New("deliberate")
			},
		},
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Drop()

	cl, err := Dial(2, n.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	var sum int
	if err := cl.Call("add", map[string]int{"A": 2, "B": 40}, &sum); err != nil {
		t.Fatalf("Call(add): %v", err)
	}
	if sum != 42 {
		t.Fatalf("add = %d, want 42", sum)
	}
	if err := cl.Call("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("Call(fail): got %v, want handler error", err)
	}
	if err := cl.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("Call(nope): got %v, want unknown method", err)
	}

	// The accounting plane: each Hop bumps the node's charged counter.
	for i := 0; i < 5; i++ {
		if err := cl.Hop(); err != nil {
			t.Fatalf("Hop: %v", err)
		}
	}
	if got := n.Messages(); got != 5 {
		t.Fatalf("node counted %d messages, want 5", got)
	}
	n.ResetMessages()
	if got := n.Messages(); got != 0 {
		t.Fatalf("reset left %d messages", got)
	}
}

// TestClientTimeout pins the typed timeout on the client plane: a
// deliberately stalled handler must surface sim.ErrTimeout to a dialer
// with a deadline, not hang it.
func TestClientTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	n, err := NewNode(NodeConfig{
		Host:   0,
		Listen: "127.0.0.1:0",
		Handlers: map[string]Handler{
			"stall": func(args json.RawMessage) (any, error) {
				<-block
				return nil, nil
			},
		},
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Drop()

	cl, err := Dial(0, n.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	cl.SetTimeout(100 * time.Millisecond)
	err = cl.Call("stall", nil, nil)
	if !errors.Is(err, sim.ErrTimeout) {
		t.Fatalf("stalled call: got %v, want ErrTimeout", err)
	}
}
