package detskipnet

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// Deterministic structures have no randomness to hide behind: these
// tests drive the exact insertion/deletion orders that historically
// break gap-invariant implementations.

func TestSortedAscendingInserts(t *testing.T) {
	net := sim.NewNetwork(1024)
	l := New(net)
	for i := uint64(0); i < 1000; i++ {
		if _, err := l.Insert(i, 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%97 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedDescendingInserts(t *testing.T) {
	net := sim.NewNetwork(1024)
	l := New(net)
	for i := uint64(1000); i > 0; i-- {
		if _, err := l.Insert(i, 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%97 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i, err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingInsertsDescendingDeletes(t *testing.T) {
	net := sim.NewNetwork(1024)
	l := New(net)
	const n = 600
	for i := uint64(0); i < n; i++ {
		if _, err := l.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(n); i > 0; i-- {
		if _, err := l.Delete(i-1, 0); err != nil {
			t.Fatalf("delete %d: %v", i-1, err)
		}
		if (i-1)%53 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %d: %v", i-1, err)
			}
		}
	}
	if l.Len() != 0 {
		t.Fatalf("len %d", l.Len())
	}
}

func TestDeleteFromFront(t *testing.T) {
	net := sim.NewNetwork(1024)
	l := New(net)
	const n = 600
	for i := uint64(0); i < n; i++ {
		if _, err := l.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting the minimum repeatedly stresses the head-boundary gaps.
	for i := uint64(0); i < n; i++ {
		if _, err := l.Delete(i, 0); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if i%53 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %d: %v", i, err)
			}
		}
	}
	if l.Len() != 0 || l.Height() != 1 {
		t.Fatalf("len %d height %d", l.Len(), l.Height())
	}
}

func TestDeleteEveryOther(t *testing.T) {
	net := sim.NewNetwork(2048)
	l := New(net)
	const n = 800
	for i := uint64(0); i < n; i++ {
		if _, err := l.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating deletions create maximal gap fragmentation.
	for i := uint64(0); i < n; i += 2 {
		if _, err := l.Delete(i, 0); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < n; i += 2 {
		got, ok, _ := l.Search(i, 0)
		if !ok || got != i {
			t.Fatalf("Search(%d) = %d,%v", i, got, ok)
		}
		got, ok, _ = l.Search(i-1, 0)
		if i == 1 {
			if ok {
				t.Fatal("phantom floor below minimum")
			}
		} else if !ok || got != i-2 {
			t.Fatalf("Search(%d) = %d,%v want %d", i-1, got, ok, i-2)
		}
	}
}

func TestWorstCaseHeightBound(t *testing.T) {
	// With gaps in [1,3], level i+1 has at least (|level i|-3)/4 posts,
	// so height <= log_2(n) * 2 + c for any input order. Verify across
	// three adversarial orders.
	orders := map[string]func(n uint64) []uint64{
		"ascending": func(n uint64) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = uint64(i)
			}
			return out
		},
		"descending": func(n uint64) []uint64 {
			out := make([]uint64, n)
			for i := range out {
				out[i] = n - uint64(i)
			}
			return out
		},
		"zigzag": func(n uint64) []uint64 {
			out := make([]uint64, 0, n)
			lo, hi := uint64(0), n
			for lo < hi {
				out = append(out, lo)
				lo++
				if lo < hi {
					out = append(out, hi)
					hi--
				}
			}
			return out
		},
	}
	for name, gen := range orders {
		net := sim.NewNetwork(4096)
		l := New(net)
		for _, k := range gen(3000) {
			if _, err := l.Insert(k, 0); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if h := l.Height(); h > 26 {
			t.Errorf("%s: height %d exceeds deterministic bound", name, h)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
