package detskipnet

import (
	"math"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func bruteFloor(keys map[uint64]bool, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func TestBuildInvariants(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 3, 4, 5, 10, 100, 1000} {
		net := sim.NewNetwork(n)
		l := New(net)
		if err := l.Build(distinctKeys(rng.Split(), n)); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if l.Len() != n {
			t.Fatalf("n=%d: len %d", n, l.Len())
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := xrand.New(2)
	keys := distinctKeys(rng, 500)
	set := map[uint64]bool{}
	for _, k := range keys {
		set[k] = true
	}
	net := sim.NewNetwork(500)
	l := New(net)
	if err := l.Build(keys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		q := rng.Uint64n(1 << 41)
		got, ok, _ := l.Search(q, sim.HostID(rng.Intn(500)))
		want, wok := bruteFloor(set, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("query %d: got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestDeterministicWorstCase(t *testing.T) {
	// The defining property vs randomized structures: with the gap
	// invariant, height is worst-case logarithmic, so the longest search
	// path is bounded deterministically.
	rng := xrand.New(3)
	for _, n := range []int{1024, 4096} {
		net := sim.NewNetwork(n)
		l := New(net)
		if err := l.Build(distinctKeys(rng.Split(), n)); err != nil {
			t.Fatal(err)
		}
		// Height <= log2(n) + 2 for 1-2-3 gaps (each level at least
		// halves... gaps >= 1 mean each level has <= the level below).
		if h := l.Height(); h > 2*int(math.Log2(float64(n)))+3 {
			t.Fatalf("n=%d: height %d too large", n, h)
		}
		maxHops := 0
		qr := rng.Split()
		for i := 0; i < 500; i++ {
			_, _, hops := l.Search(qr.Uint64n(1<<40), 0)
			if hops > maxHops {
				maxHops = hops
			}
		}
		// Worst-case path: height levels x <= 3 lateral moves.
		bound := 4 * (2*int(math.Log2(float64(n))) + 3)
		if maxHops > bound {
			t.Fatalf("n=%d: max hops %d exceeds deterministic bound %d", n, maxHops, bound)
		}
	}
}

func TestInsertChurnInvariants(t *testing.T) {
	rng := xrand.New(4)
	net := sim.NewNetwork(2048)
	l := New(net)
	keys := distinctKeys(rng, 1000)
	for i, k := range keys {
		if _, err := l.Insert(k, sim.HostID(i%64)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if i%100 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteChurnInvariants(t *testing.T) {
	rng := xrand.New(5)
	keys := distinctKeys(rng, 800)
	set := map[uint64]bool{}
	for _, k := range keys {
		set[k] = true
	}
	net := sim.NewNetwork(1024)
	l := New(net)
	if err := l.Build(keys); err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(keys))
	for i, pi := range perm[:600] {
		if _, err := l.Delete(keys[pi], sim.HostID(i%64)); err != nil {
			t.Fatalf("delete %d: %v", keys[pi], err)
		}
		delete(set, keys[pi])
		if i%40 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d (key %d): %v", i, keys[pi], err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qr := xrand.New(6)
	for i := 0; i < 800; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _ := l.Search(q, 0)
		want, wok := bruteFloor(set, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after churn: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestMixedChurnOracle(t *testing.T) {
	rng := xrand.New(7)
	net := sim.NewNetwork(512)
	l := New(net)
	set := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Uint64n(2000)
		switch {
		case !set[k]:
			if _, err := l.Insert(k, 0); err != nil {
				t.Fatalf("op %d insert %d: %v", i, k, err)
			}
			set[k] = true
		case rng.Bool():
			if _, err := l.Delete(k, 0); err != nil {
				t.Fatalf("op %d delete %d: %v", i, k, err)
			}
			delete(set, k)
		default:
			got, ok, _ := l.Search(k, 0)
			if !ok || got != k {
				t.Fatalf("op %d: search %d = %d,%v", i, k, got, ok)
			}
		}
		if i%250 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if l.Len() != len(set) {
		t.Fatalf("len %d, oracle %d", l.Len(), len(set))
	}
}

func TestDrainToEmpty(t *testing.T) {
	rng := xrand.New(8)
	keys := distinctKeys(rng, 100)
	net := sim.NewNetwork(128)
	l := New(net)
	if err := l.Build(keys); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := l.Delete(k, 0); err != nil {
			t.Fatalf("delete %d (%d): %v", i, k, err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if l.Len() != 0 || l.Height() != 1 {
		t.Fatalf("len %d height %d after drain", l.Len(), l.Height())
	}
	s := net.Snapshot()
	if s.MaxStorage != 0 {
		t.Fatalf("storage leak: %d", s.MaxStorage)
	}
}

func TestDuplicatesAndMissing(t *testing.T) {
	net := sim.NewNetwork(4)
	l := New(net)
	if _, err := l.Insert(5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Insert(5, 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := l.Delete(6, 0); err == nil {
		t.Fatal("missing delete accepted")
	}
	if err := l.Build([]uint64{7, 7}); err == nil {
		t.Fatal("duplicate build accepted")
	}
}

func TestZeroVariance(t *testing.T) {
	// Two lists built over the same keys are identical structures: the
	// construction is deterministic (no coin flips).
	rng := xrand.New(9)
	keys := distinctKeys(rng, 300)
	net1 := sim.NewNetwork(300)
	net2 := sim.NewNetwork(300)
	l1, l2 := New(net1), New(net2)
	if err := l1.Build(keys); err != nil {
		t.Fatal(err)
	}
	if err := l2.Build(keys); err != nil {
		t.Fatal(err)
	}
	qr := xrand.New(10)
	for i := 0; i < 300; i++ {
		q := qr.Uint64n(1 << 41)
		_, _, h1 := l1.Search(q, 0)
		_, _, h2 := l2.Search(q, 0)
		if h1 != h2 {
			t.Fatalf("query %d: hop counts differ (%d vs %d)", q, h1, h2)
		}
	}
}
