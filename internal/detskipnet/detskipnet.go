// Package detskipnet implements a deterministic distributed ordered
// dictionary standing in for deterministic SkipNet (Harvey and Munro,
// PODC 2003), the derandomized row of Table 1 in the skip-webs paper.
//
// The structure is a 1-2-3 deterministic skip list (after Munro,
// Papadakis, and Sedgewick): between two consecutive elements of the
// level-(i+1) list there are always 1 to 3 elements of the level-i list
// (boundary gaps may hold 0 to 3). Searches are therefore worst-case
// O(log n) messages with zero variance; insertions and deletions restore
// the gap invariant by promoting or demoting elements, costing O(log n)
// messages typically and O(log² n) in promotion/demotion cascades —
// matching the paper's quoted Q(n) = O(log n), U(n) = O(log² n).
//
// Every key lives on its own host; a node's tower of height h costs
// 2h+1 storage units there.
package detskipnet

import (
	"fmt"
	"sort"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// List is a deterministic 1-2-3 skip list. The zero value is not usable;
// construct with New.
type List struct {
	net   *sim.Network
	head  *dnode // sentinel, present at every level
	nodes map[uint64]*dnode
	keys  []uint64
	seq   int
}

type dnode struct {
	key    uint64
	host   sim.HostID
	isHead bool
	next   []*dnode
	prev   []*dnode
}

func (n *dnode) height() int { return len(n.next) }

// New creates an empty list over net's hosts.
func New(net *sim.Network) *List {
	h := &dnode{isHead: true, host: 0}
	h.next = append(h.next, nil)
	h.prev = append(h.prev, nil)
	return &List{net: net, head: h, nodes: make(map[uint64]*dnode)}
}

// Len returns the number of keys.
func (l *List) Len() int { return len(l.nodes) }

// Height returns the number of levels in use.
func (l *List) Height() int { return l.head.height() }

func (l *List) nextHost() sim.HostID {
	h := sim.HostID(l.seq % l.net.Hosts())
	l.seq++
	return h
}

// Build inserts keys one by one without routing messages (the structure
// is deterministic, so bulk construction equals repeated insertion).
func (l *List) Build(keys []uint64) error {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, k := range sorted {
		if i > 0 && sorted[i-1] == k {
			return fmt.Errorf("detskipnet: duplicate key %d", k)
		}
		if err := l.insertInternal(k, nil); err != nil {
			return err
		}
	}
	return nil
}

// Search performs a floor query, returning the largest key <= target.
// Searches start at the head's host (the deterministic structure has a
// distinguished entry), so the message count is the worst-case
// deterministic path length.
func (l *List) Search(target uint64, origin sim.HostID) (uint64, bool, int) {
	op := l.net.NewOp(origin)
	defer op.Free()
	op.Visit(l.head.host)
	cur := l.head
	for lvl := l.head.height() - 1; lvl >= 0; lvl-- {
		for {
			nx := nextAt(cur, lvl)
			if nx == nil || nx.key > target {
				break
			}
			cur = nx
			op.Visit(cur.host)
		}
	}
	if cur.isHead {
		return 0, false, op.Hops()
	}
	return cur.key, true, op.Hops()
}

func nextAt(n *dnode, lvl int) *dnode {
	if lvl >= n.height() {
		return nil
	}
	return n.next[lvl]
}

// Insert adds a key, restoring the gap invariant by promotions.
func (l *List) Insert(key uint64, origin sim.HostID) (int, error) {
	if _, ok := l.nodes[key]; ok {
		return 0, fmt.Errorf("detskipnet: duplicate key %d", key)
	}
	op := l.net.NewOp(origin)
	defer op.Free()
	op.Visit(l.head.host)
	if err := l.insertInternal(key, op); err != nil {
		return op.Hops(), err
	}
	return op.Hops(), nil
}

// insertInternal splices the key at level 0 and fixes gaps upward. op may
// be nil during bulk build.
func (l *List) insertInternal(key uint64, op *sim.Op) error {
	// Find level-0 predecessor via the deterministic search path.
	preds := l.predecessors(key, op)
	pred := preds[0]
	n := &dnode{key: key, host: l.nextHost()}
	n.next = append(n.next, pred.next[0])
	n.prev = append(n.prev, pred)
	if pred.next[0] != nil {
		pred.next[0].prev[0] = n
		l.send(op, pred.next[0].host)
	}
	pred.next[0] = n
	l.send(op, pred.host)
	l.nodes[key] = n
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.net.AddStorage(n.host, 3)
	// Restore gaps bottom-up.
	l.fixFrom(0, key, op)
	return nil
}

// predecessors returns, for each level, the last node (head or key node)
// whose key is < key, charging the walk to op.
func (l *List) predecessors(key uint64, op *sim.Op) []*dnode {
	h := l.head.height()
	preds := make([]*dnode, h)
	cur := l.head
	for lvl := h - 1; lvl >= 0; lvl-- {
		for {
			nx := nextAt(cur, lvl)
			if nx == nil || nx.key >= key {
				break
			}
			cur = nx
			l.visit(op, cur.host)
		}
		preds[lvl] = cur
	}
	return preds
}

func (l *List) visit(op *sim.Op, h sim.HostID) {
	if op != nil {
		op.Visit(h)
	}
}

func (l *List) send(op *sim.Op, h sim.HostID) {
	if op != nil {
		op.Send(h)
	}
}

// gapBetween counts level-lvl nodes strictly between a and b (b nil means
// the end of the list).
func (l *List) gapBetween(a, b *dnode, lvl int) int {
	count := 0
	for x := nextAt(a, lvl); x != nil && x != b; x = nextAt(x, lvl) {
		count++
	}
	return count
}

// lastPostBelow returns the last level-lvl node (or the head) whose key is
// strictly below key.
func (l *List) lastPostBelow(lvl int, key uint64) *dnode {
	a := l.head
	for {
		nx := nextAt(a, lvl)
		if nx == nil || nx.key >= key {
			return a
		}
		a = nx
	}
}

// gapFix is a deferred invariant check at one level around one key.
type gapFix struct {
	lvl int
	key uint64
}

// fixFrom restores the gap invariant via a worklist, seeding checks at
// levels 0..maxLvl around the given key (an insert perturbs level 0; a
// delete perturbs every level its tower occupied). Promotions (oversized
// gaps) and borrows/merges (empty interior gaps) each enqueue the levels
// they perturb; the cascade is bounded by O(height) fixes per level,
// giving the O(log² n) worst-case update cost of the deterministic
// structure.
func (l *List) fixFrom(maxLvl int, key uint64, op *sim.Op) {
	queue := make([]gapFix, 0, maxLvl+1)
	for j := 0; j <= maxLvl; j++ {
		queue = append(queue, gapFix{j, key})
	}
	guard := 0
	for len(queue) > 0 {
		if guard++; guard > 64*64 {
			panic("detskipnet: rebalancing did not converge")
		}
		f := queue[0]
		queue = queue[1:]
		queue = append(queue, l.fixOne(f, op)...)
	}
	l.shrink()
}

// fixOne checks and repairs the gap containing f.key at level f.lvl,
// returning follow-up fixes.
func (l *List) fixOne(f gapFix, op *sim.Op) []gapFix {
	lvl := f.lvl
	if lvl >= l.head.height() {
		return nil
	}
	if lvl+1 >= l.head.height() {
		// Top level: bounded by 3 elements; grow a level if needed.
		if l.gapBetween(l.head, nil, lvl) <= 3 {
			return nil
		}
		l.head.next = append(l.head.next, nil)
		l.head.prev = append(l.head.prev, nil)
	}
	a := l.lastPostBelow(lvl+1, f.key)
	b := nextAt(a, lvl+1)
	g := l.gapBetween(a, b, lvl)
	switch {
	case g > 3:
		m := l.promoteMiddle(a, lvl, g, op)
		return []gapFix{{lvl + 1, m.key}}
	case g == 0 && b != nil && !a.isHead:
		// Interior gaps must hold at least one element; boundary gaps
		// (before the first post or after the last) may be empty.
		return l.fixEmptyGap(a, b, lvl, op)
	default:
		return nil
	}
}

// promoteMiddle promotes the middle element of the oversized gap after
// post a at level lvl, returning the promoted node.
func (l *List) promoteMiddle(a *dnode, lvl, g int, op *sim.Op) *dnode {
	x := nextAt(a, lvl)
	for i := 0; i < (g-1)/2; i++ {
		x = nextAt(x, lvl)
	}
	l.splice(x, a, lvl+1, op)
	return x
}

// splice raises node x to level lvl, inserting it after pred (its
// level-lvl predecessor); x's height must be exactly lvl.
func (l *List) splice(x, pred *dnode, lvl int, op *sim.Op) {
	if x.height() != lvl {
		panic(fmt.Sprintf("detskipnet: splice of height-%d node at level %d", x.height(), lvl))
	}
	nx := nextAt(pred, lvl)
	x.next = append(x.next, nx)
	x.prev = append(x.prev, pred)
	pred.next[lvl] = x
	if nx != nil {
		nx.prev[lvl] = x
		l.send(op, nx.host)
	}
	l.send(op, pred.host)
	l.send(op, x.host)
	l.net.AddStorage(x.host, 2)
}

// fixEmptyGap repairs an empty interior gap (a, b) at level lvl: borrow a
// post position from a sibling gap when possible, otherwise merge by
// removing post b from every level above lvl.
func (l *List) fixEmptyGap(a, b *dnode, lvl int, op *sim.Op) []gapFix {
	// Borrow right: shift post b onto the first element of its right gap.
	c := nextAt(b, lvl+1)
	if l.gapBetween(b, c, lvl) >= 2 {
		e := nextAt(b, lvl)
		l.replacePost(b, e, lvl+1, op)
		return nil
	}
	// Borrow left: shift post a onto the last element of its left gap.
	if !a.isHead {
		pa := a.prev[lvl+1]
		if gL := l.gapBetween(pa, a, lvl); gL >= 2 {
			d := a.prev[lvl]
			l.replacePost(a, d, lvl+1, op)
			return nil
		}
	}
	// Merge: remove post b from levels lvl+1 and above; the merged gaps at
	// each higher level must be re-checked.
	top := b.height() - 1
	var fixes []gapFix
	for j := top; j >= lvl+1; j-- {
		p, nx := b.prev[j], b.next[j]
		p.next[j] = nx
		if nx != nil {
			nx.prev[j] = p
			l.send(op, nx.host)
		}
		l.send(op, p.host)
		fixes = append(fixes, gapFix{j, b.key})
	}
	l.send(op, b.host)
	l.net.AddStorage(b.host, -2*(top-lvl))
	b.next = b.next[:lvl+1]
	b.prev = b.prev[:lvl+1]
	return fixes
}

// replacePost moves the tower of post b above fromLvl onto element e
// (whose height must be exactly fromLvl), preserving all gap counts at
// higher levels.
func (l *List) replacePost(b, e *dnode, fromLvl int, op *sim.Op) {
	if e.height() != fromLvl {
		panic(fmt.Sprintf("detskipnet: replacePost with height-%d element at level %d", e.height(), fromLvl))
	}
	h := b.height()
	for j := fromLvl; j < h; j++ {
		p, nx := b.prev[j], b.next[j]
		if p == b || nx == b {
			panic("detskipnet: self link")
		}
		e.next = append(e.next, nx)
		e.prev = append(e.prev, p)
		p.next[j] = e
		if nx != nil {
			nx.prev[j] = e
			l.send(op, nx.host)
		}
		l.send(op, p.host)
	}
	l.send(op, b.host)
	l.send(op, e.host)
	moved := h - fromLvl
	l.net.AddStorage(b.host, -2*moved)
	l.net.AddStorage(e.host, 2*moved)
	b.next = b.next[:fromLvl]
	b.prev = b.prev[:fromLvl]
}

// Delete removes a key, restoring the gap invariant by demotions and
// re-promotions.
func (l *List) Delete(key uint64, origin sim.HostID) (int, error) {
	n, ok := l.nodes[key]
	if !ok {
		return 0, fmt.Errorf("detskipnet: key %d not found", key)
	}
	op := l.net.NewOp(origin)
	defer op.Free()
	op.Visit(l.head.host)
	// Charge the search path.
	l.predecessors(key, op)
	h := n.height()
	// Unlink n at all its levels.
	for lvl := n.height() - 1; lvl >= 0; lvl-- {
		p, nx := n.prev[lvl], n.next[lvl]
		p.next[lvl] = nx
		if nx != nil {
			nx.prev[lvl] = p
			l.send(op, nx.host)
		}
		l.send(op, p.host)
	}
	l.net.AddStorage(n.host, -(1 + 2*n.height()))
	delete(l.nodes, key)
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	// Restore gaps from the bottom up around the removal point. Every
	// level the removed tower occupied lost an element (and a post), so
	// enqueue each of them.
	l.fixFrom(h-1, key, op)
	return op.Hops(), nil
}

// shrink removes empty top levels.
func (l *List) shrink() {
	for l.head.height() > 1 && l.head.next[l.head.height()-1] == nil {
		l.head.next = l.head.next[:l.head.height()-1]
		l.head.prev = l.head.prev[:len(l.head.next)]
	}
}

// MaxHeight returns the tallest tower among key nodes.
func (l *List) MaxHeight() int {
	max := 0
	for _, n := range l.nodes {
		if n.height() > max {
			max = n.height()
		}
	}
	return max
}

// Keys returns the keys in sorted order.
func (l *List) Keys() []uint64 { return append([]uint64(nil), l.keys...) }

// CheckInvariants verifies sorted order, link symmetry, level nesting,
// and the 1..3 gap invariant (boundary gaps 0..3).
func (l *List) CheckInvariants() error {
	// Every level sorted, doubly linked, and a subsequence of the level
	// below.
	for lvl := 0; lvl < l.head.height(); lvl++ {
		var prevKey uint64
		first := true
		for x := nextAt(l.head, lvl); x != nil; x = nextAt(x, lvl) {
			if !first && x.key <= prevKey {
				return fmt.Errorf("detskipnet: level %d out of order at %d", lvl, x.key)
			}
			prevKey, first = x.key, false
			if x.prev[lvl] != l.head && x.prev[lvl].next[lvl] != x {
				return fmt.Errorf("detskipnet: level %d link asymmetry at %d", lvl, x.key)
			}
			if lvl > 0 && x.height() < lvl+1 {
				return fmt.Errorf("detskipnet: level %d node %d too short", lvl, x.key)
			}
		}
	}
	// Gap invariant: interior gaps hold 1..3 elements, boundary gaps 0..3,
	// and the top level holds at most 3 elements.
	for lvl := 0; lvl < l.head.height(); lvl++ {
		if lvl == l.head.height()-1 {
			if g := l.gapBetween(l.head, nil, lvl); g > 3 {
				return fmt.Errorf("detskipnet: top level %d has %d elements", lvl, g)
			}
			break
		}
		a := l.head
		for {
			b := nextAt(a, lvl+1)
			g := l.gapBetween(a, b, lvl)
			if g > 3 {
				return fmt.Errorf("detskipnet: gap of %d at level %d", g, lvl)
			}
			if g < 1 && b != nil && !a.isHead {
				return fmt.Errorf("detskipnet: empty interior gap at level %d before %d", lvl, b.key)
			}
			if b == nil {
				break
			}
			a = b
		}
	}
	if len(l.keys) != len(l.nodes) {
		return fmt.Errorf("detskipnet: keys %d, nodes %d", len(l.keys), len(l.nodes))
	}
	return nil
}
