package quadtree

import (
	"testing"
	"testing/quick"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestChurnEqualsRebuildQuick verifies structural canonicity: the
// compressed quadtree reached by any interleaving of inserts and deletes
// equals the bulk-built tree over the surviving points (same node count,
// same cells) — the "unique link structure" property skip-webs require
// (Section 2.1).
func TestChurnEqualsRebuildQuick(t *testing.T) {
	f := func(seedRaw uint32, opsRaw []uint8) bool {
		rng := xrand.New(uint64(seedRaw) ^ 0x9dc)
		tr := New(2)
		live := map[uint64]Point{}
		for _, op := range opsRaw {
			p := Point{uint32(op % 16), uint32(rng.Intn(16))}
			code, err := tr.Code(p)
			if err != nil {
				return false
			}
			if _, ok := live[code]; ok && rng.Bool() {
				if _, err := tr.Delete(p); err != nil {
					return false
				}
				delete(live, code)
			} else if _, ok := live[code]; !ok {
				if _, err := tr.Insert(p); err != nil {
					return false
				}
				live[code] = p
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		var pts []Point
		for _, p := range live {
			pts = append(pts, p)
		}
		bulk, err := Build(2, pts)
		if err != nil {
			return false
		}
		if tr.NumNodes() != bulk.NumNodes() {
			return false
		}
		// Every live cell of one exists in the other.
		for _, id := range tr.Nodes() {
			if _, ok := bulk.NodeByCell(tr.CellOf(id)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetCellsQuick verifies the anchor premise used by the skip-web
// engine: every node cell of a tree over a subset exists as a node cell
// of the tree over the superset.
func TestSubsetCellsQuick(t *testing.T) {
	f := func(seedRaw uint32) bool {
		rng := xrand.New(uint64(seedRaw) ^ 0x577)
		n := 8 + rng.Intn(120)
		pts := randPoints(rng, 2, n, 1<<12)
		full, err := Build(2, pts)
		if err != nil {
			return false
		}
		var half []Point
		for _, p := range pts {
			if rng.Bool() {
				half = append(half, p)
			}
		}
		sub, err := Build(2, half)
		if err != nil {
			return false
		}
		for _, id := range sub.Nodes() {
			if _, ok := full.NodeByCell(sub.CellOf(id)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
