package quadtree

import (
	"testing"
	"testing/quick"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func randPoints(rng *xrand.Rand, d, n int, coordRange uint32) []Point {
	seen := map[uint64]bool{}
	t := New(d)
	pts := make([]Point, 0, n)
	for len(pts) < n {
		p := make(Point, d)
		for i := range p {
			p[i] = uint32(rng.Uint64n(uint64(coordRange)))
		}
		c, err := t.Code(p)
		if err != nil {
			panic(err)
		}
		if !seen[c] {
			seen[c] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, 1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	tr, err := Build(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != NoNode || tr.Len() != 0 {
		t.Fatal("empty tree malformed")
	}
	tr, err = Build(2, []Point{{5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatal("single-point tree wrong len")
	}
	if c := tr.CellOf(tr.Root()); c.PLen != 0 {
		t.Fatalf("root not universal: %+v", c)
	}
	kids := tr.Children(tr.Root())
	if len(kids) != 1 || !tr.IsLeaf(kids[0]) {
		t.Fatal("single-point tree malformed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	if _, err := Build(2, []Point{{1, 2}, {1, 2}}); err == nil {
		t.Fatal("duplicate points accepted")
	}
}

func TestBuildRejectsBadPoints(t *testing.T) {
	if _, err := Build(2, []Point{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
	if _, err := Build(2, []Point{{1 << 31, 2}}); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}

func TestBuildInvariantsRandom(t *testing.T) {
	rng := xrand.New(1)
	for _, d := range []int{2, 3} {
		for _, n := range []int{2, 10, 100, 1000} {
			pts := randPoints(rng.Split(), d, n, 1<<10)
			tr, err := Build(d, pts)
			if err != nil {
				t.Fatalf("d=%d n=%d: %v", d, n, err)
			}
			if tr.Len() != n {
				t.Fatalf("d=%d n=%d: len %d", d, n, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("d=%d n=%d: %v", d, n, err)
			}
		}
	}
}

func TestLocateFindsEveryPoint(t *testing.T) {
	rng := xrand.New(2)
	pts := randPoints(rng, 2, 500, 1<<16)
	tr, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		code, _ := tr.Code(p)
		id, _ := tr.Locate(code)
		if !tr.IsLeaf(id) {
			t.Fatalf("point %v located non-leaf", p)
		}
		got := tr.PointAt(id)
		if got[0] != p[0] || got[1] != p[1] {
			t.Fatalf("point %v located leaf %v", p, got)
		}
	}
}

func TestLocateAbsentPointTerminates(t *testing.T) {
	tr, _ := Build(2, []Point{{0, 0}, {1 << 20, 1 << 20}})
	code, _ := tr.Code(Point{3, 3})
	id, steps := tr.Locate(code)
	if id == NoNode {
		t.Fatal("locate returned NoNode on nonempty tree")
	}
	if steps < 0 {
		t.Fatal("negative steps")
	}
}

func TestInsertMatchesBuild(t *testing.T) {
	rng := xrand.New(3)
	pts := randPoints(rng, 2, 300, 1<<12)
	tr := New(2)
	for i, p := range pts {
		res, err := tr.Insert(p)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if res.Leaf == NoNode {
			t.Fatalf("insert %d: no leaf", i)
		}
	}
	if tr.Len() != len(pts) {
		t.Fatalf("len %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same node count as a bulk build (structure is unique).
	bulk, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != bulk.NumNodes() {
		t.Fatalf("incremental %d nodes, bulk %d", tr.NumNodes(), bulk.NumNodes())
	}
}

func TestInsertRejectsDuplicate(t *testing.T) {
	tr := New(2)
	if _, err := tr.Insert(Point{5, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(Point{5, 5}); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("len %d after rejected duplicate", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	rng := xrand.New(4)
	pts := randPoints(rng, 2, 200, 1<<12)
	tr, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if _, err := tr.Delete(p); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.Root() != NoNode {
		t.Fatal("tree not empty after deleting all")
	}
	if _, err := tr.Delete(pts[0]); err == nil {
		t.Fatal("delete of absent point succeeded")
	}
}

func TestInsertDeleteMix(t *testing.T) {
	rng := xrand.New(5)
	tr := New(3)
	live := map[string]Point{}
	keyOf := func(p Point) string {
		return string([]byte{byte(p[0]), byte(p[0] >> 8), byte(p[1]), byte(p[1] >> 8), byte(p[2]), byte(p[2] >> 8)})
	}
	for i := 0; i < 2000; i++ {
		p := Point{uint32(rng.Intn(64)), uint32(rng.Intn(64)), uint32(rng.Intn(64))}
		k := keyOf(p)
		if _, ok := live[k]; ok && rng.Bool() {
			if _, err := tr.Delete(p); err != nil {
				t.Fatalf("op %d delete: %v", i, err)
			}
			delete(live, k)
		} else if _, ok := live[k]; !ok {
			if _, err := tr.Insert(p); err != nil {
				t.Fatalf("op %d insert: %v", i, err)
			}
			live[k] = p
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len %d, oracle %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedDepthLinearForClusters(t *testing.T) {
	// Nested pairs at exponentially decreasing separation force a deep
	// compressed tree: each pair needs its own tiny cell. This is the
	// adversarial O(n)-depth regime of Section 3.1.
	var pts []Point
	base := uint32(0)
	step := uint32(1) << 29
	for i := 0; i < 28; i++ {
		pts = append(pts, Point{base + step, base + step})
		pts = append(pts, Point{base + step + 1, base + step + 1})
		step >>= 1
	}
	// Dedupe guard: all generated points distinct by construction.
	tr, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d < 10 {
		t.Fatalf("expected deep tree, depth %d", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCellArithmetic(t *testing.T) {
	tr := New(2)
	whole := Cell{Prefix: 0, PLen: 0}
	c1 := Cell{Prefix: 0b01, PLen: 2}
	c2 := Cell{Prefix: 0b0110, PLen: 4}
	c3 := Cell{Prefix: 0b10, PLen: 2}
	if !tr.CellContainsCell(whole, c1) || !tr.CellContainsCell(c1, c2) {
		t.Fatal("containment failed")
	}
	if tr.CellContainsCell(c1, c3) || tr.CellContainsCell(c3, c2) {
		t.Fatal("false containment")
	}
	if !tr.CellsIntersect(c2, c1) {
		t.Fatal("nested cells must intersect")
	}
	if tr.CellsIntersect(c2, c3) {
		t.Fatal("disjoint cells intersect")
	}
}

func TestConflictsMatchBruteForce(t *testing.T) {
	rng := xrand.New(6)
	pts := randPoints(rng, 2, 150, 1<<8)
	tr, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	// For a sample of cells (every node's cell), conflicts must equal the
	// brute-force set of nodes whose cell intersects.
	var all []NodeID
	var walk func(NodeID)
	walk = func(id NodeID) {
		all = append(all, id)
		for _, c := range tr.Children(id) {
			walk(c)
		}
	}
	walk(tr.Root())
	for _, id := range all {
		c := tr.CellOf(id)
		got := map[NodeID]bool{}
		for _, x := range tr.Conflicts(c) {
			got[x] = true
		}
		for _, other := range all {
			want := tr.CellsIntersect(c, tr.CellOf(other))
			if got[other] != want {
				t.Fatalf("cell of node %d vs node %d: conflict=%v want %v", id, other, got[other], want)
			}
		}
	}
}

func TestLocateCellAnchors(t *testing.T) {
	rng := xrand.New(7)
	// Build S and a random half T; every cell of D(T) must anchor at a
	// node of D(S) whose cell contains it.
	pts := randPoints(rng, 2, 400, 1<<10)
	full, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	var half []Point
	for _, p := range pts {
		if rng.Bool() {
			half = append(half, p)
		}
	}
	sub, err := Build(2, half)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(NodeID)
	walk = func(id NodeID) {
		c := sub.CellOf(id)
		anchor := full.LocateCell(c)
		if anchor == NoNode {
			t.Fatalf("no anchor for cell of node %d", id)
		}
		ac := full.CellOf(anchor)
		if !full.CellContainsCell(ac, c) && full.Parent(anchor) != NoNode {
			// The anchor must contain c unless it is a boundary case where
			// only the root's parent region (whole space) contains c; the
			// walk returns the deepest container or the root.
			par := full.Parent(anchor)
			if !full.CellContainsCell(full.CellOf(par), c) {
				t.Fatalf("anchor cell %+v does not contain %+v", ac, c)
			}
		}
		for _, ch := range sub.Children(id) {
			walk(ch)
		}
	}
	if sub.Root() != NoNode {
		walk(sub.Root())
	}
}

func TestHalvingConflictConstant(t *testing.T) {
	// Empirical Lemma 3 smoke test (the full experiment is E3): the mean
	// conflict count of the cell containing a random query point in D(T)
	// against D(S) stays small.
	rng := xrand.New(8)
	pts := randPoints(rng, 2, 2000, 1<<20)
	full, err := Build(2, pts)
	if err != nil {
		t.Fatal(err)
	}
	var half []Point
	for _, p := range pts {
		if rng.Bool() {
			half = append(half, p)
		}
	}
	sub, err := Build(2, half)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		q := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		code, _ := sub.Code(q)
		id, _ := sub.Locate(code)
		// The terminal region: the deepest cell of D(T) containing q. Count
		// conflicts of the leaf-most cell against the full tree, excluding
		// the subtree below (which measures the descent work).
		conf := full.Conflicts(sub.CellOf(id))
		total += len(conf)
	}
	mean := float64(total) / trials
	if mean > 60 {
		t.Fatalf("mean conflicts %.1f too large for a halved set", mean)
	}
}

func TestCodeRoundTripQuick(t *testing.T) {
	tr := New(2)
	f := func(x, y uint32) bool {
		x &= 1<<31 - 1
		y &= 1<<31 - 1
		c, err := tr.Code(Point{x, y})
		if err != nil {
			return false
		}
		// Decode by collecting alternate bits.
		var dx, dy uint32
		for b := 0; b < 31; b++ {
			dx = dx<<1 | uint32(c>>(61-2*b)&1)
			dy = dy<<1 | uint32(c>>(60-2*b)&1)
		}
		return dx == x && dy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderSmoke(t *testing.T) {
	tr, _ := Build(2, []Point{{1, 1}, {100, 100}, {200, 50}})
	out := tr.Render()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func BenchmarkBuild1k(b *testing.B) {
	rng := xrand.New(1)
	pts := randPoints(rng, 2, 1000, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(2, pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	rng := xrand.New(1)
	pts := randPoints(rng, 2, 10000, 1<<20)
	tr, err := Build(2, pts)
	if err != nil {
		b.Fatal(err)
	}
	codes := make([]uint64, 1024)
	for i := range codes {
		codes[i], _ = tr.Code(Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Locate(codes[i%len(codes)])
	}
}
