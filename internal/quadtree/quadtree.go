// Package quadtree implements compressed quadtrees and octrees for point
// sets in d-dimensional space, the range-determined link structure of
// Section 3.1 of the skip-webs paper.
//
// Points have integer coordinates in [0, 2^K) per dimension, where
// K = 62/d bits, so that every quadtree cell is a dyadic hypercube
// identified exactly by a prefix of the points' Morton (z-order) codes.
// Two dyadic cells are either nested or disjoint, which makes the range
// arithmetic (containment, conflict lists) exact integer computations.
//
// A compressed quadtree contracts chains of single-child nodes, so it has
// O(n) nodes but can still have depth Θ(n) for adversarially clustered
// inputs — exactly the regime where the skip-web routing bound O(log n)
// is interesting.
//
// The range of a node is its hypercube; the range of a link is the cube of
// the child it leads to (Section 3.1). Because link ranges duplicate child
// node ranges, all range computations here are expressed on node cells.
package quadtree

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// NodeID identifies a node within one Tree. NoNode means "none".
type NodeID int32

// NoNode is the sentinel NodeID.
const NoNode NodeID = -1

// Point is a d-dimensional point with integer coordinates. All points in
// one Tree must have the same dimension and coordinates < 2^K where
// K = Tree.CoordBits().
type Point []uint32

// Cell is a dyadic hypercube, identified by a Morton-code prefix. PLen is
// the prefix length in bits and is always a multiple of the dimension d;
// the cube's side is 2^(K - PLen/d) in coordinate units. PLen == 0 is the
// whole space.
type Cell struct {
	Prefix uint64
	PLen   int
}

// Tree is a compressed quadtree (d = 2), octree (d = 3), or their
// d-dimensional generalization. The zero value is not usable; construct
// with New or Build.
type Tree struct {
	d     int
	k     int // coordinate bits per dimension
	ck    int // total code bits = d*k
	nodes []node
	pts   []Point
	codes []uint64
	root  NodeID
	free  []NodeID        // recycled node slots
	index map[Cell]NodeID // live cell -> node
}

type node struct {
	cell     Cell
	parent   NodeID
	childBit []uint8  // the d-bit branch value under this node's cell
	childID  []NodeID // parallel to childBit
	point    int32    // index into pts if this is a leaf, else -1
	dead     bool
}

// New creates an empty tree for d-dimensional points, 2 <= d <= 6.
func New(d int) *Tree {
	if d < 2 || d > 6 {
		panic(fmt.Sprintf("quadtree: dimension %d out of range [2,6]", d))
	}
	k := 62 / d
	return &Tree{d: d, k: k, ck: d * k, root: NoNode, index: make(map[Cell]NodeID)}
}

// Build creates a compressed tree over the given points. Points must be
// distinct; duplicates are rejected with an error. The built tree is
// independent of input order (points are sorted by Morton code first).
func Build(d int, points []Point) (*Tree, error) {
	t := New(d)
	type cp struct {
		code uint64
		idx  int
	}
	cps := make([]cp, len(points))
	for i, p := range points {
		c, err := t.Code(p)
		if err != nil {
			return nil, fmt.Errorf("quadtree: point %d: %w", i, err)
		}
		cps[i] = cp{code: c, idx: i}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].code < cps[j].code })
	for i := 1; i < len(cps); i++ {
		if cps[i].code == cps[i-1].code {
			return nil, fmt.Errorf("quadtree: duplicate point %v", points[cps[i].idx])
		}
	}
	t.pts = make([]Point, len(points))
	t.codes = make([]uint64, len(points))
	for i, c := range cps {
		t.pts[i] = points[c.idx]
		t.codes[i] = c.code
	}
	if len(points) > 0 {
		t.root = t.buildRange(0, len(points), NoNode)
		t.ensureUniversalRoot()
	}
	return t, nil
}

// BuildSorted creates a compressed tree over points already in ascending
// Morton-code order — the O(n) bulk-load path, which skips Build's sort.
// Points must be distinct; unsorted or duplicate input is rejected. The
// resulting tree is identical to Build's on the same point set.
func BuildSorted(d int, points []Point) (*Tree, error) {
	t := New(d)
	t.pts = append(t.pts, points...)
	t.codes = make([]uint64, len(points))
	for i, p := range points {
		c, err := t.Code(p)
		if err != nil {
			return nil, fmt.Errorf("quadtree: point %d: %w", i, err)
		}
		if i > 0 {
			if c == t.codes[i-1] {
				return nil, fmt.Errorf("quadtree: duplicate point %v", p)
			}
			if c < t.codes[i-1] {
				return nil, fmt.Errorf("quadtree: points not in Morton order at %d", i)
			}
		}
		t.codes[i] = c
	}
	if len(points) > 0 {
		t.root = t.buildRange(0, len(points), NoNode)
		t.ensureUniversalRoot()
	}
	return t, nil
}

// ensureUniversalRoot guarantees the root cell is the whole space
// (PLen == 0). Skip-web levels rely on this: every nonempty D(T) then has
// a range containing any query, and the root cell exists in every level's
// tree. The universal root is the one internal node allowed a single
// child.
func (t *Tree) ensureUniversalRoot() {
	if t.root == NoNode || t.nodes[t.root].cell.PLen == 0 {
		return
	}
	old := t.root
	oldCell := t.nodes[old].cell
	u := t.newNode(Cell{Prefix: 0, PLen: 0}, NoNode, -1)
	b := uint8((oldCell.Prefix >> (oldCell.PLen - t.d)) & (1<<t.d - 1))
	t.nodes[u].childBit = []uint8{b}
	t.nodes[u].childID = []NodeID{old}
	t.nodes[old].parent = u
	t.root = u
}

// buildRange builds the compressed subtree over sorted code range [lo, hi).
func (t *Tree) buildRange(lo, hi int, parent NodeID) NodeID {
	if hi-lo == 1 {
		return t.newNode(t.pointCell(t.codes[lo]), parent, int32(lo))
	}
	// The cell of this subtree is the longest common aligned prefix of the
	// first and last codes (sorted order makes those the extremes).
	cell := t.lcaCell(t.codes[lo], t.codes[hi-1])
	id := t.newNode(cell, parent, -1)
	// Partition [lo, hi) by the d bits below the cell prefix.
	shift := t.ck - cell.PLen - t.d
	start := lo
	for start < hi {
		b := uint8((t.codes[start] >> shift) & (1<<t.d - 1))
		end := start + 1
		for end < hi && uint8((t.codes[end]>>shift)&(1<<t.d-1)) == b {
			end++
		}
		child := t.buildRange(start, end, id)
		t.nodes[id].childBit = append(t.nodes[id].childBit, b)
		t.nodes[id].childID = append(t.nodes[id].childID, child)
		start = end
	}
	return id
}

func (t *Tree) newNode(cell Cell, parent NodeID, point int32) NodeID {
	n := node{cell: cell, parent: parent, point: point}
	var id NodeID
	if len(t.free) > 0 {
		id = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[id] = n
	} else {
		t.nodes = append(t.nodes, n)
		id = NodeID(len(t.nodes) - 1)
	}
	t.index[cell] = id
	return id
}

// killNode marks a node dead and releases its slot and index entry.
func (t *Tree) killNode(id NodeID) {
	delete(t.index, t.nodes[id].cell)
	t.nodes[id].dead = true
	t.free = append(t.free, id)
}

// NodeByCell returns the live node whose cell is exactly c, if any. When
// T is a subset of S, every node cell of D(T) is also a node cell of D(S)
// (both are least common ancestor cells of the same point set), which is
// what skip-web anchors rely on.
func (t *Tree) NodeByCell(c Cell) (NodeID, bool) {
	id, ok := t.index[c]
	return id, ok
}

// StepToward returns the child of id whose cell contains code, or NoNode
// if the walk terminates at id. It is the single-hop descent primitive
// used by distributed routing, where each step may cross hosts.
func (t *Tree) StepToward(id NodeID, code uint64) NodeID {
	return t.childContaining(id, code)
}

// Dim returns the dimension d.
func (t *Tree) Dim() int { return t.d }

// CoordBits returns K, the number of bits per coordinate.
func (t *Tree) CoordBits() int { return t.k }

// Root returns the root node, or NoNode for an empty tree.
func (t *Tree) Root() NodeID { return t.root }

// Len returns the number of points stored.
func (t *Tree) Len() int {
	n := 0
	for i := range t.nodes {
		if !t.nodes[i].dead && t.nodes[i].point >= 0 {
			n++
		}
	}
	return n
}

// NumNodes returns the number of live nodes.
func (t *Tree) NumNodes() int {
	n := 0
	for i := range t.nodes {
		if !t.nodes[i].dead {
			n++
		}
	}
	return n
}

// Nodes returns the IDs of all live nodes.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, 0, len(t.nodes))
	t.VisitNodes(func(id NodeID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// VisitNodes calls visit for every live node ID (in slot order) until
// visit returns false. It performs no allocation.
func (t *Tree) VisitNodes(visit func(NodeID) bool) {
	for i := range t.nodes {
		if !t.nodes[i].dead && !visit(NodeID(i)) {
			return
		}
	}
}

// Code returns the Morton code of p: coordinate bits interleaved from most
// significant to least, dimension 0 first.
func (t *Tree) Code(p Point) (uint64, error) {
	if len(p) != t.d {
		return 0, fmt.Errorf("point dimension %d, tree dimension %d", len(p), t.d)
	}
	var code uint64
	for b := t.k - 1; b >= 0; b-- {
		for i := 0; i < t.d; i++ {
			if p[i] >= 1<<t.k {
				return 0, fmt.Errorf("coordinate %d out of range [0, 2^%d)", p[i], t.k)
			}
			code = code<<1 | uint64(p[i]>>b&1)
		}
	}
	return code, nil
}

// pointCell is the full-precision cell of a single point.
func (t *Tree) pointCell(code uint64) Cell {
	return Cell{Prefix: code, PLen: t.ck}
}

// lcaCell returns the smallest dyadic cell containing both codes.
func (t *Tree) lcaCell(a, b uint64) Cell {
	if a == b {
		return Cell{Prefix: a, PLen: t.ck}
	}
	// Align codes at bit 63 so LeadingZeros counts common code bits.
	cp := bits.LeadingZeros64((a ^ b) << (64 - t.ck))
	if cp > t.ck {
		cp = t.ck
	}
	al := cp / t.d * t.d // cells exist only at depths that are multiples of d
	return Cell{Prefix: a >> (t.ck - al), PLen: al}
}

// CellOf returns the cell of node id.
func (t *Tree) CellOf(id NodeID) Cell { return t.nodes[id].cell }

// Parent returns the parent of id, or NoNode for the root.
func (t *Tree) Parent(id NodeID) NodeID { return t.nodes[id].parent }

// IsLeaf reports whether id is a leaf (stores a point).
func (t *Tree) IsLeaf(id NodeID) bool { return t.nodes[id].point >= 0 }

// PointAt returns the point stored at leaf id.
func (t *Tree) PointAt(id NodeID) Point { return t.pts[t.nodes[id].point] }

// Children returns the child node IDs of id.
func (t *Tree) Children(id NodeID) []NodeID {
	return append([]NodeID(nil), t.nodes[id].childID...)
}

// CellContainsCode reports whether cell contains the given point code.
func (t *Tree) CellContainsCode(c Cell, code uint64) bool {
	return code>>(t.ck-c.PLen) == c.Prefix || c.PLen == 0
}

// CellContainsCell reports whether outer contains inner (dyadic cells are
// nested or disjoint, so this plus the symmetric test decides intersection).
func (t *Tree) CellContainsCell(outer, inner Cell) bool {
	if outer.PLen > inner.PLen {
		return false
	}
	if outer.PLen == 0 {
		return true
	}
	return inner.Prefix>>(inner.PLen-outer.PLen) == outer.Prefix
}

// CellsIntersect reports whether two dyadic cells intersect.
func (t *Tree) CellsIntersect(a, b Cell) bool {
	return t.CellContainsCell(a, b) || t.CellContainsCell(b, a)
}

// Locate returns the deepest node whose cell contains the point code, or
// NoNode for an empty tree. The second result is the number of nodes
// stepped through (the walk length, used for message accounting).
func (t *Tree) Locate(code uint64) (NodeID, int) {
	return t.LocateFrom(t.root, code)
}

// LocateFrom walks down from start (whose cell must contain code) to the
// deepest node containing code. It returns the terminal node and the
// number of child steps taken.
func (t *Tree) LocateFrom(start NodeID, code uint64) (NodeID, int) {
	if start == NoNode {
		return NoNode, 0
	}
	cur := start
	steps := 0
	for {
		next := t.childContaining(cur, code)
		if next == NoNode {
			return cur, steps
		}
		cur = next
		steps++
	}
}

// childContaining returns the child of id whose cell contains code, or
// NoNode if no child cell contains it.
func (t *Tree) childContaining(id NodeID, code uint64) NodeID {
	n := &t.nodes[id]
	if n.point >= 0 || n.cell.PLen >= t.ck {
		return NoNode
	}
	shift := t.ck - n.cell.PLen - t.d
	b := uint8((code >> shift) & (1<<t.d - 1))
	for i, cb := range n.childBit {
		if cb == b {
			c := n.childID[i]
			if t.CellContainsCode(t.nodes[c].cell, code) {
				return c
			}
			return NoNode
		}
	}
	return NoNode
}

// LocateCell returns the deepest node whose cell contains the given cell.
// It is the anchor computation used by skip-web hyperlinks: for a cell of
// D(T), it finds where the search continues in D(S).
func (t *Tree) LocateCell(c Cell) NodeID {
	if t.root == NoNode {
		return NoNode
	}
	// If even the root cell does not contain c, the root is still the best
	// anchor: a search for anything inside c resumes from the top.
	cur := t.root
	for {
		n := &t.nodes[cur]
		if n.point >= 0 {
			return cur
		}
		next := NoNode
		for _, cid := range n.childID {
			if t.CellContainsCell(t.nodes[cid].cell, c) {
				next = cid
				break
			}
		}
		if next == NoNode {
			return cur
		}
		cur = next
	}
}

// Conflicts returns the nodes of t whose cells intersect cell c: the
// conflict list C(c, S) of Lemma 3. For dyadic cells these are exactly the
// ancestors-or-equal of c plus the subtree of nodes contained in c.
func (t *Tree) Conflicts(c Cell) []NodeID {
	var out []NodeID
	if t.root == NoNode {
		return out
	}
	cur := t.root
	for cur != NoNode {
		n := &t.nodes[cur]
		switch {
		case t.CellContainsCell(n.cell, c):
			// Ancestor-or-equal: conflict, keep descending toward c.
			out = append(out, cur)
			if n.cell.PLen == c.PLen && n.cell.Prefix == c.Prefix {
				// Equal cell: its strict descendants are inside c too.
				for _, cid := range n.childID {
					out = t.collectSubtree(cid, out)
				}
				return out
			}
			next := NoNode
			for _, cid := range n.childID {
				if t.CellsIntersect(t.nodes[cid].cell, c) {
					next = cid
					break
				}
			}
			cur = next
		case t.CellContainsCell(c, n.cell):
			// Contained in c: the whole subtree conflicts.
			out = t.collectSubtree(cur, out)
			return out
		default:
			return out
		}
	}
	return out
}

func (t *Tree) collectSubtree(id NodeID, out []NodeID) []NodeID {
	out = append(out, id)
	for _, c := range t.nodes[id].childID {
		out = t.collectSubtree(c, out)
	}
	return out
}

// InsertResult describes the O(1) structural change made by Insert.
type InsertResult struct {
	Leaf    NodeID   // the new leaf holding the point
	Created []NodeID // all nodes created, including Leaf
	Parent  NodeID   // the pre-existing node the insertion hung off, or NoNode
}

// Insert adds point p, returning the affected nodes. It returns an error
// for dimension mismatches, out-of-range coordinates, or duplicates.
func (t *Tree) Insert(p Point) (InsertResult, error) {
	code, err := t.Code(p)
	if err != nil {
		return InsertResult{}, err
	}
	pidx := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.codes = append(t.codes, code)

	if t.root == NoNode {
		leaf := t.newNode(t.pointCell(code), NoNode, pidx)
		t.root = leaf
		t.ensureUniversalRoot()
		return InsertResult{Leaf: leaf, Created: []NodeID{leaf, t.root}, Parent: NoNode}, nil
	}

	// Walk to the deepest node whose cell contains the new code; track the
	// child edge that diverges.
	cur := t.root
	for {
		n := &t.nodes[cur]
		if !t.CellContainsCode(n.cell, code) {
			panic("quadtree: cell mismatch during insert (universal root missing?)")
		}
		if n.point >= 0 {
			if t.codes[n.point] == code {
				t.pts = t.pts[:pidx]
				t.codes = t.codes[:pidx]
				return InsertResult{}, fmt.Errorf("quadtree: duplicate point %v", p)
			}
			return t.splitAbove(cur, code, pidx)
		}
		shift := t.ck - n.cell.PLen - t.d
		b := uint8((code >> shift) & (1<<t.d - 1))
		childIdx := -1
		for i, cb := range n.childBit {
			if cb == b {
				childIdx = i
				break
			}
		}
		if childIdx == -1 {
			// New branch directly under cur.
			leaf := t.newNode(t.pointCell(code), cur, pidx)
			n = &t.nodes[cur] // newNode may have grown the slice
			n.childBit = append(n.childBit, b)
			n.childID = append(n.childID, leaf)
			return InsertResult{Leaf: leaf, Created: []NodeID{leaf}, Parent: cur}, nil
		}
		child := n.childID[childIdx]
		if !t.CellContainsCode(t.nodes[child].cell, code) {
			// The point diverges inside the compressed edge to child:
			// interpose a new node at the LCA cell.
			return t.splitEdge(cur, childIdx, code, pidx)
		}
		cur = child
	}
}

// splitAbove interposes a new internal node above node id at the LCA of
// id's cell and the new code, with id and a new leaf as children.
func (t *Tree) splitAbove(id NodeID, code uint64, pidx int32) (InsertResult, error) {
	oldCell := t.nodes[id].cell
	lca := t.lcaCellOfCells(oldCell, t.pointCell(code))
	parent := t.nodes[id].parent
	mid := t.newNode(lca, parent, -1)
	leaf := t.newNode(t.pointCell(code), mid, pidx)

	shift := t.ck - lca.PLen - t.d
	oldBit := uint8((oldCell.Prefix >> (oldCell.PLen - lca.PLen - t.d)) & (1<<t.d - 1))
	newBit := uint8((code >> shift) & (1<<t.d - 1))
	t.nodes[mid].childBit = []uint8{oldBit, newBit}
	t.nodes[mid].childID = []NodeID{id, leaf}
	t.nodes[id].parent = mid

	if parent == NoNode {
		t.root = mid
	} else {
		pn := &t.nodes[parent]
		for i, cid := range pn.childID {
			if cid == id {
				pn.childID[i] = mid
				break
			}
		}
	}
	return InsertResult{Leaf: leaf, Created: []NodeID{leaf, mid}, Parent: parent}, nil
}

// splitEdge interposes a new node on the compressed edge from parent's
// childIdx-th child.
func (t *Tree) splitEdge(parent NodeID, childIdx int, code uint64, pidx int32) (InsertResult, error) {
	child := t.nodes[parent].childID[childIdx]
	childCell := t.nodes[child].cell
	lca := t.lcaCellOfCells(childCell, t.pointCell(code))
	mid := t.newNode(lca, parent, -1)
	leaf := t.newNode(t.pointCell(code), mid, pidx)

	oldBit := uint8((childCell.Prefix >> (childCell.PLen - lca.PLen - t.d)) & (1<<t.d - 1))
	newBit := uint8((code >> (t.ck - lca.PLen - t.d)) & (1<<t.d - 1))
	t.nodes[mid].childBit = []uint8{oldBit, newBit}
	t.nodes[mid].childID = []NodeID{child, leaf}
	t.nodes[child].parent = mid
	t.nodes[parent].childID[childIdx] = mid
	return InsertResult{Leaf: leaf, Created: []NodeID{leaf, mid}, Parent: parent}, nil
}

// lcaCellOfCells returns the smallest dyadic cell containing both cells.
func (t *Tree) lcaCellOfCells(a, b Cell) Cell {
	// Expand both prefixes to full codes (low bits zero) and take the LCA,
	// capped at the shorter of the two prefix lengths.
	ac := a.Prefix << (t.ck - a.PLen)
	bc := b.Prefix << (t.ck - b.PLen)
	lca := t.lcaCell(ac, bc)
	minLen := a.PLen
	if b.PLen < minLen {
		minLen = b.PLen
	}
	if lca.PLen > minLen {
		lca = Cell{Prefix: ac >> (t.ck - minLen), PLen: minLen}
	}
	return lca
}

// DeleteResult describes the O(1) structural change made by Delete.
type DeleteResult struct {
	// Removed lists the destroyed nodes: the point's leaf and possibly a
	// compressed-away internal node.
	Removed []NodeID
	// Survivor is the lowest live ancestor covering the removed region,
	// or NoNode if the tree became empty. References anchored at removed
	// nodes should be redirected here.
	Survivor NodeID
}

// Delete removes point p. It returns an error if the point is absent.
func (t *Tree) Delete(p Point) (DeleteResult, error) {
	code, err := t.Code(p)
	if err != nil {
		return DeleteResult{}, err
	}
	id, _ := t.Locate(code)
	if id == NoNode || t.nodes[id].point < 0 || t.codes[t.nodes[id].point] != code {
		return DeleteResult{}, fmt.Errorf("quadtree: point %v not found", p)
	}
	res := DeleteResult{Removed: []NodeID{id}, Survivor: NoNode}
	parent := t.nodes[id].parent
	t.killNode(id)
	if parent == NoNode {
		t.root = NoNode
		return res, nil
	}
	pn := &t.nodes[parent]
	for i, cid := range pn.childID {
		if cid == id {
			pn.childBit = append(pn.childBit[:i], pn.childBit[i+1:]...)
			pn.childID = append(pn.childID[:i], pn.childID[i+1:]...)
			break
		}
	}
	if pn.cell.PLen == 0 {
		// The universal root may keep a single child; drop it only when it
		// becomes empty.
		if len(pn.childID) == 0 {
			t.killNode(parent)
			t.root = NoNode
			res.Removed = append(res.Removed, parent)
			return res, nil
		}
		res.Survivor = parent
		return res, nil
	}
	// Compress the parent away if it now has a single child.
	if len(pn.childID) == 1 && pn.point < 0 {
		only := pn.childID[0]
		gp := pn.parent
		t.nodes[only].parent = gp
		if gp == NoNode {
			t.root = only
		} else {
			gpn := &t.nodes[gp]
			for i, cid := range gpn.childID {
				if cid == parent {
					gpn.childID[i] = only
					break
				}
			}
		}
		t.killNode(parent)
		res.Removed = append(res.Removed, parent)
		res.Survivor = gp
		return res, nil
	}
	res.Survivor = parent
	return res, nil
}

// Depth returns the maximum node depth (root = 0). Compressed quadtrees
// over clustered inputs can reach depth Θ(n) — see experiment E6.
func (t *Tree) Depth() int {
	if t.root == NoNode {
		return 0
	}
	var rec func(id NodeID) int
	rec = func(id NodeID) int {
		max := 0
		for _, c := range t.nodes[id].childID {
			if d := rec(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return rec(t.root) - 1
}

// CheckInvariants verifies the compressed quadtree structure: child cells
// strictly inside parent cells, no single-child internal nodes, prefix
// lengths aligned to d, every point locatable. It returns the first
// violation found.
func (t *Tree) CheckInvariants() error {
	if t.root == NoNode {
		return nil
	}
	if t.nodes[t.root].cell.PLen != 0 {
		return fmt.Errorf("quadtree: root cell PLen %d, want universal root", t.nodes[t.root].cell.PLen)
	}
	var rec func(id NodeID) error
	rec = func(id NodeID) error {
		n := &t.nodes[id]
		if n.dead {
			return fmt.Errorf("quadtree: dead node %d reachable", id)
		}
		if n.cell.PLen%t.d != 0 {
			return fmt.Errorf("quadtree: node %d prefix length %d not aligned to d=%d", id, n.cell.PLen, t.d)
		}
		if n.point >= 0 {
			if len(n.childID) != 0 {
				return fmt.Errorf("quadtree: leaf %d has children", id)
			}
			if n.cell.PLen != t.ck {
				return fmt.Errorf("quadtree: leaf %d cell not full precision", id)
			}
			return nil
		}
		if len(n.childID) < 2 && !(id == t.root && n.cell.PLen == 0 && len(n.childID) == 1) {
			return fmt.Errorf("quadtree: internal node %d has %d children (compression violated)", id, len(n.childID))
		}
		seen := map[uint8]bool{}
		for i, cid := range n.childID {
			cb := n.childBit[i]
			if seen[cb] {
				return fmt.Errorf("quadtree: node %d duplicate child bits %d", id, cb)
			}
			seen[cb] = true
			cn := &t.nodes[cid]
			if cn.parent != id {
				return fmt.Errorf("quadtree: node %d child %d has parent %d", id, cid, cn.parent)
			}
			if !t.CellContainsCell(n.cell, cn.cell) || cn.cell.PLen <= n.cell.PLen {
				return fmt.Errorf("quadtree: node %d child %d cell not strictly inside", id, cid)
			}
			// The child's next d bits under this cell must equal childBit.
			gotBits := uint8((cn.cell.Prefix >> (cn.cell.PLen - n.cell.PLen - t.d)) & (1<<t.d - 1))
			if gotBits != cb {
				return fmt.Errorf("quadtree: node %d child %d branch bits %d != %d", id, cid, gotBits, cb)
			}
			if err := rec(cid); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	// Every live point must locate to its own leaf.
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.dead || n.point < 0 {
			continue
		}
		id, _ := t.Locate(t.codes[n.point])
		if id != NodeID(i) {
			return fmt.Errorf("quadtree: point %v locates to node %d, stored at %d", t.pts[n.point], id, i)
		}
	}
	return nil
}

// Render draws the tree sideways (root at left) for small trees, in the
// style of the paper's Figure 3(b)/(d).
func (t *Tree) Render() string {
	var b strings.Builder
	if t.root == NoNode {
		return "(empty)\n"
	}
	var rec func(id NodeID, depth int)
	rec = func(id NodeID, depth int) {
		n := &t.nodes[id]
		fmt.Fprintf(&b, "%s", strings.Repeat("  ", depth))
		if n.point >= 0 {
			fmt.Fprintf(&b, "leaf %v\n", t.pts[n.point])
			return
		}
		fmt.Fprintf(&b, "cell prefix=%b plen=%d\n", n.cell.Prefix, n.cell.PLen)
		for _, c := range n.childID {
			rec(c, depth+1)
		}
	}
	rec(t.root, 0)
	return b.String()
}
