package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// BlockedWeb is the improved one-dimensional skip-web of Section 2.4.1:
// the level hierarchy of a skip-web over sorted lists, with the
// stratified blocking strategy that lowers query cost from O(log n) to
// O(log n / log M) messages when hosts can store M units.
//
// Levels are grouped into strata of L = ceil(log2 M) consecutive depths.
// Depths divisible by L are "basic": a basic structure's ranges are cut
// into blocks of contiguous key intervals, one block per host, and every
// non-basic structure in the stratum above it is co-located with the
// blocks its ranges overlap. A query descending the hierarchy therefore
// pays messages only when it crosses from one stratum into the next —
// O(log n / log M) expected messages, which is O(log n / log log n) at
// M = Θ(log n) (Theorem 2).
type BlockedWeb struct {
	net     Fabric
	seed    uint64
	m       int // host memory parameter M
	strat   int // stratum height L = max(1, ceil(log2 M))
	blockSz int // ranges per block B = max(1, M/4)
	repl    int // replication factor k (1 = unreplicated, seed-compatible)
	leafMax int
	merge   int
	maxDep  int
	rng     *xrand.Rand
	root    *bnode
	leaves  []*bnode
	hostSeq int
	n       int

	// seenScratch is the per-update set of block hosts already charged,
	// reused across operations (updates are single-writer). Distinct hosts
	// per update are O(log n / log M), so a linear scan beats a map and
	// allocates nothing.
	seenScratch []sim.HostID
	// pathScratch is Delete's bit-path stack, reused across operations.
	pathScratch []*bnode
	// memberScratch is the stratum enumeration buffer of splitBlock and
	// retargetBlocks, reused across operations.
	memberScratch []*bnode
	// keysScratch and halfScratch are splitLeaf's key snapshot and
	// bit-partition buffers, reused across operations.
	keysScratch []uint64
	halfScratch [2][]uint64

	// Set-tree nodes and their levels are recycled: mergeSubtree releases
	// into the free lists, splitLeaf and buildSubtree draw from them, and
	// fresh objects come from bump-allocated slabs so a split charges at
	// most a fraction of one allocation for its two new structures. Slabs
	// are never shrunk or moved (pointers into them stay valid); pooled
	// levels keep their slot and index capacity across reuse.
	nodeFree []*bnode
	nodeSlab []bnode
	lvlFree  []*ListLevel
	lvlSlab  []ListLevel

	// descMemo caches the uncharged hyperlink resolutions (child key ->
	// parent range) of the latest descent per depth, used by sorted-run
	// batch inserts to share descent prefixes. Entries are validated
	// against the live structure before use, so staleness is harmless;
	// charged visits are always recomputed, keeping accounting identical.
	descMemo   []descEntry
	memoActive bool

	// missed counts the write-through messages suppressed because a block
	// replica's host was crashed on a durable fabric. Keys record the
	// block's start key rather than its index: the directory can split
	// while the host is down, and a start key still locates the covering
	// block at RestartHost time. Lazily allocated; nil until a durable
	// crash overlaps an update.
	missed map[blockMiss]int
}

// blockMiss keys one stale block replica: the block of basic node bn
// that covered key start when the update was suppressed, replicated at
// crashed host h.
type blockMiss struct {
	bn    *bnode
	start uint64
	h     sim.HostID
}

// descEntry is one depth's memoized hyperlink resolution.
type descEntry struct {
	node *bnode
	key  uint64
	pr   RangeID
}

// resetSeen clears the seen-host scratch set at the start of an update.
func (w *BlockedWeb) resetSeen() { w.seenScratch = w.seenScratch[:0] }

// chargeOnce sends one message to h unless this update already charged h.
func (w *BlockedWeb) chargeOnce(h sim.HostID, op *sim.Op) {
	for _, s := range w.seenScratch {
		if s == h {
			return
		}
	}
	op.Send(h)
	w.seenScratch = append(w.seenScratch, h)
}

// bnode is one set-tree node: a sorted-list level plus, when basic, its
// block directory.
type bnode struct {
	lvl      *ListLevel
	parent   *bnode
	kids     [2]*bnode
	base     *bnode // the basic node this node's ranges are co-located with
	depth    int
	count    int
	inLeaves bool
	leafIdx  int // position in w.leaves while inLeaves (O(1) removal)

	// Block directory (basic nodes only). Block 0 covers keys below
	// blockStarts[1]; block i covers [blockStarts[i], blockStarts[i+1]).
	blockStarts []uint64
	blockHosts  []sim.HostID
	blockSizes  []int
	// blockMirrors[i] holds block i's k-1 secondary replica hosts (the
	// primary lives in blockHosts). nil on unreplicated webs, so the
	// k = 1 paths never touch it.
	blockMirrors [][]sim.HostID

	// inline* are the initial directory storage: fresh basic leaves hold
	// a handful of blocks, so their directories live inside the node
	// (which itself comes from a slab) and a leaf split allocates
	// nothing for them. Larger directories spill to the heap via append.
	inlineStarts [4]uint64
	inlineHosts  [4]sim.HostID
	inlineSizes  [4]int
}

// BlockedConfig tunes a BlockedWeb.
type BlockedConfig struct {
	// Seed drives membership bits and host assignment.
	Seed uint64
	// M is the per-host memory parameter; block size and stratum height
	// derive from it. Defaults to ceil(log2 n)+1.
	M int
	// Replicas is the replication factor k: every block (and its
	// co-located stratum copies) is mirrored on k distinct live hosts,
	// queries fail over to the next live replica, and updates write
	// through to all of them. 0 or 1 means unreplicated — the
	// seed-compatible default.
	Replicas int
	// LeafMax / MergeMin / MaxDepth as in Config.
	LeafMax  int
	MergeMin int
	MaxDepth int
}

// NewBlockedWeb builds the blocked skip-web over keys via the O(n)-per-
// level bulk-load path: the keys are sorted (and checked distinct) once,
// every level partition preserves that order, and each level's list is
// built by the linear NewListLevelSorted splice instead of a re-sort.
// Randomness (membership bits, block host assignment) is consumed in
// exactly the order of the incremental path, so construction remains
// seed-compatible with pre-bulk builds; construction charges storage
// only, never messages (an update's messages are charged to the update).
func NewBlockedWeb(net Fabric, keys []uint64, cfg BlockedConfig) (*BlockedWeb, error) {
	if cfg.M <= 0 {
		cfg.M = int(math.Ceil(math.Log2(float64(len(keys)+2)))) + 1
	}
	if cfg.LeafMax <= 0 {
		cfg.LeafMax = 4
	}
	if cfg.MergeMin <= 0 {
		cfg.MergeMin = 2
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 60
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	strat := int(math.Ceil(math.Log2(float64(cfg.M))))
	if strat < 1 {
		strat = 1
	}
	blockSz := cfg.M / 4
	if blockSz < 1 {
		blockSz = 1
	}
	w := &BlockedWeb{
		net:     net,
		seed:    cfg.Seed,
		m:       cfg.M,
		strat:   strat,
		blockSz: blockSz,
		repl:    cfg.Replicas,
		leafMax: cfg.LeafMax,
		merge:   cfg.MergeMin,
		maxDep:  cfg.MaxDepth,
		rng:     xrand.New(cfg.Seed ^ 0xb10c),
	}
	sorted := append([]uint64(nil), keys...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("core: duplicate key %d", sorted[i])
		}
	}
	w.root = w.buildSubtree(sorted, 0, nil)
	w.n = len(keys)
	return w, nil
}

// newNode returns a zeroed set-tree node from the free list or slab.
func (w *BlockedWeb) newNode() *bnode {
	if k := len(w.nodeFree); k > 0 {
		n := w.nodeFree[k-1]
		w.nodeFree = w.nodeFree[:k-1]
		*n = bnode{
			blockStarts:  n.blockStarts[:0],
			blockHosts:   n.blockHosts[:0],
			blockSizes:   n.blockSizes[:0],
			blockMirrors: n.blockMirrors[:0],
		}
		return n
	}
	if len(w.nodeSlab) == cap(w.nodeSlab) {
		w.nodeSlab = make([]bnode, 0, 64)
	}
	w.nodeSlab = append(w.nodeSlab, bnode{})
	n := &w.nodeSlab[len(w.nodeSlab)-1]
	n.blockStarts = n.inlineStarts[:0]
	n.blockHosts = n.inlineHosts[:0]
	n.blockSizes = n.inlineSizes[:0]
	return n
}

// newLevel returns a list level over the strictly ascending keys, drawn
// from the free list or slab; pooled levels keep their slot and index
// capacity, so recycling a released leaf level allocates nothing.
func (w *BlockedWeb) newLevel(sorted []uint64) *ListLevel {
	if k := len(w.lvlFree); k > 0 {
		l := w.lvlFree[k-1]
		w.lvlFree = w.lvlFree[:k-1]
		l.reset(sorted)
		return l
	}
	if len(w.lvlSlab) == cap(w.lvlSlab) {
		w.lvlSlab = make([]ListLevel, 0, 64)
	}
	w.lvlSlab = append(w.lvlSlab, ListLevel{})
	l := &w.lvlSlab[len(w.lvlSlab)-1]
	l.reset(sorted)
	return l
}

// releaseNode returns a merged-away node and its level to the pools.
// Miss records keyed by the node are purged first: the pool recycles
// bnode pointers, so a stale key could otherwise alias a future node.
func (w *BlockedWeb) releaseNode(n *bnode) {
	for k := range w.missed {
		if k.bn == n {
			delete(w.missed, k)
		}
	}
	w.lvlFree = append(w.lvlFree, n.lvl)
	n.lvl, n.parent, n.base = nil, nil, nil
	n.kids[0], n.kids[1] = nil, nil
	w.nodeFree = append(w.nodeFree, n)
}

// Len returns the number of keys stored.
func (w *BlockedWeb) Len() int { return w.n }

// M returns the memory parameter.
func (w *BlockedWeb) M() int { return w.m }

// StratumHeight returns L.
func (w *BlockedWeb) StratumHeight() int { return w.strat }

// Ground returns the level-0 list D(S).
func (w *BlockedWeb) Ground() *ListLevel { return w.root.lvl }

func (w *BlockedWeb) mix(k uint64) uint64 {
	z := k ^ w.seed ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *BlockedWeb) bitAt(k uint64, depth int) int {
	return int(w.mix(k) >> uint(depth) & 1)
}

// nextHost draws the next live host round-robin. With no churn the live
// set is 0..H-1, so the sequence matches the pre-churn hostSeq % Hosts()
// and block placement stays seed-compatible.
func (w *BlockedWeb) nextHost() sim.HostID {
	h := w.net.LiveAt(w.hostSeq % w.net.LiveHosts())
	w.hostSeq++
	return h
}

// replicaTarget returns how many distinct live hosts each block should
// be mirrored on right now: the configured factor, capped by the live
// host count.
func (w *BlockedWeb) replicaTarget() int {
	k := w.repl
	if live := w.net.LiveHosts(); k > live {
		k = live
	}
	return k
}

// nextHostExcluding draws the next round-robin live host not in taken.
// Round-robin over the live set reaches a non-taken host within
// LiveHosts draws whenever one exists; callers guarantee it does. At
// k = 1 it is never called with a non-empty taken set, so the hostSeq
// consumption matches nextHost exactly.
func (w *BlockedWeb) nextHostExcluding(taken []sim.HostID) sim.HostID {
	for {
		h := w.nextHost()
		dup := false
		for _, t := range taken {
			if t == h {
				dup = true
				break
			}
		}
		if !dup {
			return h
		}
	}
}

// blockReplicaCount returns how many replicas block bi of bn has. The
// blockMirrors directory is empty on unreplicated webs and parallel to
// blockHosts otherwise.
func (w *BlockedWeb) blockReplicaCount(bn *bnode, bi int) int {
	if len(bn.blockMirrors) == 0 {
		return 1
	}
	return 1 + len(bn.blockMirrors[bi])
}

// blockReplicaAt returns replica slot `slot` of block bi (slot 0 is the
// primary in blockHosts, slot i > 0 is blockMirrors[bi][i-1]).
func (w *BlockedWeb) blockReplicaAt(bn *bnode, bi, slot int) sim.HostID {
	if slot == 0 {
		return bn.blockHosts[bi]
	}
	return bn.blockMirrors[bi][slot-1]
}

// setBlockReplicaAt rewrites replica slot `slot` of block bi.
func (w *BlockedWeb) setBlockReplicaAt(bn *bnode, bi, slot int, h sim.HostID) {
	if slot == 0 {
		bn.blockHosts[bi] = h
		return
	}
	bn.blockMirrors[bi][slot-1] = h
}

// blockHasReplica reports whether h already serves a replica of block bi.
func (w *BlockedWeb) blockHasReplica(bn *bnode, bi int, h sim.HostID) bool {
	for slot := 0; slot < w.blockReplicaCount(bn, bi); slot++ {
		if w.blockReplicaAt(bn, bi, slot) == h {
			return true
		}
	}
	return false
}

// addBlockStorage charges delta storage units at every replica of block
// bi of basic node bn — every replica holds a full copy of the block's
// ranges, hyperlinks, and boundary copies. At k = 1 it is exactly the
// single AddStorage the unreplicated path charged.
func (w *BlockedWeb) addBlockStorage(bn *bnode, bi, delta int) {
	w.net.AddStorage(bn.blockHosts[bi], delta)
	if len(bn.blockMirrors) > 0 {
		for _, m := range bn.blockMirrors[bi] {
			w.net.AddStorage(m, delta)
		}
	}
}

// chargeBlockOnce charges one message to each replica of block bi that
// this update has not yet charged — the write-through counterpart of
// chargeOnce. The replicas are contacted in parallel, so the fan-out
// window makes the operation's latency pay the slowest replica link
// rather than the sum; counters are unchanged by the window.
func (w *BlockedWeb) chargeBlockOnce(bn *bnode, bi int, op *sim.Op) {
	op.FanoutBegin()
	w.sendBlockOne(bn, bi, bn.blockHosts[bi], true, op)
	if len(bn.blockMirrors) > 0 {
		for _, m := range bn.blockMirrors[bi] {
			w.sendBlockOne(bn, bi, m, true, op)
		}
	}
	op.FanoutEnd()
}

// sendBlockOne charges one write-through message to replica host h of
// block bi — unless h is crashed on a durable fabric, in which case the
// message is suppressed and the block is recorded as diverged at h; the
// merkle reconcile re-ships it at RestartHost time. `once` applies the
// per-update host dedup of chargeOnce (the suppressed branch skips the
// dedup on purpose: one physical message can carry several blocks'
// updates, but each touched block diverges individually). On a
// non-durable fabric the send is unconditional, bit-identical to the
// pre-durability behavior.
func (w *BlockedWeb) sendBlockOne(bn *bnode, bi int, h sim.HostID, once bool, op *sim.Op) {
	if w.net.Durable() && w.net.Crashed(h) {
		if w.missed == nil {
			w.missed = make(map[blockMiss]int)
		}
		w.missed[blockMiss{bn, bn.blockStarts[bi], h}]++
		return
	}
	if once {
		w.chargeOnce(h, op)
		return
	}
	op.Send(h)
}

// liveBlockHost resolves block bi of bn for routing: the primary when
// alive, else the first live mirror (the failed-host set is consulted
// for free, as a failure detector would). When every replica is down
// the block is unreachable and the typed HostDownError is returned.
func (w *BlockedWeb) liveBlockHost(bn *bnode, bi int) (sim.HostID, error) {
	h := bn.blockHosts[bi]
	if w.net.Alive(h) {
		return h, nil
	}
	if len(bn.blockMirrors) > 0 {
		for _, m := range bn.blockMirrors[bi] {
			if w.net.Alive(m) {
				return m, nil
			}
		}
	}
	return sim.None, &sim.HostDownError{Host: h}
}

// sendBlock charges one message to every replica of block bi of bn —
// write-through to all copies, fanned out in parallel (latency pays the
// slowest replica link; counters are unchanged by the window).
func (w *BlockedWeb) sendBlock(bn *bnode, bi int, op *sim.Op) {
	op.FanoutBegin()
	w.sendBlockOne(bn, bi, bn.blockHosts[bi], false, op)
	if len(bn.blockMirrors) > 0 {
		for _, m := range bn.blockMirrors[bi] {
			w.sendBlockOne(bn, bi, m, false, op)
		}
	}
	op.FanoutEnd()
}

// visitBlock moves op to the live replica serving block bi of bn,
// failing fast when none survives.
func (w *BlockedWeb) visitBlock(bn *bnode, bi int, op *sim.Op) error {
	h, err := w.liveBlockHost(bn, bi)
	if err != nil {
		return err
	}
	op.Visit(h)
	return nil
}

// drawBlockMirrors appends k-1 fresh distinct mirror hosts for a block
// whose primary is already drawn.
func (w *BlockedWeb) drawBlockMirrors(primary sim.HostID) []sim.HostID {
	k := w.replicaTarget()
	if k <= 1 {
		return nil
	}
	taken := make([]sim.HostID, 1, k)
	taken[0] = primary
	ms := make([]sim.HostID, 0, k-1)
	for len(ms) < k-1 {
		m := w.nextHostExcluding(taken)
		ms = append(ms, m)
		taken = append(taken, m)
	}
	return ms
}

// buildSubtree constructs the set node over keys, which must be strictly
// ascending: the single sort in NewBlockedWeb propagates through every
// bit partition, so each level builds in O(level size).
func (w *BlockedWeb) buildSubtree(keys []uint64, depth int, parent *bnode) *bnode {
	n := w.newNode()
	n.lvl = w.newLevel(keys)
	n.parent, n.depth, n.count = parent, depth, len(keys)
	if depth%w.strat == 0 {
		n.base = n
		w.buildBlocks(n, keys)
	} else {
		n.base = parent.base
	}
	// Storage: one unit per range plus one for its hyperlink, at the
	// range's primary block host; boundary-straddling copies add one.
	// The freshly built level is iterated in key order, so a block
	// cursor charges each range in O(1) amortized.
	w.chargeBuildStorage(n)
	if len(keys) > w.leafMax && depth < w.maxDep {
		var halves [2][]uint64
		for _, k := range keys {
			b := w.bitAt(k, depth)
			halves[b] = append(halves[b], k)
		}
		for b := 0; b < 2; b++ {
			n.kids[b] = w.buildSubtree(halves[b], depth+1, n)
		}
	}
	if n.kids[0] == nil && n.count > 0 {
		w.addLeaf(n)
	}
	return n
}

// buildBlocks cuts a basic node's key sequence (passed in ascending
// order) into blocks of blockSz contiguous ranges, assigning one host
// per block. Directory capacity from a pooled node is reused.
func (w *BlockedWeb) buildBlocks(n *bnode, keys []uint64) {
	n.blockStarts = append(n.blockStarts[:0], 0) // block 0 holds the head region
	n.blockHosts = append(n.blockHosts[:0], w.nextHost())
	n.blockSizes = append(n.blockSizes[:0], 1) // the head sentinel
	if w.repl > 1 {
		n.blockMirrors = append(n.blockMirrors[:0], w.drawBlockMirrors(n.blockHosts[0]))
	}
	for i, k := range keys {
		bi := len(n.blockHosts) - 1
		if n.blockSizes[bi] >= w.blockSz && i > 0 {
			n.blockStarts = append(n.blockStarts, k)
			n.blockHosts = append(n.blockHosts, w.nextHost())
			n.blockSizes = append(n.blockSizes, 0)
			if w.repl > 1 {
				n.blockMirrors = append(n.blockMirrors, w.drawBlockMirrors(n.blockHosts[bi+1]))
			}
			bi++
		}
		n.blockSizes[bi]++
	}
}

// chargeBuildStorage charges the construction storage of every range of
// node n's freshly built level — 2 units (range + hyperlink) on the
// primary block host, plus 1 for each boundary-straddling copy — by a
// single list-order sweep with a block cursor. The per-host sums equal
// a chargeRangeStorage call per range.
func (w *BlockedWeb) chargeBuildStorage(n *bnode) {
	bn := n.base
	bi := 0 // the head sentinel's block
	for r := n.lvl.Head(); r != NoRange; r = n.lvl.Next(r) {
		w.addBlockStorage(bn, bi, 2)
		if next := n.lvl.Next(r); next != NoRange {
			bj := w.blockIndexNear(bn, n.lvl.Key(next), bi)
			if bj != bi {
				w.addBlockStorage(bn, bj, 1)
			}
			bi = bj
		}
	}
}

// blockIndex returns the block of basic node bn covering key q: the last
// block whose start is <= q (block 0 starts at -inf). Manual binary
// search — this sits on every block-host resolution of every routed hop.
func (w *BlockedWeb) blockIndex(bn *bnode, q uint64) int {
	lo, hi := 1, len(bn.blockStarts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bn.blockStarts[mid] <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// blockIndexNear is blockIndex with a cursor: when q lies in block hint
// or an adjacent block — the common case for a walk moving one range at
// a time — the lookup is O(1); anything farther falls back to the binary
// search. Callers must pass a valid block index as hint.
func (w *BlockedWeb) blockIndexNear(bn *bnode, q uint64, hint int) int {
	starts := bn.blockStarts
	i := hint
	if i > 0 && q < starts[i] {
		i--
		if i > 0 && q < starts[i] {
			return w.blockIndex(bn, q)
		}
		return i
	}
	if i+1 < len(starts) && q >= starts[i+1] {
		i++
		if i+1 < len(starts) && q >= starts[i+1] {
			return w.blockIndex(bn, q)
		}
	}
	return i
}

// rangeKey is the key identifying a range's primary block (the head
// sentinel lives in block 0).
func (w *BlockedWeb) rangeKey(n *bnode, r RangeID) uint64 {
	if n.lvl.IsHead(r) {
		return 0
	}
	return n.lvl.Key(r)
}

// chargeRangeStorage adds (or removes, sign -1) the storage for range r
// of node n: range + hyperlink on the primary host, plus a copy when the
// range straddles into the next block. The straddle reuses the primary's
// block index instead of recomputing it.
func (w *BlockedWeb) chargeRangeStorage(n *bnode, r RangeID, sign int) {
	k := w.rangeKey(n, r)
	bn := n.base
	bi := w.blockIndex(bn, k)
	w.addBlockStorage(bn, bi, sign*2)
	if next := n.lvl.Next(r); next != NoRange {
		nk := n.lvl.Key(next)
		if bj := w.blockIndexNear(bn, nk, bi); bj != bi {
			w.addBlockStorage(bn, bj, sign)
		}
	}
}

// straddleCopy charges sign units for the boundary copy induced by the
// adjacent pair (r, next) of node n: the copy of r kept on next's block
// host when the pair spans two blocks. It reads only the pair's keys
// and the block directory, so callers may pass a pair as it existed
// before a splice as well as the current one — that is how the update
// paths keep per-host storage exact (Cluster.Leave asserts a departing
// host drains to exactly zero).
func (w *BlockedWeb) straddleCopy(n *bnode, r, next RangeID, sign int) {
	if next == NoRange {
		return
	}
	k := w.rangeKey(n, r)
	nk := n.lvl.Key(next)
	if bj := w.blockIndex(n.base, nk); bj != w.blockIndex(n.base, k) {
		w.addBlockStorage(n.base, bj, sign)
	}
}

// stratumMembers returns bn's stratum (every node co-located with basic
// node bn's blocks, bn included) in DFS order. The stratum is the
// maximal subtree below bn whose nodes share bn as their base; recursion
// stops at the next stratum's basic nodes. The returned slice aliases
// w.memberScratch (single-writer update path) and is valid until the
// next stratumMembers call.
func (w *BlockedWeb) stratumMembers(bn *bnode) []*bnode {
	out := w.appendStratum(bn, bn, w.memberScratch[:0])
	w.memberScratch = out[:0]
	return out
}

func (w *BlockedWeb) appendStratum(bn, n *bnode, out []*bnode) []*bnode {
	if n == nil || n.base != bn {
		return out
	}
	out = append(out, n)
	out = w.appendStratum(bn, n.kids[0], out)
	return w.appendStratum(bn, n.kids[1], out)
}

func (w *BlockedWeb) addLeaf(n *bnode) {
	if n.inLeaves {
		return
	}
	n.inLeaves = true
	n.leafIdx = len(w.leaves)
	w.leaves = append(w.leaves, n)
}

func (w *BlockedWeb) removeLeaf(n *bnode) {
	if !n.inLeaves {
		return
	}
	n.inLeaves = false
	last := len(w.leaves) - 1
	moved := w.leaves[last]
	w.leaves[n.leafIdx] = moved
	moved.leafIdx = n.leafIdx
	w.leaves = w.leaves[:last]
}

func (w *BlockedWeb) entryLeaf(origin sim.HostID) *bnode {
	if len(w.leaves) == 0 {
		return w.root
	}
	return w.leaves[int(origin)%len(w.leaves)]
}

// Query routes a floor query to the terminal range of D(S), returning
// the floor key (ok=false if q is below every key) and the hop count.
// On a replicated web the descent fails over to live block replicas; a
// block with no live replica aborts the query with a HostDownError
// (matchable via errors.Is against the host-down sentinel).
//
// Query and Range are safe for concurrent use by multiple goroutines as
// long as no update runs concurrently: the descent reads only immutable
// level lists and block directories plus atomic network counters (the
// single-writer/many-reader contract the batch engine enforces).
func (w *BlockedWeb) Query(q uint64, origin sim.HostID) (uint64, bool, int, error) {
	k, ok, c, _, err := w.queryCost(q, origin)
	return k, ok, c.Hops, err
}

// QueryCost is Query reporting the full Cost pair — hop count plus the
// modeled critical-path latency — instead of hops alone. Accounting is
// identical: both run the same descent, charge for charge.
func (w *BlockedWeb) QueryCost(q uint64, origin sim.HostID) (uint64, bool, Cost, error) {
	k, ok, c, _, err := w.queryCost(q, origin)
	return k, ok, c, err
}

// queryCost runs the floor descent and reports the answer, the cost
// pair, and the terminal host the descent ended at — the sender of any
// follow-up hop a caller (BucketWeb) charges on top.
func (w *BlockedWeb) queryCost(q uint64, origin sim.HostID) (uint64, bool, Cost, sim.HostID, error) {
	op := w.net.NewOp(origin)
	defer op.Free()
	r, err := w.queryOp(q, op)
	c := Cost{Hops: op.Hops(), Latency: op.Latency()}
	if err != nil {
		return 0, false, c, op.Current(), err
	}
	g := w.root.lvl
	if g.IsHead(r) {
		return 0, false, c, op.Current(), nil
	}
	return g.Key(r), true, c, op.Current(), nil
}

// queryOp descends the hierarchy under op, returning the level-0
// terminal range.
func (w *BlockedWeb) queryOp(q uint64, op *sim.Op) (RangeID, error) {
	node := w.entryLeaf(op.Current())
	// Locate within the entry structure, visiting block hosts as the walk
	// moves (entry structures hold O(1) ranges).
	r := RangeID(0)
	bi := w.blockIndex(node.base, w.rangeKey(node, r))
	if err := w.visitBlock(node.base, bi, op); err != nil {
		return NoRange, err
	}
	r, err := w.walk(node, r, q, bi, op)
	if err != nil {
		return NoRange, err
	}
	for node.parent != nil {
		parent := node.parent
		// Hyperlink: the parent range holding the same key.
		var pr RangeID
		if node.lvl.IsHead(r) {
			pr = parent.lvl.Head()
		} else {
			k := node.lvl.Key(r)
			pr = NoRange
			if w.memoActive {
				pr = w.memoGet(parent, k)
			}
			if pr == NoRange {
				var ok bool
				pr, ok = parent.lvl.ByKey(k)
				if !ok {
					panic(fmt.Sprintf("core: blocked web key %d missing from parent level", k))
				}
				if w.memoActive {
					w.memoPut(parent, k, pr)
				}
			}
		}
		bi = w.blockIndex(parent.base, w.rangeKey(parent, pr))
		if err := w.visitBlock(parent.base, bi, op); err != nil {
			return NoRange, err
		}
		r, err = w.walk(parent, pr, q, bi, op)
		if err != nil {
			return NoRange, err
		}
		node = parent
	}
	return r, nil
}

// walk performs the local Step descent in node n from range r toward q's
// terminal, visiting the block host of each range stepped through. The
// walk moves one range at a time, so a block cursor — seeded with bi,
// the block index of r's key when the caller already resolved it, or -1
// — resolves each host in O(1) amortized instead of a directory binary
// search per step; the visited hosts — and hence the charged messages —
// are identical.
func (w *BlockedWeb) walk(n *bnode, r RangeID, q uint64, bi int, op *sim.Op) (RangeID, error) {
	bn := n.base
	for {
		nx := n.lvl.Step(r, q)
		if nx == NoRange {
			return r, nil
		}
		r = nx
		k := w.rangeKey(n, r)
		if bi < 0 {
			bi = w.blockIndex(bn, k)
		} else {
			bi = w.blockIndexNear(bn, k, bi)
		}
		if err := w.visitBlock(bn, bi, op); err != nil {
			return NoRange, err
		}
	}
}

// Range routes to the floor of lo and walks the ground list, reporting
// every key in [lo, hi] (inclusive) in ascending order. Cost: one floor
// query plus one message per block crossed while walking — O(Q(n) + k/B)
// for k results.
func (w *BlockedWeb) Range(lo, hi uint64, origin sim.HostID) ([]uint64, int, error) {
	keys, c, err := w.RangeCost(lo, hi, origin)
	return keys, c.Hops, err
}

// RangeCost is Range reporting the full Cost pair — hop count plus the
// modeled critical-path latency — instead of hops alone. Accounting is
// identical: both run the same descent and walk, charge for charge.
func (w *BlockedWeb) RangeCost(lo, hi uint64, origin sim.HostID) ([]uint64, Cost, error) {
	op := w.net.NewOp(origin)
	defer op.Free()
	r, err := w.queryOp(lo, op)
	if err != nil {
		return nil, Cost{Hops: op.Hops(), Latency: op.Latency()}, err
	}
	g := w.root.lvl
	// The terminal is floor(lo); the first in-range key is the terminal
	// itself (if == lo) or its successor.
	if g.IsHead(r) || g.Key(r) < lo {
		r = g.Next(r)
	}
	var out []uint64
	bi := -1
	for r != NoRange {
		k := g.Key(r)
		if k > hi {
			break
		}
		if bi < 0 {
			bi = w.blockIndex(w.root, k)
		} else {
			bi = w.blockIndexNear(w.root, k, bi)
		}
		if err := w.visitBlock(w.root, bi, op); err != nil {
			return out, Cost{Hops: op.Hops(), Latency: op.Latency()}, err
		}
		out = append(out, k)
		r = g.Next(r)
	}
	return out, Cost{Hops: op.Hops(), Latency: op.Latency()}, nil
}

// memoGet returns the memoized parent range for (parent level, child
// key), or NoRange. Entries are validated by node pointer and key, so a
// stale entry can only miss, never mislead; during a run no level dies
// and no range slot is recycled (inserts only), so a hit is always the
// range ByKey would return.
func (w *BlockedWeb) memoGet(parent *bnode, k uint64) RangeID {
	d := parent.depth
	if d >= len(w.descMemo) {
		return NoRange
	}
	if e := w.descMemo[d]; e.node == parent && e.key == k {
		return e.pr
	}
	return NoRange
}

// memoPut records a hyperlink resolution for the current run.
func (w *BlockedWeb) memoPut(parent *bnode, k uint64, pr RangeID) {
	d := parent.depth
	for len(w.descMemo) <= d {
		w.descMemo = append(w.descMemo, descEntry{})
	}
	w.descMemo[d] = descEntry{node: parent, key: k, pr: pr}
}

// InsertRun executes a strictly-ascending run of inserts from a single
// origin — the batch engine's sorted-run fast path. Consecutive descents
// share their uncharged hyperlink resolutions through the per-depth memo
// (the charged walk of every operation is recomputed in full), and the
// ascending key order makes every level's sorted-order index splice an
// O(1) amortized append; per-operation message accounting is therefore
// identical, counter for counter, to calling Insert in the same order.
// hops and errs receive each operation's cost and error in input order;
// a failed insert (duplicate key) does not stop the run.
func (w *BlockedWeb) InsertRun(keys []uint64, origin sim.HostID, hops []int, errs []error) {
	w.memoActive = true
	w.descMemo = w.descMemo[:0]
	defer func() { w.memoActive = false }()
	for i, k := range keys {
		hops[i], errs[i] = w.Insert(k, origin)
	}
}

// Insert adds a key, climbing its bit path and paying messages only at
// stratum boundaries (Section 4: O(log n / log log n) expected for 1-d).
func (w *BlockedWeb) Insert(key uint64, origin sim.HostID) (int, error) {
	op := w.net.NewOp(origin)
	defer op.Free()
	t0, err := w.queryOp(key, op)
	if err != nil {
		return op.Hops(), err
	}
	if !w.root.lvl.IsHead(t0) && w.root.lvl.Key(t0) == key {
		return op.Hops(), fmt.Errorf("core: duplicate key %d", key)
	}
	w.resetSeen()
	node, hint := w.root, t0
	for {
		id := w.insertAt(node, key, hint, op)
		if node.kids[0] == nil {
			break
		}
		child := node.kids[w.bitAt(key, node.depth)]
		// Derive the child terminal: walk left in node's level from key's
		// newly spliced range to the nearest key present in the child.
		hint, err = w.childTerminal(node, child, key, id, op)
		if err != nil {
			return op.Hops(), err
		}
		node = child
	}
	if node.kids[0] == nil && node.count > 0 {
		w.addLeaf(node)
	}
	if node.count > w.leafMax && node.depth < w.maxDep {
		w.splitLeaf(node, op)
	}
	w.n++
	return op.Hops(), nil
}

// insertAt splices key into node's level. One message is charged per
// distinct block host touched by this whole insert operation, so updates
// confined to a stratum's co-located copies cost a single message.
// The splice skips the duplicate probe: Insert has already verified the
// key absent at the ground level, whose key set contains every level's.
func (w *BlockedWeb) insertAt(n *bnode, key uint64, hint RangeID, op *sim.Op) RangeID {
	id := n.lvl.insertKeyUnchecked(key, hint)
	n.count++
	// Storage deltas, all resolved around key's block with one directory
	// search (the neighbors' blocks are found by cursor): the new range's
	// primary copy and straddle, then the predecessor's boundary copy,
	// which follows its successor — retire the copy induced by the old
	// pair (pred, next-of-id) and charge the one induced by the new pair
	// (pred, id), keeping per-host storage exact.
	bn := n.base
	biKey := w.blockIndex(bn, key)
	w.addBlockStorage(bn, biKey, 2)
	nx := n.lvl.Next(id)
	biNx := -1
	if nx != NoRange {
		biNx = w.blockIndexNear(bn, n.lvl.Key(nx), biKey)
		if biNx != biKey {
			w.addBlockStorage(bn, biNx, 1)
		}
	}
	pred := n.lvl.Prev(id)
	biPred := w.blockIndexNear(bn, w.rangeKey(n, pred), biKey)
	if nx != NoRange && biNx != biPred {
		w.addBlockStorage(bn, biNx, -1)
	}
	if biKey != biPred {
		w.addBlockStorage(bn, biKey, 1)
	}
	w.chargeBlockOnce(bn, biKey, op)
	if n.base == n {
		n.blockSizes[biKey]++
		if n.blockSizes[biKey] > 2*w.blockSz {
			w.splitBlock(n, biKey, op)
		}
	}
	return id
}

// childTerminal walks left in parent from key's freshly spliced range r
// until reaching a key present in child (expected O(1) steps), charging
// block-host visits. The walk's destination is known up front — the
// first parent key present in the child is exactly the child's floor of
// key, since the child's key set is a subset of the parent's — so one
// child-level search replaces a child membership probe per step, and
// the walk itself just compares parent keys against the destination.
// The visited hosts (resolved through a block cursor, as in walk) are
// identical to the probe-per-step formulation, so the charged messages
// are unchanged.
func (w *BlockedWeb) childTerminal(parent, child *bnode, key uint64, r RangeID, op *sim.Op) (RangeID, error) {
	cf := child.lvl.Locate(key)
	stopAtHead := child.lvl.IsHead(cf)
	var stopKey uint64
	if !stopAtHead {
		stopKey = child.lvl.Key(cf)
	}
	bn := parent.base
	bi := -1
	for {
		if parent.lvl.IsHead(r) {
			return child.lvl.Head(), nil
		}
		if !stopAtHead && parent.lvl.Key(r) == stopKey {
			return cf, nil
		}
		r = parent.lvl.Prev(r)
		rk := w.rangeKey(parent, r)
		if bi < 0 {
			bi = w.blockIndex(bn, rk)
		} else {
			bi = w.blockIndexNear(bn, rk, bi)
		}
		if err := w.visitBlock(bn, bi, op); err != nil {
			return NoRange, err
		}
	}
}

// splitBlock splits an overfull block of basic node bn in two, moving the
// upper half (and its stratum copies) to a fresh host.
func (w *BlockedWeb) splitBlock(bn *bnode, bi int, op *sim.Op) {
	// Find the median key of the block by walking from its start.
	var r RangeID
	if bi == 0 {
		r = bn.lvl.Head()
	} else {
		var ok bool
		r, ok = bn.lvl.ByKey(bn.blockStarts[bi])
		if !ok {
			return // the start key vanished; rebuild lazily on next split
		}
	}
	half := bn.blockSizes[bi] / 2
	for i := 0; i < half; i++ {
		nx := bn.lvl.Next(r)
		if nx == NoRange {
			break
		}
		r = nx
	}
	if bn.lvl.IsHead(r) {
		return
	}
	medKey := bn.lvl.Key(r)
	newHost := w.nextHost()
	newMirrors := w.drawBlockMirrors(newHost)
	moved := bn.blockSizes[bi] - half
	// The directory splice rehosts only the key span [medKey, hi) — hi
	// being the old block's upper bound — and can newly straddle the
	// pair crossing medKey. For every stratum member, transfer exactly
	// that span's footprint from the old block's replicas to the new
	// block's: exact per-host storage (the churn drain check relies on
	// it) at O(block) cost with no directory searches beyond the span
	// floor.
	var hi uint64
	hasHi := bi+1 < len(bn.blockStarts)
	if hasHi {
		hi = bn.blockStarts[bi+1]
	}
	members := w.stratumMembers(bn)
	for _, n := range members {
		w.transferSpanStorage(n, bn, bi, medKey, hi, hasHi, newHost, newMirrors)
	}
	// Splice the new block into the directory.
	bn.blockStarts = append(bn.blockStarts, 0)
	copy(bn.blockStarts[bi+2:], bn.blockStarts[bi+1:])
	bn.blockStarts[bi+1] = medKey
	bn.blockHosts = append(bn.blockHosts, 0)
	copy(bn.blockHosts[bi+2:], bn.blockHosts[bi+1:])
	bn.blockHosts[bi+1] = newHost
	bn.blockSizes = append(bn.blockSizes, 0)
	copy(bn.blockSizes[bi+2:], bn.blockSizes[bi+1:])
	bn.blockSizes[bi+1] = moved
	bn.blockSizes[bi] = half
	if w.repl > 1 {
		bn.blockMirrors = append(bn.blockMirrors, nil)
		copy(bn.blockMirrors[bi+2:], bn.blockMirrors[bi+1:])
		bn.blockMirrors[bi+1] = newMirrors
	}
	// One message per moved range, per replica receiving its copy
	// (amortized against the inserts that grew the block).
	for i := 0; i < moved; i++ {
		op.Send(newHost)
		for _, m := range newMirrors {
			op.Send(m)
		}
	}
}

// transferSpanStorage moves member n's storage footprint for the key
// span [lo, hi) — the upper half of block bi, about to be spliced out
// onto newHost — from the old block host to the new one. It must run
// against the pre-splice directory. The net deltas are derived instead
// of discharged-and-recharged range by range:
//
//   - every span range's primary copy (range + hyperlink, 2 units)
//     moves from block bi's host to newHost;
//   - the pair (pred, first-span-range) straddled into block bi before
//     the splice only when pred lay in an earlier block (copy at block
//     bi's host, now retired) and always straddles into the new block
//     afterwards (copy on newHost);
//   - the pair at the span's upper end keeps both its existence and its
//     copy's host: the successor's block merely shifts index, and
//     every pair internal to the span is co-located both before (block
//     bi) and after (the new block).
//
// The per-host sums are identical to recomputing every affected range's
// footprint under both directories — splitBlock's exactness contract
// (Cluster.Leave asserts exact drains) rests on that — at O(span) cost
// with a single search to find the span floor. Every replica of the old
// block discharges the span; every replica of the new block (newHost
// plus newMirrors) is charged its copy.
func (w *BlockedWeb) transferSpanStorage(n, bn *bnode, bi int, lo, hi uint64, hasHi bool, newHost sim.HostID, newMirrors []sim.HostID) {
	r := n.lvl.Locate(lo) // floor: the last range with key <= lo
	var pred, s1 RangeID
	if !n.lvl.IsHead(r) && n.lvl.Key(r) == lo {
		pred, s1 = n.lvl.Prev(r), r
	} else {
		pred, s1 = r, n.lvl.Next(r)
	}
	if s1 == NoRange || (hasHi && n.lvl.Key(s1) >= hi) {
		return // no member range in the span: footprint unchanged
	}
	addNew := func(delta int) {
		w.net.AddStorage(newHost, delta)
		for _, m := range newMirrors {
			w.net.AddStorage(m, delta)
		}
	}
	for s := s1; s != NoRange && (!hasHi || n.lvl.Key(s) < hi); s = n.lvl.Next(s) {
		w.addBlockStorage(bn, bi, -2)
		addNew(2)
	}
	if w.blockIndex(bn, w.rangeKey(n, pred)) != bi {
		w.addBlockStorage(bn, bi, -1)
	}
	addNew(1)
}

// spanRanges visits, in member n, the ranges whose storage footprint
// depends on the directory's treatment of the key span [lo, hi): the
// predecessor of the first range with key >= lo (its boundary copy may
// appear, vanish, or move host) followed by every range with key in
// [lo, hi). hasHi=false means the span extends to +inf. retargetBlocks
// uses it to keep churn's exact storage transfers O(span) instead of
// O(stratum); splitBlock uses the fused transferSpanStorage instead.
func (w *BlockedWeb) spanRanges(n *bnode, lo, hi uint64, hasHi bool, visit func(RangeID)) {
	r := n.lvl.Locate(lo) // floor: the last range with key <= lo
	if !n.lvl.IsHead(r) && n.lvl.Key(r) == lo {
		r = n.lvl.Prev(r)
	}
	for ; r != NoRange; r = n.lvl.Next(r) {
		if hasHi && !n.lvl.IsHead(r) && n.lvl.Key(r) >= hi {
			return
		}
		visit(r)
	}
}

// Delete removes a key from every level on its bit path. Blocks are not
// merged (deletions leave directory slack, as the paper amortizes).
func (w *BlockedWeb) Delete(key uint64, origin sim.HostID) (int, error) {
	op := w.net.NewOp(origin)
	defer op.Free()
	t0, err := w.queryOp(key, op)
	if err != nil {
		return op.Hops(), err
	}
	if w.root.lvl.IsHead(t0) || w.root.lvl.Key(t0) != key {
		return op.Hops(), fmt.Errorf("core: key %d not found", key)
	}
	w.resetSeen()
	node := w.root
	path := w.pathScratch[:0]
	defer func() { w.pathScratch = path[:0] }()
	for node != nil {
		path = append(path, node)
		if node.kids[0] == nil {
			break
		}
		node = node.kids[w.bitAt(key, node.depth)]
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		// Discharge before the unsplice, while the dying range's key and
		// neighbors are still readable: its primary copy and straddle,
		// plus the predecessor's straddle for the old pair (pred, r) —
		// the pair (pred, next-of-r) is recharged after the delete. This
		// keeps per-host storage exact (Leave asserts exact drains).
		r, ok := n.lvl.ByKey(key)
		if !ok {
			return op.Hops(), fmt.Errorf("core: key %d missing from level at depth %d", key, n.depth)
		}
		pred, nx := n.lvl.Prev(r), n.lvl.Next(r)
		w.chargeRangeStorage(n, r, -1)
		w.straddleCopy(n, pred, r, -1)
		if _, _, err := n.lvl.DeleteKey(key); err != nil {
			return op.Hops(), err
		}
		w.straddleCopy(n, pred, nx, 1)
		n.count--
		w.chargeBlockOnce(n.base, w.blockIndex(n.base, key), op)
		if n.base == n {
			bi := w.blockIndex(n, key)
			if n.blockSizes[bi] > 0 {
				n.blockSizes[bi]--
			}
		}
	}
	leaf := path[len(path)-1]
	if leaf.kids[0] == nil && leaf.count == 0 {
		w.removeLeaf(leaf)
	}
	for _, n := range path {
		if n.kids[0] != nil && n.count <= w.merge {
			w.mergeSubtree(n, op)
			break
		}
	}
	w.n--
	return op.Hops(), nil
}

// splitLeaf splits an overfull set-tree leaf into two halves. The key
// snapshot and bit-partition buffers are per-web scratch, and the two
// kid structures come from the node/level pools, so a steady-state split
// allocates (at most) fractions of slab chunks.
func (w *BlockedWeb) splitLeaf(n *bnode, op *sim.Op) {
	keys := n.lvl.AppendKeys(w.keysScratch[:0])
	w.keysScratch = keys[:0]
	halves := [2][]uint64{w.halfScratch[0][:0], w.halfScratch[1][:0]}
	for _, k := range keys {
		b := w.bitAt(k, n.depth)
		halves[b] = append(halves[b], k)
	}
	w.halfScratch[0], w.halfScratch[1] = halves[0][:0], halves[1][:0]
	for b := 0; b < 2; b++ {
		kid := w.buildSubtree(halves[b], n.depth+1, n)
		n.kids[b] = kid
		for _, k := range halves[b] {
			w.sendBlock(kid.base, w.blockIndex(kid.base, k), op)
		}
	}
	w.removeLeaf(n)
}

// mergeSubtree re-absorbs all descendants of n, releasing their nodes
// and levels to the pools splitLeaf draws from.
func (w *BlockedWeb) mergeSubtree(n *bnode, op *sim.Op) {
	w.releaseSubtree(n.kids[0], op)
	w.releaseSubtree(n.kids[1], op)
	n.kids[0], n.kids[1] = nil, nil
	if n.count > 0 {
		w.addLeaf(n)
	}
}

func (w *BlockedWeb) releaseSubtree(k *bnode, op *sim.Op) {
	if k == nil {
		return
	}
	w.releaseSubtree(k.kids[0], op)
	w.releaseSubtree(k.kids[1], op)
	k.lvl.VisitRanges(func(r RangeID) bool {
		w.chargeRangeStorage(k, r, -1)
		w.sendBlock(k.base, w.blockIndex(k.base, w.rangeKey(k, r)), op)
		return true
	})
	w.removeLeaf(k)
	w.releaseNode(k)
}

// blockMove is one replica-slot reassignment collected by retargetBlocks.
type blockMove struct {
	slot int
	to   sim.HostID
}

// basicNodes returns the basic nodes in DFS order; each one's blocks
// co-locate the ranges of its whole stratum. Iteration is deterministic,
// so a fixed seed yields a fixed migration transcript.
func (w *BlockedWeb) basicNodes() []*bnode {
	var basics []*bnode
	var rec func(n *bnode)
	rec = func(n *bnode) {
		if n == nil {
			return
		}
		if n.base == n {
			basics = append(basics, n)
		}
		rec(n.kids[0])
		rec(n.kids[1])
	}
	rec(w.root)
	return basics
}

// retargetBlocks reassigns block replicas across the whole hierarchy:
// decide(bn, bi, slot, h) inspects replica slot `slot` of block bi,
// currently at host h, and returns (to, move, drop) — move relocates
// the replica to `to`, drop discards it (legal only when another
// replica survives; used when the live set is too small for a distinct
// target). Storage moves exactly — every range's primary copy (2 units)
// and boundary-straddling copy (1 unit) is discharged under the old
// replica sets and recharged under the new ones, so an unmoved replica
// nets zero, a moved one transfers, and a dropped one discharges — and
// one message per moved storage unit is charged to op.
func (w *BlockedWeb) retargetBlocks(decide func(bn *bnode, bi, slot int, h sim.HostID) (sim.HostID, bool, bool), op *sim.Op) {
	for _, bn := range w.basicNodes() {
		nBlocks := len(bn.blockHosts)
		moved := make([]bool, nBlocks)
		moves := make([][]blockMove, nBlocks)
		drops := make([][]int, nBlocks)
		any := false
		for bi := 0; bi < nBlocks; bi++ {
			count := w.blockReplicaCount(bn, bi)
			for slot := 0; slot < count; slot++ {
				h := w.blockReplicaAt(bn, bi, slot)
				to, mv, drop := decide(bn, bi, slot, h)
				if drop {
					drops[bi] = append(drops[bi], slot)
					moved[bi], any = true, true
					continue
				}
				if !mv || to == h {
					continue
				}
				// Replica sets stay distinct: skip a move whose target
				// already serves this block (or was just assigned to it).
				if w.blockHasReplica(bn, bi, to) {
					continue
				}
				dup := false
				for _, m := range moves[bi] {
					if m.to == to {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				moves[bi] = append(moves[bi], blockMove{slot, to})
				moved[bi], any = true, true
			}
		}
		if !any {
			continue
		}
		// Only blocks change hosts, never interval boundaries, so a
		// range's footprint can move only when its own key — or its
		// successor's, for the straddle copy — lies in a moved block.
		// Visit exactly those: the maximal runs of consecutive moved
		// blocks (merged so a shared boundary range is not transferred
		// twice), each with its one predecessor range — O(moved blocks),
		// not O(stratum).
		type span struct {
			lo, hi uint64
			hasHi  bool
		}
		var runs []span
		for bi := 0; bi < len(moved); bi++ {
			if !moved[bi] {
				continue
			}
			end := bi
			for end+1 < len(moved) && moved[end+1] {
				end++
			}
			s := span{lo: bn.blockStarts[bi], hasHi: end+1 < len(bn.blockStarts)}
			if s.hasHi {
				s.hi = bn.blockStarts[end+1]
			}
			runs = append(runs, s)
			bi = end
		}
		// Visits ascend within a member, so a later run's predecessor can
		// only repeat the member's most recent visit (when the member has
		// no range in the gap between runs); the `last` cursor skips that
		// one possible duplicate so no range transfers twice.
		members := w.stratumMembers(bn)
		forEachSpanRange := func(n *bnode, visit func(RangeID)) {
			last := NoRange
			for _, s := range runs {
				w.spanRanges(n, s.lo, s.hi, s.hasHi, func(r RangeID) {
					if r == last {
						return
					}
					last = r
					visit(r)
				})
			}
		}
		for _, n := range members {
			forEachSpanRange(n, func(r RangeID) {
				w.chargeRangeStorage(n, r, -1)
			})
		}
		// Apply slot rewrites first (on the pre-drop slot layout), then
		// drops from the highest slot down so earlier indices stay valid;
		// dropping slot 0 promotes the first surviving mirror to primary.
		for bi := 0; bi < nBlocks; bi++ {
			for _, m := range moves[bi] {
				w.setBlockReplicaAt(bn, bi, m.slot, m.to)
			}
			ds := drops[bi]
			sort.Sort(sort.Reverse(sort.IntSlice(ds)))
			for _, slot := range ds {
				ms := bn.blockMirrors[bi]
				if slot == 0 {
					bn.blockHosts[bi] = ms[0]
					slot = 1
				}
				copy(ms[slot-1:], ms[slot:])
				bn.blockMirrors[bi] = ms[:len(ms)-1]
			}
		}
		for _, n := range members {
			forEachSpanRange(n, func(r RangeID) {
				w.chargeRangeStorage(n, r, 1)
				k := w.rangeKey(n, r)
				bi := w.blockIndex(bn, k)
				for _, m := range moves[bi] {
					op.Send(m.to) // the range...
					op.Send(m.to) // ...and its hyperlink
				}
				if nx := n.lvl.Next(r); nx != NoRange {
					if bj := w.blockIndex(bn, n.lvl.Key(nx)); bj != bi {
						for _, m := range moves[bj] {
							op.Send(m.to) // the straddling copy
						}
					}
				}
			})
		}
	}
}

// Rehome migrates every block replica hosted on the departed host
// `from` onto the next live hosts in round-robin order (distinct from
// the block's surviving replicas), charging one message per moved
// storage unit to op. When the live set is too small for a distinct
// target — the cluster shrank below the replication factor — the
// replica is dropped instead.
func (w *BlockedWeb) Rehome(from sim.HostID, op *sim.Op) {
	w.retargetBlocks(func(bn *bnode, bi, slot int, h sim.HostID) (sim.HostID, bool, bool) {
		if h != from {
			return 0, false, false
		}
		count := w.blockReplicaCount(bn, bi)
		if w.net.LiveHosts() < count {
			return 0, false, true // no distinct live target: drop the replica
		}
		if count == 1 {
			return w.nextHost(), true, false
		}
		return w.nextHostExcluding(w.otherBlockReplicas(bn, bi, slot)), true, false
	}, op)
}

// otherBlockReplicas materializes block bi's replica hosts except slot
// `slot`, for distinctness-constrained draws (cold churn path).
func (w *BlockedWeb) otherBlockReplicas(bn *bnode, bi, slot int) []sim.HostID {
	count := w.blockReplicaCount(bn, bi)
	out := make([]sim.HostID, 0, count-1)
	for i := 0; i < count; i++ {
		if i != slot {
			out = append(out, w.blockReplicaAt(bn, bi, i))
		}
	}
	return out
}

// Rebalance moves each block replica independently onto the freshly
// joined host `onto` with probability 1/LiveHosts — the expected 1/H
// share of every basic node's directory a from-scratch build over the
// enlarged live set would assign it — charging every migration hop to
// op. A replica never lands on a host already serving the same block.
func (w *BlockedWeb) Rebalance(onto sim.HostID, op *sim.Op) {
	live := w.net.LiveHosts()
	w.retargetBlocks(func(bn *bnode, bi, slot int, h sim.HostID) (sim.HostID, bool, bool) {
		// The Alive guard comes after the draw so the randomness stream
		// is crash-independent; a dead slot (data lost past the
		// tolerance) must never relocate — that would resurrect data
		// the crash destroyed and discharge a zeroed storage counter.
		if h != onto && w.rng.Intn(live) == 0 && w.net.Alive(h) {
			return onto, true, false
		}
		return 0, false, false
	}, op)
}

// blockUnits computes, per block of basic node bn, the storage units
// one replica of that block holds — 2 per range whose key lies in the
// block plus 1 per boundary-straddling copy, summed over the stratum's
// members. It recomputes exactly the footprint the update paths
// maintain per replica, so Repair can charge a fresh replica without
// replaying history.
func (w *BlockedWeb) blockUnits(bn *bnode) []int {
	units := make([]int, len(bn.blockHosts))
	for _, n := range w.stratumMembers(bn) {
		bi := 0
		for r := n.lvl.Head(); r != NoRange; r = n.lvl.Next(r) {
			units[bi] += 2
			if next := n.lvl.Next(r); next != NoRange {
				bj := w.blockIndexNear(bn, n.lvl.Key(next), bi)
				if bj != bi {
					units[bj]++
				}
				bi = bj
			}
		}
	}
	return units
}

// Repair re-replicates every under-replicated block after a crash (or a
// join that raised the feasible replica count): dead replicas are
// dropped from the replica set, a live survivor is promoted to primary
// when the primary died, and fresh distinct live hosts are charged a
// full block copy — one message per storage unit copied from a
// surviving replica. Blocks with no surviving replica are left in place
// (queries against them keep failing fast) and reported via a
// DataLossError.
func (w *BlockedWeb) Repair(op *sim.Op) error {
	lost := 0
	var deadHosts map[sim.HostID]bool
	target := w.replicaTarget()
	for _, bn := range w.basicNodes() {
		var units []int // computed lazily: repairs are rare
		for bi := range bn.blockHosts {
			count := w.blockReplicaCount(bn, bi)
			liveCount := 0
			for slot := 0; slot < count; slot++ {
				if w.net.Alive(w.blockReplicaAt(bn, bi, slot)) {
					liveCount++
				}
			}
			if liveCount == count && count >= target {
				continue
			}
			if units == nil {
				units = w.blockUnits(bn)
			}
			if liveCount == 0 {
				lost += units[bi]
				if deadHosts == nil {
					deadHosts = make(map[sim.HostID]bool)
				}
				for slot := 0; slot < count; slot++ {
					deadHosts[w.blockReplicaAt(bn, bi, slot)] = true
				}
				continue
			}
			liveSet := make([]sim.HostID, 0, target)
			for slot := 0; slot < count; slot++ {
				h := w.blockReplicaAt(bn, bi, slot)
				if w.net.Alive(h) {
					liveSet = append(liveSet, h)
					continue
				}
				// The dead slot is dropped for good; discharge the durable
				// host's on-disk image so a later Restart does not
				// resurrect units the repair re-homed elsewhere.
				if w.net.Durable() && w.net.Crashed(h) {
					w.net.AddStorage(h, -units[bi])
					delete(w.missed, blockMiss{bn, bn.blockStarts[bi], h})
				}
			}
			for len(liveSet) < target {
				h := w.nextHostExcluding(liveSet)
				w.net.AddStorage(h, units[bi])
				for i := 0; i < units[bi]; i++ {
					op.Send(h) // copied from a surviving replica
				}
				liveSet = append(liveSet, h)
			}
			bn.blockHosts[bi] = liveSet[0]
			if w.repl > 1 {
				bn.blockMirrors[bi] = append(bn.blockMirrors[bi][:0], liveSet[1:]...)
			}
		}
	}
	if lost > 0 {
		hosts := make([]sim.HostID, 0, len(deadHosts))
		for h := range deadHosts {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		return &DataLossError{Units: lost, Hosts: hosts}
	}
	return nil
}

// RestartHost reconciles host h's block replicas after a durable
// restart. Each surviving miss record is mapped onto the current
// directory (the recorded start key locates the block now covering it —
// robust to splits that shifted indices while h was down), then h's
// blocks are grouped by reconcile peer — the first live co-replica —
// and each group runs an outer merkle walk over its per-block digests.
// A diverged block reconciles at key granularity with an inner walk:
// the miss count bounds how many distinct positions diverged, so the
// inner tree ships O(misses · log block) rather than the whole block.
// Returns the number of storage units re-copied; all messages are
// charged to op against h.
func (w *BlockedWeb) RestartHost(h sim.HostID, op *sim.Op) int {
	type blockRef struct {
		bn *bnode
		bi int
	}
	var dirtyCount map[blockRef]int
	for k, c := range w.missed {
		if k.h != h {
			continue
		}
		if dirtyCount == nil {
			dirtyCount = make(map[blockRef]int)
		}
		dirtyCount[blockRef{k.bn, w.blockIndex(k.bn, k.start)}] += c
		delete(w.missed, k)
	}
	var groups map[sim.HostID][]blockRef
	var peers []sim.HostID
	unitsOf := make(map[*bnode][]int)
	for _, bn := range w.basicNodes() {
		for bi := range bn.blockHosts {
			if !w.blockHasReplica(bn, bi, h) {
				continue
			}
			count := w.blockReplicaCount(bn, bi)
			for slot := 0; slot < count; slot++ {
				if p := w.blockReplicaAt(bn, bi, slot); p != h && w.net.Alive(p) {
					if groups == nil {
						groups = make(map[sim.HostID][]blockRef)
					}
					if _, ok := groups[p]; !ok {
						peers = append(peers, p)
					}
					groups[p] = append(groups[p], blockRef{bn, bi})
					if _, ok := unitsOf[bn]; !ok {
						unitsOf[bn] = w.blockUnits(bn)
					}
					break
				}
			}
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	copied := 0
	for _, p := range peers {
		blocks := groups[p]
		var dirty []int
		for i, ref := range blocks {
			if dirtyCount[ref] > 0 {
				dirty = append(dirty, i)
			}
		}
		cost := merkleDiff(len(blocks), dirty)
		for i := 0; i < cost.walk; i++ {
			op.Send(h) // per-block digest exchange with peer p
		}
		for _, i := range dirty {
			ref := blocks[i]
			n := unitsOf[ref.bn][ref.bi]
			ic := merkleDiff(n, spreadPositions(dirtyCount[ref], n))
			for j := 0; j < ic.msgs(); j++ {
				op.Send(h) // inner walk + diverged-leaf payloads
			}
			copied += ic.keys
		}
	}
	return copied
}

// spreadPositions models d divergent positions spread evenly over a
// unit of n entries — the update stream while a host is down touches a
// block all over, so even spread is the faithful (and worst-case for
// the walk) placement when only the count is known.
func spreadPositions(d, n int) []int {
	if n <= 0 {
		return nil
	}
	if d > n {
		d = n
	}
	pos := make([]int, d)
	for i := range pos {
		pos[i] = i * n / d
	}
	return pos
}

// CheckInvariants verifies that every level's list is sound, child key
// sets partition their parent's, counts match, block directories are
// ordered, and every block lives on a live host.
func (w *BlockedWeb) CheckInvariants() error {
	var rec func(n *bnode) error
	rec = func(n *bnode) error {
		if err := n.lvl.CheckInvariants(); err != nil {
			return fmt.Errorf("depth %d: %w", n.depth, err)
		}
		if n.lvl.Len() != n.count {
			return fmt.Errorf("depth %d: level len %d, count %d", n.depth, n.lvl.Len(), n.count)
		}
		if n.base == n {
			for i := 1; i < len(n.blockStarts); i++ {
				if n.blockStarts[i] <= n.blockStarts[i-1] && i > 1 {
					return fmt.Errorf("depth %d: block starts out of order", n.depth)
				}
			}
			if w.repl > 1 && len(n.blockMirrors) != len(n.blockHosts) {
				return fmt.Errorf("depth %d: %d mirror sets for %d blocks", n.depth, len(n.blockMirrors), len(n.blockHosts))
			}
			for bi, h := range n.blockHosts {
				if !w.net.Alive(h) {
					return fmt.Errorf("depth %d: block %d on departed host %d", n.depth, bi, h)
				}
				// Replica contract: min(Replicas, live) distinct live
				// hosts serve every block.
				if want := w.replicaTarget(); w.blockReplicaCount(n, bi) < want {
					return fmt.Errorf("depth %d: block %d has %d replicas, want %d",
						n.depth, bi, w.blockReplicaCount(n, bi), want)
				}
				if len(n.blockMirrors) > 0 {
					for i, m := range n.blockMirrors[bi] {
						if !w.net.Alive(m) {
							return fmt.Errorf("depth %d: block %d mirror on dead host %d", n.depth, bi, m)
						}
						if m == h {
							return fmt.Errorf("depth %d: block %d mirror duplicates primary %d", n.depth, bi, m)
						}
						for _, m2 := range n.blockMirrors[bi][:i] {
							if m2 == m {
								return fmt.Errorf("depth %d: block %d has duplicate mirror %d", n.depth, bi, m)
							}
						}
					}
				}
			}
		}
		if n.kids[0] != nil {
			if n.kids[0].count+n.kids[1].count != n.count {
				return fmt.Errorf("depth %d: kid counts %d+%d != %d", n.depth, n.kids[0].count, n.kids[1].count, n.count)
			}
			seen := make(map[uint64]bool, n.count)
			for b := 0; b < 2; b++ {
				for _, k := range n.kids[b].lvl.Keys() {
					if seen[k] {
						return fmt.Errorf("depth %d: key %d in both halves", n.depth, k)
					}
					seen[k] = true
					if _, ok := n.lvl.ByKey(k); !ok {
						return fmt.Errorf("depth %d: child key %d missing from parent", n.depth, k)
					}
				}
			}
			if err := rec(n.kids[0]); err != nil {
				return err
			}
			return rec(n.kids[1])
		}
		return nil
	}
	return rec(w.root)
}

// BucketWeb is the bucket skip-web of Table 1's final row: contiguous
// buckets of keys on the bottom level (as in Aspnes et al.) with a
// blocked skip-web routing over the bucket separators, giving per-host
// memory O(n/H + log H) and query cost Õ(log_M H) — constant when
// M = n^ε.
type BucketWeb struct {
	net     Fabric
	web     *BlockedWeb
	buckets map[uint64]*wbucket
	target  int
	repl    int    // replication factor k (1 = unreplicated)
	origin  uint64 // seed

	// missed records, per stale bucket replica (bucket × crashed durable
	// host), the keys whose write-throughs the replica slept through.
	// Unlike the routing web, bucket updates know their key, so the
	// merkle reconcile gets exact divergence positions. Lazily allocated.
	missed map[bucketMiss][]uint64
}

// bucketMiss keys one stale bucket replica. wbucket pointers are stable
// (buckets are never pooled), so the pointer is a safe identity.
type bucketMiss struct {
	wb *wbucket
	h  sim.HostID
}

type wbucket struct {
	min  uint64
	keys []uint64
	host sim.HostID
	// mirrors holds the bucket's k-1 secondary replica hosts; nil on
	// unreplicated webs.
	mirrors []sim.HostID
}

// NewBucketWeb builds the bucket skip-web over keys with roughly target
// keys per bucket, host memory parameter m for the routing web, and
// replication factor replicas (<= 1 means unreplicated, the
// seed-compatible default).
func NewBucketWeb(net Fabric, keys []uint64, target, m int, seed uint64, replicas int) (*BucketWeb, error) {
	if target < 1 {
		target = 1
	}
	if replicas <= 0 {
		replicas = 1
	}
	sorted := append([]uint64(nil), keys...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("core: duplicate key %d", sorted[i])
		}
	}
	b := &BucketWeb{net: net, buckets: make(map[uint64]*wbucket), target: target, repl: replicas, origin: seed}
	var mins []uint64
	hostSeq := 0
	nextBucketHost := func() sim.HostID {
		h := net.LiveAt(hostSeq % net.LiveHosts())
		hostSeq++
		return h
	}
	for start := 0; start < len(sorted); start += target {
		end := start + target
		if end > len(sorted) {
			end = len(sorted)
		}
		wb := &wbucket{
			min:  sorted[start],
			keys: append([]uint64(nil), sorted[start:end]...),
			host: nextBucketHost(),
		}
		if k := b.replicaTarget(); k > 1 {
			taken := []sim.HostID{wb.host}
			for len(wb.mirrors) < k-1 {
				m := nextBucketHost()
				if slices.Contains(taken, m) {
					continue
				}
				wb.mirrors = append(wb.mirrors, m)
				taken = append(taken, m)
			}
		}
		b.buckets[wb.min] = wb
		mins = append(mins, wb.min)
		b.addBucketStorage(wb, len(wb.keys))
	}
	web, err := NewBlockedWeb(net, mins, BlockedConfig{Seed: seed, M: m, Replicas: replicas})
	if err != nil {
		return nil, err
	}
	b.web = web
	return b, nil
}

// replicaTarget returns min(replicas, live hosts) — how many distinct
// hosts each bucket should be mirrored on right now.
func (b *BucketWeb) replicaTarget() int {
	k := b.repl
	if live := b.net.LiveHosts(); k > live {
		k = live
	}
	return k
}

// addBucketStorage charges delta storage units at every replica of wb.
func (b *BucketWeb) addBucketStorage(wb *wbucket, delta int) {
	b.net.AddStorage(wb.host, delta)
	for _, m := range wb.mirrors {
		b.net.AddStorage(m, delta)
	}
}

// writeThrough returns the number of write-through messages an update
// touching key in bucket wb actually pays — one per replica, minus the
// replicas crashed on a durable fabric, whose copy instead records the
// key as missed for the merkle reconcile at RestartHost time. On a
// non-durable fabric it is exactly 1+len(mirrors), bit-identical to the
// pre-durability arithmetic.
func (b *BucketWeb) writeThrough(wb *wbucket, key uint64) int {
	if !b.net.Durable() {
		return 1 + len(wb.mirrors)
	}
	n := 0
	for slot := 0; slot < b.bucketReplicaCount(wb); slot++ {
		h := b.bucketReplicaAt(wb, slot)
		if b.net.Crashed(h) {
			if b.missed == nil {
				b.missed = make(map[bucketMiss][]uint64)
			}
			k := bucketMiss{wb, h}
			b.missed[k] = append(b.missed[k], key)
			continue
		}
		n++
	}
	return n
}

// liveBucketHost resolves the bucket for routing: the primary when
// alive, else the first live mirror; a fully dead bucket returns the
// typed HostDownError.
func (b *BucketWeb) liveBucketHost(wb *wbucket) (sim.HostID, error) {
	if b.net.Alive(wb.host) {
		return wb.host, nil
	}
	for _, m := range wb.mirrors {
		if b.net.Alive(m) {
			return m, nil
		}
	}
	return sim.None, &sim.HostDownError{Host: wb.host}
}

// Len returns the number of keys stored.
func (b *BucketWeb) Len() int {
	n := 0
	for _, wb := range b.buckets {
		n += len(wb.keys)
	}
	return n
}

// NumBuckets returns the bucket count H.
func (b *BucketWeb) NumBuckets() int { return len(b.buckets) }

// Query performs a floor query: route over separators, then one message
// into the bucket (failing over to a live bucket replica; a bucket with
// no live replica aborts with a HostDownError). Deletions may leave a
// separator below its bucket's first live key; the search then continues
// into predecessor buckets via the ground list's level-0 links. Like
// BlockedWeb.Query, it is safe for concurrent use provided no update
// runs concurrently.
func (b *BucketWeb) Query(q uint64, origin sim.HostID) (uint64, bool, int, error) {
	k, ok, c, err := b.QueryCost(q, origin)
	return k, ok, c.Hops, err
}

// QueryCost is Query reporting the full Cost pair — hop count plus the
// modeled critical-path latency — instead of hops alone. Accounting is
// identical: the separator routing charges through the same descent, and
// each bucket hop adds the link cost from the host the route currently
// sits at to the bucket replica it enters.
func (b *BucketWeb) QueryCost(q uint64, origin sim.HostID) (uint64, bool, Cost, error) {
	min, ok, c, at, err := b.web.queryCost(q, origin)
	if err != nil {
		return 0, false, c, err
	}
	model := b.net.CostModel()
	hop := func(to sim.HostID) {
		c.Hops++
		if model != nil {
			c.Latency += model.Link(at, to)
		}
		at = to
	}
	ground := b.web.Ground()
	for ok {
		wb := b.buckets[min]
		bh, err := b.liveBucketHost(wb)
		if err != nil {
			return 0, false, c, err
		}
		hop(bh) // the hop into the bucket's live replica
		i := sort.Search(len(wb.keys), func(i int) bool { return wb.keys[i] > q })
		if i > 0 {
			return wb.keys[i-1], true, c, nil
		}
		r, found := ground.ByKey(min)
		if !found {
			break
		}
		prev := ground.Prev(r)
		if ground.IsHead(prev) {
			break
		}
		min = ground.Key(prev)
		// Ground-list step toward the predecessor bucket: charge the
		// link to that bucket's primary, the step's destination shard.
		hop(b.buckets[min].host)
	}
	return 0, false, c, nil
}

// Insert routes to the bucket and adds the key, splitting overfull
// buckets (amortized separator insertion).
func (b *BucketWeb) Insert(key uint64, origin sim.HostID) (int, error) {
	min, ok, hops, err := b.web.Query(key, origin)
	if err != nil {
		return hops, err
	}
	if !ok {
		// Key below every separator: extend the lowest bucket downward by
		// rekeying its separator.
		ground := b.web.Ground()
		first := ground.Next(ground.Head())
		if first == NoRange {
			return hops, fmt.Errorf("core: bucket web is empty")
		}
		oldMin := ground.Key(first)
		wb := b.buckets[oldMin]
		delete(b.buckets, oldMin)
		h1, err := b.web.Delete(oldMin, origin)
		hops += h1
		if err != nil {
			return hops, err
		}
		h2, err := b.web.Insert(key, origin)
		hops += h2
		if err != nil {
			return hops, err
		}
		wb.min = key
		wb.keys = append([]uint64{key}, wb.keys...)
		b.buckets[key] = wb
		b.addBucketStorage(wb, 1)
		return hops + b.writeThrough(wb, key), nil
	}
	wb := b.buckets[min]
	i := sort.Search(len(wb.keys), func(i int) bool { return wb.keys[i] >= key })
	if i < len(wb.keys) && wb.keys[i] == key {
		return hops, fmt.Errorf("core: duplicate key %d", key)
	}
	wb.keys = append(wb.keys, 0)
	copy(wb.keys[i+1:], wb.keys[i:])
	wb.keys[i] = key
	b.addBucketStorage(wb, 1)
	hops += b.writeThrough(wb, key) // write-through: one message per live replica
	if len(wb.keys) > 2*b.target {
		mid := len(wb.keys) / 2
		upper := append([]uint64(nil), wb.keys[mid:]...)
		wb.keys = wb.keys[:mid]
		nb := &wbucket{min: upper[0], keys: upper, host: b.net.NextLive(wb.host)}
		if k := b.replicaTarget(); k > 1 {
			// Walk the cyclic live-host order from the new primary until
			// k-1 distinct mirrors are found (k <= live, so they exist).
			cur := nb.host
			for len(nb.mirrors) < k-1 {
				cur = b.net.NextLive(cur)
				if cur == nb.host || slices.Contains(nb.mirrors, cur) {
					continue
				}
				nb.mirrors = append(nb.mirrors, cur)
			}
		}
		b.buckets[nb.min] = nb
		b.addBucketStorage(wb, -len(upper))
		b.addBucketStorage(nb, len(upper))
		// A crashed durable replica of wb slept through the split: its
		// stale copy still holds the upper half, so every moved key is
		// divergence the reconcile must truncate.
		if b.net.Durable() {
			for slot := 0; slot < b.bucketReplicaCount(wb); slot++ {
				if h := b.bucketReplicaAt(wb, slot); b.net.Crashed(h) {
					if b.missed == nil {
						b.missed = make(map[bucketMiss][]uint64)
					}
					k := bucketMiss{wb, h}
					b.missed[k] = append(b.missed[k], upper...)
				}
			}
		}
		sh, err := b.web.Insert(nb.min, origin)
		if err != nil {
			return hops, err
		}
		hops += sh + b.writeThrough(nb, nb.min)
	}
	return hops, nil
}

// Range reports every key in [lo, hi] in ascending order: one routed
// floor query plus one message per bucket visited.
func (b *BucketWeb) Range(lo, hi uint64, origin sim.HostID) ([]uint64, int, error) {
	keys, c, err := b.RangeCost(lo, hi, origin)
	return keys, c.Hops, err
}

// RangeCost is Range reporting the full Cost pair — hop count plus the
// modeled critical-path latency — instead of hops alone. Accounting is
// identical; each bucket visit adds the link cost from the previous stop
// to the bucket replica entered.
func (b *BucketWeb) RangeCost(lo, hi uint64, origin sim.HostID) ([]uint64, Cost, error) {
	ground := b.web.Ground()
	min, ok, c, at, err := b.web.queryCost(lo, origin)
	if err != nil {
		return nil, c, err
	}
	model := b.net.CostModel()
	var r RangeID
	if !ok {
		// lo is below every separator: start at the first bucket.
		r = ground.Next(ground.Head())
	} else {
		r, _ = ground.ByKey(min)
	}
	var out []uint64
	for r != NoRange {
		wb := b.buckets[ground.Key(r)]
		bh, err := b.liveBucketHost(wb)
		if err != nil {
			return out, c, err
		}
		c.Hops++ // visiting the bucket's live replica
		if model != nil {
			c.Latency += model.Link(at, bh)
		}
		at = bh
		done := false
		for _, k := range wb.keys {
			if k > hi {
				done = true
				break
			}
			if k >= lo {
				out = append(out, k)
			}
		}
		if done {
			break
		}
		r = ground.Next(r)
	}
	return out, c, nil
}

// sortedBuckets returns the buckets in ascending separator order — the
// deterministic iteration order churn migration uses.
func (b *BucketWeb) sortedBuckets() []*wbucket {
	mins := make([]uint64, 0, len(b.buckets))
	for m := range b.buckets {
		mins = append(mins, m)
	}
	sort.Slice(mins, func(i, j int) bool { return mins[i] < mins[j] })
	out := make([]*wbucket, len(mins))
	for i, m := range mins {
		out[i] = b.buckets[m]
	}
	return out
}

// bucketReplicaCount returns how many replicas bucket wb has.
func (b *BucketWeb) bucketReplicaCount(wb *wbucket) int { return 1 + len(wb.mirrors) }

// bucketReplicaAt returns replica slot `slot` of wb (0 = primary).
func (b *BucketWeb) bucketReplicaAt(wb *wbucket, slot int) sim.HostID {
	if slot == 0 {
		return wb.host
	}
	return wb.mirrors[slot-1]
}

// setBucketReplicaAt rewrites replica slot `slot` of wb.
func (b *BucketWeb) setBucketReplicaAt(wb *wbucket, slot int, h sim.HostID) {
	if slot == 0 {
		wb.host = h
		return
	}
	wb.mirrors[slot-1] = h
}

// bucketHasReplica reports whether h already serves a replica of wb.
func (b *BucketWeb) bucketHasReplica(wb *wbucket, h sim.HostID) bool {
	if wb.host == h {
		return true
	}
	return slices.Contains(wb.mirrors, h)
}

// moveBucketReplica migrates replica slot `slot` of wb's key payload to
// host `to`, one message per key moved.
func (b *BucketWeb) moveBucketReplica(wb *wbucket, slot int, to sim.HostID, op *sim.Op) {
	from := b.bucketReplicaAt(wb, slot)
	if to == from {
		return
	}
	b.net.AddStorage(from, -len(wb.keys))
	b.net.AddStorage(to, len(wb.keys))
	b.setBucketReplicaAt(wb, slot, to)
	for range wb.keys {
		op.Send(to)
	}
}

// dropBucketReplica discards replica slot `slot` of wb, discharging its
// storage at the departing host; dropping the primary promotes the
// first mirror.
func (b *BucketWeb) dropBucketReplica(wb *wbucket, slot int) {
	from := b.bucketReplicaAt(wb, slot)
	b.net.AddStorage(from, -len(wb.keys))
	if slot == 0 {
		wb.host = wb.mirrors[0]
		slot = 1
	}
	copy(wb.mirrors[slot-1:], wb.mirrors[slot:])
	wb.mirrors = wb.mirrors[:len(wb.mirrors)-1]
}

// Rehome migrates the separator routing web off the departed host `from`
// and moves every bucket replica it hosted (n/H keys each) to the next
// live hosts (distinct from the bucket's surviving replicas), charging
// one message per key moved. A replica with no distinct live target is
// dropped.
func (b *BucketWeb) Rehome(from sim.HostID, op *sim.Op) {
	b.web.Rehome(from, op)
	for _, wb := range b.sortedBuckets() {
		count := b.bucketReplicaCount(wb)
		for slot := 0; slot < count; slot++ {
			if b.bucketReplicaAt(wb, slot) != from {
				continue
			}
			if b.net.LiveHosts() < count {
				b.dropBucketReplica(wb, slot)
			} else {
				to := b.web.nextHost()
				for b.bucketHasReplica(wb, to) {
					to = b.web.nextHost()
				}
				b.moveBucketReplica(wb, slot, to, op)
			}
			break // replicas are distinct: at most one slot matches
		}
	}
}

// Rebalance hands the freshly joined host `onto` its expected 1/H share
// of the routing web and of the bucket replicas, charging every
// migration hop; a replica never lands on a host already serving the
// same bucket.
func (b *BucketWeb) Rebalance(onto sim.HostID, op *sim.Op) {
	b.web.Rebalance(onto, op)
	live := b.net.LiveHosts()
	for _, wb := range b.sortedBuckets() {
		count := b.bucketReplicaCount(wb)
		for slot := 0; slot < count; slot++ {
			h := b.bucketReplicaAt(wb, slot)
			// Alive guard after the draw (see BlockedWeb.Rebalance):
			// dead replicas never relocate.
			if h != onto && b.web.rng.Intn(live) == 0 && !b.bucketHasReplica(wb, onto) &&
				b.net.Alive(h) {
				b.moveBucketReplica(wb, slot, onto, op)
			}
		}
	}
}

// Repair re-replicates the routing web and every under-replicated
// bucket after a crash: dead replicas are dropped, a live survivor is
// promoted to primary when the primary died, and fresh distinct live
// hosts are charged a full bucket copy (one message per key copied).
// Buckets with no surviving replica are reported via a DataLossError.
func (b *BucketWeb) Repair(op *sim.Op) error {
	lost := 0
	var deadHosts map[sim.HostID]bool
	markDead := func(h sim.HostID) {
		if deadHosts == nil {
			deadHosts = make(map[sim.HostID]bool)
		}
		deadHosts[h] = true
	}
	err := b.web.Repair(op)
	var dl *DataLossError
	if err != nil {
		if !errors.As(err, &dl) {
			return err
		}
		lost += dl.Units
		for _, h := range dl.Hosts {
			markDead(h)
		}
	}
	target := b.replicaTarget()
	for _, wb := range b.sortedBuckets() {
		count := b.bucketReplicaCount(wb)
		liveCount := 0
		for slot := 0; slot < count; slot++ {
			if b.net.Alive(b.bucketReplicaAt(wb, slot)) {
				liveCount++
			}
		}
		if liveCount == count && count >= target {
			continue // fully replicated: allocate nothing
		}
		if liveCount == 0 {
			lost += len(wb.keys)
			for slot := 0; slot < count; slot++ {
				markDead(b.bucketReplicaAt(wb, slot))
			}
			continue
		}
		liveSet := make([]sim.HostID, 0, target)
		for slot := 0; slot < count; slot++ {
			h := b.bucketReplicaAt(wb, slot)
			if b.net.Alive(h) {
				liveSet = append(liveSet, h)
				continue
			}
			// The dead slot is dropped for good; discharge the durable
			// host's on-disk image so a later Restart does not resurrect
			// keys the repair re-homed elsewhere.
			if b.net.Durable() && b.net.Crashed(h) {
				b.net.AddStorage(h, -len(wb.keys))
				delete(b.missed, bucketMiss{wb, h})
			}
		}
		for len(liveSet) < target {
			h := b.web.nextHost()
			if slices.Contains(liveSet, h) {
				continue
			}
			b.net.AddStorage(h, len(wb.keys))
			for range wb.keys {
				op.Send(h) // copied from a surviving replica
			}
			liveSet = append(liveSet, h)
		}
		wb.host = liveSet[0]
		wb.mirrors = append(wb.mirrors[:0], liveSet[1:]...)
	}
	if lost > 0 {
		hosts := make([]sim.HostID, 0, len(deadHosts))
		for h := range deadHosts {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		return &DataLossError{Units: lost, Hosts: hosts}
	}
	return nil
}

// RestartHost reconciles host h's shard after a durable restart: the
// routing web reconciles first, then h's bucket replicas, grouped by
// reconcile peer (the first live co-replica) in separator order. Each
// group exchanges an outer merkle walk over per-bucket digests; a
// diverged bucket runs an inner key-level walk whose dirty positions
// come from the exact keys recorded by writeThrough, so only the leaves
// covering missed keys are re-shipped. Returns the number of storage
// units re-copied; all messages are charged to op against h.
func (b *BucketWeb) RestartHost(h sim.HostID, op *sim.Op) int {
	copied := b.web.RestartHost(h, op)
	var groups map[sim.HostID][]*wbucket
	var peers []sim.HostID
	for _, wb := range b.sortedBuckets() {
		if !b.bucketHasReplica(wb, h) {
			continue
		}
		count := b.bucketReplicaCount(wb)
		for slot := 0; slot < count; slot++ {
			if p := b.bucketReplicaAt(wb, slot); p != h && b.net.Alive(p) {
				if groups == nil {
					groups = make(map[sim.HostID][]*wbucket)
				}
				if _, ok := groups[p]; !ok {
					peers = append(peers, p)
				}
				groups[p] = append(groups[p], wb)
				break
			}
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		buckets := groups[p]
		var dirty []int
		for i, wb := range buckets {
			if len(b.missed[bucketMiss{wb, h}]) > 0 {
				dirty = append(dirty, i)
			}
		}
		cost := merkleDiff(len(buckets), dirty)
		for i := 0; i < cost.walk; i++ {
			op.Send(h) // per-bucket digest exchange with peer p
		}
		for _, i := range dirty {
			wb := buckets[i]
			k := bucketMiss{wb, h}
			pos := make([]int, 0, len(b.missed[k]))
			for _, key := range b.missed[k] {
				// Position in the fresh sorted order; a deleted key maps to
				// its would-be slot (merkleDiff clamps past-the-end).
				pos = append(pos, sort.Search(len(wb.keys), func(j int) bool { return wb.keys[j] >= key }))
			}
			ic := merkleDiff(len(wb.keys), pos)
			for j := 0; j < ic.msgs(); j++ {
				op.Send(h) // inner walk + diverged-leaf payloads
			}
			copied += ic.keys
			delete(b.missed, k)
		}
	}
	// Purge stale records for h: buckets repaired away while it was
	// down, or with no live peer left to reconcile against.
	for k := range b.missed {
		if k.h == h {
			delete(b.missed, k)
		}
	}
	return copied
}

// CheckInvariants verifies the separator web, that every bucket is keyed
// by its separator, sorted, hosted on a live host, and that separators
// in the ground list and buckets correspond one to one.
func (b *BucketWeb) CheckInvariants() error {
	if err := b.web.CheckInvariants(); err != nil {
		return err
	}
	ground := b.web.Ground()
	for min, wb := range b.buckets {
		if wb.min != min {
			return fmt.Errorf("bucket keyed %d has min %d", min, wb.min)
		}
		if !b.net.Alive(wb.host) {
			return fmt.Errorf("bucket %d on departed host %d", min, wb.host)
		}
		if want := b.replicaTarget(); b.bucketReplicaCount(wb) < want {
			return fmt.Errorf("bucket %d has %d replicas, want %d", min, b.bucketReplicaCount(wb), want)
		}
		for i, m := range wb.mirrors {
			if !b.net.Alive(m) {
				return fmt.Errorf("bucket %d mirror on dead host %d", min, m)
			}
			if m == wb.host || slices.Contains(wb.mirrors[:i], m) {
				return fmt.Errorf("bucket %d has duplicate replica %d", min, m)
			}
		}
		for i := 1; i < len(wb.keys); i++ {
			if wb.keys[i] <= wb.keys[i-1] {
				return fmt.Errorf("bucket %d keys out of order", min)
			}
		}
		if _, ok := ground.ByKey(min); !ok {
			return fmt.Errorf("bucket separator %d missing from routing web", min)
		}
	}
	if ground.Len() != len(b.buckets) {
		return fmt.Errorf("routing web holds %d separators for %d buckets", ground.Len(), len(b.buckets))
	}
	return nil
}

// Delete routes to the bucket and removes the key (separators persist,
// as in the bucket skip graph), writing through to every replica.
func (b *BucketWeb) Delete(key uint64, origin sim.HostID) (int, error) {
	min, ok, hops, err := b.web.Query(key, origin)
	if err != nil {
		return hops, err
	}
	if !ok {
		return hops, fmt.Errorf("core: key %d not found", key)
	}
	wb := b.buckets[min]
	i := sort.Search(len(wb.keys), func(i int) bool { return wb.keys[i] >= key })
	if i >= len(wb.keys) || wb.keys[i] != key {
		return hops, fmt.Errorf("core: key %d not found", key)
	}
	wb.keys = append(wb.keys[:i], wb.keys[i+1:]...)
	b.addBucketStorage(wb, -1)
	return hops + b.writeThrough(wb, key), nil
}
