package core

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestMerkleRootDetectsAnyDifference pins the fingerprint property: equal
// key sets hash equal, and flipping, inserting, or removing any single
// key changes the root.
func TestMerkleRootDetectsAnyDifference(t *testing.T) {
	rng := xrand.New(11)
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	base := merkleRoot(keys)
	if got := merkleRoot(append([]uint64(nil), keys...)); got != base {
		t.Fatalf("equal key sets hash differently: %x vs %x", got, base)
	}
	for i := range keys {
		mut := append([]uint64(nil), keys...)
		mut[i] ^= 1
		if merkleRoot(mut) == base {
			t.Fatalf("flipping key %d did not change the root", i)
		}
	}
	if merkleRoot(keys[:99]) == base {
		t.Fatal("dropping the last key did not change the root")
	}
	if merkleRoot(append([]uint64{42}, keys...)) == base {
		t.Fatal("prepending a key did not change the root")
	}
	if merkleRoot(nil) == base {
		t.Fatal("the empty unit hashes like a full one")
	}
}

// TestMerkleDiffCosts pins the reconcile cost model: a clean unit costs
// one root exchange and copies nothing; one diverged key costs a walk
// logarithmic in the unit size plus one leaf payload; full divergence
// degrades to shipping every leaf.
func TestMerkleDiffCosts(t *testing.T) {
	if c := merkleDiff(1024, nil); c.walk != 1 || c.leaves != 0 || c.keys != 0 {
		t.Fatalf("clean unit: %+v, want one root exchange and nothing copied", c)
	}
	// One diverged key: the walk descends one root-to-leaf path — the
	// root exchange plus one bundled-children reply per internal node on
	// the path, log2(leaves)+1 exchanges — and ships one leaf.
	c := merkleDiff(1024, []int{517})
	if maxWalk := 7 + 1; c.walk > maxWalk { // 1024 keys → 128 leaves → depth 7
		t.Fatalf("single divergence walk=%d, want <= %d", c.walk, maxWalk)
	}
	if c.leaves != 1 || c.keys != merkleLeafSpan {
		t.Fatalf("single divergence shipped %d leaves / %d keys, want 1 leaf of %d",
			c.leaves, c.keys, merkleLeafSpan)
	}
	// A deletion past the end of the fresh set lands in the last leaf.
	if c := merkleDiff(64, []int{64}); c.leaves != 1 || c.keys == 0 {
		t.Fatalf("trailing deletion: %+v, want one leaf payload", c)
	}
	// Full divergence ships every key, one message per leaf.
	all := make([]int, 256)
	for i := range all {
		all[i] = i
	}
	if c := merkleDiff(256, all); c.keys != 256 || c.leaves != merkleLeaves(256) {
		t.Fatalf("full divergence: %+v, want all %d keys in %d leaves", c, 256, merkleLeaves(256))
	}
	// The empty unit reconciles in one exchange even when the stale side
	// must drop keys (all divergence is deletion): the empty leaf ships an
	// empty payload telling the stale side to truncate.
	if c := merkleDiff(0, []int{0, 1, 2}); c.keys != 0 || c.msgs() > 2 {
		t.Fatalf("empty fresh unit: %+v, want no keys and <= 2 messages", c)
	}
}

// TestMerkleDiffCheaperThanFullCopy is the acceptance inequality behind
// incremental repair, modeled the way RestartHost reconciles a shard:
// an outer merkle walk over the shard's per-unit digests localizes the
// diverged units, then a per-unit key-level walk ships the diverged
// leaves. At <= 1% key divergence the total message cost is at most a
// tenth of re-copying the whole shard (one message per key, PR 5's
// full-re-replication price).
func TestMerkleDiffCheaperThanFullCopy(t *testing.T) {
	const units, perUnit = 100, 30
	full := units * perUnit
	d := full / 100 // 1% of the shard's keys diverged
	rng := xrand.New(9)
	dirtyByUnit := map[int][]int{}
	for i := 0; i < d; i++ {
		p := int(rng.Uint64n(uint64(full)))
		dirtyByUnit[p/perUnit] = append(dirtyByUnit[p/perUnit], p%perUnit)
	}
	var dirtyUnits []int
	for u := range dirtyByUnit {
		dirtyUnits = append(dirtyUnits, u)
	}
	cost := merkleDiff(units, dirtyUnits).walk // localization: digests only, no payloads yet
	for _, pos := range dirtyByUnit {
		cost += merkleDiff(perUnit, pos).msgs()
	}
	if cost*10 > full {
		t.Fatalf("shard of %d keys at 1%% divergence: merkle cost %d exceeds 10%% of full copy %d",
			full, cost, full)
	}
}
