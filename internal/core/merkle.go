package core

// Merkle trees over a storage unit's sorted key digests — the machinery
// behind incremental repair. Every replica of a unit (a block of a
// BlockedWeb, a bucket of a BucketWeb) can summarize its content as a
// binary hash tree: leaves cover merkleLeafSpan consecutive keys of the
// sorted digest list, internal nodes hash their children, and the root
// is an O(1)-word fingerprint of the whole unit. Two replicas reconcile
// by walking their trees top-down from the root, descending only into
// subtrees whose hashes differ and copying only the leaves that
// actually diverged — O(divergence · log n) messages instead of the
// O(n) full-unit copy PR 5's repair paid.
//
// The tree shape is a deterministic function of the key count alone
// (leaf i covers digests [i·span, (i+1)·span), internal nodes split the
// leaf index range at the midpoint), so two replicas of the same unit
// always build comparable trees without exchanging structure.

// merkleLeafSpan is the number of consecutive key digests one merkle
// leaf covers. Divergence is repaired at leaf granularity: one diverged
// key re-copies its whole leaf (up to merkleLeafSpan keys), the usual
// range-resync tradeoff between tree depth and copy amplification.
const merkleLeafSpan = 8

// merkleLeaves returns the leaf count of the tree over n keys. The
// empty unit still has one (empty) leaf so the root hash exists.
func merkleLeaves(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + merkleLeafSpan - 1) / merkleLeafSpan
}

// merkleMix combines two child hashes (an xorshift-multiply mix; only
// collision scattering matters, not cryptographic strength — the model
// counts messages, it does not defend against adversarial replicas).
func merkleMix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 32
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

// merkleLeafHash hashes one leaf's key digests (FNV-1a over the words).
func merkleLeafHash(keys []uint64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, k := range keys {
		for i := 0; i < 8; i++ {
			h ^= (k >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}

// merkleRoot returns the root hash of the tree over the sorted key
// digests. Equal key sets hash equal; any single-key difference changes
// the root (up to hash collisions).
func merkleRoot(keys []uint64) uint64 {
	var node func(lo, hi int) uint64 // over leaf indices [lo, hi)
	node = func(lo, hi int) uint64 {
		if hi-lo == 1 {
			klo := lo * merkleLeafSpan
			khi := klo + merkleLeafSpan
			if klo > len(keys) {
				klo = len(keys)
			}
			if khi > len(keys) {
				khi = len(keys)
			}
			return merkleLeafHash(keys[klo:khi])
		}
		mid := (lo + hi) / 2
		return merkleMix(node(lo, mid), node(mid, hi))
	}
	return node(0, merkleLeaves(len(keys)))
}

// merkleCost is the priced outcome of one tree reconcile.
type merkleCost struct {
	// walk counts the digest exchanges of the top-down descent: one
	// message for the root, then one per diverged internal node — its
	// mismatch reply bundles both children's digests (two words, still a
	// constant-size message), so clean siblings cost nothing extra and a
	// single diverged key walks in log2(leaves)+1 exchanges.
	walk int
	// leaves counts diverged-leaf payload messages: each leaf whose
	// hashes differ ships its (constant-size, <= merkleLeafSpan keys)
	// span as one message. Full re-replication, by contrast, pays one
	// message per unit — this bundling is where the incremental win
	// comes from.
	leaves int
	// keys counts the keys carried in those payloads (the re-copied
	// volume, reported as CopiedUnits by the public Restart).
	keys int
}

// msgs is the total messages the reconcile charges.
func (c merkleCost) msgs() int { return c.walk + c.leaves }

// merkleDiff prices reconciling a stale replica of a unit holding n
// sorted keys against a fresh one, given the positions (indices into
// the fresh sorted order, clamped to [0, n]; a deletion that no longer
// appears in the fresh set marks its would-be position) at which the
// two sides diverge. No divergence is the cheap case: one root exchange
// proves the replica clean and nothing is copied.
func merkleDiff(n int, dirtyPos []int) merkleCost {
	if len(dirtyPos) == 0 {
		return merkleCost{walk: 1}
	}
	leaves := merkleLeaves(n)
	dirty := make([]bool, leaves)
	for _, p := range dirtyPos {
		if p < 0 {
			p = 0
		}
		leaf := p / merkleLeafSpan
		if leaf >= leaves {
			leaf = leaves - 1
		}
		dirty[leaf] = true
	}
	anyDirty := func(lo, hi int) bool {
		for i := lo; i < hi; i++ {
			if dirty[i] {
				return true
			}
		}
		return false
	}
	c := merkleCost{walk: 1} // the root digest exchange
	var rec func(lo, hi int) // called only on diverged subtrees
	rec = func(lo, hi int) {
		if hi-lo == 1 {
			// A diverged leaf's digest arrived bundled with its parent's
			// reply; only the payload ships, priced under leaves.
			c.leaves++
			klo := lo * merkleLeafSpan
			khi := klo + merkleLeafSpan
			if khi > n {
				khi = n
			}
			if khi > klo {
				c.keys += khi - klo
			}
			return
		}
		c.walk++ // expand: one reply carries both children's digests
		mid := (lo + hi) / 2
		if anyDirty(lo, mid) {
			rec(lo, mid)
		}
		if anyDirty(mid, hi) {
			rec(mid, hi)
		}
	}
	rec(0, leaves)
	return c
}
