package core

import (
	"math"
	"sort"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func bruteFloorSlice(keys []uint64, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for _, k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func newBlocked(t testing.TB, n, m int, seed uint64) (*BlockedWeb, *sim.Network, []uint64) {
	t.Helper()
	rng := xrand.New(seed)
	keys := distinctKeys(rng, n, 1<<40)
	net := sim.NewNetwork(maxInt(n, 4))
	w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: seed, M: m})
	if err != nil {
		t.Fatal(err)
	}
	return w, net, keys
}

func TestBlockedQueryMatchesBruteForce(t *testing.T) {
	w, net, keys := newBlocked(t, 600, 16, 1)
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(71)
	for i := 0; i < 2000; i++ {
		q := rng.Uint64n(1 << 41)
		got, ok, _, _ := w.Query(q, sim.HostID(rng.Intn(net.Hosts())))
		want, wok := bruteFloorSlice(keys, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("query %d: got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestBlockedQueryStoredKeys(t *testing.T) {
	w, _, keys := newBlocked(t, 300, 8, 2)
	for _, k := range keys {
		got, ok, _, _ := w.Query(k, 0)
		if !ok || got != k {
			t.Fatalf("Query(%d) = %d,%v", k, got, ok)
		}
	}
}

func TestBlockedHopsImproveWithM(t *testing.T) {
	// At fixed n, raising M must lower query hops: Q = O(log n / log M).
	rng := xrand.New(3)
	const n = 8192
	keys := distinctKeys(rng, n, 1<<40)
	var means []float64
	for _, m := range []int{4, 16, 256} {
		net := sim.NewNetwork(n)
		w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: 3, M: m})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 400
		qr := xrand.New(4)
		for i := 0; i < queries; i++ {
			_, _, hops, _ := w.Query(qr.Uint64n(1<<40), sim.HostID(qr.Intn(n)))
			total += hops
		}
		means = append(means, float64(total)/queries)
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Fatalf("hops not decreasing in M: %v", means)
	}
	// M = 256 gives L = 8: hops should be well under half of M = 4 (L=2).
	if means[2] > means[0]*0.6 {
		t.Fatalf("large-M improvement too small: %v", means)
	}
}

func TestBlockedHopsSubLogarithmic(t *testing.T) {
	// With M = log n, hops/log(n) should SHRINK as n grows (the
	// log n / log log n separation from plain skip graphs).
	rng := xrand.New(5)
	var ratios []float64
	for _, n := range []int{512, 4096, 32768} {
		keys := distinctKeys(rng.Split(), n, 1<<50)
		net := sim.NewNetwork(n)
		w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 300
		qr := rng.Split()
		for i := 0; i < queries; i++ {
			_, _, hops, _ := w.Query(qr.Uint64n(1<<50), sim.HostID(qr.Intn(n)))
			total += hops
		}
		ratios = append(ratios, float64(total)/queries/math.Log2(float64(n)))
	}
	if ratios[2] >= ratios[0] {
		t.Fatalf("hops/log n not shrinking: %v", ratios)
	}
}

func TestBlockedInsertDelete(t *testing.T) {
	w, net, keys := newBlocked(t, 200, 16, 6)
	rng := xrand.New(7)
	extra := distinctKeys(rng, 500, 1<<40)
	present := map[uint64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	inserted := 0
	for _, k := range extra {
		if present[k] {
			continue
		}
		if _, err := w.Insert(k, sim.HostID(int(k)%net.Hosts())); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		present[k] = true
		inserted++
		if inserted%50 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", inserted, err)
			}
		}
	}
	var all []uint64
	for k := range present {
		all = append(all, k)
	}
	for i, k := range all {
		if i%2 == 1 {
			continue
		}
		if _, err := w.Delete(k, sim.HostID(i%net.Hosts())); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		delete(present, k)
		if i%60 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qr := xrand.New(8)
	var live []uint64
	for k := range present {
		live = append(live, k)
	}
	for i := 0; i < 1000; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _, _ := w.Query(q, sim.HostID(qr.Intn(net.Hosts())))
		want, wok := bruteFloorSlice(live, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after churn: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestBlockedDuplicateAndMissing(t *testing.T) {
	w, _, keys := newBlocked(t, 64, 8, 9)
	if _, err := w.Insert(keys[0], 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := w.Delete(9999999999999, 0); err == nil {
		t.Fatal("missing delete accepted")
	}
}

func TestBlockedStorageWithinM(t *testing.T) {
	// Mean per-host storage should be O(M) when H = c*n*log(n)/M hosts
	// are available; with H = n hosts and M = log n it stays O(log n).
	rng := xrand.New(10)
	for _, n := range []int{1024, 4096} {
		keys := distinctKeys(rng.Split(), n, 1<<40)
		net := sim.NewNetwork(n)
		if _, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: uint64(n)}); err != nil {
			t.Fatal(err)
		}
		s := net.Snapshot()
		logn := math.Log2(float64(n))
		if s.MeanStorage > 8*logn {
			t.Fatalf("n=%d: mean storage %.1f above O(log n)", n, s.MeanStorage)
		}
	}
}

func TestBucketWebQueryMatchesBruteForce(t *testing.T) {
	rng := xrand.New(11)
	keys := distinctKeys(rng, 2000, 1<<40)
	net := sim.NewNetwork(256)
	b, err := NewBucketWeb(net, keys, 16, 16, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2000 {
		t.Fatalf("len %d", b.Len())
	}
	for i := 0; i < 1500; i++ {
		q := rng.Uint64n(1 << 41)
		got, ok, _, _ := b.Query(q, sim.HostID(rng.Intn(256)))
		want, wok := bruteFloorSlice(keys, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("query %d: got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestBucketWebConstantHopsForLargeM(t *testing.T) {
	// With M = H^(1/2) >> log H, queries should take only a handful of
	// hops; with huge M (one stratum) nearly constant.
	rng := xrand.New(12)
	keys := distinctKeys(rng, 16384, 1<<50)
	net := sim.NewNetwork(1024)
	b, err := NewBucketWeb(net, keys, 16, 1024, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const queries = 300
	for i := 0; i < queries; i++ {
		_, _, hops, _ := b.Query(rng.Uint64n(1<<50), sim.HostID(rng.Intn(1024)))
		total += hops
	}
	if mean := float64(total) / queries; mean > 8 {
		t.Fatalf("mean hops %.1f not near-constant for M = H", mean)
	}
}

func TestBucketWebChurn(t *testing.T) {
	rng := xrand.New(13)
	keys := distinctKeys(rng, 1000, 1<<40)
	net := sim.NewNetwork(128)
	b, err := NewBucketWeb(net, keys[:600], 8, 16, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	present := map[uint64]bool{}
	for _, k := range keys[:600] {
		present[k] = true
	}
	for i, k := range keys[600:] {
		if _, err := b.Insert(k, sim.HostID(i%128)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		present[k] = true
	}
	for i := 0; i < 300; i++ {
		if _, err := b.Delete(keys[i], sim.HostID(i%128)); err != nil {
			t.Fatalf("delete %d: %v", keys[i], err)
		}
		delete(present, keys[i])
	}
	var live []uint64
	for k := range present {
		live = append(live, k)
	}
	qr := xrand.New(14)
	for i := 0; i < 800; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _, _ := b.Query(q, sim.HostID(qr.Intn(128)))
		want, wok := bruteFloorSlice(live, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after churn: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestBlockedRangeMatchesBruteForce(t *testing.T) {
	w, net, keys := newBlocked(t, 400, 16, 15)
	sorted := append([]uint64(nil), keys...)
	sortUint64(sorted)
	rng := xrand.New(88)
	for trial := 0; trial < 300; trial++ {
		lo := rng.Uint64n(1 << 41)
		hi := lo + rng.Uint64n(1<<38)
		got, hops, _ := w.Range(lo, hi, sim.HostID(rng.Intn(net.Hosts())))
		var want []uint64
		for _, k := range sorted {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Range(%d,%d): got %d keys want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range(%d,%d)[%d] = %d want %d", lo, hi, i, got[i], want[i])
			}
		}
		if hops < 0 {
			t.Fatal("negative hops")
		}
	}
}

func TestBucketWebRangeMatchesBruteForce(t *testing.T) {
	rng := xrand.New(91)
	keys := distinctKeys(rng, 1500, 1<<40)
	net := sim.NewNetwork(128)
	b, err := NewBucketWeb(net, keys, 12, 16, 91, 1)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint64(nil), keys...)
	sortUint64(sorted)
	for trial := 0; trial < 300; trial++ {
		lo := rng.Uint64n(1 << 41)
		hi := lo + rng.Uint64n(1<<38)
		got, _, _ := b.Range(lo, hi, sim.HostID(rng.Intn(128)))
		var want []uint64
		for _, k := range sorted {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Range(%d,%d): got %d keys want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range(%d,%d)[%d] = %d want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Range starting below every key covers the whole prefix.
	got, _, _ := b.Range(0, sorted[10], 0)
	if len(got) != 11 {
		t.Fatalf("prefix range returned %d keys, want 11", len(got))
	}
}

func sortUint64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
