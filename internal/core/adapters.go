package core

import (
	"fmt"
	"hash/fnv"
	"slices"
	"sort"

	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/trie"
)

// ---------------------------------------------------------------------------
// One-dimensional sorted lists (Section 2.1, Lemma 1).

// ListOps adapts ListLevel to the skip-web engine. Items and query points
// are uint64 keys. The Change buffers are reused across updates (updates
// are single-writer), so the steady-state update path allocates nothing
// here; construct one instance per web with NewListOps.
type ListOps struct {
	addedBuf, touchedBuf, removedBuf, remapBuf, anchorBuf [1]RangeID
}

// NewListOps creates the adapter.
func NewListOps() *ListOps { return &ListOps{} }

var _ Ops[*ListLevel, uint64, uint64] = (*ListOps)(nil)
var _ BulkOps[*ListLevel, uint64] = (*ListOps)(nil)

// Build constructs the level structure over keys.
func (*ListOps) Build(items []uint64) (*ListLevel, error) { return NewListLevel(items) }

// SortForBuild orders keys ascending — the canonical build order.
func (*ListOps) SortForBuild(items []uint64) bool {
	slices.Sort(items)
	return true
}

// BuildSorted is the O(n) bulk-load build over ascending keys.
func (*ListOps) BuildSorted(items []uint64) (*ListLevel, error) { return NewListLevelSorted(items) }

// VisitRanges enumerates live ranges without allocating.
func (*ListOps) VisitRanges(l *ListLevel, visit func(RangeID) bool) { l.VisitRanges(visit) }

// Contains tests range membership.
func (*ListOps) Contains(l *ListLevel, r RangeID, q uint64) bool { return l.Contains(r, q) }

// Depth is constant: list ranges partition the key space.
func (*ListOps) Depth(l *ListLevel, r RangeID) int { return 0 }

// Step walks one range toward q.
func (*ListOps) Step(l *ListLevel, r RangeID, q uint64) RangeID { return l.Step(r, q) }

// Anchors maps a child range to the parent range holding the same key;
// the parent terminal is then an expected-O(1) Step walk away (Lemma 1).
// The result aliases the adapter's scratch (the engine copies it).
func (o *ListOps) Anchors(child, parent *ListLevel, r RangeID) ([]RangeID, error) {
	if child.IsHead(r) {
		o.anchorBuf[0] = parent.Head()
		return o.anchorBuf[:], nil
	}
	pr, ok := parent.ByKey(child.Key(r))
	if !ok {
		return nil, fmt.Errorf("core: key %d of child level missing from parent level", child.Key(r))
	}
	o.anchorBuf[0] = pr
	return o.anchorBuf[:], nil
}

// ChildTerminal walks left from the parent terminal to the nearest key
// present in the child level — an expected O(1)-step walk, since each
// parent key is in the child with probability 1/2.
func (*ListOps) ChildTerminal(child, parent *ListLevel, tp RangeID, q uint64, steps *int) (RangeID, error) {
	cur := tp
	for {
		if parent.IsHead(cur) {
			return child.Head(), nil
		}
		if cr, ok := child.ByKey(parent.Key(cur)); ok {
			return cr, nil
		}
		cur = parent.Prev(cur)
		*steps++
	}
}

// Payload is one storage unit: a list range is a single key node, and a
// churn migration moves it in one message.
func (*ListOps) Payload(l *ListLevel, r RangeID) int { return 1 }

// Locate performs a full local search.
func (*ListOps) Locate(l *ListLevel, q uint64) RangeID { return l.Locate(q) }

// QueryOf is the identity: items are their own query points.
func (*ListOps) QueryOf(x uint64) uint64 { return x }

// CodeOf is the identity; the engine mixes it with the web seed.
func (*ListOps) CodeOf(x uint64) uint64 { return x }

// Insert splices the key in after the hinted terminal. The Change
// aliases the adapter's reusable buffers (see the Change contract).
func (o *ListOps) Insert(l *ListLevel, x uint64, q uint64, hint RangeID) (Change, error) {
	id, err := l.InsertKey(x, hint)
	if err != nil {
		return Change{}, err
	}
	o.addedBuf[0] = id
	o.touchedBuf[0] = l.Prev(id)
	return Change{Added: o.addedBuf[:], Touched: o.touchedBuf[:]}, nil
}

// Delete unsplices the key; the predecessor inherits its interval.
func (o *ListOps) Delete(l *ListLevel, x uint64, q uint64) (Change, error) {
	dead, pred, err := l.DeleteKey(x)
	if err != nil {
		return Change{}, err
	}
	o.removedBuf[0], o.remapBuf[0] = dead, pred
	o.touchedBuf[0] = pred
	return Change{
		Removed: o.removedBuf[:],
		RemapTo: o.remapBuf[:],
		Touched: o.touchedBuf[:],
	}, nil
}

// ---------------------------------------------------------------------------
// Compressed quadtrees / octrees (Section 3.1, Lemma 3).

// QuadOps adapts quadtree.Tree to the skip-web engine. Items are points;
// query points are Morton codes. The Change buffers are reused across
// updates (updates are single-writer), so the steady-state update path
// allocates only what the tree itself must.
type QuadOps struct {
	// Dim is the dimension (2 = quadtree, 3 = octree, up to 6).
	Dim   int
	proto *quadtree.Tree

	addedBuf, removedBuf, remapBuf []RangeID
	anchorBuf                      [1]RangeID
	codeBuf                        []uint64
}

// NewQuadOps creates the adapter for d-dimensional points.
func NewQuadOps(d int) *QuadOps {
	return &QuadOps{Dim: d, proto: quadtree.New(d)}
}

var _ Ops[*quadtree.Tree, quadtree.Point, uint64] = (*QuadOps)(nil)
var _ BulkOps[*quadtree.Tree, quadtree.Point] = (*QuadOps)(nil)

// Code converts a point to its Morton code (the engine's query type).
func (o *QuadOps) Code(p quadtree.Point) (uint64, error) { return o.proto.Code(p) }

// Build constructs the compressed tree.
func (o *QuadOps) Build(items []quadtree.Point) (*quadtree.Tree, error) {
	return quadtree.Build(o.Dim, items)
}

// SortForBuild orders points by Morton code — the canonical build order
// (quadtree.Build sorts by code internally, so the built tree is
// order-independent). Invalid coordinates report false: the plain Build
// path then surfaces its usual error.
func (o *QuadOps) SortForBuild(items []quadtree.Point) bool {
	codes := o.codeBuf[:0]
	for _, p := range items {
		c, err := o.proto.Code(p)
		if err != nil {
			o.codeBuf = codes[:0]
			return false
		}
		codes = append(codes, c)
	}
	o.codeBuf = codes[:0]
	sort.Sort(&pointsByCode{items: items, codes: codes})
	return true
}

// pointsByCode sorts points and their precomputed Morton codes together.
type pointsByCode struct {
	items []quadtree.Point
	codes []uint64
}

func (s *pointsByCode) Len() int           { return len(s.items) }
func (s *pointsByCode) Less(i, j int) bool { return s.codes[i] < s.codes[j] }
func (s *pointsByCode) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.codes[i], s.codes[j] = s.codes[j], s.codes[i]
}

// BuildSorted is the O(n) bulk-load build over code-ordered points.
func (o *QuadOps) BuildSorted(items []quadtree.Point) (*quadtree.Tree, error) {
	return quadtree.BuildSorted(o.Dim, items)
}

// VisitRanges enumerates live nodes without allocating (node and link
// ranges coincide on cells).
func (o *QuadOps) VisitRanges(l *quadtree.Tree, visit func(RangeID) bool) {
	l.VisitNodes(func(n quadtree.NodeID) bool { return visit(RangeID(n)) })
}

// Contains tests cell membership of the query code.
func (o *QuadOps) Contains(l *quadtree.Tree, r RangeID, q uint64) bool {
	return l.CellContainsCode(l.CellOf(quadtree.NodeID(r)), q)
}

// Depth is the cell prefix length: deeper cells are finer.
func (o *QuadOps) Depth(l *quadtree.Tree, r RangeID) int {
	return l.CellOf(quadtree.NodeID(r)).PLen
}

// Step descends one node toward the query code.
func (o *QuadOps) Step(l *quadtree.Tree, r RangeID, q uint64) RangeID {
	next := l.StepToward(quadtree.NodeID(r), q)
	if next == quadtree.NoNode {
		return NoRange
	}
	return RangeID(next)
}

// Anchors returns the parent node with the identical cell: every cell of
// D(T) is a cell of D(S) for T ⊆ S, since both are LCA cells of the same
// points. The result aliases the adapter's scratch (the engine copies it).
func (o *QuadOps) Anchors(child, parent *quadtree.Tree, r RangeID) ([]RangeID, error) {
	c := child.CellOf(quadtree.NodeID(r))
	pid, ok := parent.NodeByCell(c)
	if !ok {
		return nil, fmt.Errorf("core: cell {%b %d} of child tree missing from parent tree", c.Prefix, c.PLen)
	}
	o.anchorBuf[0] = RangeID(pid)
	return o.anchorBuf[:], nil
}

// ChildTerminal climbs from the parent terminal until reaching a cell
// that exists in the child tree — expected O(1) steps by Lemma 3.
func (o *QuadOps) ChildTerminal(child, parent *quadtree.Tree, tp RangeID, q uint64, steps *int) (RangeID, error) {
	cur := quadtree.NodeID(tp)
	for cur != quadtree.NoNode {
		if cid, ok := child.NodeByCell(parent.CellOf(cur)); ok {
			return RangeID(cid), nil
		}
		cur = parent.Parent(cur)
		*steps++
	}
	return NoRange, fmt.Errorf("core: no ancestor cell of parent terminal exists in child tree")
}

// Payload is one storage unit: a quadtree range is one compressed-tree
// node (cell plus, at leaves, its single point), moved in one message
// during churn.
func (o *QuadOps) Payload(l *quadtree.Tree, r RangeID) int { return 1 }

// Locate performs a full local point location.
func (o *QuadOps) Locate(l *quadtree.Tree, q uint64) RangeID {
	id, _ := l.Locate(q)
	if id == quadtree.NoNode {
		return NoRange
	}
	return RangeID(id)
}

// QueryOf returns the point's Morton code; the point must be valid for
// the configured dimension (the public API validates before reaching
// here).
func (o *QuadOps) QueryOf(x quadtree.Point) uint64 {
	c, err := o.proto.Code(x)
	if err != nil {
		panic(fmt.Sprintf("core: invalid point reached QuadOps.QueryOf: %v", err))
	}
	return c
}

// CodeOf equals QueryOf: the Morton code is injective.
func (o *QuadOps) CodeOf(x quadtree.Point) uint64 { return o.QueryOf(x) }

// Insert adds the point; hint is unused (tree inserts are local walks).
// The Change aliases the adapter's reusable buffers.
func (o *QuadOps) Insert(l *quadtree.Tree, x quadtree.Point, q uint64, hint RangeID) (Change, error) {
	res, err := l.Insert(x)
	if err != nil {
		return Change{}, err
	}
	added := o.addedBuf[:0]
	for _, n := range res.Created {
		added = append(added, RangeID(n))
	}
	o.addedBuf = added[:0]
	return Change{Added: added}, nil
}

// Delete removes the point, remapping dead cells to the survivor.
func (o *QuadOps) Delete(l *quadtree.Tree, x quadtree.Point, q uint64) (Change, error) {
	res, err := l.Delete(x)
	if err != nil {
		return Change{}, err
	}
	removed, remap := o.removedBuf[:0], o.remapBuf[:0]
	for _, n := range res.Removed {
		removed = append(removed, RangeID(n))
		if res.Survivor != quadtree.NoNode {
			remap = append(remap, RangeID(res.Survivor))
		} else {
			remap = append(remap, NoRange)
		}
	}
	o.removedBuf, o.remapBuf = removed[:0], remap[:0]
	return Change{Removed: removed, RemapTo: remap}, nil
}

// ---------------------------------------------------------------------------
// Compressed digital tries (Section 3.2, Lemma 4).

// TrieOps adapts trie.Trie to the skip-web engine. Items and query points
// are strings. The Change buffers are reused across updates (updates are
// single-writer); construct one instance per web with NewTrieOps.
type TrieOps struct {
	addedBuf, removedBuf, remapBuf []RangeID
	anchorBuf                      [1]RangeID
}

// NewTrieOps creates the adapter.
func NewTrieOps() *TrieOps { return &TrieOps{} }

var _ Ops[*trie.Trie, string, string] = (*TrieOps)(nil)
var _ BulkOps[*trie.Trie, string] = (*TrieOps)(nil)

// Build constructs the compressed trie.
func (*TrieOps) Build(items []string) (*trie.Trie, error) { return trie.Build(items) }

// SortForBuild orders keys lexicographically — the canonical build order
// (trie.Build sorts internally, so the built trie is order-independent).
func (*TrieOps) SortForBuild(items []string) bool {
	sort.Strings(items)
	return true
}

// BuildSorted is the bulk-load build over pre-sorted keys, skipping the
// per-level re-sort.
func (*TrieOps) BuildSorted(items []string) (*trie.Trie, error) { return trie.BuildSorted(items) }

// VisitRanges enumerates live nodes without allocating.
func (*TrieOps) VisitRanges(l *trie.Trie, visit func(RangeID) bool) {
	l.VisitNodes(func(n trie.NodeID) bool { return visit(RangeID(n)) })
}

// Contains reports whether q extends the node's locus.
func (*TrieOps) Contains(l *trie.Trie, r RangeID, q string) bool {
	return l.LocusContains(trie.NodeID(r), q)
}

// Depth is the locus length.
func (*TrieOps) Depth(l *trie.Trie, r RangeID) int { return len(l.Locus(trie.NodeID(r))) }

// Step descends one node toward q.
func (*TrieOps) Step(l *trie.Trie, r RangeID, q string) RangeID {
	next := l.StepToward(trie.NodeID(r), q)
	if next == trie.NoNode {
		return NoRange
	}
	return RangeID(next)
}

// Anchors returns the parent node at the identical locus: every locus of
// D(T) (a key or a branching point of T ⊆ S) is a locus of D(S). The
// result aliases the adapter's scratch (the engine copies it).
func (o *TrieOps) Anchors(child, parent *trie.Trie, r RangeID) ([]RangeID, error) {
	locus := child.Locus(trie.NodeID(r))
	pid, ok := parent.NodeByLocus(locus)
	if !ok {
		return nil, fmt.Errorf("core: locus %q of child trie missing from parent trie", locus)
	}
	o.anchorBuf[0] = RangeID(pid)
	return o.anchorBuf[:], nil
}

// ChildTerminal climbs from the parent terminal until reaching a locus
// that exists in the child trie — expected O(1) steps by Lemma 4.
func (*TrieOps) ChildTerminal(child, parent *trie.Trie, tp RangeID, q string, steps *int) (RangeID, error) {
	cur := trie.NodeID(tp)
	for cur != trie.NoNode {
		if cid, ok := child.NodeByLocus(parent.Locus(cur)); ok {
			return RangeID(cid), nil
		}
		cur = parent.Parent(cur)
		*steps++
	}
	return NoRange, fmt.Errorf("core: no ancestor locus of parent terminal exists in child trie")
}

// Payload is one storage unit: a trie range is one compressed-trie node
// (locus plus child edges), moved in one message during churn.
func (*TrieOps) Payload(l *trie.Trie, r RangeID) int { return 1 }

// Locate performs a full local search.
func (*TrieOps) Locate(l *trie.Trie, q string) RangeID {
	id, _ := l.Locate(q)
	return RangeID(id)
}

// QueryOf is the identity.
func (*TrieOps) QueryOf(x string) string { return x }

// CodeOf hashes the string (FNV-1a); collisions only degrade leaf sizes.
func (*TrieOps) CodeOf(x string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(x))
	return h.Sum64()
}

// Insert adds the key. The Change aliases the adapter's reusable buffers.
func (o *TrieOps) Insert(l *trie.Trie, x string, q string, hint RangeID) (Change, error) {
	res, err := l.Insert(x)
	if err != nil {
		return Change{}, err
	}
	added := o.addedBuf[:0]
	for _, n := range res.Created {
		added = append(added, RangeID(n))
	}
	o.addedBuf = added[:0]
	return Change{Added: added}, nil
}

// Delete removes the key, remapping pruned loci to the survivor.
func (o *TrieOps) Delete(l *trie.Trie, x string, q string) (Change, error) {
	res, err := l.Delete(x)
	if err != nil {
		return Change{}, err
	}
	removed, remap := o.removedBuf[:0], o.remapBuf[:0]
	for _, n := range res.Removed {
		removed = append(removed, RangeID(n))
		if res.Survivor != trie.NoNode {
			remap = append(remap, RangeID(res.Survivor))
		} else {
			remap = append(remap, NoRange)
		}
	}
	o.removedBuf, o.remapBuf = removed[:0], remap[:0]
	return Change{Removed: removed, RemapTo: remap}, nil
}

// ---------------------------------------------------------------------------
// Trapezoidal maps (Section 3.3, Lemma 5). Static: Build + Query only,
// matching the paper's amortization caveat for trapezoid updates.

// TrapOps adapts trapmap.Map to the skip-web engine. Items are segments;
// query points are planar points.
type TrapOps struct {
	// Bounds is the bounding box for every level's map.
	Bounds trapmap.Rect
}

var _ Ops[*trapmap.Map, trapmap.Segment, trapmap.Point] = TrapOps{}

// Build constructs the trapezoidal map of the subset.
func (o TrapOps) Build(items []trapmap.Segment) (*trapmap.Map, error) {
	return trapmap.Build(items, o.Bounds)
}

// VisitRanges enumerates the trapezoids without allocating: trapezoid
// IDs are dense, so the iteration is a plain counted loop.
func (o TrapOps) VisitRanges(l *trapmap.Map, visit func(RangeID) bool) {
	for i, n := 0, l.NumTraps(); i < n; i++ {
		if !visit(RangeID(i)) {
			return
		}
	}
}

// Contains tests trapezoid membership.
func (o TrapOps) Contains(l *trapmap.Map, r RangeID, q trapmap.Point) bool {
	return l.Contains(trapmap.TrapID(r), q)
}

// Depth is constant: trapezoids partition the box.
func (o TrapOps) Depth(l *trapmap.Map, r RangeID) int { return 0 }

// Step never moves: the conflict-list hyperlinks land directly on the
// parent terminal.
func (o TrapOps) Step(l *trapmap.Map, r RangeID, q trapmap.Point) RangeID { return NoRange }

// Anchors is the full conflict list C(Q, S_b) — expected O(1) by Lemma 5.
func (o TrapOps) Anchors(child, parent *trapmap.Map, r RangeID) ([]RangeID, error) {
	conf := parent.Conflicts(child.Trap(trapmap.TrapID(r)))
	out := make([]RangeID, len(conf))
	for i, c := range conf {
		out[i] = RangeID(c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: trapezoid %d has empty conflict list", r)
	}
	return out, nil
}

// ChildTerminal is unsupported: the trapezoidal-map skip-web is static.
func (o TrapOps) ChildTerminal(child, parent *trapmap.Map, tp RangeID, q trapmap.Point, steps *int) (RangeID, error) {
	return NoRange, ErrStatic
}

// Payload is one storage unit: a trapezoid is one face record (its
// bounding segments are shared references), moved in one message during
// churn.
func (o TrapOps) Payload(l *trapmap.Map, r RangeID) int { return 1 }

// Locate performs full local point location.
func (o TrapOps) Locate(l *trapmap.Map, q trapmap.Point) RangeID {
	id, err := l.Locate(q)
	if err != nil {
		return NoRange
	}
	return RangeID(id)
}

// QueryOf returns the segment's left endpoint (used only for membership
// bits; the trapezoid web is static).
func (o TrapOps) QueryOf(x trapmap.Segment) trapmap.Point { return x.A }

// CodeOf hashes the segment coordinates.
func (o TrapOps) CodeOf(x trapmap.Segment) uint64 {
	h := fnv.New64a()
	var buf [32]byte
	put := func(off int, v int64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, x.A.X)
	put(8, x.A.Y)
	put(16, x.B.X)
	put(24, x.B.Y)
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// Insert is unsupported: the trapezoidal-map skip-web is static.
func (o TrapOps) Insert(l *trapmap.Map, x trapmap.Segment, q trapmap.Point, hint RangeID) (Change, error) {
	return Change{}, ErrStatic
}

// Delete is unsupported: the trapezoidal-map skip-web is static.
func (o TrapOps) Delete(l *trapmap.Map, x trapmap.Segment, q trapmap.Point) (Change, error) {
	return Change{}, ErrStatic
}
