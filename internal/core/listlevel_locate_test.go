package core

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestLocateAgreesWithWalk is the property test for the binary-search
// Locate: across random insert/delete sequences, the sorted-order search
// must agree with the pre-refactor linked-list head walk on every probe.
func TestLocateAgreesWithWalk(t *testing.T) {
	rng := xrand.New(0x10c473)
	for trial := 0; trial < 50; trial++ {
		l, err := NewListLevel(nil)
		if err != nil {
			t.Fatal(err)
		}
		present := make(map[uint64]bool)
		for step := 0; step < 400; step++ {
			k := rng.Uint64n(2048)
			switch rng.Intn(3) {
			case 0:
				if !present[k] {
					if _, err := l.InsertKey(k, l.Locate(k)); err != nil {
						t.Fatalf("trial %d step %d: insert %d: %v", trial, step, k, err)
					}
					present[k] = true
				}
			case 1:
				if present[k] {
					if _, _, err := l.DeleteKey(k); err != nil {
						t.Fatalf("trial %d step %d: delete %d: %v", trial, step, k, err)
					}
					delete(present, k)
				}
			default:
				// probe only
			}
			q := rng.Uint64n(2560)
			if got, want := l.Locate(q), l.locateWalk(q); got != want {
				t.Fatalf("trial %d step %d: Locate(%d) = %d, walk = %d", trial, step, q, got, want)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestInsertKeyDeadHintFallback is the regression test for InsertKey's
// fallback path: with a NoRange or dead hint on a 10k-key list, the
// splice must land correctly (it previously restarted at the head
// sentinel and Stepped O(n) times; it now binary-searches).
func TestInsertKeyDeadHintFallback(t *testing.T) {
	const n = 10000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 4
	}
	l, err := NewListLevel(keys)
	if err != nil {
		t.Fatal(err)
	}

	// NoRange hint: splice near the far end of the list.
	id, err := l.InsertKey(uint64(n-1)*4+1, NoRange)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.Prev(id); l.IsHead(p) || l.Key(p) != uint64(n-1)*4 {
		t.Fatalf("NoRange hint splice: prev of new range is %d", p)
	}

	// Dead hint: delete a key, then insert using its stale range as hint.
	dead, _, err := l.DeleteKey(uint64(n / 2 * 4))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := l.InsertKey(uint64(n-2)*4+2, dead)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.Prev(id2); l.IsHead(p) || l.Key(p) != uint64(n-2)*4 {
		t.Fatalf("dead hint splice: prev of new range is %d", p)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The fallback must run on the sorted-order index, not a head walk:
	// the index bounds every Locate to O(log n) binary probes plus at
	// most pendLimit pending entries and deadLimit tombstone skips.
	if !l.indexed {
		t.Fatalf("a %d-key level must carry the sorted-order index", l.Len())
	}
	if len(l.pendKeys) > l.pendLimit() {
		t.Fatalf("pending buffer exceeded its bound: %d > %d", len(l.pendKeys), l.pendLimit())
	}
	if l.dead > l.deadLimit() {
		t.Fatalf("tombstones exceeded their bound: %d > %d", l.dead, l.deadLimit())
	}
}

// TestIndexRebuildAmortization drives enough churn through a level to
// force several pending-buffer and tombstone rebuilds and verifies the
// sorted-order index stays consistent throughout.
func TestIndexRebuildAmortization(t *testing.T) {
	l, err := NewListLevel(nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	present := map[uint64]bool{}
	for i := 0; i < 10*pendMax; i++ {
		k := rng.Uint64n(1 << 20)
		if present[k] {
			continue
		}
		if _, err := l.InsertKey(k, NoRange); err != nil {
			t.Fatal(err)
		}
		present[k] = true
	}
	removed := 0
	for k := range present {
		if removed >= 3*deadMax {
			break
		}
		if _, _, err := l.DeleteKey(k); err != nil {
			t.Fatal(err)
		}
		delete(present, k)
		removed++
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := range present {
		if got := l.Locate(k); l.IsHead(got) || l.Key(got) != k {
			t.Fatalf("Locate(%d) = %d after churn", k, got)
		}
	}
}
