package core

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// hostDrained asserts that host h holds no storage after a rehome.
func hostDrained(t *testing.T, net *sim.Network, h sim.HostID) {
	t.Helper()
	if got := net.Storage(h); got != 0 {
		t.Fatalf("host %d still holds %d storage units after rehome", h, got)
	}
}

func TestWebRehomeDrainsDepartedHost(t *testing.T) {
	rng := xrand.New(7)
	keys := distinctKeys(rng, 300, 1<<40)
	net := sim.NewNetwork(16)
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := net.TotalMessages()
	victim := sim.HostID(5)
	if net.Storage(victim) == 0 {
		t.Fatalf("victim host %d holds no storage; pick another seed", victim)
	}
	net.RemoveHost(victim)
	op := net.NewOp(victim)
	w.Rehome(victim, op)
	op.Free()
	hostDrained(t, net, victim)
	if net.TotalMessages() == before {
		t.Fatal("rehome charged no migration messages")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rehome: %v", err)
	}
	// Every key still reachable by a routed query from a live origin.
	g := w.GroundStructure()
	for i, k := range keys {
		res, err := w.Query(k, net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("query %d after rehome: %v", k, err)
		}
		if g.IsHead(res.Range) || g.Key(res.Range) != k {
			t.Fatalf("key %d lost after rehome", k)
		}
	}
}

func TestWebRebalanceMovesShareToJoiner(t *testing.T) {
	rng := xrand.New(9)
	keys := distinctKeys(rng, 400, 1<<40)
	net := sim.NewNetwork(8)
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h := net.AddHost()
	op := net.NewOp(h)
	w.Rebalance(h, op)
	op.Free()
	if net.Storage(h) == 0 {
		t.Fatal("joiner received no storage from rebalance")
	}
	// The joiner's share should be in the ballpark of 1/H of the mean.
	mean := net.Snapshot().MeanStorage
	if got := float64(net.Storage(h)); got > 3*mean {
		t.Fatalf("joiner over-loaded: %v vs mean %v", got, mean)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rebalance: %v", err)
	}
}

func TestBlockedWebChurn(t *testing.T) {
	rng := xrand.New(11)
	keys := distinctKeys(rng, 600, 1<<40)
	net := sim.NewNetwork(12)
	w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Leave: every block off the victim, storage drained exactly.
	victim := sim.HostID(3)
	net.RemoveHost(victim)
	op := net.NewOp(victim)
	w.Rehome(victim, op)
	if net.Storage(victim) != 0 {
		t.Fatalf("victim still holds %d units", net.Storage(victim))
	}
	if op.Hops() == 0 {
		t.Fatal("block migration charged no messages")
	}
	op.Free()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rehome: %v", err)
	}
	// Join: the newcomer picks up blocks.
	h := net.AddHost()
	op = net.NewOp(h)
	w.Rebalance(h, op)
	op.Free()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rebalance: %v", err)
	}
	// Queries still exact after both events.
	for i, k := range keys {
		got, ok, _, _ := w.Query(k, net.LiveAt(i%net.LiveHosts()))
		if !ok || got != k {
			t.Fatalf("key %d lost after churn (got %d, %v)", k, got, ok)
		}
	}
}

func TestBucketWebHostChurn(t *testing.T) {
	rng := xrand.New(13)
	keys := distinctKeys(rng, 500, 1<<40)
	net := sim.NewNetwork(10)
	b, err := NewBucketWeb(net, keys, 16, 0, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("fresh invariants: %v", err)
	}
	victim := sim.HostID(4)
	net.RemoveHost(victim)
	op := net.NewOp(victim)
	b.Rehome(victim, op)
	op.Free()
	if net.Storage(victim) != 0 {
		t.Fatalf("victim still holds %d units", net.Storage(victim))
	}
	h := net.AddHost()
	op = net.NewOp(h)
	b.Rebalance(h, op)
	op.Free()
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	for i, k := range keys {
		got, ok, _, _ := b.Query(k, net.LiveAt(i%net.LiveHosts()))
		if !ok || got != k {
			t.Fatalf("key %d lost after churn (got %d, %v)", k, got, ok)
		}
	}
}

// TestWebRehomeDeterministic pins that a fixed seed yields a fixed
// migration transcript: two identical webs rehomed the same way charge
// identical message counts and leave identical placements.
func TestWebRehomeDeterministic(t *testing.T) {
	build := func() (int, int64) {
		rng := xrand.New(21)
		keys := distinctKeys(rng, 200, 1<<40)
		net := sim.NewNetwork(8)
		w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		net.RemoveHost(2)
		op := net.NewOp(2)
		defer op.Free()
		w.Rehome(2, op)
		return op.Hops(), net.TotalMessages()
	}
	h1, m1 := build()
	h2, m2 := build()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("rehome not deterministic: (%d,%d) vs (%d,%d)", h1, m1, h2, m2)
	}
}
