package core

import (
	"errors"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// failoverKeys returns n distinct pseudo-random keys.
func failoverKeys(rng *xrand.Rand, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// TestWebFailoverToMirror pins the replication contract of the generic
// web at the moment between a crash and its repair: with k = 2, every
// range has a live mirror, so queries keep answering correctly by
// failing over — no repair needed for availability — and the answers
// are identical to the pre-crash ones.
func TestWebFailoverToMirror(t *testing.T) {
	net := sim.NewNetwork(8)
	rng := xrand.New(7)
	keys := failoverKeys(rng, 300)
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: 7, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("replicated build: %v", err)
	}
	qs := make([]uint64, 400)
	want := make([]RangeID, len(qs))
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		res, err := w.Query(qs[i], net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("pre-crash query: %v", err)
		}
		want[i] = res.Range
	}
	// Crash a host and query again WITHOUT repairing: the descent must
	// fail over to mirrors and return identical terminals.
	net.Crash(3)
	for i := range qs {
		res, err := w.Query(qs[i], net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("post-crash query %d: %v", i, err)
		}
		if res.Range != want[i] {
			t.Fatalf("query %d: range %d after crash, want %d", i, res.Range, want[i])
		}
	}
	// Repair restores full replication; the invariant checker verifies
	// every range is back to 2 distinct live replicas.
	op := net.NewOp(sim.None)
	if err := w.Repair(op); err != nil {
		t.Fatalf("repair: %v", err)
	}
	op.Free()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	// Storage exactness survives crash + repair: a cooperative leave must
	// still drain its host to exactly zero.
	leaver := net.LiveAt(1)
	net.RemoveHost(leaver)
	op = net.NewOp(sim.None)
	w.Rehome(leaver, op)
	op.Free()
	if st := net.Storage(leaver); st != 0 {
		t.Fatalf("leaver still holds %d units after crash+repair+rehome", st)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("after post-repair leave: %v", err)
	}
}

// TestWebUnreplicatedCrashFailsFast pins the k = 1 behavior: a crash
// loses the host's share, Repair reports the loss, and queries that
// need a lost range fail fast with the typed host-down error while the
// rest keep answering.
func TestWebUnreplicatedCrashFailsFast(t *testing.T) {
	net := sim.NewNetwork(4)
	rng := xrand.New(9)
	keys := failoverKeys(rng, 200)
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	net.Crash(2)
	op := net.NewOp(sim.None)
	err = w.Repair(op)
	op.Free()
	var dl *DataLossError
	if !errors.As(err, &dl) || dl.Units <= 0 {
		t.Fatalf("repair after k=1 crash returned %v, want DataLossError with positive units", err)
	}
	failed, answered := 0, 0
	for i := 0; i < 300; i++ {
		_, err := w.Query(rng.Uint64n(1<<40), net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			if !errors.Is(err, sim.ErrHostDown) {
				t.Fatalf("lost-range query failed with %v, want ErrHostDown", err)
			}
			failed++
		} else {
			answered++
		}
	}
	if failed == 0 {
		t.Fatal("no query touched the lost ranges (crash had no observable effect)")
	}
	if answered == 0 {
		t.Fatal("every query failed: availability should degrade, not vanish")
	}
}

// TestBlockedWebFailoverToMirror is the blocked-web variant: block
// replicas serve queries across an unrepaired crash, repair restores
// the directory, and the storage stays exact through a later leave.
func TestBlockedWebFailoverToMirror(t *testing.T) {
	net := sim.NewNetwork(8)
	rng := xrand.New(11)
	keys := failoverKeys(rng, 400)
	w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: 11, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("replicated build: %v", err)
	}
	qs := make([]uint64, 400)
	wantKey := make([]uint64, len(qs))
	wantOK := make([]bool, len(qs))
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		k, ok, _, err := w.Query(qs[i], net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("pre-crash query: %v", err)
		}
		wantKey[i], wantOK[i] = k, ok
	}
	net.Crash(5)
	for i := range qs {
		k, ok, _, err := w.Query(qs[i], net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("post-crash query %d: %v", i, err)
		}
		if k != wantKey[i] || ok != wantOK[i] {
			t.Fatalf("query %d: (%d,%v) after crash, want (%d,%v)", i, k, ok, wantKey[i], wantOK[i])
		}
	}
	op := net.NewOp(sim.None)
	if err := w.Repair(op); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if op.Hops() == 0 {
		t.Fatal("repair copied data but charged no messages")
	}
	op.Free()
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	// Updates write through to both replicas after repair.
	for i := 0; i < 50; i++ {
		if _, err := w.Insert(rng.Uint64n(1<<40)|1<<41, net.LiveAt(i%net.LiveHosts())); err != nil {
			t.Fatalf("post-repair insert: %v", err)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("after post-repair inserts: %v", err)
	}
	leaver := net.LiveAt(2)
	net.RemoveHost(leaver)
	op = net.NewOp(sim.None)
	w.Rehome(leaver, op)
	op.Free()
	if st := net.Storage(leaver); st != 0 {
		t.Fatalf("leaver still holds %d units after crash+repair+updates+rehome", st)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatalf("after post-repair leave: %v", err)
	}
}

// TestBucketWebFailoverToMirror is the bucket variant: bucket replicas
// answer across an unrepaired crash and Repair restores both the
// routing web and the bucket replica sets.
func TestBucketWebFailoverToMirror(t *testing.T) {
	net := sim.NewNetwork(8)
	rng := xrand.New(13)
	keys := failoverKeys(rng, 300)
	b, err := NewBucketWeb(net, keys, 16, 16, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("replicated build: %v", err)
	}
	net.Crash(1)
	for i, k := range keys {
		got, ok, _, err := b.Query(k, net.LiveAt(i%net.LiveHosts()))
		if err != nil {
			t.Fatalf("post-crash query: %v", err)
		}
		if !ok || got != k {
			t.Fatalf("key %d: floor (%d,%v) after crash", k, got, ok)
		}
	}
	op := net.NewOp(sim.None)
	if err := b.Repair(op); err != nil {
		t.Fatalf("repair: %v", err)
	}
	op.Free()
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	leaver := net.LiveAt(0)
	net.RemoveHost(leaver)
	op = net.NewOp(sim.None)
	b.Rehome(leaver, op)
	op.Free()
	if st := net.Storage(leaver); st != 0 {
		t.Fatalf("leaver still holds %d units after crash+repair+rehome", st)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("after post-repair leave: %v", err)
	}
}

// TestReplicatedChurnKeepsInvariants drives join/leave churn on a
// replicated blocked web: every replica slot migrates or drops
// correctly, including shrinking below the replication factor and
// growing back (the join-side top-up is exercised through Repair).
func TestReplicatedChurnKeepsInvariants(t *testing.T) {
	net := sim.NewNetwork(6)
	rng := xrand.New(17)
	keys := failoverKeys(rng, 250)
	w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: 17, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to 2 hosts: replica sets must collapse to 2 distinct hosts.
	for net.LiveHosts() > 2 {
		leaver := net.LiveAt(0)
		net.RemoveHost(leaver)
		op := net.NewOp(sim.None)
		w.Rehome(leaver, op)
		op.Free()
		if st := net.Storage(leaver); st != 0 {
			t.Fatalf("leaver %d still holds %d units", leaver, st)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("at %d hosts: %v", net.LiveHosts(), err)
		}
	}
	// Grow back: rebalance + repair must top replica sets back up to 3.
	for net.LiveHosts() < 5 {
		h := net.AddHost()
		op := net.NewOp(h)
		w.Rebalance(h, op)
		if err := w.Repair(op); err != nil {
			t.Fatalf("top-up repair: %v", err)
		}
		op.Free()
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after regrow to %d hosts: %v", net.LiveHosts(), err)
		}
	}
	for i, k := range keys {
		got, ok, _, err := w.Query(k, net.LiveAt(i%net.LiveHosts()))
		if err != nil || !ok || got != k {
			t.Fatalf("key %d lost across replicated churn: (%d,%v,%v)", k, got, ok, err)
		}
	}
}
