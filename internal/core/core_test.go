package core

import (
	"math"
	"strings"
	"testing"

	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/trie"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int, bound uint64) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(bound)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func newListWeb(t testing.TB, n int, seed uint64) (*Web[*ListLevel, uint64, uint64], *sim.Network, []uint64) {
	t.Helper()
	rng := xrand.New(seed)
	keys := distinctKeys(rng, n, 1<<40)
	net := sim.NewNetwork(maxInt(n, 1))
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w, net, keys
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestListWebQueryMatchesOracle(t *testing.T) {
	w, net, keys := newListWeb(t, 500, 1)
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ground := w.GroundStructure()
	rng := xrand.New(99)
	for i := 0; i < 2000; i++ {
		q := rng.Uint64n(1 << 41)
		origin := sim.HostID(rng.Intn(net.Hosts()))
		res, err := w.Query(q, origin)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := ground.Locate(q)
		if res.Range != want {
			t.Fatalf("query %d: terminal %d, oracle %d", i, res.Range, want)
		}
	}
	_ = keys
}

func TestListWebQueryForStoredKeys(t *testing.T) {
	w, net, keys := newListWeb(t, 300, 2)
	ground := w.GroundStructure()
	for _, k := range keys {
		res, err := w.Query(k, sim.HostID(int(k)%net.Hosts()))
		if err != nil {
			t.Fatal(err)
		}
		if ground.IsHead(res.Range) || ground.Key(res.Range) != k {
			t.Fatalf("key %d: terminal does not hold the key", k)
		}
	}
}

func TestListWebQueryHopsLogarithmic(t *testing.T) {
	// Q(n) should grow like log n: the ratio hops/log2(n) must not grow.
	rng := xrand.New(7)
	var ratios []float64
	for _, n := range []int{256, 1024, 4096} {
		keys := distinctKeys(rng.Split(), n, 1<<40)
		net := sim.NewNetwork(n)
		w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 300
		qr := rng.Split()
		for i := 0; i < queries; i++ {
			res, err := w.Query(qr.Uint64n(1<<40), sim.HostID(qr.Intn(n)))
			if err != nil {
				t.Fatal(err)
			}
			total += res.Hops
		}
		ratios = append(ratios, float64(total)/queries/math.Log2(float64(n)))
	}
	if ratios[len(ratios)-1] > ratios[0]*1.6 {
		t.Fatalf("hops growing faster than log n: ratios %v", ratios)
	}
	for _, r := range ratios {
		if r > 8 {
			t.Fatalf("hops/log2(n) = %v too large (ratios %v)", r, ratios)
		}
	}
}

func TestListWebInsertDelete(t *testing.T) {
	w, net, keys := newListWeb(t, 200, 3)
	rng := xrand.New(55)
	present := map[uint64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	for i := 0; i < 400; i++ {
		k := rng.Uint64n(1 << 40)
		origin := sim.HostID(rng.Intn(net.Hosts()))
		if present[k] {
			continue
		}
		if _, err := w.Insert(k, origin); err != nil {
			t.Fatalf("insert %d (key %d): %v", i, k, err)
		}
		present[k] = true
		if i%50 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	// Delete half.
	var all []uint64
	for k := range present {
		all = append(all, k)
	}
	for i, k := range all {
		if i%2 == 0 {
			continue
		}
		if _, err := w.Delete(k, sim.HostID(rng.Intn(net.Hosts()))); err != nil {
			t.Fatalf("delete key %d: %v", k, err)
		}
		delete(present, k)
		if i%50 == 1 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every remaining key still found; every deleted key maps to floor.
	ground := w.GroundStructure()
	if ground.Len() != len(present) {
		t.Fatalf("ground has %d keys, want %d", ground.Len(), len(present))
	}
	for k := range present {
		res, err := w.Query(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ground.IsHead(res.Range) || ground.Key(res.Range) != k {
			t.Fatalf("key %d lost after churn", k)
		}
	}
}

func TestListWebInsertIntoEmpty(t *testing.T) {
	net := sim.NewNetwork(8)
	w, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, nil, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if _, err := w.Insert(i*100, sim.HostID(i)%8); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 50 {
		t.Fatalf("len %d", w.Len())
	}
	res, err := w.Query(550, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.GroundStructure().Key(res.Range) != 500 {
		t.Fatalf("Query(550) floor = %d, want 500", w.GroundStructure().Key(res.Range))
	}
}

func TestListWebDrainToEmpty(t *testing.T) {
	w, net, keys := newListWeb(t, 64, 4)
	for _, k := range keys {
		if _, err := w.Delete(k, 0); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("len %d after drain", w.Len())
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Storage should be nearly fully released (only the root's sentinel
	// structures remain).
	s := net.Snapshot()
	if s.MaxStorage > 4 {
		t.Fatalf("storage leak: max %d per host after drain", s.MaxStorage)
	}
	// And the web must keep working.
	if _, err := w.Insert(42, 0); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(43, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.GroundStructure().Key(res.Range) != 42 {
		t.Fatal("reinsert after drain failed")
	}
}

func TestListWebDuplicateInsertFails(t *testing.T) {
	w, _, keys := newListWeb(t, 32, 5)
	if _, err := w.Insert(keys[0], 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := w.Delete(12345678901, 0); err == nil {
		t.Fatal("absent delete accepted")
	}
}

func TestListWebStoragePerHostLogarithmic(t *testing.T) {
	// With H = n hosts, per-host memory should be O(log n).
	rng := xrand.New(11)
	for _, n := range []int{512, 2048} {
		keys := distinctKeys(rng.Split(), n, 1<<40)
		net := sim.NewNetwork(n)
		if _, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), net, keys, Config{Seed: uint64(n)}); err != nil {
			t.Fatal(err)
		}
		s := net.Snapshot()
		logn := math.Log2(float64(n))
		if s.MeanStorage > 6*logn {
			t.Fatalf("n=%d: mean storage %.1f > 6 log n", n, s.MeanStorage)
		}
		if float64(s.MaxStorage) > 30*logn {
			t.Fatalf("n=%d: max storage %d vastly exceeds O(log n)", n, s.MaxStorage)
		}
	}
}

// --- Quadtree web ---

func randPoints(rng *xrand.Rand, d, n int, bound uint64) []quadtree.Point {
	proto := quadtree.New(d)
	seen := map[uint64]bool{}
	out := make([]quadtree.Point, 0, n)
	for len(out) < n {
		p := make(quadtree.Point, d)
		for i := range p {
			p[i] = uint32(rng.Uint64n(bound))
		}
		c, err := proto.Code(p)
		if err != nil {
			panic(err)
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, p)
		}
	}
	return out
}

func TestQuadWebQueryMatchesOracle(t *testing.T) {
	rng := xrand.New(21)
	pts := randPoints(rng, 2, 400, 1<<20)
	net := sim.NewNetwork(400)
	ops := NewQuadOps(2)
	w, err := NewWeb[*quadtree.Tree, quadtree.Point, uint64](ops, net, pts, Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ground := w.GroundStructure()
	for i := 0; i < 1000; i++ {
		q := quadtree.Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		code, err := ops.Code(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Query(code, sim.HostID(rng.Intn(400)))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, _ := ground.Locate(code)
		if quadtree.NodeID(res.Range) != want {
			t.Fatalf("query %d: node %d, oracle %d", i, res.Range, want)
		}
	}
}

func TestQuadWebAdversarialDepth(t *testing.T) {
	// Nested clusters force Θ(n) tree depth; the skip-web should still
	// answer in a logarithmic number of hops (Theorem 2 / E6).
	var pts []quadtree.Point
	step := uint32(1) << 29
	base := uint32(0)
	for i := 0; i < 28; i++ {
		pts = append(pts, quadtree.Point{base + step, base + step})
		pts = append(pts, quadtree.Point{base + step + 1, base + step + 1})
		step >>= 1
	}
	net := sim.NewNetwork(len(pts))
	ops := NewQuadOps(2)
	w, err := NewWeb[*quadtree.Tree, quadtree.Point, uint64](ops, net, pts, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ground := w.GroundStructure()
	if ground.Depth() < 10 {
		t.Fatalf("ground tree not deep: %d", ground.Depth())
	}
	rng := xrand.New(3)
	total := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		q := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
		code, _ := ops.Code(q)
		res, err := w.Query(code, sim.HostID(rng.Intn(len(pts))))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
	}
	mean := float64(total) / queries
	if mean > 12*math.Log2(float64(len(pts))) {
		t.Fatalf("mean hops %.1f not logarithmic for deep tree", mean)
	}
}

func TestQuadWebInsertDelete(t *testing.T) {
	rng := xrand.New(31)
	pts := randPoints(rng, 2, 150, 1<<16)
	net := sim.NewNetwork(256)
	ops := NewQuadOps(2)
	w, err := NewWeb[*quadtree.Tree, quadtree.Point, uint64](ops, net, pts[:100], Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts[100:] {
		if _, err := w.Insert(p, sim.HostID(i%256)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	for i, p := range pts[:60] {
		if _, err := w.Delete(p, sim.HostID(i%256)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	ground := w.GroundStructure()
	if ground.Len() != 90 {
		t.Fatalf("ground has %d points", ground.Len())
	}
	// Remaining points still locatable.
	for _, p := range pts[60:] {
		code, _ := ops.Code(p)
		res, err := w.Query(code, 0)
		if err != nil {
			t.Fatal(err)
		}
		id := quadtree.NodeID(res.Range)
		if !ground.IsLeaf(id) {
			t.Fatalf("point %v: terminal not a leaf", p)
		}
	}
}

// --- Trie web ---

func randStrings(rng *xrand.Rand, n int, alphabet string, minLen, maxLen int) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		l := minLen + rng.Intn(maxLen-minLen+1)
		var b strings.Builder
		for i := 0; i < l; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		s := b.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestTrieWebQueryMatchesOracle(t *testing.T) {
	rng := xrand.New(41)
	keys := randStrings(rng, 400, "acgt", 4, 14)
	net := sim.NewNetwork(400)
	w, err := NewWeb[*trie.Trie, string, string](NewTrieOps(), net, keys, Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ground := w.GroundStructure()
	for i := 0; i < 1000; i++ {
		q := randStrings(rng, 1, "acgt", 1, 14)[0]
		res, err := w.Query(q, sim.HostID(rng.Intn(400)))
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		want, _ := ground.Locate(q)
		if trie.NodeID(res.Range) != want {
			t.Fatalf("query %q: node %q, oracle %q", q,
				ground.Locus(trie.NodeID(res.Range)), ground.Locus(want))
		}
	}
}

func TestTrieWebDeepSharedPrefixes(t *testing.T) {
	// Keys a, aa, aaa... force a path-shaped ground trie of linear depth;
	// queries must stay logarithmic (E6).
	var keys []string
	for i := 1; i <= 128; i++ {
		keys = append(keys, strings.Repeat("a", i))
	}
	net := sim.NewNetwork(128)
	w, err := NewWeb[*trie.Trie, string, string](NewTrieOps(), net, keys, Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if w.GroundStructure().Depth() != 128 {
		t.Fatalf("ground depth %d", w.GroundStructure().Depth())
	}
	rng := xrand.New(4)
	total := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		q := strings.Repeat("a", 1+rng.Intn(130))
		res, err := w.Query(q, sim.HostID(rng.Intn(128)))
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
	}
	if mean := float64(total) / queries; mean > 12*math.Log2(128) {
		t.Fatalf("mean hops %.1f on degenerate trie", mean)
	}
}

func TestTrieWebInsertDelete(t *testing.T) {
	rng := xrand.New(51)
	keys := randStrings(rng, 150, "ab", 2, 12)
	net := sim.NewNetwork(128)
	w, err := NewWeb[*trie.Trie, string, string](NewTrieOps(), net, keys[:100], Config{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys[100:] {
		if _, err := w.Insert(k, sim.HostID(i%128)); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after insert %q: %v", k, err)
		}
	}
	for i, k := range keys[:50] {
		if _, err := w.Delete(k, sim.HostID(i%128)); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after delete %q: %v", k, err)
		}
	}
	ground := w.GroundStructure()
	if ground.Len() != 100 {
		t.Fatalf("ground has %d keys", ground.Len())
	}
	for _, k := range keys[50:] {
		if !ground.Contains(k) {
			t.Fatalf("key %q lost", k)
		}
	}
}

// --- Trapezoidal-map web ---

func genSegments(rng *xrand.Rand, n int, bounds trapmap.Rect) []trapmap.Segment {
	usedX := map[int64]bool{}
	var out []trapmap.Segment
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	for len(out) < n {
		x1 := bounds.MinX + 1 + int64(rng.Uint64n(uint64(w-2)))
		x2 := x1 + 1 + int64(rng.Uint64n(uint64(w)/8+1))
		if x2 >= bounds.MaxX || usedX[x1] || usedX[x2] {
			continue
		}
		y1 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(h-2)))
		y2 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(h-2)))
		s := trapmap.Segment{A: trapmap.Point{X: x1, Y: y1}, B: trapmap.Point{X: x2, Y: y2}}
		ok := true
		for _, u := range out {
			if segsIntersectForTest(s, u) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		usedX[x1] = true
		usedX[x2] = true
		out = append(out, s)
	}
	return out
}

// segsIntersectForTest duplicates the package-private predicate closely
// enough for rejection sampling (validated again by Build).
func segsIntersectForTest(a, b trapmap.Segment) bool {
	o := func(s trapmap.Segment, p trapmap.Point) int64 {
		return (s.B.X-s.A.X)*(p.Y-s.A.Y) - (s.B.Y-s.A.Y)*(p.X-s.A.X)
	}
	o1, o2 := o(a, b.A), o(a, b.B)
	o3, o4 := o(b, a.A), o(b, a.B)
	if ((o1 > 0) != (o2 > 0)) && ((o3 > 0) != (o4 > 0)) && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		return true
	}
	return o1 == 0 || o2 == 0 || o3 == 0 || o4 == 0
}

func TestTrapWebQueryMatchesOracle(t *testing.T) {
	bounds := trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}
	rng := xrand.New(61)
	segs := genSegments(rng, 100, bounds)
	net := sim.NewNetwork(128)
	ops := TrapOps{Bounds: bounds}
	w, err := NewWeb[*trapmap.Map, trapmap.Segment, trapmap.Point](ops, net, segs, Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ground := w.GroundStructure()
	for i := 0; i < 500; i++ {
		q := trapmap.Point{
			X: bounds.MinX + int64(rng.Uint64n(uint64(bounds.MaxX-bounds.MinX))),
			Y: bounds.MinY + int64(rng.Uint64n(uint64(bounds.MaxY-bounds.MinY))),
		}
		res, err := w.Query(q, sim.HostID(rng.Intn(128)))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := ground.Locate(q)
		if err != nil {
			t.Fatal(err)
		}
		if trapmap.TrapID(res.Range) != want {
			t.Fatalf("query %+v: trap %d, oracle %d", q, res.Range, want)
		}
	}
}

func TestTrapWebStatic(t *testing.T) {
	bounds := trapmap.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}
	rng := xrand.New(62)
	segs := genSegments(rng, 10, bounds)
	net := sim.NewNetwork(16)
	ops := TrapOps{Bounds: bounds}
	w, err := NewWeb[*trapmap.Map, trapmap.Segment, trapmap.Point](ops, net, segs, Config{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	extra := genSegments(xrand.New(63), 1, bounds)
	if _, err := w.Insert(extra[0], 0); err == nil {
		t.Fatal("static web accepted insert")
	}
}

func TestWebLevelsLogarithmic(t *testing.T) {
	w, _, _ := newListWeb(t, 4096, 77)
	levels := w.Levels()
	if levels < 8 || levels > 30 {
		t.Fatalf("levels = %d for n = 4096", levels)
	}
}

func TestListLevelUnit(t *testing.T) {
	l, err := NewListLevel([]uint64{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := l.Keys(); len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("keys %v", got)
	}
	if r := l.Locate(5); !l.IsHead(r) {
		t.Fatal("Locate(5) not head")
	}
	if r := l.Locate(25); l.Key(r) != 20 {
		t.Fatalf("Locate(25) = %d", l.Key(r))
	}
	if r := l.Locate(99); l.Key(r) != 30 {
		t.Fatal("Locate(99) wrong")
	}
	if _, err := NewListLevel([]uint64{1, 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	// Insert and delete.
	id, err := l.InsertKey(25, l.Locate(25))
	if err != nil {
		t.Fatal(err)
	}
	if l.Key(id) != 25 {
		t.Fatal("insert misplaced")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	dead, pred, err := l.DeleteKey(20)
	if err != nil {
		t.Fatal(err)
	}
	if l.Key(pred) != 10 {
		t.Fatalf("pred key %d", l.Key(pred))
	}
	_ = dead
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r := l.Locate(24); l.Key(r) != 10 {
		t.Fatal("locate after delete wrong")
	}
}
