package core

import (
	"fmt"
	"sort"
)

// sorted-order index tuning: pending inserts and tombstoned deletes are
// absorbed into the base array once either exceeds these bounds, keeping
// Locate at O(log n + pendMax + deadMax) while updates cost O(pendMax)
// plus an amortized O(n / min(pendMax, deadMax)) share of each rebuild —
// far below the O(n) memmove an eagerly maintained array would pay per
// update.
const (
	pendMax = 64
	deadMax = 64
)

// ListLevel is the sorted doubly-linked list link structure of Section 2.1
// (and Lemma 1), with slot-stable range IDs. Range 0 is the head sentinel
// covering (-inf, firstKey); every other range r covers [key(r), nextKey).
// The ranges therefore partition the key universe.
//
// Alongside the linked list, ListLevel maintains the live ranges in a
// sorted-order index, so full local searches (Locate, and InsertKey's
// fallback when the hint is dead) are O(log n) binary searches instead of
// O(n) head walks. The index is a base sorted array plus a small sorted
// pending buffer: inserts go to the buffer, deletes tombstone the base
// (or drop from the buffer), and either overflowing triggers a merge
// rebuild. The index is pure execution-level state: routing still charges
// messages per linked-list hop, so the paper's cost accounting is
// unchanged.
type ListLevel struct {
	keys  []uint64
	prev  []RangeID
	next  []RangeID
	live  []bool
	free  []RangeID
	index map[uint64]RangeID
	n     int

	// baseKeys holds live keys in ascending order; baseIDs[i] is the
	// range holding baseKeys[i], or NoRange for a tombstoned (deleted)
	// entry awaiting the next rebuild.
	baseKeys []uint64
	baseIDs  []RangeID
	// pendKeys/pendIDs buffer keys inserted since the last rebuild, in
	// ascending order, at most pendMax entries.
	pendKeys []uint64
	pendIDs  []RangeID
	dead     int // tombstones in baseIDs
}

// NewListLevel builds the structure over keys (which must be distinct).
func NewListLevel(keys []uint64) (*ListLevel, error) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	l := &ListLevel{index: make(map[uint64]RangeID, len(keys))}
	l.keys = append(l.keys, 0) // head sentinel
	l.prev = append(l.prev, NoRange)
	l.next = append(l.next, NoRange)
	l.live = append(l.live, true)
	l.baseKeys = make([]uint64, 0, len(keys))
	l.baseIDs = make([]RangeID, 0, len(keys))
	cur := RangeID(0)
	for i, k := range sorted {
		if i > 0 && sorted[i-1] == k {
			return nil, fmt.Errorf("core: duplicate key %d", k)
		}
		id := RangeID(len(l.keys))
		l.keys = append(l.keys, k)
		l.prev = append(l.prev, cur)
		l.next = append(l.next, NoRange)
		l.live = append(l.live, true)
		l.next[cur] = id
		l.index[k] = id
		l.baseKeys = append(l.baseKeys, k)
		l.baseIDs = append(l.baseIDs, id)
		cur = id
		l.n++
	}
	return l, nil
}

// Len returns the number of keys (excluding the sentinel).
func (l *ListLevel) Len() int { return l.n }

// Head returns the sentinel range.
func (l *ListLevel) Head() RangeID { return 0 }

// Key returns the key of range r; r must not be the head sentinel.
func (l *ListLevel) Key(r RangeID) uint64 { return l.keys[r] }

// IsHead reports whether r is the sentinel.
func (l *ListLevel) IsHead(r RangeID) bool { return r == 0 }

// ByKey returns the range holding exactly key k.
func (l *ListLevel) ByKey(k uint64) (RangeID, bool) {
	r, ok := l.index[k]
	return r, ok
}

// Next and Prev expose the linked-list order.
func (l *ListLevel) Next(r RangeID) RangeID { return l.next[r] }

// Prev returns the predecessor range of r.
func (l *ListLevel) Prev(r RangeID) RangeID { return l.prev[r] }

// Ranges returns all live range IDs.
func (l *ListLevel) Ranges() []RangeID {
	out := make([]RangeID, 0, l.n+1)
	l.VisitRanges(func(r RangeID) bool {
		out = append(out, r)
		return true
	})
	return out
}

// VisitRanges calls visit for every live range ID (in slot order) until
// visit returns false. It performs no allocation.
func (l *ListLevel) VisitRanges(visit func(RangeID) bool) {
	for i, ok := range l.live {
		if ok && !visit(RangeID(i)) {
			return
		}
	}
}

// Contains reports whether range r covers q: key(r) <= q < key(next(r)),
// with the sentinel covering everything below the first key.
func (l *ListLevel) Contains(r RangeID, q uint64) bool {
	if r != 0 && q < l.keys[r] {
		return false
	}
	nx := l.next[r]
	return nx == NoRange || q < l.keys[nx]
}

// Step moves one range toward q's terminal, or NoRange if r is terminal.
func (l *ListLevel) Step(r RangeID, q uint64) RangeID {
	if r != 0 && q < l.keys[r] {
		return l.prev[r]
	}
	if nx := l.next[r]; nx != NoRange && q >= l.keys[nx] {
		return nx
	}
	return NoRange
}

// floorIndex returns the position in ks of the largest key <= q, or -1
// when q is below every key.
func floorIndex(ks []uint64, q uint64) int {
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Locate finds the terminal range containing q by binary search over the
// sorted-order index — O(log n + pendMax + deadMax), allocation-free.
func (l *ListLevel) Locate(q uint64) RangeID {
	// Base floor, skipping tombstones leftward (dead runs are bounded by
	// deadMax, the rebuild threshold).
	bi := floorIndex(l.baseKeys, q)
	for bi >= 0 && l.baseIDs[bi] == NoRange {
		bi--
	}
	// Pending floor.
	pi := floorIndex(l.pendKeys, q)
	// The true floor is the larger of the two candidates: every live key
	// is in exactly one of base (untombstoned) and pending.
	switch {
	case bi < 0 && pi < 0:
		return 0
	case bi < 0:
		return l.pendIDs[pi]
	case pi < 0:
		return l.baseIDs[bi]
	case l.pendKeys[pi] > l.baseKeys[bi]:
		return l.pendIDs[pi]
	default:
		return l.baseIDs[bi]
	}
}

// locateWalk is the pre-refactor O(n) head-walk search, kept as the
// reference implementation for the Locate property test.
func (l *ListLevel) locateWalk(q uint64) RangeID {
	r := RangeID(0)
	for {
		nx := l.next[r]
		if nx == NoRange || q < l.keys[nx] {
			return r
		}
		r = nx
	}
}

// rebuild merges the pending buffer into the base array and drops
// tombstones. Triggered once per O(min(pendMax, deadMax)) updates, so
// its O(n) cost amortizes to O(n / threshold) per update.
func (l *ListLevel) rebuild() {
	// Append-only fast path: a pending buffer entirely above a
	// tombstone-free base extends it in place (the common bulk-load and
	// log-structured workload).
	if l.dead == 0 && (len(l.baseKeys) == 0 || len(l.pendKeys) == 0 ||
		l.pendKeys[0] > l.baseKeys[len(l.baseKeys)-1]) {
		l.baseKeys = append(l.baseKeys, l.pendKeys...)
		l.baseIDs = append(l.baseIDs, l.pendIDs...)
		l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
		return
	}
	merged := make([]uint64, 0, l.n)
	mergedIDs := make([]RangeID, 0, l.n)
	bi, pi := 0, 0
	for bi < len(l.baseKeys) || pi < len(l.pendKeys) {
		if bi < len(l.baseKeys) && l.baseIDs[bi] == NoRange {
			bi++
			continue
		}
		takeBase := pi >= len(l.pendKeys) ||
			(bi < len(l.baseKeys) && l.baseKeys[bi] < l.pendKeys[pi])
		if takeBase {
			merged = append(merged, l.baseKeys[bi])
			mergedIDs = append(mergedIDs, l.baseIDs[bi])
			bi++
		} else {
			merged = append(merged, l.pendKeys[pi])
			mergedIDs = append(mergedIDs, l.pendIDs[pi])
			pi++
		}
	}
	l.baseKeys, l.baseIDs = merged, mergedIDs
	l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
	l.dead = 0
}

// indexInsert records (k, id) in the sorted-order index.
func (l *ListLevel) indexInsert(k uint64, id RangeID) {
	// A tombstoned base entry for k (delete then re-insert) is fine: the
	// pending entry is live and Locate prefers it by the larger-key rule
	// (equal keys: base tombstone is skipped leftward).
	i := floorIndex(l.pendKeys, k) + 1
	l.pendKeys = append(l.pendKeys, 0)
	copy(l.pendKeys[i+1:], l.pendKeys[i:])
	l.pendKeys[i] = k
	l.pendIDs = append(l.pendIDs, NoRange)
	copy(l.pendIDs[i+1:], l.pendIDs[i:])
	l.pendIDs[i] = id
	if len(l.pendKeys) > pendMax {
		l.rebuild()
	}
}

// indexDelete removes key k from the sorted-order index.
func (l *ListLevel) indexDelete(k uint64) {
	if i := floorIndex(l.pendKeys, k); i >= 0 && l.pendKeys[i] == k {
		l.pendKeys = append(l.pendKeys[:i], l.pendKeys[i+1:]...)
		l.pendIDs = append(l.pendIDs[:i], l.pendIDs[i+1:]...)
		return
	}
	i := floorIndex(l.baseKeys, k)
	if i < 0 || l.baseKeys[i] != k || l.baseIDs[i] == NoRange {
		return
	}
	l.baseIDs[i] = NoRange
	l.dead++
	if l.dead > deadMax {
		l.rebuild()
	}
}

// InsertKey splices k after range hint (which must be the terminal range
// containing k, or a nearby range from which Step reaches it). A NoRange
// or dead hint falls back to the O(log n) binary search rather than
// walking from the head sentinel.
func (l *ListLevel) InsertKey(k uint64, hint RangeID) (RangeID, error) {
	if _, ok := l.index[k]; ok {
		return NoRange, fmt.Errorf("core: duplicate key %d", k)
	}
	cur := hint
	if cur == NoRange || int(cur) >= len(l.live) || !l.live[cur] {
		cur = l.Locate(k)
	}
	for {
		nx := l.Step(cur, k)
		if nx == NoRange {
			break
		}
		cur = nx
	}
	var id RangeID
	if len(l.free) > 0 {
		id = l.free[len(l.free)-1]
		l.free = l.free[:len(l.free)-1]
		l.keys[id] = k
		l.live[id] = true
	} else {
		id = RangeID(len(l.keys))
		l.keys = append(l.keys, k)
		l.prev = append(l.prev, NoRange)
		l.next = append(l.next, NoRange)
		l.live = append(l.live, true)
	}
	nx := l.next[cur]
	l.prev[id] = cur
	l.next[id] = nx
	l.next[cur] = id
	if nx != NoRange {
		l.prev[nx] = id
	}
	l.index[k] = id
	l.indexInsert(k, id)
	l.n++
	return id, nil
}

// DeleteKey removes key k, returning the dead range and its predecessor
// (which inherits the dead range's interval).
func (l *ListLevel) DeleteKey(k uint64) (dead, pred RangeID, err error) {
	id, ok := l.index[k]
	if !ok {
		return NoRange, NoRange, fmt.Errorf("core: key %d not found", k)
	}
	p, nx := l.prev[id], l.next[id]
	l.next[p] = nx
	if nx != NoRange {
		l.prev[nx] = p
	}
	l.live[id] = false
	l.free = append(l.free, id)
	delete(l.index, k)
	l.indexDelete(k)
	l.n--
	return id, p, nil
}

// Keys returns all keys in ascending order.
func (l *ListLevel) Keys() []uint64 {
	out := make([]uint64, 0, l.n)
	for r := l.next[0]; r != NoRange; r = l.next[r] {
		out = append(out, l.keys[r])
	}
	return out
}

// CheckInvariants verifies list structure: ascending keys, consistent
// prev/next, index completeness, and agreement between the linked list
// and the sorted-order index (base + pending merge).
func (l *ListLevel) CheckInvariants() error {
	count := 0
	prev := RangeID(0)
	for r := l.next[0]; r != NoRange; r = l.next[r] {
		if !l.live[r] {
			return fmt.Errorf("core: dead range %d linked", r)
		}
		if l.prev[r] != prev {
			return fmt.Errorf("core: range %d prev %d, want %d", r, l.prev[r], prev)
		}
		if prev != 0 && l.keys[r] <= l.keys[prev] {
			return fmt.Errorf("core: keys out of order at range %d", r)
		}
		if got, ok := l.index[l.keys[r]]; !ok || got != r {
			return fmt.Errorf("core: index broken for key %d", l.keys[r])
		}
		if got := l.Locate(l.keys[r]); got != r {
			return fmt.Errorf("core: sorted-order Locate(%d) = %d, want %d", l.keys[r], got, r)
		}
		prev = r
		count++
	}
	if count != l.n || len(l.index) != l.n {
		return fmt.Errorf("core: count %d, n %d, index %d", count, l.n, len(l.index))
	}
	live := 0
	for i, id := range l.baseIDs {
		if i > 0 && l.baseKeys[i] <= l.baseKeys[i-1] {
			return fmt.Errorf("core: base index out of order at %d", i)
		}
		if id != NoRange {
			live++
			if l.keys[id] != l.baseKeys[i] {
				return fmt.Errorf("core: base index key mismatch at %d", i)
			}
		}
	}
	for i, id := range l.pendIDs {
		if i > 0 && l.pendKeys[i] <= l.pendKeys[i-1] {
			return fmt.Errorf("core: pending index out of order at %d", i)
		}
		if id == NoRange || l.keys[id] != l.pendKeys[i] {
			return fmt.Errorf("core: pending index broken at %d", i)
		}
		live++
	}
	if live != l.n {
		return fmt.Errorf("core: sorted-order index holds %d live keys, n %d", live, l.n)
	}
	if len(l.baseIDs) != len(l.baseKeys) || len(l.pendIDs) != len(l.pendKeys) {
		return fmt.Errorf("core: sorted-order index arrays diverge in length")
	}
	return nil
}
