package core

import (
	"fmt"
	"sort"
)

// ListLevel is the sorted doubly-linked list link structure of Section 2.1
// (and Lemma 1), with slot-stable range IDs. Range 0 is the head sentinel
// covering (-inf, firstKey); every other range r covers [key(r), nextKey).
// The ranges therefore partition the key universe.
type ListLevel struct {
	keys  []uint64
	prev  []RangeID
	next  []RangeID
	live  []bool
	free  []RangeID
	index map[uint64]RangeID
	n     int
}

// NewListLevel builds the structure over keys (which must be distinct).
func NewListLevel(keys []uint64) (*ListLevel, error) {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	l := &ListLevel{index: make(map[uint64]RangeID, len(keys))}
	l.keys = append(l.keys, 0) // head sentinel
	l.prev = append(l.prev, NoRange)
	l.next = append(l.next, NoRange)
	l.live = append(l.live, true)
	cur := RangeID(0)
	for i, k := range sorted {
		if i > 0 && sorted[i-1] == k {
			return nil, fmt.Errorf("core: duplicate key %d", k)
		}
		id := RangeID(len(l.keys))
		l.keys = append(l.keys, k)
		l.prev = append(l.prev, cur)
		l.next = append(l.next, NoRange)
		l.live = append(l.live, true)
		l.next[cur] = id
		l.index[k] = id
		cur = id
		l.n++
	}
	return l, nil
}

// Len returns the number of keys (excluding the sentinel).
func (l *ListLevel) Len() int { return l.n }

// Head returns the sentinel range.
func (l *ListLevel) Head() RangeID { return 0 }

// Key returns the key of range r; r must not be the head sentinel.
func (l *ListLevel) Key(r RangeID) uint64 { return l.keys[r] }

// IsHead reports whether r is the sentinel.
func (l *ListLevel) IsHead(r RangeID) bool { return r == 0 }

// ByKey returns the range holding exactly key k.
func (l *ListLevel) ByKey(k uint64) (RangeID, bool) {
	r, ok := l.index[k]
	return r, ok
}

// Next and Prev expose the linked-list order.
func (l *ListLevel) Next(r RangeID) RangeID { return l.next[r] }

// Prev returns the predecessor range of r.
func (l *ListLevel) Prev(r RangeID) RangeID { return l.prev[r] }

// Ranges returns all live range IDs.
func (l *ListLevel) Ranges() []RangeID {
	out := make([]RangeID, 0, l.n+1)
	for i, ok := range l.live {
		if ok {
			out = append(out, RangeID(i))
		}
	}
	return out
}

// Contains reports whether range r covers q: key(r) <= q < key(next(r)),
// with the sentinel covering everything below the first key.
func (l *ListLevel) Contains(r RangeID, q uint64) bool {
	if r != 0 && q < l.keys[r] {
		return false
	}
	nx := l.next[r]
	return nx == NoRange || q < l.keys[nx]
}

// Step moves one range toward q's terminal, or NoRange if r is terminal.
func (l *ListLevel) Step(r RangeID, q uint64) RangeID {
	if r != 0 && q < l.keys[r] {
		return l.prev[r]
	}
	if nx := l.next[r]; nx != NoRange && q >= l.keys[nx] {
		return nx
	}
	return NoRange
}

// Locate scans for the terminal range containing q.
func (l *ListLevel) Locate(q uint64) RangeID {
	r := RangeID(0)
	for {
		nx := l.next[r]
		if nx == NoRange || q < l.keys[nx] {
			return r
		}
		r = nx
	}
}

// InsertKey splices k after range hint (which must be the terminal range
// containing k, or a nearby range from which Step reaches it).
func (l *ListLevel) InsertKey(k uint64, hint RangeID) (RangeID, error) {
	if _, ok := l.index[k]; ok {
		return NoRange, fmt.Errorf("core: duplicate key %d", k)
	}
	cur := hint
	if cur == NoRange || !l.live[cur] {
		cur = 0
	}
	for {
		nx := l.Step(cur, k)
		if nx == NoRange {
			break
		}
		cur = nx
	}
	var id RangeID
	if len(l.free) > 0 {
		id = l.free[len(l.free)-1]
		l.free = l.free[:len(l.free)-1]
		l.keys[id] = k
		l.live[id] = true
	} else {
		id = RangeID(len(l.keys))
		l.keys = append(l.keys, k)
		l.prev = append(l.prev, NoRange)
		l.next = append(l.next, NoRange)
		l.live = append(l.live, true)
	}
	nx := l.next[cur]
	l.prev[id] = cur
	l.next[id] = nx
	l.next[cur] = id
	if nx != NoRange {
		l.prev[nx] = id
	}
	l.index[k] = id
	l.n++
	return id, nil
}

// DeleteKey removes key k, returning the dead range and its predecessor
// (which inherits the dead range's interval).
func (l *ListLevel) DeleteKey(k uint64) (dead, pred RangeID, err error) {
	id, ok := l.index[k]
	if !ok {
		return NoRange, NoRange, fmt.Errorf("core: key %d not found", k)
	}
	p, nx := l.prev[id], l.next[id]
	l.next[p] = nx
	if nx != NoRange {
		l.prev[nx] = p
	}
	l.live[id] = false
	l.free = append(l.free, id)
	delete(l.index, k)
	l.n--
	return id, p, nil
}

// Keys returns all keys in ascending order.
func (l *ListLevel) Keys() []uint64 {
	out := make([]uint64, 0, l.n)
	for r := l.next[0]; r != NoRange; r = l.next[r] {
		out = append(out, l.keys[r])
	}
	return out
}

// CheckInvariants verifies list structure: ascending keys, consistent
// prev/next, index completeness.
func (l *ListLevel) CheckInvariants() error {
	count := 0
	prev := RangeID(0)
	for r := l.next[0]; r != NoRange; r = l.next[r] {
		if !l.live[r] {
			return fmt.Errorf("core: dead range %d linked", r)
		}
		if l.prev[r] != prev {
			return fmt.Errorf("core: range %d prev %d, want %d", r, l.prev[r], prev)
		}
		if prev != 0 && l.keys[r] <= l.keys[prev] {
			return fmt.Errorf("core: keys out of order at range %d", r)
		}
		if got, ok := l.index[l.keys[r]]; !ok || got != r {
			return fmt.Errorf("core: index broken for key %d", l.keys[r])
		}
		prev = r
		count++
	}
	if count != l.n || len(l.index) != l.n {
		return fmt.Errorf("core: count %d, n %d, index %d", count, l.n, len(l.index))
	}
	return nil
}
