package core

import (
	"fmt"
	"slices"
)

// Sorted-order index tuning. Levels of at most indexMin keys keep no
// index at all: every local search is a short walk over the (sorted)
// linked list, and the level fits entirely in its inline slot storage —
// the common case for the O(1)-size leaf levels the update path creates
// and destroys constantly, which therefore cost zero index maintenance.
//
// Larger levels maintain the base + pending index. The buffer bounds
// adapt to the level size: pending inserts and tombstoned deletes are
// absorbed into the base array once either exceeds ~sqrt(n) (never less
// than pendMax/deadMax), balancing the O(buffer) splice cost of an
// update against the amortized O(n/buffer) share of each rebuild — the
// fixed 64-entry bound of PR 2 paid an O(n/64) rebuild share per update,
// which dominated the update path at n in the hundreds of thousands.
const (
	indexMin = 16
	pendMax  = 64
	deadMax  = 64
)

// inlineSlots is the slot capacity embedded in the ListLevel struct
// itself. Leaf levels hold at most LeafMax+1 keys plus the head sentinel
// before splitting, so they never spill to a heap-allocated slot array.
const inlineSlots = 8

// lslot is one range record: the key and the doubly-linked-list wiring,
// fused in a single slot so a Step walk touches one cache line instead
// of four parallel arrays.
type lslot struct {
	key  uint64
	prev RangeID
	next RangeID
	live bool
}

// ListLevel is the sorted doubly-linked list link structure of Section 2.1
// (and Lemma 1), with slot-stable range IDs. Range 0 is the head sentinel
// covering (-inf, firstKey); every other range r covers [key(r), nextKey).
// The ranges therefore partition the key universe.
//
// Alongside the linked list, levels above indexMin keys maintain the live
// ranges in a sorted-order index, so full local searches (Locate, ByKey,
// and InsertKey's fallback when the hint is dead) are O(log n) binary
// searches instead of O(n) head walks. The index is a base sorted array
// plus a small sorted pending buffer: inserts go to the buffer, deletes
// tombstone the base (or drop from the buffer), and either overflowing
// its adaptive bound triggers a merge rebuild into a reused scratch
// buffer. The index is pure execution-level state: routing still charges
// messages per linked-list hop, so the paper's cost accounting is
// unchanged.
type ListLevel struct {
	slots []lslot
	free  []RangeID
	n     int
	// tail is the last range in list order (the head sentinel when
	// empty): the O(1) floor for queries at or above the maximum key,
	// which is every probe of a log-structured (ascending) insert stream.
	tail RangeID

	// indexed reports whether the sorted-order index is maintained; it
	// turns on once the level outgrows indexMin and stays on (hysteresis:
	// dropping and rebuilding the index under a fluctuating size would
	// thrash).
	indexed bool
	// baseKeys holds live keys in ascending order; baseIDs[i] is the
	// range holding baseKeys[i], or NoRange for a tombstoned (deleted)
	// entry awaiting the next rebuild.
	baseKeys []uint64
	baseIDs  []RangeID
	// pendKeys/pendIDs buffer keys inserted since the last rebuild, in
	// ascending order, at most pendLimit() entries.
	pendKeys []uint64
	pendIDs  []RangeID
	dead     int // tombstones in baseIDs
	// mergeKeys/mergeIDs are the rebuild scratch, swapped with the base
	// arrays on each slow merge so steady-state rebuilds allocate nothing.
	mergeKeys []uint64
	mergeIDs  []RangeID

	// inline is the initial slot storage; slots aliases it until the
	// level outgrows inlineSlots and spills to the heap.
	inline [inlineSlots]lslot
}

// NewListLevel builds the structure over keys (which must be distinct).
func NewListLevel(keys []uint64) (*ListLevel, error) {
	sorted := append([]uint64(nil), keys...)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("core: duplicate key %d", sorted[i])
		}
	}
	l := &ListLevel{}
	l.reset(sorted)
	return l, nil
}

// NewListLevelSorted builds the structure over keys already in strictly
// ascending order — the O(n) bulk-load path, which skips the sort and
// the defensive copy of NewListLevel.
func NewListLevelSorted(keys []uint64) (*ListLevel, error) {
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return nil, fmt.Errorf("core: duplicate key %d", keys[i])
		}
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("core: keys not ascending at %d", i)
		}
	}
	l := &ListLevel{}
	l.reset(keys)
	return l, nil
}

// reset (re)initializes the level over strictly ascending keys, reusing
// any slot and index capacity the receiver already owns — the level-pool
// entry point for BlockedWeb's split/merge recycling. The keys slice is
// copied, never retained.
func (l *ListLevel) reset(sorted []uint64) {
	need := len(sorted) + 1
	switch {
	case cap(l.slots) >= need:
		l.slots = l.slots[:0]
	case need <= inlineSlots:
		l.slots = l.inline[:0]
	default:
		// Headroom beyond the exact need: bulk-loaded levels usually take
		// inserts next, and the slack absorbs the first growth spurts.
		l.slots = make([]lslot, 0, need+need/8+1)
	}
	l.free = l.free[:0]
	l.n = 0
	l.indexed = false
	l.baseKeys, l.baseIDs = l.baseKeys[:0], l.baseIDs[:0]
	l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
	l.dead = 0
	l.slots = append(l.slots, lslot{prev: NoRange, next: NoRange, live: true}) // head sentinel
	cur := RangeID(0)
	for _, k := range sorted {
		id := RangeID(len(l.slots))
		l.slots = append(l.slots, lslot{key: k, prev: cur, next: NoRange, live: true})
		l.slots[cur].next = id
		cur = id
		l.n++
	}
	l.tail = cur
	if l.n > indexMin {
		l.buildIndex()
	}
}

// buildIndex materializes the sorted-order index from the linked list.
func (l *ListLevel) buildIndex() {
	l.indexed = true
	if cap(l.baseKeys) < l.n {
		l.baseKeys = make([]uint64, 0, l.n+l.n/2)
		l.baseIDs = make([]RangeID, 0, l.n+l.n/2)
	} else {
		l.baseKeys, l.baseIDs = l.baseKeys[:0], l.baseIDs[:0]
	}
	for r := l.slots[0].next; r != NoRange; r = l.slots[r].next {
		l.baseKeys = append(l.baseKeys, l.slots[r].key)
		l.baseIDs = append(l.baseIDs, r)
	}
	l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
	l.dead = 0
}

// pendLimit is the adaptive pending-buffer bound: ~sqrt(n), never below
// pendMax. Rounded to a power of two so it moves rarely.
func (l *ListLevel) pendLimit() int {
	lim := pendMax
	for lim*lim < l.n {
		lim <<= 1
	}
	return lim
}

// deadLimit is the adaptive tombstone bound, symmetric to pendLimit.
func (l *ListLevel) deadLimit() int {
	lim := deadMax
	for lim*lim < l.n {
		lim <<= 1
	}
	return lim
}

// Len returns the number of keys (excluding the sentinel).
func (l *ListLevel) Len() int { return l.n }

// Head returns the sentinel range.
func (l *ListLevel) Head() RangeID { return 0 }

// Key returns the key of range r; r must not be the head sentinel.
func (l *ListLevel) Key(r RangeID) uint64 { return l.slots[r].key }

// IsHead reports whether r is the sentinel.
func (l *ListLevel) IsHead(r RangeID) bool { return r == 0 }

// ByKey returns the range holding exactly key k — an O(log n) binary
// search over the sorted-order index (a bounded list walk below
// indexMin keys), allocation-free.
func (l *ListLevel) ByKey(k uint64) (RangeID, bool) {
	if !l.indexed {
		for r := l.slots[0].next; r != NoRange; r = l.slots[r].next {
			if kr := l.slots[r].key; kr == k {
				return r, true
			} else if kr > k {
				break
			}
		}
		return NoRange, false
	}
	// Base first: a live base hit is authoritative (a deleted key is
	// tombstoned there, never live), so the common case costs a single
	// binary search. A miss — tombstoned, or inserted since the last
	// rebuild — falls through to the pending buffer.
	if i := floorIndex(l.baseKeys, k); i >= 0 && l.baseKeys[i] == k && l.baseIDs[i] != NoRange {
		return l.baseIDs[i], true
	}
	if i := floorIndex(l.pendKeys, k); i >= 0 && l.pendKeys[i] == k {
		return l.pendIDs[i], true
	}
	return NoRange, false
}

// Next and Prev expose the linked-list order.
func (l *ListLevel) Next(r RangeID) RangeID { return l.slots[r].next }

// Prev returns the predecessor range of r.
func (l *ListLevel) Prev(r RangeID) RangeID { return l.slots[r].prev }

// Ranges returns all live range IDs.
func (l *ListLevel) Ranges() []RangeID {
	out := make([]RangeID, 0, l.n+1)
	l.VisitRanges(func(r RangeID) bool {
		out = append(out, r)
		return true
	})
	return out
}

// VisitRanges calls visit for every live range ID (in slot order) until
// visit returns false. It performs no allocation.
func (l *ListLevel) VisitRanges(visit func(RangeID) bool) {
	for i := range l.slots {
		if l.slots[i].live && !visit(RangeID(i)) {
			return
		}
	}
}

// Contains reports whether range r covers q: key(r) <= q < key(next(r)),
// with the sentinel covering everything below the first key.
func (l *ListLevel) Contains(r RangeID, q uint64) bool {
	if r != 0 && q < l.slots[r].key {
		return false
	}
	nx := l.slots[r].next
	return nx == NoRange || q < l.slots[nx].key
}

// Step moves one range toward q's terminal, or NoRange if r is terminal.
func (l *ListLevel) Step(r RangeID, q uint64) RangeID {
	if r != 0 && q < l.slots[r].key {
		return l.slots[r].prev
	}
	if nx := l.slots[r].next; nx != NoRange && q >= l.slots[nx].key {
		return nx
	}
	return NoRange
}

// floorIndex returns the position in ks of the largest key <= q, or -1
// when q is below every key.
func floorIndex(ks []uint64, q uint64) int {
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] <= q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Locate finds the terminal range containing q by binary search over the
// sorted-order index — O(log n + buffer bounds), allocation-free. Levels
// below indexMin keys walk the list instead (bounded by indexMin steps).
func (l *ListLevel) Locate(q uint64) RangeID {
	// Tail fast path: q at or above the maximum key (always true for the
	// head sentinel of an empty level, whose key reads as 0 with no
	// ranges above it).
	if t := l.tail; q >= l.slots[t].key {
		return t
	}
	if !l.indexed {
		return l.locateWalk(q)
	}
	// Base floor, skipping tombstones leftward (dead runs are bounded by
	// deadLimit, the rebuild threshold).
	bi := floorIndex(l.baseKeys, q)
	for bi >= 0 && l.baseIDs[bi] == NoRange {
		bi--
	}
	// Pending floor.
	pi := floorIndex(l.pendKeys, q)
	// The true floor is the larger of the two candidates: every live key
	// is in exactly one of base (untombstoned) and pending.
	switch {
	case bi < 0 && pi < 0:
		return 0
	case bi < 0:
		return l.pendIDs[pi]
	case pi < 0:
		return l.baseIDs[bi]
	case l.pendKeys[pi] > l.baseKeys[bi]:
		return l.pendIDs[pi]
	default:
		return l.baseIDs[bi]
	}
}

// locateWalk is the head-walk search: the search path for unindexed
// (O(1)-size) levels, and the reference implementation for the Locate
// property test.
func (l *ListLevel) locateWalk(q uint64) RangeID {
	r := RangeID(0)
	for {
		nx := l.slots[r].next
		if nx == NoRange || q < l.slots[nx].key {
			return r
		}
		r = nx
	}
}

// rebuild merges the pending buffer into the base array and drops
// tombstones. Triggered once per O(min(pendLimit, deadLimit)) updates,
// so its O(n) cost amortizes to O(n / threshold) = O(sqrt n) per update.
// The merge writes into a scratch buffer that is swapped with the base,
// so steady-state rebuilds allocate nothing.
func (l *ListLevel) rebuild() {
	// Append-only fast path: a pending buffer entirely above a
	// tombstone-free base extends it in place (the common bulk-load and
	// log-structured workload).
	if l.dead == 0 && (len(l.baseKeys) == 0 || len(l.pendKeys) == 0 ||
		l.pendKeys[0] > l.baseKeys[len(l.baseKeys)-1]) {
		l.baseKeys = append(l.baseKeys, l.pendKeys...)
		l.baseIDs = append(l.baseIDs, l.pendIDs...)
		l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
		return
	}
	merged, mergedIDs := l.mergeKeys[:0], l.mergeIDs[:0]
	if cap(merged) < l.n {
		merged = make([]uint64, 0, l.n+l.n/2)
		mergedIDs = make([]RangeID, 0, l.n+l.n/2)
	}
	bi, pi := 0, 0
	for bi < len(l.baseKeys) || pi < len(l.pendKeys) {
		if bi < len(l.baseKeys) && l.baseIDs[bi] == NoRange {
			bi++
			continue
		}
		takeBase := pi >= len(l.pendKeys) ||
			(bi < len(l.baseKeys) && l.baseKeys[bi] < l.pendKeys[pi])
		if takeBase {
			merged = append(merged, l.baseKeys[bi])
			mergedIDs = append(mergedIDs, l.baseIDs[bi])
			bi++
		} else {
			merged = append(merged, l.pendKeys[pi])
			mergedIDs = append(mergedIDs, l.pendIDs[pi])
			pi++
		}
	}
	l.mergeKeys, l.baseKeys = l.baseKeys, merged
	l.mergeIDs, l.baseIDs = l.baseIDs, mergedIDs
	l.pendKeys, l.pendIDs = l.pendKeys[:0], l.pendIDs[:0]
	l.dead = 0
}

// indexInsert records (k, id) in the sorted-order index.
func (l *ListLevel) indexInsert(k uint64, id RangeID) {
	// A tombstoned base entry for k (delete then re-insert) is fine: the
	// pending entry is live and Locate prefers it by the larger-key rule
	// (equal keys: base tombstone is skipped leftward).
	i := floorIndex(l.pendKeys, k) + 1
	l.pendKeys = append(l.pendKeys, 0)
	copy(l.pendKeys[i+1:], l.pendKeys[i:])
	l.pendKeys[i] = k
	l.pendIDs = append(l.pendIDs, NoRange)
	copy(l.pendIDs[i+1:], l.pendIDs[i:])
	l.pendIDs[i] = id
	if len(l.pendKeys) > l.pendLimit() {
		l.rebuild()
	}
}

// indexDelete removes key k from the sorted-order index.
func (l *ListLevel) indexDelete(k uint64) {
	if i := floorIndex(l.pendKeys, k); i >= 0 && l.pendKeys[i] == k {
		l.pendKeys = append(l.pendKeys[:i], l.pendKeys[i+1:]...)
		l.pendIDs = append(l.pendIDs[:i], l.pendIDs[i+1:]...)
		return
	}
	i := floorIndex(l.baseKeys, k)
	if i < 0 || l.baseKeys[i] != k || l.baseIDs[i] == NoRange {
		return
	}
	l.baseIDs[i] = NoRange
	l.dead++
	if l.dead > l.deadLimit() {
		l.rebuild()
	}
}

// InsertKey splices k after range hint (which must be the terminal range
// containing k, or a nearby range from which Step reaches it). A NoRange
// or dead hint falls back to the O(log n) local search rather than
// walking from the head sentinel.
func (l *ListLevel) InsertKey(k uint64, hint RangeID) (RangeID, error) {
	if _, ok := l.ByKey(k); ok {
		return NoRange, fmt.Errorf("core: duplicate key %d", k)
	}
	return l.insertKeyUnchecked(k, hint), nil
}

// insertKeyUnchecked is InsertKey without the duplicate probe, for
// callers that have already proven k absent (BlockedWeb.Insert verifies
// non-membership at the ground level before climbing, and every level's
// key set is a subset of the ground's).
func (l *ListLevel) insertKeyUnchecked(k uint64, hint RangeID) RangeID {
	cur := hint
	if cur == NoRange || int(cur) >= len(l.slots) || !l.slots[cur].live {
		cur = l.Locate(k)
	}
	for {
		nx := l.Step(cur, k)
		if nx == NoRange {
			break
		}
		cur = nx
	}
	var id RangeID
	if len(l.free) > 0 {
		id = l.free[len(l.free)-1]
		l.free = l.free[:len(l.free)-1]
		l.slots[id].key = k
		l.slots[id].live = true
	} else {
		id = RangeID(len(l.slots))
		l.slots = append(l.slots, lslot{key: k, live: true})
	}
	nx := l.slots[cur].next
	l.slots[id].prev = cur
	l.slots[id].next = nx
	l.slots[cur].next = id
	if nx != NoRange {
		l.slots[nx].prev = id
	} else {
		l.tail = id
	}
	l.n++
	if l.indexed {
		l.indexInsert(k, id)
	} else if l.n > indexMin {
		l.buildIndex()
	}
	return id
}

// DeleteKey removes key k, returning the dead range and its predecessor
// (which inherits the dead range's interval).
func (l *ListLevel) DeleteKey(k uint64) (dead, pred RangeID, err error) {
	id, ok := l.ByKey(k)
	if !ok {
		return NoRange, NoRange, fmt.Errorf("core: key %d not found", k)
	}
	p, nx := l.slots[id].prev, l.slots[id].next
	l.slots[p].next = nx
	if nx != NoRange {
		l.slots[nx].prev = p
	} else {
		l.tail = p
	}
	l.slots[id].live = false
	l.free = append(l.free, id)
	l.n--
	if l.indexed {
		l.indexDelete(k)
	}
	return id, p, nil
}

// Keys returns all keys in ascending order.
func (l *ListLevel) Keys() []uint64 {
	return l.AppendKeys(make([]uint64, 0, l.n))
}

// AppendKeys appends all keys in ascending order to buf and returns the
// extended slice — the allocation-free variant of Keys for callers with
// a scratch buffer.
func (l *ListLevel) AppendKeys(buf []uint64) []uint64 {
	for r := l.slots[0].next; r != NoRange; r = l.slots[r].next {
		buf = append(buf, l.slots[r].key)
	}
	return buf
}

// CheckInvariants verifies list structure: ascending keys, consistent
// prev/next, and agreement between the linked list and the sorted-order
// index (base + pending merge) when the level is large enough to carry
// one.
func (l *ListLevel) CheckInvariants() error {
	count := 0
	prev := RangeID(0)
	for r := l.slots[0].next; r != NoRange; r = l.slots[r].next {
		if !l.slots[r].live {
			return fmt.Errorf("core: dead range %d linked", r)
		}
		if l.slots[r].prev != prev {
			return fmt.Errorf("core: range %d prev %d, want %d", r, l.slots[r].prev, prev)
		}
		if prev != 0 && l.slots[r].key <= l.slots[prev].key {
			return fmt.Errorf("core: keys out of order at range %d", r)
		}
		if got, ok := l.ByKey(l.slots[r].key); !ok || got != r {
			return fmt.Errorf("core: ByKey broken for key %d", l.slots[r].key)
		}
		if got := l.Locate(l.slots[r].key); got != r {
			return fmt.Errorf("core: Locate(%d) = %d, want %d", l.slots[r].key, got, r)
		}
		prev = r
		count++
	}
	if count != l.n {
		return fmt.Errorf("core: count %d, n %d", count, l.n)
	}
	if l.tail != prev {
		return fmt.Errorf("core: tail is %d, want %d", l.tail, prev)
	}
	if !l.indexed {
		if len(l.baseKeys) != 0 || len(l.pendKeys) != 0 || l.dead != 0 {
			return fmt.Errorf("core: unindexed level carries index state")
		}
		if l.n > indexMin {
			return fmt.Errorf("core: level of %d keys is unindexed (bound %d)", l.n, indexMin)
		}
		return nil
	}
	live := 0
	for i, id := range l.baseIDs {
		if i > 0 && l.baseKeys[i] <= l.baseKeys[i-1] {
			return fmt.Errorf("core: base index out of order at %d", i)
		}
		if id != NoRange {
			live++
			if l.slots[id].key != l.baseKeys[i] {
				return fmt.Errorf("core: base index key mismatch at %d", i)
			}
		}
	}
	for i, id := range l.pendIDs {
		if i > 0 && l.pendKeys[i] <= l.pendKeys[i-1] {
			return fmt.Errorf("core: pending index out of order at %d", i)
		}
		if id == NoRange || l.slots[id].key != l.pendKeys[i] {
			return fmt.Errorf("core: pending index broken at %d", i)
		}
		live++
	}
	if live != l.n {
		return fmt.Errorf("core: sorted-order index holds %d live keys, n %d", live, l.n)
	}
	if len(l.baseIDs) != len(l.baseKeys) || len(l.pendIDs) != len(l.pendKeys) {
		return fmt.Errorf("core: sorted-order index arrays diverge in length")
	}
	return nil
}
