package core

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestListLevelQuickOracle drives random build/insert/delete/locate
// sequences against a sorted-slice oracle via testing/quick.
func TestListLevelQuickOracle(t *testing.T) {
	f := func(seedRaw uint32, opsRaw []uint16) bool {
		rng := xrand.New(uint64(seedRaw))
		l, err := NewListLevel(nil)
		if err != nil {
			return false
		}
		var oracle []uint64
		contains := func(k uint64) bool {
			i := sort.Search(len(oracle), func(i int) bool { return oracle[i] >= k })
			return i < len(oracle) && oracle[i] == k
		}
		for _, opRaw := range opsRaw {
			k := uint64(opRaw % 512)
			switch rng.Intn(3) {
			case 0: // insert
				if contains(k) {
					if _, err := l.InsertKey(k, NoRange); err == nil {
						return false // duplicate accepted
					}
					continue
				}
				if _, err := l.InsertKey(k, l.Locate(k)); err != nil {
					return false
				}
				i := sort.Search(len(oracle), func(i int) bool { return oracle[i] >= k })
				oracle = append(oracle, 0)
				copy(oracle[i+1:], oracle[i:])
				oracle[i] = k
			case 1: // delete
				_, _, err := l.DeleteKey(k)
				if contains(k) != (err == nil) {
					return false
				}
				if err == nil {
					i := sort.Search(len(oracle), func(i int) bool { return oracle[i] >= k })
					oracle = append(oracle[:i], oracle[i+1:]...)
				}
			case 2: // locate = floor
				r := l.Locate(k)
				i := sort.Search(len(oracle), func(i int) bool { return oracle[i] > k })
				if i == 0 {
					if !l.IsHead(r) {
						return false
					}
				} else if l.IsHead(r) || l.Key(r) != oracle[i-1] {
					return false
				}
			}
		}
		return l.CheckInvariants() == nil && l.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockedWebQuickFloor cross-checks the blocked web's floor answers
// against a sorted slice for random key sets and queries.
func TestBlockedWebQuickFloor(t *testing.T) {
	net := newTestNet()
	f := func(seedRaw uint32, qRaw []uint16) bool {
		rng := xrand.New(uint64(seedRaw) ^ 0xabc)
		n := 16 + rng.Intn(200)
		keys := distinctKeys(rng, n, 4096)
		w, err := NewBlockedWeb(net, keys, BlockedConfig{Seed: uint64(seedRaw), M: 4 + rng.Intn(30)})
		if err != nil {
			return false
		}
		sorted := append([]uint64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, qr := range qRaw {
			q := uint64(qr % 5000)
			got, ok, _, _ := w.Query(q, 0)
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > q })
			if i == 0 {
				if ok {
					return false
				}
			} else if !ok || got != sorted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newTestNet returns a small shared network for quick tests (storage
// accounting accumulates across iterations, which is irrelevant here).
func newTestNet() *sim.Network { return sim.NewNetwork(64) }
