package core

import (
	"fmt"
	"sort"
	"testing"

	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trie"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// These property tests pin the bulk-load acceptance claim of the PR 4
// write-path overhaul: on a fixed seed, building a web over an item set
// in one shot (the O(n)-per-level bulk path) yields a structure
// equivalent to inserting the same items one at a time into an empty web
// — identical set-tree shape, identical per-node item sets, and
// identical query answers. Range IDs and host placement may differ (the
// incremental path consumes placement randomness per update), so the
// signature compares structure, not identities.

// webSignature serializes the set tree: depth, item count, and the
// sorted item codes of every node in DFS order.
func webSignature[L, T, Q any](w *Web[L, T, Q]) []string {
	var out []string
	w.walkNodes(func(n *setNode) {
		codes := make([]uint64, 0, len(w.items[n]))
		for _, x := range w.items[n] {
			codes = append(codes, w.ops.CodeOf(x))
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		out = append(out, fmt.Sprintf("d%d n%d %v", n.depth, n.count, codes))
	})
	return out
}

func assertSameSignature(t *testing.T, name string, bulk, seq []string) {
	t.Helper()
	if len(bulk) != len(seq) {
		t.Fatalf("%s: bulk has %d set-tree nodes, sequential %d", name, len(bulk), len(seq))
	}
	for i := range bulk {
		if bulk[i] != seq[i] {
			t.Fatalf("%s: set-tree node %d differs:\n bulk %s\n seq  %s", name, i, bulk[i], seq[i])
		}
	}
}

func TestBulkEqualsSequentialOneDim(t *testing.T) {
	rng := xrand.New(0xb01d)
	keys := distinctKeys(rng, 700, 1<<40)
	cfg := Config{Seed: 77}

	bulk, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), sim.NewNetwork(16), keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewWeb[*ListLevel, uint64, uint64](NewListOps(), sim.NewNetwork(16), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := seq.Insert(k, sim.HostID(i%16)); err != nil {
			t.Fatalf("sequential insert %d: %v", i, err)
		}
	}
	assertSameSignature(t, "onedim", webSignature(bulk), webSignature(seq))
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential invariants: %v", err)
	}
	qrng := xrand.New(5)
	g1, g2 := bulk.GroundStructure(), seq.GroundStructure()
	for i := 0; i < 500; i++ {
		q := qrng.Uint64n(1 << 40)
		r1, err1 := bulk.Query(q, sim.HostID(i%16))
		r2, err2 := seq.Query(q, sim.HostID(i%16))
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d: %v / %v", q, err1, err2)
		}
		k1, h1 := uint64(0), g1.IsHead(r1.Range)
		if !h1 {
			k1 = g1.Key(r1.Range)
		}
		k2, h2 := uint64(0), g2.IsHead(r2.Range)
		if !h2 {
			k2 = g2.Key(r2.Range)
		}
		if h1 != h2 || k1 != k2 {
			t.Fatalf("query %d: bulk floor (%v,%d), sequential floor (%v,%d)", q, h1, k1, h2, k2)
		}
	}
}

func TestBulkEqualsSequentialPoints(t *testing.T) {
	rng := xrand.New(0xb02d)
	pts := make([]quadtree.Point, 0, 400)
	seen := map[uint64]bool{}
	ops := NewQuadOps(2)
	for len(pts) < 400 {
		p := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
		c, err := ops.Code(p)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[c] {
			seen[c] = true
			pts = append(pts, p)
		}
	}
	cfg := Config{Seed: 78}
	bulk, err := NewWeb[*quadtree.Tree, quadtree.Point, uint64](NewQuadOps(2), sim.NewNetwork(16), pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An empty quadtree has no ranges at all (no universal cell), so the
	// first point cannot be routed; the sequential twin seeds with one
	// point and inserts the rest.
	seq, err := NewWeb[*quadtree.Tree, quadtree.Point, uint64](NewQuadOps(2), sim.NewNetwork(16), pts[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts[1:] {
		if _, err := seq.Insert(p, sim.HostID(i%16)); err != nil {
			t.Fatalf("sequential insert %d: %v", i, err)
		}
	}
	assertSameSignature(t, "points", webSignature(bulk), webSignature(seq))
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential invariants: %v", err)
	}
}

func TestBulkEqualsSequentialStrings(t *testing.T) {
	rng := xrand.New(0xb03d)
	seen := map[string]bool{}
	var keys []string
	for len(keys) < 400 {
		n := 4 + int(rng.Uint64n(12))
		b := make([]byte, n)
		for i := range b {
			b[i] = "acgt"[rng.Intn(4)]
		}
		s := string(b)
		if !seen[s] {
			seen[s] = true
			keys = append(keys, s)
		}
	}
	cfg := Config{Seed: 79}
	bulk, err := NewWeb[*trie.Trie, string, string](NewTrieOps(), sim.NewNetwork(16), keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewWeb[*trie.Trie, string, string](NewTrieOps(), sim.NewNetwork(16), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := seq.Insert(k, sim.HostID(i%16)); err != nil {
			t.Fatalf("sequential insert %d: %v", i, err)
		}
	}
	assertSameSignature(t, "strings", webSignature(bulk), webSignature(seq))
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential invariants: %v", err)
	}
}

// blockedSignature serializes a BlockedWeb's set tree: depth, count, and
// key list per node in DFS order (block directories are excluded — the
// incremental path cuts blocks by growth and split, the bulk path by
// construction, and both are valid placements of the same level).
func blockedSignature(w *BlockedWeb) []string {
	var out []string
	var rec func(n *bnode)
	rec = func(n *bnode) {
		if n == nil {
			return
		}
		out = append(out, fmt.Sprintf("d%d n%d %v", n.depth, n.count, n.lvl.Keys()))
		rec(n.kids[0])
		rec(n.kids[1])
	}
	rec(w.root)
	return out
}

func TestBulkEqualsSequentialBlocked(t *testing.T) {
	rng := xrand.New(0xb04d)
	keys := distinctKeys(rng, 700, 1<<40)
	cfg := BlockedConfig{Seed: 80, M: 12}

	bulk, err := NewBlockedWeb(sim.NewNetwork(16), keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewBlockedWeb(sim.NewNetwork(16), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := seq.Insert(k, sim.HostID(i%16)); err != nil {
			t.Fatalf("sequential insert %d: %v", i, err)
		}
	}
	assertSameSignature(t, "blocked", blockedSignature(bulk), blockedSignature(seq))
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential invariants: %v", err)
	}
	qrng := xrand.New(6)
	for i := 0; i < 500; i++ {
		q := qrng.Uint64n(1 << 40)
		k1, ok1, _, _ := bulk.Query(q, sim.HostID(i%16))
		k2, ok2, _, _ := seq.Query(q, sim.HostID(i%16))
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("query %d: bulk floor (%v,%d), sequential floor (%v,%d)", q, ok1, k1, ok2, k2)
		}
	}
}

func TestBulkEqualsSequentialBucketed(t *testing.T) {
	rng := xrand.New(0xb05d)
	keys := distinctKeys(rng, 600, 1<<40)

	bulk, err := NewBucketWeb(sim.NewNetwork(16), keys, 16, 12, 81, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The bucket web cannot start empty (queries need one bucket), so the
	// sequential twin seeds with the first key and inserts the rest.
	seq, err := NewBucketWeb(sim.NewNetwork(16), keys[:1], 16, 12, 81, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys[1:] {
		if _, err := seq.Insert(k, sim.HostID(i%16)); err != nil {
			t.Fatalf("sequential insert %d: %v", i, err)
		}
	}
	if bulk.Len() != seq.Len() {
		t.Fatalf("lengths diverged: bulk %d, sequential %d", bulk.Len(), seq.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential invariants: %v", err)
	}
	// Bucket boundaries legitimately differ (split-grown vs cut at
	// construction); the contract is answer equivalence.
	qrng := xrand.New(7)
	for i := 0; i < 500; i++ {
		q := qrng.Uint64n(1 << 40)
		k1, ok1, _, _ := bulk.Query(q, sim.HostID(i%16))
		k2, ok2, _, _ := seq.Query(q, sim.HostID(i%16))
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("query %d: bulk floor (%v,%d), sequential floor (%v,%d)", q, ok1, k1, ok2, k2)
		}
	}
}
