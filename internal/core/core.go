// Package core implements the skip-web framework of Arge, Eppstein, and
// Goodrich (PODC 2005): randomized distributed data structures built over
// any range-determined link structure with a set-halving lemma.
//
// # The level hierarchy (Section 2.3)
//
// Given a ground set S, the framework repeatedly halves it at random:
// S_b0 and S_b1 partition S_b according to one fresh random bit per
// element. Each subset gets its own link structure D(S_b). The subsets
// form a binary tree with D(S) at the bottom (level 0) and O(1)-size sets
// at the top; an element belongs to one structure per level, so total
// storage is O(n log n) ranges spread over the hosts.
//
// # Hyperlinks and routing (Sections 2.3, 2.5)
//
// Every range of D(S_b0) stores hyperlinks to the ranges of D(S_b) it
// conflicts with. A query starts at a top-level structure (the searching
// host's root), finds the maximal range containing the query there, and
// follows hyperlinks level by level down to D(S), paying an expected O(1)
// messages per level by the set-halving lemma — O(log n) expected
// messages overall (Theorem 2).
//
// For nested range families (quadtree cells, trie loci) the conflict
// hyperlink is a single exact pointer: every cell of D(T) is also a cell
// of D(S) when T ⊆ S, so the hyperlink lands on the identical range in
// the parent structure and a short local walk (expected O(1) steps, again
// by the halving lemma) refines it to the parent terminal. For flat range
// families (sorted-list intervals, trapezoids) the hyperlink is the
// conflict list itself and the parent terminal is found by membership
// tests over its expected-O(1) entries. Both realizations follow the
// paper's routing; they differ only in which part of C(Q, S_b) is
// materialized as pointers.
//
// # Updates (Section 4)
//
// An insertion first routes to the level-0 terminal like a query, then
// climbs the element's own random bit path: at each level it derives the
// child terminal from the parent terminal (an expected O(1)-step walk),
// applies the O(1) structural change, and rewires the O(1) affected
// hyperlinks — O(1) expected messages per level, O(log n) total.
// Deletions run the same climb first and then unwind top-down so that
// hyperlink repair always targets live ranges.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Fabric is the accounting substrate the engines run on — the slice of
// the network the structures actually touch: open an accounting Op for a
// query or update, charge storage to a host, and read the live host set
// for placement and failover. *sim.Network is the canonical
// implementation; the engines speak only to this interface so a
// transport layer can interpose on the same contract (the wire transport
// taps message delivery via sim.Network.SetDeliver and hands the engines
// the identical Fabric). All message charging flows through the Ops
// returned by NewOp, so a Fabric implementation observes every hop the
// cost model counts.
type Fabric interface {
	// NewOp opens the accounting context for one logical operation
	// starting at host start (sim.None for "not yet placed").
	NewOp(start sim.HostID) *sim.Op
	// AddStorage records delta storage units at host h.
	AddStorage(h sim.HostID, delta int)
	// Alive reports whether host h has joined and not departed.
	Alive(h sim.HostID) bool
	// LiveHosts returns the number of currently live hosts.
	LiveHosts() int
	// LiveAt returns the i-th live host in ascending id order.
	LiveAt(i int) sim.HostID
	// NextLive returns the cyclic successor of h in the live set.
	NextLive(h sim.HostID) sim.HostID
	// Crashed reports whether host h departed uncleanly (down, but on a
	// durable fabric restartable with its shard intact).
	Crashed(h sim.HostID) bool
	// Durable reports whether hosts persist a write-ahead log: a crashed
	// host is expected to Restart and reconcile rather than be rebuilt,
	// so write-throughs to it are queued as divergence instead of sent.
	Durable() bool
	// CostModel returns the installed per-link latency model, or nil for
	// the default zero-latency accounting. Engines consult it only for
	// hops they count outside an Op (BucketWeb's bucket visits); charged
	// hops pick it up inside Op itself.
	CostModel() sim.CostModel
}

// *sim.Network is the canonical Fabric.
var _ Fabric = (*sim.Network)(nil)

// RangeID identifies a range (a node or link of a link structure) within
// one level. NoRange means "none".
type RangeID int32

// NoRange is the sentinel RangeID.
const NoRange RangeID = -1

// ErrStatic is returned by Ops implementations that do not support
// dynamic updates (the trapezoidal-map domain, per Section 4's
// amortization caveat).
var ErrStatic = errors.New("core: this link structure is static (build + query only)")

// DataLossError is returned by a Repair pass that found units with no
// surviving live replica: the crash tolerance (Replicas-1 simultaneous
// failures) was exceeded and Units storage units are unrecoverable.
// Queries that need a lost unit keep failing fast with a HostDownError.
type DataLossError struct {
	// Units counts the storage units with no live replica — a snapshot
	// of everything currently lost, so a later Repair re-reports units
	// lost in earlier crashes (they are still gone) plus any new ones.
	Units int
	// Hosts lists, ascending, the dead hosts whose replicas the lost
	// units lived on — the crash set that exceeded the tolerance.
	Hosts []sim.HostID
	// Structures maps structure names to their lost-unit counts when the
	// loss spans several structures on one cluster (the public Crash and
	// Repair aggregations fill it; engine-level errors leave it nil).
	Structures map[string]int
}

// Error describes the loss: how many units, on which dead hosts, and —
// when aggregated across a cluster — how the loss splits per structure.
func (e *DataLossError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d storage units lost (no surviving replica)", e.Units)
	if len(e.Hosts) > 0 {
		fmt.Fprintf(&b, "; dead hosts %v", e.Hosts)
	}
	if len(e.Structures) > 0 {
		names := make([]string, 0, len(e.Structures))
		for name := range e.Structures {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("; per structure:")
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %s=%d", name, e.Structures[name])
		}
	}
	return b.String()
}

// Change describes the O(1) structural delta a level structure undergoes
// during an update. The engine consumes a Change synchronously: its
// slices may be scratch buffers owned by the Ops implementation, valid
// only until the next Insert or Delete call on the same instance.
type Change struct {
	// Added lists ranges created by the update.
	Added []RangeID
	// Removed lists ranges destroyed by the update.
	Removed []RangeID
	// RemapTo is parallel to Removed: RemapTo[i] is the surviving range
	// that inherits hyperlinks anchored at Removed[i], or NoRange when
	// nothing survives (legal only if no child is anchored there).
	RemapTo []RangeID
	// Touched lists surviving ranges whose extent changed, requiring
	// hyperlink recomputation.
	Touched []RangeID
}

// Ops is the contract a range-determined link structure implements to
// participate in a skip-web. L is the structure type, T the item type,
// and Q the query-point type. Implementations must be deterministic.
type Ops[L, T, Q any] interface {
	// Build constructs D(items).
	Build(items []T) (L, error)
	// VisitRanges enumerates the live ranges of l, calling visit for each
	// until visit returns false. Implementations must not allocate per
	// call: the query descent runs on this enumeration. Use RangesOf to
	// materialize a slice in cold paths.
	VisitRanges(l L, visit func(RangeID) bool)
	// Contains reports whether range r of l contains query point q.
	Contains(l L, r RangeID, q Q) bool
	// Depth is the specificity of range r (deeper = finer). Flat range
	// families return 0.
	Depth(l L, r RangeID) int
	// Step performs one local descent step from r toward the terminal
	// range containing q, returning NoRange when r is terminal.
	Step(l L, r RangeID, q Q) RangeID
	// Anchors computes the hyperlinks for range r of child against
	// parent, where child's item set is a subset of parent's: either the
	// single identical range (nested families) or the conflict list
	// (flat families). It is called at build and update time. The engine
	// copies the result into its own storage, so implementations may
	// return a reusable scratch buffer, valid until the next Anchors call.
	Anchors(child, parent L, r RangeID) ([]RangeID, error)
	// Payload reports the storage units range r of l occupies at its
	// host beyond the engine-owned hyperlink pointers — the data a
	// host-churn migration must physically move. The engine charges
	// Payload(l, r) units when placing r and moves them, one message per
	// unit, when Rehome or Rebalance reassigns r to a new host.
	// Implementations must be pure in l's mutable state: Payload is also
	// consulted while releasing a range that the structural delete has
	// already unspliced.
	Payload(l L, r RangeID) int
	// ChildTerminal derives the terminal range of child containing q
	// from the terminal tp of parent containing q, walking locally and
	// incrementing *steps once per host-visible hop.
	ChildTerminal(child, parent L, tp RangeID, q Q, steps *int) (RangeID, error)
	// Locate performs a full local search for q's terminal range in l.
	Locate(l L, q Q) RangeID
	// QueryOf maps an item to its query point.
	QueryOf(x T) Q
	// CodeOf maps an item to a code used to derive its membership bits;
	// it should be injective (hash collisions merely degrade leaf sizes).
	CodeOf(x T) uint64
	// Insert adds x (whose query point is q) to l; hint is the terminal
	// range containing q before the insert, or NoRange.
	Insert(l L, x T, q Q, hint RangeID) (Change, error)
	// Delete removes x from l.
	Delete(l L, x T, q Q) (Change, error)
}

// BulkOps is the optional bulk-load extension of Ops. A structure whose
// Build result is independent of item order can expose a canonical sort
// plus a sorted-input build: NewWeb then sorts the item set once at the
// root, every bit partition preserves that order, and each level builds
// through BuildSorted in O(level size) instead of re-sorting — O(n) per
// level for the whole hierarchy. Because Build is order-independent, the
// produced structures (and therefore range enumeration order, host
// placement, and message accounting) are identical to the incremental
// path on any seed.
type BulkOps[L, T any] interface {
	// SortForBuild sorts items in place into the canonical build order,
	// reporting false when the items cannot be ordered (e.g. invalid
	// coordinates); the engine then falls back to the plain Build path.
	SortForBuild(items []T) bool
	// BuildSorted constructs D(items) from canonically ordered items.
	BuildSorted(items []T) (L, error)
}

// RangesOf materializes the live ranges of l into a fresh slice. It is a
// convenience for cold paths (invariant checks, statistics, tests); hot
// paths iterate with Ops.VisitRanges directly.
func RangesOf[L, T, Q any](ops Ops[L, T, Q], l L) []RangeID {
	var out []RangeID
	ops.VisitRanges(l, func(r RangeID) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Config tunes a Web.
type Config struct {
	// Seed drives membership bits and host assignment.
	Seed uint64
	// LeafMax is the size above which a level-tree leaf set is split.
	LeafMax int
	// MergeMin is the size below which an internal set node re-absorbs
	// its children.
	MergeMin int
	// MaxDepth caps the number of levels.
	MaxDepth int
	// Replicas is the replication factor k: every range is mirrored on k
	// distinct live hosts, queries fail over to the next live replica,
	// and updates write through to all of them. 0 or 1 means unreplicated
	// — the seed-compatible default whose placement, randomness, and
	// message accounting are bit-identical to pre-replication builds.
	Replicas int
}

func (c Config) withDefaults() Config {
	if c.LeafMax <= 0 {
		c.LeafMax = 4
	}
	if c.MergeMin <= 0 {
		c.MergeMin = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 60
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// backref records that range r of the given set-tree child is anchored at
// some range of this node.
type backref struct {
	child *setNode
	r     RangeID
}

// setNode is one node of the binary subset tree: a link structure over
// S_b together with its hyperlinks into the parent structure.
type setNode struct {
	id    int
	depth int
	count int
	hosts map[RangeID]sim.HostID
	// mirrors holds each range's k-1 secondary replica hosts (the
	// primary lives in hosts). It is nil on unreplicated webs, so the
	// k = 1 fast paths never touch it.
	mirrors   map[RangeID][]sim.HostID
	anchors   map[RangeID][]RangeID // my range -> ranges of parent.s
	backrefs  map[RangeID][]backref // my range -> child ranges anchored here
	parent    *setNode
	kids      [2]*setNode
	inLeaves  bool // member of the query-entry list
	leafIdx   int  // position in w.leaves while inLeaves (O(1) removal)
	structAny any  // the L value, stored untyped; Web methods re-type it

	// rangeCache is the materialized range enumeration, maintained only
	// while the node is a query-entry leaf (inLeaves). Entry leaves are
	// O(1) size and every query descent starts by scanning one, so the
	// scan iterates this plain slice instead of the VisitRanges iterator:
	// no closure, no allocation. Rebuilt by the (single-writer) update
	// path whenever the leaf's structure changes.
	rangeCache []RangeID
}

// Web is a distributed skip-web over items of type T with queries of type
// Q, built on link structures of type L.
type Web[L, T, Q any] struct {
	ops    Ops[L, T, Q]
	bulk   BulkOps[L, T] // non-nil when ops supports sorted bulk loads
	net    Fabric
	cfg    Config
	rng    *xrand.Rand
	root   *setNode
	leaves []*setNode // nonempty leaf structures, query entry points
	items  map[*setNode][]T
	// codes is parallel to items: codes[n][i] == ops.CodeOf(items[n][i]).
	// Codes are computed once per item and threaded through partition,
	// insert, and delete, so membership-bit derivation and the delete
	// path's item search never recompute CodeOf (for tree-backed items a
	// CodeOf is a full Morton/hash encode).
	codes  map[*setNode][]uint64
	nextID int
	n      int

	// Update-path scratch buffers, reused across operations so the
	// insert/delete hot paths allocate nothing per level. Updates are
	// single-writer (the batch engine serializes them), so plain fields
	// are safe.
	dirtyScratch []RangeID  // Added+Touched ranges in applyInsert/applyDelete
	todoScratch  []childRef // repairChildren work list
	frameScratch []delFrame // Delete's per-level terminal stack

	// missed records write-through messages suppressed because the target
	// replica host was crashed on a durable fabric: the value counts the
	// updates that unit's replica at that host slept through, and
	// RestartHost treats any positive count as divergence the merkle
	// reconcile must re-copy. Lazily allocated; nil until the first
	// durable crash overlaps an update.
	missed map[webMiss]int
}

// webMiss keys one stale replica: range r of node n at crashed host h.
type webMiss struct {
	n *setNode
	r RangeID
	h sim.HostID
}

// childRef identifies one child range whose hyperlinks need recomputation.
type childRef struct {
	child *setNode
	r     RangeID
}

// delFrame records the terminal range at one level of a delete's bit path.
type delFrame struct {
	node *setNode
	term RangeID
}

// NewWeb builds a skip-web over items. The network supplies hosts for
// range placement; every range and hyperlink is charged as storage to
// its host — construction charges storage only, never messages. When
// ops implements BulkOps, construction takes the O(n)-per-level bulk
// path: one canonical sort at the root, order-preserving partitions,
// and BuildSorted per level, with placement and accounting identical to
// the plain path.
func NewWeb[L, T, Q any](ops Ops[L, T, Q], net Fabric, items []T, cfg Config) (*Web[L, T, Q], error) {
	cfg = cfg.withDefaults()
	w := &Web[L, T, Q]{
		ops:   ops,
		net:   net,
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed ^ 0x5eb5eb),
		items: make(map[*setNode][]T),
		codes: make(map[*setNode][]uint64),
	}
	all := append([]T(nil), items...)
	sorted := false
	if b, ok := any(ops).(BulkOps[L, T]); ok {
		if b.SortForBuild(all) {
			w.bulk = b
			sorted = true
		}
	}
	// Codes are computed lazily inside the root buildSubtree, after the
	// level-0 Build has validated every item: CodeOf may panic on items
	// Build would reject with an error (invalid quadtree points).
	root, err := w.buildSubtree(all, nil, 0, nil, sorted)
	if err != nil {
		return nil, err
	}
	w.root = root
	w.n = len(items)
	return w, nil
}

// mix decorrelates an item code from any structure in the key space; bit
// i of the result is the element's level-i membership bit.
func (w *Web[L, T, Q]) mix(code uint64) uint64 {
	z := code ^ w.cfg.Seed ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *Web[L, T, Q]) bitAt(x T, depth int) int {
	return w.bitFromCode(w.ops.CodeOf(x), depth)
}

// bitFromCode is the level-depth membership bit of a precomputed code.
func (w *Web[L, T, Q]) bitFromCode(code uint64, depth int) int {
	return int(w.mix(code) >> uint(depth) & 1)
}

func (w *Web[L, T, Q]) structOf(n *setNode) L { return n.structAny.(L) }

// buildSubtree constructs the set node for items at the given depth,
// recursing into halves while the set is large enough. With sorted set
// (items in canonical build order, bulk path), each level builds via
// BuildSorted; partitions preserve the order, so sortedness propagates.
// codes must parallel items (codes[i] == CodeOf(items[i])); the root
// call passes nil and the codes are filled in once Build has accepted
// the full item set (CodeOf may panic on items Build rejects).
func (w *Web[L, T, Q]) buildSubtree(items []T, codes []uint64, depth int, parent *setNode, sorted bool) (*setNode, error) {
	var s L
	var err error
	if sorted && w.bulk != nil {
		s, err = w.bulk.BuildSorted(items)
	} else {
		s, err = w.ops.Build(items)
	}
	if err != nil {
		return nil, err
	}
	if codes == nil {
		codes = make([]uint64, len(items))
		for i, x := range items {
			codes[i] = w.ops.CodeOf(x)
		}
	}
	n := &setNode{
		id:        w.nextID,
		depth:     depth,
		count:     len(items),
		hosts:     make(map[RangeID]sim.HostID),
		anchors:   make(map[RangeID][]RangeID),
		backrefs:  make(map[RangeID][]backref),
		parent:    parent,
		structAny: s,
	}
	if w.cfg.Replicas > 1 {
		n.mirrors = make(map[RangeID][]sim.HostID)
	}
	w.nextID++
	w.items[n] = items
	w.codes[n] = codes
	w.ops.VisitRanges(s, func(r RangeID) bool {
		w.placeRange(n, r)
		return true
	})
	if parent != nil {
		if err := w.rewireAll(n); err != nil {
			return nil, err
		}
	}
	if len(items) > w.cfg.LeafMax && depth < w.cfg.MaxDepth {
		var halves [2][]T
		var codeHalves [2][]uint64
		for i, x := range items {
			b := w.bitFromCode(codes[i], depth)
			halves[b] = append(halves[b], x)
			codeHalves[b] = append(codeHalves[b], codes[i])
		}
		for b := 0; b < 2; b++ {
			kid, err := w.buildSubtree(halves[b], codeHalves[b], depth+1, n, sorted)
			if err != nil {
				return nil, err
			}
			n.kids[b] = kid
		}
	}
	if n.kids[0] == nil && len(items) > 0 {
		w.addLeaf(n)
	}
	return n, nil
}

// addLeaf registers n as a query entry point (a nonempty leaf structure)
// and builds its range cache. Nodes already registered keep their cache
// current via the applyInsert/applyDelete refresh, so re-adding is free.
func (w *Web[L, T, Q]) addLeaf(n *setNode) {
	if n.inLeaves {
		return
	}
	n.inLeaves = true
	n.leafIdx = len(w.leaves)
	w.leaves = append(w.leaves, n)
	w.refreshRangeCache(n)
}

// refreshRangeCache rematerializes n's cached range enumeration in
// VisitRanges (slot) order, preserving the exact host-visit order of the
// entry scan.
func (w *Web[L, T, Q]) refreshRangeCache(n *setNode) {
	buf := n.rangeCache[:0]
	w.ops.VisitRanges(w.structOf(n), func(r RangeID) bool {
		buf = append(buf, r)
		return true
	})
	n.rangeCache = buf
}

// pickHost draws a uniformly random live host. With no churn the live
// set is 0..H-1, so the draw consumes the same randomness as the
// pre-churn rng.Intn(Hosts()) and placement stays seed-compatible.
func (w *Web[L, T, Q]) pickHost() sim.HostID {
	return w.net.LiveAt(w.rng.Intn(w.net.LiveHosts()))
}

// replicaTarget returns how many distinct live hosts each unit should be
// mirrored on right now: the configured factor, capped by the live host
// count (a 2-host cluster cannot hold 3 distinct replicas).
func (w *Web[L, T, Q]) replicaTarget() int {
	k := w.cfg.Replicas
	if live := w.net.LiveHosts(); k > live {
		k = live
	}
	return k
}

// pickHostExcluding draws a uniformly random live host not already in
// taken. Rejection sampling keeps the draw uniform over the remaining
// hosts; replica sets are O(k), so the membership scan is cheap. At
// k = 1 it is never called with a non-empty taken set, so the rng
// consumption matches pickHost exactly.
func (w *Web[L, T, Q]) pickHostExcluding(taken []sim.HostID) sim.HostID {
	for {
		h := w.pickHost()
		dup := false
		for _, t := range taken {
			if t == h {
				dup = true
				break
			}
		}
		if !dup {
			return h
		}
	}
}

// visitMirrors calls f for each secondary replica host of range r of n.
// It is a no-op on unreplicated webs.
func (n *setNode) visitMirrors(r RangeID, f func(sim.HostID)) {
	if n.mirrors == nil {
		return
	}
	for _, m := range n.mirrors[r] {
		f(m)
	}
}

// addStorageReplicas charges delta storage units at every replica of
// range r of n — the primary plus each mirror, since every replica holds
// a full copy of the range and its hyperlink pointers.
func (w *Web[L, T, Q]) addStorageReplicas(n *setNode, r RangeID, delta int) {
	w.net.AddStorage(n.hosts[r], delta)
	n.visitMirrors(r, func(m sim.HostID) { w.net.AddStorage(m, delta) })
}

// sendReplicas charges one message to every replica of range r of n —
// the write-through cost of an update touching that range. At k = 1 it
// is exactly the single op.Send the unreplicated path charged. The
// replicas are contacted in parallel, so the fan-out window makes the
// operation's critical-path latency pay the slowest replica link, not
// the sum; hop and message counters are unchanged by the window.
func (w *Web[L, T, Q]) sendReplicas(op *sim.Op, n *setNode, r RangeID) {
	op.FanoutBegin()
	w.sendOne(op, n, r, n.hosts[r])
	n.visitMirrors(r, func(m sim.HostID) { w.sendOne(op, n, r, m) })
	op.FanoutEnd()
}

// sendOne charges one write-through message to replica host h of range r
// — unless h is crashed on a durable fabric, in which case the message
// is suppressed (nobody is listening) and the unit is recorded as
// diverged: the replica pays for the missed update at RestartHost time
// through the merkle reconcile instead. On a non-durable fabric the send
// is unconditional, bit-identical to the pre-durability behavior.
func (w *Web[L, T, Q]) sendOne(op *sim.Op, n *setNode, r RangeID, h sim.HostID) {
	if w.net.Durable() && w.net.Crashed(h) {
		if w.missed == nil {
			w.missed = make(map[webMiss]int)
		}
		w.missed[webMiss{n, r, h}]++
		return
	}
	op.Send(h)
}

// liveHost resolves the host serving range r of n for routing: the
// primary when alive, else the first live mirror in slot order. The
// failed-host set is consulted for free — the failure detector every
// distributed store runs — so skipping a dead replica costs no probe;
// the failover cost is the (charged) visit to wherever the live replica
// actually sits. When every replica is down the unit is unreachable and
// the caller fails fast with the returned HostDownError.
func (w *Web[L, T, Q]) liveHost(n *setNode, r RangeID) (sim.HostID, error) {
	h := n.hosts[r]
	if w.net.Alive(h) {
		return h, nil
	}
	if n.mirrors != nil {
		for _, m := range n.mirrors[r] {
			if w.net.Alive(m) {
				return m, nil
			}
		}
	}
	return sim.None, &sim.HostDownError{Host: h}
}

// visitRange moves op to the live replica serving range r of n, failing
// fast when none survives.
func (w *Web[L, T, Q]) visitRange(op *sim.Op, n *setNode, r RangeID) error {
	h, err := w.liveHost(n, r)
	if err != nil {
		return err
	}
	op.Visit(h)
	return nil
}

// placeRange assigns range r of node n to a primary live host — the
// seed-compatible draw — plus Replicas-1 distinct mirror hosts, and
// charges its payload as storage at every replica.
func (w *Web[L, T, Q]) placeRange(n *setNode, r RangeID) {
	h := w.pickHost()
	n.hosts[r] = h
	w.net.AddStorage(h, w.ops.Payload(w.structOf(n), r))
	if k := w.replicaTarget(); k > 1 {
		ms := make([]sim.HostID, 0, k-1)
		taken := append(make([]sim.HostID, 0, k), h)
		for len(ms) < k-1 {
			m := w.pickHostExcluding(taken)
			ms = append(ms, m)
			taken = append(taken, m)
			w.net.AddStorage(m, w.ops.Payload(w.structOf(n), r))
		}
		n.mirrors[r] = ms
	}
}

// dropRange releases range r of node n: storage at every replica,
// anchors, backref entries.
func (w *Web[L, T, Q]) dropRange(n *setNode, r RangeID) {
	if _, ok := n.hosts[r]; ok {
		w.addStorageReplicas(n, r, -w.ops.Payload(w.structOf(n), r)-len(n.anchors[r]))
	}
	if n.parent != nil {
		for _, a := range n.anchors[r] {
			w.removeBackref(n.parent, a, n, r)
		}
	}
	delete(n.anchors, r)
	delete(n.hosts, r)
	delete(n.backrefs, r)
	if n.mirrors != nil {
		delete(n.mirrors, r)
	}
}

// setAnchors installs hyperlinks for range r of node n (whose parent must
// exist), maintaining backrefs and storage accounting — the pointer
// storage delta lands on every replica of the range. The anchors slice
// is copied into the replaced set's capacity, so callers may pass
// scratch-backed Ops.Anchors results and the steady state allocates
// nothing here.
func (w *Web[L, T, Q]) setAnchors(n *setNode, r RangeID, anchors []RangeID) {
	old := n.anchors[r]
	for _, a := range old {
		w.removeBackref(n.parent, a, n, r)
	}
	w.addStorageReplicas(n, r, len(anchors)-len(old))
	n.anchors[r] = append(old[:0], anchors...)
	for _, a := range anchors {
		n.parent.backrefs[a] = append(n.parent.backrefs[a], backref{child: n, r: r})
	}
}

func (w *Web[L, T, Q]) removeBackref(parent *setNode, a RangeID, child *setNode, r RangeID) {
	refs := parent.backrefs[a]
	for i, br := range refs {
		if br.child == child && br.r == r {
			refs[i] = refs[len(refs)-1]
			parent.backrefs[a] = refs[:len(refs)-1]
			return
		}
	}
}

// rewireAll recomputes hyperlinks for every range of n against its parent.
func (w *Web[L, T, Q]) rewireAll(n *setNode) error {
	child := w.structOf(n)
	parent := w.structOf(n.parent)
	var err error
	w.ops.VisitRanges(child, func(r RangeID) bool {
		anchors, aerr := w.ops.Anchors(child, parent, r)
		if aerr != nil {
			err = fmt.Errorf("core: anchors for range %d at depth %d: %w", r, n.depth, aerr)
			return false
		}
		w.setAnchors(n, r, anchors)
		return true
	})
	return err
}

// Len returns the number of items stored.
func (w *Web[L, T, Q]) Len() int { return w.n }

// Levels returns the depth of the deepest set-tree leaf.
func (w *Web[L, T, Q]) Levels() int {
	max := 0
	var rec func(*setNode)
	rec = func(n *setNode) {
		if n == nil {
			return
		}
		if n.depth > max {
			max = n.depth
		}
		rec(n.kids[0])
		rec(n.kids[1])
	}
	rec(w.root)
	return max + 1
}

// NumStructures returns the number of live level structures (set-tree
// nodes).
func (w *Web[L, T, Q]) NumStructures() int {
	n := 0
	var rec func(*setNode)
	rec = func(sn *setNode) {
		if sn == nil {
			return
		}
		n++
		rec(sn.kids[0])
		rec(sn.kids[1])
	}
	rec(w.root)
	return n
}

// entryLeaf picks the query entry structure for an originating host: its
// "root" in the paper's terminology.
func (w *Web[L, T, Q]) entryLeaf(origin sim.HostID) *setNode {
	if len(w.leaves) == 0 {
		return w.root
	}
	return w.leaves[int(origin)%len(w.leaves)]
}

// Cost is the per-operation cost pair the tuple-returning engines
// (BlockedWeb, BucketWeb) report from their *Cost query variants: the
// hop count the paper bounds plus the modeled critical-path latency
// under the network's CostModel (zero under the default nil model).
type Cost struct {
	Hops    int
	Latency int64
}

// QueryResult carries the answer to a point query: the terminal range of
// the ground structure D(S) and the message cost.
type QueryResult struct {
	Range RangeID
	Hops  int
	// Latency is the modeled critical-path latency of the descent under
	// the network's CostModel, in model units — zero under the default
	// zero-latency model.
	Latency int64
}

// Query routes a point query from the originating host to the terminal
// range of D(S) containing q, counting messages (Section 2.5).
//
// Query is safe for concurrent use by multiple goroutines as long as no
// update (Insert, Delete) runs concurrently: the descent reads only
// immutable routing state (set-tree links, hyperlinks, host placement,
// and the underlying link structures, whose Contains/Step/Locate paths
// are all pure) plus the network's atomic counters. The public batch
// engine relies on this, holding a reader lock for query batches and a
// writer lock for updates.
func (w *Web[L, T, Q]) Query(q Q, origin sim.HostID) (QueryResult, error) {
	op := w.net.NewOp(origin)
	defer op.Free()
	r, err := w.queryOp(q, op)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Range: r, Hops: op.Hops(), Latency: op.Latency()}, nil
}

// queryOp performs the descent under an existing accounting op and
// returns the level-0 terminal.
func (w *Web[L, T, Q]) queryOp(q Q, op *sim.Op) (RangeID, error) {
	node := w.entryLeaf(op.Current())
	cur, err := w.scanTerminal(node, q, op)
	if err != nil {
		return NoRange, err
	}
	for node.parent != nil {
		cur, err = w.descendOne(node, cur, q, op)
		if err != nil {
			return NoRange, err
		}
		node = node.parent
	}
	return cur, nil
}

// scanTerminal finds the terminal range in an entry structure by scanning
// its ranges (entry structures have O(1) expected size). The scan runs on
// the allocation-free VisitRanges iterator: this is the entry step of
// every query descent.
func (w *Web[L, T, Q]) scanTerminal(n *setNode, q Q, op *sim.Op) (RangeID, error) {
	s := w.structOf(n)
	best := NoRange
	bestDepth := -1
	if n.inLeaves {
		// Entry leaves keep a materialized cache: the common case, and
		// the one the allocation-free descent guarantee covers.
		for _, r := range n.rangeCache {
			if err := w.visitRange(op, n, r); err != nil {
				return NoRange, err
			}
			if w.ops.Contains(s, r, q) {
				if d := w.ops.Depth(s, r); d > bestDepth {
					best, bestDepth = r, d
				}
			}
		}
	} else {
		// Entry at a non-leaf happens only for a drained web (no
		// nonempty leaves); fall back to the iterator. This lives in its
		// own method so scanTerminal itself contains no closure — a
		// closure over best/bestDepth would force them onto the heap
		// even on the cached path.
		var err error
		best, err = w.scanTerminalSlow(n, s, q, op)
		if err != nil {
			return NoRange, err
		}
	}
	if best == NoRange {
		return NoRange, fmt.Errorf("core: no range of entry structure (depth %d, %d items) contains query", n.depth, n.count)
	}
	return best, nil
}

// scanTerminalSlow is scanTerminal's iterator fallback for entry at a
// node without a range cache.
func (w *Web[L, T, Q]) scanTerminalSlow(n *setNode, s L, q Q, op *sim.Op) (RangeID, error) {
	best := NoRange
	bestDepth := -1
	var err error
	w.ops.VisitRanges(s, func(r RangeID) bool {
		if err = w.visitRange(op, n, r); err != nil {
			return false
		}
		if w.ops.Contains(s, r, q) {
			if d := w.ops.Depth(s, r); d > bestDepth {
				best, bestDepth = r, d
			}
		}
		return true
	})
	if err != nil {
		return NoRange, err
	}
	return best, nil
}

// descendOne follows the hyperlinks of range cur of node n into n.parent
// and refines to the parent terminal containing q.
func (w *Web[L, T, Q]) descendOne(n *setNode, cur RangeID, q Q, op *sim.Op) (RangeID, error) {
	parent := n.parent
	ps := w.structOf(parent)
	cands := n.anchors[cur]
	if len(cands) == 0 {
		return NoRange, fmt.Errorf("core: range %d at depth %d has no hyperlinks", cur, n.depth)
	}
	start := NoRange
	for _, c := range cands {
		if err := w.visitRange(op, parent, c); err != nil {
			return NoRange, err
		}
		if w.ops.Contains(ps, c, q) {
			start = c
			break
		}
	}
	if start == NoRange {
		// Flat families may have the terminal adjacent to the conflict
		// list (the list covers the child range, which contains q, but
		// boundary conventions can leave q in the last candidate's
		// neighbor); the Step walk recovers it.
		start = cands[len(cands)-1]
	}
	for {
		next := w.ops.Step(ps, start, q)
		if next == NoRange {
			break
		}
		if err := w.visitRange(op, parent, next); err != nil {
			return NoRange, err
		}
		start = next
	}
	if !w.ops.Contains(ps, start, q) {
		return NoRange, fmt.Errorf("core: descent at depth %d terminated at non-containing range", parent.depth)
	}
	return start, nil
}

// Insert adds item x, routing from the originating host. It returns the
// message cost (Section 4).
func (w *Web[L, T, Q]) Insert(x T, origin sim.HostID) (int, error) {
	q := w.ops.QueryOf(x)
	code := w.ops.CodeOf(x)
	op := w.net.NewOp(origin)
	defer op.Free()
	t0, err := w.queryOp(q, op)
	if err != nil {
		return 0, err
	}
	// Level 0: apply the structural change to D(S).
	if err := w.applyInsert(w.root, x, q, code, t0, op); err != nil {
		return op.Hops(), err
	}
	// Climb x's bit path, deriving each child terminal from the parent's.
	node := w.root
	tp := w.reterminal(node, t0, q)
	for node.kids[0] != nil {
		child := node.kids[w.bitFromCode(code, node.depth)]
		ct := NoRange
		if child.count > 0 {
			steps := 0
			ct, err = w.ops.ChildTerminal(w.structOf(child), w.structOf(node), tp, q, &steps)
			w.chargeSteps(op, child, ct, steps)
			if err != nil {
				return op.Hops(), fmt.Errorf("core: child terminal at depth %d: %w", child.depth, err)
			}
		}
		if err := w.applyInsert(child, x, q, code, ct, op); err != nil {
			return op.Hops(), err
		}
		node = child
		if ct == NoRange {
			tp = w.ops.Locate(w.structOf(node), q)
		} else {
			tp = w.reterminal(node, ct, q)
		}
	}
	// The final leaf may have just become nonempty.
	if node.kids[0] == nil && node.count > 0 {
		w.addLeaf(node)
	}
	// Split the leaf set if it outgrew the threshold.
	if node.count > w.cfg.LeafMax && node.depth < w.cfg.MaxDepth {
		if err := w.splitLeaf(node, op); err != nil {
			return op.Hops(), err
		}
	}
	w.n++
	return op.Hops(), nil
}

// reterminal refines a pre-update terminal to the post-update terminal by
// local steps (free: the walk happens on the host that just applied the
// structural change or its immediate neighbors, already visited).
func (w *Web[L, T, Q]) reterminal(n *setNode, r RangeID, q Q) RangeID {
	s := w.structOf(n)
	for {
		next := w.ops.Step(s, r, q)
		if next == NoRange {
			return r
		}
		r = next
	}
}

func (w *Web[L, T, Q]) chargeSteps(op *sim.Op, n *setNode, r RangeID, steps int) {
	// Charge the walk to the host of the resulting range: each step is a
	// hop between structure nodes, which in the worst placement crosses
	// hosts every time. The walk happens wherever the range is actually
	// served, so a failed-over range charges its live replica.
	if _, ok := n.hosts[r]; !ok {
		return
	}
	h, err := w.liveHost(n, r)
	if err != nil {
		// Updates run post-repair (every replica live); a fully dead
		// range can only be reached on an unrepaired k=1 web, whose
		// routed query already failed before any steps were charged.
		return
	}
	for i := 0; i < steps; i++ {
		op.Send(h)
	}
}

// anchorsEqual reports whether two hyperlink sets are identical as sets.
// Hyperlink sets are expected O(1) (the set-halving lemma), so the
// quadratic scan beats building a set — and allocates nothing, which
// matters because this runs once per touched range on every update.
func anchorsEqual(a, b []RangeID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, r := range a {
		found := false
		for _, s := range b {
			if s == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// applyInsert performs the structural insert on node n and fixes
// hyperlinks for the O(1) affected ranges. The Added+Touched work list
// lives in w.dirtyScratch, reused across operations.
func (w *Web[L, T, Q]) applyInsert(n *setNode, x T, q Q, code uint64, hint RangeID, op *sim.Op) error {
	s := w.structOf(n)
	ch, err := w.ops.Insert(s, x, q, hint)
	if err != nil {
		return fmt.Errorf("core: insert at depth %d: %w", n.depth, err)
	}
	n.count++
	w.items[n] = append(w.items[n], x)
	w.codes[n] = append(w.codes[n], code)
	for _, r := range ch.Added {
		w.placeRange(n, r)
		w.sendReplicas(op, n, r)
	}
	dirty := append(append(w.dirtyScratch[:0], ch.Added...), ch.Touched...)
	w.dirtyScratch = dirty[:0]
	if n.parent != nil {
		ps := w.structOf(n.parent)
		for _, r := range dirty {
			anchors, err := w.ops.Anchors(s, ps, r)
			if err != nil {
				return fmt.Errorf("core: re-anchor range %d at depth %d: %w", r, n.depth, err)
			}
			if anchorsEqual(anchors, n.anchors[r]) {
				continue
			}
			w.setAnchors(n, r, anchors)
			w.sendReplicas(op, n, r)
		}
	}
	if n.inLeaves {
		w.refreshRangeCache(n)
	}
	// New parent-side ranges may now be the true hyperlink targets of
	// child ranges whose conflicts changed; recompute for children
	// anchored at touched ranges.
	return w.repairChildren(n, dirty, op)
}

// repairChildren recomputes hyperlinks of child ranges currently anchored
// at the given ranges of n (whose extents may have changed). The work
// list must be snapshotted before recomputation because setAnchors
// mutates the backrefs being iterated; the snapshot lives in
// w.todoScratch, reused across operations.
func (w *Web[L, T, Q]) repairChildren(n *setNode, ranges []RangeID, op *sim.Op) error {
	s := w.structOf(n)
	todos := w.todoScratch[:0]
	for _, pr := range ranges {
		for _, br := range n.backrefs[pr] {
			todos = append(todos, childRef{br.child, br.r})
		}
	}
	w.todoScratch = todos[:0]
	for _, td := range todos {
		cs := w.structOf(td.child)
		anchors, err := w.ops.Anchors(cs, s, td.r)
		if err != nil {
			return fmt.Errorf("core: repair anchors of child range %d: %w", td.r, err)
		}
		if anchorsEqual(anchors, td.child.anchors[td.r]) {
			continue
		}
		w.setAnchors(td.child, td.r, anchors)
		w.sendReplicas(op, td.child, td.r)
	}
	return nil
}

// Delete removes item x, routing from the originating host.
func (w *Web[L, T, Q]) Delete(x T, origin sim.HostID) (int, error) {
	q := w.ops.QueryOf(x)
	code := w.ops.CodeOf(x)
	op := w.net.NewOp(origin)
	defer op.Free()
	t0, err := w.queryOp(q, op)
	if err != nil {
		return 0, err
	}
	// Collect the terminal at each level along x's bit path (x present).
	// The stack lives in w.frameScratch, reused across operations.
	frames := append(w.frameScratch[:0], delFrame{w.root, t0})
	defer func() { w.frameScratch = frames[:0] }()
	node, tp := w.root, t0
	for node.kids[0] != nil {
		child := node.kids[w.bitFromCode(code, node.depth)]
		steps := 0
		ct, err := w.ops.ChildTerminal(w.structOf(child), w.structOf(node), tp, q, &steps)
		w.chargeSteps(op, child, ct, steps)
		if err != nil {
			return op.Hops(), fmt.Errorf("core: child terminal at depth %d: %w", child.depth, err)
		}
		frames = append(frames, delFrame{child, ct})
		node, tp = child, ct
	}
	// Unwind top-down so hyperlink repair always targets live ranges.
	for i := len(frames) - 1; i >= 0; i-- {
		if err := w.applyDelete(frames[i].node, x, q, code, op); err != nil {
			return op.Hops(), err
		}
	}
	w.n--
	// The path's leaf may have just drained.
	last := frames[len(frames)-1].node
	if last.kids[0] == nil && last.count == 0 {
		w.removeLeaf(last)
	}
	// Re-absorb the shallowest underpopulated subtree along the path
	// (hysteresis: merge at MergeMin, split at LeafMax, MergeMin < LeafMax).
	for _, f := range frames {
		if f.node.kids[0] != nil && f.node.count <= w.cfg.MergeMin {
			w.mergeSubtree(f.node, op)
			break
		}
	}
	return op.Hops(), nil
}

func (w *Web[L, T, Q]) applyDelete(n *setNode, x T, q Q, code uint64, op *sim.Op) error {
	s := w.structOf(n)
	ch, err := w.ops.Delete(s, x, q)
	if err != nil {
		return fmt.Errorf("core: delete at depth %d: %w", n.depth, err)
	}
	n.count--
	// Drop x from the item set by scanning the parallel code slice — a
	// plain uint64 sweep, no CodeOf recomputation.
	items, cs := w.items[n], w.codes[n]
	for i := range cs {
		if cs[i] == code {
			last := len(items) - 1
			items[i], cs[i] = items[last], cs[last]
			w.items[n] = items[:last]
			w.codes[n] = cs[:last]
			break
		}
	}
	// Redirect children anchored at removed ranges, rewriting each
	// child's hyperlink set in place: no snapshot and no replacement
	// slice — the backref list under the dead range is left stale and
	// dropped wholesale by dropRange below.
	for i, dead := range ch.Removed {
		to := NoRange
		if i < len(ch.RemapTo) {
			to = ch.RemapTo[i]
		}
		for _, br := range n.backrefs[dead] {
			if to == NoRange {
				return fmt.Errorf("core: removed range %d at depth %d has anchored children but no remap", dead, n.depth)
			}
			w.redirectAnchor(n, br.child, br.r, dead, to)
			w.sendReplicas(op, br.child, br.r)
		}
		if _, ok := n.hosts[dead]; ok {
			w.sendReplicas(op, n, dead) // tombstone message to every replica
		}
		w.dropRange(n, dead)
	}
	if n.parent != nil {
		ps := w.structOf(n.parent)
		for _, r := range ch.Touched {
			anchors, err := w.ops.Anchors(s, ps, r)
			if err != nil {
				return fmt.Errorf("core: re-anchor range %d at depth %d: %w", r, n.depth, err)
			}
			if anchorsEqual(anchors, n.anchors[r]) {
				continue
			}
			w.setAnchors(n, r, anchors)
			w.sendReplicas(op, n, r)
		}
	}
	if n.inLeaves {
		w.refreshRangeCache(n)
	}
	return w.repairChildren(n, ch.Touched, op)
}

// redirectAnchor rewrites child range r's hyperlink set in place:
// every occurrence of parent range dead becomes to (keeping its
// position), duplicates are dropped keeping first occurrences, the
// child host's storage is adjusted by the length delta, and — when to
// was not already an anchor — the symmetric backref is appended at the
// parent. The stale backref under dead is not touched; the caller drops
// that range (and its whole backref list) immediately after. The
// resulting anchor set, storage deltas, and messages are identical to
// the replace-copy-dedupe-setAnchors composition this replaces, without
// allocating. Hyperlink sets are expected O(1) (set-halving lemma), so
// the quadratic dedupe scan is free.
func (w *Web[L, T, Q]) redirectAnchor(parent, child *setNode, r RangeID, dead, to RangeID) {
	anchors := child.anchors[r]
	hadTo := false
	for _, a := range anchors {
		if a == to {
			hadTo = true
			break
		}
	}
	out := anchors[:0]
	for _, a := range anchors {
		if a == dead {
			a = to
		}
		dup := false
		for _, o := range out {
			if o == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	child.anchors[r] = out
	if len(out) != len(anchors) {
		w.addStorageReplicas(child, r, len(out)-len(anchors))
	}
	if !hadTo {
		parent.backrefs[to] = append(parent.backrefs[to], backref{child: child, r: r})
	}
}

// splitLeaf turns a leaf set node into an internal node with two halves.
func (w *Web[L, T, Q]) splitLeaf(n *setNode, op *sim.Op) error {
	items := w.items[n]
	codes := w.codes[n]
	var halves [2][]T
	var codeHalves [2][]uint64
	for i, x := range items {
		b := w.bitFromCode(codes[i], n.depth)
		halves[b] = append(halves[b], x)
		codeHalves[b] = append(codeHalves[b], codes[i])
	}
	for b := 0; b < 2; b++ {
		kid, err := w.buildSubtree(halves[b], codeHalves[b], n.depth+1, n, false)
		if err != nil {
			return fmt.Errorf("core: split leaf at depth %d: %w", n.depth, err)
		}
		n.kids[b] = kid
		// Creating a structure of k ranges costs O(k) messages — one per
		// replica placed — amortized against the inserts that grew the
		// leaf.
		for r, h := range kid.hosts {
			op.Send(h)
			kid.visitMirrors(r, func(m sim.HostID) { op.Send(m) })
		}
	}
	w.removeLeaf(n)
	return nil
}

// mergeSubtree re-absorbs all descendants of n, making it a leaf again.
func (w *Web[L, T, Q]) mergeSubtree(n *setNode, op *sim.Op) {
	var release func(k *setNode)
	release = func(k *setNode) {
		if k == nil {
			return
		}
		release(k.kids[0])
		release(k.kids[1])
		w.ops.VisitRanges(w.structOf(k), func(r RangeID) bool {
			if _, ok := k.hosts[r]; ok {
				w.sendReplicas(op, k, r)
			}
			w.dropRange(k, r)
			return true
		})
		w.removeLeaf(k)
		delete(w.items, k)
		delete(w.codes, k)
	}
	release(n.kids[0])
	release(n.kids[1])
	n.kids[0], n.kids[1] = nil, nil
	if n.count > 0 {
		w.addLeaf(n)
	}
}

func (w *Web[L, T, Q]) removeLeaf(n *setNode) {
	if !n.inLeaves {
		return
	}
	n.inLeaves = false
	last := len(w.leaves) - 1
	moved := w.leaves[last]
	w.leaves[n.leafIdx] = moved
	moved.leafIdx = n.leafIdx
	w.leaves = w.leaves[:last]
}

// walkNodes visits every set-tree node in deterministic DFS order
// (node, kids[0], kids[1]) — the iteration order all churn migration
// uses, so a fixed seed yields a fixed migration transcript.
func (w *Web[L, T, Q]) walkNodes(visit func(*setNode)) {
	var rec func(*setNode)
	rec = func(n *setNode) {
		if n == nil {
			return
		}
		visit(n)
		rec(n.kids[0])
		rec(n.kids[1])
	}
	rec(w.root)
}

// rangeUnits is the storage footprint one replica of range r carries:
// its payload plus its hyperlink pointers.
func (w *Web[L, T, Q]) rangeUnits(n *setNode, r RangeID) int {
	return w.ops.Payload(w.structOf(n), r) + len(n.anchors[r])
}

// replicaCount returns how many replicas range r of n currently has.
func (w *Web[L, T, Q]) replicaCount(n *setNode, r RangeID) int {
	if n.mirrors == nil {
		return 1
	}
	return 1 + len(n.mirrors[r])
}

// replicaAt returns replica slot `slot` of range r (slot 0 is the
// primary, slot i > 0 is mirrors[i-1]).
func (w *Web[L, T, Q]) replicaAt(n *setNode, r RangeID, slot int) sim.HostID {
	if slot == 0 {
		return n.hosts[r]
	}
	return n.mirrors[r][slot-1]
}

// setReplicaAt rewrites replica slot `slot` of range r.
func (w *Web[L, T, Q]) setReplicaAt(n *setNode, r RangeID, slot int, h sim.HostID) {
	if slot == 0 {
		n.hosts[r] = h
		return
	}
	n.mirrors[r][slot-1] = h
}

// hasReplica reports whether h already serves a replica of range r.
func (w *Web[L, T, Q]) hasReplica(n *setNode, r RangeID, h sim.HostID) bool {
	if n.hosts[r] == h {
		return true
	}
	if n.mirrors != nil {
		for _, m := range n.mirrors[r] {
			if m == h {
				return true
			}
		}
	}
	return false
}

// moveReplica migrates replica slot `slot` of range r of node n to host
// `to`: the replica's payload and hyperlink pointers transfer as
// storage, one message is charged per unit moved, and every replica of
// every child range anchored at r is sent one address-update message
// (children dereference r by host when routing).
func (w *Web[L, T, Q]) moveReplica(n *setNode, r RangeID, slot int, to sim.HostID, op *sim.Op) {
	from := w.replicaAt(n, r, slot)
	if to == from {
		return
	}
	units := w.rangeUnits(n, r)
	w.net.AddStorage(from, -units)
	w.net.AddStorage(to, units)
	w.setReplicaAt(n, r, slot, to)
	for i := 0; i < units; i++ {
		op.Send(to)
	}
	for _, br := range n.backrefs[r] {
		w.sendReplicas(op, br.child, br.r)
	}
}

// dropReplicaSlot discards replica slot `slot` of range r of node n,
// discharging its storage at `from` (a departing host whose copy cannot
// be placed anywhere distinct). Slot 0 is handled by promoting the
// first mirror to primary; children are notified of the address change.
func (w *Web[L, T, Q]) dropReplicaSlot(n *setNode, r RangeID, slot int, op *sim.Op) {
	from := w.replicaAt(n, r, slot)
	w.net.AddStorage(from, -w.rangeUnits(n, r))
	ms := n.mirrors[r]
	if slot == 0 {
		n.hosts[r] = ms[0]
		slot = 1
		for _, br := range n.backrefs[r] {
			w.sendReplicas(op, br.child, br.r)
		}
	}
	copy(ms[slot-1:], ms[slot:])
	n.mirrors[r] = ms[:len(ms)-1]
}

// Rehome migrates every replica placed on host `from` — which the
// network must already have marked departed — onto randomly drawn live
// hosts distinct from the range's other replicas, charging each
// migration hop to op. When no distinct live host exists (the cluster
// shrank below the replication factor) the replica is dropped instead.
// Cost: one message per storage unit moved plus one per anchored child
// replica notified, so a departing host that holds an s-unit share of
// the structure pays Θ(s) messages, the paper's per-host memory
// M = O((n/H) log n) in expectation.
func (w *Web[L, T, Q]) Rehome(from sim.HostID, op *sim.Op) {
	w.walkNodes(func(n *setNode) {
		w.ops.VisitRanges(w.structOf(n), func(r RangeID) bool {
			count := w.replicaCount(n, r)
			for slot := 0; slot < count; slot++ {
				if w.replicaAt(n, r, slot) != from {
					continue
				}
				if w.net.LiveHosts() >= count {
					// Replicas are distinct and `from` is no longer
					// live, so excluding the other count-1 replicas
					// still leaves a live host to draw.
					if count == 1 {
						w.moveReplica(n, r, slot, w.pickHost(), op)
					} else {
						w.moveReplica(n, r, slot, w.pickHostExcluding(w.otherReplicas(n, r, slot)), op)
					}
				} else {
					w.dropReplicaSlot(n, r, slot, op)
				}
				break // replicas are distinct: at most one slot matches
			}
			return true
		})
	})
}

// otherReplicas materializes the replica hosts of range r except slot
// `slot`, for distinctness-constrained draws. Only called on replicated
// webs (cold churn path), so the small allocation is acceptable.
func (w *Web[L, T, Q]) otherReplicas(n *setNode, r RangeID, slot int) []sim.HostID {
	out := make([]sim.HostID, 0, w.replicaCount(n, r)-1)
	for i := 0; i < w.replicaCount(n, r); i++ {
		if i != slot {
			out = append(out, w.replicaAt(n, r, i))
		}
	}
	return out
}

// Rebalance moves each replica independently onto the (freshly joined)
// host `onto` with probability 1/LiveHosts, restoring the uniform
// placement distribution a from-scratch build over the enlarged live set
// would have produced: the joiner picks up an expected 1/H share of
// every level, and every migration hop is charged to op. A replica
// never moves onto a host that already serves another replica of the
// same range (replica sets stay distinct).
func (w *Web[L, T, Q]) Rebalance(onto sim.HostID, op *sim.Op) {
	live := w.net.LiveHosts()
	w.walkNodes(func(n *setNode) {
		w.ops.VisitRanges(w.structOf(n), func(r RangeID) bool {
			count := w.replicaCount(n, r)
			for slot := 0; slot < count; slot++ {
				// Draw unconditionally so the randomness stream per
				// (range, slot) is independent of skip decisions. A dead
				// slot (lost in a crash that exceeded the tolerance)
				// never moves: relocating it would resurrect data the
				// crash destroyed and discharge a storage counter the
				// crash already zeroed.
				if w.rng.Intn(live) == 0 && !w.hasReplica(n, r, onto) &&
					w.net.Alive(w.replicaAt(n, r, slot)) {
					w.moveReplica(n, r, slot, onto, op)
				}
			}
			return true
		})
	})
}

// Repair re-replicates every under-replicated range after a crash (or a
// join that raised the feasible replica count): dead replicas are
// dropped from the replica set, a surviving live replica is promoted to
// primary when the primary died, and fresh distinct live hosts are
// charged a full copy — one message per storage unit copied — until the
// range is back to min(Replicas, live hosts) replicas. Ranges with no
// surviving replica are left in place (queries against them keep
// failing fast with a HostDownError) and reported via a DataLossError.
func (w *Web[L, T, Q]) Repair(op *sim.Op) error {
	lost := 0
	var deadHosts map[sim.HostID]bool
	target := w.replicaTarget()
	w.walkNodes(func(n *setNode) {
		w.ops.VisitRanges(w.structOf(n), func(r RangeID) bool {
			count := w.replicaCount(n, r)
			liveCount := 0
			for slot := 0; slot < count; slot++ {
				if w.net.Alive(w.replicaAt(n, r, slot)) {
					liveCount++
				}
			}
			if liveCount == count && count >= target {
				return true // fully replicated: the overwhelmingly common case
			}
			if liveCount == 0 {
				lost += w.rangeUnits(n, r)
				if deadHosts == nil {
					deadHosts = make(map[sim.HostID]bool)
				}
				for slot := 0; slot < count; slot++ {
					deadHosts[w.replicaAt(n, r, slot)] = true
				}
				return true
			}
			w.repairRange(n, r, target, op)
			return true
		})
	})
	if lost > 0 {
		hosts := make([]sim.HostID, 0, len(deadHosts))
		for h := range deadHosts {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		return &DataLossError{Units: lost, Hosts: hosts}
	}
	return nil
}

// repairRange rebuilds range r's replica set from its live survivors,
// topping it up to target distinct live hosts.
func (w *Web[L, T, Q]) repairRange(n *setNode, r RangeID, target int, op *sim.Op) {
	oldPrimary := n.hosts[r]
	units := w.rangeUnits(n, r)
	liveSet := make([]sim.HostID, 0, target)
	for slot := 0; slot < w.replicaCount(n, r); slot++ {
		h := w.replicaAt(n, r, slot)
		if w.net.Alive(h) {
			liveSet = append(liveSet, h)
			continue
		}
		// The dead slot is dropped from the replica set for good. On a
		// durable fabric the crashed host's on-disk image still carries
		// the replica, so discharge it there too: a later Restart must
		// not resurrect units the repair re-homed elsewhere.
		if w.net.Durable() && w.net.Crashed(h) {
			w.net.AddStorage(h, -units)
			delete(w.missed, webMiss{n, r, h})
		}
	}
	for len(liveSet) < target {
		h := w.pickHostExcluding(liveSet)
		liveSet = append(liveSet, h)
		w.net.AddStorage(h, units)
		for i := 0; i < units; i++ {
			op.Send(h) // copied from a surviving replica
		}
	}
	n.hosts[r] = liveSet[0]
	if n.mirrors != nil {
		n.mirrors[r] = append(n.mirrors[r][:0], liveSet[1:]...)
	}
	if n.hosts[r] != oldPrimary {
		for _, br := range n.backrefs[r] {
			w.sendReplicas(op, br.child, br.r)
		}
	}
}

// RestartHost reconciles host h's shard after a durable restart: h has
// already replayed its checkpoint + WAL (Network.Restart), so its local
// image is storage-exact, but any replica that slept through
// write-throughs while h was down (recorded in w.missed by sendOne) is
// stale. The shard reconciles with one live peer per unit: units are
// grouped by peer, each group exchanges an outer merkle walk over its
// per-unit digests (merkleDiff prices it; a clean group costs one root
// exchange and copies nothing), and each diverged unit is re-copied in
// full — web units are a few storage words, so unit granularity is the
// leaf granularity. Returns the number of storage units re-copied; all
// messages are charged to op against h.
//
// Note that the Web's restructure-heavy update path naturally erodes a
// down host's stale image toward clean: applyInsert rebuilds touched
// ranges by dropRange + placeRange, dropRange discharges every
// replica's storage (including the crashed host's — its image shrinks
// while it is down, keeping accounting exact), and placeRange draws
// replacement replicas from live hosts only. A range that recorded a
// miss therefore usually no longer exists by restart time; whatever
// part of the shard survived untouched is provably clean, so the walk
// may legitimately copy zero units. Engines that mutate units in place
// (BlockedWeb blocks, BucketWeb buckets) exercise the copy path.
func (w *Web[L, T, Q]) RestartHost(h sim.HostID, op *sim.Op) int {
	type unitRef struct {
		n *setNode
		r RangeID
	}
	// Group h's units by reconcile peer — the first live co-replica in
	// slot order. A unit whose other replicas are all down has no fresher
	// copy to learn from and is served as replayed.
	var groups map[sim.HostID][]unitRef
	w.walkNodes(func(n *setNode) {
		w.ops.VisitRanges(w.structOf(n), func(r RangeID) bool {
			if !w.hasReplica(n, r, h) {
				return true
			}
			for slot := 0; slot < w.replicaCount(n, r); slot++ {
				if p := w.replicaAt(n, r, slot); p != h && w.net.Alive(p) {
					if groups == nil {
						groups = make(map[sim.HostID][]unitRef)
					}
					groups[p] = append(groups[p], unitRef{n, r})
					break
				}
			}
			return true
		})
	})
	peers := make([]sim.HostID, 0, len(groups))
	for p := range groups {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	copied := 0
	for _, p := range peers {
		units := groups[p]
		var dirty []int
		for i, u := range units {
			if w.missed[webMiss{u.n, u.r, h}] > 0 {
				dirty = append(dirty, i)
			}
		}
		cost := merkleDiff(len(units), dirty)
		for i := 0; i < cost.walk; i++ {
			op.Send(h) // subtree-digest exchange with peer p
		}
		for _, i := range dirty {
			u := units[i]
			uu := w.rangeUnits(u.n, u.r)
			for j := 0; j < uu; j++ {
				op.Send(h) // diverged unit re-copied from the peer
			}
			copied += uu
			delete(w.missed, webMiss{u.n, u.r, h})
		}
	}
	// Purge stale records for h: units repaired away while it was down,
	// or units with no live peer left to reconcile against.
	for k := range w.missed {
		if k.h == h {
			delete(w.missed, k)
		}
	}
	return copied
}

// GroundStructure exposes the level-0 structure D(S) (for answer
// extraction and tests).
func (w *Web[L, T, Q]) GroundStructure() L { return w.structOf(w.root) }

// LevelCensus describes one depth of the hierarchy (Figure 2): how many
// structures S_b exist there and how many items they hold in total.
type LevelCensus struct {
	Depth      int
	Structures int
	Items      int
	Ranges     int
}

// Census returns per-depth statistics of the level hierarchy.
func (w *Web[L, T, Q]) Census() []LevelCensus {
	byDepth := map[int]*LevelCensus{}
	var rec func(*setNode)
	rec = func(n *setNode) {
		if n == nil {
			return
		}
		c := byDepth[n.depth]
		if c == nil {
			c = &LevelCensus{Depth: n.depth}
			byDepth[n.depth] = c
		}
		c.Structures++
		c.Items += n.count
		w.ops.VisitRanges(w.structOf(n), func(RangeID) bool {
			c.Ranges++
			return true
		})
		rec(n.kids[0])
		rec(n.kids[1])
	}
	rec(w.root)
	out := make([]LevelCensus, 0, len(byDepth))
	for d := 0; ; d++ {
		c, ok := byDepth[d]
		if !ok {
			break
		}
		out = append(out, *c)
	}
	return out
}

// CheckInvariants verifies the full web: hyperlinks exactly match
// recomputation, backrefs are symmetric, per-level item counts add up,
// and every level structure's ranges are placed on live hosts — the
// consistency contract host churn must preserve.
func (w *Web[L, T, Q]) CheckInvariants() error {
	var rec func(n *setNode) error
	rec = func(n *setNode) error {
		if n == nil {
			return nil
		}
		s := w.structOf(n)
		ranges := RangesOf(w.ops, s)
		if len(n.hosts) != len(ranges) {
			return fmt.Errorf("core: depth %d: %d hosts for %d ranges", n.depth, len(n.hosts), len(ranges))
		}
		if n.inLeaves {
			if len(n.rangeCache) != len(ranges) {
				return fmt.Errorf("core: depth %d: range cache holds %d ranges, want %d", n.depth, len(n.rangeCache), len(ranges))
			}
			for i, r := range ranges {
				if n.rangeCache[i] != r {
					return fmt.Errorf("core: depth %d: range cache stale at position %d", n.depth, i)
				}
			}
		}
		for _, r := range ranges {
			h, ok := n.hosts[r]
			if !ok {
				return fmt.Errorf("core: depth %d: range %d unplaced", n.depth, r)
			}
			if !w.net.Alive(h) {
				return fmt.Errorf("core: depth %d: range %d placed on departed host %d", n.depth, r, h)
			}
			// Replica contract: min(Replicas, live) distinct live hosts
			// serve every range — the crash-tolerance invariant Repair
			// restores.
			if want := w.replicaTarget(); w.replicaCount(n, r) < want {
				return fmt.Errorf("core: depth %d: range %d has %d replicas, want %d",
					n.depth, r, w.replicaCount(n, r), want)
			}
			if n.mirrors != nil {
				for i, m := range n.mirrors[r] {
					if !w.net.Alive(m) {
						return fmt.Errorf("core: depth %d: range %d mirror on dead host %d", n.depth, r, m)
					}
					if m == h {
						return fmt.Errorf("core: depth %d: range %d mirror duplicates primary %d", n.depth, r, m)
					}
					for _, m2 := range n.mirrors[r][:i] {
						if m2 == m {
							return fmt.Errorf("core: depth %d: range %d has duplicate mirror %d", n.depth, r, m)
						}
					}
				}
			}
			if n.parent != nil {
				want, err := w.ops.Anchors(s, w.structOf(n.parent), r)
				if err != nil {
					return err
				}
				got := n.anchors[r]
				if len(got) != len(want) {
					return fmt.Errorf("core: depth %d range %d: %d anchors, want %d", n.depth, r, len(got), len(want))
				}
				wantSet := make(map[RangeID]bool, len(want))
				for _, a := range want {
					wantSet[a] = true
				}
				for _, a := range got {
					if !wantSet[a] {
						return fmt.Errorf("core: depth %d range %d: stale anchor %d", n.depth, r, a)
					}
					found := false
					for _, br := range n.parent.backrefs[a] {
						if br.child == n && br.r == r {
							found = true
							break
						}
					}
					if !found {
						return fmt.Errorf("core: depth %d range %d: missing backref at parent range %d", n.depth, r, a)
					}
				}
			}
		}
		if n.kids[0] != nil {
			if n.kids[0].count+n.kids[1].count != n.count {
				return fmt.Errorf("core: depth %d: child counts %d+%d != %d",
					n.depth, n.kids[0].count, n.kids[1].count, n.count)
			}
		}
		if err := rec(n.kids[0]); err != nil {
			return err
		}
		return rec(n.kids[1])
	}
	return rec(w.root)
}
