package core

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// benchLevel builds a 100k-key level for the Locate benchmarks.
func benchLevel(b *testing.B) (*ListLevel, []uint64) {
	b.Helper()
	const n = 100_000
	rng := xrand.New(99)
	keys := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(keys) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	l, err := NewListLevel(keys)
	if err != nil {
		b.Fatal(err)
	}
	return l, keys
}

// BenchmarkListLevelLocate compares the maintained-sorted-order binary
// search against the pre-refactor head walk on a 100k-key list. The
// acceptance bar for PR 2 is binary >= 100x faster than walk; in
// practice the gap is ~4 orders of magnitude.
func BenchmarkListLevelLocate(b *testing.B) {
	l, _ := benchLevel(b)
	qrng := xrand.New(100)
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Locate(qrng.Uint64n(1 << 40))
		}
	})
	b.Run("walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.locateWalk(qrng.Uint64n(1 << 40))
		}
	})
}

// BenchmarkListLevelInsertDeadHint measures InsertKey's fallback path:
// the hint is always NoRange, so every insert pays the full local search
// (binary since PR 2; previously an O(n) head walk).
func BenchmarkListLevelInsertDeadHint(b *testing.B) {
	l, _ := benchLevel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keys above the stored range are unique per iteration.
		if _, err := l.InsertKey(1<<41+uint64(i), NoRange); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListLevelChurn measures a steady-state random insert+delete
// pair at arbitrary positions in a 100k-key list. This is the workload
// the sorted-order index's pending-buffer design exists for: an eagerly
// maintained sorted array would memmove ~half the list (~800KB) per
// update, while the buffered index pays O(pendMax) plus an amortized
// rebuild share.
func BenchmarkListLevelChurn(b *testing.B) {
	l, keys := benchLevel(b)
	rng := xrand.New(102)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := keys[rng.Intn(len(keys))]
		if _, _, err := l.DeleteKey(victim); err != nil {
			b.Fatal(err)
		}
		if _, err := l.InsertKey(victim, NoRange); err != nil {
			b.Fatal(err)
		}
	}
}
