// Package skipgraph implements skip graphs (Aspnes and Shah, SODA 2003) —
// equivalently SkipNet (Harvey et al.) — the randomized distributed
// ordered dictionaries that skip-webs compare against in Table 1, plus
// the neighbor-of-neighbor (NoN) routing of Manku, Naor, and Wieder
// (STOC 2004).
//
// Every key lives on its own host. Each key draws a random membership
// vector; the level-i list links keys sharing an i-bit membership prefix,
// in key order. A node's tower extends until it is alone in its prefix
// group, so expected height (and per-host memory) is O(log n).
//
// Plain routing moves along the highest useful level: O(log n) expected
// messages. NoN routing additionally caches each neighbor's neighbor
// list and greedily jumps to the best neighbor-of-neighbor: O(log n /
// log log n) expected messages, at the price of O(log² n) memory and
// congestion and O(log² n) expected update messages for table
// maintenance — exactly the Table 1 trade-off.
package skipgraph

import (
	"fmt"
	"sort"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// maxLevels bounds membership vectors; 64 levels covers any workload here.
const maxLevels = 64

// Graph is a skip graph over uint64 keys. The zero value is not usable;
// construct with New.
type Graph struct {
	net   *sim.Network
	rng   *xrand.Rand
	nodes map[uint64]*gnode
	keys  []uint64 // maintained sorted (for origin sampling and checks)
	non   bool     // maintain and use NoN tables
	seq   int      // next host to assign
}

type gnode struct {
	key   uint64
	host  sim.HostID
	mv    uint64 // membership vector bits; bit i read as mv>>i&1
	left  []*gnode
	right []*gnode
}

// height is the number of levels this node participates in.
func (n *gnode) height() int { return len(n.right) }

// New creates an empty skip graph over net's hosts. If non is true the
// graph maintains neighbor-of-neighbor tables: searches use NoN routing
// and updates pay the table-maintenance messages.
func New(net *sim.Network, seed uint64, non bool) *Graph {
	return &Graph{
		net:   net,
		rng:   xrand.New(seed ^ 0x5c19a7), // salted against workload-seed correlation
		nodes: make(map[uint64]*gnode),
		non:   non,
	}
}

// Len returns the number of keys.
func (g *Graph) Len() int { return len(g.nodes) }

// Keys returns the keys in sorted order.
func (g *Graph) Keys() []uint64 { return append([]uint64(nil), g.keys...) }

// PrevKey returns the key immediately below k in sorted order (the
// level-0 left neighbor of k's node).
func (g *Graph) PrevKey(k uint64) (uint64, bool) {
	i := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= k })
	if i == 0 {
		return 0, false
	}
	return g.keys[i-1], true
}

// HostOf returns the host storing key k.
func (g *Graph) HostOf(k uint64) (sim.HostID, bool) {
	n, ok := g.nodes[k]
	if !ok {
		return 0, false
	}
	return n.host, true
}

// Build constructs the graph over keys directly (without routing
// messages), for experiment setup. Keys must be distinct.
func (g *Graph) Build(keys []uint64) error {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return fmt.Errorf("skipgraph: duplicate key %d", sorted[i])
		}
	}
	nodes := make([]*gnode, len(sorted))
	for i, k := range sorted {
		nodes[i] = &gnode{key: k, host: g.nextHost(), mv: g.rng.Uint64()}
		g.nodes[k] = nodes[i]
	}
	g.keys = sorted
	g.linkGroup(nodes, 0)
	for _, n := range nodes {
		g.chargeStorage(n, 1)
	}
	return nil
}

// linkGroup links the level-lvl list over group (sorted, all sharing an
// lvl-bit membership prefix) and recurses into the two sub-groups.
func (g *Graph) linkGroup(group []*gnode, lvl int) {
	if len(group) == 0 || lvl >= maxLevels {
		return
	}
	var prev *gnode
	for _, n := range group {
		for len(n.left) <= lvl {
			n.left = append(n.left, nil)
			n.right = append(n.right, nil)
		}
		n.left[lvl] = prev
		if prev != nil {
			prev.right[lvl] = n
		}
		prev = n
	}
	if len(group) == 1 {
		return
	}
	var zero, one []*gnode
	for _, n := range group {
		if n.mv>>lvl&1 == 0 {
			zero = append(zero, n)
		} else {
			one = append(one, n)
		}
	}
	g.linkGroup(zero, lvl+1)
	g.linkGroup(one, lvl+1)
}

func (g *Graph) nextHost() sim.HostID {
	h := sim.HostID(g.seq % g.net.Hosts())
	g.seq++
	return h
}

// chargeStorage records a node's footprint: key + 2 pointers per level,
// plus the cached neighbor lists when NoN tables are on.
func (g *Graph) chargeStorage(n *gnode, sign int) {
	units := 1 + 2*n.height()
	if g.non {
		for lvl := 0; lvl < n.height(); lvl++ {
			if l := n.left[lvl]; l != nil {
				units += l.height()
			}
			if r := n.right[lvl]; r != nil {
				units += r.height()
			}
		}
	}
	g.net.AddStorage(n.host, sign*units)
}

// originFor picks the node whose search begins at the given host (hosts
// and nodes are 1:1 up to wraparound).
func (g *Graph) originFor(origin sim.HostID) *gnode {
	if len(g.keys) == 0 {
		return nil
	}
	k := g.keys[int(origin)%len(g.keys)]
	return g.nodes[k]
}

// Search routes a floor query (largest key <= target) from the node at
// the originating host, returning the floor key (ok=false if target is
// below every key) and the message count.
func (g *Graph) Search(target uint64, origin sim.HostID) (uint64, bool, int) {
	start := g.originFor(origin)
	if start == nil {
		return 0, false, 0
	}
	op := g.net.NewOp(start.host)
	defer op.Free()
	var cur *gnode
	if g.non {
		cur = g.searchNoN(start, target, op)
	} else {
		cur = g.searchPlain(start, target, op)
	}
	if cur == nil {
		return 0, false, op.Hops()
	}
	return cur.key, true, op.Hops()
}

// searchPlain is classic skip-graph routing: at the highest level that
// makes progress without overshooting, move toward the target.
func (g *Graph) searchPlain(start *gnode, target uint64, op *sim.Op) *gnode {
	cur := start
	for lvl := cur.height() - 1; lvl >= 0; {
		if lvl >= cur.height() {
			lvl = cur.height() - 1
			continue
		}
		moved := false
		if cur.key < target {
			if r := cur.right[lvl]; r != nil && r.key <= target {
				cur = r
				op.Visit(cur.host)
				moved = true
			}
		} else if cur.key > target {
			if l := cur.left[lvl]; l != nil && l.key >= target {
				cur = l
				op.Visit(cur.host)
				moved = true
			} else if l != nil && cur.key > target {
				// Dropping below target: the floor is to the left even
				// though l.key < target; take it at level 0 only.
				if lvl == 0 {
					cur = l
					op.Visit(cur.host)
					return cur
				}
			}
		}
		if cur.key == target {
			return cur
		}
		if !moved {
			lvl--
		}
	}
	if cur.key > target {
		// cur is the ceiling; floor is its level-0 left neighbor.
		l := cur.left[0]
		if l != nil {
			op.Visit(l.host)
		}
		return l
	}
	return cur
}

// searchNoN routes using locally cached neighbor-of-neighbor tables: from
// cur, all neighbors and neighbors-of-neighbors are known without
// messages; jump straight to the one closest to the target without
// overshooting (Manku-Naor-Wieder lookahead).
func (g *Graph) searchNoN(start *gnode, target uint64, op *sim.Op) *gnode {
	cur := start
	for {
		if cur.key == target {
			return cur
		}
		best := cur
		consider := func(c *gnode) {
			if c == nil {
				return
			}
			if cur.key < target {
				// Moving right: want the largest key <= target.
				if c.key <= target && c.key > best.key {
					best = c
				}
			} else {
				// Moving left: want the smallest key >= target... but for
				// floor semantics we overshoot-protect below.
				if c.key >= target && c.key < best.key {
					best = c
				}
			}
		}
		for lvl := 0; lvl < cur.height(); lvl++ {
			for _, nb := range []*gnode{cur.left[lvl], cur.right[lvl]} {
				if nb == nil {
					continue
				}
				consider(nb)
				// The NoN table holds nb's own neighbor lists.
				for l2 := 0; l2 < nb.height(); l2++ {
					consider(nb.left[l2])
					consider(nb.right[l2])
				}
			}
		}
		if best == cur {
			break
		}
		cur = best
		op.Visit(cur.host)
	}
	if cur.key > target {
		l := cur.left[0]
		if l != nil {
			op.Visit(l.host)
		}
		return l
	}
	return cur
}

// Insert routes from the originating host and splices the key in,
// returning the message count. With NoN tables on, the update also pays
// one message per second-degree neighbor whose cached table changes.
func (g *Graph) Insert(key uint64, origin sim.HostID) (int, error) {
	if _, ok := g.nodes[key]; ok {
		return 0, fmt.Errorf("skipgraph: duplicate key %d", key)
	}
	n := &gnode{key: key, host: g.nextHost(), mv: g.rng.Uint64()}
	if len(g.nodes) == 0 {
		g.nodes[key] = n
		g.keys = []uint64{key}
		n.left = append(n.left, nil)
		n.right = append(n.right, nil)
		g.chargeStorage(n, 1)
		return 0, nil
	}
	start := g.originFor(origin)
	op := g.net.NewOp(start.host)
	defer op.Free()
	floor := g.searchPlain(start, key, op)

	// Splice at level 0.
	var leftN, rightN *gnode
	if floor == nil {
		// key is below every existing key: its right neighbor is the min.
		rightN = g.nodes[g.keys[0]]
	} else {
		leftN = floor
		rightN = floor.right[0]
	}
	n.left = append(n.left, leftN)
	n.right = append(n.right, rightN)
	if leftN != nil {
		leftN.right[0] = n
		op.Send(leftN.host)
	}
	if rightN != nil {
		rightN.left[0] = n
		op.Send(rightN.host)
	}

	// Build higher levels: scan along level lvl for the nearest node on
	// each side sharing an (lvl+1)-bit membership prefix.
	for lvl := 0; lvl < maxLevels-1; lvl++ {
		mask := uint64(1)<<uint(lvl+1) - 1
		want := n.mv & mask
		var l2, r2 *gnode
		for l := n.left[lvl]; l != nil; l = l.left[lvl] {
			op.Send(l.host) // probe message
			if l.mv&mask == want {
				l2 = l
				break
			}
		}
		for r := n.right[lvl]; r != nil; r = r.right[lvl] {
			op.Send(r.host)
			if r.mv&mask == want {
				r2 = r
				break
			}
		}
		if l2 == nil && r2 == nil {
			break
		}
		n.left = append(n.left, l2)
		n.right = append(n.right, r2)
		if l2 != nil {
			for len(l2.right) <= lvl+1 {
				l2.left = append(l2.left, nil)
				l2.right = append(l2.right, nil)
			}
			l2.right[lvl+1] = n
			op.Send(l2.host)
		}
		if r2 != nil {
			for len(r2.left) <= lvl+1 {
				r2.left = append(r2.left, nil)
				r2.right = append(r2.right, nil)
			}
			r2.left[lvl+1] = n
			op.Send(r2.host)
		}
	}
	g.nodes[key] = n
	i := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= key })
	g.keys = append(g.keys, 0)
	copy(g.keys[i+1:], g.keys[i:])
	g.keys[i] = key
	g.chargeStorage(n, 1)
	if g.non {
		g.propagateTables(n, op)
	}
	return op.Hops(), nil
}

// Delete unlinks the key at every level, returning the message count.
func (g *Graph) Delete(key uint64, origin sim.HostID) (int, error) {
	n, ok := g.nodes[key]
	if !ok {
		return 0, fmt.Errorf("skipgraph: key %d not found", key)
	}
	start := g.originFor(origin)
	op := g.net.NewOp(start.host)
	defer op.Free()
	if found := g.searchPlain(start, key, op); found != n {
		// Routing must land on the key itself.
		op.Visit(n.host)
	}
	g.chargeStorage(n, -1)
	for lvl := 0; lvl < n.height(); lvl++ {
		l, r := n.left[lvl], n.right[lvl]
		if l != nil {
			l.right[lvl] = r
			op.Send(l.host)
		}
		if r != nil {
			r.left[lvl] = l
			op.Send(r.host)
		}
	}
	delete(g.nodes, key)
	i := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= key })
	g.keys = append(g.keys[:i], g.keys[i+1:]...)
	if g.non {
		g.propagateTables(n, op)
	}
	return op.Hops(), nil
}

// propagateTables charges the NoN maintenance traffic after a structural
// change at n: every neighbor re-announces its list to its own neighbors,
// so each node within two hops of n receives one update message.
func (g *Graph) propagateTables(n *gnode, op *sim.Op) {
	seen := map[*gnode]bool{}
	for lvl := 0; lvl < n.height(); lvl++ {
		for _, nb := range []*gnode{n.left[lvl], n.right[lvl]} {
			if nb == nil || seen[nb] {
				continue
			}
			seen[nb] = true
			op.Send(nb.host)
			for l2 := 0; l2 < nb.height(); l2++ {
				for _, nn := range []*gnode{nb.left[l2], nb.right[l2]} {
					if nn == nil || nn == n || seen[nn] {
						continue
					}
					seen[nn] = true
					op.Send(nn.host)
				}
			}
		}
	}
}

// MaxHeight returns the tallest tower.
func (g *Graph) MaxHeight() int {
	max := 0
	for _, n := range g.nodes {
		if n.height() > max {
			max = n.height()
		}
	}
	return max
}

// CheckInvariants verifies the skip-graph structure: every level list is
// sorted and doubly linked, level-(i+1) neighbors share an (i+1)-bit
// membership prefix and are the nearest such nodes at level i.
func (g *Graph) CheckInvariants() error {
	for _, n := range g.nodes {
		for lvl := 0; lvl < n.height(); lvl++ {
			if r := n.right[lvl]; r != nil {
				if r.key <= n.key {
					return fmt.Errorf("skipgraph: level %d order violated at %d", lvl, n.key)
				}
				if lvl >= r.height() || r.left[lvl] != n {
					return fmt.Errorf("skipgraph: level %d link asymmetry at %d", lvl, n.key)
				}
				if lvl > 0 {
					mask := uint64(1)<<uint(lvl) - 1
					if n.mv&mask != r.mv&mask {
						return fmt.Errorf("skipgraph: level %d prefix mismatch at %d", lvl, n.key)
					}
					// r must be the nearest right node at level lvl-1 with
					// the matching prefix.
					for x := n.right[lvl-1]; x != nil && x != r; x = x.right[lvl-1] {
						if x.mv&mask == n.mv&mask {
							return fmt.Errorf("skipgraph: level %d skips matching node %d", lvl, x.key)
						}
					}
				}
			}
		}
	}
	return nil
}
