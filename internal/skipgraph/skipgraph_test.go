package skipgraph

import (
	"math"
	"sort"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func bruteFloor(keys []uint64, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for _, k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func buildGraph(t testing.TB, n int, seed uint64, non bool) (*Graph, *sim.Network, []uint64) {
	t.Helper()
	rng := xrand.New(seed)
	keys := distinctKeys(rng, n)
	net := sim.NewNetwork(n)
	g := New(net, seed, non)
	if err := g.Build(keys); err != nil {
		t.Fatal(err)
	}
	return g, net, keys
}

func TestBuildInvariants(t *testing.T) {
	for _, non := range []bool{false, true} {
		g, _, _ := buildGraph(t, 500, 1, non)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("non=%v: %v", non, err)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, non := range []bool{false, true} {
		g, _, keys := buildGraph(t, 400, 2, non)
		rng := xrand.New(77)
		for i := 0; i < 1500; i++ {
			q := rng.Uint64n(1 << 41)
			got, ok, _ := g.Search(q, sim.HostID(rng.Intn(400)))
			want, wok := bruteFloor(keys, q)
			if ok != wok || (ok && got != want) {
				t.Fatalf("non=%v query %d: got %d,%v want %d,%v", non, q, got, ok, want, wok)
			}
		}
	}
}

func TestSearchExactKeys(t *testing.T) {
	g, _, keys := buildGraph(t, 300, 3, false)
	for _, k := range keys {
		got, ok, _ := g.Search(k, 0)
		if !ok || got != k {
			t.Fatalf("Search(%d) = %d,%v", k, got, ok)
		}
	}
}

func TestSearchHopsLogarithmic(t *testing.T) {
	rng := xrand.New(5)
	var plain, non []float64
	for _, n := range []int{512, 2048, 8192} {
		for _, useNoN := range []bool{false, true} {
			g, _, _ := buildGraph(t, n, uint64(n), useNoN)
			total := 0
			const queries = 400
			qr := rng.Split()
			for i := 0; i < queries; i++ {
				_, _, hops := g.Search(qr.Uint64n(1<<40), sim.HostID(qr.Intn(n)))
				total += hops
			}
			mean := float64(total) / queries
			ratio := mean / math.Log2(float64(n))
			if useNoN {
				non = append(non, ratio)
			} else {
				plain = append(plain, ratio)
			}
		}
	}
	// Plain routing ~ c*log n: ratio roughly flat.
	if plain[2] > plain[0]*1.5 {
		t.Fatalf("plain ratios grow: %v", plain)
	}
	// NoN routing must be measurably faster than plain at n=8192.
	if non[2] >= plain[2] {
		t.Fatalf("NoN (%v) not faster than plain (%v) at n=8192", non[2], plain[2])
	}
}

func TestNoNMemoryQuadratic(t *testing.T) {
	// NoN tables push per-host storage from O(log n) toward O(log² n).
	n := 2048
	_, netPlain, _ := buildGraph(t, n, 9, false)
	_, netNoN, _ := buildGraph(t, n, 9, true)
	sp := netPlain.Snapshot()
	sn := netNoN.Snapshot()
	if sn.MeanStorage < 2*sp.MeanStorage {
		t.Fatalf("NoN mean storage %.1f not clearly above plain %.1f", sn.MeanStorage, sp.MeanStorage)
	}
}

func TestInsertMatchesSemantics(t *testing.T) {
	rng := xrand.New(13)
	net := sim.NewNetwork(600)
	g := New(net, 13, false)
	keys := distinctKeys(rng, 500)
	if err := g.Build(keys[:300]); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys[300:] {
		if _, err := g.Insert(k, sim.HostID(i%300)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 500 {
		t.Fatalf("len %d", g.Len())
	}
	qr := xrand.New(14)
	for i := 0; i < 800; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _ := g.Search(q, sim.HostID(qr.Intn(500)))
		want, wok := bruteFloor(keys, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after inserts: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestInsertBelowMinimum(t *testing.T) {
	net := sim.NewNetwork(8)
	g := New(net, 3, false)
	if err := g.Build([]uint64{100, 200, 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert(50, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := g.Search(60, 0)
	if !ok || got != 50 {
		t.Fatalf("Search(60) = %d,%v", got, ok)
	}
	if _, ok, _ := g.Search(10, 0); ok {
		t.Fatal("Search(10) found phantom floor")
	}
}

func TestDelete(t *testing.T) {
	g, _, keys := buildGraph(t, 200, 15, false)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < len(keys); i += 2 {
		if _, err := g.Delete(keys[i], 0); err != nil {
			t.Fatalf("delete %d: %v", keys[i], err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var remaining []uint64
	for i := 1; i < len(keys); i += 2 {
		remaining = append(remaining, keys[i])
	}
	qr := xrand.New(16)
	for i := 0; i < 500; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _ := g.Search(q, sim.HostID(qr.Intn(100)))
		want, wok := bruteFloor(remaining, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after deletes: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
	if _, err := g.Delete(keys[0], 0); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	g, _, keys := buildGraph(t, 16, 17, false)
	if _, err := g.Insert(keys[0], 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

func TestUpdateCostNoNHigher(t *testing.T) {
	// NoN table maintenance should make updates clearly costlier.
	rng := xrand.New(19)
	keys := distinctKeys(rng, 1024)
	extra := distinctKeys(xrand.New(20), 1200)[1024:]
	costPlain, costNoN := 0, 0
	for _, non := range []bool{false, true} {
		net := sim.NewNetwork(2048)
		g := New(net, 19, non)
		if err := g.Build(keys); err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, k := range extra {
			h, err := g.Insert(k, sim.HostID(i%1024))
			if err != nil {
				t.Fatal(err)
			}
			total += h
		}
		if non {
			costNoN = total
		} else {
			costPlain = total
		}
	}
	if costNoN <= costPlain {
		t.Fatalf("NoN update cost %d not above plain %d", costNoN, costPlain)
	}
}

func TestMaxHeightLogarithmic(t *testing.T) {
	g, _, _ := buildGraph(t, 4096, 23, false)
	if h := g.MaxHeight(); h < 8 || h > 40 {
		t.Fatalf("max height %d for n=4096", h)
	}
}

func TestEmptyGraphSearch(t *testing.T) {
	net := sim.NewNetwork(4)
	g := New(net, 1, false)
	if _, ok, _ := g.Search(5, 0); ok {
		t.Fatal("search on empty graph returned ok")
	}
}
