package skiplist

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func newList(t *testing.T) *List[int, int] {
	t.Helper()
	return New[int, int](xrand.New(1))
}

func TestEmpty(t *testing.T) {
	l := newList(t)
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("Get on empty returned ok")
	}
	if _, _, ok := l.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if _, _, ok := l.Max(); ok {
		t.Fatal("Max on empty returned ok")
	}
	if _, _, ok := l.Floor(3); ok {
		t.Fatal("Floor on empty returned ok")
	}
	if _, _, ok := l.Ceiling(3); ok {
		t.Fatal("Ceiling on empty returned ok")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetDelete(t *testing.T) {
	l := newList(t)
	for i := 0; i < 100; i++ {
		if !l.Set(i*2, i) {
			t.Fatalf("Set(%d) reported existing", i*2)
		}
	}
	if l.Len() != 100 {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := l.Get(i * 2)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := l.Get(i*2 + 1); ok {
			t.Fatalf("Get(%d) found phantom", i*2+1)
		}
	}
	if l.Set(10, 99) {
		t.Fatal("overwrite reported new insert")
	}
	if v, _ := l.Get(10); v != 99 {
		t.Fatal("overwrite did not stick")
	}
	for i := 0; i < 100; i += 2 {
		if !l.Delete(i * 2) {
			t.Fatalf("Delete(%d) failed", i*2)
		}
		if l.Delete(i * 2) {
			t.Fatalf("double Delete(%d) succeeded", i*2)
		}
	}
	if l.Len() != 50 {
		t.Fatalf("len after deletes = %d", l.Len())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFloorCeiling(t *testing.T) {
	l := newList(t)
	for _, k := range []int{10, 20, 30, 40} {
		l.Set(k, k)
	}
	cases := []struct {
		q               int
		floor, ceil     int
		floorOK, ceilOK bool
	}{
		{5, 0, 10, false, true},
		{10, 10, 10, true, true},
		{15, 10, 20, true, true},
		{40, 40, 40, true, true},
		{45, 40, 0, true, false},
	}
	for _, c := range cases {
		fk, _, fok := l.Floor(c.q)
		if fok != c.floorOK || (fok && fk != c.floor) {
			t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, fk, fok, c.floor, c.floorOK)
		}
		ck, _, cok := l.Ceiling(c.q)
		if cok != c.ceilOK || (cok && ck != c.ceil) {
			t.Errorf("Ceiling(%d) = %d,%v want %d,%v", c.q, ck, cok, c.ceil, c.ceilOK)
		}
	}
}

func TestMinMaxKeys(t *testing.T) {
	l := newList(t)
	keys := []int{42, 7, 99, 13, 55}
	for _, k := range keys {
		l.Set(k, 0)
	}
	if k, _, _ := l.Min(); k != 7 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := l.Max(); k != 99 {
		t.Fatalf("Max = %d", k)
	}
	got := l.Keys()
	want := append([]int(nil), keys...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("Keys len %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRange(t *testing.T) {
	l := newList(t)
	for i := 0; i < 20; i++ {
		l.Set(i, i)
	}
	var got []int
	l.Range(5, 12, func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 7 || got[0] != 5 || got[6] != 11 {
		t.Fatalf("Range(5,12) = %v", got)
	}
	// Early stop.
	got = got[:0]
	l.Range(0, 20, func(k, _ int) bool {
		got = append(got, k)
		return len(got) < 3
	})
	if len(got) != 3 {
		t.Fatalf("early-stop Range returned %d items", len(got))
	}
}

// TestAgainstMapOracle drives a long random operation sequence against a
// Go map + sorted-slice oracle.
func TestAgainstMapOracle(t *testing.T) {
	rng := xrand.New(99)
	l := New[int, int](rng.Split())
	oracle := make(map[int]int)
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0:
			l.Set(k, i)
			oracle[k] = i
		case 1:
			got := l.Delete(k)
			_, want := oracle[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, oracle %v", i, k, got, want)
			}
			delete(oracle, k)
		case 2:
			v, ok := l.Get(k)
			wv, wok := oracle[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v, oracle %d,%v", i, k, v, ok, wv, wok)
			}
		}
	}
	if l.Len() != len(oracle) {
		t.Fatalf("len %d, oracle %d", l.Len(), len(oracle))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFloorCeilingPropertyQuick(t *testing.T) {
	rng := xrand.New(7)
	f := func(keysRaw []uint16, qRaw uint16) bool {
		l := New[int, int](rng.Split())
		keys := make([]int, 0, len(keysRaw))
		seen := map[int]bool{}
		for _, kr := range keysRaw {
			k := int(kr % 1000)
			l.Set(k, k)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sort.Ints(keys)
		q := int(qRaw % 1100)
		// Brute-force floor and ceiling.
		wantFloorOK, wantCeilOK := false, false
		var wantFloor, wantCeil int
		for _, k := range keys {
			if k <= q {
				wantFloor, wantFloorOK = k, true
			}
			if k >= q && !wantCeilOK {
				wantCeil, wantCeilOK = k, true
			}
		}
		fk, _, fok := l.Floor(q)
		ck, _, cok := l.Ceiling(q)
		if fok != wantFloorOK || (fok && fk != wantFloor) {
			return false
		}
		if cok != wantCeilOK || (cok && ck != wantCeil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchPathLogarithmic(t *testing.T) {
	rng := xrand.New(5)
	// Mean search path at n=16384 should be well under c*log2(n) for a
	// generous constant, and the ratio path/log(n) should not grow.
	ratios := make([]float64, 0, 3)
	for _, n := range []int{1024, 4096, 16384} {
		l := New[int, int](rng.Split())
		for i := 0; i < n; i++ {
			l.Set(i, i)
		}
		total := 0
		const queries = 500
		qr := rng.Split()
		for q := 0; q < queries; q++ {
			total += l.SearchPathLen(qr.Intn(n))
		}
		mean := float64(total) / queries
		ratios = append(ratios, mean/math.Log2(float64(n)))
	}
	for _, r := range ratios {
		if r > 6 {
			t.Fatalf("search path ratio %v too large (ratios %v)", r, ratios)
		}
	}
	if ratios[2] > ratios[0]*1.5 {
		t.Fatalf("search path growing super-logarithmically: %v", ratios)
	}
}

func TestExpectedHeight(t *testing.T) {
	rng := xrand.New(21)
	l := New[int, int](rng)
	const n = 8192
	for i := 0; i < n; i++ {
		l.Set(i, i)
	}
	// Expected max level ~ log2(n) = 13; allow slack.
	if l.Level() < 8 || l.Level() > 30 {
		t.Fatalf("level = %d for n = %d", l.Level(), n)
	}
}

func TestRenderFigure1(t *testing.T) {
	rng := xrand.New(1)
	l := New[int, int](rng)
	for i := 1; i <= 8; i++ {
		l.Set(i*10, i)
	}
	out := l.Render()
	if !strings.Contains(out, "L00") {
		t.Fatalf("render missing bottom level:\n%s", out)
	}
	// Bottom row must contain every key.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bottom := lines[len(lines)-1]
	for i := 1; i <= 8; i++ {
		if !strings.Contains(bottom, itoa(i*10)) {
			t.Fatalf("bottom row missing %d:\n%s", i*10, out)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	l := newList(t)
	for i := 0; i < 50; i++ {
		l.Set(i, i)
	}
	for i := 0; i < 50; i++ {
		l.Delete(i)
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d after full delete", l.Len())
	}
	if l.Level() != 1 {
		t.Fatalf("level = %d after full delete, want 1", l.Level())
	}
	l.Set(7, 7)
	if v, ok := l.Get(7); !ok || v != 7 {
		t.Fatal("reuse after drain failed")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	l := New[int, int](xrand.New(1))
	for i := 0; i < b.N; i++ {
		l.Set(i, i)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New[int, int](xrand.New(1))
	for i := 0; i < 1<<16; i++ {
		l.Set(i, i)
	}
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(rng.Intn(1 << 16))
	}
}
