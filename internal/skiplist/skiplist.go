// Package skiplist implements the classic randomized skip list of Pugh
// (CACM 1990), the structure shown in Figure 1 of the skip-webs paper.
//
// Each element exists in the bottom-level list, and each node on one level
// is copied to the next higher level with probability 1/2. A search starts
// at the top and proceeds as far as it can on a given level, then drops
// down, giving O(log n) expected query time and O(n) expected space.
//
// In this repository the skip list serves three roles: the Figure 1
// artifact, the centralized baseline that distributed structures are
// compared against, and the reference oracle for property-based tests of
// every ordered-set implementation.
package skiplist

import (
	"cmp"
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// MaxLevel bounds tower height; 2^48 elements is far beyond any workload
// in this repository.
const MaxLevel = 48

// List is a skip list mapping ordered keys to values. The zero value is
// not usable; construct with New.
type List[K cmp.Ordered, V any] struct {
	head  *node[K, V]
	level int // highest level in use, >= 1
	n     int
	rng   *xrand.Rand
}

type node[K cmp.Ordered, V any] struct {
	key   K
	value V
	next  []*node[K, V]
}

// New creates an empty skip list whose tower heights are drawn from rng.
func New[K cmp.Ordered, V any](rng *xrand.Rand) *List[K, V] {
	return &List[K, V]{
		head:  &node[K, V]{next: make([]*node[K, V], MaxLevel)},
		level: 1,
		rng:   rng,
	}
}

// Len returns the number of elements.
func (l *List[K, V]) Len() int { return l.n }

// Level returns the current number of levels in use.
func (l *List[K, V]) Level() int { return l.level }

// findPredecessors fills update with, at each level, the last node whose
// key is < key, and returns the bottom-level candidate (the node at or
// after key).
func (l *List[K, V]) findPredecessors(key K, update []*node[K, V]) *node[K, V] {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// Get returns the value stored for key and whether it is present.
func (l *List[K, V]) Get(key K) (V, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	c := x.next[0]
	if c != nil && c.key == key {
		return c.value, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (l *List[K, V]) Contains(key K) bool {
	_, ok := l.Get(key)
	return ok
}

// Set inserts key with value, replacing any existing value. It returns
// true if the key was newly inserted.
func (l *List[K, V]) Set(key K, value V) bool {
	var update [MaxLevel]*node[K, V]
	c := l.findPredecessors(key, update[:])
	if c != nil && c.key == key {
		c.value = value
		return false
	}
	h := l.rng.Geometric(MaxLevel-1) + 1
	if h > l.level {
		for i := l.level; i < h; i++ {
			update[i] = l.head
		}
		l.level = h
	}
	nn := &node[K, V]{key: key, value: value, next: make([]*node[K, V], h)}
	for i := 0; i < h; i++ {
		nn.next[i] = update[i].next[i]
		update[i].next[i] = nn
	}
	l.n++
	return true
}

// Delete removes key, returning true if it was present.
func (l *List[K, V]) Delete(key K) bool {
	var update [MaxLevel]*node[K, V]
	c := l.findPredecessors(key, update[:])
	if c == nil || c.key != key {
		return false
	}
	for i := 0; i < len(c.next); i++ {
		if update[i].next[i] != c {
			break
		}
		update[i].next[i] = c.next[i]
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.n--
	return true
}

// Floor returns the greatest key <= key, if any.
func (l *List[K, V]) Floor(key K) (K, V, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key <= key {
			x = x.next[i]
		}
	}
	if x == l.head {
		var zk K
		var zv V
		return zk, zv, false
	}
	return x.key, x.value, true
}

// Ceiling returns the least key >= key, if any.
func (l *List[K, V]) Ceiling(key K) (K, V, bool) {
	var update [MaxLevel]*node[K, V]
	c := l.findPredecessors(key, update[:])
	if c == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return c.key, c.value, true
}

// Min returns the smallest key, if any.
func (l *List[K, V]) Min() (K, V, bool) {
	c := l.head.next[0]
	if c == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return c.key, c.value, true
}

// Max returns the largest key, if any.
func (l *List[K, V]) Max() (K, V, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil {
			x = x.next[i]
		}
	}
	if x == l.head {
		var zk K
		var zv V
		return zk, zv, false
	}
	return x.key, x.value, true
}

// Range calls fn for each key/value with lo <= key < hi in ascending order
// until fn returns false.
func (l *List[K, V]) Range(lo, hi K, fn func(K, V) bool) {
	var update [MaxLevel]*node[K, V]
	c := l.findPredecessors(lo, update[:])
	for c != nil && c.key < hi {
		if !fn(c.key, c.value) {
			return
		}
		c = c.next[0]
	}
}

// Keys returns all keys in ascending order.
func (l *List[K, V]) Keys() []K {
	out := make([]K, 0, l.n)
	for c := l.head.next[0]; c != nil; c = c.next[0] {
		out = append(out, c.key)
	}
	return out
}

// SearchPathLen returns the number of nodes inspected while searching for
// key, the quantity Figure 1's O(log n) bound describes. It is exported
// for the Figure 1 experiment.
func (l *List[K, V]) SearchPathLen(key K) int {
	steps := 0
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			steps++
		}
		steps++ // inspecting the level transition
	}
	return steps
}

// CheckInvariants verifies structural soundness: keys strictly ascending at
// every level, every level-i node present at level i-1, and tower heights
// within bounds. It returns an error describing the first violation.
func (l *List[K, V]) CheckInvariants() error {
	if l.level < 1 || l.level > MaxLevel {
		return fmt.Errorf("skiplist: level %d out of range", l.level)
	}
	// Bottom-level ordering and count.
	count := 0
	for c := l.head.next[0]; c != nil; c = c.next[0] {
		count++
		if c.next[0] != nil && c.next[0].key <= c.key {
			return fmt.Errorf("skiplist: keys out of order at level 0: %v !< %v", c.key, c.next[0].key)
		}
	}
	if count != l.n {
		return fmt.Errorf("skiplist: count %d != recorded len %d", count, l.n)
	}
	// Each level is a subsequence of the level below.
	for i := 1; i < l.level; i++ {
		below := make(map[K]bool)
		for c := l.head.next[i-1]; c != nil; c = c.next[i-1] {
			below[c.key] = true
		}
		prevSet := false
		var prev K
		for c := l.head.next[i]; c != nil; c = c.next[i] {
			if !below[c.key] {
				return fmt.Errorf("skiplist: key %v at level %d missing from level %d", c.key, i, i-1)
			}
			if prevSet && c.key <= prev {
				return fmt.Errorf("skiplist: keys out of order at level %d", i)
			}
			prev, prevSet = c.key, true
		}
	}
	return nil
}

// Render draws the skip list in the style of the paper's Figure 1: one row
// per level (top first), with towers aligned over their bottom-level keys.
// It is intended for small lists.
func (l *List[K, V]) Render() string {
	keys := l.Keys()
	pos := make(map[K]int, len(keys))
	for i, k := range keys {
		pos[k] = i
	}
	var b strings.Builder
	for i := l.level - 1; i >= 0; i-- {
		cells := make([]string, len(keys))
		for j := range cells {
			cells[j] = strings.Repeat("-", 6)
		}
		for c := l.head.next[i]; c != nil; c = c.next[i] {
			cells[pos[c.key]] = fmt.Sprintf("%6v", c.key)
		}
		fmt.Fprintf(&b, "L%02d |%s|\n", i, strings.Join(cells, " "))
	}
	return b.String()
}
