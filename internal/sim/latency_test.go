package sim

import (
	"testing"
)

// TestCostModelPurity pins the contract the determinism guarantee rests
// on: Link is a pure function of (from, to) — repeated calls and fresh
// instances built from the same seed agree on every pair.
func TestCostModelPurity(t *testing.T) {
	models := map[string]func() CostModel{
		"fixed":     func() CostModel { return Fixed(7) },
		"uniform":   func() CostModel { return Uniform(42, 1, 100) },
		"lognormal": func() CostModel { return LogNormal(42, 4.6, 0.5) },
		"twolevel": func() CostModel {
			return TwoLevel(8, Uniform(42, 1, 5), LogNormal(43, 4.6, 0.25))
		},
	}
	for name, mk := range models {
		a, b := mk(), mk()
		for from := HostID(0); from < 32; from++ {
			for to := HostID(0); to < 32; to++ {
				c := a.Link(from, to)
				if c < 0 {
					t.Fatalf("%s: Link(%d,%d) = %d, want non-negative", name, from, to, c)
				}
				for rep := 0; rep < 3; rep++ {
					if got := a.Link(from, to); got != c {
						t.Fatalf("%s: Link(%d,%d) changed across calls: %d then %d", name, from, to, c, got)
					}
				}
				if got := b.Link(from, to); got != c {
					t.Fatalf("%s: fresh same-seed instance disagrees at (%d,%d): %d vs %d", name, from, to, c, got)
				}
			}
			// from = None must be well-defined too (unplaced coordinator ops).
			c := a.Link(None, from)
			if got := a.Link(None, from); got != c || c < 0 {
				t.Fatalf("%s: Link(None,%d) unstable or negative: %d then %d", name, from, c, got)
			}
		}
	}
}

// TestUniformModelRange checks the sampled costs stay in [lo, hi], vary
// across pairs, and vary with the seed.
func TestUniformModelRange(t *testing.T) {
	m := Uniform(1, 10, 20)
	other := Uniform(2, 10, 20)
	seenDistinct, seedDiffers := false, false
	first := m.Link(0, 1)
	for from := HostID(0); from < 64; from++ {
		for to := HostID(0); to < 64; to++ {
			c := m.Link(from, to)
			if c < 10 || c > 20 {
				t.Fatalf("Link(%d,%d) = %d outside [10,20]", from, to, c)
			}
			if c != first {
				seenDistinct = true
			}
			if c != other.Link(from, to) {
				seedDiffers = true
			}
		}
	}
	if !seenDistinct {
		t.Fatal("uniform model returned one constant over 4096 pairs")
	}
	if !seedDiffers {
		t.Fatal("different seeds produced identical samples on all 4096 pairs")
	}
	if got := Uniform(9, 5, 5).Link(3, 4); got != 5 {
		t.Fatalf("degenerate Uniform(5,5) = %d, want 5", got)
	}
}

// TestLogNormalModelTail checks positivity and that the distribution
// actually has spread (a heavy tail is the model's reason to exist).
func TestLogNormalModelTail(t *testing.T) {
	m := LogNormal(7, 4.6, 0.5) // median ~100
	var min, max int64 = 1 << 62, 0
	for from := HostID(0); from < 64; from++ {
		for to := HostID(0); to < 64; to++ {
			c := m.Link(from, to)
			if c < 1 {
				t.Fatalf("Link(%d,%d) = %d, want >= 1", from, to, c)
			}
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
	}
	if max < 2*min {
		t.Fatalf("lognormal spread too tight: min %d, max %d", min, max)
	}
}

// TestTwoLevelRackSplit pins the topology rule: same-rack links use the
// intra model, cross-rack links (and links from None) the inter model.
func TestTwoLevelRackSplit(t *testing.T) {
	m := TwoLevel(4, Fixed(1), Fixed(100))
	cases := []struct {
		from, to HostID
		want     int64
	}{
		{0, 3, 1},      // same rack 0
		{4, 7, 1},      // same rack 1
		{3, 4, 100},    // rack boundary
		{0, 8, 100},    // two racks apart
		{None, 2, 100}, // unplaced origin enters over the region link
	}
	for _, c := range cases {
		if got := m.Link(c.from, c.to); got != c.want {
			t.Errorf("Link(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

// TestOpCriticalPathLatency pins the accumulation rule on a live
// network: sequential charges add the link cost, fan-out windows add
// only the maximum, and hop/message counters never consult the model.
func TestOpCriticalPathLatency(t *testing.T) {
	n := NewNetwork(8)
	n.SetCostModel(Fixed(5))
	op := n.NewOp(0)
	op.Visit(1) // 0->1: +5
	op.Visit(1) // same host: free
	op.Visit(2) // 1->2: +5
	op.Send(3)  // 2->3 round trip charge: +5
	if op.Latency() != 15 || op.Hops() != 3 {
		t.Fatalf("sequential: latency %d hops %d, want 15 and 3", op.Latency(), op.Hops())
	}
	op.FanoutBegin()
	op.Send(4)
	op.Send(5)
	op.Send(6) // three parallel mirrors: critical path pays max = 5, hops pay 3
	op.FanoutEnd()
	if op.Latency() != 20 || op.Hops() != 6 {
		t.Fatalf("fan-out: latency %d hops %d, want 20 and 6", op.Latency(), op.Hops())
	}
	op.Free()

	// The same walk with a heterogeneous model: the fan-out window must
	// pay the slowest mirror, not the sum and not the last.
	n2 := NewNetwork(8)
	n2.SetCostModel(TwoLevel(4, Fixed(1), Fixed(50)))
	op2 := n2.NewOp(0)
	op2.FanoutBegin()
	op2.Send(1) // same rack: 1
	op2.Send(7) // cross rack: 50
	op2.Send(2) // same rack: 1
	op2.FanoutEnd()
	if op2.Latency() != 50 {
		t.Fatalf("heterogeneous fan-out latency %d, want max 50", op2.Latency())
	}
	// Nested windows merge into one parallel wave.
	op2.FanoutBegin()
	op2.Send(7) // 50
	op2.FanoutBegin()
	op2.Send(6) // 50, same wave
	op2.FanoutEnd()
	op2.Send(5) // 50, still the same wave
	op2.FanoutEnd()
	if op2.Latency() != 100 {
		t.Fatalf("nested fan-out latency %d, want 100 (one extra wave)", op2.Latency())
	}
	op2.Free()
}

// TestOpLatencyZeroWithoutModel pins the default: no model, no latency,
// identical hop accounting, zero latency stats.
func TestOpLatencyZeroWithoutModel(t *testing.T) {
	n := NewNetwork(4)
	op := n.NewOp(0)
	op.Visit(1)
	op.Visit(2)
	op.FanoutBegin()
	op.Send(3)
	op.FanoutEnd()
	if op.Latency() != 0 {
		t.Fatalf("latency %d without a model, want 0", op.Latency())
	}
	if op.Hops() != 3 {
		t.Fatalf("hops %d, want 3", op.Hops())
	}
	op.Free()
	s := n.Snapshot()
	if s.LatencyOps != 0 || s.LatencyMean != 0 || s.LatencyP50 != 0 || s.LatencyP99 != 0 || s.LatencyMax != 0 {
		t.Fatalf("nil-model latency stats not all zero: %+v", s)
	}
}

// TestLatencyHistogramQuantiles records a known latency population and
// checks the log-bucketed quantiles stay within the documented 12.5%.
func TestLatencyHistogramQuantiles(t *testing.T) {
	n := NewNetwork(2)
	n.SetCostModel(Fixed(1))
	// 1000 ops of latency i+1 each: p50 is ~500, p99 ~990, max 1000.
	for i := 0; i < 1000; i++ {
		op := n.NewOp(0)
		for j := 0; j <= i; j++ {
			op.Send(1)
		}
		op.Free()
	}
	s := n.Snapshot()
	if s.LatencyOps != 1000 {
		t.Fatalf("LatencyOps = %d, want 1000", s.LatencyOps)
	}
	within := func(name string, got, want int64) {
		lo := want - want/8 - 1
		hi := want + want/8 + 1
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within 12.5%% of %d", name, got, want)
		}
	}
	within("p50", s.LatencyP50, 500)
	within("p99", s.LatencyP99, 990)
	if s.LatencyMax != 1000 {
		t.Errorf("max = %d, want exactly 1000 (tracked, not bucketed)", s.LatencyMax)
	}
	if s.LatencyMean < 450 || s.LatencyMean > 550 {
		t.Errorf("mean = %g, want ~500.5 (exact sum/count)", s.LatencyMean)
	}

	// ResetTraffic clears the histogram with the counters.
	n.ResetTraffic()
	s = n.Snapshot()
	if s.LatencyOps != 0 || s.LatencyMax != 0 {
		t.Fatalf("latency stats survive ResetTraffic: %+v", s)
	}
}

// TestLatBucketGeometry checks the histogram's bucket mapping: exact
// below latSub, monotone throughout, and bucket lower bounds that never
// exceed the values they represent by more than the documented error.
func TestLatBucketGeometry(t *testing.T) {
	for v := int64(0); v < latSub; v++ {
		if b := latBucket(v); latBucketValue(b) != v {
			t.Fatalf("small value %d maps to bucket %d with value %d, want exact", v, b, latBucketValue(b))
		}
	}
	prev := -1
	for _, v := range []int64{8, 9, 100, 1000, 12345, 1 << 20, 1 << 40, 1 << 62} {
		b := latBucket(v)
		if b <= prev && v > int64(prev) {
			// buckets must be non-decreasing in v
			t.Fatalf("bucket order violated at %d: bucket %d after %d", v, b, prev)
		}
		prev = b
		lo := latBucketValue(b)
		if lo > v {
			t.Fatalf("bucket value %d exceeds member %d", lo, v)
		}
		if v > latSub && lo < v-v/8-1 {
			t.Fatalf("bucket value %d under-reports %d by more than 12.5%%", lo, v)
		}
	}
	if latBucket(-5) != 0 {
		t.Fatalf("negative latencies must clamp to bucket 0, got %d", latBucket(-5))
	}
}

// TestWorkersStartLazily pins the scale-plumbing behavior: a cluster
// over many hosts launches workers only for hosts that actually receive
// dispatched work.
func TestWorkersStartLazily(t *testing.T) {
	net := NewNetwork(1024)
	c := NewCluster(net)
	defer c.Stop()
	if got := c.WorkersStarted(); got != 0 {
		t.Fatalf("WorkersStarted = %d before any dispatch, want 0", got)
	}
	done := make(chan struct{})
	c.Go(5, func() { close(done) })
	<-done
	if got := c.WorkersStarted(); got != 1 {
		t.Fatalf("WorkersStarted = %d after one Go, want 1", got)
	}
	c.RunBatch(16,
		func(i int) HostID { return HostID(i % 8) },
		func(i int) {})
	if got := c.WorkersStarted(); got < 8 || got > 9 {
		t.Fatalf("WorkersStarted = %d after a batch over 8 origins, want 8 (or 9 with the Go host)", got)
	}
}
