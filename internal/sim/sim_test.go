package sim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewNetworkPanicsOnZeroHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNetwork(0) did not panic")
		}
	}()
	NewNetwork(0)
}

func TestOpHopAccounting(t *testing.T) {
	n := NewNetwork(4)
	op := n.NewOp(0)
	op.Visit(0) // same host: free
	if op.Hops() != 0 {
		t.Fatalf("same-host visit charged: %d", op.Hops())
	}
	op.Visit(1)
	op.Visit(1)
	op.Visit(2)
	op.Visit(3)
	if op.Hops() != 3 {
		t.Fatalf("hops = %d, want 3", op.Hops())
	}
	if n.TotalMessages() != 3 {
		t.Fatalf("total messages = %d, want 3", n.TotalMessages())
	}
}

func TestOpStartAtNoneFirstVisitFree(t *testing.T) {
	n := NewNetwork(4)
	op := n.NewOp(None)
	op.Visit(2)
	if op.Hops() != 0 {
		t.Fatalf("first placement charged: %d hops", op.Hops())
	}
	op.Visit(3)
	if op.Hops() != 1 {
		t.Fatalf("hops = %d, want 1", op.Hops())
	}
	if op.Current() != 3 {
		t.Fatalf("current = %d, want 3", op.Current())
	}
}

func TestVisitNoneIsNoop(t *testing.T) {
	n := NewNetwork(2)
	op := n.NewOp(0)
	op.Visit(None)
	if op.Hops() != 0 || op.Current() != 0 {
		t.Fatal("Visit(None) changed state")
	}
}

func TestSendChargesWithoutMoving(t *testing.T) {
	n := NewNetwork(3)
	op := n.NewOp(0)
	op.Send(2)
	if op.Hops() != 1 {
		t.Fatalf("hops = %d, want 1", op.Hops())
	}
	if op.Current() != 0 {
		t.Fatalf("Send moved the op to %d", op.Current())
	}
}

func TestStorageAccounting(t *testing.T) {
	n := NewNetwork(3)
	n.AddStorage(0, 10)
	n.AddStorage(1, 4)
	n.AddStorage(0, -3)
	if got := n.Storage(0); got != 7 {
		t.Fatalf("storage(0) = %d, want 7", got)
	}
	s := n.Snapshot()
	if s.MaxStorage != 7 {
		t.Fatalf("max storage = %d, want 7", s.MaxStorage)
	}
	wantMean := (7.0 + 4.0 + 0.0) / 3.0
	if s.MeanStorage != wantMean {
		t.Fatalf("mean storage = %v, want %v", s.MeanStorage, wantMean)
	}
}

func TestSnapshotCongestion(t *testing.T) {
	n := NewNetwork(2)
	op := n.NewOp(0)
	op.Visit(1)
	op.Visit(0)
	op.Visit(1)
	s := n.Snapshot()
	if s.TotalOps != 1 {
		t.Fatalf("total ops = %d", s.TotalOps)
	}
	// Host 1 was touched twice (two arrivals), host 0 twice (start + return).
	if s.MaxCongestion != 2 {
		t.Fatalf("max congestion = %d, want 2", s.MaxCongestion)
	}
}

func TestResetTrafficPreservesStorage(t *testing.T) {
	n := NewNetwork(2)
	n.AddStorage(1, 9)
	op := n.NewOp(0)
	op.Visit(1)
	n.ResetTraffic()
	if n.TotalMessages() != 0 || n.TotalOps() != 0 {
		t.Fatal("traffic not reset")
	}
	if n.Storage(1) != 9 {
		t.Fatal("storage was reset")
	}
}

func TestStorageQuantiles(t *testing.T) {
	n := NewNetwork(4)
	for i, v := range []int{1, 2, 3, 4} {
		n.AddStorage(HostID(i), v)
	}
	qs := n.StorageQuantiles(0.25, 0.5, 1.0)
	if qs[0] != 1 || qs[1] != 2 || qs[2] != 4 {
		t.Fatalf("quantiles = %v, want [1 2 4]", qs)
	}
}

func TestClusterSerializesPerHost(t *testing.T) {
	n := NewNetwork(4)
	c := NewCluster(n)
	defer c.Stop()

	// Many goroutines increment an unguarded counter on host 0; the actor
	// discipline must serialize them (run with -race to verify).
	counter := 0
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Do(0, func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != workers*each {
		t.Fatalf("counter = %d, want %d", counter, workers*each)
	}
}

func TestClusterCrossHostWork(t *testing.T) {
	n := NewNetwork(8)
	c := NewCluster(n)
	defer c.Stop()

	results := make([]int, 8)
	var wg sync.WaitGroup
	for h := 0; h < 8; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c.Do(HostID(h), func() { results[h] = h * h })
		}(h)
	}
	wg.Wait()
	for h := 0; h < 8; h++ {
		if results[h] != h*h {
			t.Fatalf("host %d result %d", h, results[h])
		}
	}
}

func TestClusterDoSameHostReentry(t *testing.T) {
	// Regression: Do(h, fn) where fn calls Do(h, ...) used to deadlock
	// (the worker waited on a message to itself). Re-entry must run inline
	// on the worker goroutine.
	n := NewNetwork(2)
	c := NewCluster(n)
	defer c.Stop()

	ran := 0
	c.Do(0, func() {
		ran++
		c.Do(0, func() {
			ran++
			c.Do(0, func() { ran++ }) // nested twice for good measure
		})
	})
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}

	// Cross-host nesting from a worker goroutine must still work: host 0's
	// worker synchronously asks host 1 for a value.
	got := 0
	c.Do(0, func() {
		c.Do(1, func() { got = 41 })
		got++
	})
	if got != 42 {
		t.Fatalf("cross-host nested Do got %d, want 42", got)
	}
}

func TestClusterGoAsyncCompletes(t *testing.T) {
	n := NewNetwork(4)
	c := NewCluster(n)
	defer c.Stop()

	var wg sync.WaitGroup
	counters := make([]int, 4)
	const each = 500
	for h := 0; h < 4; h++ {
		for i := 0; i < each; i++ {
			wg.Add(1)
			h := h
			c.Go(HostID(h), func() {
				defer wg.Done()
				counters[h]++ // unguarded: the per-host worker serializes
			})
		}
	}
	wg.Wait()
	for h, got := range counters {
		if got != each {
			t.Fatalf("host %d counter = %d, want %d", h, got, each)
		}
	}
}

func TestClusterStopDrainsAsyncTasks(t *testing.T) {
	n := NewNetwork(2)
	c := NewCluster(n)
	count := 0
	for i := 0; i < 100; i++ {
		c.Go(0, func() { count++ })
	}
	c.Stop() // must drain all 100 enqueued tasks before workers exit
	if count != 100 {
		t.Fatalf("drained %d tasks, want 100", count)
	}
}

func TestClusterGoAfterStopPanics(t *testing.T) {
	c := NewCluster(NewNetwork(1))
	c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Go after Stop did not panic")
		}
	}()
	c.Go(0, func() {})
}

func TestClusterRunBatch(t *testing.T) {
	n := NewNetwork(8)
	c := NewCluster(n)
	defer c.Stop()

	const ops = 400
	results := make([]int, ops)
	c.RunBatch(ops,
		func(i int) HostID { return HostID(i % 8) },
		func(i int) { results[i] = i * i })
	for i, r := range results {
		if r != i*i {
			t.Fatalf("op %d result %d, want %d", i, r, i*i)
		}
	}
}

func TestClusterStopIdempotent(t *testing.T) {
	c := NewCluster(NewNetwork(2))
	c.Stop()
	c.Stop() // must not panic or deadlock
}

func TestClusterDoAfterStopPanics(t *testing.T) {
	c := NewCluster(NewNetwork(1))
	c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Do after Stop did not panic")
		}
	}()
	c.Do(0, func() {})
}

func TestNetworkChurnLiveTracking(t *testing.T) {
	n := NewNetwork(4)
	if n.LiveHosts() != 4 || n.Hosts() != 4 {
		t.Fatalf("fresh network: live=%d slots=%d", n.LiveHosts(), n.Hosts())
	}
	h := n.AddHost()
	if h != 4 || n.LiveHosts() != 5 || n.Hosts() != 5 {
		t.Fatalf("AddHost: id=%d live=%d slots=%d", h, n.LiveHosts(), n.Hosts())
	}
	n.RemoveHost(2)
	if n.Alive(2) {
		t.Fatal("removed host still alive")
	}
	if n.LiveHosts() != 4 || n.Hosts() != 5 {
		t.Fatalf("after remove: live=%d slots=%d", n.LiveHosts(), n.Hosts())
	}
	want := []HostID{0, 1, 3, 4}
	for i, w := range want {
		if got := n.LiveAt(i); got != w {
			t.Fatalf("LiveAt(%d) = %d, want %d", i, got, w)
		}
	}
	// NextLive wraps cyclically and skips the departed host.
	if got := n.NextLive(1); got != 3 {
		t.Fatalf("NextLive(1) = %d, want 3", got)
	}
	if got := n.NextLive(4); got != 0 {
		t.Fatalf("NextLive(4) = %d, want 0", got)
	}
	// Ids are never reused: a new joiner gets a fresh slot.
	if h2 := n.AddHost(); h2 != 5 {
		t.Fatalf("AddHost after removal = %d, want 5", h2)
	}
}

func TestNetworkRemoveHostPanics(t *testing.T) {
	n := NewNetwork(2)
	n.RemoveHost(0)
	for name, f := range map[string]func(){
		"remove departed":  func() { n.RemoveHost(0) },
		"remove last live": func() { n.RemoveHost(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestOpSurvivesHostRemoval covers the churn edge case of removing the
// host an operation is currently visiting: the departed slot keeps its
// counters, so the op finishes its route and every hop stays counted.
func TestOpSurvivesHostRemoval(t *testing.T) {
	n := NewNetwork(4)
	op := n.NewOp(0)
	op.Visit(2) // op is now parked on host 2
	n.RemoveHost(2)
	op.Visit(3) // move off the departed host: still one charged message
	op.Send(2)  // a straggler message to the departed slot stays counted
	if op.Hops() != 3 {
		t.Fatalf("hops = %d, want 3", op.Hops())
	}
	if n.TotalMessages() != 3 {
		t.Fatalf("total messages = %d, want 3 (history must include departed hosts)", n.TotalMessages())
	}
	s := n.Snapshot()
	if s.Hosts != 3 {
		t.Fatalf("snapshot hosts = %d, want 3 live", s.Hosts)
	}
}

func TestStorageQuantilesSkipDepartedHosts(t *testing.T) {
	n := NewNetwork(4)
	for h := 0; h < 4; h++ {
		n.AddStorage(HostID(h), (h+1)*10)
	}
	n.AddStorage(3, -40) // host 3 drained by migration...
	n.RemoveHost(3)      // ...and departed
	qs := n.StorageQuantiles(0.5, 1.0)
	if qs[0] != 20 || qs[1] != 30 {
		t.Fatalf("quantiles = %v, want [20 30] over live hosts only", qs)
	}
}

// TestClusterHostChurn exercises mailbox spin-up for a joiner and
// drain-on-departure for a leaver.
func TestClusterHostChurn(t *testing.T) {
	n := NewNetwork(2)
	c := NewCluster(n)
	defer c.Stop()
	h := n.AddHost()
	c.AddHost(h)
	ran := false
	c.Do(h, func() { ran = true })
	if !ran {
		t.Fatal("task on joined host did not run")
	}
	// Tasks enqueued before departure drain; sends after it panic.
	var mu sync.Mutex
	count := 0
	for i := 0; i < 8; i++ {
		c.Go(1, func() { mu.Lock(); count++; mu.Unlock() })
	}
	n.RemoveHost(1)
	c.RemoveHost(1)
	c.Do(0, func() {}) // other hosts unaffected
	deadline := make(chan struct{})
	go func() {
		for {
			mu.Lock()
			done := count == 8
			mu.Unlock()
			if done {
				close(deadline)
				return
			}
		}
	}()
	<-deadline
	defer func() {
		if recover() == nil {
			t.Fatal("Go to departed host did not panic")
		}
	}()
	c.Go(1, func() {})
}

func TestSnapshotMeansCoverLiveHostsOnly(t *testing.T) {
	n := NewNetwork(4)
	op := n.NewOp(0)
	for i := 0; i < 100; i++ {
		op.Send(3) // host 3 receives heavy traffic...
	}
	op.Send(1)
	op.Send(2)
	n.RemoveHost(3) // ...then departs
	s := n.Snapshot()
	if s.TotalMessages != 102 {
		t.Fatalf("total = %d, want 102 (history includes departed hosts)", s.TotalMessages)
	}
	if s.MeanMessages != 2.0/3.0 {
		t.Fatalf("mean messages = %v, want 2/3 (live hosts only)", s.MeanMessages)
	}
	if s.MaxMessages != 1 {
		t.Fatalf("max messages = %d, want 1 (live hosts only)", s.MaxMessages)
	}
}

func TestClusterStartedAfterDepartureClosesDeadMailboxes(t *testing.T) {
	n := NewNetwork(3)
	n.RemoveHost(1) // departs before the worker pool starts
	c := NewCluster(n)
	defer c.Stop()
	c.Do(0, func() {}) // live hosts work
	c.Do(2, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Go to pre-departed host did not panic")
		}
	}()
	c.Go(1, func() {})
}

// TestNetworkCrashLosesStorageAndLiveSlot pins the unclean-departure
// semantics: the crashed host leaves the live set, joins the crashed
// set, and its storage counter — the data that died with it — drops to
// zero, while message history is retained like any departed slot.
func TestNetworkCrashLosesStorageAndLiveSlot(t *testing.T) {
	n := NewNetwork(3)
	n.AddStorage(1, 25)
	op := n.NewOp(0)
	op.Send(1)
	n.Crash(1)
	if n.Alive(1) || !n.Crashed(1) {
		t.Fatalf("crashed host: alive=%v crashed=%v", n.Alive(1), n.Crashed(1))
	}
	if n.Crashed(0) || n.Crashed(2) {
		t.Fatal("live hosts marked crashed")
	}
	if n.LiveHosts() != 2 {
		t.Fatalf("live hosts = %d, want 2", n.LiveHosts())
	}
	if st := n.Storage(1); st != 0 {
		t.Fatalf("crashed host storage = %d, want 0 (data lost)", st)
	}
	if n.TotalMessages() != 1 {
		t.Fatal("message history of crashed host must be retained")
	}
	// A cooperative leave, by contrast, is not a crash.
	n.RemoveHost(2)
	if n.Crashed(2) {
		t.Fatal("RemoveHost marked the host crashed")
	}
}

func TestNetworkCrashPanics(t *testing.T) {
	n := NewNetwork(2)
	n.Crash(0)
	for name, f := range map[string]func(){
		"crash crashed host": func() { n.Crash(0) },
		"crash last live":    func() { n.Crash(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestClusterCrashFailsPendingAndFutureDo pins the fail-fast contract:
// a crash drops the mailbox, so tasks already queued behind a blocker
// are discarded with a typed HostDownError, and later Do calls fail the
// same way instead of panicking or hanging.
func TestClusterCrashFailsPendingAndFutureDo(t *testing.T) {
	n := NewNetwork(2)
	c := NewCluster(n)
	defer c.Stop()
	block := make(chan struct{})
	entered := make(chan struct{})
	c.Go(1, func() { close(entered); <-block })
	<-entered // worker 1 is busy; everything below queues behind it
	pending := make(chan error, 1)
	go func() { pending <- c.Do(1, func() { t.Error("dropped task ran") }) }()
	// Wait until the pending rendezvous is actually in the mailbox.
	for {
		c.mailMu.RLock()
		m := c.mail[1]
		c.mailMu.RUnlock()
		m.mu.Lock()
		queued := len(m.queue) > 0
		m.mu.Unlock()
		if queued {
			break
		}
	}
	n.Crash(1)
	c.Crash(1)
	close(block)
	err := <-pending
	var down *HostDownError
	if !errors.As(err, &down) || down.Host != 1 {
		t.Fatalf("pending Do returned %v, want HostDownError{1}", err)
	}
	if !errors.Is(err, ErrHostDown) {
		t.Fatal("HostDownError must match errors.Is(err, ErrHostDown)")
	}
	if err := c.Do(1, func() {}); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Do to crashed host returned %v, want ErrHostDown", err)
	}
	if err := c.Do(0, func() {}); err != nil {
		t.Fatalf("Do to live host after crash: %v", err)
	}
}

// TestClusterStartedAfterCrashDropsDeadMailboxes mirrors the departed-
// slot test for crashes: a pool started after the crash must hand out
// the typed error, not a panic.
func TestClusterStartedAfterCrashDropsDeadMailboxes(t *testing.T) {
	n := NewNetwork(3)
	n.Crash(1)
	c := NewCluster(n)
	defer c.Stop()
	if err := c.Do(0, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := c.Do(1, func() {}); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Do to pre-crashed host returned %v, want ErrHostDown", err)
	}
}

// TestClusterDoTimeout pins the typed per-call deadline: a deliberately
// stalled handler wedges a host's worker, and a Do with SetDoTimeout
// configured must return a TimeoutError instead of blocking forever.
func TestClusterDoTimeout(t *testing.T) {
	n := NewNetwork(2)
	c := NewCluster(n)
	defer c.Stop()
	block := make(chan struct{})
	entered := make(chan struct{})
	c.Go(1, func() { close(entered); <-block })
	<-entered // host 1's worker is now wedged

	c.SetDoTimeout(50 * time.Millisecond)
	err := c.Do(1, func() {})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Do on wedged host returned %v, want TimeoutError", err)
	}
	if te.Host != 1 || te.After != 50*time.Millisecond {
		t.Fatalf("TimeoutError fields = %+v", te)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatal("TimeoutError must match errors.Is(err, ErrTimeout)")
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError.Timeout() must report true")
	}

	// Live hosts are unaffected, and clearing the deadline restores the
	// wait-forever default.
	if err := c.Do(0, func() {}); err != nil {
		t.Fatalf("Do on live host under deadline: %v", err)
	}
	c.SetDoTimeout(0)
	close(block)
	if err := c.Do(1, func() {}); err != nil {
		t.Fatalf("Do after unwedging: %v", err)
	}
}
