package sim

import "testing"

// TestDurabilityWALAccounting pins the WAL cost model: every AddStorage
// on a live, unpaused durable host appends one charged record, and every
// `every` records fold into one charged checkpoint that truncates the
// log.
func TestDurabilityWALAccounting(t *testing.T) {
	n := NewNetwork(2)
	n.EnableDurability(4)
	if !n.Durable() {
		t.Fatal("EnableDurability left the network non-durable")
	}
	if got := n.Checkpoints(0); got != 1 {
		t.Fatalf("base checkpoint count = %d, want 1", got)
	}
	base := n.Messages(0)
	for i := 0; i < 3; i++ {
		n.AddStorage(0, 1)
	}
	if got := n.WALRecords(0); got != 3 {
		t.Fatalf("after 3 writes: WAL records = %d, want 3", got)
	}
	if got := n.Messages(0) - base; got != 3 {
		t.Fatalf("after 3 writes: fsync messages = %d, want 3", got)
	}
	// The 4th record hits the cadence: one checkpoint, log truncated.
	n.AddStorage(0, 1)
	if got := n.WALRecords(0); got != 0 {
		t.Fatalf("after checkpoint: WAL records = %d, want 0", got)
	}
	if got := n.Checkpoints(0); got != 2 {
		t.Fatalf("after checkpoint: checkpoints = %d, want 2", got)
	}
	if got := n.Messages(0) - base; got != 5 {
		t.Fatalf("4 records + 1 checkpoint = %d messages, want 5", got)
	}
	// The untouched host logged nothing.
	if n.WALRecords(1) != 0 || n.Checkpoints(1) != 1 {
		t.Fatalf("idle host logged records=%d checkpoints=%d", n.WALRecords(1), n.Checkpoints(1))
	}
	// The image tracks storage exactly.
	if img, st := n.DurableImage(0), n.Storage(0); img != st || st != 4 {
		t.Fatalf("image %d vs storage %d, want both 4", img, st)
	}
}

// TestDurabilityEnableIdempotent pins that a second EnableDurability is
// a no-op preserving the first cadence.
func TestDurabilityEnableIdempotent(t *testing.T) {
	n := NewNetwork(1)
	n.AddStorage(0, 7) // pre-durability storage becomes the base image
	n.EnableDurability(2)
	if got := n.DurableImage(0); got != 7 {
		t.Fatalf("base image = %d, want the pre-enable storage 7", got)
	}
	n.EnableDurability(1000) // ignored: cadence stays 2
	n.AddStorage(0, 1)
	n.AddStorage(0, 1)
	if got := n.Checkpoints(0); got != 2 {
		t.Fatalf("checkpoints = %d, want 2 (cadence-2 survived re-enable)", got)
	}
}

// TestDurabilityPauseResume pins the bulk-build protocol: paused writes
// charge no WAL records but keep the image exact, and Resume folds any
// pre-pause records into a fresh checkpoint.
func TestDurabilityPauseResume(t *testing.T) {
	n := NewNetwork(1)
	n.EnableDurability(100)
	n.AddStorage(0, 1) // one real WAL record
	if got := n.WALRecords(0); got != 1 {
		t.Fatalf("pre-pause records = %d, want 1", got)
	}
	n.PauseDurability()
	base := n.Messages(0)
	for i := 0; i < 50; i++ {
		n.AddStorage(0, 1)
	}
	if got := n.Messages(0) - base; got != 0 {
		t.Fatalf("paused writes charged %d durability messages, want 0", got)
	}
	if got := n.WALRecords(0); got != 1 {
		t.Fatalf("paused writes appended records: %d, want still 1", got)
	}
	if got := n.DurableImage(0); got != 51 {
		t.Fatalf("image = %d, want 51 (image tracks storage even paused)", got)
	}
	n.ResumeDurability()
	if got := n.WALRecords(0); got != 0 {
		t.Fatalf("resume left %d records, want 0 (folded into checkpoint)", got)
	}
	if got := n.Checkpoints(0); got != 2 {
		t.Fatalf("resume checkpoints = %d, want 2", got)
	}
}

// TestDurabilityCrashRestart pins the recovery contract: Crash zeroes
// the live storage but keeps the durable image; writes during the
// outage land on the image silently; Restart restores storage from the
// image, charges 1 + records replay messages, and re-checkpoints.
func TestDurabilityCrashRestart(t *testing.T) {
	n := NewNetwork(3)
	n.EnableDurability(100)
	for i := 0; i < 5; i++ {
		n.AddStorage(1, 1)
	}
	n.Crash(1)
	if got := n.Storage(1); got != 0 {
		t.Fatalf("crashed storage = %d, want 0", got)
	}
	if got := n.DurableImage(1); got != 5 {
		t.Fatalf("image after crash = %d, want 5 (the disk survives)", got)
	}
	// Writes while down: image-only, no WAL records, no messages.
	base := n.Messages(1)
	n.AddStorage(1, 2)
	if got := n.Messages(1) - base; got != 0 {
		t.Fatalf("write to crashed host charged %d messages, want 0", got)
	}
	if got, img := n.WALRecords(1), n.DurableImage(1); got != 5 || img != 7 {
		t.Fatalf("crashed write: records=%d image=%d, want 5 and 7", got, img)
	}
	if n.Storage(1) != 0 {
		t.Fatal("write to crashed host leaked into live storage")
	}

	base = n.Messages(1)
	replay := n.Restart(1)
	if replay != 6 { // 1 checkpoint load + 5 records
		t.Fatalf("replay = %d messages, want 6 (checkpoint + 5 records)", replay)
	}
	if got := n.Messages(1) - base; got != int64(replay) {
		t.Fatalf("Restart charged %d messages but reported %d", got, replay)
	}
	if !n.Alive(1) || n.Crashed(1) {
		t.Fatal("Restart did not revive the host")
	}
	if got := n.Storage(1); got != 7 {
		t.Fatalf("restored storage = %d, want the image 7", got)
	}
	if got := n.WALRecords(1); got != 0 {
		t.Fatalf("post-restart records = %d, want 0 (recovery re-checkpoints)", got)
	}
	// An immediate re-crash replays only the fresh checkpoint.
	n.Crash(1)
	if replay := n.Restart(1); replay != 1 {
		t.Fatalf("second replay = %d, want 1 (nothing since recovery checkpoint)", replay)
	}
}

// TestDurabilityRestartPanics pins Restart's preconditions.
func TestDurabilityRestartPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	n := NewNetwork(2)
	mustPanic("Restart on non-durable network", func() { n.Restart(0) })
	n.EnableDurability(0)
	mustPanic("Restart of a live host", func() { n.Restart(0) })
}

// TestDurabilityNonDurableUnchanged pins that without EnableDurability
// the accessors report zero and AddStorage charges nothing — the
// bit-identity guarantee for Options.Durable=false.
func TestDurabilityNonDurableUnchanged(t *testing.T) {
	n := NewNetwork(1)
	base := n.Messages(0)
	for i := 0; i < 10; i++ {
		n.AddStorage(0, 1)
	}
	if got := n.Messages(0) - base; got != 0 {
		t.Fatalf("non-durable AddStorage charged %d messages, want 0", got)
	}
	if n.WALRecords(0) != 0 || n.Checkpoints(0) != 0 || n.DurableImage(0) != 0 {
		t.Fatal("non-durable accessors returned non-zero")
	}
}

// TestDurabilityDeliverTap pins that WAL fsync charges flow through the
// delivery tap like any other message — the hook the wire transport uses
// to emit real frames for durability I/O.
func TestDurabilityDeliverTap(t *testing.T) {
	n := NewNetwork(1)
	n.EnableDurability(2)
	var delivered []HostID
	n.SetDeliver(func(h HostID) { delivered = append(delivered, h) })
	n.AddStorage(0, 1) // record
	n.AddStorage(0, 1) // record + checkpoint
	if len(delivered) != 3 {
		t.Fatalf("delivery tap fired %d times, want 3 (2 records + 1 checkpoint)", len(delivered))
	}
	for _, h := range delivered {
		if h != 0 {
			t.Fatalf("durability I/O delivered to host %d, want 0", h)
		}
	}
}
