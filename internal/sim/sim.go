// Package sim provides the distributed-systems substrate on which every
// structure in this repository is built and measured.
//
// The skip-webs paper (Arge, Eppstein, Goodrich, PODC 2005) evaluates
// distributed data structures by four cost measures over a network of H
// hosts: per-host memory M, per-host congestion C(n), query message count
// Q(n), and update message count U(n). None of those are wall-clock
// quantities, so the substrate is an accounting simulator: hosts are
// identities, and every cross-host pointer dereference performed by a
// structure is recorded as one message. Same-host pointer follows are free,
// exactly as in the paper's model (Section 1.1).
//
// Two execution modes are provided:
//
//   - Network alone: synchronous, deterministic accounting. All experiment
//     numbers in EXPERIMENTS.md come from this mode.
//   - Cluster: runs one goroutine per host and executes work on the owning
//     host's goroutine, serializing per-host state access the way a real
//     message-passing node would. Do is the blocking rendezvous; Go is the
//     send-and-continue variant backing the batch query engine, and
//     RunBatch fans a whole batch out over the per-host workers.
//     Integration tests use it (with -race) to demonstrate the structures
//     operate correctly as concurrent message-passing code.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HostID identifies a host in the network. Hosts are numbered 0..H-1.
type HostID int32

// None is the sentinel for "no host"; operations that have not yet visited
// any host start there.
const None HostID = -1

// ErrHostDown is the sentinel error for operations that required a
// crashed host. Match with errors.Is; the concrete error carried through
// the failure paths is a HostDownError, which wraps this sentinel and
// names the host.
var ErrHostDown = errors.New("host is down")

// HostDownError reports that an operation needed host Host, which has
// crashed (unclean departure, its data lost). It is the typed fail-fast
// error the crash subsystem promises: query descents that find no live
// replica, and rendezvous with a dropped mailbox, both surface it.
type HostDownError struct{ Host HostID }

// Error describes the failed host.
func (e *HostDownError) Error() string {
	return fmt.Sprintf("sim: host %d is down (crashed)", e.Host)
}

// Unwrap makes errors.Is(err, ErrHostDown) match.
func (e *HostDownError) Unwrap() error { return ErrHostDown }

// ErrTimeout is the sentinel error for operations that exceeded a
// configured per-call deadline (Transport.SetDoTimeout, and the wire
// transport's dial/read deadlines). Match with errors.Is; the concrete
// error carried is a TimeoutError naming the host and the deadline.
var ErrTimeout = errors.New("operation timed out")

// TimeoutError reports that a call to host Host did not complete within
// After. It is the typed error a dead or wedged remote host produces
// instead of hanging the caller forever. Note the rendezvous is
// abandoned, not cancelled: the task may still execute later if the
// host recovers.
type TimeoutError struct {
	Host  HostID
	After time.Duration
}

// Error describes the timed-out call.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sim: call to host %d timed out after %v", e.Host, e.After)
}

// Unwrap makes errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// Timeout reports true, satisfying the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// Transport is the host-execution contract the structures and the batch
// engine run on: execute a closure on a host (synchronously or
// send-and-continue), fan a batch out over the per-host workers, and
// manage host lifecycle (spawn on join, drain on leave, drop on crash,
// drain-and-stop on shutdown). It is exactly the surface of Cluster, the
// in-process implementation; internal/wire provides a second
// implementation whose dispatch rides length-prefixed TCP frames. The
// semantic contract both implementations satisfy (and the conformance
// suite in internal/wire pins):
//
//   - Do(h, fn) runs fn on host h's worker and returns when it is done;
//     tasks from one sender to one host run in FIFO order, and a Do
//     issued from host h's own worker runs inline (same-host re-entry
//     never deadlocks).
//   - Do on a crashed host — or with the task still queued when the
//     host crashes — fails fast with a HostDownError; Do on a
//     cooperatively departed or stopped host panics (programming error).
//   - Go(h, fn) enqueues fn and returns immediately; Go to a departed,
//     crashed, or stopped host panics.
//   - SetDoTimeout bounds every subsequent Do rendezvous: a wedged host
//     yields a TimeoutError instead of blocking forever.
//   - RemoveHost drains already-enqueued tasks before the worker exits;
//     Crash discards them; Stop drains every host then waits.
//   - Restart revives a previously crashed host: a fresh worker (fresh
//     mailbox, fresh process) starts at the same slot, and subsequent
//     Do/Go calls to it succeed again. Restart of a host that was not
//     crashed panics (programming error); the crashed host's discarded
//     queue stays discarded.
type Transport interface {
	Do(h HostID, fn func()) error
	Go(h HostID, fn func())
	RunBatch(n int, origin func(i int) HostID, run func(i int))
	AddHost(h HostID)
	RemoveHost(h HostID)
	Crash(h HostID)
	Restart(h HostID)
	SetDoTimeout(d time.Duration)
	Stop()
	Stopped() bool
	// WorkersStarted reports how many per-host workers the transport has
	// actually launched. The in-process cluster starts workers lazily on
	// first dispatch, so the count is bounded by the hosts batch work has
	// touched; the wire transport spawns eagerly (a socket per host) and
	// reports its live node count.
	WorkersStarted() int
}

// counter is a cache-line-padded atomic counter. Per-host counters are
// bumped from many worker goroutines during batch execution; without
// padding, eight adjacent hosts share one cache line and concurrent
// queries false-share even when they touch entirely different hosts.
type counter struct {
	n atomic.Int64
	_ [56]byte
}

// Network models a failure-free peer-to-peer network in which any host can
// send a message to any other host. It records, per host: messages
// received, storage units held, and query touches (the congestion measure).
// All counters are atomic — and sharded per host with no global hot spot —
// so a Cluster may run many operations against a shared Network in
// parallel without the accounting itself becoming the bottleneck. Totals
// are summed over hosts on read.
//
// Hosts may join and leave after construction (AddHost, RemoveHost).
// Host IDs are never reused: a departed host keeps its counter slot — so
// traffic it received stays in the totals and an in-flight Op parked
// there can still account its remaining hops — but it is excluded from
// the live set that placement and origin selection draw from. Churn calls
// are NOT safe concurrently with in-flight operations; callers serialize
// them behind their own write lock (the public wrapper does).
type Network struct {
	hosts    int
	alive    []bool    // alive[i]: host i has joined and not left
	crashed  []bool    // crashed[i]: host i departed uncleanly (data lost)
	live     []HostID  // live host ids, ascending
	messages []counter // messages delivered to host i
	storage  []counter // storage units (items, nodes, links, pointers) at host i
	touches  []counter // operations that touched host i (congestion)
	ops      []counter // operations started at host i-1 (slot 0: started at None)

	// deliver, when set, is invoked once per charged message with the
	// destination host — the tap a wire transport uses to emit one real
	// frame per message the cost model charges, making on-the-wire
	// accounting bit-identical to the simulator's by construction. Set
	// it before any traffic flows; it is not synchronized against
	// in-flight operations.
	deliver func(HostID)

	// durable, when non-nil, models per-host write-ahead logging: every
	// storage-charging mutation appends one WAL record (a charged fsync
	// message to the owning host) and is mirrored into a durable image
	// that survives Crash, so the host can Restart with its shard intact.
	// Nil keeps the pre-durability behavior bit-identical.
	durable *durability

	// cost, when non-nil, is the per-link latency model: every charged
	// message additionally accumulates cost.Link(from, to) onto its
	// operation's critical path (max over mirrors inside a replication
	// fan-out). Nil is the default zero-latency model and keeps the
	// accounting hot path bit-identical to the pre-CostModel code — no
	// Link calls, no histogram writes. Install before any traffic flows
	// (read without synchronization on the hot path, like deliver).
	cost CostModel

	// latHist is the log-bucketed histogram of completed operations'
	// critical-path latencies (recorded at Op.Free, only under a non-nil
	// cost model). One fixed array of atomics: quantile reads allocate
	// nothing and Free never contends on a lock.
	latHist []atomic.Int64
	latOps  atomic.Int64
	latSum  atomic.Int64
	latMax  atomic.Int64

	// quantMu guards quantScratch, the reusable sort buffer behind
	// StorageQuantiles — at 10k hosts a fresh []int64 per call is pure
	// GC pressure for the scale bench, which polls quantiles per cell.
	quantMu      sync.Mutex
	quantScratch []int64
}

// durability is the per-host durable-storage model: a write-ahead log
// plus periodic checkpoints, both accounted as messages to the owning
// host (a WAL append is one fsync; a checkpoint is one more). Storage-
// charging paths mutate the per-host state through atomics: write
// striping lets several stripe writers charge storage at the same host
// concurrently, and two stripes' data routinely co-reside on one host.
// Slice growth (AddHost) and whole-state rewrites (Restart,
// ResumeDurability) still run only under the callers' churn lock, so
// only the per-element counters need to be atomic.
type durability struct {
	// every is the checkpoint cadence: after this many WAL records the
	// host snapshots its inventory and truncates the log.
	every int
	// paused suppresses WAL records and fsync charges while a structure
	// is bulk-constructed; the image still tracks storage exactly, and
	// ResumeDurability folds the built state into a fresh checkpoint.
	paused atomic.Bool
	// image[h] is host h's durable storage in units — what its disk
	// holds. It tracks the storage counter exactly while the host is
	// alive and keeps absorbing deltas while it is crashed (writes the
	// engines logically apply to the host's shard land on the image
	// only), so Restart can restore storage[h] = image[h] verbatim.
	// Accessed atomically.
	image []int64
	// records[h] counts WAL records appended since h's last checkpoint —
	// the replay length a Restart pays for. Accessed atomically.
	records []int64
	// checkpoints[h] counts checkpoints taken at h (diagnostics).
	// Accessed atomically.
	checkpoints []int64
}

// NewNetwork creates a network of h hosts. It panics if h <= 0, since a
// network without hosts cannot hold a structure.
func NewNetwork(h int) *Network {
	if h <= 0 {
		panic(fmt.Sprintf("sim: NewNetwork with non-positive host count %d", h))
	}
	n := &Network{
		hosts:    h,
		alive:    make([]bool, h),
		crashed:  make([]bool, h),
		live:     make([]HostID, h),
		messages: make([]counter, h),
		storage:  make([]counter, h),
		touches:  make([]counter, h),
		ops:      make([]counter, h+1),
	}
	for i := range n.alive {
		n.alive[i] = true
		n.live[i] = HostID(i)
	}
	return n
}

// Hosts returns the number of host slots ever created (live plus
// departed). Valid HostIDs are 0..Hosts()-1; use Alive to distinguish.
func (n *Network) Hosts() int { return n.hosts }

// LiveHosts returns the number of currently live hosts.
func (n *Network) LiveHosts() int { return len(n.live) }

// Alive reports whether host h has joined and not departed.
func (n *Network) Alive(h HostID) bool {
	return h >= 0 && int(h) < n.hosts && n.alive[h]
}

// LiveAt returns the i-th live host in ascending HostID order. Before any
// churn, LiveAt(i) == HostID(i), so modulo-style placement over
// LiveHosts() is backward compatible with a static network.
func (n *Network) LiveAt(i int) HostID { return n.live[i] }

// NextLive returns the first live host with id greater than h, wrapping
// to the smallest live id — the cyclic successor used for round-robin
// placement across churn.
func (n *Network) NextLive(h HostID) HostID {
	i := sort.Search(len(n.live), func(i int) bool { return n.live[i] > h })
	if i == len(n.live) {
		i = 0
	}
	return n.live[i]
}

// AddHost adds a fresh host to the network and returns its id. The new
// host starts with zero storage, traffic, and congestion; ids are never
// reused, so the id is always Hosts()-1 after the call. AddHost must not
// run concurrently with in-flight operations (see the Network doc).
func (n *Network) AddHost() HostID {
	h := HostID(n.hosts)
	n.hosts++
	n.alive = append(n.alive, true)
	n.crashed = append(n.crashed, false)
	n.live = append(n.live, h) // ids grow monotonically: ascending order kept
	n.messages = append(n.messages, counter{})
	n.storage = append(n.storage, counter{})
	n.touches = append(n.touches, counter{})
	n.ops = append(n.ops, counter{})
	if d := n.durable; d != nil {
		d.image = append(d.image, 0)
		d.records = append(d.records, 0)
		d.checkpoints = append(d.checkpoints, 1) // an empty host checkpoints trivially
	}
	return h
}

// RemoveHost marks host h as departed, excluding it from the live set.
// Its counter slot is retained: historical traffic stays in the totals
// and in-flight accounting against it remains valid. The caller is
// responsible for migrating the host's storage first (the structures'
// Rehome methods); RemoveHost panics when h is not live or is the last
// live host, and must not run concurrently with in-flight operations.
func (n *Network) RemoveHost(h HostID) {
	if !n.Alive(h) {
		panic(fmt.Sprintf("sim: RemoveHost(%d): not a live host", h))
	}
	if len(n.live) == 1 {
		panic("sim: RemoveHost would remove the last live host")
	}
	n.alive[h] = false
	i := sort.Search(len(n.live), func(i int) bool { return n.live[i] >= h })
	n.live = append(n.live[:i], n.live[i+1:]...)
}

// Crashed reports whether host h departed uncleanly via Crash.
func (n *Network) Crashed(h HostID) bool {
	return h >= 0 && int(h) < n.hosts && n.crashed[h]
}

// Crash marks host h as failed: an unclean departure. Unlike RemoveHost
// (cooperative leave, data migrated first), the host's in-memory data
// dies with it — its storage counter is zeroed, modelling the loss — and
// it is recorded in the crashed set that routing consults for failover.
// On a durable network the host's durable image survives the crash (a
// process dies, its disk does not) and Restart restores it. Message and
// congestion history is retained like any departed slot. Crash panics
// when h is not live or is the last live host, and must not run
// concurrently with in-flight operations (callers serialize churn, as
// with RemoveHost).
func (n *Network) Crash(h HostID) {
	if !n.Alive(h) {
		panic(fmt.Sprintf("sim: Crash(%d): not a live host", h))
	}
	if len(n.live) == 1 {
		panic("sim: Crash would kill the last live host")
	}
	n.alive[h] = false
	n.crashed[h] = true
	i := sort.Search(len(n.live), func(i int) bool { return n.live[i] >= h })
	n.live = append(n.live[:i], n.live[i+1:]...)
	n.storage[h].n.Store(0) // the host's share of every structure is gone
}

// AddStorage records delta storage units at host h. Structures call this
// when placing or removing nodes, links, and hyperlink pointers. On a
// durable network each call additionally appends one WAL record at h —
// a charged fsync message — and, every checkpoint-cadence records, one
// checkpoint write; while h is crashed the delta lands on its durable
// image only (the engines keep the host's logical shard moving with the
// cluster; the disk catches up, the live copy is restored by Restart).
//
// AddStorage is safe for concurrent callers (stripe writers on different
// key ranges may charge the same host simultaneously). The checkpoint
// trigger fires for exactly the caller whose WAL append brings the
// since-last-checkpoint count to the cadence — each atomic increment
// returns a distinct value, so exactly one writer per cadence window
// observes the boundary — which keeps the total charge sequence
// identical to a serial execution of the same appends.
func (n *Network) AddStorage(h HostID, delta int) {
	if d := n.durable; d != nil {
		atomic.AddInt64(&d.image[h], int64(delta))
		if n.crashed[h] {
			return // the live copy is down: the write exists only durably
		}
		if !d.paused.Load() {
			n.chargeLocal(h) // WAL append + fsync
			if r := atomic.AddInt64(&d.records[h], 1); r == int64(d.every) {
				atomic.AddInt64(&d.records[h], -int64(d.every))
				atomic.AddInt64(&d.checkpoints[h], 1)
				n.chargeLocal(h) // checkpoint snapshot + log truncation
			}
		}
	}
	n.storage[h].n.Add(int64(delta))
}

// Storage returns the storage units currently recorded at host h.
func (n *Network) Storage(h HostID) int64 { return n.storage[h].n.Load() }

// chargeLocal charges one message to host h outside any Op — host-local
// durability I/O (WAL fsyncs, checkpoint writes, replay reads) that the
// cost model bills like any other message but that belongs to no
// operation's hop count. The delivery tap fires as usual, so a wire
// transport emits a real frame for it.
func (n *Network) chargeLocal(h HostID) {
	n.messages[h].n.Add(1)
	if n.deliver != nil {
		n.deliver(h)
	}
}

// DefaultCheckpointEvery is the checkpoint cadence EnableDurability
// applies when the caller passes a non-positive value: one checkpoint
// per 64 WAL records keeps replay short without checkpointing so often
// the snapshot cost dominates the log it truncates.
const DefaultCheckpointEvery = 64

// EnableDurability turns on the per-host write-ahead-log model: from now
// on every AddStorage appends a charged WAL record at the owning host,
// checkpoints fire every `every` records (<= 0 selects
// DefaultCheckpointEvery), crashed hosts keep their durable image, and
// Restart revives them from it. The current storage of every host is
// snapshotted as its base checkpoint, so enabling is free and idempotent
// — a second call is a no-op, preserving the first cadence.
func (n *Network) EnableDurability(every int) {
	if n.durable != nil {
		return
	}
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	d := &durability{
		every:       every,
		image:       make([]int64, n.hosts),
		records:     make([]int64, n.hosts),
		checkpoints: make([]int64, n.hosts),
	}
	for i := 0; i < n.hosts; i++ {
		d.image[i] = n.storage[i].n.Load()
		d.checkpoints[i] = 1 // the base image is checkpoint zero's snapshot
	}
	n.durable = d
}

// Durable reports whether the per-host WAL model is enabled.
func (n *Network) Durable() bool { return n.durable != nil }

// PauseDurability suspends WAL-record accounting (no records, no fsync
// charges) while a structure is bulk-constructed; the durable image
// still tracks storage exactly. No-op on a non-durable network. Pair
// with ResumeDurability.
func (n *Network) PauseDurability() {
	if n.durable != nil {
		n.durable.paused.Store(true)
	}
}

// ResumeDurability ends a PauseDurability window. Hosts that logged WAL
// records before the pause fold them into a fresh checkpoint: the bulk-
// built state is snapshotted wholesale (part of construction, which
// charges through its own accounting), so replay after a later crash
// starts from the built image rather than re-walking pre-build records.
func (n *Network) ResumeDurability() {
	d := n.durable
	if d == nil {
		return
	}
	d.paused.Store(false)
	for i := range d.records {
		if atomic.LoadInt64(&d.records[i]) != 0 {
			atomic.StoreInt64(&d.records[i], 0)
			atomic.AddInt64(&d.checkpoints[i], 1)
		}
	}
}

// WALRecords returns the WAL records host h has appended since its last
// checkpoint — the replay length a Restart would pay. Zero on a
// non-durable network.
func (n *Network) WALRecords(h HostID) int64 {
	if n.durable == nil {
		return 0
	}
	return atomic.LoadInt64(&n.durable.records[h])
}

// Checkpoints returns the checkpoints taken at host h (the base image
// counts as one). Zero on a non-durable network.
func (n *Network) Checkpoints(h HostID) int64 {
	if n.durable == nil {
		return 0
	}
	return atomic.LoadInt64(&n.durable.checkpoints[h])
}

// DurableImage returns host h's durable storage image in units — what
// its disk holds, including deltas applied while it was crashed. Zero on
// a non-durable network.
func (n *Network) DurableImage(h HostID) int64 {
	if n.durable == nil {
		return 0
	}
	return atomic.LoadInt64(&n.durable.image[h])
}

// Restart revives crashed durable host h: it rejoins the live set with
// its storage restored to the durable image, paying one charged message
// for the checkpoint load plus one per WAL record replayed since that
// checkpoint. The recovered state is immediately re-checkpointed (log
// truncation is part of recovery), so a second crash right after replays
// nothing. Returns the replay message count. Restart panics on a
// non-durable network or a host that has not crashed, and must not run
// concurrently with in-flight operations (callers serialize churn).
func (n *Network) Restart(h HostID) int {
	d := n.durable
	if d == nil {
		panic(fmt.Sprintf("sim: Restart(%d) on a non-durable network", h))
	}
	if !n.Crashed(h) {
		panic(fmt.Sprintf("sim: Restart(%d): host has not crashed", h))
	}
	n.crashed[h] = false
	n.alive[h] = true
	i := sort.Search(len(n.live), func(i int) bool { return n.live[i] >= h })
	n.live = append(n.live, 0)
	copy(n.live[i+1:], n.live[i:])
	n.live[i] = h
	n.storage[h].n.Store(atomic.LoadInt64(&d.image[h]))
	replay := 1 + int(atomic.LoadInt64(&d.records[h]))
	for k := 0; k < replay; k++ {
		n.chargeLocal(h)
	}
	atomic.StoreInt64(&d.records[h], 0)
	atomic.AddInt64(&d.checkpoints[h], 1)
	return replay
}

// SetDeliver installs fn as the message-delivery tap: it is called once
// per charged message with the destination host, synchronously, from the
// goroutine running the operation. The wire transport uses it to send a
// real length-prefixed frame to the destination host's process for every
// message the cost model charges. Install before any traffic flows (the
// field is read without synchronization on the hot path); pass nil to
// uninstall.
func (n *Network) SetDeliver(fn func(HostID)) { n.deliver = fn }

// SetCostModel installs m as the per-link latency model: every message
// charged from now on accumulates m.Link(from, to) onto its operation's
// critical-path latency, and completed operations' latencies feed the
// Snapshot quantiles. The hop and message counters are unaffected — the
// model adds a measure, it never changes one. Install before any traffic
// flows (the field is read without synchronization on the hot path);
// pass nil to restore the default zero-latency accounting. Idempotent
// under the same model; installing a different model mid-run mixes
// regimes in the histogram, so don't.
func (n *Network) SetCostModel(m CostModel) {
	n.cost = m
	if m != nil && n.latHist == nil {
		n.latHist = make([]atomic.Int64, latBuckets)
	}
}

// CostModel returns the installed latency model, or nil for the default
// zero-latency accounting.
func (n *Network) CostModel() CostModel { return n.cost }

// recordLatency folds one completed operation's critical-path latency
// into the histogram.
func (n *Network) recordLatency(lat int64) {
	n.latHist[latBucket(lat)].Add(1)
	n.latOps.Add(1)
	n.latSum.Add(lat)
	for {
		cur := n.latMax.Load()
		if lat <= cur || n.latMax.CompareAndSwap(cur, lat) {
			return
		}
	}
}

// LatencyQuantiles returns the q-quantiles (e.g. 0.5, 0.99) of completed
// operations' critical-path latencies under the installed cost model, in
// model units, within 12.5% of exact (the histogram is log-bucketed).
// All zeros when no model is installed or no operation has completed.
func (n *Network) LatencyQuantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	total := n.latOps.Load()
	if n.latHist == nil || total == 0 {
		return out
	}
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := int64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var seen int64
		for b := range n.latHist {
			seen += n.latHist[b].Load()
			if seen >= rank {
				out[i] = latBucketValue(b)
				break
			}
		}
	}
	return out
}

// Messages returns the messages delivered to host h since creation.
func (n *Network) Messages(h HostID) int64 { return n.messages[h].n.Load() }

// PerHostMessages returns the per-host delivered-message counters as a
// slice indexed by HostID — the vector the sim-vs-wire parity check
// diffs bit-for-bit.
func (n *Network) PerHostMessages() []int64 {
	return n.PerHostMessagesInto(nil)
}

// PerHostMessagesInto is PerHostMessages with a caller-provided buffer:
// buf is resized (reallocating only when its capacity is short) and
// returned, so a poller at 10k hosts reuses one slice instead of
// allocating per sample.
func (n *Network) PerHostMessagesInto(buf []int64) []int64 {
	if cap(buf) < n.hosts {
		buf = make([]int64, n.hosts)
	}
	buf = buf[:n.hosts]
	for i := range buf {
		buf[i] = n.messages[i].n.Load()
	}
	return buf
}

// TotalMessages returns the number of messages delivered since creation.
func (n *Network) TotalMessages() int64 {
	var sum int64
	for i := range n.messages {
		sum += n.messages[i].n.Load()
	}
	return sum
}

// TotalOps returns the number of operations started since creation.
func (n *Network) TotalOps() int64 {
	var sum int64
	for i := range n.ops {
		sum += n.ops[i].n.Load()
	}
	return sum
}

// Op is the accounting context for a single logical operation (one query or
// one update). An operation has a current host; moving to a different host
// costs one message. Op is not safe for concurrent use; each in-flight
// operation owns its Op.
//
// Alongside the hop count, an Op accumulates critical-path latency under
// the network's CostModel: sequential Visit/Send charges add the sampled
// link cost, and charges inside a FanoutBegin/FanoutEnd window (a
// replicated write-through, where the mirrors are contacted in parallel)
// contribute only the maximum link cost of the window. With no model
// installed the latency stays zero and costs nothing to not-compute.
type Op struct {
	net  *Network
	cur  HostID
	hops int
	// lat is the critical-path latency accumulated so far (model units).
	lat int64
	// fanDepth > 0 means charges are inside a replication fan-out and
	// fold into fanMax instead of adding to lat; nested windows merge
	// into the outermost (one parallel wave).
	fanDepth int
	fanMax   int64
}

// opPool recycles Ops so the query and update hot paths allocate nothing
// per operation. Ops returned via Free are reused by any Network; Ops that
// are never freed are simply collected, so callers outside the hot paths
// need not change.
var opPool = sync.Pool{New: func() any { return new(Op) }}

// NewOp starts an operation at host start (use None when the operation has
// not yet chosen an entry host; the first Visit is then free, modelling the
// originating host beginning at its own root). The Op comes from a pool;
// call Free when the operation completes to recycle it.
func (n *Network) NewOp(start HostID) *Op {
	n.ops[int(start)+1].n.Add(1)
	op := opPool.Get().(*Op)
	op.net, op.cur, op.hops = n, start, 0
	op.lat, op.fanDepth, op.fanMax = 0, 0, 0
	if start != None {
		n.touches[start].n.Add(1)
	}
	return op
}

// Free returns the Op to the pool. The caller must not use the Op after
// Free; values needed from it (Hops, Current, Latency) must be read
// first. Free is optional — an unfreed Op is garbage-collected like any
// value — but the hot paths free every Op so steady-state operation
// allocates nothing. Under a cost model, Free also records the
// operation's critical-path latency into the network's histogram, so the
// Snapshot quantiles cover every completed operation (queries, updates,
// and churn alike).
func (o *Op) Free() {
	if o.net.cost != nil {
		o.net.recordLatency(o.lat)
	}
	o.net = nil
	opPool.Put(o)
}

// Visit moves the operation to host h. If h differs from the current host,
// one message is charged and congestion at h is bumped. The very first
// placement of an operation that started at None is free: it models the
// originating host beginning the search at its own root.
func (o *Op) Visit(h HostID) {
	if h == None || h == o.cur {
		return
	}
	if o.cur == None {
		o.cur = h
		o.net.touches[h].n.Add(1)
		return
	}
	o.charge(h)
	o.cur = h
}

func (o *Op) charge(h HostID) {
	o.hops++
	o.net.messages[h].n.Add(1)
	o.net.touches[h].n.Add(1)
	if m := o.net.cost; m != nil {
		// o.cur is still the sending host here: Visit updates cur only
		// after charging, and Send never moves the op at all.
		c := m.Link(o.cur, h)
		if o.fanDepth > 0 {
			if c > o.fanMax {
				o.fanMax = c
			}
		} else {
			o.lat += c
		}
	}
	if o.net.deliver != nil {
		o.net.deliver(h)
	}
}

// Send charges one explicit message to host h without moving the operation
// there. It models auxiliary round trips (e.g. a remote host returning
// hyperlinks rather than forwarding the query).
func (o *Op) Send(h HostID) {
	o.charge(h)
}

// FanoutBegin opens a replication fan-out window: until the matching
// FanoutEnd, charged messages contribute only the maximum sampled link
// cost to the operation's latency — the mirrors of a write-through are
// contacted in parallel, so the critical path pays for the slowest one,
// not the sum. Hop and message counters are unaffected (every send is
// still charged in full). Windows may nest; nested windows merge into
// the outermost, modeling one parallel wave.
func (o *Op) FanoutBegin() { o.fanDepth++ }

// FanoutEnd closes the window opened by the matching FanoutBegin, adding
// the window's maximum link cost to the critical path.
func (o *Op) FanoutEnd() {
	o.fanDepth--
	if o.fanDepth == 0 {
		o.lat += o.fanMax
		o.fanMax = 0
	}
}

// Hops returns the number of messages this operation has cost so far.
func (o *Op) Hops() int { return o.hops }

// Latency returns the critical-path latency this operation has
// accumulated under the network's CostModel, in model units. Zero when
// no model is installed.
func (o *Op) Latency() int64 { return o.lat }

// Current returns the host the operation is currently executing at.
func (o *Op) Current() HostID { return o.cur }

// Stats is a cross-host summary of a Network's counters. Hosts, maxima,
// and means cover the live hosts; the totals additionally include traffic
// that was delivered to hosts that have since departed.
type Stats struct {
	Hosts          int
	TotalMessages  int64
	TotalOps       int64
	MaxStorage     int64
	MeanStorage    float64
	MaxCongestion  int64
	MeanCongestion float64
	MaxMessages    int64
	MeanMessages   float64

	// Latency summary of completed operations under the installed
	// CostModel, in model units. All zeros when no model is installed
	// (the default zero-latency accounting). Quantiles are log-bucketed:
	// within 12.5% of exact. LatencyOps counts the operations recorded —
	// every Op freed since creation (or the last ResetTraffic), churn
	// included.
	LatencyOps  int64
	LatencyMean float64
	LatencyP50  int64
	LatencyP99  int64
	LatencyMax  int64
}

// Snapshot summarizes the per-host counters.
func (n *Network) Snapshot() Stats {
	s := Stats{
		Hosts:    len(n.live),
		TotalOps: n.TotalOps(),
	}
	var sumSt, sumTo, sumMs int64 // live hosts only: the load profile
	var allMs int64               // every slot: the traffic total
	for i := 0; i < n.hosts; i++ {
		ms := n.messages[i].n.Load()
		allMs += ms
		if !n.alive[i] {
			continue // departed hosts keep history but drop out of the load profile
		}
		st := n.storage[i].n.Load()
		to := n.touches[i].n.Load()
		sumSt += st
		sumTo += to
		sumMs += ms
		if st > s.MaxStorage {
			s.MaxStorage = st
		}
		if to > s.MaxCongestion {
			s.MaxCongestion = to
		}
		if ms > s.MaxMessages {
			s.MaxMessages = ms
		}
	}
	h := float64(len(n.live))
	s.TotalMessages = allMs
	s.MeanStorage = float64(sumSt) / h
	s.MeanCongestion = float64(sumTo) / h
	s.MeanMessages = float64(sumMs) / h
	if ops := n.latOps.Load(); ops > 0 {
		s.LatencyOps = ops
		s.LatencyMean = float64(n.latSum.Load()) / float64(ops)
		q := n.LatencyQuantiles(0.5, 0.99)
		s.LatencyP50, s.LatencyP99 = q[0], q[1]
		s.LatencyMax = n.latMax.Load()
	}
	return s
}

// StorageQuantiles returns the q-quantiles (e.g. 0.5, 0.99, 1.0) of the
// per-live-host storage distribution, in the order requested. The sort
// scratch is reused across calls (only the len(qs)-sized answer is
// allocated), so polling quantiles at 10k hosts does not shed a fresh
// 80KB slice per call; concurrent callers serialize on the scratch.
func (n *Network) StorageQuantiles(qs ...float64) []int64 {
	n.quantMu.Lock()
	vals := n.quantScratch[:0]
	for _, h := range n.live {
		vals = append(vals, n.storage[h].n.Load())
	}
	n.quantScratch = vals
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = vals[idx]
	}
	n.quantMu.Unlock()
	return out
}

// ResetTraffic zeroes the message and congestion counters — and the
// latency histogram, when a cost model is installed — while preserving
// storage, so an experiment can measure query traffic separately from
// construction traffic.
func (n *Network) ResetTraffic() {
	for i := 0; i < n.hosts; i++ {
		n.messages[i].n.Store(0)
		n.touches[i].n.Store(0)
	}
	for i := range n.ops {
		n.ops[i].n.Store(0)
	}
	for i := range n.latHist {
		n.latHist[i].Store(0)
	}
	n.latOps.Store(0)
	n.latSum.Store(0)
	n.latMax.Store(0)
}

// Cluster executes work on per-host goroutines. Each host runs a single
// worker goroutine draining an unbounded mailbox; Do(h, fn) runs fn on
// host h's goroutine and waits for it, so all state owned by a host is
// accessed from exactly one goroutine at a time — the actor discipline of
// a message-passing node. Go(h, fn) is the asynchronous variant: it
// enqueues fn and returns immediately (send-and-continue message passing),
// which is what the batch query engine uses to keep every host busy.
type Cluster struct {
	net     *Network
	mailMu  sync.RWMutex // guards the mail slice header across host churn
	mail    []*mailbox
	wg      sync.WaitGroup
	stopped atomic.Bool
	// doTimeout bounds every Do rendezvous (nanoseconds; 0 = wait
	// forever). See SetDoTimeout.
	doTimeout atomic.Int64
	// running maps a worker goroutine's id to the host it executes for,
	// so Do can detect same-host re-entry and run inline instead of
	// deadlocking on a message to itself.
	running sync.Map // uint64 (goroutine id) -> HostID
}

type task struct {
	fn   func()
	done chan error // nil for asynchronous (send-and-continue) tasks; buffered(1)
}

// mailbox is an unbounded FIFO task queue with a single consumer. An
// unbounded queue models a node's inbound message buffer: senders never
// block, exactly as a send-and-continue message leaves the sender free.
type mailbox struct {
	mu      sync.Mutex
	queue   []task
	wake    chan struct{} // buffered(1): signals the worker that work exists
	closed  bool
	dropped bool // closed by a crash: queued work was discarded, not drained
	// started flips true when the worker goroutine is launched. Workers
	// are lazy: a 10k-host cluster whose batch only ever touches a few
	// hundred origin hosts runs a few hundred goroutines, not 10k idle
	// ones. Checked lock-free on the send fast path.
	started atomic.Bool
}

// put enqueues t, reporting false when the mailbox is closed.
func (m *mailbox) put(t task) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	m.queue = append(m.queue, t)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return true
}

// take pops the next task, blocking until one arrives. It returns ok=false
// once the mailbox is closed and fully drained.
func (m *mailbox) take() (task, bool) {
	for {
		m.mu.Lock()
		if len(m.queue) > 0 {
			t := m.queue[0]
			m.queue[0] = task{}
			m.queue = m.queue[1:]
			m.mu.Unlock()
			return t, true
		}
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return task{}, false
		}
		<-m.wake
	}
}

// close marks the mailbox closed and wakes the worker; queued tasks still
// drain before the worker exits.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// drop closes the mailbox the unclean way: queued tasks are discarded —
// a crashed node never processes its inbound buffer — and every pending
// synchronous rendezvous is failed with err so blocked Do callers fail
// fast instead of hanging on a dead host.
func (m *mailbox) drop(err error) {
	m.mu.Lock()
	q := m.queue
	m.queue = nil
	m.closed, m.dropped = true, true
	m.mu.Unlock()
	for _, t := range q {
		if t.done != nil {
			t.done <- err
		}
	}
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// isDropped reports whether the mailbox was closed by a crash.
func (m *mailbox) isDropped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). Transport implementations use it to
// detect whether Do is already executing on the target host's worker
// goroutine, so same-host re-entry can run inline instead of
// deadlocking on a message to itself.
func Goid() uint64 { return goid() }

// goid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). It is used only to detect whether Do is
// already executing on the target host's worker goroutine.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, ch := range buf[len("goroutine "):n] {
		if ch < '0' || ch > '9' {
			break
		}
		id = id*10 + uint64(ch-'0')
	}
	return id
}

// Cluster is the in-process Transport implementation.
var _ Transport = (*Cluster)(nil)

// NewCluster creates a cluster over net's hosts. Worker goroutines are
// lazy: each host slot gets a mailbox up front, but its worker starts on
// the first task sent to it, so a 10k-host cluster costs 10k mailbox
// structs — not 10k goroutines — until traffic actually reaches a host.
// Call Stop when done; the Cluster owns one goroutine per host that ever
// received work until then.
func NewCluster(net *Network) *Cluster {
	c := &Cluster{
		net:  net,
		mail: make([]*mailbox, 0, net.Hosts()),
	}
	for i := 0; i < net.Hosts(); i++ {
		c.spawn(HostID(i))
		// A slot that departed before the pool started gets its mailbox
		// closed immediately, so sends to it fail exactly as they would
		// had the pool been running at departure time: dropped (typed
		// error) for crashed slots, closed (panic) for cooperative leaves.
		if !net.Alive(HostID(i)) {
			if net.Crashed(HostID(i)) {
				c.mail[i].drop(&HostDownError{Host: HostID(i)})
			} else {
				c.mail[i].close()
			}
		}
	}
	return c
}

// spawn appends a mailbox for host h; the worker goroutine starts lazily
// on first send. The caller must hold mailMu (or be the only goroutine
// with access, as in NewCluster).
func (c *Cluster) spawn(h HostID) {
	m := &mailbox{wake: make(chan struct{}, 1)}
	c.mail = append(c.mail, m)
}

// start runs a worker goroutine draining m as host h's actor. The caller
// must hold mailMu (read or write): Stop takes the write lock before
// snapshotting the mailboxes, so every worker started here is wg.Added
// before Stop can Wait.
func (c *Cluster) start(h HostID, m *mailbox) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		g := goid()
		c.running.Store(g, h)
		defer c.running.Delete(g)
		for {
			t, ok := m.take()
			if !ok {
				return
			}
			t.fn()
			if t.done != nil {
				t.done <- nil
			}
		}
	}()
}

// WorkersStarted reports how many worker goroutines have been launched —
// the observable half of the lazy-spawn contract (a fresh 10k-host
// cluster has zero; sending to k distinct hosts starts exactly k).
func (c *Cluster) WorkersStarted() int {
	c.mailMu.RLock()
	defer c.mailMu.RUnlock()
	started := 0
	for _, m := range c.mail {
		if m.started.Load() {
			started++
		}
	}
	return started
}

// AddHost installs mailboxes for every network host slot up to and
// including h — pairing Network.AddHost with the mailbox spin-up of the
// new host's actor (the worker goroutine itself starts lazily, on the
// host's first task). It must not be called after Stop, and like Network
// churn it must be serialized against in-flight batches by the caller.
func (c *Cluster) AddHost(h HostID) {
	if c.stopped.Load() {
		panic("sim: Cluster.AddHost after Stop")
	}
	c.mailMu.Lock()
	defer c.mailMu.Unlock()
	for HostID(len(c.mail)) <= h {
		c.spawn(HostID(len(c.mail)))
	}
}

// RemoveHost drains and closes host h's mailbox: tasks already enqueued
// still run, then the worker goroutine exits. Further sends to h panic,
// matching the network-level rule that departed hosts receive no new
// work. RemoveHost is idempotent and must be serialized against
// in-flight batches by the caller.
func (c *Cluster) RemoveHost(h HostID) {
	c.mailMu.RLock()
	m := c.mail[h]
	c.mailMu.RUnlock()
	m.close()
}

// Crash tears host h's actor down the unclean way: the mailbox is
// dropped — queued send-and-continue tasks are discarded, and every
// pending Do rendezvous fails with a HostDownError — and the worker
// goroutine exits without draining. Further Do calls to h return the
// same typed error. Like RemoveHost, Crash must be serialized against
// in-flight batches by the caller (the public wrapper holds its write
// lock across the crash).
func (c *Cluster) Crash(h HostID) {
	c.mailMu.RLock()
	m := c.mail[h]
	c.mailMu.RUnlock()
	m.drop(&HostDownError{Host: h})
}

// Restart replaces crashed host h's dropped mailbox with a fresh one and
// starts a new worker goroutine for it — the actor-model analogue of a
// process restart. Tasks discarded by the crash stay discarded; Do/Go to
// h succeed again once Restart returns. Restart panics after Stop or
// when h's mailbox was not dropped by a crash, and like all churn it
// must be serialized against in-flight batches by the caller.
func (c *Cluster) Restart(h HostID) {
	if c.stopped.Load() {
		panic("sim: Cluster.Restart after Stop")
	}
	c.mailMu.Lock()
	defer c.mailMu.Unlock()
	if !c.mail[h].isDropped() {
		panic(fmt.Sprintf("sim: Cluster.Restart(%d): host has not crashed", h))
	}
	// The fresh mailbox starts its worker lazily, like any other: the
	// restarted process spins up on its first inbound message.
	c.mail[h] = &mailbox{wake: make(chan struct{}, 1)}
}

// box returns host h's mailbox under the churn lock.
func (c *Cluster) box(h HostID) *mailbox {
	c.mailMu.RLock()
	m := c.mail[h]
	c.mailMu.RUnlock()
	return m
}

// boxStart returns host h's mailbox, lazily launching its worker
// goroutine on the first send. The start happens while still holding the
// churn read lock, so it strictly precedes any Stop (which takes the
// write lock before waiting): a worker is never wg.Added concurrently
// with the final Wait. Closed mailboxes never start a worker — there is
// nothing to drain that put would still accept.
func (c *Cluster) boxStart(h HostID) *mailbox {
	c.mailMu.RLock()
	m := c.mail[h]
	if !m.started.Load() && !c.stopped.Load() {
		m.mu.Lock()
		if !m.started.Load() && !m.closed {
			m.started.Store(true)
			c.start(h, m)
		}
		m.mu.Unlock()
	}
	c.mailMu.RUnlock()
	return m
}

// Stopped reports whether Stop has been called. Callers that manage
// worker lifecycles across host churn use it to skip mailbox work on a
// stopped cluster instead of panicking.
func (c *Cluster) Stopped() bool { return c.stopped.Load() }

// onHost reports whether the calling goroutine is host h's worker.
func (c *Cluster) onHost(h HostID) bool {
	g, ok := c.running.Load(goid())
	return ok && g.(HostID) == h
}

// Do runs fn on host h's goroutine and blocks until it completes,
// returning nil. It must not be called after Stop. When the caller is
// already executing on host h's worker goroutine, fn runs inline — a
// node processing one of its own messages — so same-host re-entry cannot
// deadlock. Cross-host re-entry cycles (host A waiting on B while B
// waits on A) remain the caller's responsibility, as in any synchronous
// message exchange.
//
// When host h has crashed — before the call, or while the task sits in
// h's mailbox — Do fails fast with a HostDownError instead of running
// fn: the in-flight operation's answer died with the host. Sends to
// cooperatively departed or stopped hosts remain panics (a programming
// error, not a failure to tolerate).
func (c *Cluster) Do(h HostID, fn func()) error {
	if c.stopped.Load() {
		panic("sim: Cluster.Do after Stop")
	}
	if c.onHost(h) {
		fn()
		return nil
	}
	t := task{fn: fn, done: make(chan error, 1)}
	box := c.boxStart(h)
	if !box.put(t) {
		if box.isDropped() {
			return &HostDownError{Host: h}
		}
		panic(fmt.Sprintf("sim: Cluster.Do to stopped or departed host %d", h))
	}
	d := time.Duration(c.doTimeout.Load())
	if d <= 0 {
		return <-t.done
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-t.done:
		return err
	case <-timer.C:
		// The rendezvous is abandoned, not cancelled: the task stays in
		// the mailbox and may still run if the host unwedges (its done
		// send lands in the buffered channel and is collected).
		return &TimeoutError{Host: h, After: d}
	}
}

// SetDoTimeout bounds every subsequent Do rendezvous to d: a Do whose
// task has not completed within d returns a TimeoutError (matching
// ErrTimeout via errors.Is) instead of blocking forever on a wedged
// host. Zero or negative restores the default of waiting indefinitely.
// The task itself is not cancelled — it may still run later; only the
// caller's wait is bounded, the fail-fast a real client needs when a
// remote host stalls mid-request.
func (c *Cluster) SetDoTimeout(d time.Duration) { c.doTimeout.Store(int64(d)) }

// Go enqueues fn on host h's goroutine and returns immediately without
// waiting for it to run — send-and-continue message passing. Tasks from
// one sender to one host run in FIFO order; completion is the caller's
// concern (pair with a sync.WaitGroup, as RunBatch does). Go must not be
// called after Stop, but tasks already enqueued when Stop is called are
// drained before the workers exit.
func (c *Cluster) Go(h HostID, fn func()) {
	if c.stopped.Load() {
		panic("sim: Cluster.Go after Stop")
	}
	box := c.boxStart(h)
	if !box.put(task{fn: fn}) {
		if box.isDropped() {
			// A send-and-continue task has no rendezvous to fail, so a
			// fire-and-forget send to a crashed host is a caller bug:
			// batch dispatch validates origin liveness under the lock
			// that serializes crashes.
			panic(fmt.Sprintf("sim: Cluster.Go to crashed host %d", h))
		}
		panic(fmt.Sprintf("sim: Cluster.Go to stopped or departed host %d", h))
	}
}

// RunBatch executes n operations concurrently across the cluster: the
// i-th operation runs on host origin(i)'s goroutine, and RunBatch returns
// once every operation has completed. Operations sharing an origin host
// serialize in index order; operations on distinct hosts run in parallel.
//
// Operations are grouped by origin and delivered as one message per host
// rather than one per operation, so the dispatch cost is O(distinct
// origins) and the per-operation overhead is a plain function call on the
// worker — without this, mailbox and scheduler churn swamps the
// microsecond-scale routing work and the batch stops scaling with
// GOMAXPROCS.
func (c *Cluster) RunBatch(n int, origin func(i int) HostID, run func(i int)) {
	// The per-host group table is pooled: at 10k hosts it is a 240KB
	// slice header array, and read batches recreate it per call — without
	// reuse the scale bench spends its time re-zeroing group tables.
	var groups [][]int
	if g, ok := groupPool.Get().(*[][]int); ok && cap(*g) >= c.net.Hosts() {
		groups = (*g)[:c.net.Hosts()]
	} else {
		groups = make([][]int, c.net.Hosts())
	}
	touched := make([]HostID, 0, 64)
	for i := 0; i < n; i++ {
		h := origin(i)
		if groups[h] == nil {
			touched = append(touched, h)
		}
		groups[h] = append(groups[h], i)
	}
	var wg sync.WaitGroup
	for _, h := range touched {
		idxs := groups[h]
		wg.Add(1)
		c.Go(h, func() {
			defer wg.Done()
			for _, i := range idxs {
				run(i)
			}
		})
	}
	wg.Wait()
	for _, h := range touched {
		groups[h] = nil
	}
	groupPool.Put(&groups)
}

// groupPool recycles RunBatch's per-host group tables. Entries are
// cleared (nil per touched host, preserving nothing) before being
// returned, so a pooled table is indistinguishable from a fresh one.
var groupPool = sync.Pool{New: func() any { return new([][]int) }}

// Stop shuts down all host goroutines, draining already-enqueued tasks,
// and waits for the workers to exit. The snapshot takes the write lock:
// it orders Stop after every in-flight lazy worker start (boxStart holds
// the read lock across wg.Add), so the final Wait races no Add.
func (c *Cluster) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	c.mailMu.Lock()
	mail := c.mail
	c.mailMu.Unlock()
	for _, m := range mail {
		m.close()
	}
	c.wg.Wait()
}
