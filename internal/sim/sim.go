// Package sim provides the distributed-systems substrate on which every
// structure in this repository is built and measured.
//
// The skip-webs paper (Arge, Eppstein, Goodrich, PODC 2005) evaluates
// distributed data structures by four cost measures over a network of H
// hosts: per-host memory M, per-host congestion C(n), query message count
// Q(n), and update message count U(n). None of those are wall-clock
// quantities, so the substrate is an accounting simulator: hosts are
// identities, and every cross-host pointer dereference performed by a
// structure is recorded as one message. Same-host pointer follows are free,
// exactly as in the paper's model (Section 1.1).
//
// Two execution modes are provided:
//
//   - Network alone: synchronous, deterministic accounting. All experiment
//     numbers in EXPERIMENTS.md come from this mode.
//   - Cluster: runs one goroutine per host and executes work on the owning
//     host's goroutine, serializing per-host state access the way a real
//     message-passing node would. Integration tests use it (with -race) to
//     demonstrate the structures operate correctly as concurrent
//     message-passing code.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// HostID identifies a host in the network. Hosts are numbered 0..H-1.
type HostID int32

// None is the sentinel for "no host"; operations that have not yet visited
// any host start there.
const None HostID = -1

// Network models a failure-free peer-to-peer network in which any host can
// send a message to any other host. It records, per host: messages
// received, storage units held, and query touches (the congestion measure).
// All counters are atomic so a Cluster may share a Network across
// goroutines.
type Network struct {
	hosts    int
	messages []atomic.Int64 // messages delivered to host i
	storage  []atomic.Int64 // storage units (items, nodes, links, pointers) at host i
	touches  []atomic.Int64 // operations that touched host i (congestion)

	totalMessages atomic.Int64
	totalOps      atomic.Int64
}

// NewNetwork creates a network of h hosts. It panics if h <= 0, since a
// network without hosts cannot hold a structure.
func NewNetwork(h int) *Network {
	if h <= 0 {
		panic(fmt.Sprintf("sim: NewNetwork with non-positive host count %d", h))
	}
	return &Network{
		hosts:    h,
		messages: make([]atomic.Int64, h),
		storage:  make([]atomic.Int64, h),
		touches:  make([]atomic.Int64, h),
	}
}

// Hosts returns the number of hosts H.
func (n *Network) Hosts() int { return n.hosts }

// AddStorage records delta storage units at host h. Structures call this
// when placing or removing nodes, links, and hyperlink pointers.
func (n *Network) AddStorage(h HostID, delta int) {
	n.storage[h].Add(int64(delta))
}

// Storage returns the storage units currently recorded at host h.
func (n *Network) Storage(h HostID) int64 { return n.storage[h].Load() }

// TotalMessages returns the number of messages delivered since creation.
func (n *Network) TotalMessages() int64 { return n.totalMessages.Load() }

// TotalOps returns the number of operations started since creation.
func (n *Network) TotalOps() int64 { return n.totalOps.Load() }

// Op is the accounting context for a single logical operation (one query or
// one update). An operation has a current host; moving to a different host
// costs one message. Op is not safe for concurrent use; each in-flight
// operation owns its Op.
type Op struct {
	net  *Network
	cur  HostID
	hops int
}

// NewOp starts an operation at host start (use None when the operation has
// not yet chosen an entry host; the first Visit is then free, modelling the
// originating host beginning at its own root).
func (n *Network) NewOp(start HostID) *Op {
	n.totalOps.Add(1)
	op := &Op{net: n, cur: start}
	if start != None {
		n.touches[start].Add(1)
	}
	return op
}

// Visit moves the operation to host h. If h differs from the current host,
// one message is charged and congestion at h is bumped. The very first
// placement of an operation that started at None is free: it models the
// originating host beginning the search at its own root.
func (o *Op) Visit(h HostID) {
	if h == None || h == o.cur {
		return
	}
	if o.cur == None {
		o.cur = h
		o.net.touches[h].Add(1)
		return
	}
	o.charge(h)
	o.cur = h
}

func (o *Op) charge(h HostID) {
	o.hops++
	o.net.totalMessages.Add(1)
	o.net.messages[h].Add(1)
	o.net.touches[h].Add(1)
}

// Send charges one explicit message to host h without moving the operation
// there. It models auxiliary round trips (e.g. a remote host returning
// hyperlinks rather than forwarding the query).
func (o *Op) Send(h HostID) {
	o.net.totalMessages.Add(1)
	o.net.messages[h].Add(1)
	o.net.touches[h].Add(1)
	o.hops++
}

// Hops returns the number of messages this operation has cost so far.
func (o *Op) Hops() int { return o.hops }

// Current returns the host the operation is currently executing at.
func (o *Op) Current() HostID { return o.cur }

// Stats is a cross-host summary of a Network's counters.
type Stats struct {
	Hosts          int
	TotalMessages  int64
	TotalOps       int64
	MaxStorage     int64
	MeanStorage    float64
	MaxCongestion  int64
	MeanCongestion float64
	MaxMessages    int64
	MeanMessages   float64
}

// Snapshot summarizes the per-host counters.
func (n *Network) Snapshot() Stats {
	s := Stats{
		Hosts:         n.hosts,
		TotalMessages: n.totalMessages.Load(),
		TotalOps:      n.totalOps.Load(),
	}
	var sumSt, sumTo, sumMs int64
	for i := 0; i < n.hosts; i++ {
		st := n.storage[i].Load()
		to := n.touches[i].Load()
		ms := n.messages[i].Load()
		sumSt += st
		sumTo += to
		sumMs += ms
		if st > s.MaxStorage {
			s.MaxStorage = st
		}
		if to > s.MaxCongestion {
			s.MaxCongestion = to
		}
		if ms > s.MaxMessages {
			s.MaxMessages = ms
		}
	}
	h := float64(n.hosts)
	s.MeanStorage = float64(sumSt) / h
	s.MeanCongestion = float64(sumTo) / h
	s.MeanMessages = float64(sumMs) / h
	return s
}

// StorageQuantiles returns the q-quantiles (e.g. 0.5, 0.99, 1.0) of the
// per-host storage distribution, in the order requested.
func (n *Network) StorageQuantiles(qs ...float64) []int64 {
	vals := make([]int64, n.hosts)
	for i := range vals {
		vals[i] = n.storage[i].Load()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(math.Ceil(q*float64(n.hosts))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = vals[idx]
	}
	return out
}

// ResetTraffic zeroes the message and congestion counters while preserving
// storage, so an experiment can measure query traffic separately from
// construction traffic.
func (n *Network) ResetTraffic() {
	for i := 0; i < n.hosts; i++ {
		n.messages[i].Store(0)
		n.touches[i].Store(0)
	}
	n.totalMessages.Store(0)
	n.totalOps.Store(0)
}

// Cluster executes work on per-host goroutines. Each host runs a single
// worker goroutine; Do(h, fn) runs fn on host h's goroutine and waits for
// it, so all state owned by a host is accessed from exactly one goroutine
// at a time — the actor discipline of a message-passing node.
type Cluster struct {
	net     *Network
	inboxes []chan task
	wg      sync.WaitGroup
	stopped atomic.Bool
}

type task struct {
	fn   func()
	done chan struct{}
}

// NewCluster creates and starts a cluster over net's hosts. Call Stop when
// done; the Cluster owns one goroutine per host until then.
func NewCluster(net *Network) *Cluster {
	c := &Cluster{
		net:     net,
		inboxes: make([]chan task, net.Hosts()),
	}
	for i := range c.inboxes {
		// Buffer of one so a sender handing off work to an idle host does
		// not block on the rendezvous (per style guidance: size one or none).
		inbox := make(chan task, 1)
		c.inboxes[i] = inbox
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for t := range inbox {
				t.fn()
				close(t.done)
			}
		}()
	}
	return c
}

// Do runs fn on host h's goroutine and blocks until it completes. It must
// not be called after Stop. fn must not call Do for the same host h (that
// would deadlock, just as a node cannot wait on a message to itself).
func (c *Cluster) Do(h HostID, fn func()) {
	if c.stopped.Load() {
		panic("sim: Cluster.Do after Stop")
	}
	t := task{fn: fn, done: make(chan struct{})}
	c.inboxes[h] <- t
	<-t.done
}

// Stop shuts down all host goroutines and waits for them to exit.
func (c *Cluster) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	for _, inbox := range c.inboxes {
		close(inbox)
	}
	c.wg.Wait()
}
