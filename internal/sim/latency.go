package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// CostModel assigns a modeled latency to every ordered host pair — the
// pluggable half of the accounting spine. The hop/message counters are
// always unit-cost and never consult the model; latency is accumulated
// alongside them, so installing a model changes no existing counter.
//
// Link MUST be a pure function of (from, to): the same pair always
// yields the same cost, with no internal state advanced per call. That
// purity is what makes per-operation latency deterministic regardless of
// GOMAXPROCS, batch grouping, or write-stripe scheduling — concurrent
// executions interleave charge order, and a stateful sampler would hand
// different draws to different interleavings. Implementations that want
// randomness derive it by hashing (seed, from, to), one fixed sample per
// ordered pair, exactly like a seeded substream per link.
//
// from may be None for messages that originate outside any host (an
// unplaced coordinator op, e.g. repair traffic); implementations must
// return a well-defined cost for it. Units are abstract "latency units"
// (read them as microseconds); only ratios and quantiles are meaningful.
type CostModel interface {
	// Link returns the latency of one message from host `from` to host
	// `to`, in model units. It must be pure and safe for concurrent use.
	Link(from, to HostID) int64
	// Name identifies the model in stats and bench output.
	Name() string
}

// pairSample hashes (seed, from, to) to 64 pseudo-random bits — one
// fixed sample per ordered host pair, the stateless substream every
// randomized model draws its per-link sample from. It is the SplitMix64
// finalizer over a mix of the three inputs, so nearby seeds and adjacent
// host ids still yield unrelated samples.
func pairSample(seed uint64, from, to HostID) uint64 {
	z := seed
	z ^= uint64(int64(from)) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= uint64(int64(to)) * 0x94d049bb133111eb
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fixedModel charges the same cost on every link.
type fixedModel struct{ c int64 }

// Fixed returns the constant-cost model: every cross-host message costs
// c units, making an operation's latency exactly c times its hop count.
// Fixed(0) is the explicit zero-latency model; a nil CostModel on the
// Network means the same thing without even the accumulation work.
func Fixed(c int64) CostModel { return fixedModel{c: c} }

func (m fixedModel) Link(from, to HostID) int64 { return m.c }
func (m fixedModel) Name() string               { return fmt.Sprintf("fixed(%d)", m.c) }

// uniformModel samples each ordered pair's cost uniformly from [lo, hi].
type uniformModel struct {
	seed   uint64
	lo, hi int64
}

// Uniform returns a model whose per-link cost is a fixed uniform sample
// in [lo, hi], drawn once per ordered host pair from the seed. Uniform
// with lo == hi degenerates to Fixed; in particular Uniform(seed, 0, 0)
// is the zero-latency model. Uniform panics when hi < lo.
func Uniform(seed uint64, lo, hi int64) CostModel {
	if hi < lo {
		panic(fmt.Sprintf("sim: Uniform latency with hi %d < lo %d", hi, lo))
	}
	return uniformModel{seed: seed, lo: lo, hi: hi}
}

func (m uniformModel) Link(from, to HostID) int64 {
	span := uint64(m.hi-m.lo) + 1
	return m.lo + int64(pairSample(m.seed, from, to)%span)
}

func (m uniformModel) Name() string {
	return fmt.Sprintf("uniform[%d,%d]", m.lo, m.hi)
}

// logNormalModel samples each ordered pair's cost from LogNormal(mu,
// sigma) — the classic heavy-tailed WAN latency distribution.
type logNormalModel struct {
	seed      uint64
	mu, sigma float64
}

// LogNormal returns a model whose per-link cost is a fixed
// LogNormal(mu, sigma) sample (of the underlying normal's parameters, so
// the median link costs e^mu units), drawn once per ordered host pair
// from the seed. Heavy upper tails are the point: a handful of links are
// much slower than the median, which is what separates critical-path
// latency from plain hop counts at scale.
func LogNormal(seed uint64, mu, sigma float64) CostModel {
	return logNormalModel{seed: seed, mu: mu, sigma: sigma}
}

func (m logNormalModel) Link(from, to HostID) int64 {
	h := pairSample(m.seed, from, to)
	// Box-Muller on two halves of the hash: u1 in (0,1] so the log is
	// finite, u2 in [0,1).
	u1 := (float64(h>>11) + 1) / (1 << 53)
	u2 := float64(h&((1<<20)-1)) / (1 << 20)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	v := math.Exp(m.mu + m.sigma*z)
	if v < 1 {
		return 1
	}
	if v > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(math.Round(v))
}

func (m logNormalModel) Name() string {
	return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", m.mu, m.sigma)
}

// twoLevelModel is the rack/region topology: hosts are grouped into
// racks of rackSize consecutive ids; intra-rack links use one model,
// cross-rack links another.
type twoLevelModel struct {
	rackSize     int
	intra, inter CostModel
}

// TwoLevel returns the 2-level topology model: hosts h and g are in the
// same rack when h/rackSize == g/rackSize, and such links cost
// intra.Link(h, g); links that cross racks (and links from None — a
// message entering the fabric from outside) cost inter.Link(h, g). The
// usual instantiation is a cheap Fixed or narrow Uniform intra model
// under a heavy-tailed LogNormal inter model, which is where hop counts
// and latency visibly diverge: a 5-hop route crossing 5 racks costs far
// more than a 5-hop route that stays home. TwoLevel panics when
// rackSize <= 0.
func TwoLevel(rackSize int, intra, inter CostModel) CostModel {
	if rackSize <= 0 {
		panic(fmt.Sprintf("sim: TwoLevel latency with non-positive rack size %d", rackSize))
	}
	return twoLevelModel{rackSize: rackSize, intra: intra, inter: inter}
}

func (m twoLevelModel) Link(from, to HostID) int64 {
	if from != None && to != None && int(from)/m.rackSize == int(to)/m.rackSize {
		return m.intra.Link(from, to)
	}
	return m.inter.Link(from, to)
}

func (m twoLevelModel) Name() string {
	return fmt.Sprintf("twolevel(rack=%d,intra=%s,inter=%s)", m.rackSize, m.intra.Name(), m.inter.Name())
}

// Latency-histogram geometry: per-operation latencies are recorded into
// log-spaced buckets with latSubBits sub-buckets per octave, so quantile
// reads are within 1/2^latSubBits (12.5%) of exact while the whole
// histogram is one fixed array of atomics — no allocation, no lock, safe
// for concurrent Free calls from every worker goroutine.
const (
	latSubBits = 3
	latSub     = 1 << latSubBits
	latBuckets = (64-latSubBits)*latSub + latSub // index range of latBucket
)

// latBucket maps a latency value to its histogram bucket. Values below
// latSub are exact; above, the bucket keys on the top latSubBits+1 bits.
func latBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < latSub {
		return int(u)
	}
	l := bits.Len64(u)
	return (l-latSubBits)<<latSubBits + int((u>>(l-1-latSubBits))&(latSub-1))
}

// latBucketValue returns the lower bound of bucket i — the value
// quantile reads report for operations landing in it.
func latBucketValue(i int) int64 {
	if i < latSub {
		return int64(i)
	}
	o := i >> latSubBits
	return int64(latSub+(i&(latSub-1))) << (o - 1)
}
