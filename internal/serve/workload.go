package serve

import (
	"fmt"
	"sort"
	"time"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/wire"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Op kinds in a replay workload.
const (
	OpQuery  = byte('q')
	OpInsert = byte('i')
	OpDelete = byte('d')
)

// WorkloadOp is one operation of a seeded workload: the same list drives
// the simulator control run and the daemon replay, so any divergence in
// results or per-host message counts is the transport's fault.
type WorkloadOp struct {
	Kind   byte
	Key    uint64 // query point, or the key inserted/deleted
	Origin sim.HostID
}

// NewWorkload deterministically generates ops operations for a cluster
// built from cfg: mostly floor queries with a deterministic mix of
// inserts of fresh keys and deletes of currently-present keys (the
// generator tracks the evolving key set so every update is applicable).
func NewWorkload(cfg Config, seed uint64, ops int) []WorkloadOp {
	rng := xrand.New(seed)
	keys := cfg.InitialKeys()
	present := make(map[uint64]int, len(keys)) // key -> index in keys
	for i, k := range keys {
		present[k] = i
	}
	out := make([]WorkloadOp, 0, ops)
	for len(out) < ops {
		o := sim.HostID(rng.Intn(cfg.Hosts))
		switch r := rng.Intn(10); {
		case r < 8: // floor query
			out = append(out, WorkloadOp{Kind: OpQuery, Key: rng.Uint64n(1 << 41), Origin: o})
		case r == 8: // insert a fresh key
			k := rng.Uint64n(1 << 40)
			if _, dup := present[k]; dup {
				continue
			}
			present[k] = len(keys)
			keys = append(keys, k)
			out = append(out, WorkloadOp{Kind: OpInsert, Key: k, Origin: o})
		default: // delete a present key
			if len(keys) == 0 {
				continue
			}
			i := rng.Intn(len(keys))
			k := keys[i]
			last := keys[len(keys)-1]
			keys[i] = last
			present[last] = i
			keys = keys[:len(keys)-1]
			delete(present, k)
			out = append(out, WorkloadOp{Kind: OpDelete, Key: k, Origin: o})
		}
	}
	return out
}

// RunResult is one side of the parity diff: per-host charged-message
// counts plus per-operation answers and hop counts.
type RunResult struct {
	PerHost []int64
	Floors  []FloorReply // indexed like wl; zero value for updates
	Hops    []int        // model hops per operation

	// QueryLatency holds one wall-clock sample per query (replay side
	// only): the real-socket round-trip the W1 table reports.
	QueryLatency []time.Duration
}

// RunSim executes wl on a fresh single-process simulator build of cfg —
// the control side of the parity diff. Counters are reset after
// construction so they cover exactly the workload.
func RunSim(cfg Config, wl []WorkloadOp) (RunResult, error) {
	net := sim.NewNetwork(cfg.Hosts)
	st, err := buildStructure(cfg, net, cfg.InitialKeys())
	if err != nil {
		return RunResult{}, err
	}
	net.ResetTraffic()
	res := RunResult{Floors: make([]FloorReply, len(wl)), Hops: make([]int, len(wl))}
	for i, op := range wl {
		switch op.Kind {
		case OpQuery:
			k, ok, hops, err := st.Query(op.Key, op.Origin)
			if err != nil {
				return RunResult{}, fmt.Errorf("sim op %d: %w", i, err)
			}
			res.Floors[i] = FloorReply{Key: k, Ok: ok, Hops: hops}
			res.Hops[i] = hops
		case OpInsert:
			hops, err := st.Insert(op.Key, op.Origin)
			if err != nil {
				return RunResult{}, fmt.Errorf("sim op %d: %w", i, err)
			}
			res.Hops[i] = hops
		case OpDelete:
			hops, err := st.Delete(op.Key, op.Origin)
			if err != nil {
				return RunResult{}, fmt.Errorf("sim op %d: %w", i, err)
			}
			res.Hops[i] = hops
		}
	}
	res.PerHost = net.PerHostMessages()
	return res, nil
}

// Replay drives wl against a running daemon cluster through clients
// (indexed by host). Queries go to the origin daemon only; updates are
// broadcast to every daemon in host order — emission enabled only at the
// origin — so all replicas stay bit-identical. It returns the wire-side
// RunResult with per-host counts gathered from the daemons' counters.
func Replay(clients []*wire.Client, wl []WorkloadOp) (RunResult, error) {
	for h, cl := range clients {
		if _, err := callReset(cl); err != nil {
			return RunResult{}, fmt.Errorf("reset host %d: %w", h, err)
		}
	}
	res := RunResult{Floors: make([]FloorReply, len(wl)), Hops: make([]int, len(wl))}
	for i, op := range wl {
		switch op.Kind {
		case OpQuery:
			var fr FloorReply
			start := time.Now()
			err := clients[op.Origin].Call("floor", FloorArgs{Q: op.Key, Origin: int(op.Origin)}, &fr)
			if err != nil {
				return RunResult{}, fmt.Errorf("replay op %d (floor): %w", i, err)
			}
			res.QueryLatency = append(res.QueryLatency, time.Since(start))
			res.Floors[i] = fr
			res.Hops[i] = fr.Hops
		case OpInsert, OpDelete:
			kind := "insert"
			if op.Kind == OpDelete {
				kind = "delete"
			}
			for h, cl := range clients {
				var ur UpdateReply
				args := UpdateArgs{Op: kind, Key: op.Key, Origin: int(op.Origin), Emit: sim.HostID(h) == op.Origin}
				if err := cl.Call("update", args, &ur); err != nil {
					return RunResult{}, fmt.Errorf("replay op %d (%s at host %d): %w", i, kind, h, err)
				}
				if sim.HostID(h) == op.Origin {
					res.Hops[i] = ur.Hops
				}
			}
		}
	}
	res.PerHost = make([]int64, len(clients))
	for h, cl := range clients {
		var sr StatsReply
		if err := cl.Call("stats", nil, &sr); err != nil {
			return RunResult{}, fmt.Errorf("stats host %d: %w", h, err)
		}
		res.PerHost[h] = sr.Msgs
	}
	return res, nil
}

func callReset(cl *wire.Client) (bool, error) {
	var ok bool
	err := cl.Call("resetmsgs", nil, &ok)
	return ok, err
}

// ExpectedDigest computes the key-set digest every daemon must report
// after wl has been fully applied to cfg's initial keys — the recovery
// smoke's oracle, derived without running any structure at all.
func ExpectedDigest(cfg Config, wl []WorkloadOp) DigestReply {
	set := make(map[uint64]struct{}, cfg.Keys)
	for _, k := range cfg.InitialKeys() {
		set[k] = struct{}{}
	}
	for _, op := range wl {
		switch op.Kind {
		case OpInsert:
			set[op.Key] = struct{}{}
		case OpDelete:
			delete(set, op.Key)
		}
	}
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return DigestReply{N: len(keys), Sum: digestKeys(keys)}
}

// Digests gathers every daemon's key-set digest; mismatched digests mean
// the replicas diverged during replay.
func Digests(clients []*wire.Client) ([]DigestReply, error) {
	out := make([]DigestReply, len(clients))
	for h, cl := range clients {
		if err := cl.Call("digest", nil, &out[h]); err != nil {
			return nil, fmt.Errorf("digest host %d: %w", h, err)
		}
	}
	return out, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples by
// nearest-rank; zero when there are no samples.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// BootLocal starts a cfg-shaped cluster of in-process daemons on
// loopback listeners, cross-connects them, and returns one control
// client per daemon. Callers own the returned daemons and clients.
func BootLocal(cfg Config) ([]*Daemon, []*wire.Client, error) {
	daemons := make([]*Daemon, cfg.Hosts)
	addrs := make([]string, cfg.Hosts)
	fail := func(err error) ([]*Daemon, []*wire.Client, error) {
		for _, d := range daemons {
			if d != nil {
				d.Close()
			}
		}
		return nil, nil, err
	}
	for h := 0; h < cfg.Hosts; h++ {
		c := cfg
		c.Host = sim.HostID(h)
		c.Listen = "127.0.0.1:0"
		d, err := Start(c)
		if err != nil {
			return fail(err)
		}
		daemons[h] = d
		addrs[h] = d.Addr()
	}
	clients := make([]*wire.Client, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		cl, err := wire.Dial(sim.HostID(h), addrs[h], 5*time.Second)
		if err != nil {
			return fail(err)
		}
		clients[h] = cl
		var ok bool
		if err := cl.Call("connect", ConnectArgs{Addrs: addrs}, &ok); err != nil {
			return fail(fmt.Errorf("connect host %d: %w", h, err))
		}
	}
	return daemons, clients, nil
}

// CloseLocal tears down what BootLocal built.
func CloseLocal(daemons []*Daemon, clients []*wire.Client) {
	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
	for _, d := range daemons {
		if d != nil {
			d.Close()
		}
	}
}
