// Package serve is the skip-web daemon: one process (or in-process
// listener) per host, each holding a full deterministic replica of a
// skip-web structure and exporting its operations as named RPCs over the
// wire protocol.
//
// The parity design rests on two facts. First, construction and updates
// are deterministic given the same seed and the same operation sequence,
// so every daemon can hold a complete replica and stay bit-identical by
// applying the same updates in the same order. Second, the model's
// charges are per-destination-host: when an operation runs at its origin
// daemon with emission enabled, the sim.Network deliver hook fires once
// per charged message, and the daemon sends one real KMsg frame to the
// destination host's listener. Each receiving node counts frames, so the
// per-host wire counters equal the simulator's per-host message counters
// bit for bit — the load-bearing invariant the replay harness diffs.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/wire"
	"github.com/skipwebs/skipwebs/internal/xrand"

	"encoding/binary"
	"encoding/json"
)

// Config describes one daemon: which host it is, the cluster size, and
// the structure every daemon deterministically rebuilds from the seeds.
type Config struct {
	Host      sim.HostID
	Hosts     int
	Listen    string // e.g. "127.0.0.1:0" or ":7070"
	Structure string // "onedim", "blocked", or "bucketed"
	Keys      int    // initial key count
	KeySeed   uint64 // seed for the initial key set
	Seed      uint64 // structural seed (level promotion, placement)
	Replicas  int    // replication factor (<= 1 unreplicated)
	Target    int    // bucketed: keys per bucket (0 = default 8)

	// WALDir, when non-empty, makes the daemon durable: every applied
	// update is fsynced to <WALDir>/host-<id>.wal before its RPC acks,
	// and a restarted daemon replays the log to rejoin with its replica
	// intact (see wal.go). CheckpointEvery sets the verification-
	// checkpoint cadence in records (<= 0 = sim.DefaultCheckpointEvery).
	WALDir          string
	CheckpointEvery int
}

// structure is the uniform op surface the daemon serves; all three
// uint64 skip-web cores satisfy it (the 1-d web via an adapter).
type structure interface {
	Query(q uint64, origin sim.HostID) (uint64, bool, int, error)
	Insert(k uint64, origin sim.HostID) (int, error)
	Delete(k uint64, origin sim.HostID) (int, error)
}

// onedimAdapter maps the generic web's range-result Query onto the
// (key, ok) floor surface.
type onedimAdapter struct {
	w *core.Web[*core.ListLevel, uint64, uint64]
}

func (a onedimAdapter) Query(q uint64, origin sim.HostID) (uint64, bool, int, error) {
	res, err := a.w.Query(q, origin)
	if err != nil {
		return 0, false, 0, err
	}
	g := a.w.GroundStructure()
	if g.IsHead(res.Range) {
		return 0, false, res.Hops, nil
	}
	return g.Key(res.Range), true, res.Hops, nil
}

func (a onedimAdapter) Insert(k uint64, origin sim.HostID) (int, error) {
	return a.w.Insert(k, origin)
}

func (a onedimAdapter) Delete(k uint64, origin sim.HostID) (int, error) {
	return a.w.Delete(k, origin)
}

// InitialKeys returns the deterministic initial key set for cfg — every
// daemon and the sim control derive the same set from KeySeed.
func (cfg Config) InitialKeys() []uint64 {
	rng := xrand.New(cfg.KeySeed)
	seen := make(map[uint64]bool, cfg.Keys)
	out := make([]uint64, 0, cfg.Keys)
	for len(out) < cfg.Keys {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// buildStructure constructs cfg's structure over net from the
// deterministic initial key set.
func buildStructure(cfg Config, net *sim.Network, keys []uint64) (structure, error) {
	switch cfg.Structure {
	case "onedim":
		w, err := core.NewWeb[*core.ListLevel, uint64, uint64](
			core.NewListOps(), net, keys, core.Config{Seed: cfg.Seed, Replicas: cfg.Replicas})
		if err != nil {
			return nil, err
		}
		return onedimAdapter{w}, nil
	case "blocked":
		return core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: cfg.Seed, Replicas: cfg.Replicas})
	case "bucketed":
		target := cfg.Target
		if target == 0 {
			target = 8
		}
		repl := cfg.Replicas
		if repl <= 0 {
			repl = 1
		}
		return core.NewBucketWeb(net, keys, target, 0, cfg.Seed, repl)
	default:
		return nil, fmt.Errorf("serve: unknown structure %q", cfg.Structure)
	}
}

// Daemon is one running host: a wire.Node serving the structure's
// operations, a deliver hook that turns model charges into KMsg frames,
// and one client per peer (including itself) to deliver them on.
type Daemon struct {
	cfg  Config
	net  *sim.Network
	st   structure
	node *wire.Node

	// peers[h] is the connection hops to host h ride on; nil until the
	// connect RPC (or ConnectPeers) supplies the address list.
	peers []*wire.Client

	// emit and emitErr are touched only from the node's worker
	// goroutine (handlers run serially there), so they need no lock.
	emit    bool
	emitErr error

	// applied is the daemon's current key set, the digest's input.
	applied map[uint64]struct{}

	// wal is the on-disk operation log (nil without Config.WALDir);
	// recovered counts the records replayed at startup.
	wal       *walLog
	recovered int

	shutdown chan struct{} // closed by the shutdown RPC
}

// Request/reply bodies of the daemon's RPCs.
type (
	// PingReply identifies a daemon. Recovered counts the WAL records
	// it replayed at startup (0 without a WAL or on a fresh log).
	PingReply struct {
		Host      int
		Structure string
		Keys      int
		Recovered int
	}
	// ConnectArgs carries the full peer address list, indexed by host.
	ConnectArgs struct {
		Addrs []string
	}
	// FloorArgs asks for the floor (greatest key <= Q) from Origin.
	FloorArgs struct {
		Q      uint64
		Origin int
	}
	// FloorReply is a floor answer plus its model hop count.
	FloorReply struct {
		Key  uint64
		Ok   bool
		Hops int
	}
	// UpdateArgs applies an insert or delete. Emit is true only at the
	// origin daemon — the one daemon whose charges become KMsg frames;
	// the others apply the update silently to keep their replicas
	// bit-identical.
	UpdateArgs struct {
		Op     string // "insert" or "delete"
		Key    uint64
		Origin int
		Emit   bool
	}
	// UpdateReply reports the model hop count of the update.
	UpdateReply struct {
		Hops int
	}
	// StatsReply reports the daemon's charged-message counter — the
	// wire-side per-host number the parity check diffs against the sim.
	StatsReply struct {
		Msgs int64
	}
	// DigestReply summarizes the daemon's key set; equal digests across
	// daemons certify the replicas stayed in sync.
	DigestReply struct {
		N   int
		Sum uint64
	}
)

// Start builds the replica and opens the listener. The daemon serves
// ping/connect/digest immediately; floor and update work (and emit
// charges) once peers are connected.
func Start(cfg Config) (*Daemon, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("serve: non-positive host count %d", cfg.Hosts)
	}
	if int(cfg.Host) < 0 || int(cfg.Host) >= cfg.Hosts {
		return nil, fmt.Errorf("serve: host %d outside [0,%d)", cfg.Host, cfg.Hosts)
	}
	net := sim.NewNetwork(cfg.Hosts)
	keys := cfg.InitialKeys()
	st, err := buildStructure(cfg, net, keys)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		net:      net,
		st:       st,
		applied:  make(map[uint64]struct{}, len(keys)),
		shutdown: make(chan struct{}),
	}
	for _, k := range keys {
		d.applied[k] = struct{}{}
	}
	if cfg.WALDir != "" {
		if err := d.recover(); err != nil {
			return nil, err
		}
	}
	// The hook stays installed for the daemon's lifetime; emit gates it
	// so construction and non-origin updates charge nothing.
	net.SetDeliver(func(h sim.HostID) {
		if !d.emit {
			return
		}
		if err := d.peers[h].Hop(); err != nil && d.emitErr == nil {
			d.emitErr = err
		}
	})
	node, err := wire.NewNode(wire.NodeConfig{
		Host:   cfg.Host,
		Listen: cfg.Listen,
		Handlers: map[string]wire.Handler{
			"ping":      d.ping,
			"connect":   d.connect,
			"floor":     d.floor,
			"update":    d.update,
			"stats":     d.stats,
			"resetmsgs": d.resetMsgs,
			"digest":    d.digest,
			"shutdown":  d.shutdownRPC,
		},
	})
	if err != nil {
		return nil, err
	}
	d.node = node
	return d, nil
}

// recover opens the daemon's WAL and replays whatever a previous
// process life logged: each record re-applies its update to the freshly
// rebuilt replica (emission is off — recovery is local disk I/O, not
// cluster traffic), and the state is verified against the last
// checkpoint at the exact record it covered. Determinism makes this
// exact: seeds + the ordered update log reproduce the replica bit for
// bit.
func (d *Daemon) recover() error {
	wal, recs, err := openWAL(d.cfg.WALDir, d.cfg.Host, d.cfg.CheckpointEvery)
	if err != nil {
		return err
	}
	ck, haveCk, err := wal.readCheckpoint()
	if err != nil {
		wal.close()
		return err
	}
	if haveCk && ck.Records > len(recs) {
		wal.close()
		return fmt.Errorf("serve: wal truncated: checkpoint covers %d records, log has %d", ck.Records, len(recs))
	}
	for i, rec := range recs {
		if err := d.applyRecord(rec); err != nil {
			wal.close()
			return fmt.Errorf("serve: wal replay record %d: %w", i, err)
		}
		if haveCk && i+1 == ck.Records {
			if got := d.digestNow(); got.N != ck.N || got.Sum != ck.Sum {
				wal.close()
				return fmt.Errorf("serve: wal replay diverged from checkpoint at record %d: got {%d %#x}, want {%d %#x}",
					ck.Records, got.N, got.Sum, ck.N, ck.Sum)
			}
		}
	}
	d.wal = wal
	d.recovered = len(recs)
	return nil
}

// applyRecord re-applies one logged update during recovery.
func (d *Daemon) applyRecord(rec walRecord) error {
	switch rec.Op {
	case OpInsert:
		if _, err := d.st.Insert(rec.Key, sim.HostID(rec.Origin)); err != nil {
			return err
		}
		d.applied[rec.Key] = struct{}{}
	case OpDelete:
		if _, err := d.st.Delete(rec.Key, sim.HostID(rec.Origin)); err != nil {
			return err
		}
		delete(d.applied, rec.Key)
	}
	return nil
}

// Recovered returns the number of WAL records replayed at startup.
func (d *Daemon) Recovered() int { return d.recovered }

// Addr returns the daemon's listen address.
func (d *Daemon) Addr() string { return d.node.Addr() }

// ShutdownRequested is closed when a shutdown RPC arrives; the process
// wrapper selects on it alongside OS signals.
func (d *Daemon) ShutdownRequested() <-chan struct{} { return d.shutdown }

// Close drains the daemon gracefully: queued RPCs finish, then the
// listener and peer connections close.
func (d *Daemon) Close() {
	d.node.Close()
	for _, cl := range d.peers {
		if cl != nil {
			cl.Close()
		}
	}
	d.wal.close()
}

// ConnectPeers dials every peer address (indexed by host id, including
// this daemon's own), retrying each dial for up to wait.
func (d *Daemon) ConnectPeers(addrs []string, wait time.Duration) error {
	if len(addrs) != d.cfg.Hosts {
		return fmt.Errorf("serve: %d peer addrs for %d hosts", len(addrs), d.cfg.Hosts)
	}
	peers := make([]*wire.Client, len(addrs))
	for h, a := range addrs {
		cl, err := wire.Dial(sim.HostID(h), a, wait)
		if err != nil {
			for _, p := range peers {
				if p != nil {
					p.Close()
				}
			}
			return err
		}
		peers[h] = cl
	}
	// A re-connect (after a peer restarted on a fresh socket) replaces
	// the whole set; drop the stale connections.
	for _, p := range d.peers {
		if p != nil {
			p.Close()
		}
	}
	d.peers = peers
	return nil
}

func (d *Daemon) ping(json.RawMessage) (any, error) {
	return PingReply{Host: int(d.cfg.Host), Structure: d.cfg.Structure, Keys: len(d.applied), Recovered: d.recovered}, nil
}

func (d *Daemon) connect(args json.RawMessage) (any, error) {
	var in ConnectArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, err
	}
	if err := d.ConnectPeers(in.Addrs, 5*time.Second); err != nil {
		return nil, err
	}
	return true, nil
}

// run executes fn with charge emission on and returns the first frame
// delivery error, if any.
func (d *Daemon) run(fn func() error) error {
	if d.peers == nil {
		return fmt.Errorf("serve: host %d has no peers connected", d.cfg.Host)
	}
	d.emit = true
	err := fn()
	d.emit = false
	if err != nil {
		return err
	}
	if e := d.emitErr; e != nil {
		d.emitErr = nil
		return fmt.Errorf("serve: hop delivery failed: %w", e)
	}
	return nil
}

func (d *Daemon) floor(args json.RawMessage) (any, error) {
	var in FloorArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, err
	}
	var out FloorReply
	err := d.run(func() error {
		k, ok, hops, err := d.st.Query(in.Q, sim.HostID(in.Origin))
		out = FloorReply{Key: k, Ok: ok, Hops: hops}
		return err
	})
	return out, err
}

func (d *Daemon) update(args json.RawMessage) (any, error) {
	var in UpdateArgs
	if err := json.Unmarshal(args, &in); err != nil {
		return nil, err
	}
	apply := func() (int, error) {
		switch in.Op {
		case "insert":
			return d.st.Insert(in.Key, sim.HostID(in.Origin))
		case "delete":
			return d.st.Delete(in.Key, sim.HostID(in.Origin))
		default:
			return 0, fmt.Errorf("serve: unknown update op %q", in.Op)
		}
	}
	var out UpdateReply
	var doErr error
	if in.Emit {
		doErr = d.run(func() error {
			h, err := apply()
			out.Hops = h
			return err
		})
	} else {
		// Replica-sync path: apply without emitting — this daemon is not
		// the operation's origin, so its charges are not the real ones.
		h, err := apply()
		out.Hops = h
		doErr = err
	}
	if doErr != nil {
		return nil, doErr
	}
	switch in.Op {
	case "insert":
		d.applied[in.Key] = struct{}{}
	case "delete":
		delete(d.applied, in.Key)
	}
	// Write-ahead of the ack: the record is fsynced before the RPC
	// replies, so an acknowledged update survives a process kill.
	if d.wal != nil {
		op := OpInsert
		if in.Op == "delete" {
			op = OpDelete
		}
		if err := d.wal.append(walRecord{Op: op, Key: in.Key, Origin: in.Origin}); err != nil {
			return nil, err
		}
		if err := d.wal.maybeCheckpoint(d.digestNow); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *Daemon) stats(json.RawMessage) (any, error) {
	return StatsReply{Msgs: d.node.Messages()}, nil
}

func (d *Daemon) resetMsgs(json.RawMessage) (any, error) {
	d.node.ResetMessages()
	return true, nil
}

func (d *Daemon) digest(json.RawMessage) (any, error) {
	return d.digestNow(), nil
}

// digestNow summarizes the current key set (also the checkpoint's and
// recovery verification's state summary).
func (d *Daemon) digestNow() DigestReply {
	keys := make([]uint64, 0, len(d.applied))
	for k := range d.applied {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return DigestReply{N: len(keys), Sum: digestKeys(keys)}
}

// digestKeys hashes a sorted key list — shared with ExpectedDigest so
// the sim control and the daemons agree byte for byte.
func digestKeys(sorted []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range sorted {
		binary.BigEndian.PutUint64(buf[:], k)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (d *Daemon) shutdownRPC(json.RawMessage) (any, error) {
	select {
	case <-d.shutdown:
	default:
		close(d.shutdown)
	}
	return true, nil
}
