package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// The daemon's on-disk durability mirrors the simulator's model at the
// process level: every applied update is appended to a per-host
// operation log and fsynced before the RPC acks, so a killed process
// recovers by rebuilding its replica from the seeds and replaying the
// log in order (replica state is deterministic in the seeds plus the
// ordered update sequence — the parity invariant the whole daemon rests
// on). Every CheckpointEvery records the daemon also writes a checkpoint
// summary (record count + key-set digest, tmp+rename so it is always
// whole); recovery verifies the replayed state against it at the exact
// record the checkpoint covered, catching a truncated or corrupted log
// instead of silently serving a diverged replica.
//
// Unlike the simulator's checkpoints, the daemon's do not truncate the
// log: the structure's in-memory topology is seed+history dependent, so
// the oplog itself is the canonical durable state and stays append-only.
// The checkpoint is a verification anchor, not a snapshot.

// walRecord is one logged update.
type walRecord struct {
	Op     byte // OpInsert or OpDelete
	Key    uint64
	Origin int
}

// walCheckpoint is the periodic verification anchor: the digest of the
// daemon's key set after exactly Records logged updates.
type walCheckpoint struct {
	Records int    `json:"records"`
	N       int    `json:"n"`
	Sum     uint64 `json:"sum"`
}

// walLog is an open per-host operation log.
type walLog struct {
	f        *os.File
	path     string
	ckptPath string
	every    int
	records  int // total records in the log
	since    int // records since the last checkpoint
}

// openWAL opens (creating if absent) host h's log under dir and returns
// it along with any records a previous process life left behind, in
// append order. every <= 0 selects the simulator's default cadence.
func openWAL(dir string, h sim.HostID, every int) (*walLog, []walRecord, error) {
	if every <= 0 {
		every = sim.DefaultCheckpointEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: wal dir: %w", err)
	}
	l := &walLog{
		path:     filepath.Join(dir, fmt.Sprintf("host-%d.wal", h)),
		ckptPath: filepath.Join(dir, fmt.Sprintf("host-%d.ckpt", h)),
		every:    every,
	}
	recs, err := readWAL(l.path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: wal open: %w", err)
	}
	l.f = f
	l.records = len(recs)
	l.since = len(recs) % every
	return l, recs, nil
}

// readWAL parses a log file; a missing file is an empty log.
func readWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: wal read: %w", err)
	}
	defer f.Close()
	var out []walRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var op string
		var key uint64
		var origin int
		if _, err := fmt.Sscanf(line, "%s %d %d", &op, &key, &origin); err != nil ||
			len(op) != 1 || (op[0] != OpInsert && op[0] != OpDelete) {
			return nil, fmt.Errorf("serve: wal record %d is corrupt: %q", len(out), line)
		}
		out = append(out, walRecord{Op: op[0], Key: key, Origin: origin})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: wal read: %w", err)
	}
	return out, nil
}

// readCheckpoint returns the last checkpoint, or ok=false when none was
// ever written.
func (l *walLog) readCheckpoint() (walCheckpoint, bool, error) {
	buf, err := os.ReadFile(l.ckptPath)
	if os.IsNotExist(err) {
		return walCheckpoint{}, false, nil
	}
	if err != nil {
		return walCheckpoint{}, false, fmt.Errorf("serve: checkpoint read: %w", err)
	}
	var ck walCheckpoint
	if err := json.Unmarshal(buf, &ck); err != nil {
		return walCheckpoint{}, false, fmt.Errorf("serve: checkpoint corrupt: %w", err)
	}
	return ck, true, nil
}

// append logs one applied update and fsyncs it — the write-ahead
// guarantee: once the RPC acks, the update survives a process kill.
func (l *walLog) append(rec walRecord) error {
	if _, err := fmt.Fprintf(l.f, "%c %d %d\n", rec.Op, rec.Key, rec.Origin); err != nil {
		return fmt.Errorf("serve: wal append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal fsync: %w", err)
	}
	l.records++
	l.since++
	return nil
}

// maybeCheckpoint writes a verification checkpoint when the cadence is
// due. digest supplies the key-set summary lazily (it costs a sort).
func (l *walLog) maybeCheckpoint(digest func() DigestReply) error {
	if l.since < l.every {
		return nil
	}
	d := digest()
	buf, err := json.Marshal(walCheckpoint{Records: l.records, N: d.N, Sum: d.Sum})
	if err != nil {
		return err
	}
	tmp := l.ckptPath + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp, l.ckptPath); err != nil {
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	l.since = 0
	return nil
}

func (l *walLog) close() {
	if l != nil && l.f != nil {
		l.f.Close()
	}
}
