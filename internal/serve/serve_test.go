package serve

import (
	"os"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/wire"
)

// TestWireParity is the load-bearing acceptance test of the wire
// transport: a 4-host daemon cluster replays a seeded golden workload
// over real TCP sockets, and the per-host message counters maintained by
// the wire nodes must match the simulator's per-host counters
// bit-for-bit — along with every answer and hop count. Afterward, every
// daemon's key-set digest must agree, certifying the replicas never
// diverged.
func TestWireParity(t *testing.T) {
	for _, structure := range []string{"onedim", "blocked", "bucketed"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			cfg := Config{
				Hosts:     4,
				Structure: structure,
				Keys:      256,
				KeySeed:   42,
				Seed:      7,
			}
			wl := NewWorkload(cfg, 99, 400)

			simRes, err := RunSim(cfg, wl)
			if err != nil {
				t.Fatalf("RunSim: %v", err)
			}

			daemons, clients, err := BootLocal(cfg)
			if err != nil {
				t.Fatalf("BootLocal: %v", err)
			}
			defer CloseLocal(daemons, clients)

			wireRes, err := Replay(clients, wl)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}

			for i := range wl {
				if wireRes.Floors[i] != simRes.Floors[i] {
					t.Fatalf("op %d: wire %+v, sim %+v", i, wireRes.Floors[i], simRes.Floors[i])
				}
				if wireRes.Hops[i] != simRes.Hops[i] {
					t.Fatalf("op %d hops: wire %d, sim %d", i, wireRes.Hops[i], simRes.Hops[i])
				}
			}
			for h := range simRes.PerHost {
				if wireRes.PerHost[h] != simRes.PerHost[h] {
					t.Fatalf("host %d messages: wire %d, sim %d (full: wire %v, sim %v)",
						h, wireRes.PerHost[h], simRes.PerHost[h], wireRes.PerHost, simRes.PerHost)
				}
			}

			digests, err := Digests(clients)
			if err != nil {
				t.Fatalf("Digests: %v", err)
			}
			for h := 1; h < len(digests); h++ {
				if digests[h] != digests[0] {
					t.Fatalf("replicas diverged: host %d digest %+v, host 0 %+v", h, digests[h], digests[0])
				}
			}
		})
	}
}

// TestWorkloadDeterministic pins the generator: the same cfg and seed
// must produce the same op list, or the parity diff is meaningless.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{Hosts: 4, Structure: "blocked", Keys: 64, KeySeed: 1, Seed: 2}
	a := NewWorkload(cfg, 5, 200)
	b := NewWorkload(cfg, 5, 200)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	kinds := map[byte]int{}
	for _, op := range a {
		kinds[op.Kind]++
	}
	if kinds[OpQuery] == 0 || kinds[OpInsert] == 0 || kinds[OpDelete] == 0 {
		t.Fatalf("workload lacks an op kind: %v", kinds)
	}
}

// TestDaemonRejectsBadConfig covers the daemon's validation surface.
func TestDaemonRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{Hosts: 0, Structure: "blocked"}); err == nil {
		t.Fatal("Hosts=0 accepted")
	}
	if _, err := Start(Config{Hosts: 2, Host: 5, Structure: "blocked", Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if _, err := Start(Config{Hosts: 2, Structure: "nope", Keys: 8, Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

// TestShutdownRPC covers the daemon's remote drain trigger.
func TestShutdownRPC(t *testing.T) {
	d, err := Start(Config{Hosts: 1, Structure: "blocked", Keys: 16, KeySeed: 3, Seed: 4, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Close()
	cl, err := wire.Dial(0, d.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	var ok bool
	if err := cl.Call("shutdown", nil, &ok); err != nil {
		t.Fatalf("shutdown RPC: %v", err)
	}
	select {
	case <-d.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown signal not delivered")
	}
}

// TestWALRecovery is the daemon-side durability acceptance: a durable
// 4-daemon cluster replays half a workload, host 1's daemon dies and is
// restarted from its WAL directory, the cluster reconnects, and the
// second half replays. The restarted replica must report the exact
// records it replayed, every digest must equal the workload oracle, and
// the per-host message counters summed across the two halves must still
// match a crash-free simulator run of the full workload bit for bit.
func TestWALRecovery(t *testing.T) {
	cfg := Config{
		Hosts:           4,
		Structure:       "blocked",
		Keys:            256,
		KeySeed:         42,
		Seed:            7,
		WALDir:          t.TempDir(),
		CheckpointEvery: 4,
	}
	wl := NewWorkload(cfg, 99, 400)
	half := len(wl) / 2
	simRes, err := RunSim(cfg, wl)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}

	daemons, clients, err := BootLocal(cfg)
	if err != nil {
		t.Fatalf("BootLocal: %v", err)
	}
	defer CloseLocal(daemons, clients)

	res1, err := Replay(clients, wl[:half])
	if err != nil {
		t.Fatalf("first half: %v", err)
	}
	updates := 0
	for _, op := range wl[:half] {
		if op.Kind != OpQuery {
			updates++
		}
	}

	// Host 1 dies. Every record was fsynced before its RPC acked, so
	// the close (or a kill) loses nothing acknowledged.
	daemons[1].Close()
	clients[1].Close()
	c1 := cfg
	c1.Host = 1
	c1.Listen = "127.0.0.1:0"
	d1, err := Start(c1)
	if err != nil {
		t.Fatalf("restart host 1: %v", err)
	}
	daemons[1] = d1
	if got := d1.Recovered(); got != updates {
		t.Fatalf("restarted daemon replayed %d WAL records, want %d", got, updates)
	}
	// Reconnect the whole cluster on the updated address list.
	addrs := make([]string, cfg.Hosts)
	for h, d := range daemons {
		addrs[h] = d.Addr()
	}
	cl, err := wire.Dial(1, addrs[1], 5*time.Second)
	if err != nil {
		t.Fatalf("redial host 1: %v", err)
	}
	clients[1] = cl
	for h, cl := range clients {
		var ok bool
		if err := cl.Call("connect", ConnectArgs{Addrs: addrs}, &ok); err != nil {
			t.Fatalf("reconnect host %d: %v", h, err)
		}
	}

	res2, err := Replay(clients, wl[half:])
	if err != nil {
		t.Fatalf("second half: %v", err)
	}
	for i := range wl {
		var got FloorReply
		if i < half {
			got = res1.Floors[i]
		} else {
			got = res2.Floors[i-half]
		}
		if got != simRes.Floors[i] {
			t.Fatalf("op %d: wire %+v, sim %+v", i, got, simRes.Floors[i])
		}
	}
	for h := range simRes.PerHost {
		if got := res1.PerHost[h] + res2.PerHost[h]; got != simRes.PerHost[h] {
			t.Fatalf("host %d messages across restart: wire %d, sim %d", h, got, simRes.PerHost[h])
		}
	}
	want := ExpectedDigest(cfg, wl)
	digests, err := Digests(clients)
	if err != nil {
		t.Fatalf("Digests: %v", err)
	}
	for h, d := range digests {
		if d != want {
			t.Fatalf("host %d digest %+v, oracle %+v — recovery diverged", h, d, want)
		}
	}
}

// TestWALRecoveryVerification pins the failure modes: a daemon must
// refuse to start from a log it cannot replay exactly.
func TestWALRecoveryVerification(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Hosts: 2, Structure: "onedim", Keys: 64, KeySeed: 1, Seed: 2,
		Host: 0, Listen: "127.0.0.1:0", WALDir: dir, CheckpointEvery: 2,
	}
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Log three updates directly through the handler path.
	peerless := []string{d.Addr(), d.Addr()}
	if err := d.ConnectPeers(peerless, time.Second); err != nil {
		t.Fatal(err)
	}
	cl, err := wire.Dial(0, d.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []uint64{1 << 50, 1<<50 + 1, 1<<50 + 2} {
		var ur UpdateReply
		if err := cl.Call("update", UpdateArgs{Op: "insert", Key: k, Origin: 0}, &ur); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	cl.Close()
	d.Close()

	// Clean restart succeeds and replays all three.
	d2, err := Start(cfg)
	if err != nil {
		t.Fatalf("clean restart: %v", err)
	}
	if got := d2.Recovered(); got != 3 {
		t.Fatalf("recovered %d records, want 3", got)
	}
	d2.Close()

	// A log truncated below its checkpoint must be refused.
	walPath := dir + "/host-0.wal"
	if err := os.WriteFile(walPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Start(cfg); err == nil {
		t.Fatal("daemon started from a log truncated below its checkpoint")
	}

	// A corrupt record must be refused too.
	if err := os.WriteFile(walPath, []byte("i 5 0\nGARBAGE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Start(cfg); err == nil {
		t.Fatal("daemon started from a corrupt log")
	}
}
