package serve

import (
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/wire"
)

// TestWireParity is the load-bearing acceptance test of the wire
// transport: a 4-host daemon cluster replays a seeded golden workload
// over real TCP sockets, and the per-host message counters maintained by
// the wire nodes must match the simulator's per-host counters
// bit-for-bit — along with every answer and hop count. Afterward, every
// daemon's key-set digest must agree, certifying the replicas never
// diverged.
func TestWireParity(t *testing.T) {
	for _, structure := range []string{"onedim", "blocked", "bucketed"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			cfg := Config{
				Hosts:     4,
				Structure: structure,
				Keys:      256,
				KeySeed:   42,
				Seed:      7,
			}
			wl := NewWorkload(cfg, 99, 400)

			simRes, err := RunSim(cfg, wl)
			if err != nil {
				t.Fatalf("RunSim: %v", err)
			}

			daemons, clients, err := BootLocal(cfg)
			if err != nil {
				t.Fatalf("BootLocal: %v", err)
			}
			defer CloseLocal(daemons, clients)

			wireRes, err := Replay(clients, wl)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}

			for i := range wl {
				if wireRes.Floors[i] != simRes.Floors[i] {
					t.Fatalf("op %d: wire %+v, sim %+v", i, wireRes.Floors[i], simRes.Floors[i])
				}
				if wireRes.Hops[i] != simRes.Hops[i] {
					t.Fatalf("op %d hops: wire %d, sim %d", i, wireRes.Hops[i], simRes.Hops[i])
				}
			}
			for h := range simRes.PerHost {
				if wireRes.PerHost[h] != simRes.PerHost[h] {
					t.Fatalf("host %d messages: wire %d, sim %d (full: wire %v, sim %v)",
						h, wireRes.PerHost[h], simRes.PerHost[h], wireRes.PerHost, simRes.PerHost)
				}
			}

			digests, err := Digests(clients)
			if err != nil {
				t.Fatalf("Digests: %v", err)
			}
			for h := 1; h < len(digests); h++ {
				if digests[h] != digests[0] {
					t.Fatalf("replicas diverged: host %d digest %+v, host 0 %+v", h, digests[h], digests[0])
				}
			}
		})
	}
}

// TestWorkloadDeterministic pins the generator: the same cfg and seed
// must produce the same op list, or the parity diff is meaningless.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{Hosts: 4, Structure: "blocked", Keys: 64, KeySeed: 1, Seed: 2}
	a := NewWorkload(cfg, 5, 200)
	b := NewWorkload(cfg, 5, 200)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	kinds := map[byte]int{}
	for _, op := range a {
		kinds[op.Kind]++
	}
	if kinds[OpQuery] == 0 || kinds[OpInsert] == 0 || kinds[OpDelete] == 0 {
		t.Fatalf("workload lacks an op kind: %v", kinds)
	}
}

// TestDaemonRejectsBadConfig covers the daemon's validation surface.
func TestDaemonRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{Hosts: 0, Structure: "blocked"}); err == nil {
		t.Fatal("Hosts=0 accepted")
	}
	if _, err := Start(Config{Hosts: 2, Host: 5, Structure: "blocked", Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if _, err := Start(Config{Hosts: 2, Structure: "nope", Keys: 8, Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

// TestShutdownRPC covers the daemon's remote drain trigger.
func TestShutdownRPC(t *testing.T) {
	d, err := Start(Config{Hosts: 1, Structure: "blocked", Keys: 16, KeySeed: 3, Seed: 4, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Close()
	cl, err := wire.Dial(0, d.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	var ok bool
	if err := cl.Call("shutdown", nil, &ok); err != nil {
		t.Fatalf("shutdown RPC: %v", err)
	}
	select {
	case <-d.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown signal not delivered")
	}
}
