// Package bucketskipgraph implements the bucketed skip graphs of Aspnes,
// Kirsch, and Krishnamurthy (PODC 2004), the H < n row of Table 1 in the
// skip-webs paper.
//
// The key space is carved into contiguous buckets of roughly n/H keys,
// one bucket per host; a skip graph is built over the buckets' minimum
// keys. A query routes through the skip graph in O(log H) expected
// messages and finishes inside the bucket locally, so per-host memory is
// O(n/H + log H) and query/update cost Õ(log H).
package bucketskipgraph

import (
	"fmt"
	"sort"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/skipgraph"
)

// Graph is a bucketed skip graph. The zero value is not usable; construct
// with New and Build.
type Graph struct {
	net     *sim.Network
	sg      *skipgraph.Graph
	buckets map[uint64]*bucket // keyed by the bucket's min key
	target  int                // target bucket size; split at 2*target
}

type bucket struct {
	min  uint64
	keys []uint64 // sorted
	host sim.HostID
}

// New creates an empty bucketed graph over net's hosts with the given
// target bucket size (typically n/H).
func New(net *sim.Network, seed uint64, target int) *Graph {
	if target < 1 {
		target = 1
	}
	return &Graph{
		net:     net,
		sg:      skipgraph.New(net, seed, false),
		buckets: make(map[uint64]*bucket),
		target:  target,
	}
}

// Len returns the number of keys stored.
func (g *Graph) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b.keys)
	}
	return n
}

// NumBuckets returns the number of buckets (occupied hosts).
func (g *Graph) NumBuckets() int { return len(g.buckets) }

// Build constructs buckets over the sorted keys and the skip graph over
// bucket minima, without routing messages.
func (g *Graph) Build(keys []uint64) error {
	if len(keys) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return fmt.Errorf("bucketskipgraph: duplicate key %d", sorted[i])
		}
	}
	var mins []uint64
	for start := 0; start < len(sorted); start += g.target {
		end := start + g.target
		if end > len(sorted) {
			end = len(sorted)
		}
		b := &bucket{min: sorted[start], keys: append([]uint64(nil), sorted[start:end]...)}
		g.buckets[b.min] = b
		mins = append(mins, b.min)
	}
	if err := g.sg.Build(mins); err != nil {
		return err
	}
	for _, b := range g.buckets {
		h, _ := g.sg.HostOf(b.min)
		b.host = h
		g.net.AddStorage(h, len(b.keys))
	}
	return nil
}

// Search performs a floor query: route to the bucket, then search inside
// it. Deletions may leave a bucket's routing separator below its first
// live key (separators are kept for amortization), in which case the
// search continues into predecessor buckets. It returns the floor key and
// the message count.
func (g *Graph) Search(target uint64, origin sim.HostID) (uint64, bool, int) {
	bmin, ok, hops := g.sg.Search(target, origin)
	for ok {
		b := g.buckets[bmin]
		i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] > target })
		if i > 0 {
			return b.keys[i-1], true, hops
		}
		// Empty-below-target bucket: one hop to the predecessor bucket via
		// the bucket node's level-0 left link.
		bmin, ok = g.sg.PrevKey(bmin)
		hops++
	}
	return 0, false, hops
}

// Insert routes to the bucket and adds the key, splitting the bucket when
// it doubles past the target size.
func (g *Graph) Insert(key uint64, origin sim.HostID) (int, error) {
	if len(g.buckets) == 0 {
		b := &bucket{min: key, keys: []uint64{key}}
		g.buckets[key] = b
		if _, err := g.sg.Insert(key, origin); err != nil {
			return 0, err
		}
		h, _ := g.sg.HostOf(key)
		b.host = h
		g.net.AddStorage(h, 1)
		return 0, nil
	}
	bmin, ok, hops := g.sg.Search(key, origin)
	if !ok {
		// Key below every bucket: extend the first bucket downward.
		bmin = g.minBucket()
		b := g.buckets[bmin]
		delete(g.buckets, bmin)
		// Rekey the bucket in the skip graph: remove old min, insert new.
		h1, err := g.sg.Delete(bmin, origin)
		if err != nil {
			return hops, err
		}
		h2, err := g.sg.Insert(key, origin)
		if err != nil {
			return hops, err
		}
		b.min = key
		b.keys = append([]uint64{key}, b.keys...)
		g.buckets[key] = b
		g.net.AddStorage(b.host, 1)
		return hops + h1 + h2, nil
	}
	b := g.buckets[bmin]
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	if i < len(b.keys) && b.keys[i] == key {
		return hops, fmt.Errorf("bucketskipgraph: duplicate key %d", key)
	}
	b.keys = append(b.keys, 0)
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	g.net.AddStorage(b.host, 1)
	hops++ // the write to the bucket host
	if len(b.keys) > 2*g.target {
		// Split: upper half becomes a new bucket (amortized O(log H)).
		mid := len(b.keys) / 2
		upper := append([]uint64(nil), b.keys[mid:]...)
		b.keys = b.keys[:mid]
		nb := &bucket{min: upper[0], keys: upper}
		g.buckets[nb.min] = nb
		sh, err := g.sg.Insert(nb.min, origin)
		if err != nil {
			return hops, err
		}
		hops += sh + 1
		h, _ := g.sg.HostOf(nb.min)
		nb.host = h
		g.net.AddStorage(b.host, -len(upper))
		g.net.AddStorage(nb.host, len(upper))
	}
	return hops, nil
}

// Delete routes to the bucket and removes the key. Buckets are not
// merged; an emptied bucket keeps its graph presence (its min key acts as
// a routing separator), matching the paper's amortization.
func (g *Graph) Delete(key uint64, origin sim.HostID) (int, error) {
	bmin, ok, hops := g.sg.Search(key, origin)
	if !ok {
		return hops, fmt.Errorf("bucketskipgraph: key %d not found", key)
	}
	b := g.buckets[bmin]
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	if i >= len(b.keys) || b.keys[i] != key {
		return hops, fmt.Errorf("bucketskipgraph: key %d not found", key)
	}
	b.keys = append(b.keys[:i], b.keys[i+1:]...)
	g.net.AddStorage(b.host, -1)
	return hops + 1, nil
}

func (g *Graph) minBucket() uint64 {
	first := true
	var min uint64
	for k := range g.buckets {
		if first || k < min {
			min, first = k, false
		}
	}
	return min
}

// CheckInvariants verifies bucket ordering and skip-graph consistency.
func (g *Graph) CheckInvariants() error {
	if err := g.sg.CheckInvariants(); err != nil {
		return err
	}
	mins := g.sg.Keys()
	if len(mins) != len(g.buckets) {
		return fmt.Errorf("bucketskipgraph: %d graph keys, %d buckets", len(mins), len(g.buckets))
	}
	for i, m := range mins {
		b, ok := g.buckets[m]
		if !ok {
			return fmt.Errorf("bucketskipgraph: graph key %d has no bucket", m)
		}
		if len(b.keys) > 0 && b.keys[0] != m && b.keys[0] < m {
			return fmt.Errorf("bucketskipgraph: bucket %d starts at %d", m, b.keys[0])
		}
		for j := 1; j < len(b.keys); j++ {
			if b.keys[j] <= b.keys[j-1] {
				return fmt.Errorf("bucketskipgraph: bucket %d keys out of order", m)
			}
		}
		if i+1 < len(mins) && len(b.keys) > 0 && b.keys[len(b.keys)-1] >= mins[i+1] {
			return fmt.Errorf("bucketskipgraph: bucket %d overflows into next bucket", m)
		}
	}
	return nil
}
