package bucketskipgraph

import (
	"math"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func bruteFloor(keys map[uint64]bool, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func TestBuildAndSearch(t *testing.T) {
	rng := xrand.New(1)
	keys := distinctKeys(rng, 1000)
	set := map[uint64]bool{}
	for _, k := range keys {
		set[k] = true
	}
	net := sim.NewNetwork(128)
	g := New(net, 1, 8) // H = 125 buckets of ~8 keys
	if err := g.Build(keys); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1000 {
		t.Fatalf("len %d", g.Len())
	}
	for i := 0; i < 1500; i++ {
		q := rng.Uint64n(1 << 41)
		got, ok, _ := g.Search(q, sim.HostID(rng.Intn(128)))
		want, wok := bruteFloor(set, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("query %d: got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestHopsScaleWithBucketsNotKeys(t *testing.T) {
	// Fixing H and growing n should leave the hop count nearly flat,
	// because routing runs over H buckets.
	rng := xrand.New(2)
	var means []float64
	for _, n := range []int{1000, 4000, 16000} {
		keys := distinctKeys(rng.Split(), n)
		net := sim.NewNetwork(128)
		g := New(net, uint64(n), n/125)
		if err := g.Build(keys); err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 300
		qr := rng.Split()
		for i := 0; i < queries; i++ {
			_, _, hops := g.Search(qr.Uint64n(1<<40), sim.HostID(qr.Intn(128)))
			total += hops
		}
		means = append(means, float64(total)/queries)
	}
	if means[2] > means[0]*1.5 {
		t.Fatalf("hops grow with n at fixed H: %v", means)
	}
}

func TestMemoryProfile(t *testing.T) {
	// Per-host memory is O(n/H + log H).
	rng := xrand.New(3)
	n, H := 4096, 64
	keys := distinctKeys(rng, n)
	net := sim.NewNetwork(H)
	g := New(net, 3, n/H)
	if err := g.Build(keys); err != nil {
		t.Fatal(err)
	}
	s := net.Snapshot()
	bound := 4 * (float64(n)/float64(H) + math.Log2(float64(H)))
	if s.MeanStorage > bound {
		t.Fatalf("mean storage %.1f above O(n/H + log H) ~ %.1f", s.MeanStorage, bound)
	}
}

func TestInsertDeleteChurn(t *testing.T) {
	rng := xrand.New(4)
	keys := distinctKeys(rng, 1200)
	set := map[uint64]bool{}
	for _, k := range keys[:800] {
		set[k] = true
	}
	net := sim.NewNetwork(64)
	g := New(net, 4, 16)
	if err := g.Build(keys[:800]); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys[800:] {
		if _, err := g.Insert(k, sim.HostID(i%64)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		set[k] = true
		if i%80 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 400; i++ {
		if _, err := g.Delete(keys[i], sim.HostID(i%64)); err != nil {
			t.Fatalf("delete %d: %v", keys[i], err)
		}
		delete(set, keys[i])
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	qr := xrand.New(5)
	for i := 0; i < 800; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _ := g.Search(q, sim.HostID(qr.Intn(64)))
		want, wok := bruteFloor(set, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after churn: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestInsertBelowMinimum(t *testing.T) {
	net := sim.NewNetwork(8)
	g := New(net, 5, 4)
	if err := g.Build([]uint64{100, 200, 300, 400, 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert(50, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := g.Search(60, 0)
	if !ok || got != 50 {
		t.Fatalf("Search(60) = %d,%v", got, ok)
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	net := sim.NewNetwork(4)
	g := New(net, 6, 4)
	for i := uint64(1); i <= 30; i++ {
		if _, err := g.Insert(i*10, 0); err != nil {
			t.Fatalf("insert %d: %v", i*10, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := g.Search(155, 0)
	if !ok || got != 150 {
		t.Fatalf("Search(155) = %d,%v", got, ok)
	}
}

func TestDuplicateAndMissing(t *testing.T) {
	net := sim.NewNetwork(4)
	g := New(net, 7, 4)
	if err := g.Build([]uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Insert(20, 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := g.Delete(99, 0); err == nil {
		t.Fatal("missing delete accepted")
	}
}
