package trie

import (
	"testing"
	"testing/quick"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestChurnEqualsRebuildQuick verifies structural canonicity: the trie
// reached by any interleaving of inserts and deletes equals the
// bulk-built trie over the surviving keys (same nodes, same loci) — the
// "unique link structure" property skip-webs require.
func TestChurnEqualsRebuildQuick(t *testing.T) {
	alphabet := "ab"
	f := func(seedRaw uint32, opsRaw []uint8) bool {
		rng := xrand.New(uint64(seedRaw) ^ 0x371e)
		tr := New()
		live := map[string]bool{}
		for range opsRaw {
			l := 1 + rng.Intn(6)
			b := make([]byte, l)
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			k := string(b)
			if live[k] && rng.Bool() {
				if _, err := tr.Delete(k); err != nil {
					return false
				}
				delete(live, k)
			} else if !live[k] {
				if _, err := tr.Insert(k); err != nil {
					return false
				}
				live[k] = true
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		var keys []string
		for k := range live {
			keys = append(keys, k)
		}
		bulk, err := Build(keys)
		if err != nil {
			return false
		}
		if tr.NumNodes() != bulk.NumNodes() {
			return false
		}
		for _, id := range tr.Nodes() {
			bid, ok := bulk.NodeByLocus(tr.Locus(id))
			if !ok {
				return false
			}
			if bulk.IsKey(bid) != tr.IsKey(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetLociQuick verifies the anchor premise: every locus of a trie
// over a subset exists in the trie over the superset.
func TestSubsetLociQuick(t *testing.T) {
	f := func(seedRaw uint32) bool {
		rng := xrand.New(uint64(seedRaw) ^ 0x88a)
		n := 8 + rng.Intn(150)
		keys := randKeys(rng, n, 1, 10, "abc")
		full, err := Build(keys)
		if err != nil {
			return false
		}
		var half []string
		for _, k := range keys {
			if rng.Bool() {
				half = append(half, k)
			}
		}
		sub, err := Build(half)
		if err != nil {
			return false
		}
		for _, id := range sub.Nodes() {
			if _, ok := full.NodeByLocus(sub.Locus(id)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
