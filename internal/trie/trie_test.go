package trie

import (
	"sort"
	"strings"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func randKeys(rng *xrand.Rand, n, minLen, maxLen int, alphabet string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		l := minLen + rng.Intn(maxLen-minLen+1)
		var b strings.Builder
		for i := 0; i < l; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		s := b.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestEmptyTrie(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.NumNodes() != 1 {
		t.Fatal("empty trie malformed")
	}
	if tr.Contains("x") {
		t.Fatal("phantom key")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.KeysWithPrefix("a", 0); len(got) != 0 {
		t.Fatalf("prefix query on empty returned %v", got)
	}
}

func TestInsertContains(t *testing.T) {
	tr := New()
	keys := []string{"cat", "car", "cart", "dog", "do", "done", "c"}
	for _, k := range keys {
		if _, err := tr.Insert(k); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("len %d", tr.Len())
	}
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Fatalf("missing %q", k)
		}
	}
	for _, k := range []string{"ca", "cats", "d", "doner", "x", "care"} {
		if tr.Contains(k) {
			t.Fatalf("phantom %q", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejects(t *testing.T) {
	tr := New()
	if _, err := tr.Insert(""); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := tr.Insert("abc"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert("abc"); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestBuildMatchesInserts(t *testing.T) {
	rng := xrand.New(1)
	keys := randKeys(rng, 500, 1, 12, "abcd")
	tr, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("len %d", tr.Len())
	}
	got := tr.Keys()
	want := append([]string(nil), keys...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %q want %q", i, got[i], want[i])
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	if _, err := Build([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicates accepted")
	}
}

func TestKeysWithPrefix(t *testing.T) {
	tr, err := Build([]string{"shell", "she", "shore", "ship", "apple", "s"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    string
		want []string
	}{
		{"sh", []string{"she", "shell", "ship", "shore"}},
		{"she", []string{"she", "shell"}},
		{"shel", []string{"shell"}},
		{"shells", nil},
		{"", []string{"apple", "s", "she", "shell", "ship", "shore"}},
		{"a", []string{"apple"}},
		{"z", nil},
		{"s", []string{"s", "she", "shell", "ship", "shore"}},
	}
	for _, c := range cases {
		got := tr.KeysWithPrefix(c.p, 0)
		if len(got) != len(c.want) {
			t.Fatalf("prefix %q: got %v want %v", c.p, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("prefix %q: got %v want %v", c.p, got, c.want)
			}
		}
	}
	// Max limiting.
	if got := tr.KeysWithPrefix("sh", 2); len(got) != 2 {
		t.Fatalf("max-limited returned %v", got)
	}
}

func TestDelete(t *testing.T) {
	rng := xrand.New(2)
	keys := randKeys(rng, 300, 1, 10, "ab")
	tr, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(keys))
	for i, pi := range perm {
		if _, err := tr.Delete(keys[pi]); err != nil {
			t.Fatalf("delete %d %q: %v", i, keys[pi], err)
		}
		if tr.Contains(keys[pi]) {
			t.Fatalf("key %q survives delete", keys[pi])
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.NumNodes() != 1 {
		t.Fatalf("trie not drained: len=%d nodes=%d", tr.Len(), tr.NumNodes())
	}
	if _, err := tr.Delete("a"); err == nil {
		t.Fatal("delete of absent key succeeded")
	}
}

func TestDeletePrefixKeyKeepsDescendants(t *testing.T) {
	tr, _ := Build([]string{"do", "dog", "dogs"})
	if _, err := tr.Delete("dog"); err != nil {
		t.Fatal(err)
	}
	if !tr.Contains("do") || !tr.Contains("dogs") || tr.Contains("dog") {
		t.Fatal("wrong keys after deleting middle prefix")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteMixOracle(t *testing.T) {
	rng := xrand.New(3)
	tr := New()
	oracle := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := randKeys(rng, 1, 1, 6, "abc")[0]
		switch {
		case !oracle[k]:
			if _, err := tr.Insert(k); err != nil {
				t.Fatalf("op %d insert %q: %v", i, k, err)
			}
			oracle[k] = true
		case rng.Bool():
			if _, err := tr.Delete(k); err != nil {
				t.Fatalf("op %d delete %q: %v", i, k, err)
			}
			delete(oracle, k)
		default:
			if !tr.Contains(k) {
				t.Fatalf("op %d: %q missing", i, k)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("len %d oracle %d", tr.Len(), len(oracle))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocateSemantics(t *testing.T) {
	tr, _ := Build([]string{"abcde", "abcxy", "q"})
	// Deepest node with locus a prefix of the query.
	id, _ := tr.Locate("abcdz")
	if got := tr.Locus(id); got != "abc" {
		t.Fatalf("Locate(abcdz) locus %q, want abc", got)
	}
	id, _ = tr.Locate("abcde")
	if got := tr.Locus(id); got != "abcde" {
		t.Fatalf("Locate(abcde) locus %q", got)
	}
	id, _ = tr.Locate("zzz")
	if got := tr.Locus(id); got != "" {
		t.Fatalf("Locate(zzz) locus %q, want root", got)
	}
}

func TestDepthLinearForSharedPrefixes(t *testing.T) {
	// Keys a, aa, aaa, ... force a path-shaped trie of depth n.
	var keys []string
	for i := 1; i <= 64; i++ {
		keys = append(keys, strings.Repeat("a", i))
	}
	tr, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d != 64 {
		t.Fatalf("depth %d, want 64", d)
	}
}

func TestConflictsMatchBruteForce(t *testing.T) {
	rng := xrand.New(4)
	keys := randKeys(rng, 120, 1, 8, "ab")
	tr, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	var all []NodeID
	var walk func(NodeID)
	walk = func(id NodeID) {
		all = append(all, id)
		for _, c := range tr.Children(id) {
			walk(c)
		}
	}
	walk(tr.Root())
	for _, id := range all {
		locus := tr.Locus(id)
		got := map[NodeID]bool{}
		for _, x := range tr.Conflicts(locus) {
			got[x] = true
		}
		for _, other := range all {
			want := LociNested(locus, tr.Locus(other))
			if got[other] != want {
				t.Fatalf("conflicts(%q) vs node %q: got %v want %v",
					locus, tr.Locus(other), got[other], want)
			}
		}
	}
}

func TestHalvingConflictConstant(t *testing.T) {
	// Lemma 4 smoke test: terminal-locus conflicts of D(T) against D(S)
	// stay small for a random half T.
	rng := xrand.New(5)
	keys := randKeys(rng, 2000, 4, 16, "acgt")
	full, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	var half []string
	for _, k := range keys {
		if rng.Bool() {
			half = append(half, k)
		}
	}
	sub, err := Build(half)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		q := randKeys(rng, 1, 4, 16, "acgt")[0]
		id, _ := sub.Locate(q)
		total += len(full.Conflicts(sub.Locus(id)))
	}
	if mean := float64(total) / trials; mean > 80 {
		t.Fatalf("mean conflicts %.1f too large", mean)
	}
}

func TestLocateFromSteps(t *testing.T) {
	tr, _ := Build([]string{"aaaa", "aaab", "aabb", "abbb"})
	root := tr.Root()
	id, steps := tr.LocateFrom(root, "aaab")
	if tr.Locus(id) != "aaab" {
		t.Fatalf("landed at %q", tr.Locus(id))
	}
	if steps < 2 {
		t.Fatalf("steps = %d, want >= 2", steps)
	}
}

func TestRenderSmoke(t *testing.T) {
	tr, _ := Build([]string{"ab", "ac"})
	if out := tr.Render(); !strings.Contains(out, `"ab" *`) {
		t.Fatalf("render missing key marker:\n%s", out)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := xrand.New(1)
	keys := randKeys(rng, 100000, 4, 20, "abcdefgh")
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		if i%len(keys) == 0 && i > 0 {
			tr = New()
		}
		_, _ = tr.Insert(keys[i%len(keys)])
	}
}

func BenchmarkLocate(b *testing.B) {
	rng := xrand.New(1)
	keys := randKeys(rng, 10000, 4, 20, "abcdefgh")
	tr, err := Build(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Locate(keys[i%len(keys)])
	}
}
