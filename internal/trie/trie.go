// Package trie implements compressed digital tries (Patricia tries) over
// fixed alphabets, the range-determined link structure of Section 3.2 of
// the skip-webs paper.
//
// Each node is identified by its locus: the string spelled by the path
// from the root. The range of a node, for skip-web purposes, is the set of
// strings extending its locus; the range of a link is the set of strings
// extending the parent locus by a prefix of the edge label. Two loci are
// either nested (one a prefix of the other) or disjoint, the same
// algebra as dyadic quadtree cells, so conflict lists are ancestor chains
// plus contained subtrees.
//
// A compressed trie has O(n) nodes for n keys but can have depth Θ(n) for
// keys sharing long common prefixes — the adversarial regime in which the
// skip-web O(log n) routing bound is interesting.
package trie

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one Trie. NoNode means "none".
type NodeID int32

// NoNode is the sentinel NodeID.
const NoNode NodeID = -1

// Trie is a compressed digital trie. The zero value is not usable;
// construct with New or Build. The root always exists and has locus "".
type Trie struct {
	nodes   []node
	free    []NodeID
	root    NodeID
	n       int // number of keys
	byLocus map[string]NodeID
}

type node struct {
	locus    string
	parent   NodeID
	children []NodeID // sorted by first byte of child locus beyond this locus
	isKey    bool
	dead     bool
}

// New creates an empty trie.
func New() *Trie {
	t := &Trie{root: 0, byLocus: make(map[string]NodeID)}
	t.nodes = append(t.nodes, node{locus: "", parent: NoNode})
	t.byLocus[""] = 0
	return t
}

// NodeByLocus returns the live node at exactly the given locus, if any.
// When T is a subset of S, every locus of D(T) (a key or a branching
// point of T) is also a locus of D(S), which is what skip-web anchors
// rely on.
func (t *Trie) NodeByLocus(locus string) (NodeID, bool) {
	id, ok := t.byLocus[locus]
	return id, ok
}

// StepToward returns the child of id on the path toward string s, or
// NoNode if the walk terminates at id. It is the single-hop descent
// primitive used by distributed routing.
func (t *Trie) StepToward(id NodeID, s string) NodeID {
	next := t.childToward(id, s)
	if next == NoNode || !strings.HasPrefix(s, t.nodes[next].locus) {
		return NoNode
	}
	return next
}

// Build creates a compressed trie over the given keys. Keys must be
// distinct and non-empty. The built trie is independent of input order
// (keys are sorted first).
func Build(keys []string) (*Trie, error) {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	return buildFromSorted(sorted)
}

// BuildSorted creates a compressed trie over keys already in ascending
// lexicographic order — the bulk-load path, which skips Build's sort and
// defensive copy. Unsorted input is rejected; the resulting trie is
// identical to Build's on the same key set.
func BuildSorted(keys []string) (*Trie, error) {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("trie: keys not sorted at %d", i)
		}
	}
	return buildFromSorted(keys)
}

// buildFromSorted inserts the sorted keys in order, rejecting empties
// and duplicates.
func buildFromSorted(sorted []string) (*Trie, error) {
	t := New()
	for i, k := range sorted {
		if k == "" {
			return nil, fmt.Errorf("trie: empty key")
		}
		if i > 0 && sorted[i-1] == k {
			return nil, fmt.Errorf("trie: duplicate key %q", k)
		}
	}
	for _, k := range sorted {
		if _, err := t.Insert(k); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of keys stored.
func (t *Trie) Len() int { return t.n }

// Root returns the root node (locus "").
func (t *Trie) Root() NodeID { return t.root }

// NumNodes returns the number of live nodes, including the root.
func (t *Trie) NumNodes() int {
	c := 0
	for i := range t.nodes {
		if !t.nodes[i].dead {
			c++
		}
	}
	return c
}

// Locus returns the path string of node id.
func (t *Trie) Locus(id NodeID) string { return t.nodes[id].locus }

// Nodes returns the IDs of all live nodes, including the root.
func (t *Trie) Nodes() []NodeID {
	out := make([]NodeID, 0, len(t.nodes))
	t.VisitNodes(func(id NodeID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// VisitNodes calls visit for every live node ID (in slot order) until
// visit returns false. It performs no allocation.
func (t *Trie) VisitNodes(visit func(NodeID) bool) {
	for i := range t.nodes {
		if !t.nodes[i].dead && !visit(NodeID(i)) {
			return
		}
	}
}

// Parent returns the parent of id, or NoNode for the root.
func (t *Trie) Parent(id NodeID) NodeID { return t.nodes[id].parent }

// IsKey reports whether id's locus is one of the stored keys.
func (t *Trie) IsKey(id NodeID) bool { return t.nodes[id].isKey }

// Children returns the child node IDs of id.
func (t *Trie) Children(id NodeID) []NodeID {
	return append([]NodeID(nil), t.nodes[id].children...)
}

// childToward returns the child of id whose locus starts with
// locus(id) + next byte of s, or NoNode.
func (t *Trie) childToward(id NodeID, s string) NodeID {
	n := &t.nodes[id]
	if len(s) <= len(n.locus) {
		return NoNode
	}
	b := s[len(n.locus)]
	for _, c := range n.children {
		cl := t.nodes[c].locus
		if cl[len(n.locus)] == b {
			return c
		}
	}
	return NoNode
}

// Locate returns the deepest node whose locus is a prefix of s, along with
// the number of child steps taken. This is the terminal range of a trie
// search: the paper's "first place where a query substring differs from
// the string associated with a link".
func (t *Trie) Locate(s string) (NodeID, int) {
	return t.LocateFrom(t.root, s)
}

// LocateFrom walks down from start (whose locus must be a prefix of s) and
// returns the deepest node whose locus is a prefix of s plus the number of
// steps taken.
func (t *Trie) LocateFrom(start NodeID, s string) (NodeID, int) {
	cur := start
	steps := 0
	for {
		next := t.childToward(cur, s)
		if next == NoNode || !strings.HasPrefix(s, t.nodes[next].locus) {
			return cur, steps
		}
		cur = next
		steps++
	}
}

// LocatePrefix returns the topmost node whose subtree holds exactly the
// keys with prefix p, and whether any such key can exist. When ok is
// false, the returned node is the deepest node whose locus is a prefix of
// p (where a search for p terminates).
func (t *Trie) LocatePrefix(p string) (NodeID, bool) {
	id, _ := t.Locate(p)
	if strings.HasPrefix(t.nodes[id].locus, p) {
		// Locate guarantees locus(id) is a prefix of p, so here they are
		// equal and the subtree of id is exactly the p-prefixed keys.
		return id, true
	}
	// p may end inside the compressed edge to one child.
	next := t.childToward(id, p)
	if next != NoNode && strings.HasPrefix(t.nodes[next].locus, p) {
		return next, true
	}
	return id, false
}

// Contains reports whether key s is stored.
func (t *Trie) Contains(s string) bool {
	id, _ := t.Locate(s)
	return t.nodes[id].isKey && t.nodes[id].locus == s
}

// KeysWithPrefix returns all stored keys having prefix p, in sorted order,
// up to max (max <= 0 means unlimited).
func (t *Trie) KeysWithPrefix(p string, max int) []string {
	id, ok := t.LocatePrefix(p)
	if !ok {
		return nil
	}
	var out []string
	var rec func(NodeID) bool
	rec = func(n NodeID) bool {
		if max > 0 && len(out) >= max {
			return false
		}
		nd := &t.nodes[n]
		if nd.isKey {
			out = append(out, nd.locus)
		}
		for _, c := range nd.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(id)
	sort.Strings(out)
	return out
}

// LocusContains reports whether the range of node a (all strings extending
// locus(a)) contains string s.
func (t *Trie) LocusContains(id NodeID, s string) bool {
	return strings.HasPrefix(s, t.nodes[id].locus)
}

// LociNested reports whether the ranges of loci a and b intersect: for
// prefix ranges that happens exactly when one is a prefix of the other.
func LociNested(a, b string) bool {
	return strings.HasPrefix(a, b) || strings.HasPrefix(b, a)
}

// LocateLocus returns the deepest node whose locus is a prefix of the
// given locus — the anchor computation for skip-web hyperlinks.
func (t *Trie) LocateLocus(locus string) NodeID {
	id, _ := t.Locate(locus)
	return id
}

// Conflicts returns the nodes of t whose ranges intersect the prefix range
// of locus: its ancestors-or-equal plus all nodes extending it (Lemma 4's
// conflict list, at node granularity).
func (t *Trie) Conflicts(locus string) []NodeID {
	var out []NodeID
	cur := t.root
	for {
		n := &t.nodes[cur]
		if strings.HasPrefix(locus, n.locus) && len(n.locus) < len(locus) {
			out = append(out, cur) // proper ancestor
			next := t.childToward(cur, locus)
			if next == NoNode {
				return out
			}
			nl := t.nodes[next].locus
			if strings.HasPrefix(locus, nl) {
				cur = next
				continue
			}
			if strings.HasPrefix(nl, locus) {
				out = t.collectSubtree(next, out)
			}
			return out
		}
		if strings.HasPrefix(n.locus, locus) {
			// cur and its whole subtree extend locus.
			out = t.collectSubtree(cur, out)
			return out
		}
		return out
	}
}

func (t *Trie) collectSubtree(id NodeID, out []NodeID) []NodeID {
	out = append(out, id)
	for _, c := range t.nodes[id].children {
		out = t.collectSubtree(c, out)
	}
	return out
}

// InsertResult describes the O(1) structural change made by Insert.
type InsertResult struct {
	Leaf    NodeID   // node now holding the key (new or pre-existing locus)
	Created []NodeID // nodes created by the insert (possibly empty)
	Parent  NodeID   // the pre-existing node the insertion hung off
}

// Insert adds key s. It returns an error for empty or duplicate keys.
func (t *Trie) Insert(s string) (InsertResult, error) {
	if s == "" {
		return InsertResult{}, fmt.Errorf("trie: empty key")
	}
	id, _ := t.Locate(s)
	n := &t.nodes[id]
	if n.locus == s {
		if n.isKey {
			return InsertResult{}, fmt.Errorf("trie: duplicate key %q", s)
		}
		n.isKey = true
		t.n++
		return InsertResult{Leaf: id, Parent: t.nodes[id].parent}, nil
	}
	// id's locus is the longest stored prefix of s. Check whether s
	// diverges inside an existing edge.
	next := t.childToward(id, s)
	if next == NoNode {
		leaf := t.newNode(s, id, true)
		t.attachChild(id, leaf)
		t.n++
		return InsertResult{Leaf: leaf, Created: []NodeID{leaf}, Parent: id}, nil
	}
	// Split the edge id->next at the divergence point.
	nl := t.nodes[next].locus
	base := len(t.nodes[id].locus)
	i := base
	for i < len(s) && i < len(nl) && s[i] == nl[i] {
		i++
	}
	midLocus := s[:i]
	mid := t.newNode(midLocus, id, false)
	t.detachChild(id, next)
	t.attachChild(id, mid)
	t.nodes[next].parent = mid
	t.attachChild(mid, next)
	created := []NodeID{mid}
	var leaf NodeID
	if i == len(s) {
		// s is exactly the divergence point: mid is the key node.
		t.nodes[mid].isKey = true
		leaf = mid
	} else {
		leaf = t.newNode(s, mid, true)
		t.attachChild(mid, leaf)
		created = append(created, leaf)
	}
	t.n++
	return InsertResult{Leaf: leaf, Created: created, Parent: id}, nil
}

// DeleteResult describes the O(1) structural change made by Delete.
type DeleteResult struct {
	// Removed lists destroyed nodes (possibly the key node and a
	// compressed-away parent). Empty when the key node survives as a
	// branching point.
	Removed []NodeID
	// Survivor is the lowest live ancestor covering the removed loci;
	// references anchored at removed nodes should be redirected here. It
	// is the root for top-level removals and NoNode when nothing was
	// removed.
	Survivor NodeID
}

// Delete removes key s. The root is never removed.
func (t *Trie) Delete(s string) (DeleteResult, error) {
	id, _ := t.Locate(s)
	n := &t.nodes[id]
	if n.locus != s || !n.isKey {
		return DeleteResult{}, fmt.Errorf("trie: key %q not found", s)
	}
	n.isKey = false
	t.n--
	res := DeleteResult{Survivor: NoNode}
	// Remove the node if it no longer serves a purpose, then possibly
	// compress its parent.
	t.pruneUp(id, &res)
	return res, nil
}

// pruneUp removes id if it is a non-key, non-root node with < 2 children,
// then recurses into the parent.
func (t *Trie) pruneUp(id NodeID, res *DeleteResult) {
	n := &t.nodes[id]
	if id == t.root || n.isKey || n.dead {
		return
	}
	switch len(n.children) {
	case 0:
		parent := n.parent
		t.detachChild(parent, id)
		t.killNode(id)
		res.Removed = append(res.Removed, id)
		res.Survivor = parent
		t.pruneUp(parent, res)
	case 1:
		// Compress: splice the single child up to the parent.
		parent := n.parent
		only := n.children[0]
		t.detachChild(parent, id)
		t.nodes[only].parent = parent
		t.attachChild(parent, only)
		t.killNode(id)
		t.nodes[id].children = nil
		res.Removed = append(res.Removed, id)
		res.Survivor = parent
	}
}

func (t *Trie) newNode(locus string, parent NodeID, isKey bool) NodeID {
	n := node{locus: locus, parent: parent, isKey: isKey}
	var id NodeID
	if len(t.free) > 0 {
		id = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[id] = n
	} else {
		t.nodes = append(t.nodes, n)
		id = NodeID(len(t.nodes) - 1)
	}
	t.byLocus[locus] = id
	return id
}

// killNode marks a node dead and releases its slot and locus index entry.
func (t *Trie) killNode(id NodeID) {
	delete(t.byLocus, t.nodes[id].locus)
	t.nodes[id].dead = true
	t.free = append(t.free, id)
}

func (t *Trie) attachChild(parent, child NodeID) {
	p := &t.nodes[parent]
	b := t.nodes[child].locus[len(p.locus)]
	i := sort.Search(len(p.children), func(i int) bool {
		return t.nodes[p.children[i]].locus[len(p.locus)] >= b
	})
	p.children = append(p.children, 0)
	copy(p.children[i+1:], p.children[i:])
	p.children[i] = child
}

func (t *Trie) detachChild(parent, child NodeID) {
	p := &t.nodes[parent]
	for i, c := range p.children {
		if c == child {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("trie: detach of non-child %d from %d", child, parent))
}

// Keys returns all stored keys in sorted order.
func (t *Trie) Keys() []string {
	var out []string
	var rec func(NodeID)
	rec = func(id NodeID) {
		n := &t.nodes[id]
		if n.isKey {
			out = append(out, n.locus)
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	sort.Strings(out)
	return out
}

// Depth returns the maximum node depth in edges (root = 0).
func (t *Trie) Depth() int {
	var rec func(NodeID) int
	rec = func(id NodeID) int {
		max := 0
		for _, c := range t.nodes[id].children {
			if d := rec(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return rec(t.root) - 1
}

// CheckInvariants verifies Patricia-trie structure: loci strictly extend
// parent loci, non-root non-key nodes have >= 2 children, children sorted
// and unique on first byte, key count matches. It returns the first
// violation found.
func (t *Trie) CheckInvariants() error {
	keyCount := 0
	var rec func(NodeID) error
	rec = func(id NodeID) error {
		n := &t.nodes[id]
		if n.dead {
			return fmt.Errorf("trie: dead node %d reachable", id)
		}
		if n.isKey {
			keyCount++
		}
		if id != t.root && !n.isKey && len(n.children) < 2 {
			return fmt.Errorf("trie: non-key node %d (%q) has %d children (compression violated)", id, n.locus, len(n.children))
		}
		var prevByte int = -1
		for _, c := range n.children {
			cn := &t.nodes[c]
			if cn.parent != id {
				return fmt.Errorf("trie: node %d child %d has parent %d", id, c, cn.parent)
			}
			if !strings.HasPrefix(cn.locus, n.locus) || len(cn.locus) <= len(n.locus) {
				return fmt.Errorf("trie: child locus %q does not extend %q", cn.locus, n.locus)
			}
			b := int(cn.locus[len(n.locus)])
			if b <= prevByte {
				return fmt.Errorf("trie: node %d children out of order/duplicate at byte %d", id, b)
			}
			prevByte = b
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	if keyCount != t.n {
		return fmt.Errorf("trie: key count %d != recorded %d", keyCount, t.n)
	}
	return nil
}

// Render draws the trie for small inputs.
func (t *Trie) Render() string {
	var b strings.Builder
	var rec func(NodeID, int)
	rec = func(id NodeID, depth int) {
		n := &t.nodes[id]
		marker := ""
		if n.isKey {
			marker = " *"
		}
		fmt.Fprintf(&b, "%s%q%s\n", strings.Repeat("  ", depth), n.locus, marker)
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(t.root, 0)
	return b.String()
}
