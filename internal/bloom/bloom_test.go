package bloom

import (
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func mix(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestNoFalseNegatives is the correctness contract: every added key
// answers Maybe — the negative filter must never hide a stored key.
func TestNoFalseNegatives(t *testing.T) {
	f := New(10_000)
	rng := xrand.New(1)
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(mix(keys[i]))
	}
	for i, k := range keys {
		if !f.Maybe(mix(k)) {
			t.Fatalf("false negative for key %d (index %d)", k, i)
		}
	}
}

// TestFalsePositiveRateBound checks the sizing contract: at build size
// the false-positive rate stays under 1%, and after the key count
// doubles through inserts it stays under 4% — the filter degrades
// gracefully, never incorrectly.
func TestFalsePositiveRateBound(t *testing.T) {
	const n, probes = 10_000, 200_000
	f := New(n)
	rng := xrand.New(2)
	present := make(map[uint64]bool, 2*n)
	for len(present) < n {
		k := rng.Uint64()
		present[k] = true
		f.Add(mix(k))
	}
	rate := func() float64 {
		fp := 0
		prng := xrand.New(3)
		for i := 0; i < probes; i++ {
			k := prng.Uint64()
			if present[k] {
				continue
			}
			if f.Maybe(mix(k)) {
				fp++
			}
		}
		return float64(fp) / probes
	}
	if r := rate(); r >= 0.01 {
		t.Errorf("FPR at build size = %.4f, want < 0.01", r)
	}
	for len(present) < 2*n {
		k := rng.Uint64()
		if !present[k] {
			present[k] = true
			f.Add(mix(k))
		}
	}
	if r := rate(); r >= 0.04 {
		t.Errorf("FPR at 2x build size = %.4f, want < 0.04", r)
	}
}

// TestConcurrentAddMaybe races adders against readers under the race
// detector; added keys must answer Maybe once their Add returned.
func TestConcurrentAddMaybe(t *testing.T) {
	f := New(4096)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(10 + g))
			for i := 0; i < 2000; i++ {
				k := mix(rng.Uint64())
				f.Add(k)
				if !f.Maybe(k) {
					t.Errorf("goroutine %d: key vanished after Add", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
