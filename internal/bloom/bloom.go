// Package bloom provides a concurrency-safe bloom filter used as the
// negative-lookup filter of the skip-web read path: a set of stored-key
// hashes that answers "definitely absent" or "maybe present" with no
// false negatives. Filters are consulted lock-free at the query's origin
// host — a true negative costs zero messages — and are maintained with
// superset semantics: Add on insert, no removal on delete, so a stale
// entry can only cause a full (correct) descent, never a wrong answer.
package bloom

import (
	"math/bits"
	"sync/atomic"
)

// hashes is the number of derived bit positions per key (double
// hashing). With bitsPerKey bits of capacity per expected key, the
// false-positive rate at build size is ~0.1% and stays under ~2% even
// after the key count doubles through inserts.
const (
	hashes     = 5
	bitsPerKey = 16
	minBits    = 1024
)

// Filter is a fixed-size bloom filter over pre-mixed 64-bit key hashes.
// Add and Maybe are safe for concurrent use (atomic word access): a
// Maybe racing an Add of the same key may answer either way, which
// linearizes the query before or after the insert — both valid. Maybe
// never returns false for a key whose Add completed before the call.
type Filter struct {
	words []atomic.Uint64
	mask  uint64 // bit-count - 1 (bit count is a power of two)
}

// New sizes a filter for roughly n expected keys (n <= 0 is treated as
// the minimum size). Capacity is fixed at creation; exceeding it only
// raises the false-positive rate, never breaks correctness.
func New(n int) *Filter {
	if n < 1 {
		n = 1
	}
	need := uint64(n) * bitsPerKey
	if need < minBits {
		need = minBits
	}
	nbits := uint64(1) << bits.Len64(need-1) // next power of two
	return &Filter{words: make([]atomic.Uint64, nbits/64), mask: nbits - 1}
}

// Bits returns the filter's bit capacity.
func (f *Filter) Bits() int { return len(f.words) * 64 }

// Add marks the key hash h as present.
func (f *Filter) Add(h uint64) {
	h1, h2 := split(h)
	for i := 0; i < hashes; i++ {
		b := (h1 + uint64(i)*h2) & f.mask
		w := &f.words[b>>6]
		m := uint64(1) << (b & 63)
		for {
			old := w.Load()
			if old&m != 0 || w.CompareAndSwap(old, old|m) {
				break
			}
		}
	}
}

// Maybe reports whether the key hash h may be present. False means the
// key was definitely never added.
func (f *Filter) Maybe(h uint64) bool {
	h1, h2 := split(h)
	for i := 0; i < hashes; i++ {
		b := (h1 + uint64(i)*h2) & f.mask
		if f.words[b>>6].Load()&(uint64(1)<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// split derives the two double-hashing streams from one 64-bit hash via
// a SplitMix64 finalizer round; h2 is forced odd so the probe sequence
// visits distinct bits.
func split(h uint64) (uint64, uint64) {
	z := h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return h, z | 1
}
