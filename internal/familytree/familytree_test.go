package familytree

import (
	"math"
	"testing"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func bruteFloor(keys []uint64, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for _, k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func TestBuildInvariants(t *testing.T) {
	rng := xrand.New(1)
	net := sim.NewNetwork(512)
	tr := New(net, 1)
	if err := tr.Build(distinctKeys(rng, 512)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := xrand.New(2)
	keys := distinctKeys(rng, 400)
	net := sim.NewNetwork(400)
	tr := New(net, 2)
	if err := tr.Build(keys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		q := rng.Uint64n(1 << 41)
		got, ok, _ := tr.Search(q, sim.HostID(rng.Intn(400)))
		want, wok := bruteFloor(keys, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("query %d: got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestSearchHopsLogarithmic(t *testing.T) {
	rng := xrand.New(3)
	var ratios []float64
	for _, n := range []int{512, 2048, 8192} {
		keys := distinctKeys(rng.Split(), n)
		net := sim.NewNetwork(n)
		tr := New(net, uint64(n))
		if err := tr.Build(keys); err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 300
		qr := rng.Split()
		for i := 0; i < queries; i++ {
			_, _, hops := tr.Search(qr.Uint64n(1<<40), sim.HostID(qr.Intn(n)))
			total += hops
		}
		ratios = append(ratios, float64(total)/queries/math.Log2(float64(n)))
	}
	if ratios[2] > ratios[0]*1.6 {
		t.Fatalf("hops grow faster than log n: %v", ratios)
	}
}

func TestConstantMemoryPerHost(t *testing.T) {
	rng := xrand.New(4)
	for _, n := range []int{512, 4096} {
		net := sim.NewNetwork(n)
		tr := New(net, uint64(n))
		if err := tr.Build(distinctKeys(rng.Split(), n)); err != nil {
			t.Fatal(err)
		}
		s := net.Snapshot()
		if s.MaxStorage != storageUnits {
			t.Fatalf("n=%d: max storage %d, want constant %d", n, s.MaxStorage, storageUnits)
		}
	}
}

func TestInsertDeleteChurn(t *testing.T) {
	rng := xrand.New(5)
	keys := distinctKeys(rng, 600)
	net := sim.NewNetwork(1024)
	tr := New(net, 5)
	if err := tr.Build(keys[:300]); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys[300:] {
		if _, err := tr.Insert(k, sim.HostID(i%300)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if i%60 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 300; i += 2 {
		if _, err := tr.Delete(keys[i], sim.HostID(i%256)); err != nil {
			t.Fatalf("delete %d: %v", keys[i], err)
		}
		if i%60 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var live []uint64
	for i := 1; i < 300; i += 2 {
		live = append(live, keys[i])
	}
	live = append(live, keys[300:]...)
	qr := xrand.New(6)
	for i := 0; i < 600; i++ {
		q := qr.Uint64n(1 << 41)
		got, ok, _ := tr.Search(q, sim.HostID(qr.Intn(600)))
		want, wok := bruteFloor(live, q)
		if ok != wok || (ok && got != want) {
			t.Fatalf("after churn: query %d got %d,%v want %d,%v", q, got, ok, want, wok)
		}
	}
}

func TestDepthLogarithmic(t *testing.T) {
	rng := xrand.New(7)
	net := sim.NewNetwork(8192)
	tr := New(net, 7)
	if err := tr.Build(distinctKeys(rng, 8192)); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d < 13 || d > 60 {
		t.Fatalf("depth %d for n=8192", d)
	}
}

func TestDuplicatesAndMissing(t *testing.T) {
	net := sim.NewNetwork(4)
	tr := New(net, 8)
	if err := tr.Build([]uint64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(10, 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := tr.Delete(99, 0); err == nil {
		t.Fatal("missing delete accepted")
	}
	if err := tr.Build([]uint64{10}); err == nil {
		t.Fatal("duplicate build accepted")
	}
}

func TestDrainToEmpty(t *testing.T) {
	rng := xrand.New(9)
	keys := distinctKeys(rng, 64)
	net := sim.NewNetwork(64)
	tr := New(net, 9)
	if err := tr.Build(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, err := tr.Delete(k, 0); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d after drain", tr.Len())
	}
	if _, ok, _ := tr.Search(5, 0); ok {
		t.Fatal("search on empty returned ok")
	}
	if _, err := tr.Insert(42, 0); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := tr.Search(42, 0); !ok || got != 42 {
		t.Fatal("reuse after drain failed")
	}
}
