// Package familytree implements a constant-degree distributed ordered
// dictionary standing in for the family trees of Zatloukal and Harvey
// (SODA 2004), the O(1)-memory row of Table 1 in the skip-webs paper.
//
// Substitution note (see DESIGN.md): the full family-tree construction is
// replaced by a randomized treap overlay with finger search. Each key
// lives on its own host and stores O(1) state: parent, two children, and
// its subtree's key interval. Searches start at the originating host's
// own node, climb while the target lies outside the local subtree
// interval, and descend — expected O(log n) messages. Inserts and deletes
// are treap rotations, expected O(log n) messages. This reproduces the
// (H, M, C, Q, U) = (n, O(1), O(log n), Õ(log n), Õ(log n)) profile the
// paper quotes for family trees, which is all Table 1 compares.
package familytree

import (
	"fmt"
	"sort"

	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Tree is the constant-degree overlay. The zero value is not usable;
// construct with New.
type Tree struct {
	net   *sim.Network
	rng   *xrand.Rand
	nodes map[uint64]*tnode
	keys  []uint64 // sorted, for deterministic origin sampling
	root  *tnode
	seq   int
}

type tnode struct {
	key      uint64
	prio     uint64
	host     sim.HostID
	parent   *tnode
	left     *tnode
	right    *tnode
	min, max uint64 // subtree key interval, maintained under rotations
}

// storageUnits is the O(1) per-host footprint: key, priority, 3 pointers,
// 2 interval bounds.
const storageUnits = 7

// New creates an empty overlay on net's hosts.
func New(net *sim.Network, seed uint64) *Tree {
	// The seed is salted so that a caller seeding its workload generator
	// identically cannot correlate keys with treap priorities.
	return &Tree{net: net, rng: xrand.New(seed ^ 0xfa317a5), nodes: make(map[uint64]*tnode)}
}

// Len returns the number of keys.
func (t *Tree) Len() int { return len(t.nodes) }

func (t *Tree) nextHost() sim.HostID {
	h := sim.HostID(t.seq % t.net.Hosts())
	t.seq++
	return h
}

// Build constructs the overlay over keys without routing messages.
func (t *Tree) Build(keys []uint64) error {
	for _, k := range keys {
		if _, ok := t.nodes[k]; ok {
			return fmt.Errorf("familytree: duplicate key %d", k)
		}
		n := &tnode{key: k, prio: t.rng.Uint64(), host: t.nextHost(), min: k, max: k}
		t.nodes[k] = n
		t.addKey(k)
		t.net.AddStorage(n.host, storageUnits)
		t.bstInsert(n, nil)
	}
	return nil
}

// originFor picks the node whose search begins at the given host.
func (t *Tree) originFor(origin sim.HostID) *tnode {
	if len(t.keys) == 0 {
		return nil
	}
	return t.nodes[t.keys[int(origin)%len(t.keys)]]
}

func (t *Tree) addKey(k uint64) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
	t.keys = append(t.keys, 0)
	copy(t.keys[i+1:], t.keys[i:])
	t.keys[i] = k
}

func (t *Tree) dropKey(k uint64) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
	if i < len(t.keys) && t.keys[i] == k {
		t.keys = append(t.keys[:i], t.keys[i+1:]...)
	}
}

// Search performs a floor query from the originating host's node: climb
// while the target is outside the current subtree interval, then descend.
func (t *Tree) Search(target uint64, origin sim.HostID) (uint64, bool, int) {
	start := t.originFor(origin)
	if start == nil {
		return 0, false, 0
	}
	op := t.net.NewOp(start.host)
	defer op.Free()
	cur := start
	for cur.parent != nil && (target < cur.min || target > cur.max) {
		cur = cur.parent
		op.Visit(cur.host)
	}
	// Descend tracking the best floor seen.
	var best *tnode
	for cur != nil {
		if cur.key == target {
			best = cur
			break
		}
		if cur.key < target {
			if best == nil || cur.key > best.key {
				best = cur
			}
			cur = cur.right
		} else {
			cur = cur.left
		}
		if cur != nil {
			op.Visit(cur.host)
		}
	}
	if best == nil {
		return 0, false, op.Hops()
	}
	return best.key, true, op.Hops()
}

// Insert routes from the originating host, splices the key in as a BST
// leaf, and rotates it to its treap position.
func (t *Tree) Insert(key uint64, origin sim.HostID) (int, error) {
	if _, ok := t.nodes[key]; ok {
		return 0, fmt.Errorf("familytree: duplicate key %d", key)
	}
	n := &tnode{key: key, prio: t.rng.Uint64(), host: t.nextHost(), min: key, max: key}
	if t.root == nil {
		t.root = n
		t.nodes[key] = n
		t.addKey(key)
		t.net.AddStorage(n.host, storageUnits)
		return 0, nil
	}
	start := t.originFor(origin)
	op := t.net.NewOp(start.host)
	defer op.Free()
	// Climb to cover the key, then descend to the attach point.
	cur := start
	for cur.parent != nil && (key < cur.min || key > cur.max) {
		cur = cur.parent
		op.Visit(cur.host)
	}
	for {
		if key < cur.key {
			if cur.left == nil {
				cur.left = n
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				break
			}
			cur = cur.right
		}
		op.Visit(cur.host)
	}
	n.parent = cur
	op.Send(cur.host)
	t.nodes[key] = n
	t.addKey(key)
	t.net.AddStorage(n.host, storageUnits)
	t.fixIntervalsUp(cur, op)
	// Rotate up while the heap property is violated.
	for n.parent != nil && n.prio > n.parent.prio {
		t.rotateUp(n, op)
	}
	return op.Hops(), nil
}

// Delete routes to the key, rotates it down to a leaf, and unlinks it.
func (t *Tree) Delete(key uint64, origin sim.HostID) (int, error) {
	n, ok := t.nodes[key]
	if !ok {
		return 0, fmt.Errorf("familytree: key %d not found", key)
	}
	start := t.originFor(origin)
	op := t.net.NewOp(start.host)
	defer op.Free()
	cur := start
	for cur.parent != nil && (key < cur.min || key > cur.max) {
		cur = cur.parent
		op.Visit(cur.host)
	}
	for cur != nil && cur.key != key {
		if key < cur.key {
			cur = cur.left
		} else {
			cur = cur.right
		}
		if cur != nil {
			op.Visit(cur.host)
		}
	}
	for n.left != nil || n.right != nil {
		// Rotate the higher-priority child above n.
		c := n.left
		if c == nil || (n.right != nil && n.right.prio > c.prio) {
			c = n.right
		}
		t.rotateUp(c, op)
	}
	p := n.parent
	if p == nil {
		t.root = nil
	} else {
		if p.left == n {
			p.left = nil
		} else {
			p.right = nil
		}
		op.Send(p.host)
		t.fixIntervalsUp(p, op)
	}
	delete(t.nodes, key)
	t.dropKey(key)
	t.net.AddStorage(n.host, -storageUnits)
	return op.Hops(), nil
}

// rotateUp rotates n above its parent, charging one message per pointer
// owner touched, and fixes the two nodes' intervals.
func (t *Tree) rotateUp(n *tnode, op *sim.Op) {
	p := n.parent
	gp := p.parent
	if p.left == n {
		p.left = n.right
		if n.right != nil {
			n.right.parent = p
			op.Send(n.right.host)
		}
		n.right = p
	} else {
		p.right = n.left
		if n.left != nil {
			n.left.parent = p
			op.Send(n.left.host)
		}
		n.left = p
	}
	p.parent = n
	n.parent = gp
	if gp == nil {
		t.root = n
	} else {
		if gp.left == p {
			gp.left = n
		} else {
			gp.right = n
		}
		op.Send(gp.host)
	}
	op.Send(p.host)
	op.Send(n.host)
	t.refreshInterval(p)
	t.refreshInterval(n)
}

func (t *Tree) refreshInterval(n *tnode) {
	n.min, n.max = n.key, n.key
	if n.left != nil {
		if n.left.min < n.min {
			n.min = n.left.min
		}
		if n.left.max > n.max {
			n.max = n.left.max
		}
	}
	if n.right != nil {
		if n.right.min < n.min {
			n.min = n.right.min
		}
		if n.right.max > n.max {
			n.max = n.right.max
		}
	}
}

// fixIntervalsUp refreshes intervals from n to the root, charging one
// message per host whose stored interval changes.
func (t *Tree) fixIntervalsUp(n *tnode, op *sim.Op) {
	for cur := n; cur != nil; cur = cur.parent {
		oldMin, oldMax := cur.min, cur.max
		t.refreshInterval(cur)
		if cur.min == oldMin && cur.max == oldMax {
			break
		}
		op.Send(cur.host)
	}
}

// bstInsert attaches n below the root without message accounting (build).
func (t *Tree) bstInsert(n *tnode, _ *tnode) {
	if t.root == nil {
		t.root = n
		return
	}
	cur := t.root
	for {
		if n.key < cur.key {
			if cur.left == nil {
				cur.left = n
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				break
			}
			cur = cur.right
		}
	}
	n.parent = cur
	for n.parent != nil && n.prio > n.parent.prio {
		t.rotateUpSilent(n)
	}
	for cur := n.parent; cur != nil; cur = cur.parent {
		t.refreshInterval(cur)
	}
	t.refreshInterval(n)
}

func (t *Tree) rotateUpSilent(n *tnode) {
	p := n.parent
	gp := p.parent
	if p.left == n {
		p.left = n.right
		if n.right != nil {
			n.right.parent = p
		}
		n.right = p
	} else {
		p.right = n.left
		if n.left != nil {
			n.left.parent = p
		}
		n.left = p
	}
	p.parent = n
	n.parent = gp
	if gp == nil {
		t.root = n
	} else if gp.left == p {
		gp.left = n
	} else {
		gp.right = n
	}
	t.refreshInterval(p)
	t.refreshInterval(n)
}

// Depth returns the tree height (for sanity checks).
func (t *Tree) Depth() int {
	var rec func(*tnode) int
	rec = func(n *tnode) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.root)
}

// CheckInvariants verifies BST order, heap order on priorities, parent
// pointers, and interval correctness.
func (t *Tree) CheckInvariants() error {
	count := 0
	var rec func(n *tnode, lo, hi uint64, hasLo, hasHi bool) error
	rec = func(n *tnode, lo, hi uint64, hasLo, hasHi bool) error {
		if n == nil {
			return nil
		}
		count++
		if hasLo && n.key <= lo {
			return fmt.Errorf("familytree: BST order violated at %d", n.key)
		}
		if hasHi && n.key >= hi {
			return fmt.Errorf("familytree: BST order violated at %d", n.key)
		}
		min, max := n.key, n.key
		for _, c := range []*tnode{n.left, n.right} {
			if c == nil {
				continue
			}
			if c.parent != n {
				return fmt.Errorf("familytree: parent pointer broken at %d", c.key)
			}
			if c.prio > n.prio {
				return fmt.Errorf("familytree: heap order violated at %d", c.key)
			}
			if c.min < min {
				min = c.min
			}
			if c.max > max {
				max = c.max
			}
		}
		if n.min != min || n.max != max {
			return fmt.Errorf("familytree: interval stale at %d: [%d,%d] want [%d,%d]", n.key, n.min, n.max, min, max)
		}
		if err := rec(n.left, lo, n.key, hasLo, true); err != nil {
			return err
		}
		return rec(n.right, n.key, hi, true, hasHi)
	}
	if err := rec(t.root, 0, 0, false, false); err != nil {
		return err
	}
	if count != len(t.nodes) {
		return fmt.Errorf("familytree: %d reachable nodes, %d registered", count, len(t.nodes))
	}
	return nil
}
