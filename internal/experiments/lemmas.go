package experiments

import (
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/trie"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// HalvingRow is one measurement of a set-halving lemma: the mean and max
// size of the conflict list C(Q, S) for the terminal range Q of D(T)
// containing a random query, where T is a random half of S.
type HalvingRow struct {
	N        int
	Mean     float64
	Max      int
	Trials   int
	Workload string
}

// HalvingReport aggregates one lemma's sweep.
type HalvingReport struct {
	Lemma string
	Bound string
	Rows  []HalvingRow
}

// String renders the report.
func (r *HalvingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — paper bound: %s\n", r.Lemma, r.Bound)
	fmt.Fprintf(&b, "%10s %-12s %10s %8s %8s\n", "n", "workload", "E|C(Q,S)|", "max", "trials")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %-12s %10.2f %8d %8d\n", row.N, row.Workload, row.Mean, row.Max, row.Trials)
	}
	return b.String()
}

// LemmaConfig tunes the halving experiments E2–E5.
type LemmaConfig struct {
	Sizes  []int
	Trials int
	Seed   uint64
}

// DefaultLemmaConfig is the EXPERIMENTS.md scale.
func DefaultLemmaConfig() LemmaConfig {
	return LemmaConfig{Sizes: []int{256, 1024, 4096, 16384, 65536}, Trials: 400, Seed: 2}
}

// QuickLemmaConfig is a smoke-scale configuration.
func QuickLemmaConfig() LemmaConfig {
	return LemmaConfig{Sizes: []int{256, 1024}, Trials: 100, Seed: 2}
}

// Lemma1 measures the sorted-list halving lemma (E2): E|C(Q,S)| <= 7.
func Lemma1(cfg LemmaConfig) (*HalvingReport, error) {
	rep := &HalvingReport{Lemma: "Lemma 1 (sorted lists)", Bound: "E|C(Q,S)| <= 7"}
	for _, n := range cfg.Sizes {
		rng := xrand.New(cfg.Seed ^ uint64(n))
		keys := Keys(rng, n, 1<<40)
		full, err := core.NewListLevel(keys)
		if err != nil {
			return nil, err
		}
		half, err := core.NewListLevel(Half(rng, keys))
		if err != nil {
			return nil, err
		}
		total, max := 0, 0
		for i := 0; i < cfg.Trials; i++ {
			q := rng.Uint64n(1 << 40)
			r := half.Locate(q)
			// Conflicts of the half-list range [a, b) with the full list:
			// the full-list ranges covering [a, b) — count by walking.
			count := 1
			var until uint64
			hasUntil := false
			if nx := half.Next(r); nx != core.NoRange {
				until, hasUntil = half.Key(nx), true
			}
			var fr core.RangeID
			if half.IsHead(r) {
				fr = full.Head()
			} else {
				var ok bool
				fr, ok = full.ByKey(half.Key(r))
				if !ok {
					return nil, fmt.Errorf("lemma1: key missing from full list")
				}
			}
			for nx := full.Next(fr); nx != core.NoRange; nx = full.Next(nx) {
				if hasUntil && full.Key(nx) >= until {
					break
				}
				count++
			}
			total += count
			if count > max {
				max = count
			}
		}
		rep.Rows = append(rep.Rows, HalvingRow{
			N: n, Mean: float64(total) / float64(cfg.Trials), Max: max,
			Trials: cfg.Trials, Workload: "uniform",
		})
	}
	return rep, nil
}

// Lemma3 measures the quadtree halving lemma (E3 / Figure 3) on uniform
// and adversarially clustered points.
func Lemma3(cfg LemmaConfig) (*HalvingReport, error) {
	rep := &HalvingReport{Lemma: "Lemma 3 (compressed quadtrees)", Bound: "E|C(Q,S)| = O(1)"}
	for _, workload := range []string{"uniform", "clustered"} {
		for _, n := range cfg.Sizes {
			rng := xrand.New(cfg.Seed ^ uint64(n) ^ uint64(len(workload)))
			var pts []quadtree.Point
			if workload == "uniform" {
				pts = UniformPoints(rng, 2, n, 1<<30)
			} else {
				pts = ClusteredPoints(rng, n)
			}
			full, err := quadtree.Build(2, pts)
			if err != nil {
				return nil, err
			}
			sub, err := quadtree.Build(2, Half(rng, pts))
			if err != nil {
				return nil, err
			}
			total, max := 0, 0
			for i := 0; i < cfg.Trials; i++ {
				q := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
				code, err := sub.Code(q)
				if err != nil {
					return nil, err
				}
				id, _ := sub.Locate(code)
				if id == quadtree.NoNode {
					continue
				}
				// The terminal region is the deepest cell of D(T)
				// containing q minus its children; its conflicts are the
				// cells of D(S) meeting that region: the anchor chain from
				// the same cell in D(S) down to q's terminal there.
				anchor := full.LocateCell(sub.CellOf(id))
				count := 1
				cur := anchor
				for {
					next := full.StepToward(cur, code)
					if next == quadtree.NoNode {
						break
					}
					cur = next
					count++
				}
				total += count
				if count > max {
					max = count
				}
			}
			rep.Rows = append(rep.Rows, HalvingRow{
				N: n, Mean: float64(total) / float64(cfg.Trials), Max: max,
				Trials: cfg.Trials, Workload: workload,
			})
		}
	}
	return rep, nil
}

// Lemma4 measures the trie halving lemma (E4) on uniform and
// shared-prefix adversarial strings.
func Lemma4(cfg LemmaConfig) (*HalvingReport, error) {
	rep := &HalvingReport{Lemma: "Lemma 4 (compressed tries)", Bound: "E|C(Q,S)| = O(1)"}
	for _, workload := range []string{"uniform", "sharedprefix"} {
		for _, n := range cfg.Sizes {
			if workload == "sharedprefix" && n > 8192 {
				// The degenerate keys a, aa, aaa, ... occupy Θ(n²) bytes;
				// larger sizes add memory pressure without new signal.
				continue
			}
			rng := xrand.New(cfg.Seed ^ uint64(n) ^ uint64(len(workload)))
			var keys []string
			if workload == "uniform" {
				keys = UniformStrings(rng, n, "acgt", 4, 24)
			} else {
				keys = SharedPrefixStrings(n)
			}
			full, err := trie.Build(keys)
			if err != nil {
				return nil, err
			}
			sub, err := trie.Build(Half(rng, keys))
			if err != nil {
				return nil, err
			}
			total, max := 0, 0
			for i := 0; i < cfg.Trials; i++ {
				var q string
				if workload == "uniform" {
					q = UniformStrings(rng, 1, "acgt", 4, 24)[0]
				} else {
					q = strings.Repeat("a", 1+rng.Intn(n+4))
				}
				id, _ := sub.Locate(q)
				anchor := full.LocateLocus(sub.Locus(id))
				count := 1
				cur := anchor
				for {
					next := full.StepToward(cur, q)
					if next == trie.NoNode {
						break
					}
					cur = next
					count++
				}
				total += count
				if count > max {
					max = count
				}
			}
			rep.Rows = append(rep.Rows, HalvingRow{
				N: n, Mean: float64(total) / float64(cfg.Trials), Max: max,
				Trials: cfg.Trials, Workload: workload,
			})
		}
	}
	return rep, nil
}

// Lemma5 measures the trapezoidal-map halving lemma (E5 / Figure 4),
// also verifying the 1 + a + 2b + 3c identity on every sampled face.
func Lemma5(cfg LemmaConfig) (*HalvingReport, error) {
	rep := &HalvingReport{Lemma: "Lemma 5 (trapezoidal maps)", Bound: "E|C(t,S)| = O(1); |C| = 1+a+2b+3c"}
	bounds := trapmap.Rect{MinX: -30000, MinY: -30000, MaxX: 30000, MaxY: 30000}
	for _, n := range cfg.Sizes {
		if n > 4096 {
			continue // O(n^2) construction; larger sizes add nothing
		}
		rng := xrand.New(cfg.Seed ^ uint64(n))
		segs := DisjointSegments(rng, n, bounds)
		full, err := trapmap.Build(segs, bounds)
		if err != nil {
			return nil, err
		}
		sub, err := trapmap.Build(Half(rng, segs), bounds)
		if err != nil {
			return nil, err
		}
		total, max := 0, 0
		for i := 0; i < cfg.Trials; i++ {
			q := trapmap.Point{
				X: bounds.MinX + int64(rng.Uint64n(uint64(bounds.MaxX-bounds.MinX))),
				Y: bounds.MinY + int64(rng.Uint64n(uint64(bounds.MaxY-bounds.MinY))),
			}
			id, err := sub.Locate(q)
			if err != nil {
				return nil, err
			}
			tr := sub.Trap(id)
			conflicts := len(full.Conflicts(tr))
			if identity := full.ConflictStats(tr).Count(); identity != conflicts {
				return nil, fmt.Errorf("lemma5: identity violated: %d conflicts, 1+a+2b+3c = %d", conflicts, identity)
			}
			total += conflicts
			if conflicts > max {
				max = conflicts
			}
		}
		rep.Rows = append(rep.Rows, HalvingRow{
			N: n, Mean: float64(total) / float64(cfg.Trials), Max: max,
			Trials: cfg.Trials, Workload: "disjoint",
		})
	}
	return rep, nil
}
