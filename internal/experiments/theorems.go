package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/trie"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// QueryRow is one (structure, workload, n) query-cost measurement.
type QueryRow struct {
	Structure string
	Workload  string
	N         int
	Depth     int // underlying ground-structure depth
	MeanHops  float64
	MaxHops   int
	PerLog    float64 // MeanHops / log2 n
}

// QueryReport aggregates query-cost sweeps.
type QueryReport struct {
	Title string
	Claim string
	Rows  []QueryRow
}

// String renders the report.
func (r *QueryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Title, r.Claim)
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %10s %8s %10s\n",
		"structure", "workload", "n", "depth", "meanQ", "maxQ", "Q/log2n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-12s %8d %8d %10.2f %8d %10.3f\n",
			row.Structure, row.Workload, row.N, row.Depth, row.MeanHops, row.MaxHops, row.PerLog)
	}
	return b.String()
}

// TheoremConfig tunes E6/E7/E8.
type TheoremConfig struct {
	Sizes   []int
	Queries int
	Seed    uint64
}

// DefaultTheoremConfig is the EXPERIMENTS.md scale.
func DefaultTheoremConfig() TheoremConfig {
	return TheoremConfig{Sizes: []int{256, 1024, 4096}, Queries: 400, Seed: 3}
}

// QuickTheoremConfig is a smoke-scale configuration.
func QuickTheoremConfig() TheoremConfig {
	return TheoremConfig{Sizes: []int{128, 512}, Queries: 100, Seed: 3}
}

// Theorem2MultiDim runs E6: query message complexity of the
// multi-dimensional skip-webs, on uniform and adversarial (linear-depth)
// inputs, verifying Q(n) = O(log n) regardless of structure depth.
func Theorem2MultiDim(cfg TheoremConfig) (*QueryReport, error) {
	rep := &QueryReport{
		Title: "Theorem 2 (multi-dimensional)",
		Claim: "Q(n) = O(log n) messages even at structure depth Theta(n)",
	}
	for _, n := range cfg.Sizes {
		// Quadtree web: uniform and clustered.
		for _, workload := range []string{"uniform", "clustered"} {
			rng := xrand.New(cfg.Seed ^ uint64(n) ^ uint64(len(workload)))
			var pts []quadtree.Point
			if workload == "uniform" {
				pts = UniformPoints(rng, 2, n, 1<<30)
			} else {
				pts = ClusteredPoints(rng, n)
			}
			ops := core.NewQuadOps(2)
			net := sim.NewNetwork(n)
			w, err := core.NewWeb[*quadtree.Tree, quadtree.Point, uint64](
				ops, net, pts, core.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			row := QueryRow{Structure: "quadtree", Workload: workload, N: n,
				Depth: w.GroundStructure().Depth()}
			total := 0
			for i := 0; i < cfg.Queries; i++ {
				q := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
				code, _ := ops.Code(q)
				res, err := w.Query(code, sim.HostID(rng.Intn(n)))
				if err != nil {
					return nil, err
				}
				total += res.Hops
				if res.Hops > row.MaxHops {
					row.MaxHops = res.Hops
				}
			}
			row.MeanHops = float64(total) / float64(cfg.Queries)
			row.PerLog = RatioToLog(row.MeanHops, n)
			rep.Rows = append(rep.Rows, row)
		}
		// Trie web: uniform and shared-prefix.
		for _, workload := range []string{"uniform", "sharedprefix"} {
			rng := xrand.New(cfg.Seed ^ uint64(n) ^ 77)
			var keys []string
			if workload == "uniform" {
				keys = UniformStrings(rng, n, "acgt", 4, 24)
			} else {
				keys = SharedPrefixStrings(n)
			}
			net := sim.NewNetwork(n)
			w, err := core.NewWeb[*trie.Trie, string, string](
				core.NewTrieOps(), net, keys, core.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			row := QueryRow{Structure: "trie", Workload: workload, N: n,
				Depth: w.GroundStructure().Depth()}
			total := 0
			for i := 0; i < cfg.Queries; i++ {
				var q string
				if workload == "uniform" {
					q = UniformStrings(rng, 1, "acgt", 4, 24)[0]
				} else {
					q = strings.Repeat("a", 1+rng.Intn(n+4))
				}
				res, err := w.Query(q, sim.HostID(rng.Intn(n)))
				if err != nil {
					return nil, err
				}
				total += res.Hops
				if res.Hops > row.MaxHops {
					row.MaxHops = res.Hops
				}
			}
			row.MeanHops = float64(total) / float64(cfg.Queries)
			row.PerLog = RatioToLog(row.MeanHops, n)
			rep.Rows = append(rep.Rows, row)
		}
		// Trapezoidal-map web (O(n^2) build: cap the size).
		if n <= 2048 {
			rng := xrand.New(cfg.Seed ^ uint64(n) ^ 99)
			bounds := trapmap.Rect{MinX: -30000, MinY: -30000, MaxX: 30000, MaxY: 30000}
			segs := DisjointSegments(rng, n, bounds)
			net := sim.NewNetwork(n)
			w, err := core.NewWeb[*trapmap.Map, trapmap.Segment, trapmap.Point](
				core.TrapOps{Bounds: bounds}, net, segs, core.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			row := QueryRow{Structure: "trapmap", Workload: "disjoint", N: n}
			total := 0
			for i := 0; i < cfg.Queries; i++ {
				q := trapmap.Point{
					X: bounds.MinX + int64(rng.Uint64n(uint64(bounds.MaxX-bounds.MinX))),
					Y: bounds.MinY + int64(rng.Uint64n(uint64(bounds.MaxY-bounds.MinY))),
				}
				res, err := w.Query(q, sim.HostID(rng.Intn(n)))
				if err != nil {
					return nil, err
				}
				total += res.Hops
				if res.Hops > row.MaxHops {
					row.MaxHops = res.Hops
				}
			}
			row.MeanHops = float64(total) / float64(cfg.Queries)
			row.PerLog = RatioToLog(row.MeanHops, n)
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// BlockingRow is one point of E7: blocked skip-web query cost as a
// function of M (fixed n) or of n (M = log n).
type BlockingRow struct {
	N        int
	M        int
	Stratum  int
	MeanHops float64
	PerLogN  float64
	Sweep    string // "M" or "n"
}

// BlockingReport aggregates E7.
type BlockingReport struct {
	Rows []BlockingRow
}

// String renders the report.
func (r *BlockingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 2 (1-d blocking, Figure 2): Q = O(log n / log M); constant for M = n^eps\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %10s %10s\n", "sweep", "n", "M", "L", "meanQ", "Q/log2n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %8d %8d %8d %10.2f %10.3f\n",
			row.Sweep, row.N, row.M, row.Stratum, row.MeanHops, row.PerLogN)
	}
	return b.String()
}

// Theorem2Blocking runs E7: the M sweep at fixed n and the n sweep at
// M = log n.
func Theorem2Blocking(cfg TheoremConfig) (*BlockingReport, error) {
	rep := &BlockingReport{}
	// M sweep at the largest configured n.
	n := cfg.Sizes[len(cfg.Sizes)-1] * 2
	rng := xrand.New(cfg.Seed)
	keys := Keys(rng, n, 1<<50)
	for _, m := range []int{4, 8, 16, 64, 256, 1024} {
		net := sim.NewNetwork(n)
		w, err := core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: cfg.Seed, M: m})
		if err != nil {
			return nil, err
		}
		mean, err := meanBlockedHops(w, n, cfg.Queries, rng.Split())
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, BlockingRow{
			N: n, M: m, Stratum: w.StratumHeight(),
			MeanHops: mean, PerLogN: RatioToLog(mean, n), Sweep: "M",
		})
	}
	// n sweep at default M = ceil(log2 n)+1.
	for _, n := range cfg.Sizes {
		rng := xrand.New(cfg.Seed ^ uint64(n))
		keys := Keys(rng, n, 1<<50)
		net := sim.NewNetwork(n)
		w, err := core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mean, err := meanBlockedHops(w, n, cfg.Queries, rng.Split())
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, BlockingRow{
			N: n, M: w.M(), Stratum: w.StratumHeight(),
			MeanHops: mean, PerLogN: RatioToLog(mean, n), Sweep: "n",
		})
	}
	return rep, nil
}

func meanBlockedHops(w *core.BlockedWeb, hosts, queries int, rng *xrand.Rand) (float64, error) {
	total := 0
	for i := 0; i < queries; i++ {
		_, _, hops, err := w.Query(rng.Uint64n(1<<50), sim.HostID(rng.Intn(hosts)))
		if err != nil {
			return 0, err
		}
		total += hops
	}
	return float64(total) / float64(queries), nil
}

// UpdateRow is one point of E8.
type UpdateRow struct {
	Structure string
	N         int
	MeanHops  float64
	PerLog    float64
}

// UpdateReport aggregates E8.
type UpdateReport struct {
	Rows []UpdateRow
}

// String renders the report.
func (r *UpdateReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4 (updates): U = O(log n) multi-d, O(log n / loglog n) 1-d\n")
	fmt.Fprintf(&b, "%-12s %8s %10s %10s\n", "structure", "n", "meanU", "U/log2n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d %10.2f %10.3f\n", row.Structure, row.N, row.MeanHops, row.PerLog)
	}
	return b.String()
}

// Updates runs E8: insertion message complexity per structure.
func Updates(cfg TheoremConfig) (*UpdateReport, error) {
	rep := &UpdateReport{}
	updates := cfg.Queries / 2
	if updates < 16 {
		updates = 16
	}
	for _, n := range cfg.Sizes {
		// Blocked 1-d web.
		rng := xrand.New(cfg.Seed ^ uint64(n))
		keys := Keys(rng, n+updates, 1<<50)
		net := sim.NewNetwork(n)
		w1, err := core.NewBlockedWeb(net, keys[:n], core.BlockedConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		total := 0
		for i, k := range keys[n:] {
			h, err := w1.Insert(k, sim.HostID(i%n))
			if err != nil {
				return nil, err
			}
			total += h
		}
		mean := float64(total) / float64(updates)
		rep.Rows = append(rep.Rows, UpdateRow{Structure: "1-d blocked", N: n,
			MeanHops: mean, PerLog: RatioToLog(mean, n)})

		// Quadtree web.
		pts := UniformPoints(rng, 2, n+updates, 1<<30)
		net2 := sim.NewNetwork(n)
		ops := core.NewQuadOps(2)
		w2, err := core.NewWeb[*quadtree.Tree, quadtree.Point, uint64](
			ops, net2, pts[:n], core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		total = 0
		for i, p := range pts[n:] {
			h, err := w2.Insert(p, sim.HostID(i%n))
			if err != nil {
				return nil, err
			}
			total += h
		}
		mean = float64(total) / float64(updates)
		rep.Rows = append(rep.Rows, UpdateRow{Structure: "quadtree", N: n,
			MeanHops: mean, PerLog: RatioToLog(mean, n)})

		// Trie web.
		strs := UniformStrings(rng, n+updates, "acgt", 6, 24)
		net3 := sim.NewNetwork(n)
		w3, err := core.NewWeb[*trie.Trie, string, string](
			core.NewTrieOps(), net3, strs[:n], core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		total = 0
		for i, s := range strs[n:] {
			h, err := w3.Insert(s, sim.HostID(i%n))
			if err != nil {
				return nil, err
			}
			total += h
		}
		mean = float64(total) / float64(updates)
		rep.Rows = append(rep.Rows, UpdateRow{Structure: "trie", N: n,
			MeanHops: mean, PerLog: RatioToLog(mean, n)})
	}
	return rep, nil
}

// CongestionRow is one point of E9.
type CongestionRow struct {
	Structure   string
	N           int
	MaxPerOp    float64 // max per-host touches / queries
	MeanPerOp   float64
	MaxStorage  int64
	MeanStorage float64
}

// CongestionReport aggregates E9.
type CongestionReport struct {
	Rows []CongestionRow
}

// String renders the report.
func (r *CongestionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Congestion / load balance (Section 1.1): C(n) = O(log n) per host\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %10s %10s\n",
		"structure", "n", "maxC/op", "meanC/op", "maxMem", "meanMem")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d %12.3f %12.3f %10d %10.1f\n",
			row.Structure, row.N, row.MaxPerOp, row.MeanPerOp, row.MaxStorage, row.MeanStorage)
	}
	return b.String()
}

// Congestion runs E9: per-host load under a uniform query mix on the
// blocked 1-d web and the quadtree web.
func Congestion(cfg TheoremConfig) (*CongestionReport, error) {
	rep := &CongestionReport{}
	queries := cfg.Queries * 4
	for _, n := range cfg.Sizes {
		rng := xrand.New(cfg.Seed ^ uint64(n))
		keys := Keys(rng, n, 1<<50)
		net := sim.NewNetwork(n)
		w, err := core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mem := net.Snapshot()
		net.ResetTraffic()
		for i := 0; i < queries; i++ {
			if _, _, _, err := w.Query(rng.Uint64n(1<<50), sim.HostID(rng.Intn(n))); err != nil {
				return nil, err
			}
		}
		s := net.Snapshot()
		rep.Rows = append(rep.Rows, CongestionRow{
			Structure: "1-d blocked", N: n,
			MaxPerOp:    float64(s.MaxCongestion) / float64(queries),
			MeanPerOp:   s.MeanCongestion / float64(queries),
			MaxStorage:  mem.MaxStorage,
			MeanStorage: mem.MeanStorage,
		})

		pts := UniformPoints(rng, 2, n, 1<<30)
		net2 := sim.NewNetwork(n)
		ops := core.NewQuadOps(2)
		w2, err := core.NewWeb[*quadtree.Tree, quadtree.Point, uint64](
			ops, net2, pts, core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mem = net2.Snapshot()
		net2.ResetTraffic()
		for i := 0; i < queries; i++ {
			q := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
			code, _ := ops.Code(q)
			if _, err := w2.Query(code, sim.HostID(rng.Intn(n))); err != nil {
				return nil, err
			}
		}
		s = net2.Snapshot()
		rep.Rows = append(rep.Rows, CongestionRow{
			Structure: "quadtree", N: n,
			MaxPerOp:    float64(s.MaxCongestion) / float64(queries),
			MeanPerOp:   s.MeanCongestion / float64(queries),
			MaxStorage:  mem.MaxStorage,
			MeanStorage: mem.MeanStorage,
		})
	}
	return rep, nil
}

// SubLogCheck quantifies the Q/log2(n) trend of a series: negative slope
// means sub-logarithmic growth (used by tests and EXPERIMENTS.md).
func SubLogCheck(rows []BlockingRow) float64 {
	var first, last float64
	seen := false
	for _, r := range rows {
		if r.Sweep != "n" {
			continue
		}
		if !seen {
			first = r.PerLogN
			seen = true
		}
		last = r.PerLogN
	}
	if !seen || first == 0 {
		return math.NaN()
	}
	return last / first
}
