package experiments

import (
	"strings"
	"testing"
)

func TestTable1QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Table1Config{Sizes: []int{512, 2048}, Queries: 200, Updates: 96, Seed: 1}
	rep, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table1Row{}
	for _, r := range rep.Rows {
		byKey[r.Method+"/"+itoa(r.N)] = r
	}
	// Shape 1: NoN memory well above plain skip-graph memory.
	if byKey["NoN skip-graphs/2048"].MeanMem < 2*byKey["skip graphs/SkipNet/2048"].MeanMem {
		t.Errorf("NoN memory not clearly above plain: %.1f vs %.1f",
			byKey["NoN skip-graphs/2048"].MeanMem, byKey["skip graphs/SkipNet/2048"].MeanMem)
	}
	// Shape 2: family trees use constant memory.
	if byKey["family trees/2048"].MaxMem != byKey["family trees/512"].MaxMem {
		t.Errorf("family tree memory grows: %d vs %d",
			byKey["family trees/512"].MaxMem, byKey["family trees/2048"].MaxMem)
	}
	// Shape 3: skip-webs query at 2048 beats plain skip graphs.
	if byKey["skip-webs/2048"].QueryHops >= byKey["skip graphs/SkipNet/2048"].QueryHops {
		t.Errorf("skip-webs (%.1f) not beating skip graphs (%.1f) at n=2048",
			byKey["skip-webs/2048"].QueryHops, byKey["skip graphs/SkipNet/2048"].QueryHops)
	}
	// Shape 4: bucket variants (H = n/8) answer in fewer hops than their
	// H = n counterparts.
	if byKey["bucket skip-webs/2048"].QueryHops >= byKey["skip-webs/2048"].QueryHops {
		t.Errorf("bucket skip-webs (%.1f) not beating skip-webs (%.1f)",
			byKey["bucket skip-webs/2048"].QueryHops, byKey["skip-webs/2048"].QueryHops)
	}
	// Shape 5: skip-web memory stays O(log n)-ish (far below NoN).
	if byKey["skip-webs/2048"].MeanMem > byKey["NoN skip-graphs/2048"].MeanMem {
		t.Errorf("skip-web memory above NoN")
	}
	// Report renders.
	if !strings.Contains(rep.String(), "skip-webs") {
		t.Error("report missing rows")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestLemma1Constant(t *testing.T) {
	rep, err := Lemma1(LemmaConfig{Sizes: []int{256, 4096, 65536}, Trials: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Mean > 7 {
			t.Errorf("n=%d: mean conflicts %.2f exceed the lemma's bound 7", r.N, r.Mean)
		}
	}
	// Flat in n: largest mean within 1.5x of smallest.
	if rep.Rows[2].Mean > rep.Rows[0].Mean*1.5+1 {
		t.Errorf("conflicts grow with n: %+v", rep.Rows)
	}
}

func TestLemma3Constant(t *testing.T) {
	rep, err := Lemma3(LemmaConfig{Sizes: []int{512, 4096}, Trials: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Mean > 10 {
			t.Errorf("%s n=%d: mean conflicts %.2f not O(1)-like", r.Workload, r.N, r.Mean)
		}
	}
}

func TestLemma4Constant(t *testing.T) {
	rep, err := Lemma4(LemmaConfig{Sizes: []int{512, 4096}, Trials: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Mean > 10 {
			t.Errorf("%s n=%d: mean conflicts %.2f not O(1)-like", r.Workload, r.N, r.Mean)
		}
	}
}

func TestLemma5ConstantAndIdentity(t *testing.T) {
	rep, err := Lemma5(LemmaConfig{Sizes: []int{256, 1024}, Trials: 150, Seed: 2})
	if err != nil {
		t.Fatal(err) // the identity check runs inside
	}
	for _, r := range rep.Rows {
		if r.Mean > 10 {
			t.Errorf("n=%d: mean conflicts %.2f not O(1)-like", r.N, r.Mean)
		}
	}
}

func TestTheorem2MultiDimLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Theorem2MultiDim(TheoremConfig{Sizes: []int{256, 1024}, Queries: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.PerLog > 12 {
			t.Errorf("%s/%s n=%d: Q/log2n = %.2f not logarithmic", r.Structure, r.Workload, r.N, r.PerLog)
		}
		switch r.Workload {
		case "clustered":
			// Quadtree depth is capped by coordinate precision (31 levels
			// for d=2); the adversarial input drives it to that cap, far
			// above the balanced O(log_4 n).
			if r.Depth < 25 {
				t.Errorf("quadtree/clustered: adversarial depth only %d", r.Depth)
			}
		case "sharedprefix":
			if r.Depth < r.N/2 {
				t.Errorf("trie/sharedprefix: adversarial depth only %d", r.Depth)
			}
		}
	}
}

func TestTheorem2BlockingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Theorem2Blocking(TheoremConfig{Sizes: []int{512, 2048, 8192}, Queries: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The M sweep must be monotically improving (allowing small noise).
	var msweep []float64
	for _, r := range rep.Rows {
		if r.Sweep == "M" {
			msweep = append(msweep, r.MeanHops)
		}
	}
	if msweep[len(msweep)-1] >= msweep[0] {
		t.Errorf("M sweep not improving: %v", msweep)
	}
	// The n sweep at M = log n must be sub-logarithmic.
	if ratio := SubLogCheck(rep.Rows); !(ratio < 1.0) {
		t.Errorf("Q/log2n ratio trend %.3f not shrinking", ratio)
	}
}

func TestUpdatesLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Updates(TheoremConfig{Sizes: []int{256, 1024}, Queries: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.PerLog > 14 {
			t.Errorf("%s n=%d: U/log2n = %.2f too large", r.Structure, r.N, r.PerLog)
		}
	}
}

func TestCongestionBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Congestion(TheoremConfig{Sizes: []int{512}, Queries: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.MaxPerOp > 3 {
			t.Errorf("%s n=%d: max congestion %.2f per op (hotspot)", r.Structure, r.N, r.MaxPerOp)
		}
	}
}

func TestFigures(t *testing.T) {
	f1 := Figure1(1)
	if !strings.Contains(f1, "L00") {
		t.Error("figure 1 missing levels")
	}
	f2, err := Figure2(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "level") {
		t.Error("figure 2 missing census")
	}
	f4, err := Figure4(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4, "faces = 3n+1") {
		t.Error("figure 4 missing face count")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	rng := newRng(5)
	keys := Keys(rng, 100, 1000)
	seen := map[uint64]bool{}
	for _, k := range keys {
		if k >= 1000 || seen[k] {
			t.Fatalf("bad key %d", k)
		}
		seen[k] = true
	}
	pts := ClusteredPoints(rng, 64)
	if len(pts) != 64 {
		t.Fatalf("clustered points: %d", len(pts))
	}
	strs := SharedPrefixStrings(10)
	if strs[9] != strings.Repeat("a", 10) {
		t.Fatal("shared prefix strings wrong")
	}
}

func TestAblationBlockingWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := AblationBlocking(TheoremConfig{Sizes: []int{2048, 8192}, Queries: 250, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Speedup <= 1.0 {
			t.Errorf("n=%d: blocking speedup %.2fx (expected > 1)", r.N, r.Speedup)
		}
	}
	// The speedup should grow with n (log n vs log n / log log n).
	if rep.Rows[1].Speedup < rep.Rows[0].Speedup*0.95 {
		t.Errorf("speedup not growing: %+v", rep.Rows)
	}
}
