package experiments

import (
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// AblationRow compares the general skip-web (arbitrary range placement,
// Section 2.4) against the blocked placement (Section 2.4.1) on the same
// key set, isolating what the blocking strategy alone buys.
type AblationRow struct {
	N            int
	ArbitraryQ   float64 // mean query messages, arbitrary placement
	BlockedQ     float64 // mean query messages, blocked placement
	ArbitraryMem float64
	BlockedMem   float64
	Speedup      float64
}

// AblationReport aggregates the blocking ablation.
type AblationReport struct {
	Rows []AblationRow
}

// String renders the report.
func (r *AblationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Section 2.4.1 blocking vs arbitrary placement (same hierarchy, same keys)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %10s %12s %12s\n",
		"n", "Q(arbitrary)", "Q(blocked)", "speedup", "M(arbitrary)", "M(blocked)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12.2f %12.2f %10.2fx %12.1f %12.1f\n",
			row.N, row.ArbitraryQ, row.BlockedQ, row.Speedup, row.ArbitraryMem, row.BlockedMem)
	}
	return b.String()
}

// AblationBlocking runs the blocking ablation across the configured
// sizes.
func AblationBlocking(cfg TheoremConfig) (*AblationReport, error) {
	rep := &AblationReport{}
	for _, n := range cfg.Sizes {
		rng := xrand.New(cfg.Seed ^ uint64(n) ^ 0xab1a)
		keys := Keys(rng, n, 1<<50)

		// Arbitrary placement: the generic engine over lists.
		netA := sim.NewNetwork(n)
		wa, err := core.NewWeb[*core.ListLevel, uint64, uint64](
			core.NewListOps(), netA, keys, core.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		memA := netA.Snapshot().MeanStorage
		qr := rng.Split()
		totalA := 0
		for i := 0; i < cfg.Queries; i++ {
			res, err := wa.Query(qr.Uint64n(1<<50), sim.HostID(qr.Intn(n)))
			if err != nil {
				return nil, err
			}
			totalA += res.Hops
		}

		// Blocked placement over the same keys.
		netB := sim.NewNetwork(n)
		wb, err := core.NewBlockedWeb(netB, keys, core.BlockedConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		memB := netB.Snapshot().MeanStorage
		qr = rng.Split()
		totalB := 0
		for i := 0; i < cfg.Queries; i++ {
			_, _, hops, err := wb.Query(qr.Uint64n(1<<50), sim.HostID(qr.Intn(n)))
			if err != nil {
				return nil, err
			}
			totalB += hops
		}

		qa := float64(totalA) / float64(cfg.Queries)
		qb := float64(totalB) / float64(cfg.Queries)
		rep.Rows = append(rep.Rows, AblationRow{
			N: n, ArbitraryQ: qa, BlockedQ: qb,
			ArbitraryMem: memA, BlockedMem: memB,
			Speedup: qa / qb,
		})
	}
	return rep, nil
}
