package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/skipwebs/skipwebs/internal/bucketskipgraph"
	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/detskipnet"
	"github.com/skipwebs/skipwebs/internal/familytree"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/skipgraph"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Table1Config tunes experiment E1.
type Table1Config struct {
	Sizes   []int // n sweep
	Queries int   // queries per size
	Updates int   // inserts per size
	Seed    uint64
}

// DefaultTable1Config mirrors the scale used in EXPERIMENTS.md.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Sizes:   []int{256, 1024, 4096, 16384},
		Queries: 512,
		Updates: 256,
		Seed:    1,
	}
}

// QuickTable1Config is a fast smoke-scale configuration.
func QuickTable1Config() Table1Config {
	return Table1Config{Sizes: []int{256, 1024}, Queries: 128, Updates: 64, Seed: 1}
}

// Table1Row is one (method, n) measurement.
type Table1Row struct {
	Method     string
	N          int
	Hosts      int
	MeanMem    float64 // per-host storage units
	MaxMem     int64
	CongPerOp  float64 // max per-host touches / operations
	QueryHops  float64
	UpdateHops float64
}

// Table1Report holds all rows plus the paper's asymptotic claims.
type Table1Report struct {
	Rows []Table1Row
}

// table1Method abstracts one comparison row.
type table1Method struct {
	name   string
	hosts  func(n int) int
	paper  string // the paper's (M, C, Q, U) row
	driver func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error)
}

// t1Ops is the uniform search/insert surface.
type t1Ops struct {
	search func(q uint64, origin sim.HostID) int
	insert func(k uint64, origin sim.HostID) (int, error)
}

func table1Methods() []table1Method {
	return []table1Method{
		{
			name:  "skip graphs/SkipNet",
			hosts: func(n int) int { return n },
			paper: "M=O(log n) C=O(log n) Q=~O(log n) U=~O(log n)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				g := skipgraph.New(net, seed, false)
				if err := g.Build(keys); err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h },
					insert: g.Insert,
				}, nil
			},
		},
		{
			name:  "NoN skip-graphs",
			hosts: func(n int) int { return n },
			paper: "M=O(log^2 n) C=O(log^2 n) Q=~O(log n/loglog n) U=~O(log^2 n)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				g := skipgraph.New(net, seed, true)
				if err := g.Build(keys); err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h },
					insert: g.Insert,
				}, nil
			},
		},
		{
			name:  "family trees",
			hosts: func(n int) int { return n },
			paper: "M=O(1) C=O(log n) Q=~O(log n) U=~O(log n)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				f := familytree.New(net, seed)
				if err := f.Build(keys); err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h := f.Search(q, o); return h },
					insert: f.Insert,
				}, nil
			},
		},
		{
			name:  "deterministic SkipNet",
			hosts: func(n int) int { return n },
			paper: "M=O(log n) C=O(log n) Q=O(log n) U=O(log^2 n)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				l := detskipnet.New(net)
				if err := l.Build(keys); err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h := l.Search(q, o); return h },
					insert: l.Insert,
				}, nil
			},
		},
		{
			name:  "bucket skip graphs",
			hosts: func(n int) int { return maxi(n/8, 4) },
			paper: "M=O(n/H+log H) C=O(n/H+log H) Q=~O(log H) U=~O(log H)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				g := bucketskipgraph.New(net, seed, maxi(len(keys)/net.Hosts(), 1))
				if err := g.Build(keys); err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h },
					insert: g.Insert,
				}, nil
			},
		},
		{
			name:  "skip-webs",
			hosts: func(n int) int { return n },
			paper: "M=O(log n) C=O(log n) Q=~O(log n/loglog n) U=~O(log n/loglog n)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				w, err := core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: seed})
				if err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h, _ := w.Query(q, o); return h },
					insert: w.Insert,
				}, nil
			},
		},
		{
			name:  "bucket skip-webs",
			hosts: func(n int) int { return maxi(n/8, 4) },
			paper: "M=O(n/H+log H) C=O(n/H+log H) Q=~O(log_M H) U=~O(log_M H)",
			driver: func(net *sim.Network, keys []uint64, seed uint64) (t1Ops, error) {
				target := maxi(len(keys)/net.Hosts(), 1)
				w, err := core.NewBucketWeb(net, keys, target, 0, seed, 1)
				if err != nil {
					return t1Ops{}, err
				}
				return t1Ops{
					search: func(q uint64, o sim.HostID) int { _, _, h, _ := w.Query(q, o); return h },
					insert: w.Insert,
				}, nil
			},
		},
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table1 runs experiment E1: the empirical version of the paper's
// Table 1 across all seven methods.
func Table1(cfg Table1Config) (*Table1Report, error) {
	rep := &Table1Report{}
	for _, n := range cfg.Sizes {
		for _, m := range table1Methods() {
			row, err := runTable1Cell(m, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at n=%d: %w", m.name, n, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func runTable1Cell(m table1Method, n int, cfg Table1Config) (Table1Row, error) {
	rng := xrand.New(cfg.Seed ^ uint64(n)*0x9e37)
	keys := Keys(rng, n+cfg.Updates, 1<<40)
	build, extra := keys[:n], keys[n:]
	hosts := m.hosts(n)
	net := sim.NewNetwork(hosts)
	ops, err := m.driver(net, build, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	memStats := net.Snapshot()
	net.ResetTraffic()

	qr := rng.Split()
	queryTotal := 0
	for i := 0; i < cfg.Queries; i++ {
		queryTotal += ops.search(qr.Uint64n(1<<40), sim.HostID(qr.Intn(hosts)))
	}
	queryStats := net.Snapshot()
	net.ResetTraffic()

	updateTotal := 0
	for i, k := range extra {
		h, err := ops.insert(k, sim.HostID(i%hosts))
		if err != nil {
			return Table1Row{}, err
		}
		updateTotal += h
	}

	return Table1Row{
		Method:     m.name,
		N:          n,
		Hosts:      hosts,
		MeanMem:    memStats.MeanStorage,
		MaxMem:     memStats.MaxStorage,
		CongPerOp:  float64(queryStats.MaxCongestion) / float64(maxi(cfg.Queries, 1)),
		QueryHops:  float64(queryTotal) / float64(maxi(cfg.Queries, 1)),
		UpdateHops: float64(updateTotal) / float64(maxi(cfg.Updates, 1)),
	}, nil
}

// String renders the report in the layout of the paper's Table 1, with
// measured columns.
func (r *Table1Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (measured): H hosts, per-host memory M, congestion C/op, query Q, update U\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %10s %10s %8s %8s %8s\n",
		"method", "n", "H", "meanM", "maxM", "C/op", "Q", "U")
	cur := -1
	for _, row := range r.Rows {
		if row.N != cur {
			cur = row.N
			fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 90))
		}
		fmt.Fprintf(&b, "%-22s %8d %8d %10.1f %10d %8.2f %8.1f %8.1f\n",
			row.Method, row.N, row.Hosts, row.MeanMem, row.MaxMem,
			row.CongPerOp, row.QueryHops, row.UpdateHops)
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 90))
	fmt.Fprintf(&b, "paper's asymptotic rows:\n")
	for _, m := range table1Methods() {
		fmt.Fprintf(&b, "  %-22s %s\n", m.name, m.paper)
	}
	return b.String()
}

// RatioToLog returns hops / log2(n), the normalization used in the shape
// checks.
func RatioToLog(hops float64, n int) float64 {
	return hops / math.Log2(float64(n))
}
