// Package experiments regenerates every table and figure of the
// skip-webs paper (Arge, Eppstein, Goodrich, PODC 2005) on the
// message-counting simulator. Each experiment returns structured rows
// plus a formatted report; cmd/skipweb-bench drives them and
// EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"strings"

	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Keys generates n distinct uint64 keys below bound.
func Keys(rng *xrand.Rand, n int, bound uint64) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(bound)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// UniformPoints generates n distinct d-dimensional points with
// coordinates below bound.
func UniformPoints(rng *xrand.Rand, d, n int, bound uint64) []quadtree.Point {
	proto := quadtree.New(d)
	seen := make(map[uint64]bool, n)
	out := make([]quadtree.Point, 0, n)
	for len(out) < n {
		p := make(quadtree.Point, d)
		for i := range p {
			p[i] = uint32(rng.Uint64n(bound))
		}
		c, err := proto.Code(p)
		if err != nil {
			panic(err)
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, p)
		}
	}
	return out
}

// ClusteredPoints generates n points in nested pairs at exponentially
// shrinking separation: the compressed quadtree over them has depth
// Θ(n) — the adversarial regime of Section 3.1. Requires n even and
// n/2 <= 29 nesting levels times any number of repetitions; extra points
// are placed uniformly.
func ClusteredPoints(rng *xrand.Rand, n int) []quadtree.Point {
	var pts []quadtree.Point
	step := uint32(1) << 29
	var base uint32
	for len(pts)+2 <= n && step > 1 {
		pts = append(pts, quadtree.Point{base + step, base + step})
		pts = append(pts, quadtree.Point{base + step + 1, base + step + 1})
		step >>= 1
	}
	// Fill the remainder with uniform points (dedup against existing).
	proto := quadtree.New(2)
	seen := make(map[uint64]bool, n)
	for _, p := range pts {
		c, _ := proto.Code(p)
		seen[c] = true
	}
	for len(pts) < n {
		p := quadtree.Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
		c, _ := proto.Code(p)
		if !seen[c] {
			seen[c] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// UniformStrings generates n distinct strings over alphabet with lengths
// in [minLen, maxLen].
func UniformStrings(rng *xrand.Rand, n int, alphabet string, minLen, maxLen int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		l := minLen + rng.Intn(maxLen-minLen+1)
		var b strings.Builder
		for i := 0; i < l; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		s := b.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// SharedPrefixStrings generates the degenerate keys a, aa, aaa, ... whose
// compressed trie is a path of depth n (Section 3.2's adversarial case).
func SharedPrefixStrings(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strings.Repeat("a", i+1)
	}
	return out
}

// DisjointSegments generates n pairwise-disjoint segments with distinct
// endpoint x coordinates inside bounds, by rejection sampling.
func DisjointSegments(rng *xrand.Rand, n int, bounds trapmap.Rect) []trapmap.Segment {
	usedX := map[int64]bool{}
	var out []trapmap.Segment
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	for len(out) < n {
		x1 := bounds.MinX + 1 + int64(rng.Uint64n(uint64(w-2)))
		x2 := x1 + 1 + int64(rng.Uint64n(uint64(w)/8+1))
		if x2 >= bounds.MaxX || usedX[x1] || usedX[x2] {
			continue
		}
		y1 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(h-2)))
		y2 := bounds.MinY + 1 + int64(rng.Uint64n(uint64(h-2)))
		s := trapmap.Segment{A: trapmap.Point{X: x1, Y: y1}, B: trapmap.Point{X: x2, Y: y2}}
		ok := true
		for _, t := range out {
			if SegmentsIntersect(s, t) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		usedX[x1] = true
		usedX[x2] = true
		out = append(out, s)
	}
	return out
}

// SegmentsIntersect is an exact segment-intersection predicate (shared
// with the rejection sampler; Build re-validates).
func SegmentsIntersect(a, b trapmap.Segment) bool {
	o := func(s trapmap.Segment, p trapmap.Point) int64 {
		return (s.B.X-s.A.X)*(p.Y-s.A.Y) - (s.B.Y-s.A.Y)*(p.X-s.A.X)
	}
	o1, o2 := o(a, b.A), o(a, b.B)
	o3, o4 := o(b, a.A), o(b, a.B)
	if ((o1 > 0) != (o2 > 0)) && ((o3 > 0) != (o4 > 0)) && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		return true
	}
	return o1 == 0 || o2 == 0 || o3 == 0 || o4 == 0
}

// Half selects each element independently with probability 1/2 (the
// halving step of Section 2.2).
func Half[T any](rng *xrand.Rand, items []T) []T {
	var out []T
	for _, x := range items {
		if rng.Bool() {
			out = append(out, x)
		}
	}
	return out
}

// newRng is a tiny helper so tests do not import xrand directly.
func newRng(seed uint64) *xrand.Rand { return xrand.New(seed) }
