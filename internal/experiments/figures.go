package experiments

import (
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/skiplist"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Figure1 regenerates the paper's Figure 1: a skip list rendering plus
// the O(log n) expected search-path statistic it illustrates.
func Figure1(seed uint64) string {
	rng := xrand.New(seed)
	l := skiplist.New[int, int](rng)
	for i := 1; i <= 12; i++ {
		l.Set(i*10, i)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: a skip list (each node copied up with probability 1/2)\n\n")
	b.WriteString(l.Render())
	total := 0
	const n, queries = 4096, 500
	big := skiplist.New[int, int](rng.Split())
	for i := 0; i < n; i++ {
		big.Set(i, i)
	}
	qr := rng.Split()
	for i := 0; i < queries; i++ {
		total += big.SearchPathLen(qr.Intn(n))
	}
	fmt.Fprintf(&b, "\nexpected search path at n=%d: %.1f nodes (log2 n = 12)\n",
		n, float64(total)/queries)
	return b.String()
}

// Figure2 regenerates the paper's Figure 2 as a level census of a 1-d
// skip-web: set sizes halve per level and top-level structures are O(1).
func Figure2(seed uint64, n int) (string, error) {
	rng := xrand.New(seed)
	keys := Keys(rng, n, 1<<40)
	net := sim.NewNetwork(n)
	w, err := core.NewWeb[*core.ListLevel, uint64, uint64](
		core.NewListOps(), net, keys, core.Config{Seed: seed})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: the 1-d skip-web level hierarchy at n=%d\n", n)
	fmt.Fprintf(&b, "%8s %12s %10s %12s %14s\n", "level", "structures", "items", "ranges", "mean set size")
	for _, c := range w.Census() {
		mean := 0.0
		if c.Structures > 0 {
			mean = float64(c.Items) / float64(c.Structures)
		}
		fmt.Fprintf(&b, "%8d %12d %10d %12d %14.2f\n", c.Depth, c.Structures, c.Items, c.Ranges, mean)
	}
	return b.String(), nil
}

// Figure4 regenerates the paper's Figure 4: an ASCII raster of a
// trapezoidal map.
func Figure4(seed uint64, n int) (string, error) {
	bounds := trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}
	rng := xrand.New(seed)
	segs := DisjointSegments(rng, n, bounds)
	m, err := trapmap.Build(segs, bounds)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: a trapezoidal map of %d disjoint segments (%d faces = 3n+1)\n\n",
		n, m.NumTraps())
	b.WriteString(m.Render(72, 24))
	return b.String(), nil
}
