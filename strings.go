package skipwebs

import (
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trie"
)

// StringLocation is the answer to a trie search (Section 3.2): the
// deepest stored locus that is a prefix of the query — "the first place
// where the query differs from the strings in the structure".
type StringLocation struct {
	// Locus is the longest stored prefix of the query.
	Locus string
	// IsKey reports whether Locus is itself a stored key.
	IsKey bool
	// Exact reports whether the query equals a stored key.
	Exact bool
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model, in model units. Zero without a model and
	// zero on cache hits.
	Latency int64
}

// Strings is a skip-web over a set of character strings, built on
// compressed digital tries: O(log n) expected messages per search even
// when the trie has depth Θ(n) (long shared prefixes).
type Strings struct {
	c  *Cluster
	st *stripeSet
	ws []*core.Web[*trie.Trie, string, string]
	readPath
}

// NewStrings builds a string skip-web over distinct non-empty keys.
// With Options.WriteStripes > 1 it builds one independent sub-trie per
// stripe of the keys' first-eight-byte codes (see the
// Options.WriteStripes doc). Striping refines locus granularity: Search
// reports the deepest stored prefix within the stripe owning the query's
// code, so a locus shared only by keys of different stripes is not
// materialized — Contains and PrefixSearch results are unchanged.
func NewStrings(c *Cluster, keys []string, opts Options) (*Strings, error) {
	st, parts := splitStringsByStripe(keys, opts.WriteStripes)
	done := c.beginBuild(opts)
	ws := make([]*core.Web[*trie.Trie, string, string], st.n())
	for i, part := range parts {
		w, err := core.NewWeb[*trie.Trie, string, string](
			core.NewTrieOps(), c.network(), part,
			core.Config{Seed: stripeSeed(opts.Seed, i, st.n()), Replicas: opts.Replicas})
		if err != nil {
			done()
			return nil, fmt.Errorf("skipwebs: %w", err)
		}
		ws[i] = w
	}
	done()
	s := &Strings{c: c, st: st, ws: ws, readPath: newReadPath(opts, st, partSizes(parts))}
	if s.nb != nil {
		for i, part := range parts {
			for _, k := range part {
				s.nb.add(i, hashKeyString(k))
			}
		}
	}
	c.attach(s)
	return s, nil
}

// Len returns the number of stored keys.
func (s *Strings) Len() int {
	n := 0
	for i := range s.ws {
		s.st.rlock(i)
		n += s.ws[i].Len()
		s.st.runlock(i)
	}
	return n
}

// TrieDepth returns the depth of the ground trie (the deepest stripe's,
// under write striping).
func (s *Strings) TrieDepth() int {
	depth := 0
	for i := range s.ws {
		s.st.rlock(i)
		if d := s.ws[i].GroundStructure().Depth(); d > depth {
			depth = d
		}
		s.st.runlock(i)
	}
	return depth
}

// Search routes a string search from the given host in O(log n)
// expected messages (Theorem 2 via Lemma 4), independent of the trie
// depth — long shared prefixes cost nothing extra. Under write striping
// the search descends the stripe owning the query's code and reports the
// deepest stored prefix within that stripe's trie (see NewStrings on
// locus granularity); exactness is unaffected. The descent itself is
// allocation-free (pooled accounting Op, iterator-based range
// enumeration); only the returned location's locus string is shared with
// the ground trie, never copied.
func (s *Strings) Search(q string, origin HostID) (StringLocation, error) {
	ck := cacheKey{op: opSearch, str: q}
	var sum uint64
	if s.rc != nil {
		if v, ok := s.rc.get(origin, ck); ok {
			return v.(StringLocation), nil
		}
		sum = s.rc.churnNow()
	}
	i := s.st.of(stringCode(q))
	s.st.rlock(i)
	defer s.st.runlock(i)
	if s.rc != nil {
		sum += uint64(s.st.writeCount(i))
	}
	res, err := s.ws[i].Query(q, origin)
	if err != nil {
		return StringLocation{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := s.ws[i].GroundStructure()
	id := trie.NodeID(res.Range)
	locus := g.Locus(id)
	loc := StringLocation{
		Locus:   locus,
		IsKey:   g.IsKey(id),
		Exact:   g.IsKey(id) && locus == q,
		Hops:    res.Hops,
		Latency: res.Latency,
	}
	if s.rc != nil {
		memo := loc
		memo.Hops, memo.Latency = 0, 0
		s.rc.put(origin, ck, memo, i, i, sum)
	}
	return loc, nil
}

// Contains reports whether the exact key is stored — O(log n) expected
// messages, the same bound as Search. A stored key lives in the stripe
// its code routes to, so membership needs only that stripe.
func (s *Strings) Contains(q string, origin HostID) (bool, int, error) {
	found, c, err := s.containsCost(q, origin)
	return found, c.Hops, err
}

// containsCost is Contains returning the full hop/latency cost pair —
// the variant ContainsBatch surfaces per-query latency through.
func (s *Strings) containsCost(q string, origin HostID) (bool, core.Cost, error) {
	if s.nb != nil && s.nb.definitelyAbsent(origin, s.st.of(stringCode(q)), hashKeyString(q)) {
		return false, core.Cost{}, nil
	}
	loc, err := s.Search(q, origin)
	if err != nil {
		return false, core.Cost{}, err
	}
	if s.nb != nil && !loc.Exact {
		s.nb.falsePositive(origin)
	}
	return loc.Exact, core.Cost{Hops: loc.Hops, Latency: loc.Latency}, nil
}

// PrefixSearch returns up to max stored keys with the given prefix (max
// <= 0 means all), in sorted order. The skip-web routes to the prefix
// locus; enumerating the k results costs one extra hop per result, which
// is charged into the returned hop count. Under write striping the
// enumeration visits every stripe whose code range intersects the
// prefix's code interval — each charging its own routed search — and
// concatenates the per-stripe sorted results (stripes hold contiguous
// code ranges, so the concatenation is sorted).
func (s *Strings) PrefixSearch(prefix string, max int, origin HostID) ([]string, int, error) {
	keys, c, err := s.prefixSearchCost(prefix, max, origin)
	return keys, c.Hops, err
}

// prefixSearchCost is PrefixSearch returning the full hop/latency cost
// pair — the variant PrefixSearchBatch surfaces per-query latency
// through. Latency covers the routed searches; the per-result
// enumeration hops are hop-only (see prefixInStripe).
func (s *Strings) prefixSearchCost(prefix string, max int, origin HostID) ([]string, core.Cost, error) {
	ck := cacheKey{op: opPrefix, code: uint64(max), str: prefix}
	var sum uint64
	if s.rc != nil {
		if v, ok := s.rc.get(origin, ck); ok {
			// Hand out a fresh copy; the memoized slice stays private.
			memo := v.([]string)
			if memo == nil {
				return nil, core.Cost{}, nil
			}
			return append([]string(nil), memo...), core.Cost{}, nil
		}
		sum = s.rc.churnNow()
	}
	s0 := s.st.of(stringCode(prefix))
	s1 := s.st.of(prefixCodeHi(prefix))
	var keys []string
	var cost core.Cost
	last := s0
	for i := s0; i <= s1; i++ {
		remaining := max
		if max > 0 {
			remaining = max - len(keys)
			if remaining == 0 {
				break
			}
		}
		ks, c, wc, err := s.prefixInStripe(i, prefix, remaining, origin)
		sum += wc
		last = i
		cost.Hops += c.Hops
		cost.Latency += c.Latency
		if err != nil {
			return keys, cost, err
		}
		keys = append(keys, ks...)
	}
	if s.rc != nil {
		// The answer depends only on the stripes visited: an early break
		// means max was reached, which the control breaks on identically.
		s.rc.put(origin, ck, append([]string(nil), keys...), s0, last, sum)
	}
	return keys, cost, nil
}

// prefixInStripe enumerates stripe i's keys with the given prefix: a
// routed search to the prefix locus plus one charged hop per result.
// Latency covers the routed search only — the enumeration's per-result
// hops walk the ground trie without tracking per-locus host placement.
// The third result is the stripe's write counter captured under its
// reader lock — the epoch component the caller's cache entry stores.
func (s *Strings) prefixInStripe(i int, prefix string, max int, origin HostID) ([]string, core.Cost, uint64, error) {
	s.st.rlock(i)
	defer s.st.runlock(i)
	wc := uint64(s.st.writeCount(i))
	res, err := s.ws[i].Query(prefix, origin)
	if err != nil {
		return nil, core.Cost{}, wc, fmt.Errorf("skipwebs: %w", err)
	}
	g := s.ws[i].GroundStructure()
	locus := g.Locus(trie.NodeID(res.Range))
	// The terminal locus is the deepest stored prefix of `prefix`; the
	// subtree holding all `prefix`-keys hangs at or just below it.
	if !strings.HasPrefix(locus, prefix) {
		if _, ok := g.LocatePrefix(prefix); !ok {
			return nil, core.Cost{Hops: res.Hops, Latency: res.Latency}, wc, nil
		}
	}
	keys := g.KeysWithPrefix(prefix, max)
	return keys, core.Cost{Hops: res.Hops + len(keys), Latency: res.Latency}, wc, nil
}

// prefixCodeHi is the largest stripe code any string with the given
// prefix can have: the prefix's first eight bytes padded with 0xff. With
// stringCode(prefix) as the low end it brackets the code interval the
// prefix's keys occupy.
func prefixCodeHi(prefix string) uint64 {
	var code uint64
	for i := 0; i < 8; i++ {
		code <<= 8
		if i < len(prefix) {
			code |= uint64(prefix[i])
		} else {
			code |= 0xff
		}
	}
	return code
}

// Insert adds a key, returning the update's message cost — O(log n)
// expected messages (Section 4): a routed search plus an O(1)-message
// locus change per level of the key's bit path. The update holds only
// its stripe's writer lock, so inserts into different code ranges run
// concurrently.
func (s *Strings) Insert(key string, origin HostID) (int, error) {
	i := s.st.of(stringCode(key))
	s.st.wlock(i)
	defer s.st.wunlock(i)
	if s.nb != nil {
		s.nb.add(i, hashKeyString(key))
	}
	h, err := s.ws[i].Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n)
// expected messages (Section 4), pruning unbranched loci level by
// level. The update holds only its stripe's writer lock.
func (s *Strings) Delete(key string, origin HostID) (int, error) {
	i := s.st.of(stringCode(key))
	s.st.wlock(i)
	defer s.st.wunlock(i)
	h, err := s.ws[i].Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// PrefixResult is one answer of a prefix-search batch.
type PrefixResult struct {
	// Keys are the stored keys with the queried prefix, sorted.
	Keys []string
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the modeled critical-path latency of the routed
	// searches, in model units (per-result enumeration hops are
	// hop-only). Zero without a model and zero on cache hits.
	Latency int64
}

// SearchBatch answers one trie search per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (s *Strings) SearchBatch(qs []string, origins []HostID) ([]StringLocation, error) {
	return runReadBatch(s.c, qs, origins, s.Search)
}

// ContainsBatch answers one exact-membership query per key concurrently.
func (s *Strings) ContainsBatch(qs []string, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(s.c, qs, origins, func(q string, origin HostID) (ContainsResult, error) {
		ok, c, err := s.containsCost(q, origin)
		return ContainsResult{Found: ok, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// PrefixSearchBatch answers one prefix enumeration per prefix
// concurrently, each returning up to max keys (max <= 0 means all).
func (s *Strings) PrefixSearchBatch(prefixes []string, max int, origins []HostID) ([]PrefixResult, error) {
	return runReadBatch(s.c, prefixes, origins, func(p string, origin HostID) (PrefixResult, error) {
		keys, c, err := s.prefixSearchCost(p, max, origin)
		return PrefixResult{Keys: keys, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// InsertBatch adds the keys — one parallel writer per code stripe,
// strict input order within each stripe — returning each update's
// message cost in input order.
func (s *Strings) InsertBatch(keys []string, origins []HostID) ([]int, error) {
	return runWriteBatch(s.c, keys, origins, s.st, stringCode, s.Insert)
}

// DeleteBatch removes the keys — one parallel writer per code stripe,
// strict input order within each stripe — returning each update's
// message cost in input order.
func (s *Strings) DeleteBatch(keys []string, origins []HostID) ([]int, error) {
	return runWriteBatch(s.c, keys, origins, s.st, stringCode, s.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: trie loci migrate between hosts with their
// hyperlinks, one message per storage unit moved.
func (s *Strings) rehome(from HostID, op *sim.Op) {
	s.bumpChurn()
	for _, w := range s.ws {
		w.Rehome(from, op)
	}
}
func (s *Strings) rebalance(onto HostID, op *sim.Op) {
	s.bumpChurn()
	for _, w := range s.ws {
		w.Rebalance(onto, op)
	}
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated locus from its surviving live replicas.
func (s *Strings) repair(op *sim.Op) error {
	s.bumpChurn()
	return repairStripes(op, s.ws)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (s *Strings) restart(h HostID, op *sim.Op) int {
	s.bumpChurn()
	n := 0
	for _, w := range s.ws {
		n += w.RestartHost(h, op)
	}
	return n
}

func (s *Strings) kind() string { return "strings" }

// CheckConsistent verifies the string web's invariants: every locus on
// a live host, hyperlinks matching recomputation, per-level counts that
// add up, and — under striping — every key stored in the stripe its
// code routes to. Cost: O(n log n) local work, no messages.
func (s *Strings) CheckConsistent() error {
	for i, w := range s.ws {
		if err := w.CheckInvariants(); err != nil {
			return err
		}
		if s.st.n() > 1 {
			for _, k := range w.GroundStructure().KeysWithPrefix("", 0) {
				if s.st.of(stringCode(k)) != i {
					return fmt.Errorf("skipwebs: key %q stored in stripe %d but routes to stripe %d", k, i, s.st.of(stringCode(k)))
				}
			}
		}
	}
	return nil
}
