package skipwebs

import (
	"fmt"
	"strings"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trie"
)

// StringLocation is the answer to a trie search (Section 3.2): the
// deepest stored locus that is a prefix of the query — "the first place
// where the query differs from the strings in the structure".
type StringLocation struct {
	// Locus is the longest stored prefix of the query.
	Locus string
	// IsKey reports whether Locus is itself a stored key.
	IsKey bool
	// Exact reports whether the query equals a stored key.
	Exact bool
	// Hops is the number of messages the query cost.
	Hops int
}

// Strings is a skip-web over a set of character strings, built on
// compressed digital tries: O(log n) expected messages per search even
// when the trie has depth Θ(n) (long shared prefixes).
type Strings struct {
	c *Cluster
	w *core.Web[*trie.Trie, string, string]
}

// NewStrings builds a string skip-web over distinct non-empty keys.
func NewStrings(c *Cluster, keys []string, opts Options) (*Strings, error) {
	done := c.beginBuild(opts.Durable)
	w, err := core.NewWeb[*trie.Trie, string, string](
		core.NewTrieOps(), c.network(), keys, core.Config{Seed: opts.Seed, Replicas: opts.Replicas})
	done()
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	s := &Strings{c: c, w: w}
	c.attach(s)
	return s, nil
}

// Len returns the number of stored keys.
func (s *Strings) Len() int { return s.w.Len() }

// TrieDepth returns the depth of the ground trie.
func (s *Strings) TrieDepth() int { return s.w.GroundStructure().Depth() }

// Search routes a string search from the given host in O(log n)
// expected messages (Theorem 2 via Lemma 4), independent of the trie
// depth — long shared prefixes cost nothing extra. The descent itself
// is allocation-free (pooled accounting Op, iterator-based range
// enumeration); only the returned location's locus string is shared with
// the ground trie, never copied.
func (s *Strings) Search(q string, origin HostID) (StringLocation, error) {
	res, err := s.w.Query(q, origin)
	if err != nil {
		return StringLocation{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := s.w.GroundStructure()
	id := trie.NodeID(res.Range)
	locus := g.Locus(id)
	return StringLocation{
		Locus: locus,
		IsKey: g.IsKey(id),
		Exact: g.IsKey(id) && locus == q,
		Hops:  res.Hops,
	}, nil
}

// Contains reports whether the exact key is stored — O(log n) expected
// messages, the same bound as Search.
func (s *Strings) Contains(q string, origin HostID) (bool, int, error) {
	loc, err := s.Search(q, origin)
	if err != nil {
		return false, 0, err
	}
	return loc.Exact, loc.Hops, nil
}

// PrefixSearch returns up to max stored keys with the given prefix (max
// <= 0 means all), in sorted order. The skip-web routes to the prefix
// locus; enumerating the k results costs one extra hop per result, which
// is charged into the returned hop count.
func (s *Strings) PrefixSearch(prefix string, max int, origin HostID) ([]string, int, error) {
	loc, err := s.Search(prefix, origin)
	if err != nil {
		return nil, 0, err
	}
	g := s.w.GroundStructure()
	// The terminal locus is the deepest stored prefix of `prefix`; the
	// subtree holding all `prefix`-keys hangs at or just below it.
	if !strings.HasPrefix(loc.Locus, prefix) {
		id, ok := g.LocatePrefix(prefix)
		if !ok {
			return nil, loc.Hops, nil
		}
		_ = id
	}
	keys := g.KeysWithPrefix(prefix, max)
	return keys, loc.Hops + len(keys), nil
}

// Insert adds a key, returning the update's message cost — O(log n)
// expected messages (Section 4): a routed search plus an O(1)-message
// locus change per level of the key's bit path.
func (s *Strings) Insert(key string, origin HostID) (int, error) {
	h, err := s.w.Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n)
// expected messages (Section 4), pruning unbranched loci level by
// level.
func (s *Strings) Delete(key string, origin HostID) (int, error) {
	h, err := s.w.Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// PrefixResult is one answer of a prefix-search batch.
type PrefixResult struct {
	// Keys are the stored keys with the queried prefix, sorted.
	Keys []string
	// Hops is the number of messages the query cost.
	Hops int
}

// SearchBatch answers one trie search per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (s *Strings) SearchBatch(qs []string, origins []HostID) ([]StringLocation, error) {
	return runReadBatch(s.c, qs, origins, s.Search)
}

// ContainsBatch answers one exact-membership query per key concurrently.
func (s *Strings) ContainsBatch(qs []string, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(s.c, qs, origins, func(q string, origin HostID) (ContainsResult, error) {
		ok, hops, err := s.Contains(q, origin)
		return ContainsResult{Found: ok, Hops: hops}, err
	})
}

// PrefixSearchBatch answers one prefix enumeration per prefix
// concurrently, each returning up to max keys (max <= 0 means all).
func (s *Strings) PrefixSearchBatch(prefixes []string, max int, origins []HostID) ([]PrefixResult, error) {
	return runReadBatch(s.c, prefixes, origins, func(p string, origin HostID) (PrefixResult, error) {
		keys, hops, err := s.PrefixSearch(p, max, origin)
		return PrefixResult{Keys: keys, Hops: hops}, err
	})
}

// InsertBatch adds the keys under the cluster's write lock (single
// writer), returning each update's message cost in input order.
func (s *Strings) InsertBatch(keys []string, origins []HostID) ([]int, error) {
	return runWriteBatch(s.c, keys, origins, s.Insert)
}

// DeleteBatch removes the keys under the cluster's write lock, returning
// each update's message cost in input order.
func (s *Strings) DeleteBatch(keys []string, origins []HostID) ([]int, error) {
	return runWriteBatch(s.c, keys, origins, s.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: trie loci migrate between hosts with their
// hyperlinks, one message per storage unit moved.
func (s *Strings) rehome(from HostID, op *sim.Op)    { s.w.Rehome(from, op) }
func (s *Strings) rebalance(onto HostID, op *sim.Op) { s.w.Rebalance(onto, op) }

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated locus from its surviving live replicas.
func (s *Strings) repair(op *sim.Op) error { return s.w.Repair(op) }

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (s *Strings) restart(h HostID, op *sim.Op) int { return s.w.RestartHost(h, op) }

func (s *Strings) kind() string { return "strings" }

// CheckConsistent verifies the string web's invariants: every locus on
// a live host, hyperlinks matching recomputation, and per-level counts
// that add up. Cost: O(n log n) local work, no messages.
func (s *Strings) CheckConsistent() error { return s.w.CheckInvariants() }
