package skipwebs

import (
	"runtime"
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// latencyWorkload drives an identical mixed workload over all six
// structures on one cluster and returns (per-op hops, total latency,
// cluster stats). Everything is seeded, so two clusters that differ
// only in their latency model must agree on every hop count.
func latencyWorkload(t *testing.T, model CostModel) ([]int, int64, Stats) {
	t.Helper()
	const hosts, keyN = 32, 512
	var copts []ClusterOption
	if model != nil {
		copts = append(copts, WithLatency(model))
	}
	c := NewCluster(hosts, copts...)
	defer c.Close()
	rng := xrand.New(77)
	keys := experiments.Keys(rng, keyN, 1<<40)
	oned, err := NewOneDim(c, keys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := NewBlocked(c, keys, Options{Seed: 8, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := NewBucketed(c, keys, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raw := experiments.UniformPoints(rng, 2, keyN/2, 1<<30)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point(p)
	}
	points, err := NewPoints(c, 2, pts, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	strKeys := experiments.UniformStrings(rng, keyN/2, "acgt", 6, 20)
	strs, err := NewStrings(c, strKeys, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rawSegs := experiments.DisjointSegments(rng, 64, trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000})
	segs := make([]PlanarSegment, len(rawSegs))
	for i, s := range rawSegs {
		segs[i] = PlanarSegment{
			A: PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	planar, err := NewPlanar(c, segs, PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	c.ResetTraffic()

	qrng := xrand.New(99)
	var hops []int
	var latTotal int64
	add := func(h int, lat int64, err error) {
		if err != nil {
			t.Fatal(err)
		}
		hops = append(hops, h)
		latTotal += lat
	}
	for i := 0; i < 240; i++ {
		origin := HostID(int(qrng.Uint64n(32)))
		switch i % 8 {
		case 0:
			r, err := oned.Floor(qrng.Uint64n(1<<40), origin)
			add(r.Hops, r.Latency, err)
		case 1:
			r, err := blocked.Floor(qrng.Uint64n(1<<40), origin)
			add(r.Hops, r.Latency, err)
		case 2:
			r, err := bucketed.Floor(qrng.Uint64n(1<<40), origin)
			add(r.Hops, r.Latency, err)
		case 3:
			loc, err := points.Locate(Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}, origin)
			add(loc.Hops, loc.Latency, err)
		case 4:
			loc, err := strs.Search(strKeys[int(qrng.Uint64n(uint64(len(strKeys))))], origin)
			add(loc.Hops, loc.Latency, err)
		case 5:
			tr, err := planar.Locate(PlanarPoint{
				X: int64(qrng.Uint64n(1998)) - 999,
				Y: int64(qrng.Uint64n(1998)) - 999,
			}, origin)
			add(tr.Hops, tr.Latency, err)
		case 6:
			// Replicated write-through: the k = 2 blocked build exercises
			// the fan-out window on every insert.
			h, err := blocked.Insert(qrng.Uint64n(1<<40)|1<<41, origin)
			add(h, 0, err)
		case 7:
			h, err := oned.Insert(qrng.Uint64n(1<<40)|1<<42, origin)
			add(h, 0, err)
		}
	}
	return hops, latTotal, c.Stats()
}

// TestLatencyNilGoldenParity is the cross-structure guard for the
// default accounting: installing a latency model changes per-op latency
// only — every hop count, every message total, and the congestion
// profile are bit-identical to the nil-model run, and the nil-model run
// reports zero latency everywhere.
func TestLatencyNilGoldenParity(t *testing.T) {
	hopsNil, latNil, statsNil := latencyWorkload(t, nil)
	hopsMod, latMod, statsMod := latencyWorkload(t, TwoLevelLatency(8,
		UniformLatency(5, 1, 5), LogNormalLatency(6, 4.6, 0.25)))

	if latNil != 0 {
		t.Fatalf("nil model accumulated %d latency units, want 0", latNil)
	}
	if statsNil.LatencyOps != 0 || statsNil.LatencyP50 != 0 || statsNil.LatencyP99 != 0 ||
		statsNil.LatencyMax != 0 || statsNil.LatencyMean != 0 {
		t.Fatalf("nil model latency stats not all zero: %+v", statsNil)
	}
	if latMod == 0 || statsMod.LatencyOps == 0 || statsMod.LatencyMax == 0 {
		t.Fatalf("model run recorded no latency: total %d, stats %+v", latMod, statsMod)
	}
	if len(hopsNil) != len(hopsMod) {
		t.Fatalf("op counts diverge: %d vs %d", len(hopsNil), len(hopsMod))
	}
	for i := range hopsNil {
		if hopsNil[i] != hopsMod[i] {
			t.Fatalf("op %d hops diverge under the model: %d vs %d", i, hopsNil[i], hopsMod[i])
		}
	}
	if statsNil.TotalMessages != statsMod.TotalMessages {
		t.Fatalf("total messages diverge under the model: %d vs %d", statsNil.TotalMessages, statsMod.TotalMessages)
	}
	if statsNil.MaxCongestion != statsMod.MaxCongestion || statsNil.TotalOps != statsMod.TotalOps {
		t.Fatalf("congestion/op counters diverge under the model: %+v vs %+v", statsNil, statsMod)
	}
}

// blockedLatencyFixture builds a striped, replicated blocked web under
// a heterogeneous model with a fixed query set — the hardest
// configuration for latency determinism (stripe dispatch goroutines,
// replica routing, fan-out windows).
func blockedLatencyFixture(t *testing.T, stripes int) (*Cluster, *Blocked, []uint64, []HostID) {
	t.Helper()
	const hosts, keyN, queries = 32, 768, 384
	model := TwoLevelLatency(8, UniformLatency(5, 1, 5), LogNormalLatency(6, 4.6, 0.25))
	c := NewCluster(hosts, WithLatency(model))
	keys := experiments.Keys(xrand.New(31), keyN, 1<<40)
	w, err := NewBlocked(c, keys, Options{Seed: 17, Replicas: 2, WriteStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	qrng := xrand.New(32)
	qs := make([]uint64, queries)
	origins := make([]HostID, queries)
	for i := range qs {
		qs[i] = qrng.Uint64n(1 << 40)
		origins[i] = HostID(int(qrng.Uint64n(hosts)))
	}
	return c, w, qs, origins
}

// TestLatencyDeterminism is the property test for the purity contract:
// identical seeds produce identical per-op latency no matter how the
// execution is scheduled — synchronous vs batched, one batch vs many,
// GOMAXPROCS 1 vs all cores, and at every write-stripe count.
func TestLatencyDeterminism(t *testing.T) {
	for _, stripes := range []int{1, 4} {
		c, w, qs, origins := blockedLatencyFixture(t, stripes)
		want := make([]int64, len(qs))
		for i := range qs {
			r, err := w.Floor(qs[i], origins[i])
			if err != nil {
				t.Fatal(err)
			}
			want[i] = r.Latency
		}
		c.Close()

		check := func(name string, got []FloorResult) {
			t.Helper()
			for i := range got {
				if got[i].Latency != want[i] {
					t.Fatalf("stripes=%d %s: op %d latency %d, want %d (sync)", stripes, name, i, got[i].Latency, want[i])
				}
			}
		}
		// One batch, full parallelism.
		c2, w2, _, _ := blockedLatencyFixture(t, stripes)
		res, err := w2.FloorBatch(qs, origins)
		if err != nil {
			t.Fatal(err)
		}
		check("one batch", res)
		// Different batch grouping: many small batches over the same build.
		var regrouped []FloorResult
		for lo := 0; lo < len(qs); lo += 37 {
			hi := lo + 37
			if hi > len(qs) {
				hi = len(qs)
			}
			part, err := w2.FloorBatch(qs[lo:hi], origins[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			regrouped = append(regrouped, part...)
		}
		check("regrouped batches", regrouped)
		c2.Close()
		// GOMAXPROCS = 1: fully serialized scheduling.
		prev := runtime.GOMAXPROCS(1)
		c3, w3, _, _ := blockedLatencyFixture(t, stripes)
		res1, err := w3.FloorBatch(qs, origins)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		check("GOMAXPROCS=1", res1)
		c3.Close()
	}
}

// TestLatencyStatsSurface checks the public Stats view: a cluster under
// a model reports a coherent latency summary (ops counted, mean between
// min and max, p50 <= p99 <= max) and ResetTraffic clears it.
func TestLatencyStatsSurface(t *testing.T) {
	c, w, qs, origins := blockedLatencyFixture(t, 1)
	defer c.Close()
	c.ResetTraffic()
	if _, err := w.FloorBatch(qs, origins); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.LatencyOps != int64(len(qs)) {
		t.Fatalf("LatencyOps = %d, want %d (one per query)", s.LatencyOps, len(qs))
	}
	if s.LatencyP50 <= 0 || s.LatencyP50 > s.LatencyP99 || s.LatencyP99 > s.LatencyMax {
		t.Fatalf("quantiles out of order: p50 %d p99 %d max %d", s.LatencyP50, s.LatencyP99, s.LatencyMax)
	}
	if s.LatencyMean <= 0 || s.LatencyMean > float64(s.LatencyMax) {
		t.Fatalf("mean %g outside (0, max %d]", s.LatencyMean, s.LatencyMax)
	}
	c.ResetTraffic()
	s = c.Stats()
	if s.LatencyOps != 0 || s.LatencyMax != 0 {
		t.Fatalf("latency stats survive ResetTraffic: %+v", s)
	}
}

// TestClusterWorkersStartedLazy pins the public lazy-spawn counter: a
// big cluster runs zero workers until a batch dispatches to an origin,
// and then only as many as the batch touched.
func TestClusterWorkersStartedLazy(t *testing.T) {
	c := NewCluster(2048)
	defer c.Close()
	keys := experiments.Keys(xrand.New(3), 256, 1<<40)
	w, err := NewOneDim(c, keys, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.WorkersStarted(); got != 0 {
		t.Fatalf("WorkersStarted = %d after build, want 0 (construction is inline)", got)
	}
	qs := []uint64{keys[0], keys[1], keys[2], keys[3]}
	if _, err := w.ContainsBatch(qs, []HostID{5}); err != nil {
		t.Fatal(err)
	}
	if got := c.WorkersStarted(); got != 1 {
		t.Fatalf("WorkersStarted = %d after a single-origin batch, want 1", got)
	}
	if _, err := w.ContainsBatch(qs, []HostID{5, 9, 11}); err != nil {
		t.Fatal(err)
	}
	if got := c.WorkersStarted(); got != 3 {
		t.Fatalf("WorkersStarted = %d after origins {5,9,11}, want 3", got)
	}
}
