// Benchmarks regenerating each of the paper's evaluation artifacts; see
// EXPERIMENTS.md for the recorded paper-vs-measured outcomes. Each
// benchmark reports the paper's cost metric (messages per operation) via
// b.ReportMetric, so `go test -bench=.` reproduces the shapes without
// reading timing output.
package skipwebs

import (
	"fmt"
	"testing"

	"github.com/skipwebs/skipwebs/internal/bucketskipgraph"
	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/detskipnet"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/familytree"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/skipgraph"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

const benchN = 4096

func benchKeys(extra int) []uint64 {
	return experiments.Keys(xrand.New(1), benchN+extra, 1<<40)
}

// --- Table 1 (E1): one benchmark per method, reporting msgs/query.

func runQueryBench(b *testing.B, search func(q uint64, o sim.HostID) int, hosts int) {
	b.Helper()
	rng := xrand.New(2)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += search(rng.Uint64n(1<<40), sim.HostID(rng.Intn(hosts)))
	}
	b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
}

func BenchmarkTable1_SkipGraph(b *testing.B) {
	net := sim.NewNetwork(benchN)
	g := skipgraph.New(net, 1, false)
	if err := g.Build(benchKeys(0)); err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h }, benchN)
}

func BenchmarkTable1_NoNSkipGraph(b *testing.B) {
	net := sim.NewNetwork(benchN)
	g := skipgraph.New(net, 1, true)
	if err := g.Build(benchKeys(0)); err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h }, benchN)
}

func BenchmarkTable1_FamilyTree(b *testing.B) {
	net := sim.NewNetwork(benchN)
	f := familytree.New(net, 1)
	if err := f.Build(benchKeys(0)); err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h := f.Search(q, o); return h }, benchN)
}

func BenchmarkTable1_DeterministicSkipNet(b *testing.B) {
	net := sim.NewNetwork(benchN)
	l := detskipnet.New(net)
	if err := l.Build(benchKeys(0)); err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h := l.Search(q, o); return h }, benchN)
}

func BenchmarkTable1_BucketSkipGraph(b *testing.B) {
	hosts := benchN / 8
	net := sim.NewNetwork(hosts)
	g := bucketskipgraph.New(net, 1, 8)
	if err := g.Build(benchKeys(0)); err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h := g.Search(q, o); return h }, hosts)
}

func BenchmarkTable1_SkipWeb(b *testing.B) {
	net := sim.NewNetwork(benchN)
	w, err := core.NewBlockedWeb(net, benchKeys(0), core.BlockedConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h, _ := w.Query(q, o); return h }, benchN)
}

func BenchmarkTable1_BucketSkipWeb(b *testing.B) {
	hosts := benchN / 8
	net := sim.NewNetwork(hosts)
	w, err := core.NewBucketWeb(net, benchKeys(0), 8, 0, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	runQueryBench(b, func(q uint64, o sim.HostID) int { _, _, h, _ := w.Query(q, o); return h }, hosts)
}

func BenchmarkTable1_Updates(b *testing.B) {
	// Update cost comparison: msgs/insert for the two headline methods.
	for _, method := range []string{"skipgraph", "skipweb"} {
		b.Run(method, func(b *testing.B) {
			keys := benchKeys(b.N)
			net := sim.NewNetwork(benchN + b.N)
			var insert func(k uint64, o sim.HostID) (int, error)
			switch method {
			case "skipgraph":
				g := skipgraph.New(net, 1, false)
				if err := g.Build(keys[:benchN]); err != nil {
					b.Fatal(err)
				}
				insert = g.Insert
			case "skipweb":
				w, err := core.NewBlockedWeb(net, keys[:benchN], core.BlockedConfig{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				insert = w.Insert
			}
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := insert(keys[benchN+i], sim.HostID(i%benchN))
				if err != nil {
					b.Fatal(err)
				}
				total += h
			}
			b.ReportMetric(float64(total)/float64(b.N), "msgs/insert")
		})
	}
}

// --- Lemmas (E2–E5): conflict-list size per halving trial.

func BenchmarkLemma1Halving(b *testing.B) {
	b.ReportAllocs()
	rep, err := experiments.Lemma1(experiments.LemmaConfig{Sizes: []int{benchN}, Trials: b.N, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Rows[0].Mean, "conflicts/trial")
}

func BenchmarkLemma3Halving(b *testing.B) {
	b.ReportAllocs()
	rep, err := experiments.Lemma3(experiments.LemmaConfig{Sizes: []int{benchN}, Trials: b.N, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Rows[0].Mean, "conflicts/trial")
}

func BenchmarkLemma4Halving(b *testing.B) {
	b.ReportAllocs()
	rep, err := experiments.Lemma4(experiments.LemmaConfig{Sizes: []int{benchN}, Trials: b.N, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Rows[0].Mean, "conflicts/trial")
}

func BenchmarkLemma5Halving(b *testing.B) {
	b.ReportAllocs()
	rep, err := experiments.Lemma5(experiments.LemmaConfig{Sizes: []int{512}, Trials: b.N, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Rows[0].Mean, "conflicts/trial")
}

// --- Theorem 2 (E6): multi-dimensional query routing.

func BenchmarkTheorem2MultiDim(b *testing.B) {
	for _, kind := range []string{"quadtree-uniform", "quadtree-clustered", "trie-uniform", "trie-sharedprefix"} {
		b.Run(kind, func(b *testing.B) {
			rng := xrand.New(3)
			cluster := NewCluster(1024)
			var search func(i int) int
			switch kind {
			case "quadtree-uniform", "quadtree-clustered":
				var pts []Point
				if kind == "quadtree-uniform" {
					for _, p := range experiments.UniformPoints(rng, 2, 1024, 1<<30) {
						pts = append(pts, Point(p))
					}
				} else {
					for _, p := range experiments.ClusteredPoints(rng, 1024) {
						pts = append(pts, Point(p))
					}
				}
				w, err := NewPoints(cluster, 2, pts, Options{Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				search = func(i int) int {
					q := Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
					loc, err := w.Locate(q, HostID(i%1024))
					if err != nil {
						b.Fatal(err)
					}
					return loc.Hops
				}
			case "trie-uniform", "trie-sharedprefix":
				var keys []string
				if kind == "trie-uniform" {
					keys = experiments.UniformStrings(rng, 1024, "acgt", 4, 24)
				} else {
					keys = experiments.SharedPrefixStrings(1024)
				}
				w, err := NewStrings(cluster, keys, Options{Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				search = func(i int) int {
					loc, err := w.Search(keys[i%len(keys)], HostID(i%1024))
					if err != nil {
						b.Fatal(err)
					}
					return loc.Hops
				}
			}
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += search(i)
			}
			b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
		})
	}
}

// --- Theorem 2 (E7): blocking sweep over M.

func BenchmarkTheorem2Blocking(b *testing.B) {
	keys := benchKeys(0)
	for _, m := range []int{4, 16, 256} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			net := sim.NewNetwork(benchN)
			w, err := core.NewBlockedWeb(net, keys, core.BlockedConfig{Seed: 3, M: m})
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(4)
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, h, _ := w.Query(rng.Uint64n(1<<40), sim.HostID(rng.Intn(benchN)))
				total += h
			}
			b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
		})
	}
}

// --- Section 4 (E8): update routing per structure.

func BenchmarkUpdates(b *testing.B) {
	for _, kind := range []string{"onedim", "quadtree", "trie"} {
		b.Run(kind, func(b *testing.B) {
			rng := xrand.New(5)
			cluster := NewCluster(1024)
			var insert func(i int) int
			switch kind {
			case "onedim":
				keys := experiments.Keys(rng, 1024+b.N, 1<<50)
				w, err := NewBlocked(cluster, keys[:1024], Options{Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				insert = func(i int) int {
					h, err := w.Insert(keys[1024+i], HostID(i%1024))
					if err != nil {
						b.Fatal(err)
					}
					return h
				}
			case "quadtree":
				raw := experiments.UniformPoints(rng, 2, 1024+b.N, 1<<30)
				var pts []Point
				for _, p := range raw {
					pts = append(pts, Point(p))
				}
				w, err := NewPoints(cluster, 2, pts[:1024], Options{Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				insert = func(i int) int {
					h, err := w.Insert(pts[1024+i], HostID(i%1024))
					if err != nil {
						b.Fatal(err)
					}
					return h
				}
			case "trie":
				keys := experiments.UniformStrings(rng, 1024+b.N, "acgt", 6, 24)
				w, err := NewStrings(cluster, keys[:1024], Options{Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				insert = func(i int) int {
					h, err := w.Insert(keys[1024+i], HostID(i%1024))
					if err != nil {
						b.Fatal(err)
					}
					return h
				}
			}
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += insert(i)
			}
			b.ReportMetric(float64(total)/float64(b.N), "msgs/insert")
		})
	}
}

// --- E9: congestion under uniform load.

func BenchmarkCongestion(b *testing.B) {
	net := sim.NewNetwork(benchN)
	w, err := core.NewBlockedWeb(net, benchKeys(0), core.BlockedConfig{Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	net.ResetTraffic()
	rng := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Query(rng.Uint64n(1<<40), sim.HostID(rng.Intn(benchN)))
	}
	s := net.Snapshot()
	b.ReportMetric(float64(s.MaxCongestion)/float64(b.N), "maxtouch/query")
}

// --- Batch engine: wall-clock throughput of concurrent batch queries.

func BenchmarkBatchFloorThroughput(b *testing.B) {
	cluster := NewCluster(256)
	defer cluster.Close()
	keys := benchKeys(0)
	w, err := NewBlocked(cluster, keys, Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(10)
	const batch = 8192
	qs := make([]uint64, batch)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
	}
	if _, err := w.FloorBatch(qs[:512], nil); err != nil { // warm the pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.FloorBatch(qs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// --- Figures: structure regeneration cost (and smoke coverage).

func BenchmarkFigure2Census(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(uint64(i), 1024); err != nil {
			b.Fatal(err)
		}
	}
}
