package main

import (
	"strings"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/serve"
	"github.com/skipwebs/skipwebs/internal/wire"
)

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-hosts", "0"},
		{"-host", "7", "-hosts", "4"},
		{"-host", "-1"},
		{"-keys", "0"},
		{"-structure", "nope"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-h"}, &sb); err != nil {
		t.Fatalf("-h returned %v", err)
	}
}

// TestBootAndShutdownRPC boots a daemon on an ephemeral port and stops
// it through the shutdown RPC — the remote half of the graceful-drain
// path (the signal half needs a real process; CI's wire-smoke job
// exercises it).
func TestBootAndShutdownRPC(t *testing.T) {
	d, err := serve.Start(serve.Config{
		Hosts: 1, Structure: "blocked", Keys: 32, KeySeed: 1, Seed: 2,
		Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Close()

	cl, err := wire.Dial(0, d.Addr(), time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	var ping serve.PingReply
	if err := cl.Call("ping", nil, &ping); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if ping.Host != 0 || ping.Structure != "blocked" || ping.Keys != 32 {
		t.Fatalf("ping reply %+v", ping)
	}
	var ok bool
	if err := cl.Call("shutdown", nil, &ok); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-d.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown not signalled")
	}
}
