// Command skipweb-serve runs one skip-web host as a network daemon: it
// builds a deterministic replica of the configured structure from the
// seed flags, listens for wire-protocol frames (named RPCs plus charged
// KMsg hops), and serves until a SIGINT/SIGTERM or a shutdown RPC, then
// drains gracefully — queued requests finish before the listener closes.
//
// A 4-process cluster on one machine:
//
//	skipweb-serve -listen 127.0.0.1:7070 -host 0 -hosts 4 &
//	skipweb-serve -listen 127.0.0.1:7071 -host 1 -hosts 4 &
//	skipweb-serve -listen 127.0.0.1:7072 -host 2 -hosts 4 &
//	skipweb-serve -listen 127.0.0.1:7073 -host 3 -hosts 4 &
//
// then either pass every daemon the same -peers list, or have a client
// (skipweb-bench -mode=wire -serve-addrs ...) issue the connect RPC with
// the full address list. All daemons must share -hosts, -structure,
// -keys, -key-seed, -seed, and -replicas: each rebuilds the same replica
// from those seeds, which is what lets any daemon serve any origin.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/skipwebs/skipwebs/internal/serve"
	"github.com/skipwebs/skipwebs/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	host := fs.Int("host", 0, "this daemon's host id (0-based)")
	hosts := fs.Int("hosts", 4, "total hosts in the cluster")
	peers := fs.String("peers", "", "comma-separated peer addresses indexed by host id (optional; the connect RPC can supply them instead)")
	structure := fs.String("structure", "blocked", "structure to serve: onedim, blocked, or bucketed")
	keys := fs.Int("keys", 1024, "initial key count")
	keySeed := fs.Uint64("key-seed", 42, "seed for the initial key set")
	seed := fs.Uint64("seed", 7, "structural seed")
	replicas := fs.Int("replicas", 0, "replication factor (<= 1 unreplicated)")
	target := fs.Int("target", 0, "bucketed: keys per bucket (0 = default)")
	walDir := fs.String("wal-dir", "", "directory for the per-host WAL + checkpoint; empty disables durability (a restarted daemon then rebuilds only the seeded keys)")
	ckptEvery := fs.Int("checkpoint-every", 0, "verification-checkpoint cadence in WAL records (0 = default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *hosts < 1 {
		return fmt.Errorf("-hosts must be at least 1, got %d", *hosts)
	}
	if *host < 0 || *host >= *hosts {
		return fmt.Errorf("-host must be in [0,%d), got %d", *hosts, *host)
	}
	if *keys < 1 {
		return fmt.Errorf("-keys must be at least 1, got %d", *keys)
	}

	d, err := serve.Start(serve.Config{
		Host:      sim.HostID(*host),
		Hosts:     *hosts,
		Listen:    *listen,
		Structure: *structure,
		Keys:      *keys,
		KeySeed:   *keySeed,
		Seed:      *seed,
		Replicas:  *replicas,
		Target:    *target,
		WALDir:    *walDir,

		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Fprintf(out, "skipweb-serve: host %d/%d serving %s (%d keys) on %s\n",
		*host, *hosts, *structure, *keys, d.Addr())
	if *walDir != "" {
		fmt.Fprintf(out, "skipweb-serve: durable in %s (replayed %d WAL records)\n", *walDir, d.Recovered())
	}

	if *peers != "" {
		addrs := strings.Split(*peers, ",")
		if err := d.ConnectPeers(addrs, 30*time.Second); err != nil {
			return fmt.Errorf("connect peers: %w", err)
		}
		fmt.Fprintf(out, "skipweb-serve: connected to %d peers\n", len(addrs))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "skipweb-serve: %v, draining\n", s)
	case <-d.ShutdownRequested():
		fmt.Fprintln(out, "skipweb-serve: shutdown RPC, draining")
	}
	// The deferred Close drains the mailbox (queued RPCs finish) before
	// the listener and peer connections go away.
	return nil
}
