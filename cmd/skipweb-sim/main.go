// Command skipweb-sim runs a concurrent mixed workload against a 1-d
// skip-web: one goroutine per client issuing floor queries and inserts
// through the actor-per-host cluster, then prints throughput, hop
// histograms, and per-host load — a demonstration that the structures
// behave as real concurrent message-passing code (run with -race in CI).
//
// Usage:
//
//	skipweb-sim [-hosts 256] [-keys 4096] [-clients 8] [-ops 2000] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-sim", flag.ContinueOnError)
	hosts := fs.Int("hosts", 256, "number of hosts")
	keys := fs.Int("keys", 4096, "initial key count")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	ops := fs.Int("ops", 2000, "operations per client")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; not a failure
		}
		return err
	}
	// Validate every flag with a clean error instead of panicking deep in
	// the simulator (-hosts 0 would panic NewNetwork; -clients 0 or
	// -ops < 0 would silently run nothing and report empty results).
	if *hosts < 1 {
		return fmt.Errorf("-hosts must be at least 1, got %d", *hosts)
	}
	if *keys < 1 {
		return fmt.Errorf("-keys must be at least 1, got %d", *keys)
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be at least 1, got %d", *clients)
	}
	if *ops < 1 {
		return fmt.Errorf("-ops must be at least 1, got %d", *ops)
	}

	rng := xrand.New(*seed)
	initial := experiments.Keys(rng, *keys, 1<<40)
	net := sim.NewNetwork(*hosts)
	web, err := core.NewBlockedWeb(net, initial, core.BlockedConfig{Seed: *seed})
	if err != nil {
		return err
	}
	net.ResetTraffic()

	// The web structure itself is guarded by a single logical owner in
	// this simulation: all structural access runs on host 0's goroutine,
	// while clients run concurrently and contend for it — the actor
	// discipline a coordinator-replica deployment would use. Routing
	// state reads happen inside the same actor, so -race stays clean.
	// (Work submitted from host 0's own tasks would simply run inline;
	// same-host re-entry no longer deadlocks.)
	cluster := sim.NewCluster(net)
	defer cluster.Stop()

	var totalHops, queries, inserts atomic.Int64
	hist := make([]atomic.Int64, 64)
	// Do returns a typed error when the coordinator host is down or the
	// per-call deadline expires; a dropped dispatch must fail the run,
	// not silently skew the histogram. First error wins.
	var doErrOnce sync.Once
	var doErr error
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cr := xrand.New(*seed ^ uint64(c)*0x9e3779b97f4a7c15)
			for i := 0; i < *ops; i++ {
				origin := sim.HostID(cr.Intn(*hosts))
				if cr.Intn(10) == 0 {
					k := cr.Uint64n(1 << 40)
					if err := cluster.Do(0, func() {
						if _, err := web.Insert(k, origin); err == nil {
							inserts.Add(1)
						}
					}); err != nil {
						doErrOnce.Do(func() { doErr = err })
						return
					}
					continue
				}
				q := cr.Uint64n(1 << 40)
				if err := cluster.Do(0, func() {
					_, _, hops, err := web.Query(q, origin)
					if err != nil {
						return // no crashes in this workload; defensive only
					}
					totalHops.Add(int64(hops))
					queries.Add(1)
					if hops < len(hist) {
						hist[hops].Add(1)
					}
				}); err != nil {
					doErrOnce.Do(func() { doErr = err })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if doErr != nil {
		return fmt.Errorf("dispatch to coordinator failed: %w", doErr)
	}

	q := queries.Load()
	fmt.Fprintf(out, "clients=%d ops/client=%d keys(final)=%d\n", *clients, *ops, web.Len())
	fmt.Fprintf(out, "queries=%d inserts=%d mean hops=%.2f\n", q, inserts.Load(),
		float64(totalHops.Load())/float64(max64(q, 1)))
	fmt.Fprintln(out, "hop histogram:")
	for h := 0; h < len(hist); h++ {
		c := hist[h].Load()
		if c == 0 {
			continue
		}
		bar := int(c * 50 / max64(q, 1))
		fmt.Fprintf(out, "  %3d %7d %s\n", h, c, stars(bar))
	}
	s := net.Snapshot()
	fmt.Fprintf(out, "network: messages=%d maxCongestion=%d meanStorage=%.1f maxStorage=%d\n",
		s.TotalMessages, s.MaxCongestion, s.MeanStorage, s.MaxStorage)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func stars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
