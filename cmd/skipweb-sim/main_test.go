package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-hosts", "16", "-keys", "128", "-clients", "2", "-ops", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"clients=2 ops/client=50",
		"queries=",
		"hop histogram:",
		"network: messages=",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in output:\n%s", want, got)
		}
	}
	if strings.Contains(got, "keys(final)=0") {
		t.Fatalf("web drained to zero keys:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-hosts", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunValidatesFlagRanges pins the flag validation: every
// out-of-range value must fail with a clean error naming the flag, not
// panic in the simulator or silently run an empty workload.
func TestRunValidatesFlagRanges(t *testing.T) {
	cases := map[string][]string{
		"-hosts 0":    {"-hosts", "0"},
		"-hosts -3":   {"-hosts", "-3"},
		"-keys 0":     {"-keys", "0"},
		"-keys -1":    {"-keys", "-1"},
		"-clients 0":  {"-clients", "0"},
		"-clients -2": {"-clients", "-2"},
		"-ops 0":      {"-ops", "0"},
		"-ops -1":     {"-ops", "-1"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			err := run(args, &out)
			if err == nil {
				t.Fatalf("%s accepted", name)
			}
			flagName := strings.Fields(name)[0]
			if !strings.Contains(err.Error(), flagName) {
				t.Fatalf("error %q does not name the offending flag %s", err, flagName)
			}
		})
	}
}
