package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-hosts", "16", "-keys", "128", "-clients", "2", "-ops", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"clients=2 ops/client=50",
		"queries=",
		"hop histogram:",
		"network: messages=",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in output:\n%s", want, got)
		}
	}
	if strings.Contains(got, "keys(final)=0") {
		t.Fatalf("web drained to zero keys:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-hosts", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
