package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// recoveryRow is one (structure, k) cell of the R1 recovery table: the
// cost of bringing a crashed host back by full re-replication (PR 5's
// Repair path, measured on a non-durable twin) versus by durable
// Restart — WAL replay plus a merkle-diff reconcile that re-ships only
// the subtrees that diverged while the host was down.
type recoveryRow struct {
	Structure     string  `json:"structure"`
	Replicas      int     `json:"replicas"`
	Keys          int     `json:"keys"`
	DivergentKeys int     `json:"divergent_keys"`
	Divergence    float64 `json:"divergence_fraction"`
	FullMsgs      int64   `json:"full_repair_msgs_per_event"`
	ReplayMsgs    int     `json:"restart_replay_msgs"`
	MerkleMsgs    int     `json:"restart_merkle_msgs"`
	CopiedUnits   int     `json:"restart_copied_units"`
	Ratio         float64 `json:"merkle_over_full"`
}

// recoveryDoc is the JSON document written by -mode=failover -restart
// -json (BENCH_RECOVERY_PR7.json).
type recoveryDoc struct {
	Mode  string        `json:"mode"`
	Hosts int           `json:"hosts"`
	Keys  int           `json:"keys"`
	Seed  uint64        `json:"seed"`
	Rows  []recoveryRow `json:"rows"`
}

// recoveryCeiling is one committed ceiling on the merkle-vs-full ratio
// (bench_baseline.json's recovery_ceilings section): the worst measured
// ratio for the named structure across the run's k values must stay
// under it.
type recoveryCeiling struct {
	Structure string  `json:"structure"`
	MaxRatio  float64 `json:"max_merkle_over_full"`
}

// recoveryContractRatio is the hard acceptance bar independent of any
// baseline file: at ~1% key divergence, merkle reconcile traffic must be
// at most 10% of full re-replication.
const recoveryContractRatio = 0.10

// runRecovery (failover -restart) measures durable crash recovery
// against the PR 5 alternative it replaces. For each k and each
// key-bearing structure, a durable cluster and a non-durable twin are
// built identically; one host crashes in both. The twin pays full
// re-replication immediately (Crash triggers Repair). The durable
// cluster absorbs ~1% key divergence while the host is down, then
// Restart replays the host's WAL and merkle-reconciles its shard,
// re-copying only the diverged subtrees. The ratio of merkle traffic to
// full re-replication must stay under 10%; -baseline additionally
// enforces the committed per-structure ceilings.
// Unlike the other modes, -quick changes nothing here: a trial is one
// build plus one crash per cluster, already smoke-test cheap, and
// shrinking -keys would shrink the victim's shard until the walk's
// log-overhead dominates the ratio being certified.
func runRecovery(out io.Writer, jsonPath, baselinePath string, hosts, keyN int, replicasStr string, seed uint64) error {
	if hosts < 8 {
		return fmt.Errorf("-hosts must be >= 8 for recovery mode, got %d", hosts)
	}
	if keyN < 256 {
		return fmt.Errorf("-keys must be >= 256 for recovery mode (1%% divergence needs keys), got %d", keyN)
	}
	var ks []int
	for _, f := range strings.Split(replicasStr, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 2 || k > hosts {
			return fmt.Errorf("bad -replicas entry %q (recovery needs 2 <= k <= hosts: a surviving replica to reconcile against)", f)
		}
		ks = append(ks, k)
	}
	doc := recoveryDoc{Mode: "recovery", Hosts: hosts, Keys: keyN, Seed: seed}
	fmt.Fprintf(out, "=== R1: merkle restart vs full re-replication (hosts=%d keys=%d, ~1%% divergence while down) ===\n",
		hosts, keyN)
	fmt.Fprintf(out, "%-10s %4s %10s %12s %12s %12s %8s %12s\n",
		"structure", "k", "divergent", "full msgs", "merkle msgs", "replay msgs", "copied", "merkle/full")
	copied := 0
	for _, k := range ks {
		for _, structure := range []string{"onedim", "blocked", "bucketed"} {
			row, err := recoveryTrial(structure, hosts, keyN, k, seed)
			if err != nil {
				return fmt.Errorf("recovery %s k=%d: %w", structure, k, err)
			}
			doc.Rows = append(doc.Rows, row)
			copied += row.CopiedUnits
			fmt.Fprintf(out, "%-10s %4d %10d %12d %12d %12d %8d %12.4f\n",
				row.Structure, row.Replicas, row.DivergentKeys, row.FullMsgs,
				row.MerkleMsgs, row.ReplayMsgs, row.CopiedUnits, row.Ratio)
			if row.Ratio > recoveryContractRatio {
				return fmt.Errorf("%s k=%d: merkle reconcile cost %.4f of full re-replication exceeds the %.2f contract",
					structure, k, row.Ratio, recoveryContractRatio)
			}
		}
	}
	// Per row, churn may legitimately miss the victim's shard (copied 0);
	// across the whole sweep it must hit at least once or the reconcile
	// never exercised its copy path.
	if copied == 0 {
		return fmt.Errorf("no trial re-copied any unit — divergence never reached a victim shard; raise -keys")
	}
	fmt.Fprintf(out, "every row: merkle restart <= %.0f%% of full re-replication traffic\n", recoveryContractRatio*100)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		if err := checkRecoveryBaseline(out, doc, baselinePath); err != nil {
			return err
		}
	}
	return nil
}

// recoveryEngine is the slice of the public API the trial needs: all
// three key-bearing structures implement it.
type recoveryEngine interface {
	Insert(key uint64, origin skipwebs.HostID) (int, error)
	Delete(key uint64, origin skipwebs.HostID) (int, error)
	Floor(q uint64, origin skipwebs.HostID) (skipwebs.FloorResult, error)
}

// buildRecovery builds one structure over keys on a fresh cluster.
func buildRecovery(structure string, hosts int, keys []uint64, k int, seed uint64, durable bool) (*skipwebs.Cluster, recoveryEngine, error) {
	c := skipwebs.NewCluster(hosts)
	opts := skipwebs.Options{Seed: seed + 1, Replicas: k, Durable: durable}
	var (
		st  recoveryEngine
		err error
	)
	switch structure {
	case "onedim":
		st, err = skipwebs.NewOneDim(c, keys, opts)
	case "blocked":
		st, err = skipwebs.NewBlocked(c, keys, opts)
	case "bucketed":
		st, err = skipwebs.NewBucketed(c, keys, opts)
	default:
		err = fmt.Errorf("unknown structure %q", structure)
	}
	if err != nil {
		return nil, nil, err
	}
	return c, st, nil
}

// recoveryTrial measures one (structure, k) cell. Both clusters see the
// same pre-crash updates (so the victim's WAL has real records to
// replay) and lose the same host; only the durable one gets it back.
func recoveryTrial(structure string, hosts, keyN, k int, seed uint64) (recoveryRow, error) {
	div := keyN / 200 // 0.5% inserts + 0.5% deletes ≈ 1% divergence
	if div < 1 {
		div = 1
	}
	pre := keyN / 10
	row := recoveryRow{Structure: structure, Replicas: k, Keys: keyN, DivergentKeys: 2 * div}
	row.Divergence = float64(row.DivergentKeys) / float64(keyN)

	rng := xrand.New(seed)
	all := experiments.Keys(rng, keyN+pre+div, 1<<40)
	base, extra := all[:keyN], all[keyN:]
	preKeys, freshKeys := extra[:pre], extra[pre:]

	cD, stD, err := buildRecovery(structure, hosts, base, k, seed, true)
	if err != nil {
		return row, err
	}
	cF, stF, err := buildRecovery(structure, hosts, base, k, seed, false)
	if err != nil {
		return row, err
	}

	// Identical pre-crash update history on both clusters: these are the
	// WAL records the durable victim will replay at Restart.
	for i, key := range preKeys {
		if _, err := stD.Insert(key, cD.HostAt(i)); err != nil {
			return row, err
		}
		if _, err := stF.Insert(key, cF.HostAt(i)); err != nil {
			return row, err
		}
	}
	victim := cD.HostAt(3)

	// The PR 5 path: on a non-durable cluster, Crash gives the host up
	// for dead and re-replicates its whole shard from the survivors.
	before := cF.Stats().TotalMessages
	if err := cF.Crash(victim); err != nil {
		return row, fmt.Errorf("non-durable crash: %w", err)
	}
	row.FullMsgs = cF.Stats().TotalMessages - before
	if row.FullMsgs <= 0 {
		return row, fmt.Errorf("full re-replication charged no messages — baseline is meaningless")
	}

	// The durable path: the host is expected back, so Crash repairs
	// nothing. ~1% of the key set churns while it is down.
	if err := cD.Crash(victim); err != nil {
		return row, fmt.Errorf("durable crash: %w", err)
	}
	for i, key := range freshKeys {
		if _, err := stD.Insert(key, cD.HostAt(i)); err != nil {
			return row, err
		}
	}
	for i := 0; i < div; i++ {
		if _, err := stD.Delete(base[i], cD.HostAt(i)); err != nil {
			return row, err
		}
	}

	st, err := cD.Restart(victim)
	if err != nil {
		return row, err
	}
	row.ReplayMsgs = st.ReplayMsgs
	row.MerkleMsgs = st.MerkleMsgs
	row.CopiedUnits = st.CopiedUnits
	row.Ratio = float64(st.MerkleMsgs) / float64(row.FullMsgs)
	// CopiedUnits can be zero: at 1% divergence the churn may miss the
	// victim's shard entirely, in which case the merkle walk proves it
	// and nothing ships — the cheapest possible recovery, not a bug.
	// onedim in particular lands here systematically: its update path
	// rebuilds touched ranges on live hosts (the down host's stale image
	// erodes away, see Web.RestartHost), so only untouched — hence clean —
	// units remain to reconcile. The run-wide copied>0 guard below relies
	// on blocked/bucketed, which mutate units in place.

	// Integrity: the restarted cluster holds exactly the churned key set.
	if err := cD.CheckConsistent(); err != nil {
		return row, fmt.Errorf("post-restart consistency: %w", err)
	}
	check := func(keys []uint64) error {
		for i, key := range keys {
			r, err := stD.Floor(key, cD.HostAt(i))
			if err != nil || !r.Found || r.Key != key {
				return fmt.Errorf("key %d lost after restart: %+v %v", key, r, err)
			}
		}
		return nil
	}
	if err := check(base[div:]); err != nil {
		return row, err
	}
	if err := check(preKeys); err != nil {
		return row, err
	}
	if err := check(freshKeys); err != nil {
		return row, err
	}
	return row, nil
}

// checkRecoveryBaseline enforces the committed recovery_ceilings in the
// baseline file: the worst measured merkle/full ratio per structure must
// stay under its ceiling, and a ceiling whose structure is missing from
// the run is a failure (guard erosion).
func checkRecoveryBaseline(out io.Writer, doc recoveryDoc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base struct {
		Recovery []recoveryCeiling `json:"recovery_ceilings"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base.Recovery) == 0 {
		return fmt.Errorf("baseline %s has no recovery_ceilings section", path)
	}
	worst := map[string]float64{}
	for _, r := range doc.Rows {
		if r.Ratio > worst[r.Structure] {
			worst[r.Structure] = r.Ratio
		}
	}
	var failures []string
	for _, c := range base.Recovery {
		w, ok := worst[c.Structure]
		if !ok {
			failures = append(failures, fmt.Sprintf("recovery/%s: structure missing from this run (guard erosion)", c.Structure))
			continue
		}
		if w > c.MaxRatio {
			failures = append(failures, fmt.Sprintf("recovery/%s: merkle/full %.4f exceeds ceiling %.4f", c.Structure, w, c.MaxRatio))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "PERF REGRESSION:", f)
		}
		return fmt.Errorf("%d recovery regression(s) against %s", len(failures), path)
	}
	fmt.Fprintf(out, "baseline %s: all %d recovery ceilings hold\n", path, len(base.Recovery))
	return nil
}
