package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"syscall"
	"time"

	"github.com/skipwebs/skipwebs/internal/serve"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/wire"
)

// wireRow is one structure's sim-vs-wire parity measurement.
type wireRow struct {
	Structure   string  `json:"structure"`
	Ops         int     `json:"ops"`
	Queries     int     `json:"queries"`
	SimMsgs     int64   `json:"sim_msgs_total"`
	WireMsgs    int64   `json:"wire_msgs_total"`
	Identical   bool    `json:"per_host_identical"`
	SimPerHost  []int64 `json:"sim_per_host"`
	WirePerHost []int64 `json:"wire_per_host"`
	MsgsOp      float64 `json:"msgs_per_op"`
	P50Micros   float64 `json:"latency_p50_us"`
	P99Micros   float64 `json:"latency_p99_us"`

	// Restart-smoke fields (-restart): the host whose process was
	// SIGKILLed mid-workload and the WAL records its replacement
	// replayed before rejoining.
	Killed    int `json:"killed_host,omitempty"`
	Recovered int `json:"recovered_records,omitempty"`
}

// wireDoc is the JSON document written by -mode=wire -json
// (BENCH_WIRE_PR6.json): the W1 table's data.
type wireDoc struct {
	Mode      string    `json:"mode"`
	Hosts     int       `json:"hosts"`
	Keys      int       `json:"keys"`
	Ops       int       `json:"ops"`
	Seed      uint64    `json:"seed"`
	Processes bool      `json:"multi_process"`
	Restart   bool      `json:"restart,omitempty"`
	Go        string    `json:"go"`
	CPUs      int       `json:"cpus"`
	Rows      []wireRow `json:"rows"`
}

// runWire replays a seeded workload against a daemon cluster speaking
// the real TCP wire protocol and diffs the per-host message counters
// against a single-process simulator run of the identical workload. The
// counts must be bit-identical (the model charges are transport-
// invariant); any divergence is an error, not a report footnote. With
// serveBin, the daemons are real skipweb-serve processes on loopback
// ports basePort..basePort+hosts-1; otherwise they are in-process
// listeners (same sockets, same frames, one address space).
//
// With restart, the run is the durability smoke: the daemons get
// per-host WALs, one daemon's process is SIGKILLed halfway through the
// workload and restarted with the same flags, and the parity bar stays
// exactly as high — every answer, every digest, and the per-host counts
// summed across the two halves must match the crash-free simulator run
// bit for bit (recovery replays the WAL without emitting, so a restart
// is accounting-invisible).
func runWire(out io.Writer, jsonPath, serveBin string, basePort, hosts, keyN, ops int, seed uint64, restart bool) error {
	if hosts < 2 {
		return fmt.Errorf("-hosts must be >= 2 for wire mode, got %d", hosts)
	}
	if keyN < 16 {
		return fmt.Errorf("-keys must be >= 16 for wire mode, got %d", keyN)
	}
	if ops < 1 {
		return fmt.Errorf("-queries must be positive, got %d", ops)
	}
	if restart && serveBin == "" {
		return fmt.Errorf("-restart needs -serve-bin: the smoke kills and restarts a real daemon process")
	}
	doc := wireDoc{
		Mode: "wire", Hosts: hosts, Keys: keyN, Ops: ops, Seed: seed,
		Processes: serveBin != "", Restart: restart, Go: runtime.Version(), CPUs: runtime.NumCPU(),
	}
	label := map[bool]string{true: "multi-process", false: "in-process listeners"}[serveBin != ""]
	if restart {
		label += ", SIGKILL+restart mid-workload"
	}
	fmt.Fprintf(out, "=== W1: sim-vs-wire parity (hosts=%d keys=%d ops=%d, %s) ===\n",
		hosts, keyN, ops, label)
	fmt.Fprintf(out, "%-10s %12s %12s %10s %10s %12s %12s\n",
		"structure", "sim msgs", "wire msgs", "identical", "msgs/op", "p50 µs", "p99 µs")
	for _, structure := range []string{"onedim", "blocked", "bucketed"} {
		cfg := serve.Config{
			Hosts:     hosts,
			Structure: structure,
			Keys:      keyN,
			KeySeed:   seed,
			Seed:      seed + 1,
		}
		if restart {
			dir, err := os.MkdirTemp("", "skipweb-wal-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cfg.WALDir = dir
			cfg.CheckpointEvery = 8
		}
		wl := serve.NewWorkload(cfg, seed+2, ops)
		simRes, err := serve.RunSim(cfg, wl)
		if err != nil {
			return fmt.Errorf("%s: sim control: %w", structure, err)
		}
		var wireRes serve.RunResult
		recovered := 0
		if restart {
			wireRes, recovered, err = replayProcessesRestart(serveBin, basePort, cfg, wl, 1)
			if err != nil {
				return fmt.Errorf("%s: restart smoke: %w", structure, err)
			}
		} else if serveBin == "" {
			daemons, clients, err := serve.BootLocal(cfg)
			if err != nil {
				return fmt.Errorf("%s: boot: %w", structure, err)
			}
			wireRes, err = serve.Replay(clients, wl)
			serve.CloseLocal(daemons, clients)
			if err != nil {
				return fmt.Errorf("%s: replay: %w", structure, err)
			}
		} else {
			wireRes, err = replayProcesses(serveBin, basePort, cfg, wl)
			if err != nil {
				return fmt.Errorf("%s: replay (processes): %w", structure, err)
			}
		}

		row := wireRow{
			Structure:   structure,
			Ops:         len(wl),
			Queries:     len(wireRes.QueryLatency),
			SimPerHost:  simRes.PerHost,
			WirePerHost: wireRes.PerHost,
			Identical:   true,
		}
		for h := range simRes.PerHost {
			row.SimMsgs += simRes.PerHost[h]
			row.WireMsgs += wireRes.PerHost[h]
			if simRes.PerHost[h] != wireRes.PerHost[h] {
				row.Identical = false
			}
		}
		for i := range wl {
			if wireRes.Floors[i] != simRes.Floors[i] || wireRes.Hops[i] != simRes.Hops[i] {
				row.Identical = false
			}
		}
		row.MsgsOp = float64(row.WireMsgs) / float64(len(wl))
		row.P50Micros = float64(serve.Quantile(wireRes.QueryLatency, 0.50).Microseconds())
		row.P99Micros = float64(serve.Quantile(wireRes.QueryLatency, 0.99).Microseconds())
		if restart {
			row.Killed, row.Recovered = 1, recovered
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "%-10s %12d %12d %10v %10.2f %12.0f %12.0f\n",
			row.Structure, row.SimMsgs, row.WireMsgs, row.Identical, row.MsgsOp, row.P50Micros, row.P99Micros)
		if restart {
			fmt.Fprintf(out, "%-10s   killed host %d mid-workload; restarted daemon replayed %d WAL records\n",
				"", row.Killed, row.Recovered)
		}
		if !row.Identical {
			return fmt.Errorf("%s: wire accounting diverged from sim (sim %v, wire %v)",
				structure, simRes.PerHost, wireRes.PerHost)
		}
	}
	if restart {
		fmt.Fprintln(out, "restart smoke passed: answers, digests, and summed per-host counters all match the crash-free simulator")
	} else {
		fmt.Fprintln(out, "per-host wire message counters are bit-identical to the simulator's")
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// replayProcesses boots cfg.Hosts real skipweb-serve processes on
// loopback ports, cross-connects them via the connect RPC, replays the
// workload, and drains each daemon through its shutdown RPC (the same
// graceful path SIGTERM takes) before waiting on the processes.
func replayProcesses(serveBin string, basePort int, cfg serve.Config, wl []serve.WorkloadOp) (serve.RunResult, error) {
	hosts := cfg.Hosts
	addrs := make([]string, hosts)
	procs := make([]*exec.Cmd, hosts)
	clients := make([]*wire.Client, hosts)
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
				p.Wait()
			}
		}
	}()
	for h := 0; h < hosts; h++ {
		addrs[h] = fmt.Sprintf("127.0.0.1:%d", basePort+h)
		cmd := serveCommand(serveBin, addrs[h], h, cfg)
		if err := cmd.Start(); err != nil {
			return serve.RunResult{}, fmt.Errorf("start host %d: %w", h, err)
		}
		procs[h] = cmd
	}
	for h := 0; h < hosts; h++ {
		cl, err := wire.Dial(sim.HostID(h), addrs[h], 30*time.Second)
		if err != nil {
			return serve.RunResult{}, fmt.Errorf("dial host %d: %w", h, err)
		}
		clients[h] = cl
		var ok bool
		if err := cl.Call("connect", serve.ConnectArgs{Addrs: addrs}, &ok); err != nil {
			return serve.RunResult{}, fmt.Errorf("connect host %d: %w", h, err)
		}
	}
	res, err := serve.Replay(clients, wl)
	if err != nil {
		return serve.RunResult{}, err
	}
	for h, cl := range clients {
		var ok bool
		if err := cl.Call("shutdown", nil, &ok); err != nil {
			return serve.RunResult{}, fmt.Errorf("shutdown host %d: %w", h, err)
		}
	}
	for h, p := range procs {
		if err := p.Wait(); err != nil {
			return serve.RunResult{}, fmt.Errorf("host %d exited uncleanly: %w", h, err)
		}
		procs[h] = nil
	}
	return res, nil
}

// serveCommand builds the skipweb-serve invocation for host h — kept in
// one place so a restarted daemon runs the byte-identical command line
// (same seeds, same -wal-dir) its predecessor did.
func serveCommand(serveBin, addr string, h int, cfg serve.Config) *exec.Cmd {
	args := []string{
		"-listen", addr,
		"-host", fmt.Sprint(h),
		"-hosts", fmt.Sprint(cfg.Hosts),
		"-structure", cfg.Structure,
		"-keys", fmt.Sprint(cfg.Keys),
		"-key-seed", fmt.Sprint(cfg.KeySeed),
		"-seed", fmt.Sprint(cfg.Seed),
	}
	if cfg.WALDir != "" {
		args = append(args, "-wal-dir", cfg.WALDir,
			"-checkpoint-every", fmt.Sprint(cfg.CheckpointEvery))
	}
	cmd := exec.Command(serveBin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd
}

// replayProcessesRestart is the process-level durability smoke: a
// durable daemon cluster replays the first half of wl, host victim's
// process is SIGKILLed (no drain, no flush beyond the per-record
// fsyncs), an identical process is started on the same port and WAL
// directory, the cluster re-issues the connect RPC, and the second half
// replays. It returns the combined RunResult (answers concatenated,
// per-host counters summed across the halves) plus the WAL records the
// restarted daemon reported replaying, and fails unless every daemon's
// final digest equals the workload oracle.
func replayProcessesRestart(serveBin string, basePort int, cfg serve.Config, wl []serve.WorkloadOp, victim int) (serve.RunResult, int, error) {
	hosts := cfg.Hosts
	half := len(wl) / 2
	addrs := make([]string, hosts)
	procs := make([]*exec.Cmd, hosts)
	clients := make([]*wire.Client, hosts)
	fail := func(err error) (serve.RunResult, int, error) { return serve.RunResult{}, 0, err }
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
				p.Wait()
			}
		}
	}()
	for h := 0; h < hosts; h++ {
		addrs[h] = fmt.Sprintf("127.0.0.1:%d", basePort+h)
		cmd := serveCommand(serveBin, addrs[h], h, cfg)
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("start host %d: %w", h, err))
		}
		procs[h] = cmd
	}
	connectAll := func() error {
		for h, cl := range clients {
			var ok bool
			if err := cl.Call("connect", serve.ConnectArgs{Addrs: addrs}, &ok); err != nil {
				return fmt.Errorf("connect host %d: %w", h, err)
			}
		}
		return nil
	}
	for h := 0; h < hosts; h++ {
		cl, err := wire.Dial(sim.HostID(h), addrs[h], 30*time.Second)
		if err != nil {
			return fail(fmt.Errorf("dial host %d: %w", h, err))
		}
		clients[h] = cl
	}
	if err := connectAll(); err != nil {
		return fail(err)
	}

	res1, err := serve.Replay(clients, wl[:half])
	if err != nil {
		return fail(fmt.Errorf("first half: %w", err))
	}

	// The kill: no signal handler runs, no drain happens. Everything the
	// replay saw acked was fsynced first, so nothing acknowledged is lost.
	procs[victim].Process.Kill()
	procs[victim].Wait() // reaps; a SIGKILL exit is expected to be unclean
	procs[victim] = nil
	clients[victim].Close()
	clients[victim] = nil

	cmd := serveCommand(serveBin, addrs[victim], victim, cfg)
	if err := cmd.Start(); err != nil {
		return fail(fmt.Errorf("restart host %d: %w", victim, err))
	}
	procs[victim] = cmd
	cl, err := wire.Dial(sim.HostID(victim), addrs[victim], 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("redial host %d: %w", victim, err))
	}
	clients[victim] = cl
	var pr serve.PingReply
	if err := cl.Call("ping", nil, &pr); err != nil {
		return fail(fmt.Errorf("ping restarted host %d: %w", victim, err))
	}
	if err := connectAll(); err != nil {
		return fail(fmt.Errorf("reconnect after restart: %w", err))
	}

	res2, err := serve.Replay(clients, wl[half:])
	if err != nil {
		return fail(fmt.Errorf("second half: %w", err))
	}

	want := serve.ExpectedDigest(cfg, wl)
	digests, err := serve.Digests(clients)
	if err != nil {
		return fail(err)
	}
	for h, d := range digests {
		if d != want {
			return fail(fmt.Errorf("host %d digest %+v differs from oracle %+v: recovery diverged", h, d, want))
		}
	}

	res := serve.RunResult{
		PerHost:      make([]int64, hosts),
		Floors:       append(res1.Floors, res2.Floors...),
		Hops:         append(res1.Hops, res2.Hops...),
		QueryLatency: append(res1.QueryLatency, res2.QueryLatency...),
	}
	for h := range res.PerHost {
		res.PerHost[h] = res1.PerHost[h] + res2.PerHost[h]
	}
	for h, cl := range clients {
		var ok bool
		if err := cl.Call("shutdown", nil, &ok); err != nil {
			return fail(fmt.Errorf("shutdown host %d: %w", h, err))
		}
	}
	for h, p := range procs {
		if err := p.Wait(); err != nil {
			return fail(fmt.Errorf("host %d exited uncleanly: %w", h, err))
		}
		procs[h] = nil
	}
	return res, pr.Recovered, nil
}
