package main

// Scale and campaign modes: the latency-realistic large-cluster sweeps.
//
// Scale mode (-mode=scale) sweeps the cross product of -scale-hosts and
// -scale-keys over the key-addressed structures, building each cell on
// its own cluster under the -latency cost model and driving -queries
// routed floor queries through the batch engine. Per cell it reports
// build time, query msgs/op (which must stay logarithmic in n and flat
// in H), exact per-query modeled-latency quantiles (p50/p99/max, sorted
// from the per-result Latency values, not the log-bucketed histogram),
// wall-clock ops/sec, and how many worker goroutines actually started —
// the lazy-spawn observability counter that keeps a 10k-host cluster
// from running 10k idle goroutines. Cells whose key count exceeds a
// structure's feasibility cap are skipped and logged, never silently
// dropped.
//
// Campaign mode (-mode=campaign) stress-tests durability at scale: for
// each replication factor in -replicas it builds all six structures on
// one durable cluster under the latency model and runs three phases —
// a Zipf-skewed query storm (with adversarial absent keys), a join/
// leave churn storm with a full consistency check, and a crash
// escalation that kills ceil(frac*hosts) hosts simultaneously at each
// fraction in -crash-fracs and then calls Repair, recording the
// per-structure lost units from the DataLossError. The breaking point
// of a structure at replication k is the first fraction that loses any
// of its units. Each crash fraction runs against a fresh build so the
// escalation measures intact structures, not previously damaged ones.
//
// Both modes honor -max-wall: once the budget is spent, no new cell
// starts (cells in flight finish), and the truncation is reported.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Feasibility caps: the largest key count each structure builds at in a
// scale sweep. OneDim stores every key at O(log n) levels, so its
// memory is n log n units; Blocked divides the node count by the block
// size M but keeps every key resident; Bucketed keeps one routing entry
// per bucket (~per host) and packs keys into sorted arrays, so it is
// the structure that reaches 10M keys.
const (
	scaleCapOneDim   = 1 << 20
	scaleCapBlocked  = 1 << 21
	scaleCapBucketed = 1 << 24
)

// parseLatencyModel parses a -latency spec into a cluster cost model.
// Specs: none, fixed:C, uniform:LO:HI, lognormal:MU:SIGMA,
// twolevel[:RACK]. The twolevel default is racks of 64 hosts with a
// uniform 1..5 intra-rack link and a log-normal (median 100, sigma
// 0.25) cross-rack link — a two-order-of-magnitude rack/region split.
// All stochastic models derive their per-link draws from seed, so a
// spec plus a seed names one reproducible topology.
func parseLatencyModel(spec string, seed uint64) (skipwebs.CostModel, error) {
	parts := strings.Split(spec, ":")
	bad := func(why string) error {
		return fmt.Errorf("bad -latency spec %q: %s (want none, fixed:C, uniform:LO:HI, lognormal:MU:SIGMA, or twolevel[:RACK])", spec, why)
	}
	switch parts[0] {
	case "none":
		if len(parts) != 1 {
			return nil, bad("none takes no arguments")
		}
		return nil, nil
	case "fixed":
		if len(parts) != 2 {
			return nil, bad("fixed takes one argument")
		}
		c, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || c < 0 {
			return nil, bad("C must be a non-negative integer")
		}
		return skipwebs.FixedLatency(c), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, bad("uniform takes two arguments")
		}
		lo, err1 := strconv.ParseInt(parts[1], 10, 64)
		hi, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return nil, bad("want integers 0 <= LO <= HI")
		}
		return skipwebs.UniformLatency(seed, lo, hi), nil
	case "lognormal":
		if len(parts) != 3 {
			return nil, bad("lognormal takes two arguments")
		}
		mu, err1 := strconv.ParseFloat(parts[1], 64)
		sigma, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || sigma < 0 {
			return nil, bad("want floats MU and SIGMA >= 0")
		}
		return skipwebs.LogNormalLatency(seed, mu, sigma), nil
	case "twolevel":
		rack := 64
		if len(parts) == 2 {
			r, err := strconv.Atoi(parts[1])
			if err != nil || r < 1 {
				return nil, bad("RACK must be a positive integer")
			}
			rack = r
		} else if len(parts) > 2 {
			return nil, bad("twolevel takes at most one argument")
		}
		return skipwebs.TwoLevelLatency(rack,
			skipwebs.UniformLatency(seed, 1, 5),
			skipwebs.LogNormalLatency(seed+1, math.Log(100), 0.25)), nil
	default:
		return nil, bad("unknown model")
	}
}

// firstSkewS parses the campaign Zipf exponent from the -skew-s list:
// campaign runs one exponent where the skew mode sweeps them all.
func firstSkewS(s string) (float64, error) {
	first := strings.TrimSpace(strings.Split(s, ",")[0])
	v, err := strconv.ParseFloat(first, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -skew-s entry %q (want a float)", first)
	}
	return v, nil
}

// modelName names a parsed model for reports; nil models are "none".
func modelName(m skipwebs.CostModel) string {
	if m == nil {
		return "none"
	}
	return m.Name()
}

// scaleKeys generates n distinct keys in [0, 1<<40) in O(1) extra
// memory: key i is a uniform draw from its own bucket of a partition of
// the key space into n equal strides, so keys are distinct by
// construction (no dedup map — at 10M keys the map the sim-scale
// generator uses costs more memory than the keys). The output is
// ascending, which matches the sorted bulk-construction path.
func scaleKeys(rng *xrand.Rand, n int) []uint64 {
	stride := (uint64(1) << 40) / uint64(n)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*stride + rng.Uint64n(stride)
	}
	return keys
}

// parseIntList parses a comma-separated integer flag with a minimum.
func parseIntList(flagName, s string, min int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < min {
			return nil, fmt.Errorf("bad %s entry %q (want an integer >= %d)", flagName, f, min)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s must name at least one value", flagName)
	}
	return out, nil
}

// scaleRow is one (structure, hosts, keys) cell of the scale sweep.
type scaleRow struct {
	Structure   string  `json:"structure"`
	Hosts       int     `json:"hosts"`
	Keys        int     `json:"keys"`
	BuildSec    float64 `json:"build_seconds"`
	QueryMsgsOp float64 `json:"query_msgs_per_op"`
	LatencyP50  int64   `json:"latency_p50"`
	LatencyP99  int64   `json:"latency_p99"`
	LatencyMax  int64   `json:"latency_max"`
	LatencyMean float64 `json:"latency_mean"`
	OpsSec      float64 `json:"ops_per_sec"`
	Workers     int     `json:"workers_started"`
}

// scaleDoc is the JSON document written by -mode=scale -json.
type scaleDoc struct {
	Mode    string     `json:"mode"`
	Model   string     `json:"latency_model"`
	Queries int        `json:"queries"`
	Seed    uint64     `json:"seed"`
	Rows    []scaleRow `json:"rows"`
	Skipped []string   `json:"skipped,omitempty"`
}

// latSummary computes exact latency quantiles from per-query results.
func latSummary(lats []int64) (p50, p99, max int64, mean float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum int64
	for _, v := range lats {
		sum += v
	}
	at := func(q float64) int64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return at(0.50), at(0.99), lats[len(lats)-1], float64(sum) / float64(len(lats))
}

// runScale sweeps hosts x keys x structure cells under the latency
// model and reports the scaling curves (see the package comment).
func runScale(out io.Writer, jsonPath, hostsStr, keysStr string, queries int, latSpec string, maxWall time.Duration, seed uint64, quick bool) error {
	if queries < 1 {
		return fmt.Errorf("-queries must be at least 1, got %d", queries)
	}
	if maxWall < 0 {
		return fmt.Errorf("-max-wall must be non-negative, got %v", maxWall)
	}
	hostsList, err := parseIntList("-scale-hosts", hostsStr, 2)
	if err != nil {
		return err
	}
	keysList, err := parseIntList("-scale-keys", keysStr, 64)
	if err != nil {
		return err
	}
	model, err := parseLatencyModel(latSpec, seed)
	if err != nil {
		return err
	}
	doc := scaleDoc{Mode: "scale", Model: modelName(model), Queries: queries, Seed: seed}
	skip := func(format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		doc.Skipped = append(doc.Skipped, msg)
		fmt.Fprintln(out, "skip:", msg)
	}
	if quick {
		var hs, ks []int
		for _, h := range hostsList {
			if h <= 1024 {
				hs = append(hs, h)
			} else {
				skip("hosts=%d: over the -quick host cap (1024)", h)
			}
		}
		for _, k := range keysList {
			if k <= 262144 {
				ks = append(ks, k)
			} else {
				skip("keys=%d: over the -quick key cap (262144)", k)
			}
		}
		hostsList, keysList = hs, ks
	}

	type structSpec struct {
		name  string
		cap   int
		build func(c *skipwebs.Cluster, keys []uint64) (func([]uint64, []skipwebs.HostID) ([]skipwebs.FloorResult, error), error)
	}
	structSpecs := []structSpec{
		{"onedim", scaleCapOneDim, func(c *skipwebs.Cluster, keys []uint64) (func([]uint64, []skipwebs.HostID) ([]skipwebs.FloorResult, error), error) {
			w, err := skipwebs.NewOneDim(c, keys, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return w.FloorBatch, nil
		}},
		{"blocked", scaleCapBlocked, func(c *skipwebs.Cluster, keys []uint64) (func([]uint64, []skipwebs.HostID) ([]skipwebs.FloorResult, error), error) {
			w, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return w.FloorBatch, nil
		}},
		{"bucketed", scaleCapBucketed, func(c *skipwebs.Cluster, keys []uint64) (func([]uint64, []skipwebs.HostID) ([]skipwebs.FloorResult, error), error) {
			w, err := skipwebs.NewBucketed(c, keys, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return w.FloorBatch, nil
		}},
	}

	fmt.Fprintf(out, "=== S1: scale sweep (model=%s queries=%d per cell) ===\n", doc.Model, queries)
	fmt.Fprintf(out, "%-9s %7s %9s %9s %9s %8s %8s %8s %10s %8s\n",
		"struct", "hosts", "keys", "build s", "msgs/op", "lat p50", "lat p99", "lat max", "ops/sec", "workers")
	start := time.Now()
	truncated := false
	for _, h := range hostsList {
		for _, n := range keysList {
			if n < h {
				skip("hosts=%d keys=%d: fewer keys than hosts", h, n)
				continue
			}
			keys := scaleKeys(xrand.New(seed), n)
			qrng := xrand.New(seed + 1)
			qs := make([]uint64, queries)
			for i := range qs {
				qs[i] = qrng.Uint64n(1 << 40)
			}
			for _, st := range structSpecs {
				if n > st.cap {
					skip("%s hosts=%d keys=%d: over the structure's feasibility cap (%d)", st.name, h, n, st.cap)
					continue
				}
				if maxWall > 0 && time.Since(start) > maxWall {
					skip("%s hosts=%d keys=%d: -max-wall %v exhausted", st.name, h, n, maxWall)
					truncated = true
					continue
				}
				row, err := scaleCell(st.name, h, n, keys, qs, model, st.build)
				if err != nil {
					return fmt.Errorf("scale %s hosts=%d keys=%d: %w", st.name, h, n, err)
				}
				doc.Rows = append(doc.Rows, row)
				fmt.Fprintf(out, "%-9s %7d %9d %9.2f %9.2f %8d %8d %8d %10.0f %8d\n",
					row.Structure, row.Hosts, row.Keys, row.BuildSec, row.QueryMsgsOp,
					row.LatencyP50, row.LatencyP99, row.LatencyMax, row.OpsSec, row.Workers)
			}
		}
	}
	if truncated {
		fmt.Fprintf(out, "sweep truncated by -max-wall after %v\n", time.Since(start).Round(time.Second))
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("no scale cells ran (all %d skipped)", len(doc.Skipped))
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// scaleCell builds one structure on a fresh cluster under the model and
// measures the batched query phase.
func scaleCell(name string, hosts, n int, keys, qs []uint64, model skipwebs.CostModel,
	build func(*skipwebs.Cluster, []uint64) (func([]uint64, []skipwebs.HostID) ([]skipwebs.FloorResult, error), error)) (scaleRow, error) {
	row := scaleRow{Structure: name, Hosts: hosts, Keys: n}
	var copts []skipwebs.ClusterOption
	if model != nil {
		copts = append(copts, skipwebs.WithLatency(model))
	}
	c := skipwebs.NewCluster(hosts, copts...)
	defer c.Close()
	t0 := time.Now()
	floorBatch, err := build(c, keys)
	if err != nil {
		return row, err
	}
	row.BuildSec = time.Since(t0).Seconds()
	c.ResetTraffic()

	t1 := time.Now()
	res, err := floorBatch(qs, nil)
	if err != nil {
		return row, err
	}
	wall := time.Since(t1)
	lats := make([]int64, len(res))
	for i, r := range res {
		lats[i] = r.Latency
	}
	row.LatencyP50, row.LatencyP99, row.LatencyMax, row.LatencyMean = latSummary(lats)
	row.QueryMsgsOp = float64(c.Stats().TotalMessages) / float64(len(qs))
	if wall > 0 {
		row.OpsSec = float64(len(qs)) / wall.Seconds()
	}
	row.Workers = c.WorkersStarted()
	return row, nil
}

// crashCell is one crash-escalation step of a campaign row: frac of the
// hosts killed simultaneously on a fresh build, then Repair.
type crashCell struct {
	Frac       float64        `json:"frac"`
	Crashed    int            `json:"crashed"`
	LostUnits  int            `json:"lost_units"`
	LostBy     map[string]int `json:"lost_by,omitempty"`
	RepairMsgs int64          `json:"repair_msgs"`
}

// campaignRow is one replication-factor cell of the campaign table.
type campaignRow struct {
	Replicas       int                `json:"replicas"`
	SkewMsgsOp     float64            `json:"skew_query_msgs_per_op"`
	SkewLatencyP50 int64              `json:"skew_latency_p50"`
	SkewLatencyP99 int64              `json:"skew_latency_p99"`
	ChurnEvents    int                `json:"churn_events"`
	ChurnMsgsEvent float64            `json:"churn_msgs_per_event"`
	Crashes        []crashCell        `json:"crashes"`
	BreakFrac      map[string]float64 `json:"break_frac,omitempty"`
}

// campaignDoc is the JSON document written by -mode=campaign -json.
type campaignDoc struct {
	Mode       string        `json:"mode"`
	Model      string        `json:"latency_model"`
	Hosts      int           `json:"hosts"`
	Keys       int           `json:"keys"`
	Ops        int           `json:"ops"`
	SkewS      float64       `json:"skew_s"`
	SkewAbsent float64       `json:"skew_absent"`
	Seed       uint64        `json:"seed"`
	Rows       []campaignRow `json:"rows"`
	Truncated  bool          `json:"truncated,omitempty"`
}

// campaignFixture is one durable cluster carrying all six structures,
// the same shape the failover fixture uses but built with Durable and
// the latency model so crash escalation exercises the WAL'd hosts.
type campaignFixture struct {
	c        *skipwebs.Cluster
	oned     *skipwebs.OneDim
	blocked  *skipwebs.Blocked
	bucketed *skipwebs.Bucketed
	points   *skipwebs.Points
	strs     *skipwebs.Strings
	planar   *skipwebs.Planar
	keys     []uint64
	pts      []skipwebs.Point
	strKeys  []string
}

func buildCampaignFixture(hosts, keyN, k int, model skipwebs.CostModel, seed uint64) (*campaignFixture, error) {
	f := &campaignFixture{c: skipwebs.NewCluster(hosts)}
	rng := xrand.New(seed)
	f.keys = scaleKeys(rng, keyN)
	opts := func(d uint64) skipwebs.Options {
		return skipwebs.Options{Seed: seed + d, Replicas: k, Durable: true, Latency: model}
	}
	var err error
	if f.oned, err = skipwebs.NewOneDim(f.c, f.keys, opts(0)); err != nil {
		return nil, err
	}
	if f.blocked, err = skipwebs.NewBlocked(f.c, f.keys, opts(1)); err != nil {
		return nil, err
	}
	if f.bucketed, err = skipwebs.NewBucketed(f.c, f.keys, opts(2)); err != nil {
		return nil, err
	}
	raw := experiments.UniformPoints(rng, 2, keyN/4, 1<<30)
	f.pts = make([]skipwebs.Point, len(raw))
	for i, p := range raw {
		f.pts[i] = skipwebs.Point(p)
	}
	if f.points, err = skipwebs.NewPoints(f.c, 2, f.pts, opts(3)); err != nil {
		return nil, err
	}
	f.strKeys = experiments.UniformStrings(rng, keyN/4, "acgt", 8, 24)
	if f.strs, err = skipwebs.NewStrings(f.c, f.strKeys, opts(4)); err != nil {
		return nil, err
	}
	segN := keyN / 8
	if segN > 256 {
		segN = 256
	}
	rawSegs := experiments.DisjointSegments(rng, segN, trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000})
	segs := make([]skipwebs.PlanarSegment, len(rawSegs))
	for i, s := range rawSegs {
		segs[i] = skipwebs.PlanarSegment{
			A: skipwebs.PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: skipwebs.PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	if f.planar, err = skipwebs.NewPlanar(f.c, segs,
		skipwebs.PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}, opts(5)); err != nil {
		return nil, err
	}
	f.c.ResetTraffic()
	return f, nil
}

// skewQuery runs the i-th skewed workload query: Zipf-weighted present
// keys, a skewAbsent fraction of adversarial absent probes, spread over
// all six structures. It returns the query's modeled latency.
func (f *campaignFixture) skewQuery(i int, zipf *xrand.Zipf, qrng *xrand.Rand, absent float64) (int64, error) {
	origin := f.c.HostAt(int(qrng.Uint64n(1 << 20)))
	key := func() uint64 {
		if qrng.Float64() < absent {
			return qrng.Uint64n(1 << 40)
		}
		return f.keys[zipf.Next()]
	}
	switch i % 6 {
	case 0:
		r, err := f.oned.Floor(key(), origin)
		return r.Latency, err
	case 1:
		r, err := f.blocked.Floor(key(), origin)
		return r.Latency, err
	case 2:
		r, err := f.bucketed.Floor(key(), origin)
		return r.Latency, err
	case 3:
		p := f.pts[zipf.Next()%len(f.pts)]
		loc, err := f.points.Locate(p, origin)
		return loc.Latency, err
	case 4:
		s := f.strKeys[zipf.Next()%len(f.strKeys)]
		loc, err := f.strs.Search(s, origin)
		return loc.Latency, err
	default:
		q := skipwebs.PlanarPoint{
			X: int64(qrng.Uint64n(1998)) - 999,
			Y: int64(qrng.Uint64n(1998)) - 999,
		}
		t, err := f.planar.Locate(q, origin)
		return t.Latency, err
	}
}

// runCampaign runs the durability campaign (see the package comment):
// per replication factor, a skewed query storm, a churn storm, and a
// crash escalation with per-structure breaking points.
func runCampaign(out io.Writer, jsonPath string, hosts, keyN, ops int, replicasStr, crashFracsStr, latSpec string, skewS float64, skewAbsent float64, maxWall time.Duration, seed uint64, quick bool) error {
	if hosts < 8 {
		return fmt.Errorf("-hosts must be >= 8 for campaign mode, got %d", hosts)
	}
	if keyN < 512 {
		return fmt.Errorf("-keys must be >= 512 for campaign mode, got %d", keyN)
	}
	if ops < 6 {
		return fmt.Errorf("-queries must be >= 6 for campaign mode, got %d", ops)
	}
	if maxWall < 0 {
		return fmt.Errorf("-max-wall must be non-negative, got %v", maxWall)
	}
	if skewS < 0 {
		return fmt.Errorf("campaign uses the first -skew-s entry as the Zipf exponent; want s >= 0, got %g", skewS)
	}
	if skewAbsent < 0 || skewAbsent > 1 {
		return fmt.Errorf("-skew-absent must be in [0, 1], got %g", skewAbsent)
	}
	var ks []int
	for _, f := range strings.Split(replicasStr, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 || k > hosts {
			return fmt.Errorf("bad -replicas entry %q (want 1 <= k <= hosts)", f)
		}
		ks = append(ks, k)
	}
	var fracs []float64
	for _, f := range strings.Split(crashFracsStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 0.9 {
			return fmt.Errorf("bad -crash-fracs entry %q (want 0 < frac <= 0.9)", f)
		}
		fracs = append(fracs, v)
	}
	sort.Float64s(fracs)
	model, err := parseLatencyModel(latSpec, seed)
	if err != nil {
		return err
	}
	if quick {
		if ops > 2000 {
			ops = 2000
		}
		if keyN > 65536 {
			keyN = 65536
		}
		if len(fracs) > 2 {
			fracs = fracs[:2]
		}
	}

	doc := campaignDoc{
		Mode: "campaign", Model: modelName(model), Hosts: hosts, Keys: keyN,
		Ops: ops, SkewS: skewS, SkewAbsent: skewAbsent, Seed: seed,
	}
	fmt.Fprintf(out, "=== K1: durability campaign (hosts=%d keys=%d ops=%d model=%s zipf s=%g absent=%g) ===\n",
		hosts, keyN, ops, doc.Model, skewS, skewAbsent)
	start := time.Now()
	overBudget := func() bool { return maxWall > 0 && time.Since(start) > maxWall }
	for _, k := range ks {
		if overBudget() {
			fmt.Fprintf(out, "k=%d: skipped, -max-wall %v exhausted\n", k, maxWall)
			doc.Truncated = true
			continue
		}
		row := campaignRow{Replicas: k, BreakFrac: map[string]float64{}}

		// Phase 1+2: skewed queries then churn, on one durable fixture.
		f, err := buildCampaignFixture(hosts, keyN, k, model, seed)
		if err != nil {
			return fmt.Errorf("campaign k=%d build: %w", k, err)
		}
		zipf := xrand.NewZipf(xrand.New(seed+13), skewS, keyN)
		qrng := xrand.New(seed + 99)
		lats := make([]int64, 0, ops)
		for i := 0; i < ops; i++ {
			lat, err := f.skewQuery(i, zipf, qrng, skewAbsent)
			if err != nil {
				return fmt.Errorf("campaign k=%d skew query %d: %w", k, i, err)
			}
			lats = append(lats, lat)
		}
		skewMsgs := f.c.Stats().TotalMessages
		row.SkewMsgsOp = float64(skewMsgs) / float64(ops)
		row.SkewLatencyP50, row.SkewLatencyP99, _, _ = latSummary(lats)

		churnEvents := 8
		if quick {
			churnEvents = 4
		}
		for e := 0; e < churnEvents; e++ {
			if e%2 == 0 && f.c.Hosts() > 2 {
				h := f.c.HostAt(int(qrng.Uint64n(1 << 20)))
				if err := f.c.Leave(h); err != nil {
					return fmt.Errorf("campaign k=%d leave: %w", k, err)
				}
			} else {
				f.c.Join()
			}
			row.ChurnEvents++
		}
		row.ChurnMsgsEvent = float64(f.c.Stats().TotalMessages-skewMsgs) / float64(row.ChurnEvents)
		if err := f.c.CheckConsistent(); err != nil {
			return fmt.Errorf("campaign k=%d consistency after churn: %w", k, err)
		}
		f.c.Close()

		// Phase 3: crash escalation, each fraction on a fresh build so
		// loss is measured against intact structures.
		for _, frac := range fracs {
			if overBudget() {
				fmt.Fprintf(out, "k=%d frac=%g: skipped, -max-wall %v exhausted\n", k, frac, maxWall)
				doc.Truncated = true
				continue
			}
			cell, err := campaignCrashCell(hosts, keyN, k, frac, model, seed)
			if err != nil {
				return fmt.Errorf("campaign k=%d frac=%g: %w", k, frac, err)
			}
			row.Crashes = append(row.Crashes, cell)
			for s := range cell.LostBy {
				if _, seen := row.BreakFrac[s]; !seen {
					row.BreakFrac[s] = frac
				}
			}
		}

		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "k=%d: skew %.2f msgs/op lat p50/p99 %d/%d; churn %d events %.1f msgs/evt\n",
			k, row.SkewMsgsOp, row.SkewLatencyP50, row.SkewLatencyP99, row.ChurnEvents, row.ChurnMsgsEvent)
		for _, cell := range row.Crashes {
			fmt.Fprintf(out, "  crash frac=%.3f (%d hosts): lost %d units", cell.Frac, cell.Crashed, cell.LostUnits)
			if len(cell.LostBy) > 0 {
				names := make([]string, 0, len(cell.LostBy))
				for s := range cell.LostBy {
					names = append(names, s)
				}
				sort.Strings(names)
				for _, s := range names {
					fmt.Fprintf(out, " %s=%d", s, cell.LostBy[s])
				}
			}
			fmt.Fprintf(out, "; repair %d msgs\n", cell.RepairMsgs)
		}
		if len(row.BreakFrac) == 0 {
			fmt.Fprintf(out, "  no structure lost data at k=%d up to frac=%g\n", k, fracs[len(fracs)-1])
		} else {
			names := make([]string, 0, len(row.BreakFrac))
			for s := range row.BreakFrac {
				names = append(names, s)
			}
			sort.Strings(names)
			for _, s := range names {
				fmt.Fprintf(out, "  breaking point %s: frac=%g\n", s, row.BreakFrac[s])
			}
		}
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("no campaign cells ran within -max-wall %v", maxWall)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// campaignCrashCell builds a fresh durable fixture, crashes
// ceil(frac*hosts) distinct hosts simultaneously (the durable cluster
// holds repair, expecting them back), then gives up on all of them at
// once via Repair and records the per-structure data loss.
func campaignCrashCell(hosts, keyN, k int, frac float64, model skipwebs.CostModel, seed uint64) (crashCell, error) {
	cell := crashCell{Frac: frac}
	f, err := buildCampaignFixture(hosts, keyN, k, model, seed)
	if err != nil {
		return cell, err
	}
	defer f.c.Close()
	m := int(math.Ceil(frac * float64(hosts)))
	if m < 1 {
		m = 1
	}
	if m > f.c.Hosts()-2 {
		m = f.c.Hosts() - 2
	}
	crng := xrand.New(seed + 7 + uint64(math.Round(frac*1000)))
	picked := make(map[skipwebs.HostID]bool, m)
	for len(picked) < m {
		h := f.c.HostAt(int(crng.Uint64n(1 << 20)))
		if picked[h] {
			continue
		}
		picked[h] = true
		if err := f.c.Crash(h); err != nil {
			return cell, fmt.Errorf("crash host %d: %w", h, err)
		}
	}
	cell.Crashed = m
	before := f.c.Stats().TotalMessages
	repairErr := f.c.Repair()
	cell.RepairMsgs = f.c.Stats().TotalMessages - before
	if repairErr != nil {
		var dl *skipwebs.DataLossError
		if !errors.As(repairErr, &dl) {
			return cell, repairErr
		}
		cell.LostUnits = dl.Units
		if len(dl.Structures) > 0 {
			cell.LostBy = make(map[string]int, len(dl.Structures))
			for s, u := range dl.Structures {
				cell.LostBy[s] = u
			}
		}
	}
	return cell, nil
}
