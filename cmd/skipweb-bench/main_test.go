package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchJSONSmoke(t *testing.T) {
	// Cap the in-process testing.Benchmark iterations so the smoke test
	// does not spend the default 1s per micro-benchmark.
	if f := flag.Lookup("test.benchtime"); f != nil {
		old := f.Value.String()
		if err := flag.Set("test.benchtime", "8x"); err == nil {
			defer flag.Set("test.benchtime", old)
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-mode", "bench", "-quick", "-keys", "128", "-hosts", "16", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"query/blocked-floor", "local/listlevel-locate-binary", "msgs/op", "wrote "} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in bench output:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode    string `json:"mode"`
		Results []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
			OpsSec  float64 `json:"ops_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if doc.Mode != "bench" || len(doc.Results) < 6 {
		t.Fatalf("bench JSON incomplete: mode=%q results=%d", doc.Mode, len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("bench JSON has empty record: %+v", r)
		}
	}
}

func TestCheckBaseline(t *testing.T) {
	doc := benchDoc{Results: []benchRecord{
		{Name: "query/x", AllocsOp: 0, MsgsOp: 10},
		{Name: "update/x", AllocsOp: 2, MsgsOp: 30},
	}}
	write := func(body string) string {
		p := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var out strings.Builder

	ok := write(`{"ceilings":[
		{"name":"query/x","max_allocs_per_op":0,"max_msgs_per_op":11},
		{"name":"update/x","max_allocs_per_op":2,"max_msgs_per_op":33}]}`)
	if err := checkBaseline(&out, doc, ok); err != nil {
		t.Fatalf("ceilings that hold reported a regression: %v", err)
	}

	regress := write(`{"ceilings":[{"name":"update/x","max_allocs_per_op":1}]}`)
	if err := checkBaseline(&out, doc, regress); err == nil {
		t.Fatal("exceeded allocs ceiling not reported")
	}

	msgs := write(`{"ceilings":[{"name":"update/x","max_msgs_per_op":29.5}]}`)
	if err := checkBaseline(&out, doc, msgs); err == nil {
		t.Fatal("exceeded msgs ceiling not reported")
	}

	missing := write(`{"ceilings":[{"name":"update/vanished","max_allocs_per_op":1}]}`)
	if err := checkBaseline(&out, doc, missing); err == nil {
		t.Fatal("missing benchmark row (guard erosion) not reported")
	}
}

func TestRunExperimentQuickSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-experiment", "lemma1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== E2: Lemma 1 ===") {
		t.Fatalf("missing experiment header in output:\n%s", got)
	}
	if len(strings.TrimSpace(strings.TrimPrefix(got, "=== E2: Lemma 1 ==="))) == 0 {
		t.Fatalf("empty report body:\n%s", got)
	}
}

func TestRunFiguresSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-experiment", "figures"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== F1: Figure 1 ===", "=== F2: Figure 2 ===", "=== F4: Figure 4 ==="} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in output:\n%s", want, got)
		}
	}
}

func TestRunThroughputSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "writers.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "throughput",
		"-hosts", "32", "-keys", "512", "-queries", "800", "-procs", "1,2",
		"-stripes", "4", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"read parity:", "write parity:"} {
		if !strings.Contains(got, want) || !strings.Contains(got, "OK") {
			t.Fatalf("missing %q accounting line in output:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "GOMAXPROCS=1") || !strings.Contains(got, "GOMAXPROCS=2") {
		t.Fatalf("missing per-proc throughput lines in output:\n%s", got)
	}
	for _, want := range []string{"read", "insert", "delete", "ops/sec"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q metric in output:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc throughputDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "throughput" || doc.Stripes != 4 || !doc.ParityOK || len(doc.Rows) != 2 {
		t.Fatalf("unexpected throughput JSON: %+v", doc)
	}
	for _, r := range doc.Rows {
		if r.ReadOpsSec <= 0 || r.InsertOpsSec <= 0 || r.DeleteOpsSec <= 0 {
			t.Fatalf("non-positive throughput in row %+v", r)
		}
	}
}

func TestRunChurnSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "churn", "-quick",
		"-hosts", "16", "-keys", "256", "-queries", "600",
		"-churn-rates", "0,0.02", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== C1: host churn", "zero lost keys", "wrote "} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in churn output:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode string `json:"mode"`
		Rows []struct {
			Rate        float64 `json:"rate"`
			Events      int     `json:"events"`
			ChurnMsgs   int64   `json:"churn_msgs_total"`
			QueryMsgsOp float64 `json:"query_msgs_per_op"`
			StorageMax  int64   `json:"storage_max"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("churn JSON does not parse: %v", err)
	}
	if doc.Mode != "churn" || len(doc.Rows) != 2 {
		t.Fatalf("churn JSON incomplete: mode=%q rows=%d", doc.Mode, len(doc.Rows))
	}
	if doc.Rows[0].Events != 0 || doc.Rows[0].ChurnMsgs != 0 {
		t.Fatalf("rate-0 row should have no churn: %+v", doc.Rows[0])
	}
	if doc.Rows[1].Events == 0 || doc.Rows[1].ChurnMsgs == 0 {
		t.Fatalf("churn row recorded no migration traffic: %+v", doc.Rows[1])
	}
	for _, r := range doc.Rows {
		if r.QueryMsgsOp <= 0 || r.StorageMax <= 0 {
			t.Fatalf("churn row has empty metrics: %+v", r)
		}
	}
}

func TestRunFailoverSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failover.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "failover", "-quick",
		"-hosts", "12", "-keys", "192", "-queries", "360",
		"-replicas", "1,2", "-crashes", "2", "-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== F1: crash failover", "zero lost keys", "wrote "} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in failover output:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode string `json:"mode"`
		Rows []struct {
			Replicas        int     `json:"replicas"`
			Crashes         int     `json:"crashes"`
			Availability    float64 `json:"availability"`
			Matched         bool    `json:"answers_match_control"`
			LostUnits       int     `json:"lost_units"`
			RepairMsgsEvent float64 `json:"repair_msgs_per_event"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("failover JSON does not parse: %v", err)
	}
	if doc.Mode != "failover" || len(doc.Rows) != 2 {
		t.Fatalf("failover JSON incomplete: mode=%q rows=%d", doc.Mode, len(doc.Rows))
	}
	k1, k2 := doc.Rows[0], doc.Rows[1]
	if k1.Replicas != 1 || k2.Replicas != 2 {
		t.Fatalf("rows out of order: %+v", doc.Rows)
	}
	if k1.Crashes == 0 || k2.Crashes == 0 {
		t.Fatalf("no crashes recorded: %+v", doc.Rows)
	}
	// k=1 crashes lose data; k=2 must tolerate them completely.
	if k1.LostUnits == 0 || k1.Availability >= 1.0 {
		t.Fatalf("k=1 row shows no loss (crash had no effect): %+v", k1)
	}
	if k2.LostUnits != 0 || k2.Availability != 1.0 || !k2.Matched {
		t.Fatalf("k=2 row violates the tolerance contract: %+v", k2)
	}
	if k2.RepairMsgsEvent <= 0 {
		t.Fatalf("k=2 repair charged no messages: %+v", k2)
	}
}

func TestRunFailoverValidatesFlags(t *testing.T) {
	var out strings.Builder
	for name, args := range map[string][]string{
		"bad replicas": {"-mode", "failover", "-replicas", "0"},
		"few hosts":    {"-mode", "failover", "-hosts", "4"},
		"no crashes":   {"-mode", "failover", "-crashes", "0"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestRunRejectsUnknownModeAndExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-experiment", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
