package main

import (
	"strings"
	"testing"
)

func TestRunExperimentQuickSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-experiment", "lemma1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== E2: Lemma 1 ===") {
		t.Fatalf("missing experiment header in output:\n%s", got)
	}
	if len(strings.TrimSpace(strings.TrimPrefix(got, "=== E2: Lemma 1 ==="))) == 0 {
		t.Fatalf("empty report body:\n%s", got)
	}
}

func TestRunFiguresSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-experiment", "figures"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== F1: Figure 1 ===", "=== F2: Figure 2 ===", "=== F4: Figure 4 ==="} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in output:\n%s", want, got)
		}
	}
}

func TestRunThroughputSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-mode", "throughput",
		"-hosts", "32", "-keys", "512", "-queries", "800", "-procs", "1,2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "accounting parity:") || !strings.Contains(got, "OK") {
		t.Fatalf("missing accounting parity line in output:\n%s", got)
	}
	if !strings.Contains(got, "GOMAXPROCS=1") || !strings.Contains(got, "GOMAXPROCS=2") {
		t.Fatalf("missing per-proc throughput lines in output:\n%s", got)
	}
	if !strings.Contains(got, "ops/sec") {
		t.Fatalf("missing ops/sec metric in output:\n%s", got)
	}
}

func TestRunRejectsUnknownModeAndExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-experiment", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
