package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Skew mode measures the read-path cache layer (Options.CacheFingers +
// Options.NegativeBloom) under skewed traffic: for every structure and
// every Zipf exponent s in -skew-s, a deterministic stream of Zipf-
// distributed present-key queries mixed with an adversarial absent-key
// flood (-skew-absent fraction) is replayed in lockstep against a
// cached build and a cache-free control twin. Every answer must match
// the control bit for bit and every op must charge at most the
// control's messages; the mode reports msgs/op and latency-in-hops
// p50/p99 for both twins plus the cache counters, and fails unless the
// aggregate query msgs/op drops >= 25% at the highest s >= 1.2 on at
// least three structures.

// skewRow is one (structure, s, variant) cell of the skew table.
type skewRow struct {
	Structure     string  `json:"structure"`
	S             float64 `json:"s"`
	Cached        bool    `json:"cached"`
	Msgs          int64   `json:"msgs_total"`
	MsgsOp        float64 `json:"msgs_per_op"`
	HopsP50       int     `json:"hops_p50"`
	HopsP99       int     `json:"hops_p99"`
	ReductionPct  float64 `json:"reduction_pct,omitempty"`
	CacheHits     int64   `json:"cache_hits,omitempty"`
	CacheMisses   int64   `json:"cache_misses,omitempty"`
	CacheInval    int64   `json:"cache_invalidations,omitempty"`
	BloomTrueNeg  int64   `json:"bloom_true_negatives,omitempty"`
	BloomFalsePos int64   `json:"bloom_false_positives,omitempty"`
}

// skewDoc is the JSON document written by -mode=skew -json
// (BENCH_SKEW_PR9.json).
type skewDoc struct {
	Mode       string    `json:"mode"`
	Hosts      int       `json:"hosts"`
	Keys       int       `json:"keys"`
	Queries    int       `json:"queries"`
	AbsentFrac float64   `json:"absent_frac"`
	SValues    []float64 `json:"s_values"`
	Seed       uint64    `json:"seed"`
	Rows       []skewRow `json:"rows"`
	// GatePassed lists the structures whose aggregate msgs/op dropped
	// >= 25% at the highest s (the acceptance gate needs >= 3).
	GatePassed []string `json:"gate_passed_structures"`
}

// skewQuerier answers the op-indexed query of a precomputed schedule
// from the given origin and returns (answer digest, hops). The digest
// folds every comparable field of the answer, so twin digests equal
// means twin answers equal.
type skewQuerier func(op int, origin skipwebs.HostID) (uint64, int, error)

// fnv64 folds b into an FNV-1a running hash h (seed with fnvOffset).
const fnvOffset = 14695981039346656037

func fnv64(h uint64, b uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// skewStructure builds the cached or control twin of one structure and
// returns its querier for a precomputed (structure, s) schedule.
type skewStructure struct {
	name  string
	build func(cached bool, s float64) (*skipwebs.Cluster, skewQuerier, error)
}

// runSkew runs the skewed-traffic cache benchmark (see the package
// comment above for the contract).
func runSkew(out io.Writer, jsonPath string, hosts, keyN, queries int, sStr string, absentFrac float64, seed uint64, quick bool) error {
	if hosts < 4 {
		return fmt.Errorf("-hosts must be >= 4 for skew mode, got %d", hosts)
	}
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for skew mode, got %d", keyN)
	}
	if absentFrac < 0 || absentFrac > 0.9 {
		return fmt.Errorf("-skew-absent must be in [0, 0.9], got %g", absentFrac)
	}
	if quick {
		if keyN > 512 {
			keyN = 512
		}
		if queries > 2000 {
			queries = 2000
		}
	}
	var svals []float64
	for _, f := range strings.Split(sStr, ",") {
		s, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || s <= 0 {
			return fmt.Errorf("bad -skew-s entry %q (want s > 0)", f)
		}
		svals = append(svals, s)
	}
	sort.Float64s(svals)
	maxS := svals[len(svals)-1]

	// Shared deterministic datasets (one per structure family).
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	absentKeys := xrand.AbsentKeys(seed, keys, 512, 1<<40)
	rawPts := experiments.UniformPoints(rng, 2, keyN, 1<<30)
	pts := make([]skipwebs.Point, len(rawPts))
	for i, p := range rawPts {
		pts[i] = skipwebs.Point(p)
	}
	strKeys := experiments.UniformStrings(rng, keyN, "acgt", 6, 24)
	absentStrs := xrand.AbsentStrings(seed, strKeys, 512)
	segN := keyN / 8
	if segN > 512 {
		segN = 512
	}
	segBounds := skipwebs.PlanarBounds{MinX: -60000, MinY: -60000, MaxX: 60000, MaxY: 60000}
	rawSegs := experiments.DisjointSegments(rng, segN,
		trapmap.Rect{MinX: -60000, MinY: -60000, MaxX: 60000, MaxY: 60000})
	segs := make([]skipwebs.PlanarSegment, len(rawSegs))
	for i, sg := range rawSegs {
		segs[i] = skipwebs.PlanarSegment{
			A: skipwebs.PlanarPoint{X: sg.A.X, Y: sg.A.Y},
			B: skipwebs.PlanarPoint{X: sg.B.X, Y: sg.B.Y},
		}
	}
	// Planar has no membership query; it revisits a Zipf-weighted pool
	// of query points instead of an absent flood.
	planarPool := make([]skipwebs.PlanarPoint, 512)
	prng := xrand.New(xrand.Substream(seed, 0x91a7))
	for i := range planarPool {
		planarPool[i] = skipwebs.PlanarPoint{
			X: int64(prng.Uint64n(119998)) - 59999,
			Y: int64(prng.Uint64n(119998)) - 59999,
		}
	}

	twinOpts := func(cached bool, d uint64) skipwebs.Options {
		return skipwebs.Options{
			Seed:          seed + d,
			WriteStripes:  4,
			CacheFingers:  cached,
			NegativeBloom: cached,
		}
	}
	// schedule precomputes the op stream for one (structure, s) cell:
	// ranks[i] is the Zipf rank of op i's present query and absent[i]
	// marks the adversarial absent-key flood ops. Both twins replay the
	// identical arrays.
	schedule := func(s float64, n, domain, sub int) (ranks []int, absent []bool) {
		zr := xrand.NewZipf(xrand.New(xrand.Substream(seed, sub)), s, domain)
		ar := xrand.New(xrand.Substream(seed, sub+1))
		ranks = make([]int, n)
		absent = make([]bool, n)
		for i := range ranks {
			ranks[i] = zr.Next()
			absent[i] = ar.Float64() < absentFrac
		}
		return ranks, absent
	}

	floorStructure := func(name string, d uint64,
		mk func(c *skipwebs.Cluster, o skipwebs.Options) (interface {
			Floor(uint64, skipwebs.HostID) (skipwebs.FloorResult, error)
			Contains(uint64, skipwebs.HostID) (bool, int, error)
		}, error)) skewStructure {
		return skewStructure{name: name, build: func(cached bool, s float64) (*skipwebs.Cluster, skewQuerier, error) {
			c := skipwebs.NewCluster(hosts)
			w, err := mk(c, twinOpts(cached, d))
			if err != nil {
				return nil, nil, err
			}
			ranks, absent := schedule(s, queries, keyN, int(d)*16+1)
			return c, func(op int, origin skipwebs.HostID) (uint64, int, error) {
				if absent[op] {
					found, hops, err := w.Contains(absentKeys[ranks[op]%len(absentKeys)], origin)
					return fnv64(fnvOffset, b2u(found)), hops, err
				}
				r, err := w.Floor(keys[ranks[op]], origin)
				return fnv64(fnv64(fnvOffset, r.Key), b2u(r.Found)), r.Hops, err
			}, nil
		}}
	}

	structures := []skewStructure{
		floorStructure("onedim", 0, func(c *skipwebs.Cluster, o skipwebs.Options) (interface {
			Floor(uint64, skipwebs.HostID) (skipwebs.FloorResult, error)
			Contains(uint64, skipwebs.HostID) (bool, int, error)
		}, error) {
			return skipwebs.NewOneDim(c, keys, o)
		}),
		floorStructure("blocked", 1, func(c *skipwebs.Cluster, o skipwebs.Options) (interface {
			Floor(uint64, skipwebs.HostID) (skipwebs.FloorResult, error)
			Contains(uint64, skipwebs.HostID) (bool, int, error)
		}, error) {
			return skipwebs.NewBlocked(c, keys, o)
		}),
		floorStructure("bucketed", 2, func(c *skipwebs.Cluster, o skipwebs.Options) (interface {
			Floor(uint64, skipwebs.HostID) (skipwebs.FloorResult, error)
			Contains(uint64, skipwebs.HostID) (bool, int, error)
		}, error) {
			return skipwebs.NewBucketed(c, keys, o)
		}),
		{name: "points", build: func(cached bool, s float64) (*skipwebs.Cluster, skewQuerier, error) {
			c := skipwebs.NewCluster(hosts)
			w, err := skipwebs.NewPoints(c, 2, pts, twinOpts(cached, 3))
			if err != nil {
				return nil, nil, err
			}
			ranks, absent := schedule(s, queries, keyN, 3*16+1)
			return c, func(op int, origin skipwebs.HostID) (uint64, int, error) {
				if absent[op] {
					base := pts[ranks[op]]
					found, hops, err := w.Contains(skipwebs.Point{base[0] ^ 1, base[1] ^ 3}, origin)
					return fnv64(fnvOffset, b2u(found)), hops, err
				}
				loc, err := w.Locate(pts[ranks[op]], origin)
				h := fnv64(fnvOffset, loc.CellPrefix)
				h = fnv64(h, uint64(loc.CellBits))
				h = fnv64(h, b2u(loc.Leaf))
				return h, loc.Hops, err
			}, nil
		}},
		{name: "strings", build: func(cached bool, s float64) (*skipwebs.Cluster, skewQuerier, error) {
			c := skipwebs.NewCluster(hosts)
			w, err := skipwebs.NewStrings(c, strKeys, twinOpts(cached, 4))
			if err != nil {
				return nil, nil, err
			}
			ranks, absent := schedule(s, queries, keyN, 4*16+1)
			return c, func(op int, origin skipwebs.HostID) (uint64, int, error) {
				if absent[op] {
					found, hops, err := w.Contains(absentStrs[ranks[op]%len(absentStrs)], origin)
					return fnv64(fnvOffset, b2u(found)), hops, err
				}
				loc, err := w.Search(strKeys[ranks[op]], origin)
				h := fnvString(fnvOffset, loc.Locus)
				h = fnv64(h, b2u(loc.IsKey))
				h = fnv64(h, b2u(loc.Exact))
				return h, loc.Hops, err
			}, nil
		}},
		{name: "planar", build: func(cached bool, s float64) (*skipwebs.Cluster, skewQuerier, error) {
			c := skipwebs.NewCluster(hosts)
			w, err := skipwebs.NewPlanar(c, segs, segBounds, twinOpts(cached, 5))
			if err != nil {
				return nil, nil, err
			}
			ranks, _ := schedule(s, queries, len(planarPool), 5*16+1)
			return c, func(op int, origin skipwebs.HostID) (uint64, int, error) {
				t, err := w.Locate(planarPool[ranks[op]], origin)
				h := fnv64(fnvOffset, uint64(t.LeftX))
				h = fnv64(h, uint64(t.RightX))
				h = fnv64(h, b2u(t.HasTop))
				h = fnv64(h, b2u(t.HasBottom))
				return h, t.Hops, err
			}, nil
		}},
	}

	doc := skewDoc{
		Mode: "skew", Hosts: hosts, Keys: keyN, Queries: queries,
		AbsentFrac: absentFrac, SValues: svals, Seed: seed,
	}
	fmt.Fprintf(out, "=== S1: skewed traffic, cached vs control (hosts=%d keys=%d queries=%d absent=%.0f%%) ===\n",
		hosts, keyN, queries, absentFrac*100)
	fmt.Fprintf(out, "%-10s %5s %7s %14s %8s %8s %10s %10s %10s %10s\n",
		"structure", "s", "cached", "msgs/op", "p50", "p99", "hits", "misses", "bloom-tn", "reduction")

	hopsOf := make([]int, queries)
	pctl := func(p float64) int {
		return hopsOf[int(p*float64(len(hopsOf)-1))]
	}
	for _, st := range structures {
		for _, s := range svals {
			cCtl, qCtl, err := st.build(false, s)
			if err != nil {
				return fmt.Errorf("%s control: %w", st.name, err)
			}
			cCache, qCache, err := st.build(true, s)
			if err != nil {
				return fmt.Errorf("%s cached: %w", st.name, err)
			}
			var ctlMsgs, cacheMsgs int64
			ctlHops := make([]int, queries)
			cacheHops := make([]int, queries)
			for op := 0; op < queries; op++ {
				origin := skipwebs.HostID(op % hosts)
				dc, hc, err := qCtl(op, origin)
				if err != nil {
					return fmt.Errorf("%s s=%g control op %d: %w", st.name, s, op, err)
				}
				da, ha, err := qCache(op, origin)
				if err != nil {
					return fmt.Errorf("%s s=%g cached op %d: %w", st.name, s, op, err)
				}
				if da != dc {
					return fmt.Errorf("%s s=%g op %d: cached answer diverged from control", st.name, s, op)
				}
				if ha > hc {
					return fmt.Errorf("%s s=%g op %d: cached %d hops > control %d", st.name, s, op, ha, hc)
				}
				ctlMsgs += int64(hc)
				cacheMsgs += int64(ha)
				ctlHops[op], cacheHops[op] = hc, ha
			}
			mk := func(cached bool, msgs int64, hops []int, cl *skipwebs.Cluster) skewRow {
				copy(hopsOf, hops)
				sort.Ints(hopsOf)
				r := skewRow{
					Structure: st.name, S: s, Cached: cached,
					Msgs: msgs, MsgsOp: float64(msgs) / float64(queries),
					HopsP50: pctl(0.50), HopsP99: pctl(0.99),
				}
				if cached {
					cs := cl.Stats()
					r.CacheHits, r.CacheMisses, r.CacheInval = cs.CacheHits, cs.CacheMisses, cs.CacheInvalidations
					r.BloomTrueNeg, r.BloomFalsePos = cs.BloomTrueNegatives, cs.BloomFalsePositives
					if ctlMsgs > 0 {
						r.ReductionPct = 100 * (1 - float64(msgs)/float64(ctlMsgs))
					}
				}
				return r
			}
			rows := []skewRow{mk(false, ctlMsgs, ctlHops, cCtl), mk(true, cacheMsgs, cacheHops, cCache)}
			doc.Rows = append(doc.Rows, rows...)
			for _, r := range rows {
				red := ""
				if r.Cached {
					red = fmt.Sprintf("%.1f%%", r.ReductionPct)
				}
				fmt.Fprintf(out, "%-10s %5.2f %7v %14.2f %8d %8d %10d %10d %10d %10s\n",
					r.Structure, r.S, r.Cached, r.MsgsOp, r.HopsP50, r.HopsP99,
					r.CacheHits, r.CacheMisses, r.BloomTrueNeg, red)
			}
		}
	}

	// Acceptance gate: >= 25% aggregate reduction at the highest s on
	// at least three structures (only enforced when that s >= 1.2).
	for _, r := range doc.Rows {
		if r.Cached && r.S == maxS && r.ReductionPct >= 25 {
			doc.GatePassed = append(doc.GatePassed, r.Structure)
		}
	}
	fmt.Fprintf(out, "gate: %d structure(s) with >= 25%% msgs/op reduction at s=%g: %s\n",
		len(doc.GatePassed), maxS, strings.Join(doc.GatePassed, ", "))

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if maxS >= 1.2 && len(doc.GatePassed) < 3 {
		return fmt.Errorf("skew gate: only %d structure(s) reached a 25%% msgs/op reduction at s=%g (need >= 3)",
			len(doc.GatePassed), maxS)
	}
	return nil
}
