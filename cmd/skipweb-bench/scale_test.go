package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func TestParseLatencyModel(t *testing.T) {
	good := map[string]string{
		"none":            "none",
		"fixed:3":         "fixed(3)",
		"uniform:2:9":     "uniform[2,9]",
		"lognormal:4.6:1": "lognormal(mu=4.6,sigma=1)",
		"twolevel:8":      "twolevel(rack=8,",
		"twolevel":        "twolevel(rack=64,",
	}
	for spec, wantPrefix := range good {
		m, err := parseLatencyModel(spec, 1)
		if err != nil {
			t.Fatalf("spec %q rejected: %v", spec, err)
		}
		if got := modelName(m); !strings.HasPrefix(got, wantPrefix) {
			t.Fatalf("spec %q named %q, want prefix %q", spec, got, wantPrefix)
		}
	}
	for _, spec := range []string{
		"", "gaussian", "none:1", "fixed", "fixed:-1", "fixed:x",
		"uniform:5", "uniform:9:2", "uniform:-1:3",
		"lognormal:1", "lognormal:a:b", "lognormal:1:-0.5",
		"twolevel:0", "twolevel:x", "twolevel:8:9",
	} {
		if _, err := parseLatencyModel(spec, 1); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestScaleKeysDistinctAscending(t *testing.T) {
	keys := scaleKeys(xrand.New(1), 100000)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys[%d] = %d <= keys[%d] = %d", i, keys[i], i-1, keys[i-1])
		}
	}
	if keys[len(keys)-1] >= 1<<40 {
		t.Fatalf("key %d outside the 2^40 key space", keys[len(keys)-1])
	}
}

func TestRunScaleValidatesFlags(t *testing.T) {
	var out strings.Builder
	for name, args := range map[string][]string{
		"bad scale-hosts":  {"-mode", "scale", "-scale-hosts", "0"},
		"junk scale-hosts": {"-mode", "scale", "-scale-hosts", "16,x"},
		"bad scale-keys":   {"-mode", "scale", "-scale-keys", "32"},
		"no queries":       {"-mode", "scale", "-queries", "0"},
		"bad latency":      {"-mode", "scale", "-latency", "gaussian"},
		"bad latency args": {"-mode", "scale", "-latency", "uniform:9:2"},
		"negative wall":    {"-mode", "scale", "-max-wall", "-1s"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestRunCampaignValidatesFlags(t *testing.T) {
	var out strings.Builder
	for name, args := range map[string][]string{
		"few hosts":       {"-mode", "campaign", "-hosts", "4"},
		"few keys":        {"-mode", "campaign", "-keys", "128"},
		"no queries":      {"-mode", "campaign", "-queries", "2"},
		"bad replicas":    {"-mode", "campaign", "-replicas", "0"},
		"bad crash-fracs": {"-mode", "campaign", "-crash-fracs", "0"},
		"big crash-fracs": {"-mode", "campaign", "-crash-fracs", "0.95"},
		"junk fracs":      {"-mode", "campaign", "-crash-fracs", "0.1,x"},
		"bad latency":     {"-mode", "campaign", "-latency", "fixed:-2"},
		"bad skew-s":      {"-mode", "campaign", "-skew-s", "x"},
		"bad absent":      {"-mode", "campaign", "-skew-absent", "1.5"},
		"negative wall":   {"-mode", "campaign", "-max-wall", "-1s"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestRunScaleSmall runs a tiny sweep end-to-end and checks the JSON
// document: every cell carries positive message and latency costs under
// the default two-level model, infeasible cells are logged as skips,
// and the lazy worker count never exceeds the host count.
func TestRunScaleSmall(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "scale.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "scale", "-scale-hosts", "8,16", "-scale-keys", "128,1024",
		"-queries", "64", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("scale run failed: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc scaleDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "scale" || !strings.HasPrefix(doc.Model, "twolevel(") {
		t.Fatalf("doc header wrong: mode %q model %q", doc.Mode, doc.Model)
	}
	// 2 host counts x 2 key counts x 3 structures, nothing skipped.
	if len(doc.Rows) != 12 || len(doc.Skipped) != 0 {
		t.Fatalf("got %d rows, %d skips, want 12 and 0: %v", len(doc.Rows), len(doc.Skipped), doc.Skipped)
	}
	for _, r := range doc.Rows {
		if r.QueryMsgsOp <= 0 {
			t.Errorf("%s h=%d n=%d: msgs/op %g, want positive", r.Structure, r.Hosts, r.Keys, r.QueryMsgsOp)
		}
		if r.LatencyP50 <= 0 || r.LatencyP99 < r.LatencyP50 || r.LatencyMax < r.LatencyP99 {
			t.Errorf("%s h=%d n=%d: quantiles out of order: p50 %d p99 %d max %d",
				r.Structure, r.Hosts, r.Keys, r.LatencyP50, r.LatencyP99, r.LatencyMax)
		}
		if r.Workers < 1 || r.Workers > r.Hosts {
			t.Errorf("%s h=%d n=%d: workers %d outside [1, hosts]", r.Structure, r.Hosts, r.Keys, r.Workers)
		}
	}
}

// TestRunScaleSkipsInfeasibleCells: a cell with fewer keys than hosts
// is skipped with a logged reason, never run and never silent.
func TestRunScaleSkipsInfeasibleCells(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "scale.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "scale", "-scale-hosts", "8,512", "-scale-keys", "256",
		"-queries", "32", "-latency", "none", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("scale run failed: %v\n%s", err, out.String())
	}
	var doc scaleDoc
	raw, _ := os.ReadFile(jsonPath)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (hosts=8 only)", len(doc.Rows))
	}
	if len(doc.Skipped) != 1 || !strings.Contains(doc.Skipped[0], "fewer keys than hosts") {
		t.Fatalf("skips = %v, want one fewer-keys-than-hosts entry", doc.Skipped)
	}
	for _, r := range doc.Rows {
		if r.LatencyP50 != 0 || r.LatencyMax != 0 {
			t.Errorf("%s: nonzero latency %d/%d under -latency none", r.Structure, r.LatencyP50, r.LatencyMax)
		}
	}
	if !strings.Contains(out.String(), "skip:") {
		t.Fatal("skipped cell not reported on stdout")
	}
}

// TestRunScaleMaxWall: an already-exhausted budget runs nothing and
// reports the truncation as an error rather than an empty success.
func TestRunScaleMaxWall(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-mode", "scale", "-scale-hosts", "8", "-scale-keys", "128",
		"-queries", "8", "-max-wall", "1ns",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "no scale cells ran") {
		t.Fatalf("exhausted -max-wall returned %v, want a no-cells error", err)
	}
	if !strings.Contains(out.String(), "-max-wall") {
		t.Fatal("truncation not explained on stdout")
	}
}

// TestRunCampaignSmall runs one tiny campaign round and checks the
// document shape: skew and churn phases measured, every crash fraction
// recorded, and k = 1 breaking at the first fraction (any crash loses
// data with one replica).
func TestRunCampaignSmall(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "campaign.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "campaign", "-hosts", "16", "-keys", "512", "-queries", "120",
		"-replicas", "1", "-crash-fracs", "0.25", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("campaign run failed: %v\n%s", err, out.String())
	}
	var doc campaignDoc
	raw, _ := os.ReadFile(jsonPath)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "campaign" || len(doc.Rows) != 1 {
		t.Fatalf("doc: mode %q rows %d, want campaign/1", doc.Mode, len(doc.Rows))
	}
	row := doc.Rows[0]
	if row.Replicas != 1 || row.SkewMsgsOp <= 0 || row.ChurnEvents == 0 {
		t.Fatalf("row misshaped: %+v", row)
	}
	if row.SkewLatencyP99 < row.SkewLatencyP50 || row.SkewLatencyP50 <= 0 {
		t.Fatalf("skew latency quantiles wrong: p50 %d p99 %d", row.SkewLatencyP50, row.SkewLatencyP99)
	}
	if len(row.Crashes) != 1 || row.Crashes[0].Crashed != 4 {
		t.Fatalf("crash cells %+v, want one cell crashing ceil(0.25*16) = 4 hosts", row.Crashes)
	}
	if row.Crashes[0].LostUnits <= 0 || len(row.BreakFrac) == 0 {
		t.Fatalf("k=1 crash of 4/16 hosts lost nothing: %+v", row.Crashes[0])
	}
	for s, f := range row.BreakFrac {
		if f != 0.25 {
			t.Errorf("structure %s breaking frac %g, want 0.25", s, f)
		}
	}
}
