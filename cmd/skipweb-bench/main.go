// Command skipweb-bench regenerates every table and figure of the
// skip-webs paper on the message-counting simulator, and measures the
// wall-clock throughput of the concurrent batch query engine.
//
// Usage:
//
//	skipweb-bench [-mode experiments|throughput|bench]
//	              [-experiment all|table1|lemma1|lemma3|lemma4|lemma5|
//	               theorem2|blocking|updates|congestion|ablation|figures]
//	              [-quick] [-seed N]
//	              [-hosts H] [-keys N] [-queries Q] [-procs 1,2,4]
//	              [-json FILE]
//
// The default mode runs the paper experiments at the EXPERIMENTS.md
// scale; -quick runs a reduced sweep for smoke testing. Throughput mode
// runs batched floor queries over a Blocked skip-web at each GOMAXPROCS
// value in -procs, reports ops/sec, and verifies that batched execution
// charges exactly the same messages as the synchronous path.
//
// Bench mode measures wall-clock micro-benchmarks of the hot paths
// (ns/op, allocs/op, ops/sec — plus msgs/op, the paper's cost metric)
// and, with -json, writes them as a JSON document (e.g. BENCH_PR2.json)
// so perf trajectories can be compared run over run (`benchstat` works
// on the plain `go test -bench` output; the JSON is for dashboards and
// CI artifacts).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-bench", flag.ContinueOnError)
	mode := fs.String("mode", "experiments", "experiments, throughput, or bench")
	experiment := fs.String("experiment", "all", "which experiment to run")
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	seed := fs.Uint64("seed", 1, "random seed")
	hosts := fs.Int("hosts", 256, "throughput: number of hosts")
	keyN := fs.Int("keys", 4096, "throughput: stored key count")
	queries := fs.Int("queries", 20000, "throughput: queries per batch")
	procs := fs.String("procs", "1,2,4", "throughput: comma-separated GOMAXPROCS values")
	jsonPath := fs.String("json", "", "bench: also write results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; not a failure
		}
		return err
	}

	switch *mode {
	case "experiments":
		return runExperiments(out, *experiment, *quick, *seed)
	case "throughput":
		return runThroughput(out, *hosts, *keyN, *queries, *procs, *seed)
	case "bench":
		return runBench(out, *jsonPath, *keyN, *hosts, *seed, *quick)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// benchRecord is one micro-benchmark result in the JSON document.
type benchRecord struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	OpsSec   float64 `json:"ops_per_sec"`
	MsgsOp   float64 `json:"msgs_per_op,omitempty"`
	N        int     `json:"iterations"`
}

// benchDoc is the top-level JSON document written by -json.
type benchDoc struct {
	Mode    string        `json:"mode"`
	Keys    int           `json:"keys"`
	Hosts   int           `json:"hosts"`
	Seed    uint64        `json:"seed"`
	Go      string        `json:"go"`
	CPUs    int           `json:"cpus"`
	Results []benchRecord `json:"results"`
}

// measure runs fn under testing.Benchmark and converts the result; msgs
// is the total message count accumulated by fn across iterations (pass
// nil to omit the msgs/op metric).
func measure(name string, msgs *int64, fn func(b *testing.B)) benchRecord {
	// testing.Benchmark re-invokes fn with growing b.N; reset the message
	// tally on each invocation so the final run's count matches res.N.
	res := testing.Benchmark(func(b *testing.B) {
		if msgs != nil {
			*msgs = 0
		}
		b.ReportAllocs()
		fn(b)
	})
	rec := benchRecord{
		Name:     name,
		NsPerOp:  float64(res.NsPerOp()),
		AllocsOp: float64(res.AllocsPerOp()),
		BytesOp:  float64(res.AllocedBytesPerOp()),
		N:        res.N,
	}
	if res.T > 0 {
		rec.OpsSec = float64(res.N) / res.T.Seconds()
	}
	if msgs != nil {
		rec.MsgsOp = float64(*msgs) / float64(res.N)
	}
	return rec
}

// runBench measures the hot-path micro-benchmarks and reports ns/op,
// allocs/op, ops/sec, and msgs/op. With jsonPath, the results are also
// written as a JSON document (the repo records PR-over-PR trajectories
// in files like BENCH_PR2.json).
func runBench(out io.Writer, jsonPath string, keyN, hosts int, seed uint64, quick bool) error {
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for bench mode, got %d", keyN)
	}
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	listN := 100_000
	if quick {
		listN = 10_000
	}
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	doc := benchDoc{
		Mode:  "bench",
		Keys:  keyN,
		Hosts: hosts,
		Seed:  seed,
		Go:    runtime.Version(),
		CPUs:  runtime.NumCPU(),
	}
	var msgs int64

	// Point-query descent, per structure.
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1)
		doc.Results = append(doc.Results, measure("query/blocked-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewOneDim(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 2)
		doc.Results = append(doc.Results, measure("query/onedim-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		prng := xrand.New(seed + 3)
		raw := experiments.UniformPoints(prng, 2, keyN, 1<<30)
		pts := make([]skipwebs.Point, len(raw))
		for i, p := range raw {
			pts[i] = skipwebs.Point(p)
		}
		w, err := skipwebs.NewPoints(c, 2, pts, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		// Pre-generate queries so the Point composite literal is not
		// charged to the descent's allocs/op.
		qs := make([]skipwebs.Point, 4096)
		for i := range qs {
			qs[i] = skipwebs.Point{uint32(prng.Uint64n(1 << 30)), uint32(prng.Uint64n(1 << 30))}
		}
		doc.Results = append(doc.Results, measure("query/points-locate", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Locate(qs[i%len(qs)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		srng := xrand.New(seed + 4)
		skeys := experiments.UniformStrings(srng, keyN, "acgt", 6, 24)
		w, err := skipwebs.NewStrings(c, skeys, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, measure("query/strings-search", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Search(skeys[i%len(skeys)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}

	// Update climb (blocked web inserts over a fresh key stream).
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		next := uint64(1) << 41
		doc.Results = append(doc.Results, measure("update/blocked-insert", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next++
				h, err := w.Insert(next, skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(h)
			}
		}))
	}

	// Local search: binary-search Locate vs the pre-PR2 head walk, on a
	// listN-key level (the PR 2 acceptance bar is binary >= 100x walk).
	{
		lrng := xrand.New(seed + 5)
		lkeys := experiments.Keys(lrng, listN, 1<<40)
		lvl, err := core.NewListLevel(lkeys)
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 6)
		doc.Results = append(doc.Results, measure("local/listlevel-locate-binary", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lvl.Locate(qrng.Uint64n(1 << 40))
			}
		}))
		doc.Results = append(doc.Results, measure("local/listlevel-locate-walk", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The old implementation: Step from the head sentinel.
				q := qrng.Uint64n(1 << 40)
				r := lvl.Head()
				for {
					nx := lvl.Step(r, q)
					if nx == core.NoRange {
						break
					}
					r = nx
				}
			}
		}))
	}

	fmt.Fprintf(out, "=== B1: hot-path micro-benchmarks (keys=%d hosts=%d list=%d) ===\n", keyN, hosts, listN)
	for _, r := range doc.Results {
		fmt.Fprintf(out, "%-32s %12.1f ns/op %8.0f allocs/op %10.0f ops/sec", r.Name, r.NsPerOp, r.AllocsOp, r.OpsSec)
		if r.MsgsOp > 0 {
			fmt.Fprintf(out, " %8.2f msgs/op", r.MsgsOp)
		}
		fmt.Fprintln(out)
	}
	var binaryNs, walkNs float64
	for _, r := range doc.Results {
		switch r.Name {
		case "local/listlevel-locate-binary":
			binaryNs = r.NsPerOp
		case "local/listlevel-locate-walk":
			walkNs = r.NsPerOp
		}
	}
	if binaryNs > 0 {
		fmt.Fprintf(out, "listlevel locate speedup (walk/binary, %d keys): %.0fx\n", listN, walkNs/binaryNs)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// runThroughput measures batched floor-query throughput at each
// GOMAXPROCS setting and checks message-accounting parity with the
// synchronous path on the identical workload.
func runThroughput(out io.Writer, hosts, keyN, queries int, procList string, seed uint64) error {
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	if keyN < 1 {
		return fmt.Errorf("-keys must be positive, got %d", keyN)
	}
	if queries < 1 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	var procVals []int
	for _, f := range strings.Split(procList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -procs entry %q", f)
		}
		procVals = append(procVals, p)
	}

	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	qs := make([]uint64, queries)
	origins := make([]skipwebs.HostID, queries)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		origins[i] = skipwebs.HostID(rng.Intn(hosts))
	}

	build := func() (*skipwebs.Cluster, *skipwebs.Blocked, error) {
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		c.ResetTraffic()
		return c, w, nil
	}

	// Parity: the same workload, synchronous vs batched, must charge the
	// same total messages and operations.
	cSync, wSync, err := build()
	if err != nil {
		return err
	}
	for i := range qs {
		if _, err := wSync.Floor(qs[i], origins[i]); err != nil {
			return err
		}
	}
	cBatch, wBatch, err := build()
	if err != nil {
		return err
	}
	defer cBatch.Close()
	if _, err := wBatch.FloorBatch(qs, origins); err != nil {
		return err
	}
	ss, bs := cSync.Stats(), cBatch.Stats()
	fmt.Fprintf(out, "=== T1: batch floor throughput (hosts=%d keys=%d queries=%d, machine has %d CPUs) ===\n",
		hosts, keyN, queries, runtime.NumCPU())
	ok := "OK"
	if ss.TotalMessages != bs.TotalMessages || ss.TotalOps != bs.TotalOps ||
		ss.MaxCongestion != bs.MaxCongestion {
		ok = "MISMATCH"
	}
	fmt.Fprintf(out, "accounting parity: sync msgs=%d ops=%d maxC=%d | batch msgs=%d ops=%d maxC=%d  %s\n",
		ss.TotalMessages, ss.TotalOps, ss.MaxCongestion,
		bs.TotalMessages, bs.TotalOps, bs.MaxCongestion, ok)
	if ok != "OK" {
		return fmt.Errorf("batch accounting diverged from synchronous path")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base float64
	for _, p := range procVals {
		runtime.GOMAXPROCS(p)
		c, w, err := build()
		if err != nil {
			return err
		}
		// Warm up the worker pool, then time enough rounds to smooth noise.
		if _, err := w.FloorBatch(qs[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		const rounds = 3
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := w.FloorBatch(qs, origins); err != nil {
				c.Close()
				return err
			}
		}
		elapsed := time.Since(start)
		c.Close()
		opsSec := float64(rounds*queries) / elapsed.Seconds()
		if base == 0 {
			base = opsSec
		}
		note := ""
		if p > runtime.NumCPU() {
			note = "  (exceeds physical CPUs; no further speedup possible)"
		}
		fmt.Fprintf(out, "GOMAXPROCS=%-3d  %12.0f ops/sec  speedup %.2fx%s\n", p, opsSec, opsSec/base, note)
	}
	return nil
}

func runExperiments(out io.Writer, experiment string, quick bool, seed uint64) error {
	t1 := experiments.DefaultTable1Config()
	lm := experiments.DefaultLemmaConfig()
	th := experiments.DefaultTheoremConfig()
	if quick {
		t1 = experiments.QuickTable1Config()
		lm = experiments.QuickLemmaConfig()
		th = experiments.QuickTheoremConfig()
	}
	t1.Seed, lm.Seed, th.Seed = seed, seed+1, seed+2

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		ran = true
		rep, err := experiments.Table1(t1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E1: Table 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma1") {
		ran = true
		rep, err := experiments.Lemma1(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E2: Lemma 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma3") {
		ran = true
		rep, err := experiments.Lemma3(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E3: Lemma 3 / Figure 3 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma4") {
		ran = true
		rep, err := experiments.Lemma4(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E4: Lemma 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma5") {
		ran = true
		rep, err := experiments.Lemma5(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E5: Lemma 5 / Figure 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("theorem2") {
		ran = true
		rep, err := experiments.Theorem2MultiDim(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E6: Theorem 2, multi-dimensional ===")
		fmt.Fprintln(out, rep)
	}
	if want("blocking") {
		ran = true
		rep, err := experiments.Theorem2Blocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E7: Theorem 2, 1-d blocking ===")
		fmt.Fprintln(out, rep)
		fmt.Fprintf(out, "sub-log trend (Q/log2n last/first, <1 is sub-logarithmic): %.3f\n\n",
			experiments.SubLogCheck(rep.Rows))
	}
	if want("updates") {
		ran = true
		rep, err := experiments.Updates(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E8: Section 4 updates ===")
		fmt.Fprintln(out, rep)
	}
	if want("congestion") {
		ran = true
		rep, err := experiments.Congestion(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E9: congestion / load balance ===")
		fmt.Fprintln(out, rep)
	}
	if want("ablation") {
		ran = true
		rep, err := experiments.AblationBlocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== A1: blocking ablation ===")
		fmt.Fprintln(out, rep)
	}
	if want("figures") {
		ran = true
		fmt.Fprintln(out, "=== F1: Figure 1 ===")
		fmt.Fprintln(out, experiments.Figure1(seed))
		f2, err := experiments.Figure2(seed, 1024)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F2: Figure 2 ===")
		fmt.Fprintln(out, f2)
		f4, err := experiments.Figure4(seed, 14)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F4: Figure 4 ===")
		fmt.Fprintln(out, f4)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
