// Command skipweb-bench regenerates every table and figure of the
// skip-webs paper on the message-counting simulator.
//
// Usage:
//
//	skipweb-bench [-experiment all|table1|lemma1|lemma3|lemma4|lemma5|
//	               theorem2|blocking|updates|congestion|ablation|figures]
//	              [-quick] [-seed N]
//
// The default runs everything at the EXPERIMENTS.md scale; -quick runs a
// reduced sweep for smoke testing.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/skipwebs/skipwebs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "which experiment to run")
	quick := flag.Bool("quick", false, "reduced sweep for smoke testing")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	t1 := experiments.DefaultTable1Config()
	lm := experiments.DefaultLemmaConfig()
	th := experiments.DefaultTheoremConfig()
	if *quick {
		t1 = experiments.QuickTable1Config()
		lm = experiments.QuickLemmaConfig()
		th = experiments.QuickTheoremConfig()
	}
	t1.Seed, lm.Seed, th.Seed = *seed, *seed+1, *seed+2

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	if want("table1") {
		ran = true
		rep, err := experiments.Table1(t1)
		if err != nil {
			return err
		}
		fmt.Println("=== E1: Table 1 ===")
		fmt.Println(rep)
	}
	if want("lemma1") {
		ran = true
		rep, err := experiments.Lemma1(lm)
		if err != nil {
			return err
		}
		fmt.Println("=== E2: Lemma 1 ===")
		fmt.Println(rep)
	}
	if want("lemma3") {
		ran = true
		rep, err := experiments.Lemma3(lm)
		if err != nil {
			return err
		}
		fmt.Println("=== E3: Lemma 3 / Figure 3 ===")
		fmt.Println(rep)
	}
	if want("lemma4") {
		ran = true
		rep, err := experiments.Lemma4(lm)
		if err != nil {
			return err
		}
		fmt.Println("=== E4: Lemma 4 ===")
		fmt.Println(rep)
	}
	if want("lemma5") {
		ran = true
		rep, err := experiments.Lemma5(lm)
		if err != nil {
			return err
		}
		fmt.Println("=== E5: Lemma 5 / Figure 4 ===")
		fmt.Println(rep)
	}
	if want("theorem2") {
		ran = true
		rep, err := experiments.Theorem2MultiDim(th)
		if err != nil {
			return err
		}
		fmt.Println("=== E6: Theorem 2, multi-dimensional ===")
		fmt.Println(rep)
	}
	if want("blocking") {
		ran = true
		rep, err := experiments.Theorem2Blocking(th)
		if err != nil {
			return err
		}
		fmt.Println("=== E7: Theorem 2, 1-d blocking ===")
		fmt.Println(rep)
		fmt.Printf("sub-log trend (Q/log2n last/first, <1 is sub-logarithmic): %.3f\n\n",
			experiments.SubLogCheck(rep.Rows))
	}
	if want("updates") {
		ran = true
		rep, err := experiments.Updates(th)
		if err != nil {
			return err
		}
		fmt.Println("=== E8: Section 4 updates ===")
		fmt.Println(rep)
	}
	if want("congestion") {
		ran = true
		rep, err := experiments.Congestion(th)
		if err != nil {
			return err
		}
		fmt.Println("=== E9: congestion / load balance ===")
		fmt.Println(rep)
	}
	if want("ablation") {
		ran = true
		rep, err := experiments.AblationBlocking(th)
		if err != nil {
			return err
		}
		fmt.Println("=== A1: blocking ablation ===")
		fmt.Println(rep)
	}
	if want("figures") {
		ran = true
		fmt.Println("=== F1: Figure 1 ===")
		fmt.Println(experiments.Figure1(*seed))
		f2, err := experiments.Figure2(*seed, 1024)
		if err != nil {
			return err
		}
		fmt.Println("=== F2: Figure 2 ===")
		fmt.Println(f2)
		f4, err := experiments.Figure4(*seed, 14)
		if err != nil {
			return err
		}
		fmt.Println("=== F4: Figure 4 ===")
		fmt.Println(f4)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}
