// Command skipweb-bench regenerates every table and figure of the
// skip-webs paper on the message-counting simulator, and measures the
// wall-clock throughput of the concurrent batch query engine.
//
// Usage:
//
//	skipweb-bench [-mode experiments|throughput|bench|churn]
//	              [-experiment all|table1|lemma1|lemma3|lemma4|lemma5|
//	               theorem2|blocking|updates|congestion|ablation|figures]
//	              [-quick] [-seed N]
//	              [-hosts H] [-keys N] [-queries Q] [-procs 1,2,4]
//	              [-churn-rates 0,0.002,0.01,0.04]
//	              [-json FILE]
//
// The default mode runs the paper experiments at the EXPERIMENTS.md
// scale; -quick runs a reduced sweep for smoke testing. Throughput mode
// runs batched floor queries over a Blocked skip-web at each GOMAXPROCS
// value in -procs, reports ops/sec, and verifies that batched execution
// charges exactly the same messages as the synchronous path.
//
// Bench mode measures wall-clock micro-benchmarks of the hot paths
// (ns/op, allocs/op, ops/sec — plus msgs/op, the paper's cost metric)
// and, with -json, writes them as a JSON document (e.g. BENCH_PR2.json)
// so perf trajectories can be compared run over run (`benchstat` works
// on the plain `go test -bench` output; the JSON is for dashboards and
// CI artifacts).
//
// Churn mode runs a join/leave storm against every structure at once:
// at each rate in -churn-rates (churn events per operation), a mixed
// query workload of -queries operations is interleaved with alternating
// Cluster.Leave and Cluster.Join events. After every churn event the
// mode verifies Cluster.CheckConsistent and spot-checks stored keys; at
// the end it sweeps every key of every structure (zero lost keys) and
// reports ops/sec, query msgs/op, migration msgs/event, and the
// per-host storage quantiles — how load rebalances under churn.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-bench", flag.ContinueOnError)
	mode := fs.String("mode", "experiments", "experiments, throughput, bench, or churn")
	experiment := fs.String("experiment", "all", "which experiment to run")
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	seed := fs.Uint64("seed", 1, "random seed")
	hosts := fs.Int("hosts", 256, "throughput: number of hosts")
	keyN := fs.Int("keys", 4096, "throughput: stored key count")
	queries := fs.Int("queries", 20000, "throughput: queries per batch")
	procs := fs.String("procs", "1,2,4", "throughput: comma-separated GOMAXPROCS values")
	churnRates := fs.String("churn-rates", "0,0.002,0.01,0.04", "churn: comma-separated churn events per operation")
	jsonPath := fs.String("json", "", "bench/churn: also write results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; not a failure
		}
		return err
	}

	switch *mode {
	case "experiments":
		return runExperiments(out, *experiment, *quick, *seed)
	case "throughput":
		return runThroughput(out, *hosts, *keyN, *queries, *procs, *seed)
	case "bench":
		return runBench(out, *jsonPath, *keyN, *hosts, *seed, *quick)
	case "churn":
		return runChurn(out, *jsonPath, *hosts, *keyN, *queries, *churnRates, *seed, *quick)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// benchRecord is one micro-benchmark result in the JSON document.
type benchRecord struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	OpsSec   float64 `json:"ops_per_sec"`
	MsgsOp   float64 `json:"msgs_per_op,omitempty"`
	N        int     `json:"iterations"`
}

// benchDoc is the top-level JSON document written by -json.
type benchDoc struct {
	Mode    string        `json:"mode"`
	Keys    int           `json:"keys"`
	Hosts   int           `json:"hosts"`
	Seed    uint64        `json:"seed"`
	Go      string        `json:"go"`
	CPUs    int           `json:"cpus"`
	Results []benchRecord `json:"results"`
}

// measure runs fn under testing.Benchmark and converts the result; msgs
// is the total message count accumulated by fn across iterations (pass
// nil to omit the msgs/op metric).
func measure(name string, msgs *int64, fn func(b *testing.B)) benchRecord {
	// testing.Benchmark re-invokes fn with growing b.N; reset the message
	// tally on each invocation so the final run's count matches res.N.
	res := testing.Benchmark(func(b *testing.B) {
		if msgs != nil {
			*msgs = 0
		}
		b.ReportAllocs()
		fn(b)
	})
	rec := benchRecord{
		Name:     name,
		NsPerOp:  float64(res.NsPerOp()),
		AllocsOp: float64(res.AllocsPerOp()),
		BytesOp:  float64(res.AllocedBytesPerOp()),
		N:        res.N,
	}
	if res.T > 0 {
		rec.OpsSec = float64(res.N) / res.T.Seconds()
	}
	if msgs != nil {
		rec.MsgsOp = float64(*msgs) / float64(res.N)
	}
	return rec
}

// runBench measures the hot-path micro-benchmarks and reports ns/op,
// allocs/op, ops/sec, and msgs/op. With jsonPath, the results are also
// written as a JSON document (the repo records PR-over-PR trajectories
// in files like BENCH_PR2.json).
func runBench(out io.Writer, jsonPath string, keyN, hosts int, seed uint64, quick bool) error {
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for bench mode, got %d", keyN)
	}
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	listN := 100_000
	if quick {
		listN = 10_000
	}
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	doc := benchDoc{
		Mode:  "bench",
		Keys:  keyN,
		Hosts: hosts,
		Seed:  seed,
		Go:    runtime.Version(),
		CPUs:  runtime.NumCPU(),
	}
	var msgs int64

	// Point-query descent, per structure.
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1)
		doc.Results = append(doc.Results, measure("query/blocked-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewOneDim(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 2)
		doc.Results = append(doc.Results, measure("query/onedim-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		prng := xrand.New(seed + 3)
		raw := experiments.UniformPoints(prng, 2, keyN, 1<<30)
		pts := make([]skipwebs.Point, len(raw))
		for i, p := range raw {
			pts[i] = skipwebs.Point(p)
		}
		w, err := skipwebs.NewPoints(c, 2, pts, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		// Pre-generate queries so the Point composite literal is not
		// charged to the descent's allocs/op.
		qs := make([]skipwebs.Point, 4096)
		for i := range qs {
			qs[i] = skipwebs.Point{uint32(prng.Uint64n(1 << 30)), uint32(prng.Uint64n(1 << 30))}
		}
		doc.Results = append(doc.Results, measure("query/points-locate", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Locate(qs[i%len(qs)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		srng := xrand.New(seed + 4)
		skeys := experiments.UniformStrings(srng, keyN, "acgt", 6, 24)
		w, err := skipwebs.NewStrings(c, skeys, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, measure("query/strings-search", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Search(skeys[i%len(skeys)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}

	// Update climb (blocked web inserts over a fresh key stream).
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		next := uint64(1) << 41
		doc.Results = append(doc.Results, measure("update/blocked-insert", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next++
				h, err := w.Insert(next, skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(h)
			}
		}))
	}

	// Local search: binary-search Locate vs the pre-PR2 head walk, on a
	// listN-key level (the PR 2 acceptance bar is binary >= 100x walk).
	{
		lrng := xrand.New(seed + 5)
		lkeys := experiments.Keys(lrng, listN, 1<<40)
		lvl, err := core.NewListLevel(lkeys)
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 6)
		doc.Results = append(doc.Results, measure("local/listlevel-locate-binary", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lvl.Locate(qrng.Uint64n(1 << 40))
			}
		}))
		doc.Results = append(doc.Results, measure("local/listlevel-locate-walk", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The old implementation: Step from the head sentinel.
				q := qrng.Uint64n(1 << 40)
				r := lvl.Head()
				for {
					nx := lvl.Step(r, q)
					if nx == core.NoRange {
						break
					}
					r = nx
				}
			}
		}))
	}

	fmt.Fprintf(out, "=== B1: hot-path micro-benchmarks (keys=%d hosts=%d list=%d) ===\n", keyN, hosts, listN)
	for _, r := range doc.Results {
		fmt.Fprintf(out, "%-32s %12.1f ns/op %8.0f allocs/op %10.0f ops/sec", r.Name, r.NsPerOp, r.AllocsOp, r.OpsSec)
		if r.MsgsOp > 0 {
			fmt.Fprintf(out, " %8.2f msgs/op", r.MsgsOp)
		}
		fmt.Fprintln(out)
	}
	var binaryNs, walkNs float64
	for _, r := range doc.Results {
		switch r.Name {
		case "local/listlevel-locate-binary":
			binaryNs = r.NsPerOp
		case "local/listlevel-locate-walk":
			walkNs = r.NsPerOp
		}
	}
	if binaryNs > 0 {
		fmt.Fprintf(out, "listlevel locate speedup (walk/binary, %d keys): %.0fx\n", listN, walkNs/binaryNs)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// churnRow is one churn-rate measurement in the JSON document.
type churnRow struct {
	Rate           float64 `json:"rate"`
	Events         int     `json:"events"`
	Joins          int     `json:"joins"`
	Leaves         int     `json:"leaves"`
	FinalHosts     int     `json:"final_hosts"`
	QueryMsgsOp    float64 `json:"query_msgs_per_op"`
	ChurnMsgs      int64   `json:"churn_msgs_total"`
	ChurnMsgsEvent float64 `json:"churn_msgs_per_event"`
	OpsSec         float64 `json:"ops_per_sec"`
	StorageP50     int64   `json:"storage_p50"`
	StorageP99     int64   `json:"storage_p99"`
	StorageMax     int64   `json:"storage_max"`
}

// churnDoc is the top-level JSON document written by -mode churn -json.
type churnDoc struct {
	Mode  string     `json:"mode"`
	Hosts int        `json:"hosts"`
	Keys  int        `json:"keys"`
	Ops   int        `json:"ops"`
	Seed  uint64     `json:"seed"`
	Rows  []churnRow `json:"rows"`
}

// runChurn measures the cost and safety of host churn: for each rate, a
// mixed query workload over all six structures is interleaved with
// join/leave events, with full consistency checks after every event and
// a zero-lost-keys sweep at the end.
func runChurn(out io.Writer, jsonPath string, hosts, keyN, ops int, ratesStr string, seed uint64, quick bool) error {
	if hosts < 4 {
		return fmt.Errorf("-hosts must be >= 4 for churn mode, got %d", hosts)
	}
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for churn mode, got %d", keyN)
	}
	if quick {
		if ops > 2000 {
			ops = 2000
		}
		if keyN > 1024 {
			keyN = 1024
		}
	}
	var rates []float64
	for _, f := range strings.Split(ratesStr, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r < 0 || r > 0.5 {
			return fmt.Errorf("bad -churn-rates entry %q (want 0 <= rate <= 0.5)", f)
		}
		rates = append(rates, r)
	}
	doc := churnDoc{Mode: "churn", Hosts: hosts, Keys: keyN, Ops: ops, Seed: seed}
	fmt.Fprintf(out, "=== C1: host churn (hosts=%d keys=%d ops=%d, 6 structures, consistency-checked) ===\n", hosts, keyN, ops)
	fmt.Fprintf(out, "%8s %7s %6s %6s %6s %14s %16s %12s %8s %8s %8s\n",
		"rate", "events", "joins", "leaves", "hosts", "query msgs/op", "churn msgs/evt", "ops/sec", "st p50", "st p99", "st max")
	for _, rate := range rates {
		row, err := churnTrial(hosts, keyN, ops, rate, seed)
		if err != nil {
			return fmt.Errorf("churn rate %g: %w", rate, err)
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "%8.4f %7d %6d %6d %6d %14.2f %16.1f %12.0f %8d %8d %8d\n",
			row.Rate, row.Events, row.Joins, row.Leaves, row.FinalHosts,
			row.QueryMsgsOp, row.ChurnMsgsEvent, row.OpsSec,
			row.StorageP50, row.StorageP99, row.StorageMax)
	}
	fmt.Fprintln(out, "zero lost keys: every key of every structure answered correctly after the storm")
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// churnTrial runs one churn-rate cell: build all six structures on a
// fresh cluster, interleave queries with alternating leave/join events,
// check consistency after every event, and sweep for lost keys at the
// end.
func churnTrial(hosts, keyN, ops int, rate float64, seed uint64) (churnRow, error) {
	row := churnRow{Rate: rate}
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	segN := keyN / 8
	if segN > 256 {
		segN = 256
	}

	c := skipwebs.NewCluster(hosts)
	oned, err := skipwebs.NewOneDim(c, keys, skipwebs.Options{Seed: seed})
	if err != nil {
		return row, err
	}
	blocked, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed + 1})
	if err != nil {
		return row, err
	}
	bucketed, err := skipwebs.NewBucketed(c, keys, skipwebs.Options{Seed: seed + 2})
	if err != nil {
		return row, err
	}
	raw := experiments.UniformPoints(rng, 2, keyN, 1<<30)
	pts := make([]skipwebs.Point, len(raw))
	for i, p := range raw {
		pts[i] = skipwebs.Point(p)
	}
	points, err := skipwebs.NewPoints(c, 2, pts, skipwebs.Options{Seed: seed + 3})
	if err != nil {
		return row, err
	}
	strKeys := experiments.UniformStrings(rng, keyN, "acgt", 8, 24)
	strs, err := skipwebs.NewStrings(c, strKeys, skipwebs.Options{Seed: seed + 4})
	if err != nil {
		return row, err
	}
	rawSegs := experiments.DisjointSegments(rng, segN, trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000})
	segs := make([]skipwebs.PlanarSegment, len(rawSegs))
	for i, s := range rawSegs {
		segs[i] = skipwebs.PlanarSegment{
			A: skipwebs.PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: skipwebs.PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	planar, err := skipwebs.NewPlanar(c, segs,
		skipwebs.PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000},
		skipwebs.Options{Seed: seed + 5})
	if err != nil {
		return row, err
	}
	c.ResetTraffic()

	step := 0
	if rate > 0 {
		step = int(math.Round(1 / rate))
	}
	qrng := xrand.New(seed + 99)
	var queryTime time.Duration
	var verifyMsgs int64
	for i := 0; i < ops; i++ {
		if step > 0 && i > 0 && i%step == 0 {
			before := c.Stats().TotalMessages
			if row.Events%2 == 0 && c.Hosts() > 2 {
				h := c.HostAt(qrng.Intn(c.Hosts()))
				if err := c.Leave(h); err != nil {
					return row, err
				}
				row.Leaves++
			} else {
				c.Join()
				row.Joins++
			}
			row.Events++
			row.ChurnMsgs += c.Stats().TotalMessages - before
			if err := c.CheckConsistent(); err != nil {
				return row, fmt.Errorf("consistency after event %d: %w", row.Events, err)
			}
			// Spot-check traffic is verification overhead, not workload:
			// track it separately so QueryMsgsOp stays a pure per-query
			// measure at every churn rate.
			beforeVerify := c.Stats().TotalMessages
			for s := 0; s < 8; s++ {
				k := keys[qrng.Intn(len(keys))]
				found, _, err := oned.Contains(k, c.HostAt(qrng.Intn(c.Hosts())))
				if err != nil {
					return row, err
				}
				if !found {
					return row, fmt.Errorf("key %d lost after event %d", k, row.Events)
				}
			}
			verifyMsgs += c.Stats().TotalMessages - beforeVerify
		}
		origin := c.HostAt(qrng.Intn(c.Hosts()))
		start := time.Now()
		switch i % 6 {
		case 0:
			_, err = oned.Floor(qrng.Uint64n(1<<40), origin)
		case 1:
			_, err = blocked.Floor(qrng.Uint64n(1<<40), origin)
		case 2:
			_, err = bucketed.Floor(qrng.Uint64n(1<<40), origin)
		case 3:
			q := skipwebs.Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}
			_, err = points.Locate(q, origin)
		case 4:
			_, err = strs.Search(strKeys[qrng.Intn(len(strKeys))], origin)
		case 5:
			q := skipwebs.PlanarPoint{
				X: int64(qrng.Uint64n(1998)) - 999,
				Y: int64(qrng.Uint64n(1998)) - 999,
			}
			_, err = planar.Locate(q, origin)
		}
		queryTime += time.Since(start)
		if err != nil {
			return row, err
		}
	}

	// Capture accounting before the verification sweep so msgs/op covers
	// exactly the measured workload.
	stats := c.Stats()
	qs := c.StorageQuantiles(0.5, 0.99, 1.0)
	row.FinalHosts = c.Hosts()
	row.QueryMsgsOp = float64(stats.TotalMessages-row.ChurnMsgs-verifyMsgs) / float64(ops)
	if row.Events > 0 {
		row.ChurnMsgsEvent = float64(row.ChurnMsgs) / float64(row.Events)
	}
	if queryTime > 0 {
		row.OpsSec = float64(ops) / queryTime.Seconds()
	}
	row.StorageP50, row.StorageP99, row.StorageMax = qs[0], qs[1], qs[2]

	// Zero lost keys: every item of every structure must still be
	// reachable by a routed query, and every structure must be consistent.
	if err := c.CheckConsistent(); err != nil {
		return row, fmt.Errorf("final consistency: %w", err)
	}
	for i, k := range keys {
		if found, _, err := oned.Contains(k, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("onedim lost key %d: %v", k, err)
		}
		if r, err := blocked.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			return row, fmt.Errorf("blocked lost key %d: %v", k, err)
		}
		if r, err := bucketed.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			return row, fmt.Errorf("bucketed lost key %d: %v", k, err)
		}
	}
	for i, p := range pts {
		if found, _, err := points.Contains(p, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("points lost %v: %v", p, err)
		}
	}
	for i, s := range strKeys {
		if found, _, err := strs.Contains(s, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("strings lost %q: %v", s, err)
		}
	}
	return row, nil
}

// runThroughput measures batched floor-query throughput at each
// GOMAXPROCS setting and checks message-accounting parity with the
// synchronous path on the identical workload.
func runThroughput(out io.Writer, hosts, keyN, queries int, procList string, seed uint64) error {
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	if keyN < 1 {
		return fmt.Errorf("-keys must be positive, got %d", keyN)
	}
	if queries < 1 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	var procVals []int
	for _, f := range strings.Split(procList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -procs entry %q", f)
		}
		procVals = append(procVals, p)
	}

	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	qs := make([]uint64, queries)
	origins := make([]skipwebs.HostID, queries)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		origins[i] = skipwebs.HostID(rng.Intn(hosts))
	}

	build := func() (*skipwebs.Cluster, *skipwebs.Blocked, error) {
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		c.ResetTraffic()
		return c, w, nil
	}

	// Parity: the same workload, synchronous vs batched, must charge the
	// same total messages and operations.
	cSync, wSync, err := build()
	if err != nil {
		return err
	}
	for i := range qs {
		if _, err := wSync.Floor(qs[i], origins[i]); err != nil {
			return err
		}
	}
	cBatch, wBatch, err := build()
	if err != nil {
		return err
	}
	defer cBatch.Close()
	if _, err := wBatch.FloorBatch(qs, origins); err != nil {
		return err
	}
	ss, bs := cSync.Stats(), cBatch.Stats()
	fmt.Fprintf(out, "=== T1: batch floor throughput (hosts=%d keys=%d queries=%d, machine has %d CPUs) ===\n",
		hosts, keyN, queries, runtime.NumCPU())
	ok := "OK"
	if ss.TotalMessages != bs.TotalMessages || ss.TotalOps != bs.TotalOps ||
		ss.MaxCongestion != bs.MaxCongestion {
		ok = "MISMATCH"
	}
	fmt.Fprintf(out, "accounting parity: sync msgs=%d ops=%d maxC=%d | batch msgs=%d ops=%d maxC=%d  %s\n",
		ss.TotalMessages, ss.TotalOps, ss.MaxCongestion,
		bs.TotalMessages, bs.TotalOps, bs.MaxCongestion, ok)
	if ok != "OK" {
		return fmt.Errorf("batch accounting diverged from synchronous path")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base float64
	for _, p := range procVals {
		runtime.GOMAXPROCS(p)
		c, w, err := build()
		if err != nil {
			return err
		}
		// Warm up the worker pool, then time enough rounds to smooth noise.
		if _, err := w.FloorBatch(qs[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		const rounds = 3
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := w.FloorBatch(qs, origins); err != nil {
				c.Close()
				return err
			}
		}
		elapsed := time.Since(start)
		c.Close()
		opsSec := float64(rounds*queries) / elapsed.Seconds()
		if base == 0 {
			base = opsSec
		}
		note := ""
		if p > runtime.NumCPU() {
			note = "  (exceeds physical CPUs; no further speedup possible)"
		}
		fmt.Fprintf(out, "GOMAXPROCS=%-3d  %12.0f ops/sec  speedup %.2fx%s\n", p, opsSec, opsSec/base, note)
	}
	return nil
}

func runExperiments(out io.Writer, experiment string, quick bool, seed uint64) error {
	t1 := experiments.DefaultTable1Config()
	lm := experiments.DefaultLemmaConfig()
	th := experiments.DefaultTheoremConfig()
	if quick {
		t1 = experiments.QuickTable1Config()
		lm = experiments.QuickLemmaConfig()
		th = experiments.QuickTheoremConfig()
	}
	t1.Seed, lm.Seed, th.Seed = seed, seed+1, seed+2

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		ran = true
		rep, err := experiments.Table1(t1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E1: Table 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma1") {
		ran = true
		rep, err := experiments.Lemma1(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E2: Lemma 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma3") {
		ran = true
		rep, err := experiments.Lemma3(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E3: Lemma 3 / Figure 3 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma4") {
		ran = true
		rep, err := experiments.Lemma4(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E4: Lemma 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma5") {
		ran = true
		rep, err := experiments.Lemma5(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E5: Lemma 5 / Figure 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("theorem2") {
		ran = true
		rep, err := experiments.Theorem2MultiDim(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E6: Theorem 2, multi-dimensional ===")
		fmt.Fprintln(out, rep)
	}
	if want("blocking") {
		ran = true
		rep, err := experiments.Theorem2Blocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E7: Theorem 2, 1-d blocking ===")
		fmt.Fprintln(out, rep)
		fmt.Fprintf(out, "sub-log trend (Q/log2n last/first, <1 is sub-logarithmic): %.3f\n\n",
			experiments.SubLogCheck(rep.Rows))
	}
	if want("updates") {
		ran = true
		rep, err := experiments.Updates(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E8: Section 4 updates ===")
		fmt.Fprintln(out, rep)
	}
	if want("congestion") {
		ran = true
		rep, err := experiments.Congestion(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E9: congestion / load balance ===")
		fmt.Fprintln(out, rep)
	}
	if want("ablation") {
		ran = true
		rep, err := experiments.AblationBlocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== A1: blocking ablation ===")
		fmt.Fprintln(out, rep)
	}
	if want("figures") {
		ran = true
		fmt.Fprintln(out, "=== F1: Figure 1 ===")
		fmt.Fprintln(out, experiments.Figure1(seed))
		f2, err := experiments.Figure2(seed, 1024)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F2: Figure 2 ===")
		fmt.Fprintln(out, f2)
		f4, err := experiments.Figure4(seed, 14)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F4: Figure 4 ===")
		fmt.Fprintln(out, f4)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
