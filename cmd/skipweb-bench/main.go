// Command skipweb-bench regenerates every table and figure of the
// skip-webs paper on the message-counting simulator, and measures the
// wall-clock throughput of the concurrent batch query engine.
//
// Usage:
//
//	skipweb-bench [-mode experiments|throughput]
//	              [-experiment all|table1|lemma1|lemma3|lemma4|lemma5|
//	               theorem2|blocking|updates|congestion|ablation|figures]
//	              [-quick] [-seed N]
//	              [-hosts H] [-keys N] [-queries Q] [-procs 1,2,4]
//
// The default mode runs the paper experiments at the EXPERIMENTS.md
// scale; -quick runs a reduced sweep for smoke testing. Throughput mode
// runs batched floor queries over a Blocked skip-web at each GOMAXPROCS
// value in -procs, reports ops/sec, and verifies that batched execution
// charges exactly the same messages as the synchronous path.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-bench", flag.ContinueOnError)
	mode := fs.String("mode", "experiments", "experiments or throughput")
	experiment := fs.String("experiment", "all", "which experiment to run")
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	seed := fs.Uint64("seed", 1, "random seed")
	hosts := fs.Int("hosts", 256, "throughput: number of hosts")
	keyN := fs.Int("keys", 4096, "throughput: stored key count")
	queries := fs.Int("queries", 20000, "throughput: queries per batch")
	procs := fs.String("procs", "1,2,4", "throughput: comma-separated GOMAXPROCS values")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; not a failure
		}
		return err
	}

	switch *mode {
	case "experiments":
		return runExperiments(out, *experiment, *quick, *seed)
	case "throughput":
		return runThroughput(out, *hosts, *keyN, *queries, *procs, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runThroughput measures batched floor-query throughput at each
// GOMAXPROCS setting and checks message-accounting parity with the
// synchronous path on the identical workload.
func runThroughput(out io.Writer, hosts, keyN, queries int, procList string, seed uint64) error {
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	if keyN < 1 {
		return fmt.Errorf("-keys must be positive, got %d", keyN)
	}
	if queries < 1 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	var procVals []int
	for _, f := range strings.Split(procList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -procs entry %q", f)
		}
		procVals = append(procVals, p)
	}

	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	qs := make([]uint64, queries)
	origins := make([]skipwebs.HostID, queries)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		origins[i] = skipwebs.HostID(rng.Intn(hosts))
	}

	build := func() (*skipwebs.Cluster, *skipwebs.Blocked, error) {
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		c.ResetTraffic()
		return c, w, nil
	}

	// Parity: the same workload, synchronous vs batched, must charge the
	// same total messages and operations.
	cSync, wSync, err := build()
	if err != nil {
		return err
	}
	for i := range qs {
		if _, err := wSync.Floor(qs[i], origins[i]); err != nil {
			return err
		}
	}
	cBatch, wBatch, err := build()
	if err != nil {
		return err
	}
	defer cBatch.Close()
	if _, err := wBatch.FloorBatch(qs, origins); err != nil {
		return err
	}
	ss, bs := cSync.Stats(), cBatch.Stats()
	fmt.Fprintf(out, "=== T1: batch floor throughput (hosts=%d keys=%d queries=%d, machine has %d CPUs) ===\n",
		hosts, keyN, queries, runtime.NumCPU())
	ok := "OK"
	if ss.TotalMessages != bs.TotalMessages || ss.TotalOps != bs.TotalOps ||
		ss.MaxCongestion != bs.MaxCongestion {
		ok = "MISMATCH"
	}
	fmt.Fprintf(out, "accounting parity: sync msgs=%d ops=%d maxC=%d | batch msgs=%d ops=%d maxC=%d  %s\n",
		ss.TotalMessages, ss.TotalOps, ss.MaxCongestion,
		bs.TotalMessages, bs.TotalOps, bs.MaxCongestion, ok)
	if ok != "OK" {
		return fmt.Errorf("batch accounting diverged from synchronous path")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base float64
	for _, p := range procVals {
		runtime.GOMAXPROCS(p)
		c, w, err := build()
		if err != nil {
			return err
		}
		// Warm up the worker pool, then time enough rounds to smooth noise.
		if _, err := w.FloorBatch(qs[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		const rounds = 3
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := w.FloorBatch(qs, origins); err != nil {
				c.Close()
				return err
			}
		}
		elapsed := time.Since(start)
		c.Close()
		opsSec := float64(rounds*queries) / elapsed.Seconds()
		if base == 0 {
			base = opsSec
		}
		note := ""
		if p > runtime.NumCPU() {
			note = "  (exceeds physical CPUs; no further speedup possible)"
		}
		fmt.Fprintf(out, "GOMAXPROCS=%-3d  %12.0f ops/sec  speedup %.2fx%s\n", p, opsSec, opsSec/base, note)
	}
	return nil
}

func runExperiments(out io.Writer, experiment string, quick bool, seed uint64) error {
	t1 := experiments.DefaultTable1Config()
	lm := experiments.DefaultLemmaConfig()
	th := experiments.DefaultTheoremConfig()
	if quick {
		t1 = experiments.QuickTable1Config()
		lm = experiments.QuickLemmaConfig()
		th = experiments.QuickTheoremConfig()
	}
	t1.Seed, lm.Seed, th.Seed = seed, seed+1, seed+2

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		ran = true
		rep, err := experiments.Table1(t1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E1: Table 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma1") {
		ran = true
		rep, err := experiments.Lemma1(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E2: Lemma 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma3") {
		ran = true
		rep, err := experiments.Lemma3(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E3: Lemma 3 / Figure 3 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma4") {
		ran = true
		rep, err := experiments.Lemma4(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E4: Lemma 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma5") {
		ran = true
		rep, err := experiments.Lemma5(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E5: Lemma 5 / Figure 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("theorem2") {
		ran = true
		rep, err := experiments.Theorem2MultiDim(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E6: Theorem 2, multi-dimensional ===")
		fmt.Fprintln(out, rep)
	}
	if want("blocking") {
		ran = true
		rep, err := experiments.Theorem2Blocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E7: Theorem 2, 1-d blocking ===")
		fmt.Fprintln(out, rep)
		fmt.Fprintf(out, "sub-log trend (Q/log2n last/first, <1 is sub-logarithmic): %.3f\n\n",
			experiments.SubLogCheck(rep.Rows))
	}
	if want("updates") {
		ran = true
		rep, err := experiments.Updates(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E8: Section 4 updates ===")
		fmt.Fprintln(out, rep)
	}
	if want("congestion") {
		ran = true
		rep, err := experiments.Congestion(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E9: congestion / load balance ===")
		fmt.Fprintln(out, rep)
	}
	if want("ablation") {
		ran = true
		rep, err := experiments.AblationBlocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== A1: blocking ablation ===")
		fmt.Fprintln(out, rep)
	}
	if want("figures") {
		ran = true
		fmt.Fprintln(out, "=== F1: Figure 1 ===")
		fmt.Fprintln(out, experiments.Figure1(seed))
		f2, err := experiments.Figure2(seed, 1024)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F2: Figure 2 ===")
		fmt.Fprintln(out, f2)
		f4, err := experiments.Figure4(seed, 14)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F4: Figure 4 ===")
		fmt.Fprintln(out, f4)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
