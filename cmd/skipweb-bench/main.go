// Command skipweb-bench regenerates every table and figure of the
// skip-webs paper on the message-counting simulator, and measures the
// wall-clock throughput of the concurrent batch query engine.
//
// Usage:
//
//	skipweb-bench [-mode experiments|throughput|bench|churn|failover|wire]
//	              [-experiment all|table1|lemma1|lemma3|lemma4|lemma5|
//	               theorem2|blocking|updates|congestion|ablation|figures]
//	              [-quick] [-seed N]
//	              [-hosts H] [-keys N] [-queries Q] [-procs 1,2,4]
//	              [-stripes S]
//	              [-churn-rates 0,0.002,0.01,0.04]
//	              [-replicas 1,2,3] [-crashes N] [-restart]
//	              [-json FILE] [-baseline FILE]
//
// The default mode runs the paper experiments at the EXPERIMENTS.md
// scale; -quick runs a reduced sweep for smoke testing. Throughput mode
// runs batched floor queries over a Blocked skip-web, plus InsertBatch
// and DeleteBatch over the same web built with -stripes write stripes,
// at each GOMAXPROCS value in -procs; it reports ops/sec, verifies that
// batched execution charges exactly the same messages as the
// synchronous path for both reads and striped writes, writes the table
// as JSON with -json (BENCH_WRITERS_PR8.json), and on a >= 4-CPU
// machine fails unless striped inserts scale >= 2x from 1 to 4 procs.
//
// Bench mode measures wall-clock micro-benchmarks of the hot paths
// (ns/op, allocs/op, ops/sec — plus msgs/op, the paper's cost metric)
// and, with -json, writes them as a JSON document (e.g. BENCH_PR2.json)
// so perf trajectories can be compared run over run (`benchstat` works
// on the plain `go test -bench` output; the JSON is for dashboards and
// CI artifacts).
//
// Failover mode measures crash tolerance versus the replication factor
// -replicas: at each k, a mixed query workload over all six structures
// is interleaved with -crashes unclean host kills (Cluster.Crash: no
// migration, the host's data dies, Repair re-replicates from the
// surviving copies). It reports availability (fraction of queries
// answered rather than failing fast), whether every answered query
// matched a crash-free control build, lost units, repair msgs/event,
// and query/update msgs/op — the replication overhead; results are
// recorded as BENCH_FAILOVER_PR5.json. With -restart, failover mode
// instead measures durable recovery: for each structure and k it
// crashes one host of a durable cluster and a non-durable twin, churns
// ~1% of the keys while the host is down, then brings it back with
// Cluster.Restart (WAL replay + merkle-diff reconcile) and compares the
// reconcile traffic against the twin's full re-replication — the ratio
// must stay under 10%; results are recorded as BENCH_RECOVERY_PR7.json
// and -baseline enforces the committed recovery_ceilings.
//
// Wire mode replays a seeded workload against a cluster of skip-web
// daemons speaking the real TCP wire protocol (in-process listeners by
// default; real skipweb-serve processes with -serve-bin) and diffs the
// per-host message counters against a simulator run of the identical
// workload — they must be bit-identical, since the model's charges are
// transport-invariant. It also reports real-socket query latency
// (p50/p99); results are recorded as BENCH_WIRE_PR6.json. With
// -restart (requires -serve-bin), the daemons run with a WAL directory
// and one of them is SIGKILLed mid-workload and restarted; the replayed
// daemon must rejoin and the final answers, digests, and summed
// per-host counters must still match the crash-free simulator run.
//
// Churn mode runs a join/leave storm against every structure at once:
// at each rate in -churn-rates (churn events per operation), a mixed
// query workload of -queries operations is interleaved with alternating
// Cluster.Leave and Cluster.Join events. After every churn event the
// mode verifies Cluster.CheckConsistent and spot-checks stored keys; at
// the end it sweeps every key of every structure (zero lost keys) and
// reports ops/sec, query msgs/op, migration msgs/event, and the
// per-host storage quantiles — how load rebalances under churn.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	skipwebs "github.com/skipwebs/skipwebs"
	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skipweb-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skipweb-bench", flag.ContinueOnError)
	mode := fs.String("mode", "experiments", "experiments, throughput, bench, churn, failover, wire, skew, scale, or campaign")
	experiment := fs.String("experiment", "all", "which experiment to run")
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	seed := fs.Uint64("seed", 1, "random seed")
	hosts := fs.Int("hosts", 256, "throughput: number of hosts")
	keyN := fs.Int("keys", 4096, "throughput: stored key count")
	queries := fs.Int("queries", 20000, "throughput: queries per batch")
	procs := fs.String("procs", "1,2,4", "throughput: comma-separated GOMAXPROCS values")
	stripes := fs.Int("stripes", 4, "throughput: write stripes for the insert/delete section")
	churnRates := fs.String("churn-rates", "0,0.002,0.01,0.04", "churn: comma-separated churn events per operation")
	replicas := fs.String("replicas", "1,2,3", "failover: comma-separated replication factors k")
	crashes := fs.Int("crashes", 4, "failover: host crashes per trial")
	jsonPath := fs.String("json", "", "bench/churn: also write results as JSON to this file")
	baseline := fs.String("baseline", "", "bench: compare allocs/op and msgs/op against the ceilings in this JSON file and fail on regression")
	serveBin := fs.String("serve-bin", "", "wire: path to a skipweb-serve binary; when set, daemons run as real processes")
	basePort := fs.Int("base-port", 7070, "wire: first loopback port for -serve-bin daemons")
	restart := fs.Bool("restart", false, "failover: measure durable crash->Restart (WAL replay + merkle diff) against full re-replication; wire: SIGKILL and restart a real daemon mid-workload")
	skewS := fs.String("skew-s", "0.8,1.0,1.2", "skew: comma-separated Zipf exponents (campaign uses the first)")
	skewAbsent := fs.Float64("skew-absent", 0.25, "skew/campaign: fraction of adversarial absent-key queries")
	scaleHosts := fs.String("scale-hosts", "256,1024,4096,10000", "scale: comma-separated host counts to sweep")
	scaleKeys := fs.String("scale-keys", "262144,1048576,10485760", "scale: comma-separated key counts to sweep")
	latSpec := fs.String("latency", "twolevel", "scale/campaign: per-link latency model (none, fixed:C, uniform:LO:HI, lognormal:MU:SIGMA, twolevel[:RACK])")
	maxWall := fs.Duration("max-wall", 0, "scale/campaign: stop starting new cells after this wall-clock budget (0 = unlimited)")
	crashFracs := fs.String("crash-fracs", "0.01,0.05,0.1,0.2", "campaign: comma-separated fractions of hosts crashed simultaneously")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; not a failure
		}
		return err
	}
	if *mode == "skew" {
		// Skew mode replays every op against two full builds per cell;
		// scale the sim-sized defaults down unless set explicitly.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["hosts"] {
			*hosts = 64
		}
		if !set["queries"] {
			*queries = 8000
		}
	}
	if *mode == "scale" {
		// A scale cell drives one batch of -queries through each build;
		// the throughput-sized default (20000) multiplies across the whole
		// hosts x keys sweep, so scale it down unless set explicitly.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["queries"] {
			*queries = 2000
		}
	}
	if *mode == "campaign" {
		// Campaign builds all six structures per replication factor and a
		// fresh durable cluster per crash fraction; default to the scale
		// the breaking-point tables are reported at, replicated x3.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["hosts"] {
			*hosts = 1024
		}
		if !set["keys"] {
			*keyN = 262144
		}
		if !set["queries"] {
			*queries = 4000
		}
		if !set["replicas"] {
			*replicas = "3"
		}
	}
	if *mode == "wire" {
		// The sim-scale defaults (256 hosts, 20000 queries) are sized for
		// in-process message counting, not for a socket per hop; scale the
		// defaults down unless the flag was given explicitly.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["hosts"] {
			*hosts = 4
		}
		if !set["keys"] {
			*keyN = 512
		}
		if !set["queries"] {
			*queries = 500
		}
	}

	switch *mode {
	case "experiments":
		return runExperiments(out, *experiment, *quick, *seed)
	case "throughput":
		return runThroughput(out, *jsonPath, *hosts, *keyN, *queries, *procs, *stripes, *seed)
	case "bench":
		return runBench(out, *jsonPath, *baseline, *keyN, *hosts, *seed, *quick)
	case "churn":
		return runChurn(out, *jsonPath, *hosts, *keyN, *queries, *churnRates, *seed, *quick)
	case "failover":
		if *restart {
			return runRecovery(out, *jsonPath, *baseline, *hosts, *keyN, *replicas, *seed)
		}
		return runFailover(out, *jsonPath, *hosts, *keyN, *queries, *replicas, *crashes, *seed, *quick)
	case "wire":
		return runWire(out, *jsonPath, *serveBin, *basePort, *hosts, *keyN, *queries, *seed, *restart)
	case "skew":
		return runSkew(out, *jsonPath, *hosts, *keyN, *queries, *skewS, *skewAbsent, *seed, *quick)
	case "scale":
		return runScale(out, *jsonPath, *scaleHosts, *scaleKeys, *queries, *latSpec, *maxWall, *seed, *quick)
	case "campaign":
		s, err := firstSkewS(*skewS)
		if err != nil {
			return err
		}
		return runCampaign(out, *jsonPath, *hosts, *keyN, *queries, *replicas, *crashFracs, *latSpec, s, *skewAbsent, *maxWall, *seed, *quick)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// benchRecord is one micro-benchmark result in the JSON document.
type benchRecord struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	OpsSec   float64 `json:"ops_per_sec"`
	MsgsOp   float64 `json:"msgs_per_op,omitempty"`
	N        int     `json:"iterations"`
}

// benchDoc is the top-level JSON document written by -json.
type benchDoc struct {
	Mode    string        `json:"mode"`
	Keys    int           `json:"keys"`
	Hosts   int           `json:"hosts"`
	Seed    uint64        `json:"seed"`
	Go      string        `json:"go"`
	CPUs    int           `json:"cpus"`
	Results []benchRecord `json:"results"`
}

// measure runs fn under testing.Benchmark and converts the result; msgs
// is the total message count accumulated by fn across iterations (pass
// nil to omit the msgs/op metric).
func measure(name string, msgs *int64, fn func(b *testing.B)) benchRecord {
	// testing.Benchmark re-invokes fn with growing b.N; reset the message
	// tally on each invocation so the final run's count matches res.N.
	res := testing.Benchmark(func(b *testing.B) {
		if msgs != nil {
			*msgs = 0
		}
		b.ReportAllocs()
		fn(b)
	})
	rec := benchRecord{
		Name:     name,
		NsPerOp:  float64(res.NsPerOp()),
		AllocsOp: float64(res.AllocsPerOp()),
		BytesOp:  float64(res.AllocedBytesPerOp()),
		N:        res.N,
	}
	if res.T > 0 {
		rec.OpsSec = float64(res.N) / res.T.Seconds()
	}
	if msgs != nil {
		rec.MsgsOp = float64(*msgs) / float64(res.N)
	}
	return rec
}

// baselineCeiling is one row of the checked-in perf baseline: ceilings
// on allocs/op and msgs/op for a named benchmark at the CI invocation's
// scale. A nil ceiling skips that metric.
type baselineCeiling struct {
	Name     string   `json:"name"`
	AllocsOp *float64 `json:"max_allocs_per_op,omitempty"`
	MsgsOp   *float64 `json:"max_msgs_per_op,omitempty"`
}

// baselineDoc is the checked-in perf-regression baseline (-baseline).
type baselineDoc struct {
	Note     string            `json:"note"`
	Ceilings []baselineCeiling `json:"ceilings"`
}

// checkBaseline compares the measured results against the baseline
// ceilings: a missing benchmark row or an exceeded ceiling is a failure.
// allocs/op ceilings are exact integers in practice, so they compare
// directly; msgs/op ceilings carry the tolerance in the committed value.
func checkBaseline(out io.Writer, doc benchDoc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base baselineDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]benchRecord, len(doc.Results))
	for _, r := range doc.Results {
		byName[r.Name] = r
	}
	var failures []string
	for _, c := range base.Ceilings {
		r, ok := byName[c.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark missing from this run (guard erosion)", c.Name))
			continue
		}
		if c.AllocsOp != nil && r.AllocsOp > *c.AllocsOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds ceiling %.0f", c.Name, r.AllocsOp, *c.AllocsOp))
		}
		if c.MsgsOp != nil && r.MsgsOp > *c.MsgsOp {
			failures = append(failures, fmt.Sprintf("%s: %.2f msgs/op exceeds ceiling %.2f", c.Name, r.MsgsOp, *c.MsgsOp))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "PERF REGRESSION:", f)
		}
		return fmt.Errorf("%d perf regression(s) against %s", len(failures), path)
	}
	fmt.Fprintf(out, "baseline %s: all %d ceilings hold\n", path, len(base.Ceilings))
	return nil
}

// runBench measures the hot-path micro-benchmarks and reports ns/op,
// allocs/op, ops/sec, and msgs/op. With jsonPath, the results are also
// written as a JSON document (the repo records PR-over-PR trajectories
// in files like BENCH_PR4.json); with baselinePath, measured allocs/op
// and msgs/op are checked against the committed ceilings.
//
// Update rows measure the steady state at the configured size: inserts
// stream fresh ascending keys and the structure is rebuilt fresh —
// outside the timer — once keyN timed inserts have landed, so the
// structure size stays within [keyN, 2 keyN); delete rows build over
// 2 keyN keys and rebuild after keyN timed deletes. (The PR 2 harness
// let the insert benchmark grow the structure with the iteration count,
// so its ns/op conflated update cost with structure growth; EXPERIMENTS
// notes the change.) The -quick flag skips the large-n (262144-key,
// bulk-loaded) rows and the bulk-vs-sequential construction comparison.
func runBench(out io.Writer, jsonPath, baselinePath string, keyN, hosts int, seed uint64, quick bool) error {
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for bench mode, got %d", keyN)
	}
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	listN := 100_000
	if quick {
		listN = 10_000
	}
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, 2*keyN, 1<<40)
	doc := benchDoc{
		Mode:  "bench",
		Keys:  keyN,
		Hosts: hosts,
		Seed:  seed,
		Go:    runtime.Version(),
		CPUs:  runtime.NumCPU(),
	}
	var msgs int64

	// --- Point-query descent, per structure. ---
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1)
		doc.Results = append(doc.Results, measure("query/blocked-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewOneDim(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 2)
		doc.Results = append(doc.Results, measure("query/onedim-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBucketed(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 7)
		doc.Results = append(doc.Results, measure("query/bucketed-floor", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	// Explicit Replicas: 1 twin of the blocked query row: the replica-
	// aware routing, storage, and write-through paths at k = 1 must cost
	// exactly what the pre-replication code did. Its baseline ceilings
	// equal query/blocked-floor's, so any k = 1 replication overhead —
	// messages or allocations — fails the perf guard.
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed, Replicas: 1})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1) // same query stream as query/blocked-floor
		doc.Results = append(doc.Results, measure("query/blocked-floor-r1", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	// Striped twin of the blocked query row: WriteStripes: 4 splits the
	// structure into four quarter-size sub-engines, so routed floors must
	// stay allocation-free and cost no more messages than the unstriped
	// build (descents are shorter; cross-stripe floor fallback is rare).
	{
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed, WriteStripes: 4})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1) // same query stream as query/blocked-floor
		doc.Results = append(doc.Results, measure("query/blocked-floor-s4", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	// Cached twin rows: the same blocked build queried with a Zipf(1.2)
	// stream over the stored keys, with and without the read-path caches
	// (Options.CacheFingers + NegativeBloom). The cache-off row pins the
	// skewed-control cost; the cached row's ceiling enforces that finger
	// hits keep paying off and stay allocation-lean on the hit path.
	for _, cached := range []bool{false, true} {
		name := "query/blocked-floor-zipf"
		if cached {
			name += "-cached"
		}
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{
			Seed: seed, CacheFingers: cached, NegativeBloom: cached,
		})
		if err != nil {
			return err
		}
		zipf := xrand.NewZipf(xrand.New(seed+13), 1.2, keyN)
		doc.Results = append(doc.Results, measure(name, &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(keys[zipf.Next()], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
	}
	// Latency-model twin of the blocked query row: the same build and
	// query stream under the two-level rack/region cost model. Its
	// ceilings pin that latency accounting is free where it matters —
	// zero allocations on the descent (the model is a pure hash per
	// charge) and not one extra message versus the nil-model row.
	{
		model := skipwebs.TwoLevelLatency(64,
			skipwebs.UniformLatency(seed, 1, 5),
			skipwebs.LogNormalLatency(seed+1, math.Log(100), 0.25))
		c := skipwebs.NewCluster(hosts, skipwebs.WithLatency(model))
		w, err := skipwebs.NewBlocked(c, keys[:keyN], skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 1) // same query stream as query/blocked-floor
		var lat int64
		doc.Results = append(doc.Results, measure("query/blocked-floor-lat", &msgs, func(b *testing.B) {
			lat = 0
			for i := 0; i < b.N; i++ {
				r, err := w.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
				lat += r.Latency
			}
		}))
		if lat == 0 {
			return fmt.Errorf("query/blocked-floor-lat accumulated zero modeled latency")
		}
	}
	pointPool := func(prng *xrand.Rand, n int) []skipwebs.Point {
		seen := make(map[uint64]bool, n)
		pts := make([]skipwebs.Point, 0, n)
		for len(pts) < n {
			p := skipwebs.Point{uint32(prng.Uint64n(1 << 30)), uint32(prng.Uint64n(1 << 30))}
			code := uint64(p[0])<<31 | uint64(p[1])
			if !seen[code] {
				seen[code] = true
				pts = append(pts, p)
			}
		}
		return pts
	}
	{
		c := skipwebs.NewCluster(hosts)
		prng := xrand.New(seed + 3)
		pts := pointPool(prng, keyN)
		w, err := skipwebs.NewPoints(c, 2, pts, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		// Pre-generate queries so the Point composite literal is not
		// charged to the descent's allocs/op.
		qs := make([]skipwebs.Point, 4096)
		for i := range qs {
			qs[i] = skipwebs.Point{uint32(prng.Uint64n(1 << 30)), uint32(prng.Uint64n(1 << 30))}
		}
		doc.Results = append(doc.Results, measure("query/points-locate", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Locate(qs[i%len(qs)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}
	{
		c := skipwebs.NewCluster(hosts)
		srng := xrand.New(seed + 4)
		skeys := experiments.UniformStrings(srng, keyN, "acgt", 6, 24)
		w, err := skipwebs.NewStrings(c, skeys, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, measure("query/strings-search", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc, err := w.Search(skeys[i%len(skeys)], skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}
	segBounds := skipwebs.PlanarBounds{MinX: -60000, MinY: -60000, MaxX: 60000, MaxY: 60000}
	segRect := trapmap.Rect{MinX: -60000, MinY: -60000, MaxX: 60000, MaxY: 60000}
	segN := keyN / 8
	if segN > 512 {
		segN = 512
	}
	mkSegs := func(srng *xrand.Rand) []skipwebs.PlanarSegment {
		raw := experiments.DisjointSegments(srng, segN, segRect)
		segs := make([]skipwebs.PlanarSegment, len(raw))
		for i, s := range raw {
			segs[i] = skipwebs.PlanarSegment{
				A: skipwebs.PlanarPoint{X: s.A.X, Y: s.A.Y},
				B: skipwebs.PlanarPoint{X: s.B.X, Y: s.B.Y},
			}
		}
		return segs
	}
	{
		srng := xrand.New(seed + 5)
		segs := mkSegs(srng)
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewPlanar(c, segs, segBounds, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, measure("query/planar-locate", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := skipwebs.PlanarPoint{
					X: int64(srng.Uint64n(119998)) - 59999,
					Y: int64(srng.Uint64n(119998)) - 59999,
				}
				loc, err := w.Locate(q, skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(loc.Hops)
			}
		}))
	}

	// --- Steady-state update rows. ---
	// steadyUpdate drives one op per iteration from a cyclic schedule of
	// length keyN; after each full cycle the structure is rebuilt fresh
	// outside the timer, so the size band never drifts with b.N.
	steadyUpdate := func(name string, reset func() error, op func(i int) (int, error)) error {
		var outerErr error
		doc.Results = append(doc.Results, measure(name, &msgs, func(b *testing.B) {
			b.StopTimer()
			if outerErr = reset(); outerErr != nil {
				b.Fatal(outerErr)
			}
			count := 0
			b.StartTimer()
			for i := 0; i < b.N; i++ {
				if count == keyN {
					b.StopTimer()
					if outerErr = reset(); outerErr != nil {
						b.Fatal(outerErr)
					}
					count = 0
					b.StartTimer()
				}
				h, err := op(count)
				if err != nil {
					outerErr = err
					b.Fatal(err)
				}
				msgs += int64(h)
				count++
			}
		}))
		return outerErr
	}

	// The three key-addressed structures share insert/delete schedules:
	// inserts stream fresh ascending keys above the stored range; deletes
	// walk a fixed shuffled permutation of the 2 keyN stored keys.
	delOrder := xrand.New(seed + 6).Perm(keyN)
	type u64Struct struct {
		name  string
		build func(ks []uint64) (ins, del func(uint64, skipwebs.HostID) (int, error), err error)
	}
	u64Structs := []u64Struct{
		{"onedim", func(ks []uint64) (func(uint64, skipwebs.HostID) (int, error), func(uint64, skipwebs.HostID) (int, error), error) {
			w, err := skipwebs.NewOneDim(skipwebs.NewCluster(hosts), ks, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return w.Insert, w.Delete, nil
		}},
		{"blocked", func(ks []uint64) (func(uint64, skipwebs.HostID) (int, error), func(uint64, skipwebs.HostID) (int, error), error) {
			w, err := skipwebs.NewBlocked(skipwebs.NewCluster(hosts), ks, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return w.Insert, w.Delete, nil
		}},
		{"bucketed", func(ks []uint64) (func(uint64, skipwebs.HostID) (int, error), func(uint64, skipwebs.HostID) (int, error), error) {
			w, err := skipwebs.NewBucketed(skipwebs.NewCluster(hosts), ks, skipwebs.Options{Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			return w.Insert, w.Delete, nil
		}},
	}
	// Explicit Replicas: 1 twin of the blocked insert row (see
	// query/blocked-floor-r1): pins zero k = 1 write-through overhead.
	u64Structs = append(u64Structs, u64Struct{"blocked-r1", func(ks []uint64) (func(uint64, skipwebs.HostID) (int, error), func(uint64, skipwebs.HostID) (int, error), error) {
		w, err := skipwebs.NewBlocked(skipwebs.NewCluster(hosts), ks, skipwebs.Options{Seed: seed, Replicas: 1})
		if err != nil {
			return nil, nil, err
		}
		return w.Insert, w.Delete, nil
	}})
	// WriteStripes: 4 twin (see query/blocked-floor-s4): routed writes
	// through the striped path must cost no more than the unstriped rows.
	u64Structs = append(u64Structs, u64Struct{"blocked-s4", func(ks []uint64) (func(uint64, skipwebs.HostID) (int, error), func(uint64, skipwebs.HostID) (int, error), error) {
		w, err := skipwebs.NewBlocked(skipwebs.NewCluster(hosts), ks, skipwebs.Options{Seed: seed, WriteStripes: 4})
		if err != nil {
			return nil, nil, err
		}
		return w.Insert, w.Delete, nil
	}})
	for _, st := range u64Structs {
		st := st
		var ins func(uint64, skipwebs.HostID) (int, error)
		var next uint64
		if err := steadyUpdate("update/"+st.name+"-insert", func() error {
			var err error
			ins, _, err = st.build(keys[:keyN])
			next = uint64(1) << 41
			return err
		}, func(i int) (int, error) {
			next++
			return ins(next, skipwebs.HostID(i%hosts))
		}); err != nil {
			return err
		}
		var del func(uint64, skipwebs.HostID) (int, error)
		if err := steadyUpdate("update/"+st.name+"-delete", func() error {
			var err error
			_, del, err = st.build(keys)
			return err
		}, func(i int) (int, error) {
			return del(keys[delOrder[i]], skipwebs.HostID(i%hosts))
		}); err != nil {
			return err
		}
	}
	{
		prng := xrand.New(seed + 8)
		base := pointPool(prng, 2*keyN)
		fresh := pointPool(xrand.New(seed+9), keyN) // disjoint seed-space is checked at insert time
		var w *skipwebs.Points
		if err := steadyUpdate("update/points-insert", func() error {
			var err error
			w, err = skipwebs.NewPoints(skipwebs.NewCluster(hosts), 2, base[:keyN], skipwebs.Options{Seed: seed})
			return err
		}, func(i int) (int, error) {
			h, err := w.Insert(fresh[i], skipwebs.HostID(i%hosts))
			if err != nil {
				// A fresh point may collide with a base point; skip it.
				return w.Insert(skipwebs.Point{uint32(prng.Uint64n(1 << 30)), uint32(prng.Uint64n(1 << 30))}, skipwebs.HostID(i%hosts))
			}
			return h, nil
		}); err != nil {
			return err
		}
		if err := steadyUpdate("update/points-delete", func() error {
			var err error
			w, err = skipwebs.NewPoints(skipwebs.NewCluster(hosts), 2, base, skipwebs.Options{Seed: seed})
			return err
		}, func(i int) (int, error) {
			return w.Delete(base[delOrder[i]], skipwebs.HostID(i%hosts))
		}); err != nil {
			return err
		}
	}
	{
		srng := xrand.New(seed + 11)
		base := experiments.UniformStrings(srng, 2*keyN, "acgt", 10, 24)
		fresh := make([]string, keyN)
		for i := range fresh {
			fresh[i] = base[keyN+i] + "x" // distinct: base alphabet has no 'x'
		}
		var w *skipwebs.Strings
		if err := steadyUpdate("update/strings-insert", func() error {
			var err error
			w, err = skipwebs.NewStrings(skipwebs.NewCluster(hosts), base[:keyN], skipwebs.Options{Seed: seed})
			return err
		}, func(i int) (int, error) {
			return w.Insert(fresh[i], skipwebs.HostID(i%hosts))
		}); err != nil {
			return err
		}
		if err := steadyUpdate("update/strings-delete", func() error {
			var err error
			w, err = skipwebs.NewStrings(skipwebs.NewCluster(hosts), base, skipwebs.Options{Seed: seed})
			return err
		}, func(i int) (int, error) {
			return w.Delete(base[delOrder[i]], skipwebs.HostID(i%hosts))
		}); err != nil {
			return err
		}
	}
	{
		// Planar is static (Section 4's amortization caveat): its only
		// "update" is a rebuild, measured per construction.
		srng := xrand.New(seed + 12)
		segs := mkSegs(srng)
		doc.Results = append(doc.Results, measure("build/planar-rebuild", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := skipwebs.NewPlanar(skipwebs.NewCluster(hosts), segs, segBounds, skipwebs.Options{Seed: seed}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// --- Local search: binary-search Locate vs the pre-PR2 head walk. ---
	{
		lrng := xrand.New(seed + 5)
		lkeys := experiments.Keys(lrng, listN, 1<<40)
		lvl, err := core.NewListLevel(lkeys)
		if err != nil {
			return err
		}
		qrng := xrand.New(seed + 6)
		doc.Results = append(doc.Results, measure("local/listlevel-locate-binary", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lvl.Locate(qrng.Uint64n(1 << 40))
			}
		}))
		doc.Results = append(doc.Results, measure("local/listlevel-locate-walk", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The old implementation: Step from the head sentinel.
				q := qrng.Uint64n(1 << 40)
				r := lvl.Head()
				for {
					nx := lvl.Step(r, q)
					if nx == core.NoRange {
						break
					}
					r = nx
				}
			}
		}))
	}

	// --- Large-n rows: 262144 keys, bulk-loaded (full mode only). ---
	var bulkBuild, seqBuild time.Duration
	if !quick {
		const bigN = 262144
		bigKeys := experiments.Keys(xrand.New(seed+20), bigN, 1<<40)
		t0 := time.Now()
		cBig := skipwebs.NewCluster(hosts)
		wBig, err := skipwebs.NewBlocked(cBig, bigKeys, skipwebs.Options{Seed: seed})
		if err != nil {
			return err
		}
		bulkBuild = time.Since(t0)
		doc.Results = append(doc.Results, benchRecord{
			Name: "build/blocked-bulk-262144", NsPerOp: float64(bulkBuild.Nanoseconds()),
			OpsSec: 1 / bulkBuild.Seconds(), N: 1,
		})
		qrng := xrand.New(seed + 21)
		doc.Results = append(doc.Results, measure("query/blocked-floor-262144", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := wBig.Floor(qrng.Uint64n(1<<40), skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(r.Hops)
			}
		}))
		next := uint64(1) << 41
		doc.Results = append(doc.Results, measure("update/blocked-insert-262144", &msgs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next++
				h, err := wBig.Insert(next, skipwebs.HostID(i%hosts))
				if err != nil {
					b.Fatal(err)
				}
				msgs += int64(h)
			}
		}))
		// Sequential-insertion construction, the pre-bulk-load baseline:
		// build over one key, insert the rest one at a time.
		t1 := time.Now()
		cSeq := skipwebs.NewCluster(hosts)
		m := wBig.M()
		wSeq, err := skipwebs.NewBlocked(cSeq, bigKeys[:1], skipwebs.Options{Seed: seed, M: m})
		if err != nil {
			return err
		}
		for i := 1; i < bigN; i++ {
			if _, err := wSeq.Insert(bigKeys[i], skipwebs.HostID(i%hosts)); err != nil {
				return err
			}
		}
		seqBuild = time.Since(t1)
		doc.Results = append(doc.Results, benchRecord{
			Name: "build/blocked-seqinsert-262144", NsPerOp: float64(seqBuild.Nanoseconds()),
			OpsSec: 1 / seqBuild.Seconds(), N: 1,
		})
	}

	fmt.Fprintf(out, "=== B1: hot-path micro-benchmarks (keys=%d hosts=%d list=%d, steady-state updates) ===\n", keyN, hosts, listN)
	for _, r := range doc.Results {
		fmt.Fprintf(out, "%-32s %12.1f ns/op %8.0f allocs/op %10.0f ops/sec", r.Name, r.NsPerOp, r.AllocsOp, r.OpsSec)
		if r.MsgsOp > 0 {
			fmt.Fprintf(out, " %8.2f msgs/op", r.MsgsOp)
		}
		fmt.Fprintln(out)
	}
	var binaryNs, walkNs float64
	for _, r := range doc.Results {
		switch r.Name {
		case "local/listlevel-locate-binary":
			binaryNs = r.NsPerOp
		case "local/listlevel-locate-walk":
			walkNs = r.NsPerOp
		}
	}
	if binaryNs > 0 {
		fmt.Fprintf(out, "listlevel locate speedup (walk/binary, %d keys): %.0fx\n", listN, walkNs/binaryNs)
	}
	if seqBuild > 0 {
		fmt.Fprintf(out, "bulk construction speedup at n=262144 (seq-insert/bulk): %.1fx (%v vs %v)\n",
			float64(seqBuild)/float64(bulkBuild), seqBuild, bulkBuild)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		return checkBaseline(out, doc, baselinePath)
	}
	return nil
}

// churnRow is one churn-rate measurement in the JSON document.
type churnRow struct {
	Rate           float64 `json:"rate"`
	Events         int     `json:"events"`
	Joins          int     `json:"joins"`
	Leaves         int     `json:"leaves"`
	FinalHosts     int     `json:"final_hosts"`
	QueryMsgsOp    float64 `json:"query_msgs_per_op"`
	ChurnMsgs      int64   `json:"churn_msgs_total"`
	ChurnMsgsEvent float64 `json:"churn_msgs_per_event"`
	OpsSec         float64 `json:"ops_per_sec"`
	StorageP50     int64   `json:"storage_p50"`
	StorageP99     int64   `json:"storage_p99"`
	StorageMax     int64   `json:"storage_max"`
}

// churnDoc is the top-level JSON document written by -mode churn -json.
type churnDoc struct {
	Mode  string     `json:"mode"`
	Hosts int        `json:"hosts"`
	Keys  int        `json:"keys"`
	Ops   int        `json:"ops"`
	Seed  uint64     `json:"seed"`
	Rows  []churnRow `json:"rows"`
}

// runChurn measures the cost and safety of host churn: for each rate, a
// mixed query workload over all six structures is interleaved with
// join/leave events, with full consistency checks after every event and
// a zero-lost-keys sweep at the end.
func runChurn(out io.Writer, jsonPath string, hosts, keyN, ops int, ratesStr string, seed uint64, quick bool) error {
	if hosts < 4 {
		return fmt.Errorf("-hosts must be >= 4 for churn mode, got %d", hosts)
	}
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for churn mode, got %d", keyN)
	}
	if quick {
		if ops > 2000 {
			ops = 2000
		}
		if keyN > 1024 {
			keyN = 1024
		}
	}
	var rates []float64
	for _, f := range strings.Split(ratesStr, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r < 0 || r > 0.5 {
			return fmt.Errorf("bad -churn-rates entry %q (want 0 <= rate <= 0.5)", f)
		}
		rates = append(rates, r)
	}
	doc := churnDoc{Mode: "churn", Hosts: hosts, Keys: keyN, Ops: ops, Seed: seed}
	fmt.Fprintf(out, "=== C1: host churn (hosts=%d keys=%d ops=%d, 6 structures, consistency-checked) ===\n", hosts, keyN, ops)
	fmt.Fprintf(out, "%8s %7s %6s %6s %6s %14s %16s %12s %8s %8s %8s\n",
		"rate", "events", "joins", "leaves", "hosts", "query msgs/op", "churn msgs/evt", "ops/sec", "st p50", "st p99", "st max")
	for _, rate := range rates {
		row, err := churnTrial(hosts, keyN, ops, rate, seed)
		if err != nil {
			return fmt.Errorf("churn rate %g: %w", rate, err)
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "%8.4f %7d %6d %6d %6d %14.2f %16.1f %12.0f %8d %8d %8d\n",
			row.Rate, row.Events, row.Joins, row.Leaves, row.FinalHosts,
			row.QueryMsgsOp, row.ChurnMsgsEvent, row.OpsSec,
			row.StorageP50, row.StorageP99, row.StorageMax)
	}
	fmt.Fprintln(out, "zero lost keys: every key of every structure answered correctly after the storm")
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// churnTrial runs one churn-rate cell: build all six structures on a
// fresh cluster, interleave queries with alternating leave/join events,
// check consistency after every event, and sweep for lost keys at the
// end.
func churnTrial(hosts, keyN, ops int, rate float64, seed uint64) (churnRow, error) {
	row := churnRow{Rate: rate}
	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	segN := keyN / 8
	if segN > 256 {
		segN = 256
	}

	c := skipwebs.NewCluster(hosts)
	oned, err := skipwebs.NewOneDim(c, keys, skipwebs.Options{Seed: seed})
	if err != nil {
		return row, err
	}
	blocked, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed + 1})
	if err != nil {
		return row, err
	}
	bucketed, err := skipwebs.NewBucketed(c, keys, skipwebs.Options{Seed: seed + 2})
	if err != nil {
		return row, err
	}
	raw := experiments.UniformPoints(rng, 2, keyN, 1<<30)
	pts := make([]skipwebs.Point, len(raw))
	for i, p := range raw {
		pts[i] = skipwebs.Point(p)
	}
	points, err := skipwebs.NewPoints(c, 2, pts, skipwebs.Options{Seed: seed + 3})
	if err != nil {
		return row, err
	}
	strKeys := experiments.UniformStrings(rng, keyN, "acgt", 8, 24)
	strs, err := skipwebs.NewStrings(c, strKeys, skipwebs.Options{Seed: seed + 4})
	if err != nil {
		return row, err
	}
	rawSegs := experiments.DisjointSegments(rng, segN, trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000})
	segs := make([]skipwebs.PlanarSegment, len(rawSegs))
	for i, s := range rawSegs {
		segs[i] = skipwebs.PlanarSegment{
			A: skipwebs.PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: skipwebs.PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	planar, err := skipwebs.NewPlanar(c, segs,
		skipwebs.PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000},
		skipwebs.Options{Seed: seed + 5})
	if err != nil {
		return row, err
	}
	c.ResetTraffic()

	step := 0
	if rate > 0 {
		step = int(math.Round(1 / rate))
	}
	qrng := xrand.New(seed + 99)
	var queryTime time.Duration
	var verifyMsgs int64
	for i := 0; i < ops; i++ {
		if step > 0 && i > 0 && i%step == 0 {
			before := c.Stats().TotalMessages
			if row.Events%2 == 0 && c.Hosts() > 2 {
				h := c.HostAt(qrng.Intn(c.Hosts()))
				if err := c.Leave(h); err != nil {
					return row, err
				}
				row.Leaves++
			} else {
				c.Join()
				row.Joins++
			}
			row.Events++
			row.ChurnMsgs += c.Stats().TotalMessages - before
			if err := c.CheckConsistent(); err != nil {
				return row, fmt.Errorf("consistency after event %d: %w", row.Events, err)
			}
			// Spot-check traffic is verification overhead, not workload:
			// track it separately so QueryMsgsOp stays a pure per-query
			// measure at every churn rate.
			beforeVerify := c.Stats().TotalMessages
			for s := 0; s < 8; s++ {
				k := keys[qrng.Intn(len(keys))]
				found, _, err := oned.Contains(k, c.HostAt(qrng.Intn(c.Hosts())))
				if err != nil {
					return row, err
				}
				if !found {
					return row, fmt.Errorf("key %d lost after event %d", k, row.Events)
				}
			}
			verifyMsgs += c.Stats().TotalMessages - beforeVerify
		}
		origin := c.HostAt(qrng.Intn(c.Hosts()))
		start := time.Now()
		switch i % 6 {
		case 0:
			_, err = oned.Floor(qrng.Uint64n(1<<40), origin)
		case 1:
			_, err = blocked.Floor(qrng.Uint64n(1<<40), origin)
		case 2:
			_, err = bucketed.Floor(qrng.Uint64n(1<<40), origin)
		case 3:
			q := skipwebs.Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}
			_, err = points.Locate(q, origin)
		case 4:
			_, err = strs.Search(strKeys[qrng.Intn(len(strKeys))], origin)
		case 5:
			q := skipwebs.PlanarPoint{
				X: int64(qrng.Uint64n(1998)) - 999,
				Y: int64(qrng.Uint64n(1998)) - 999,
			}
			_, err = planar.Locate(q, origin)
		}
		queryTime += time.Since(start)
		if err != nil {
			return row, err
		}
	}

	// Capture accounting before the verification sweep so msgs/op covers
	// exactly the measured workload.
	stats := c.Stats()
	qs := c.StorageQuantiles(0.5, 0.99, 1.0)
	row.FinalHosts = c.Hosts()
	row.QueryMsgsOp = float64(stats.TotalMessages-row.ChurnMsgs-verifyMsgs) / float64(ops)
	if row.Events > 0 {
		row.ChurnMsgsEvent = float64(row.ChurnMsgs) / float64(row.Events)
	}
	if queryTime > 0 {
		row.OpsSec = float64(ops) / queryTime.Seconds()
	}
	row.StorageP50, row.StorageP99, row.StorageMax = qs[0], qs[1], qs[2]

	// Zero lost keys: every item of every structure must still be
	// reachable by a routed query, and every structure must be consistent.
	if err := c.CheckConsistent(); err != nil {
		return row, fmt.Errorf("final consistency: %w", err)
	}
	for i, k := range keys {
		if found, _, err := oned.Contains(k, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("onedim lost key %d: %v", k, err)
		}
		if r, err := blocked.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			return row, fmt.Errorf("blocked lost key %d: %v", k, err)
		}
		if r, err := bucketed.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			return row, fmt.Errorf("bucketed lost key %d: %v", k, err)
		}
	}
	for i, p := range pts {
		if found, _, err := points.Contains(p, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("points lost %v: %v", p, err)
		}
	}
	for i, s := range strKeys {
		if found, _, err := strs.Contains(s, c.HostAt(i)); err != nil || !found {
			return row, fmt.Errorf("strings lost %q: %v", s, err)
		}
	}
	return row, nil
}

// failoverRow is one replication-factor cell of the failover table.
type failoverRow struct {
	Replicas        int     `json:"replicas"`
	Crashes         int     `json:"crashes"`
	Availability    float64 `json:"availability"`
	Matched         bool    `json:"answers_match_control"`
	LostUnits       int     `json:"lost_units"`
	RepairMsgsEvent float64 `json:"repair_msgs_per_event"`
	QueryMsgsOp     float64 `json:"query_msgs_per_op"`
	UpdateMsgsOp    float64 `json:"update_msgs_per_op"`
	FinalHosts      int     `json:"final_hosts"`
}

// failoverDoc is the JSON document written by -mode=failover -json.
type failoverDoc struct {
	Mode    string        `json:"mode"`
	Hosts   int           `json:"hosts"`
	Keys    int           `json:"keys"`
	Ops     int           `json:"ops"`
	Crashes int           `json:"crashes"`
	Seed    uint64        `json:"seed"`
	Rows    []failoverRow `json:"rows"`
}

// runFailover measures crash tolerance versus the replication factor:
// for each k, a mixed query workload over all six structures is
// interleaved with unclean host crashes (Cluster.Crash: no migration,
// mailbox dropped, Repair re-replicates from survivors). It records
// availability (the fraction of queries answered rather than failing
// fast with ErrHostDown), whether every answered query matched a
// crash-free control build, repair traffic per crash, and the query and
// update msgs/op — the replication overhead. At k = 1 crashes lose
// data, so availability drops below 1; at k >= 2 with one crash at a
// time, availability stays 1.0 and answers match the control exactly.
func runFailover(out io.Writer, jsonPath string, hosts, keyN, ops int, replicasStr string, crashes int, seed uint64, quick bool) error {
	if hosts < 8 {
		return fmt.Errorf("-hosts must be >= 8 for failover mode, got %d", hosts)
	}
	if keyN < 64 {
		return fmt.Errorf("-keys must be >= 64 for failover mode, got %d", keyN)
	}
	if crashes < 1 {
		return fmt.Errorf("-crashes must be >= 1, got %d", crashes)
	}
	if quick {
		if ops > 1800 {
			ops = 1800
		}
		if keyN > 768 {
			keyN = 768
		}
	}
	if crashes > hosts/2 {
		crashes = hosts / 2
	}
	var ks []int
	for _, f := range strings.Split(replicasStr, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 || k > hosts {
			return fmt.Errorf("bad -replicas entry %q (want 1 <= k <= hosts)", f)
		}
		ks = append(ks, k)
	}
	doc := failoverDoc{Mode: "failover", Hosts: hosts, Keys: keyN, Ops: ops, Crashes: crashes, Seed: seed}
	fmt.Fprintf(out, "=== F1: crash failover (hosts=%d keys=%d ops=%d crashes=%d, 6 structures vs crash-free control) ===\n",
		hosts, keyN, ops, crashes)
	fmt.Fprintf(out, "%4s %8s %12s %8s %10s %16s %14s %14s %7s\n",
		"k", "crashes", "availability", "matched", "lost", "repair msgs/evt", "query msgs/op", "update msgs/op", "hosts")
	for _, k := range ks {
		row, err := failoverTrial(hosts, keyN, ops, k, crashes, seed)
		if err != nil {
			return fmt.Errorf("failover k=%d: %w", k, err)
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "%4d %8d %12.4f %8v %10d %16.1f %14.2f %14.2f %7d\n",
			row.Replicas, row.Crashes, row.Availability, row.Matched, row.LostUnits,
			row.RepairMsgsEvent, row.QueryMsgsOp, row.UpdateMsgsOp, row.FinalHosts)
	}
	fmt.Fprintln(out, "k>=2 rows: zero lost keys, every query answered identically to the control build")
	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// failoverFixture is one cluster with all six structures, built
// deterministically from (hosts, keyN, k, seed) so a stormed instance
// and its crash-free control answer identically while both are intact.
type failoverFixture struct {
	c        *skipwebs.Cluster
	oned     *skipwebs.OneDim
	blocked  *skipwebs.Blocked
	bucketed *skipwebs.Bucketed
	points   *skipwebs.Points
	strs     *skipwebs.Strings
	planar   *skipwebs.Planar
	keys     []uint64
	extra    []uint64
	pts      []skipwebs.Point
	strKeys  []string
}

func buildFailoverFixture(hosts, keyN, k int, seed uint64) (*failoverFixture, error) {
	f := &failoverFixture{c: skipwebs.NewCluster(hosts)}
	rng := xrand.New(seed)
	all := experiments.Keys(rng, keyN+keyN/2, 1<<40)
	f.keys, f.extra = all[:keyN], all[keyN:]
	opts := func(d uint64) skipwebs.Options {
		return skipwebs.Options{Seed: seed + d, Replicas: k}
	}
	var err error
	if f.oned, err = skipwebs.NewOneDim(f.c, f.keys, opts(0)); err != nil {
		return nil, err
	}
	if f.blocked, err = skipwebs.NewBlocked(f.c, f.keys, opts(1)); err != nil {
		return nil, err
	}
	if f.bucketed, err = skipwebs.NewBucketed(f.c, f.keys, opts(2)); err != nil {
		return nil, err
	}
	raw := experiments.UniformPoints(rng, 2, keyN/2, 1<<30)
	f.pts = make([]skipwebs.Point, len(raw))
	for i, p := range raw {
		f.pts[i] = skipwebs.Point(p)
	}
	if f.points, err = skipwebs.NewPoints(f.c, 2, f.pts, opts(3)); err != nil {
		return nil, err
	}
	f.strKeys = experiments.UniformStrings(rng, keyN/2, "acgt", 8, 24)
	if f.strs, err = skipwebs.NewStrings(f.c, f.strKeys, opts(4)); err != nil {
		return nil, err
	}
	segN := keyN / 8
	if segN > 192 {
		segN = 192
	}
	rawSegs := experiments.DisjointSegments(rng, segN, trapmap.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000})
	segs := make([]skipwebs.PlanarSegment, len(rawSegs))
	for i, s := range rawSegs {
		segs[i] = skipwebs.PlanarSegment{
			A: skipwebs.PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: skipwebs.PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	if f.planar, err = skipwebs.NewPlanar(f.c, segs,
		skipwebs.PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}, opts(5)); err != nil {
		return nil, err
	}
	return f, nil
}

// failoverAnswer is one query's comparable outcome.
type failoverAnswer struct {
	a, b  uint64
	ok    bool
	s     string
	found bool
}

// queryOne runs the i-th workload query and returns (answer, answered,
// error): answered=false with a nil error means the query failed fast
// with the typed host-down error — the availability measure.
func (f *failoverFixture) queryOne(i int, qrng *xrand.Rand) (failoverAnswer, bool, error) {
	origin := f.c.HostAt(int(qrng.Uint64n(1 << 20)))
	var ans failoverAnswer
	var err error
	switch i % 6 {
	case 0:
		var r skipwebs.FloorResult
		r, err = f.oned.Floor(qrng.Uint64n(1<<40), origin)
		ans = failoverAnswer{a: r.Key, found: r.Found}
	case 1:
		var r skipwebs.FloorResult
		r, err = f.blocked.Floor(qrng.Uint64n(1<<40), origin)
		ans = failoverAnswer{a: r.Key, found: r.Found}
	case 2:
		var r skipwebs.FloorResult
		r, err = f.bucketed.Floor(qrng.Uint64n(1<<40), origin)
		ans = failoverAnswer{a: r.Key, found: r.Found}
	case 3:
		q := skipwebs.Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}
		var r skipwebs.PointLocation
		r, err = f.points.Locate(q, origin)
		ans = failoverAnswer{a: r.CellPrefix, b: uint64(r.CellBits), ok: r.Leaf}
	case 4:
		var r skipwebs.StringLocation
		r, err = f.strs.Search(f.strKeys[int(qrng.Uint64n(uint64(len(f.strKeys))))], origin)
		ans = failoverAnswer{s: r.Locus, ok: r.IsKey, found: r.Exact}
	case 5:
		q := skipwebs.PlanarPoint{
			X: int64(qrng.Uint64n(1998)) - 999,
			Y: int64(qrng.Uint64n(1998)) - 999,
		}
		var r skipwebs.Trapezoid
		r, err = f.planar.Locate(q, origin)
		ans = failoverAnswer{a: uint64(r.LeftX), b: uint64(r.RightX), ok: r.HasTop, found: r.HasBottom}
	}
	if err != nil {
		if errors.Is(err, skipwebs.ErrHostDown) {
			return ans, false, nil
		}
		return ans, false, err
	}
	return ans, true, nil
}

// failoverTrial runs one replication-factor cell: stormed and control
// fixtures answer the same workload while the stormed cluster crashes
// hosts at regular intervals.
func failoverTrial(hosts, keyN, ops, k, crashes int, seed uint64) (failoverRow, error) {
	row := failoverRow{Replicas: k}
	stormed, err := buildFailoverFixture(hosts, keyN, k, seed)
	if err != nil {
		return row, err
	}
	control, err := buildFailoverFixture(hosts, keyN, k, seed)
	if err != nil {
		return row, err
	}

	// Update overhead: write-through costs k-1 extra messages per
	// written unit. Mirror the inserts into the control so both key
	// sets stay identical for the answer comparison.
	stormed.c.ResetTraffic()
	updates := 0
	for _, key := range stormed.extra {
		if _, err := stormed.oned.Insert(key, stormed.c.HostAt(updates)); err != nil {
			return row, err
		}
		if _, err := stormed.blocked.Insert(key, stormed.c.HostAt(updates)); err != nil {
			return row, err
		}
		updates += 2
	}
	row.UpdateMsgsOp = float64(stormed.c.Stats().TotalMessages) / float64(updates)
	for _, key := range control.extra {
		if _, err := control.oned.Insert(key, control.c.HostAt(0)); err != nil {
			return row, err
		}
		if _, err := control.blocked.Insert(key, control.c.HostAt(0)); err != nil {
			return row, err
		}
	}

	stormed.c.ResetTraffic()
	step := ops / (crashes + 1)
	if step < 1 {
		step = 1
	}
	qrngS := xrand.New(seed + 99)
	qrngC := xrand.New(seed + 99)
	crng := xrand.New(seed + 7)
	var repairMsgs int64
	answered, matched := 0, true
	for i := 0; i < ops; i++ {
		if i > 0 && i%step == 0 && row.Crashes < crashes && stormed.c.Hosts() > 2 {
			victim := stormed.c.HostAt(crng.Intn(stormed.c.Hosts()))
			before := stormed.c.Stats().TotalMessages
			err := stormed.c.Crash(victim)
			var dl *skipwebs.DataLossError
			switch {
			case err == nil:
			case errors.As(err, &dl):
				// Units is a cumulative snapshot (previously lost units
				// are still lost and re-reported), so assign, not add.
				row.LostUnits = dl.Units
			default:
				return row, fmt.Errorf("crash %d: %w", victim, err)
			}
			repairMsgs += stormed.c.Stats().TotalMessages - before
			row.Crashes++
			if k > 1 && row.LostUnits == 0 {
				if err := stormed.c.CheckConsistent(); err != nil {
					return row, fmt.Errorf("consistency after crash %d: %w", row.Crashes, err)
				}
			}
		}
		got, ok, err := stormed.queryOne(i, qrngS)
		if err != nil {
			return row, err
		}
		want, wok, err := control.queryOne(i, qrngC)
		if err != nil || !wok {
			return row, fmt.Errorf("control query failed: %w", err)
		}
		if ok {
			answered++
			if got != want {
				matched = false
			}
		}
	}
	row.Availability = float64(answered) / float64(ops)
	row.Matched = matched
	if row.Crashes > 0 {
		row.RepairMsgsEvent = float64(repairMsgs) / float64(row.Crashes)
	}
	row.QueryMsgsOp = float64(stormed.c.Stats().TotalMessages-repairMsgs) / float64(ops)
	row.FinalHosts = stormed.c.Hosts()

	// Tolerance contract: with k >= 2 and one crash at a time, nothing
	// is lost, availability is total, and the answers match the control.
	if k > 1 {
		if row.LostUnits != 0 || row.Availability != 1.0 || !matched {
			return row, fmt.Errorf("k=%d trial violated the tolerance contract: lost=%d availability=%g matched=%v",
				k, row.LostUnits, row.Availability, matched)
		}
		if err := stormed.c.CheckConsistent(); err != nil {
			return row, fmt.Errorf("final consistency: %w", err)
		}
		for i, key := range stormed.keys {
			if found, _, err := stormed.oned.Contains(key, stormed.c.HostAt(i)); err != nil || !found {
				return row, fmt.Errorf("onedim lost key %d: %v", key, err)
			}
			if r, err := stormed.blocked.Floor(key, stormed.c.HostAt(i)); err != nil || !r.Found || r.Key != key {
				return row, fmt.Errorf("blocked lost key %d: %v", key, err)
			}
			if r, err := stormed.bucketed.Floor(key, stormed.c.HostAt(i)); err != nil || !r.Found || r.Key != key {
				return row, fmt.Errorf("bucketed lost key %d: %v", key, err)
			}
		}
	}
	return row, nil
}

// throughputRow is one GOMAXPROCS cell of the throughput table.
type throughputRow struct {
	Procs         int     `json:"procs"`
	ReadOpsSec    float64 `json:"read_ops_per_sec"`
	ReadSpeedup   float64 `json:"read_speedup"`
	InsertOpsSec  float64 `json:"insert_ops_per_sec"`
	InsertSpeedup float64 `json:"insert_speedup"`
	DeleteOpsSec  float64 `json:"delete_ops_per_sec"`
	DeleteSpeedup float64 `json:"delete_speedup"`
}

// throughputDoc is the JSON document written by -mode=throughput -json.
type throughputDoc struct {
	Mode     string          `json:"mode"`
	Hosts    int             `json:"hosts"`
	Keys     int             `json:"keys"`
	Queries  int             `json:"queries"`
	Stripes  int             `json:"stripes"`
	Seed     uint64          `json:"seed"`
	Go       string          `json:"go"`
	CPUs     int             `json:"cpus"`
	ParityOK bool            `json:"accounting_parity"`
	Rows     []throughputRow `json:"rows"`
}

// runThroughput measures batched throughput at each GOMAXPROCS setting
// — floor queries over an unstriped Blocked web, and InsertBatch /
// DeleteBatch over the same web built with -stripes write stripes — and
// checks message-accounting parity with the synchronous path on the
// identical workloads first. On a machine with >= 4 CPUs measuring both
// GOMAXPROCS 1 and 4, the insert path must scale >= 2x or the run
// fails; -json records the table (e.g. BENCH_WRITERS_PR8.json).
func runThroughput(out io.Writer, jsonPath string, hosts, keyN, queries int, procList string, stripes int, seed uint64) error {
	if stripes < 1 {
		return fmt.Errorf("-stripes must be positive, got %d", stripes)
	}
	if hosts < 1 {
		return fmt.Errorf("-hosts must be positive, got %d", hosts)
	}
	if keyN < 1 {
		return fmt.Errorf("-keys must be positive, got %d", keyN)
	}
	if queries < 1 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	var procVals []int
	for _, f := range strings.Split(procList, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -procs entry %q", f)
		}
		procVals = append(procVals, p)
	}

	rng := xrand.New(seed)
	keys := experiments.Keys(rng, keyN, 1<<40)
	qs := make([]uint64, queries)
	origins := make([]skipwebs.HostID, queries)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 40)
		origins[i] = skipwebs.HostID(rng.Intn(hosts))
	}
	// Fresh insert keys inside the stored key range, so they spread over
	// every write stripe rather than all routing to the top one.
	seen := make(map[uint64]bool, keyN+queries)
	for _, k := range keys {
		seen[k] = true
	}
	insKeys := make([]uint64, 0, queries)
	for len(insKeys) < queries {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			insKeys = append(insKeys, k)
		}
	}

	build := func(writeStripes int) (*skipwebs.Cluster, *skipwebs.Blocked, error) {
		c := skipwebs.NewCluster(hosts)
		w, err := skipwebs.NewBlocked(c, keys, skipwebs.Options{Seed: seed, WriteStripes: writeStripes})
		if err != nil {
			return nil, nil, err
		}
		c.ResetTraffic()
		return c, w, nil
	}

	doc := throughputDoc{
		Mode: "throughput", Hosts: hosts, Keys: keyN, Queries: queries,
		Stripes: stripes, Seed: seed, Go: runtime.Version(), CPUs: runtime.NumCPU(),
	}

	// Parity: the same workloads, synchronous vs batched, must charge the
	// same total messages and operations. Reads run unstriped; writes run
	// with -stripes stripes, where the synchronous replay in input order
	// is the serialization the concurrent dispatch must match exactly
	// (stripe routing is a pure function of the key, and per-op hops
	// depend only on earlier ops in the same stripe).
	cSync, wSync, err := build(1)
	if err != nil {
		return err
	}
	for i := range qs {
		if _, err := wSync.Floor(qs[i], origins[i]); err != nil {
			return err
		}
	}
	cBatch, wBatch, err := build(1)
	if err != nil {
		return err
	}
	defer cBatch.Close()
	if _, err := wBatch.FloorBatch(qs, origins); err != nil {
		return err
	}
	fmt.Fprintf(out, "=== T1: batch throughput (hosts=%d keys=%d queries=%d stripes=%d, machine has %d CPUs) ===\n",
		hosts, keyN, queries, stripes, runtime.NumCPU())
	parity := func(name string, ss, bs skipwebs.Stats) error {
		ok := "OK"
		if ss.TotalMessages != bs.TotalMessages || ss.TotalOps != bs.TotalOps ||
			ss.MaxCongestion != bs.MaxCongestion {
			ok = "MISMATCH"
		}
		fmt.Fprintf(out, "%s parity: sync msgs=%d ops=%d maxC=%d | batch msgs=%d ops=%d maxC=%d  %s\n",
			name, ss.TotalMessages, ss.TotalOps, ss.MaxCongestion,
			bs.TotalMessages, bs.TotalOps, bs.MaxCongestion, ok)
		if ok != "OK" {
			return fmt.Errorf("%s batch accounting diverged from synchronous path", name)
		}
		return nil
	}
	if err := parity("read", cSync.Stats(), cBatch.Stats()); err != nil {
		return err
	}
	cSync.Close()

	cWS, wWS, err := build(stripes)
	if err != nil {
		return err
	}
	for i, k := range insKeys {
		if _, err := wWS.Insert(k, origins[i]); err != nil {
			return err
		}
	}
	for i, k := range insKeys {
		if _, err := wWS.Delete(k, origins[i]); err != nil {
			return err
		}
	}
	cWB, wWB, err := build(stripes)
	if err != nil {
		return err
	}
	if _, err := wWB.InsertBatch(insKeys, origins); err != nil {
		return err
	}
	if _, err := wWB.DeleteBatch(insKeys, origins); err != nil {
		return err
	}
	err = parity("write", cWS.Stats(), cWB.Stats())
	cWS.Close()
	cWB.Close()
	if err != nil {
		return err
	}
	doc.ParityOK = true

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	const rounds = 3
	for _, p := range procVals {
		runtime.GOMAXPROCS(p)
		row := throughputRow{Procs: p}

		c, w, err := build(1)
		if err != nil {
			return err
		}
		// Warm up the worker pool, then time enough rounds to smooth noise.
		if _, err := w.FloorBatch(qs[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := w.FloorBatch(qs, origins); err != nil {
				c.Close()
				return err
			}
		}
		c.Close()
		row.ReadOpsSec = float64(rounds*queries) / time.Since(start).Seconds()

		// Writes: insert the fresh keys, then delete them so every round
		// (and every GOMAXPROCS value) starts from the identical state.
		c, w, err = build(stripes)
		if err != nil {
			return err
		}
		if _, err := w.InsertBatch(insKeys[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		if _, err := w.DeleteBatch(insKeys[:min(queries, 512)], origins); err != nil {
			c.Close()
			return err
		}
		var insTime, delTime time.Duration
		for r := 0; r < rounds; r++ {
			start = time.Now()
			if _, err := w.InsertBatch(insKeys, origins); err != nil {
				c.Close()
				return err
			}
			insTime += time.Since(start)
			start = time.Now()
			if _, err := w.DeleteBatch(insKeys, origins); err != nil {
				c.Close()
				return err
			}
			delTime += time.Since(start)
		}
		c.Close()
		row.InsertOpsSec = float64(rounds*queries) / insTime.Seconds()
		row.DeleteOpsSec = float64(rounds*queries) / delTime.Seconds()

		if len(doc.Rows) == 0 {
			row.ReadSpeedup, row.InsertSpeedup, row.DeleteSpeedup = 1, 1, 1
		} else {
			base := doc.Rows[0]
			row.ReadSpeedup = row.ReadOpsSec / base.ReadOpsSec
			row.InsertSpeedup = row.InsertOpsSec / base.InsertOpsSec
			row.DeleteSpeedup = row.DeleteOpsSec / base.DeleteOpsSec
		}
		doc.Rows = append(doc.Rows, row)
		note := ""
		if p > runtime.NumCPU() {
			note = "  (exceeds physical CPUs; no further speedup possible)"
		}
		fmt.Fprintf(out, "GOMAXPROCS=%-3d  read %10.0f ops/sec (%.2fx)  insert %10.0f ops/sec (%.2fx)  delete %10.0f ops/sec (%.2fx)%s\n",
			p, row.ReadOpsSec, row.ReadSpeedup, row.InsertOpsSec, row.InsertSpeedup,
			row.DeleteOpsSec, row.DeleteSpeedup, note)
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}

	// Acceptance gate: on a machine that can physically show it, striped
	// inserts must gain >= 2x from 1 to 4 procs.
	if runtime.NumCPU() >= 4 {
		var at1, at4 float64
		for _, r := range doc.Rows {
			switch r.Procs {
			case 1:
				at1 = r.InsertOpsSec
			case 4:
				at4 = r.InsertOpsSec
			}
		}
		if at1 > 0 && at4 > 0 {
			if at4 < 2*at1 {
				return fmt.Errorf("striped InsertBatch at 4 procs = %.0f ops/sec, want >= 2x the %.0f at 1 proc", at4, at1)
			}
			fmt.Fprintf(out, "striped InsertBatch scaling 1->4 procs: %.2fx (>= 2x required)\n", at4/at1)
		}
	} else {
		fmt.Fprintf(out, "striped-insert scaling gate skipped: machine has %d CPUs (< 4)\n", runtime.NumCPU())
	}
	return nil
}

func runExperiments(out io.Writer, experiment string, quick bool, seed uint64) error {
	t1 := experiments.DefaultTable1Config()
	lm := experiments.DefaultLemmaConfig()
	th := experiments.DefaultTheoremConfig()
	if quick {
		t1 = experiments.QuickTable1Config()
		lm = experiments.QuickLemmaConfig()
		th = experiments.QuickTheoremConfig()
	}
	t1.Seed, lm.Seed, th.Seed = seed, seed+1, seed+2

	want := func(name string) bool { return experiment == "all" || experiment == name }
	ran := false

	if want("table1") {
		ran = true
		rep, err := experiments.Table1(t1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E1: Table 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma1") {
		ran = true
		rep, err := experiments.Lemma1(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E2: Lemma 1 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma3") {
		ran = true
		rep, err := experiments.Lemma3(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E3: Lemma 3 / Figure 3 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma4") {
		ran = true
		rep, err := experiments.Lemma4(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E4: Lemma 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("lemma5") {
		ran = true
		rep, err := experiments.Lemma5(lm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E5: Lemma 5 / Figure 4 ===")
		fmt.Fprintln(out, rep)
	}
	if want("theorem2") {
		ran = true
		rep, err := experiments.Theorem2MultiDim(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E6: Theorem 2, multi-dimensional ===")
		fmt.Fprintln(out, rep)
	}
	if want("blocking") {
		ran = true
		rep, err := experiments.Theorem2Blocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E7: Theorem 2, 1-d blocking ===")
		fmt.Fprintln(out, rep)
		fmt.Fprintf(out, "sub-log trend (Q/log2n last/first, <1 is sub-logarithmic): %.3f\n\n",
			experiments.SubLogCheck(rep.Rows))
	}
	if want("updates") {
		ran = true
		rep, err := experiments.Updates(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E8: Section 4 updates ===")
		fmt.Fprintln(out, rep)
	}
	if want("congestion") {
		ran = true
		rep, err := experiments.Congestion(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== E9: congestion / load balance ===")
		fmt.Fprintln(out, rep)
	}
	if want("ablation") {
		ran = true
		rep, err := experiments.AblationBlocking(th)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== A1: blocking ablation ===")
		fmt.Fprintln(out, rep)
	}
	if want("figures") {
		ran = true
		fmt.Fprintln(out, "=== F1: Figure 1 ===")
		fmt.Fprintln(out, experiments.Figure1(seed))
		f2, err := experiments.Figure2(seed, 1024)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F2: Figure 2 ===")
		fmt.Fprintln(out, f2)
		f4, err := experiments.Figure4(seed, 14)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== F4: Figure 4 ===")
		fmt.Fprintln(out, f4)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
